// CLI front-end tests: the FlagSet parser (args + config files), the
// schema spec round-trip, and ParseCliOptions error handling. Every bad
// input here must come back as an error string -- command-line mistakes
// never reach an LDIV_CHECK abort.

#include "cli/cli_options.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/schema_spec.h"

namespace ldv {
namespace {

bool ParseFlags(std::vector<const char*> args, FlagSet* flags, std::string* error) {
  args.insert(args.begin(), "prog");
  return flags->ParseArgs(static_cast<int>(args.size()), args.data(), error);
}

bool ParseCli(std::vector<const char*> args, CliOptions* options, std::string* error) {
  args.insert(args.begin(), "ldiv");
  return ParseCliOptions(static_cast<int>(args.size()), args.data(), options, error);
}

std::string WriteTempFile(const std::string& name, const std::string& content) {
  std::string path = testing::TempDir() + name;
  std::ofstream out(path);
  out << content;
  return path;
}

TEST(FlagSet, ParsesEqualsSpaceAndBareForms) {
  FlagSet flags;
  std::string error;
  ASSERT_TRUE(ParseFlags({"--l=4", "--algo", "tp", "--sweep"}, &flags, &error)) << error;
  std::uint32_t l = 0;
  EXPECT_TRUE(flags.GetUint32("l", 0, &l, &error));
  EXPECT_EQ(l, 4u);
  std::string algo;
  EXPECT_TRUE(flags.GetString("algo", "", &algo, &error));
  EXPECT_EQ(algo, "tp");
  bool sweep = false;
  EXPECT_TRUE(flags.GetBool("sweep", false, &sweep, &error));
  EXPECT_TRUE(sweep);
}

TEST(FlagSet, AbsentFlagsKeepDefaults) {
  FlagSet flags;
  std::string error;
  ASSERT_TRUE(ParseFlags({}, &flags, &error));
  std::uint32_t value = 0;
  EXPECT_TRUE(flags.GetUint32("missing", 7, &value, &error));
  EXPECT_EQ(value, 7u);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagSet, LaterOccurrenceWins) {
  FlagSet flags;
  std::string error;
  ASSERT_TRUE(ParseFlags({"--l=2", "--l=6"}, &flags, &error));
  std::uint32_t l = 0;
  EXPECT_TRUE(flags.GetUint32("l", 0, &l, &error));
  EXPECT_EQ(l, 6u);
}

TEST(FlagSet, RejectsNonFlagTokensAndBadValues) {
  FlagSet flags;
  std::string error;
  EXPECT_FALSE(ParseFlags({"stray"}, &flags, &error));
  EXPECT_NE(error.find("stray"), std::string::npos);

  FlagSet bad;
  ASSERT_TRUE(ParseFlags({"--l=abc", "--sweep=maybe"}, &bad, &error));
  std::uint32_t l = 0;
  EXPECT_FALSE(bad.GetUint32("l", 0, &l, &error));
  EXPECT_NE(error.find("--l"), std::string::npos);
  bool sweep = false;
  EXPECT_FALSE(bad.GetBool("sweep", false, &sweep, &error));
}

TEST(FlagSet, ParsesLists) {
  FlagSet flags;
  std::string error;
  ASSERT_TRUE(ParseFlags({"--l=2,4,6"}, &flags, &error));
  std::vector<std::uint32_t> ls;
  EXPECT_TRUE(flags.GetUint32List("l", {}, &ls, &error));
  EXPECT_EQ(ls, (std::vector<std::uint32_t>{2, 4, 6}));

  FlagSet bad;
  ASSERT_TRUE(ParseFlags({"--l=2,,6"}, &bad, &error));
  EXPECT_FALSE(bad.GetUint32List("l", {}, &ls, &error));
}

TEST(FlagSet, ConfigFileFillsOnlyAbsentKeys) {
  std::string path = WriteTempFile("flagset.conf",
                                   "# comment\n"
                                   "l = 4\n"
                                   "algo = mondrian\n"
                                   "\n");
  FlagSet flags;
  std::string error;
  ASSERT_TRUE(ParseFlags({"--algo=tp"}, &flags, &error));
  ASSERT_TRUE(flags.ParseConfigFile(path, &error)) << error;
  std::string algo;
  EXPECT_TRUE(flags.GetString("algo", "", &algo, &error));
  EXPECT_EQ(algo, "tp") << "command-line flags must override the config file";
  std::uint32_t l = 0;
  EXPECT_TRUE(flags.GetUint32("l", 0, &l, &error));
  EXPECT_EQ(l, 4u);
  std::remove(path.c_str());
}

TEST(FlagSet, ConfigFileErrorsAreReported) {
  FlagSet flags;
  std::string error;
  EXPECT_FALSE(flags.ParseConfigFile(testing::TempDir() + "does_not_exist.conf", &error));

  std::string path = WriteTempFile("broken.conf", "just a line without equals\n");
  EXPECT_FALSE(flags.ParseConfigFile(path, &error));
  EXPECT_NE(error.find(":1:"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(FlagSet, UnknownKeysAreListedOnce) {
  FlagSet flags;
  std::string error;
  ASSERT_TRUE(ParseFlags({"--typo=1", "--l=2", "--typo=2"}, &flags, &error));
  constexpr std::string_view kKnown[] = {"l"};
  EXPECT_EQ(flags.UnknownKeys(kKnown), std::vector<std::string>{"typo"});
}

TEST(SchemaSpec, ParsesNamedAndUnnamedForms) {
  std::string error;
  std::optional<Schema> named = ParseSchemaSpec("Age:79,Gender:2|Income:50", &error);
  ASSERT_TRUE(named.has_value()) << error;
  EXPECT_EQ(named->qi_count(), 2u);
  EXPECT_EQ(named->qi(0).name, "Age");
  EXPECT_EQ(named->qi(0).domain_size, 79u);
  EXPECT_EQ(named->sensitive().name, "Income");
  EXPECT_EQ(named->sa_domain_size(), 50u);

  std::optional<Schema> bare = ParseSchemaSpec("79,2,50", &error);
  ASSERT_TRUE(bare.has_value()) << error;
  EXPECT_EQ(bare->qi_count(), 2u);
  EXPECT_EQ(bare->qi(1).name, "Q2");
  EXPECT_EQ(bare->sensitive().name, "S");
  EXPECT_EQ(bare->sa_domain_size(), 50u);
}

TEST(SchemaSpec, FormatRoundTrips) {
  std::string error;
  std::optional<Schema> schema = ParseSchemaSpec("Age:79,Gender:2|Income:50", &error);
  ASSERT_TRUE(schema.has_value());
  std::string spec = FormatSchemaSpec(*schema);
  EXPECT_EQ(spec, "Age:79,Gender:2|Income:50");
  std::optional<Schema> reparsed = ParseSchemaSpec(spec, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_TRUE(*schema == *reparsed);
}

TEST(SchemaSpec, RejectsMalformedSpecsWithMessages) {
  std::string error;
  EXPECT_FALSE(ParseSchemaSpec("", &error).has_value());
  EXPECT_FALSE(ParseSchemaSpec("79", &error).has_value());
  EXPECT_NE(error.find("sensitive"), std::string::npos) << error;
  EXPECT_FALSE(ParseSchemaSpec("Age:0|Income:50", &error).has_value());
  EXPECT_NE(error.find("Age"), std::string::npos) << error;
  EXPECT_FALSE(ParseSchemaSpec("Age:banana|Income:50", &error).has_value());
  EXPECT_FALSE(ParseSchemaSpec("79,2|", &error).has_value());
  EXPECT_FALSE(ParseSchemaSpec("79|50|2", &error).has_value());
  EXPECT_FALSE(ParseSchemaSpec("79|50,2", &error).has_value());
  EXPECT_FALSE(ParseSchemaSpec(",79|50", &error).has_value());
}

TEST(CliOptions, DefaultsAndSingleRun) {
  CliOptions options;
  std::string error;
  ASSERT_TRUE(ParseCli({"--algo=tp", "--l=4", "--n=500"}, &options, &error)) << error;
  EXPECT_EQ(options.algorithms, std::vector<Algorithm>{Algorithm::kTp});
  EXPECT_EQ(options.ls, std::vector<std::uint32_t>{4});
  EXPECT_EQ(options.ns, std::vector<std::uint64_t>{500});
  EXPECT_EQ(options.ds, std::vector<std::uint64_t>{3});
  EXPECT_EQ(options.dataset.name, "sal");
  EXPECT_FALSE(options.sweep);
  EXPECT_TRUE(options.compute_kl);
}

TEST(CliOptions, AllExpandsToEveryRegisteredAlgorithm) {
  CliOptions options;
  std::string error;
  ASSERT_TRUE(ParseCli({"--algo=all"}, &options, &error)) << error;
  EXPECT_EQ(options.algorithms.size(), kAlgorithmCount);
  EXPECT_EQ(options.algorithms.front(), Algorithm::kTp);
  EXPECT_EQ(options.algorithms.back(), Algorithm::kTds);
}

TEST(CliOptions, UnknownAlgorithmIsACleanError) {
  CliOptions options;
  std::string error;
  EXPECT_FALSE(ParseCli({"--algo=tp++"}, &options, &error));
  EXPECT_NE(error.find("tp++"), std::string::npos);
  EXPECT_NE(error.find("TP"), std::string::npos) << "error should list registered names";
}

TEST(CliOptions, BadSchemaAndMissingSaAreCleanErrors) {
  CliOptions options;
  std::string error;
  EXPECT_FALSE(ParseCli({"--input=x.csv", "--schema=Age:0|S:5"}, &options, &error));
  EXPECT_NE(error.find("Age"), std::string::npos);
  EXPECT_FALSE(ParseCli({"--input=x.csv", "--schema=79"}, &options, &error));
  EXPECT_NE(error.find("sensitive"), std::string::npos) << error;
  // A coded-looking file without --schema is a usage error, not a silent
  // raw ingestion of digit strings.
  std::string coded = WriteTempFile("cli_coded_noschema.csv", "A,B\n1,0\n");
  std::string input_flag = "--input=" + coded;
  EXPECT_FALSE(ParseCli({input_flag.c_str()}, &options, &error));
  EXPECT_NE(error.find("--schema"), std::string::npos) << error;
  std::remove(coded.c_str());
}

TEST(CliOptions, FormatFlagRules) {
  CliOptions options;
  std::string error;
  // --format only applies to CSV input.
  EXPECT_FALSE(ParseCli({"--format=raw"}, &options, &error));
  EXPECT_NE(error.find("--input"), std::string::npos) << error;
  // Unknown format names are usage errors.
  EXPECT_FALSE(ParseCli({"--input=x.csv", "--format=parquet"}, &options, &error));
  EXPECT_NE(error.find("parquet"), std::string::npos) << error;
  // raw + --schema conflict: the dictionaries define the domains.
  EXPECT_FALSE(ParseCli({"--input=x.csv", "--format=raw", "--schema=3|2"}, &options, &error));
  EXPECT_NE(error.find("raw"), std::string::npos) << error;
  // coded requires --schema.
  EXPECT_FALSE(ParseCli({"--input=x.csv", "--format=coded"}, &options, &error));
  EXPECT_NE(error.find("--schema"), std::string::npos) << error;
  // --schema implies a coded load under the default auto format.
  options = CliOptions();
  ASSERT_TRUE(ParseCli({"--input=x.csv", "--schema=Age:3|S:2"}, &options, &error)) << error;
  EXPECT_EQ(options.format, CsvFormat::kCoded);
  EXPECT_TRUE(options.schema.has_value());
  // An explicit raw load never needs the file at parse time.
  options = CliOptions();
  ASSERT_TRUE(ParseCli({"--input=x.csv", "--format=raw"}, &options, &error)) << error;
  EXPECT_EQ(options.format, CsvFormat::kRaw);
  EXPECT_FALSE(options.schema.has_value());
}

TEST(CliOptions, ThreadsAcceptsCountsAndAuto) {
  CliOptions options;
  std::string error;
  ASSERT_TRUE(ParseCli({"--n=500"}, &options, &error)) << error;
  EXPECT_EQ(options.threads, 0u);  // default: auto
  ASSERT_TRUE(ParseCli({"--n=500", "--threads=auto"}, &options, &error)) << error;
  EXPECT_EQ(options.threads, 0u);
  ASSERT_TRUE(ParseCli({"--n=500", "--threads=6"}, &options, &error)) << error;
  EXPECT_EQ(options.threads, 6u);
  EXPECT_FALSE(ParseCli({"--n=500", "--threads=many"}, &options, &error));
  EXPECT_NE(error.find("--threads"), std::string::npos) << error;
  EXPECT_FALSE(ParseCli({"--n=500", "--threads=4x"}, &options, &error));
}

TEST(CliOptions, DatasetSpecMistakesAreUsageErrors) {
  // Grid-cell validation happens at parse time so these exit 1 (usage),
  // not 3 (pipeline failure).
  CliOptions options;
  std::string error;
  EXPECT_FALSE(ParseCli({"--dataset=census"}, &options, &error));
  EXPECT_NE(error.find("census"), std::string::npos);
  EXPECT_FALSE(ParseCli({"--d=9"}, &options, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;
  EXPECT_FALSE(ParseCli({"--n=0"}, &options, &error));
  EXPECT_FALSE(ParseCli({"--n=100,200", "--emit-input=x.csv"}, &options, &error));
  EXPECT_NE(error.find("--emit-input"), std::string::npos) << error;
}

TEST(CliOptions, RejectsConflictingAndUnknownFlags) {
  CliOptions options;
  std::string error;
  EXPECT_FALSE(ParseCli({"--input=x.csv", "--schema=9,9|5", "--n=100"}, &options, &error));
  EXPECT_NE(error.find("--n"), std::string::npos);
  EXPECT_FALSE(ParseCli({"--algos=tp"}, &options, &error));
  EXPECT_NE(error.find("--algos"), std::string::npos);
  EXPECT_FALSE(ParseCli({"--l=0"}, &options, &error));
  EXPECT_FALSE(ParseCli({"--out="}, &options, &error));
}

TEST(CliOptions, ConfigFileDrivesARunAndFlagsWin) {
  std::string path = WriteTempFile("cli.conf",
                                   "algo = mondrian\n"
                                   "l = 4\n"
                                   "n = 1500\n");
  CliOptions options;
  std::string error;
  const std::string config_flag = "--config=" + path;
  ASSERT_TRUE(ParseCli({config_flag.c_str(), "--algo=anatomy"}, &options, &error)) << error;
  EXPECT_EQ(options.algorithms, std::vector<Algorithm>{Algorithm::kAnatomy});
  EXPECT_EQ(options.ls, std::vector<std::uint32_t>{4});
  EXPECT_EQ(options.ns, std::vector<std::uint64_t>{1500});
  std::remove(path.c_str());
}

TEST(CliOptions, HelpShortCircuits) {
  CliOptions options;
  std::string error;
  ASSERT_TRUE(ParseCli({"--help"}, &options, &error));
  EXPECT_TRUE(options.help);
  EXPECT_NE(CliUsage("ldiv").find("--algo"), std::string::npos);
}

}  // namespace
}  // namespace ldv
