// End-to-end property tests of the TP pipeline against the exact solvers:
// approximation guarantees (Theorem 3, Corollary 3, Lemma 2), privacy of the
// output, and determinism.

#include <gtest/gtest.h>

#include "anonymity/eligibility.h"
#include "anonymity/generalization.h"
#include "common/grouped_table.h"
#include "core/tp.h"
#include "hardness/exact_solver.h"
#include "test_util.h"

namespace ldv {
namespace {

using testutil::RandomEligibleTable;

struct SweepParam {
  std::uint64_t seed;
  std::size_t n;
  std::size_t m;
  std::uint32_t l;
};

class TpSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TpSweepTest, OutputIsAnLDiversePartitionWithinTheoremThreeBound) {
  const SweepParam param = GetParam();
  Rng rng(param.seed);
  Table table = RandomEligibleTable(rng, param.n, {3, 3, 2}, param.m, param.l);
  ASSERT_TRUE(IsTableEligible(table, param.l));

  TpResult result = RunTp(table, param.l);
  ASSERT_TRUE(result.feasible);

  // The output is a valid l-diverse partition of the input.
  Partition partition = result.ToPartition();
  EXPECT_TRUE(partition.CoversExactly(table));
  EXPECT_TRUE(IsLDiverse(table, partition, param.l));

  // Kept groups carry no stars (identical QI signatures).
  for (const auto& group : result.kept_groups) {
    EXPECT_EQ(GroupStarCount(table, group), 0u);
  }

  // Theorem 3: |R| <= l * OPT for tuple minimization; Corollary 3 tightens
  // this to OPT + l - 1 when phase three is skipped.
  ExactTupleResult opt = ExactTupleMinimization(table, param.l);
  ASSERT_TRUE(opt.feasible);
  EXPECT_LE(result.residue_rows.size(), param.l * opt.removed + (param.l - 1))
      << "Theorem 3 violated";
  if (result.stats.terminated_phase <= 2) {
    EXPECT_LE(result.residue_rows.size(), opt.removed + param.l - 1) << "Corollary 3 violated";
  }
  if (result.stats.terminated_phase == 1) {
    EXPECT_EQ(result.residue_rows.size(), opt.removed) << "Corollary 1 violated";
  }
  // Corollary 2: OPT >= l * h(R-dot).
  EXPECT_GE(opt.removed,
            static_cast<std::uint64_t>(param.l) * result.stats.residue_pillar_after_phase1);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, TpSweepTest,
    ::testing::Values(SweepParam{1, 12, 3, 2}, SweepParam{2, 12, 3, 3}, SweepParam{3, 14, 4, 2},
                      SweepParam{4, 14, 4, 3}, SweepParam{5, 14, 4, 4}, SweepParam{6, 10, 5, 3},
                      SweepParam{7, 16, 5, 4}, SweepParam{8, 16, 5, 5}, SweepParam{9, 20, 6, 3},
                      SweepParam{10, 24, 6, 4}, SweepParam{11, 30, 7, 5},
                      SweepParam{12, 40, 8, 6}, SweepParam{13, 18, 4, 2},
                      SweepParam{14, 22, 5, 2}, SweepParam{15, 26, 6, 2}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "n" + std::to_string(info.param.n) +
             "m" + std::to_string(info.param.m) + "l" + std::to_string(info.param.l);
    });

TEST(TpPipeline, StarCountWithinLdOfOptimal) {
  // Lemma 2 path: TP's star count is at most l*d times the optimal star
  // count. Verified against the exhaustive star solver on small tables.
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    std::uint32_t l = 2 + rng.Below(2);
    std::size_t m = l + rng.Below(3);
    Table table = RandomEligibleTable(rng, 8 + rng.Below(5), {2, 2}, m, l);
    if (!IsTableEligible(table, l)) continue;
    const std::size_t d = table.qi_count();

    ExactStarResult opt = ExactStarMinimization(table, l);
    ASSERT_TRUE(opt.feasible);
    TpResult tp = RunTp(table, l);
    ASSERT_TRUE(tp.feasible);
    std::uint64_t tp_stars = PartitionStarCount(table, tp.ToPartition());
    // The guarantee has the additive phase-2 slack through Lemma 2:
    // stars <= d * (l * OPT_tuples + l - 1) <= d * (l * OPT_stars + l - 1).
    EXPECT_LE(tp_stars, d * (l * opt.stars + l - 1))
        << "trial " << trial << ": TP " << tp_stars << " vs OPT " << opt.stars;
  }
}

TEST(TpPipeline, DeterministicAcrossRuns) {
  Rng rng(31);
  Table table = RandomEligibleTable(rng, 60, {4, 3, 2}, 6, 3);
  TpResult a = RunTp(table, 3);
  TpResult b = RunTp(table, 3);
  ASSERT_TRUE(a.feasible);
  EXPECT_EQ(a.residue_rows, b.residue_rows);
  EXPECT_EQ(a.kept_groups, b.kept_groups);
  EXPECT_EQ(a.stats.terminated_phase, b.stats.terminated_phase);
}

TEST(TpPipeline, InfeasibleTableIsReported) {
  Schema schema = testutil::MakeSchema({2}, 3);
  Table table(schema);
  std::vector<Value> qi{0};
  table.AppendRow(qi, 0);
  table.AppendRow(qi, 0);
  table.AppendRow(qi, 1);
  // h(T) = 2, n = 3: not 2-eligible.
  TpResult result = RunTp(table, 2);
  EXPECT_FALSE(result.feasible);
}

TEST(TpPipeline, LEqualsOneKeepsEverything) {
  Rng rng(5);
  Table table = RandomEligibleTable(rng, 30, {3, 3}, 4, 1);
  TpResult result = RunTp(table, 1);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.residue_rows.empty());
  EXPECT_EQ(result.stats.terminated_phase, 1);
}

TEST(TpPipeline, ResidueRowsMatchEngineAccounting) {
  Rng rng(8);
  Table table = RandomEligibleTable(rng, 50, {5, 2, 2}, 5, 4);
  TpResult result = RunTp(table, 4);
  ASSERT_TRUE(result.feasible);
  std::uint64_t total_kept = 0;
  for (const auto& g : result.kept_groups) total_kept += g.size();
  EXPECT_EQ(total_kept + result.residue_rows.size(), table.size());
  EXPECT_EQ(result.stats.residue_size, result.residue_rows.size());
  EXPECT_EQ(result.stats.removed_phase1 + result.stats.removed_phase2 +
                result.stats.removed_phase3,
            result.residue_rows.size());
}

}  // namespace
}  // namespace ldv
