// Tests for the 3DM substrate, the Section 4 NP-hardness reduction, and the
// exact reference solvers.

#include <gtest/gtest.h>

#include "anonymity/eligibility.h"
#include "anonymity/generalization.h"
#include "hardness/exact_solver.h"
#include "hardness/reduction.h"
#include "hardness/three_dim_matching.h"
#include "test_util.h"

namespace ldv {
namespace {

TEST(ThreeDm, PaperFigure1InstanceIsYes) {
  ThreeDmInstance inst = PaperFigure1Instance();
  ASSERT_TRUE(inst.Valid());
  auto solution = Solve3Dm(inst);
  ASSERT_TRUE(solution.has_value());
  // The paper gives {p1, p3, p5, p6} as a solution; verify whatever the
  // solver returns is a perfect matching.
  std::set<std::uint32_t> as, bs, cs;
  for (std::uint32_t idx : *solution) {
    const Point3& p = inst.points[idx];
    EXPECT_TRUE(as.insert(p.a).second);
    EXPECT_TRUE(bs.insert(p.b).second);
    EXPECT_TRUE(cs.insert(p.c).second);
  }
  EXPECT_EQ(as.size(), inst.n);
}

TEST(ThreeDm, PlantedInstancesAreYes) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::uint32_t n = 2 + rng.Below(4);
    ThreeDmInstance inst = MakePlantedYesInstance(n, rng.Below(6), rng);
    ASSERT_TRUE(inst.Valid());
    EXPECT_TRUE(Solve3Dm(inst).has_value());
  }
}

TEST(ThreeDm, DetectsNoInstance) {
  // Two points both using D1 value 0; D1 value 1 is uncovered.
  ThreeDmInstance inst;
  inst.n = 2;
  inst.points = {Point3{0, 0, 0}, Point3{0, 1, 1}};
  ASSERT_TRUE(inst.Valid());
  EXPECT_FALSE(Solve3Dm(inst).has_value());
}

TEST(ThreeDm, ValidRejectsDuplicatesAndOutOfRange) {
  ThreeDmInstance dup;
  dup.n = 2;
  dup.points = {Point3{0, 0, 0}, Point3{0, 0, 0}};
  EXPECT_FALSE(dup.Valid());
  ThreeDmInstance range;
  range.n = 2;
  range.points = {Point3{2, 0, 0}};
  EXPECT_FALSE(range.Valid());
}

TEST(Reduction, PaperFigure1TableMatchesFigure1b) {
  // Figure 1b: the table built from Figure 1a with m = 8.
  ThreeDmInstance inst = PaperFigure1Instance();
  Table table = BuildReductionTable(inst, 8);
  ASSERT_EQ(table.size(), 12u);
  ASSERT_EQ(table.qi_count(), 6u);
  // SA column (1-based paper values): 1,2,3,4,5,6,7,7,8,8,8,8.
  const std::vector<SaValue> expected_sa = {0, 1, 2, 3, 4, 5, 6, 6, 7, 7, 7, 7};
  for (RowId r = 0; r < table.size(); ++r) {
    EXPECT_EQ(table.sa(r), expected_sa[r]) << "row " << r;
  }
  // Spot-check Figure 1b rows: row 7 (value c in D2) has 0 on A3 only and
  // 7 elsewhere.
  for (AttrId a = 0; a < 6; ++a) {
    EXPECT_EQ(table.qi(6, a), a == 2 ? 0u : 7u) << "attr " << a;
  }
  // Row 1 (value 1 in D1): points p1, p2 have first coordinate 1.
  for (AttrId a = 0; a < 6; ++a) {
    EXPECT_EQ(table.qi(0, a), (a == 0 || a == 1) ? 0u : 1u) << "attr " << a;
  }
  EXPECT_TRUE(CheckReductionProperties(table, inst, 8));
}

TEST(Reduction, AlphabetSizeIsMPlusOne) {
  // Theorem 1's remark: the reduction needs an alphabet of size m+1.
  ThreeDmInstance inst = PaperFigure1Instance();
  Table table = BuildReductionTable(inst, 8);
  std::set<Value> alphabet;
  for (RowId r = 0; r < table.size(); ++r) {
    for (AttrId a = 0; a < table.qi_count(); ++a) alphabet.insert(table.qi(r, a));
    alphabet.insert(table.sa(r) + 1);  // paper's SA values 1..m
  }
  EXPECT_EQ(alphabet.size(), 9u);  // {0, 1, ..., 8}
}

TEST(Reduction, PropertiesHoldAcrossMRange) {
  Rng rng(5);
  for (std::uint32_t n = 2; n <= 4; ++n) {
    ThreeDmInstance inst = MakePlantedYesInstance(n, 2, rng);
    for (std::uint32_t m = 3; m <= 3 * n; ++m) {
      Table table = BuildReductionTable(inst, m);
      EXPECT_TRUE(CheckReductionProperties(table, inst, m)) << "n=" << n << " m=" << m;
    }
  }
}

TEST(Reduction, MatchingInducesTargetStarGeneralization) {
  // Only-if direction of Lemma 3: a 3DM solution yields a 3-diverse
  // generalization with exactly 3n(d-1) stars.
  ThreeDmInstance inst = PaperFigure1Instance();
  Table table = BuildReductionTable(inst, 8);
  auto matching = Solve3Dm(inst);
  ASSERT_TRUE(matching.has_value());
  Partition partition = PartitionFromMatching(inst, *matching);
  EXPECT_TRUE(partition.CoversExactly(table));
  EXPECT_TRUE(IsLDiverse(table, partition, 3));
  EXPECT_EQ(PartitionStarCount(table, partition), ReductionTargetStars(inst.n, inst.d()));
}

TEST(Reduction, Lemma3BothDirectionsOnSmallInstances) {
  // Exhaustively verify Lemma 3 on n = 2 instances (6-row tables): the
  // optimal 3-diverse generalization has 3n(d-1) stars iff 3DM is yes.
  Rng rng(9);
  int yes_seen = 0, no_seen = 0;
  for (int trial = 0; trial < 12; ++trial) {
    std::uint32_t n = 2;
    std::uint32_t d = n + rng.Below(3);
    ThreeDmInstance inst = MakeRandomInstance(n, d, rng);
    Table table = BuildReductionTable(inst, 3 + rng.Below(3 * n - 2));
    bool is_yes = Solve3Dm(inst).has_value();
    ExactStarResult opt = ExactStarMinimization(table, 3);
    ASSERT_TRUE(opt.feasible);
    std::uint64_t target = ReductionTargetStars(inst.n, inst.d());
    if (is_yes) {
      EXPECT_EQ(opt.stars, target) << "yes-instance must reach the target";
      ++yes_seen;
    } else {
      EXPECT_GT(opt.stars, target) << "no-instance must not reach the target";
      ++no_seen;
    }
  }
  EXPECT_GT(yes_seen, 0);
  EXPECT_GT(no_seen, 0);
}

TEST(ExactSolvers, StarSolverMatchesHandComputedExample) {
  // Paper Table 1 with l = 2: Table 3's partition (8 stars) is one
  // candidate; check the solver finds something no worse and 2-diverse.
  Table table = testutil::PaperTable1();
  ExactStarResult result = ExactStarMinimization(table, 2);
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.stars, 8u);
  EXPECT_TRUE(result.partition.CoversExactly(table));
  EXPECT_TRUE(IsLDiverse(table, result.partition, 2));
  EXPECT_EQ(PartitionStarCount(table, result.partition), result.stars);
}

TEST(ExactSolvers, TupleSolverMatchesPhaseOneOptimum) {
  // On Table 1 with l = 2 phase one is optimal with 4 removed tuples.
  Table table = testutil::PaperTable1();
  ExactTupleResult result = ExactTupleMinimization(table, 2);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.removed, 4u);
}

TEST(ExactSolvers, LemmaTwoRelationBetweenObjectives) {
  // beta <= alpha <= d * beta for the optimal solutions (proof of Lemma 2).
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    Table table = testutil::RandomEligibleTable(rng, 10, {2, 3}, 4, 2);
    if (!IsTableEligible(table, 2)) continue;
    ExactStarResult star = ExactStarMinimization(table, 2);
    ExactTupleResult tuple = ExactTupleMinimization(table, 2);
    ASSERT_TRUE(star.feasible);
    ASSERT_TRUE(tuple.feasible);
    // From the Lemma 2 proof: alpha_1 <= alpha_2 <= d * beta_2, i.e. the
    // star optimum is at most d times the tuple optimum.
    if (tuple.removed > 0) {
      EXPECT_LE(star.stars, table.qi_count() * tuple.removed)
          << "alpha1 <= d * beta2 <= d * beta1 chain";
    } else {
      EXPECT_EQ(star.stars, 0u);
    }
  }
}

TEST(ExactSolvers, InfeasibleInputsReported) {
  Schema schema = testutil::MakeSchema({2}, 2);
  Table table(schema);
  std::vector<Value> qi{0};
  table.AppendRow(qi, 0);
  table.AppendRow(qi, 0);
  table.AppendRow(qi, 1);
  EXPECT_FALSE(ExactStarMinimization(table, 2).feasible);
  EXPECT_FALSE(ExactTupleMinimization(table, 2).feasible);
}

}  // namespace
}  // namespace ldv
