// Unit tests of the shared parallel runtime (src/common/parallel.h): the
// thread-budget helpers, the deterministic chunk geometry of ParallelFor,
// the ordered combine of ParallelReduce, per-thread workspace handling,
// nested calls and cross-thread use. Everything here runs at explicit
// thread counts above the (possibly single-core) host's concurrency --
// oversubscription is part of the contract, it is what makes the parallel
// code paths testable anywhere.

#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

namespace ldv {
namespace {

// Restores the process-wide budget around each test.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { SetThreadBudget(0); }
};

TEST_F(ParallelTest, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(HardwareThreads(), 1u);
}

TEST_F(ParallelTest, ThreadBudgetResolvesZeroToHardware) {
  SetThreadBudget(0);
  EXPECT_EQ(ThreadBudget(), HardwareThreads());
  SetThreadBudget(3);
  EXPECT_EQ(ThreadBudget(), 3u);
  SetThreadBudget(64);  // oversubscription is honored, not clamped
  EXPECT_EQ(ThreadBudget(), 64u);
}

TEST_F(ParallelTest, InnerThreadsFollowsBudgetAndScope) {
  SetThreadBudget(5);
  EXPECT_EQ(InnerThreads(), 5u);
  {
    InnerThreadsScope scope(1);
    EXPECT_EQ(InnerThreads(), 1u);
    {
      InnerThreadsScope nested(2);
      EXPECT_EQ(InnerThreads(), 2u);
    }
    EXPECT_EQ(InnerThreads(), 1u);
  }
  EXPECT_EQ(InnerThreads(), 5u);
}

TEST_F(ParallelTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 7u}) {
    SetThreadBudget(threads);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{97}, std::size_t{4096}}) {
      Workspace ws;
      std::vector<std::atomic<std::uint32_t>> hits(n);
      for (auto& h : hits) h.store(0);
      ParallelFor(n, 17, ws, [&](std::size_t begin, std::size_t end, Workspace&) {
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1u) << "n=" << n << " threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST_F(ParallelTest, ChunkGeometryDependsOnlyOnSizeAndGrain) {
  // ceil(n/grain) chunks, chunk k = [k*grain, min(n, (k+1)*grain)), at
  // every thread count -- the documented contract determinism rests on.
  const std::size_t n = 1000, grain = 64;
  for (unsigned threads : {1u, 3u, 8u}) {
    SetThreadBudget(threads);
    Workspace ws;
    std::mutex mu;
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    ParallelFor(n, grain, ws, [&](std::size_t begin, std::size_t end, Workspace&) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.insert({begin, end});
    });
    ASSERT_EQ(chunks.size(), (n + grain - 1) / grain);
    for (const auto& [begin, end] : chunks) {
      EXPECT_EQ(begin % grain, 0u);
      EXPECT_EQ(end, std::min(n, begin + grain));
    }
  }
}

TEST_F(ParallelTest, ParallelReduceSumsExactly) {
  for (unsigned threads : {1u, 2u, 4u}) {
    SetThreadBudget(threads);
    Workspace ws;
    const std::size_t n = 12345;
    std::uint64_t total = ParallelReduce(
        n, 100, ws, std::uint64_t{0},
        [](std::size_t begin, std::size_t end, Workspace&) {
          std::uint64_t partial = 0;
          for (std::size_t i = begin; i < end; ++i) partial += i;
          return partial;
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(total, static_cast<std::uint64_t>(n) * (n - 1) / 2) << "threads=" << threads;
  }
}

TEST_F(ParallelTest, FloatReductionIsBitIdenticalAcrossThreadCounts) {
  // The ordered combine makes even floating-point results a pure function
  // of (n, grain): run the same reduction at several thread counts and
  // require bit equality.
  const std::size_t n = 100000;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = 1.0 / static_cast<double>(i + 3);
  auto run = [&] {
    Workspace ws;
    return ParallelReduce(
        n, 4096, ws, 0.0,
        [&](std::size_t begin, std::size_t end, Workspace&) {
          double partial = 0.0;
          for (std::size_t i = begin; i < end; ++i) partial += values[i];
          return partial;
        },
        [](double a, double b) { return a + b; });
  };
  SetThreadBudget(1);
  const double reference = run();
  for (unsigned threads : {2u, 4u, 8u}) {
    SetThreadBudget(threads);
    EXPECT_EQ(run(), reference) << "threads=" << threads;
  }
}

TEST_F(ParallelTest, WorkerWorkspacesAreDistinctPerThread) {
  // Two chunks running on different threads must never share a Workspace;
  // chunks on the same thread must reuse one (that is what makes the
  // buffer pools effective).
  SetThreadBudget(4);
  Workspace caller_ws;
  std::mutex mu;
  std::vector<std::pair<std::thread::id, Workspace*>> seen;
  ParallelFor(64, 1, caller_ws, [&](std::size_t, std::size_t, Workspace& ws) {
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back({std::this_thread::get_id(), &ws});
  });
  ASSERT_EQ(seen.size(), 64u);
  for (std::size_t a = 0; a < seen.size(); ++a) {
    for (std::size_t b = a + 1; b < seen.size(); ++b) {
      if (seen[a].first == seen[b].first) {
        EXPECT_EQ(seen[a].second, seen[b].second) << "one thread, two workspaces";
      } else {
        EXPECT_NE(seen[a].second, seen[b].second) << "two threads share a workspace";
      }
    }
  }
}

TEST_F(ParallelTest, NestedParallelForRunsInline) {
  SetThreadBudget(4);
  Workspace ws;
  std::atomic<std::uint64_t> total{0};
  ParallelFor(8, 1, ws, [&](std::size_t, std::size_t, Workspace& outer_ws) {
    // A nested call must execute (inline) rather than deadlock on the
    // pool, and must see the same per-thread workspace.
    ParallelFor(10, 2, outer_ws, [&](std::size_t begin, std::size_t end, Workspace& inner_ws) {
      EXPECT_EQ(&inner_ws, &outer_ws);
      total.fetch_add(end - begin);
    });
  });
  EXPECT_EQ(total.load(), 80u);
}

TEST_F(ParallelTest, ConcurrentCallersSerializeSafely) {
  // Two plain threads issuing ParallelFor concurrently: regions serialize
  // on the pool, both complete, results are exact. (This is also the
  // TSan-job scenario.)
  SetThreadBudget(4);
  auto sum_to = [](std::size_t n) {
    Workspace ws;
    return ParallelReduce(
        n, 64, ws, std::uint64_t{0},
        [](std::size_t begin, std::size_t end, Workspace&) {
          std::uint64_t partial = 0;
          for (std::size_t i = begin; i < end; ++i) partial += i;
          return partial;
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
  };
  std::uint64_t r1 = 0, r2 = 0;
  std::thread t1([&] { r1 = sum_to(5000); });
  std::thread t2([&] { r2 = sum_to(7000); });
  t1.join();
  t2.join();
  EXPECT_EQ(r1, 5000ull * 4999 / 2);
  EXPECT_EQ(r2, 7000ull * 6999 / 2);
}

TEST_F(ParallelTest, ReduceOnEmptyRangeReturnsIdentity) {
  SetThreadBudget(4);
  Workspace ws;
  double total = ParallelReduce(
      0, 16, ws, 42.0, [](std::size_t, std::size_t, Workspace&) { return 1.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(total, 42.0);
}

}  // namespace
}  // namespace ldv
