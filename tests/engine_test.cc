// Engine-layer tests: the Expected error channel and its exit-code table,
// the JobSpec wire round trip and rejection rules, the single semantic
// validation pass (ResolveJobSpec), the DatasetCache LRU behavior, and
// the Engine itself -- cache hits on repeat traffic, paged-run cache
// bypass, cross-run artifact memoization, and equality with the CLI
// adapter path.

#include "engine/engine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "cli/pipeline.h"
#include "common/csv.h"
#include "common/expected.h"
#include "common/memory_budget.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/schema_spec.h"
#include "engine/dataset_cache.h"
#include "engine/error.h"
#include "engine/job_spec.h"
#include "engine/report.h"
#include "test_util.h"

namespace ldv {
namespace {

JobSpec SyntheticSpec() {
  JobSpec spec;
  spec.dataset.name = "sal";
  spec.ns = {900};
  spec.ds = {3};
  return spec;
}

std::string ReadFile(const std::string& path) {
  std::string content;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return content;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, got);
  std::fclose(f);
  return content;
}

TEST(Expected, HoldsValueOrError) {
  Expected<int, PipelineError> ok(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);

  Expected<int, PipelineError> bad(UsageError("l", "boom"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().field, "l");
  EXPECT_EQ(bad.error().message, "boom");
}

TEST(PipelineErrorCodes, OneExitCodeTable) {
  EXPECT_EQ(ExitCodeFor(PipelineErrorCode::kUsage), 1);
  EXPECT_EQ(ExitCodeFor(PipelineErrorCode::kInfeasible), 2);
  EXPECT_EQ(ExitCodeFor(PipelineErrorCode::kIo), 3);
  EXPECT_EQ(ExitCodeFor(PipelineErrorCode::kUnavailable), 4);
  EXPECT_STREQ(PipelineErrorCodeName(PipelineErrorCode::kIo), "io");
}

TEST(JobSpecWire, RoundTripsEveryNonDefaultField) {
  JobSpec spec;
  spec.algorithms = {Algorithm::kMondrian, Algorithm::kAnatomy};
  spec.ls = {2, 4, 6};
  spec.dataset.name = "occ";
  spec.dataset.seed = 99;
  spec.ns = {600, 900};
  spec.ds = {2, 3};
  spec.out = "spec_out";
  spec.sweep = true;
  spec.write_releases = true;
  spec.compute_kl = false;
  spec.timings = false;
  spec.threads = 4;
  spec.memory_budget = 64u << 20;
  spec.priority = 7;
  spec.deadline_ms = 1500;

  Expected<JobSpec, PipelineError> parsed = ParseJobSpec(SerializeJobSpec(spec));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed->algorithms, spec.algorithms);
  EXPECT_EQ(parsed->ls, spec.ls);
  EXPECT_EQ(parsed->dataset.name, "occ");
  EXPECT_EQ(parsed->dataset.seed, 99u);
  EXPECT_EQ(parsed->ns, spec.ns);
  EXPECT_EQ(parsed->ds, spec.ds);
  EXPECT_EQ(parsed->out, "spec_out");
  EXPECT_TRUE(parsed->sweep);
  EXPECT_TRUE(parsed->write_releases);
  EXPECT_FALSE(parsed->compute_kl);
  EXPECT_FALSE(parsed->timings);
  EXPECT_EQ(parsed->threads, 4u);
  EXPECT_EQ(parsed->memory_budget, 64u << 20);
  EXPECT_EQ(parsed->priority, 7u);
  EXPECT_EQ(parsed->deadline_ms, 1500u);
}

TEST(JobSpecWire, RejectsUnknownKeysAndBadVersions) {
  Expected<JobSpec, PipelineError> unknown = ParseJobSpec("version = 1\nfrobnicate = 3\n");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().field, "frobnicate");

  Expected<JobSpec, PipelineError> unversioned = ParseJobSpec("algo = tp\n");
  ASSERT_FALSE(unversioned.ok());
  EXPECT_EQ(unversioned.error().field, "version");

  Expected<JobSpec, PipelineError> future = ParseJobSpec("version = 2\n");
  ASSERT_FALSE(future.ok());
  EXPECT_NE(future.error().message.find("unsupported job spec version"), std::string::npos);
}

TEST(JobSpecWire, RejectsDuplicateKeysNulBytesAndOversizedKeys) {
  // Silent last-wins on a duplicate key would let a smuggled second line
  // quietly override the first; the parser refuses with the line number.
  Expected<JobSpec, PipelineError> dup = ParseJobSpec("version = 1\nl = 2\nl = 4\n");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, PipelineErrorCode::kUsage);
  EXPECT_EQ(dup.error().field, "l");
  EXPECT_NE(dup.error().message.find("duplicate key"), std::string::npos) << dup.error().message;
  EXPECT_NE(dup.error().message.find("jobspec:3"), std::string::npos) << dup.error().message;

  std::string with_nul = "version = 1\nout = x";
  with_nul.push_back('\0');
  with_nul += "y\n";
  Expected<JobSpec, PipelineError> nul = ParseJobSpec(with_nul);
  ASSERT_FALSE(nul.ok());
  EXPECT_EQ(nul.error().code, PipelineErrorCode::kUsage);
  EXPECT_NE(nul.error().message.find("NUL"), std::string::npos) << nul.error().message;

  const std::string long_key(200, 'k');
  Expected<JobSpec, PipelineError> oversized =
      ParseJobSpec("version = 1\n" + long_key + " = v\n");
  ASSERT_FALSE(oversized.ok());
  EXPECT_EQ(oversized.error().code, PipelineErrorCode::kUsage);
  EXPECT_NE(oversized.error().message.find("128-byte limit"), std::string::npos)
      << oversized.error().message;
  EXPECT_NE(oversized.error().message.find("jobspec:2"), std::string::npos)
      << oversized.error().message;
}

TEST(ResolveJobSpec, ValidationErrorsNameTheOffendingField) {
  JobSpec zero_l = SyntheticSpec();
  zero_l.ls = {0};
  Expected<ResolvedJobSpec, PipelineError> r1 = ResolveJobSpec(zero_l);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.error().field, "l");

  JobSpec tiny_budget = SyntheticSpec();
  tiny_budget.memory_budget = 1u << 20;
  Expected<ResolvedJobSpec, PipelineError> r2 = ResolveJobSpec(tiny_budget);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.error().field, "memory-budget");
  EXPECT_NE(r2.error().message.find("below the 8M floor"), std::string::npos);

  JobSpec grid_emit = SyntheticSpec();
  grid_emit.ns = {600, 900};
  grid_emit.emit_input = "t.csv";
  Expected<ResolvedJobSpec, PipelineError> r3 = ResolveJobSpec(grid_emit);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.error().field, "emit-input");

  JobSpec stray_format = SyntheticSpec();
  stray_format.format = CsvFormat::kRaw;
  Expected<ResolvedJobSpec, PipelineError> r4 = ResolveJobSpec(stray_format);
  ASSERT_FALSE(r4.ok());
  EXPECT_EQ(r4.error().field, "format");
}

TEST(ResolveJobSpec, CsvInputNormalizesToASingleCellGrid) {
  Rng rng(3);
  Table table = testutil::RandomEligibleTable(rng, 40, {6, 4}, 5, 2);
  std::string path = testing::TempDir() + "engine_resolve_input.csv";
  ASSERT_TRUE(WriteTableCsv(table, path));

  JobSpec spec;
  spec.input = path;
  spec.schema_spec = FormatSchemaSpec(table.schema());
  spec.ns = {10000};
  spec.ds = {3};
  Expected<ResolvedJobSpec, PipelineError> resolved = ResolveJobSpec(spec);
  ASSERT_TRUE(resolved.ok()) << resolved.error().message;
  EXPECT_NE(resolved->format, CsvFormat::kAuto) << "kAuto must resolve at validation time";
  EXPECT_EQ(resolved->spec.ns, std::vector<std::uint64_t>{0});
  EXPECT_EQ(resolved->spec.ds, std::vector<std::uint64_t>{0});
  std::remove(path.c_str());
}

TEST(DatasetCache, LruHitMissEvictAndStats) {
  DatasetCache cache(/*capacity_bytes=*/1000);
  auto t1 = std::make_shared<EngineTable>(testutil::PaperTable1());
  auto t2 = std::make_shared<EngineTable>(testutil::PaperTable1());
  auto t3 = std::make_shared<EngineTable>(testutil::PaperTable1());

  EXPECT_EQ(cache.Lookup("a"), nullptr);
  cache.Insert("a", t1, 400);
  cache.Insert("b", t2, 400);
  EXPECT_EQ(cache.Lookup("a"), t1);  // refreshes "a" to most-recent
  cache.Insert("c", t3, 400);        // capacity 1000: evicts LRU "b"
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_EQ(cache.Lookup("a"), t1);
  EXPECT_EQ(cache.Lookup("c"), t3);

  DatasetCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.resident_bytes, 800u);

  // An entry larger than the whole capacity is never cached.
  cache.Insert("huge", t1, 4000);
  EXPECT_EQ(cache.Lookup("huge"), nullptr);

  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
}

TEST(DatasetCache, ZeroCapacityDisablesCaching) {
  DatasetCache cache(0);
  cache.Insert("a", std::make_shared<EngineTable>(testutil::PaperTable1()), 10);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
}

TEST(DatasetCache, KeysCarryContentIdentity) {
  EXPECT_EQ(DatasetCache::CsvKey("/definitely/not/a/file.csv", CsvFormat::kCoded, ""), "")
      << "unstatable files are uncacheable so the loader reports the real error";

  DatasetSpec cell;
  cell.name = "sal";
  cell.n = 900;
  cell.seed = 1;
  cell.d = 3;
  std::string key = DatasetCache::SyntheticKey(cell);
  EXPECT_NE(key.find("sal"), std::string::npos);
  EXPECT_NE(key.find("900"), std::string::npos);
}

TEST(Engine, RepeatRunsHitTheDatasetCache) {
  Engine engine;
  JobSpec spec = SyntheticSpec();
  spec.algorithms = {Algorithm::kTp};

  Expected<JobResult, PipelineError> first = engine.Run(spec);
  ASSERT_TRUE(first.ok()) << first.error().message;
  EXPECT_EQ(first->cache_hits, 0u);
  EXPECT_EQ(first->cache_misses, 1u);

  Expected<JobResult, PipelineError> second = engine.Run(spec);
  ASSERT_TRUE(second.ok()) << second.error().message;
  EXPECT_EQ(second->cache_hits, 1u);
  EXPECT_EQ(second->cache_misses, 0u);
  EXPECT_EQ(first->tables[0].get(), second->tables[0].get())
      << "a cache hit shares the materialized table, not a copy";
  SetThreadBudget(0);
}

TEST(Engine, BudgetedInRamRunsCacheNormallyAndMatchByteForByte) {
  Engine engine;
  JobSpec spec = SyntheticSpec();
  spec.algorithms = {Algorithm::kMondrian};
  spec.timings = false;

  Expected<JobResult, PipelineError> plain = engine.Run(spec);
  ASSERT_TRUE(plain.ok()) << plain.error().message;

  // 900 rows fit comfortably inside a 64M budget, so ingestion stays
  // in-RAM and the DatasetCache serves the budgeted run like any other.
  JobSpec budgeted = spec;
  budgeted.memory_budget = 64u << 20;
  Expected<JobResult, PipelineError> cached = engine.Run(budgeted);
  ASSERT_TRUE(cached.ok()) << cached.error().message;
  EXPECT_EQ(cached->cache_hits, 1u);
  EXPECT_EQ(cached->cache_misses, 0u);
  EXPECT_EQ(cached->tables[0]->paged, nullptr);
  EXPECT_EQ(engine.dataset_cache().stats().bypassed_paged, 0u);

  ReportOptions options;
  options.include_seconds = false;
  EXPECT_EQ(RenderJsonReport(plain.value(), options), RenderJsonReport(cached.value(), options));
  EXPECT_EQ(RenderMetricsCsv(plain.value(), options), RenderMetricsCsv(cached.value(), options));
  SetMemoryBudget(0);
  SetThreadBudget(0);
}

TEST(Engine, PagedRunsBypassTheCacheButMatchByteForByte) {
  Engine engine;
  JobSpec spec = SyntheticSpec();
  spec.ns = {200000};
  spec.algorithms = {Algorithm::kMondrian};
  spec.timings = false;

  Expected<JobResult, PipelineError> plain = engine.Run(spec);
  ASSERT_TRUE(plain.ok()) << plain.error().message;
  EXPECT_EQ(plain->cache_misses, 1u);

  // Under the 8M floor budget the estimated table footprint (~3.2M)
  // exceeds a quarter of the budget, so ingestion takes the paged path
  // and bypasses the cache -- recorded, not silently skipped.
  JobSpec budgeted = spec;
  budgeted.memory_budget = 8u << 20;
  Expected<JobResult, PipelineError> paged = engine.Run(budgeted);
  ASSERT_TRUE(paged.ok()) << paged.error().message;
  EXPECT_EQ(paged->cache_hits, 0u);
  EXPECT_EQ(paged->cache_misses, 0u);
  EXPECT_NE(paged->tables[0]->paged, nullptr);
  EXPECT_EQ(engine.dataset_cache().stats().bypassed_paged, 1u);

  ReportOptions options;
  options.include_seconds = false;
  EXPECT_EQ(RenderJsonReport(plain.value(), options), RenderJsonReport(paged.value(), options));
  EXPECT_EQ(RenderMetricsCsv(plain.value(), options), RenderMetricsCsv(paged.value(), options));
  SetMemoryBudget(0);
  SetThreadBudget(0);
}

TEST(Engine, SweepResolvesArtifactsOnceAndRepeatRunsHitTheArtifactCache) {
  Engine engine;
  JobSpec spec = SyntheticSpec();
  spec.algorithms = {Algorithm::kTp, Algorithm::kTpPlus, Algorithm::kHilbert,
                     Algorithm::kMondrian};
  spec.ls = {2, 4, 6};
  spec.timings = false;

  Expected<JobResult, PipelineError> first = engine.Run(spec);
  ASSERT_TRUE(first.ok()) << first.error().message;
  ASSERT_EQ(first->jobs.size(), 12u);
  EXPECT_EQ(first->artifact_hits, 0u);
  EXPECT_EQ(first->artifact_misses, 2u)
      << "one GroupedTable build and one Hilbert order for the whole sweep";

  Expected<JobResult, PipelineError> second = engine.Run(spec);
  ASSERT_TRUE(second.ok()) << second.error().message;
  EXPECT_EQ(second->artifact_hits, 2u);
  EXPECT_EQ(second->artifact_misses, 0u);

  const ArtifactCache::Stats stats = engine.artifact_cache().stats();
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.resident_bytes, 0u);

  ReportOptions options;
  options.include_seconds = false;
  EXPECT_EQ(RenderJsonReport(first.value(), options), RenderJsonReport(second.value(), options));
  EXPECT_EQ(RenderMetricsCsv(first.value(), options),
            RenderMetricsCsv(second.value(), options));
  SetThreadBudget(0);
}

TEST(Engine, DisabledArtifactCacheMatchesTheHitPathByteForByte) {
  JobSpec spec = SyntheticSpec();
  spec.algorithms = {Algorithm::kTp, Algorithm::kTpPlus, Algorithm::kHilbert};
  spec.ls = {2, 4};
  spec.timings = false;

  Engine warm_engine;
  ASSERT_TRUE(warm_engine.Run(spec).ok());
  Expected<JobResult, PipelineError> warm = warm_engine.Run(spec);
  ASSERT_TRUE(warm.ok()) << warm.error().message;
  EXPECT_EQ(warm->artifact_hits, 2u);

  Engine cold_engine;
  JobSpec disabled = spec;
  disabled.artifact_cache = 0;
  Expected<JobResult, PipelineError> cold = cold_engine.Run(disabled);
  ASSERT_TRUE(cold.ok()) << cold.error().message;
  EXPECT_EQ(cold_engine.artifact_cache().stats().insertions, 0u)
      << "--artifact-cache=0 disables memoization entirely";

  ReportOptions options;
  options.include_seconds = false;
  EXPECT_EQ(RenderJsonReport(warm.value(), options), RenderJsonReport(cold.value(), options));
  EXPECT_EQ(RenderMetricsCsv(warm.value(), options), RenderMetricsCsv(cold.value(), options));
  SetThreadBudget(0);
}

TEST(Engine, MatchesTheCliAdapterByteForByte) {
  CliOptions options;
  options.dataset.name = "sal";
  options.ns = {900};
  options.ds = {3};
  options.algorithms = {Algorithm::kTpPlus};
  options.ls = {3};
  options.timings = false;

  Expected<PipelineResult, PipelineError> via_cli = RunPipeline(options);
  ASSERT_TRUE(via_cli.ok()) << via_cli.error().message;

  Engine engine;
  Expected<JobResult, PipelineError> via_engine = engine.Run(ToJobSpec(options));
  ASSERT_TRUE(via_engine.ok()) << via_engine.error().message;

  ReportOptions report_options;
  report_options.include_seconds = false;
  EXPECT_EQ(RenderJsonReport(via_cli.value(), report_options),
            RenderJsonReport(via_engine.value(), report_options));
  EXPECT_EQ(RenderMetricsCsv(via_cli.value(), report_options),
            RenderMetricsCsv(via_engine.value(), report_options));
  SetThreadBudget(0);
}

TEST(Engine, ExecuteWritesOutputsAndMapsInfeasibleToExitCode) {
  Engine engine;
  JobSpec spec = SyntheticSpec();
  spec.algorithms = {Algorithm::kTp};
  spec.timings = false;
  spec.out = testing::TempDir() + "engine_execute_out";

  std::string notices;
  Expected<ExecuteSummary, PipelineError> summary = engine.Execute(spec, &notices);
  ASSERT_TRUE(summary.ok()) << summary.error().message;
  EXPECT_EQ(summary->job_count, 1u);
  EXPECT_EQ(summary->infeasible, 0u);
  EXPECT_EQ(summary->exit_code, 0);
  EXPECT_FALSE(ReadFile(spec.out + ".json").empty());
  EXPECT_FALSE(ReadFile(spec.out + "_metrics.csv").empty());
  EXPECT_FALSE(ReadFile(spec.out + ".csv").empty());

  JobSpec infeasible = spec;
  infeasible.ns = {50};
  infeasible.ls = {10000};
  Expected<ExecuteSummary, PipelineError> summary2 = engine.Execute(infeasible);
  ASSERT_TRUE(summary2.ok()) << summary2.error().message;
  EXPECT_EQ(summary2->infeasible, 1u);
  EXPECT_EQ(summary2->exit_code, ExitCodeFor(PipelineErrorCode::kInfeasible));

  for (const char* suffix : {".json", "_metrics.csv", ".csv"}) {
    std::remove((spec.out + suffix).c_str());
  }
  SetThreadBudget(0);
}

}  // namespace
}  // namespace ldv
