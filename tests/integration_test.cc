// Cross-module integration tests: the Section 6 findings, in miniature, on
// the synthetic SAL / OCC workloads.

#include <gtest/gtest.h>

#include "anonymity/eligibility.h"
#include "anonymity/generalization.h"
#include "core/anonymizer.h"
#include "data/acs_generator.h"
#include "data/acs_schema.h"
#include "data/workload.h"
#include "metrics/group_stats.h"
#include "metrics/kl_divergence.h"
#include "tds/tds.h"

namespace ldv {
namespace {

class SalWorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sal_ = new Table(GenerateSal(20000, 1));
    sal4_ = new Table(sal_->ProjectQi({kAge, kGender, kRace, kEducation}));
  }
  static void TearDownTestSuite() {
    delete sal_;
    delete sal4_;
    sal_ = nullptr;
    sal4_ = nullptr;
  }
  static Table* sal_;
  static Table* sal4_;
};

Table* SalWorkloadTest::sal_ = nullptr;
Table* SalWorkloadTest::sal4_ = nullptr;

TEST_F(SalWorkloadTest, TpPlusBeatsBothTpAndHilbertOnStars) {
  // The headline Section 6.1 ordering on SAL-4 style data.
  for (std::uint32_t l : {2u, 6u}) {
    AnonymizationOutcome tp = Anonymize(*sal4_, l, Algorithm::kTp);
    AnonymizationOutcome tpp = Anonymize(*sal4_, l, Algorithm::kTpPlus);
    AnonymizationOutcome hil = Anonymize(*sal4_, l, Algorithm::kHilbert);
    ASSERT_TRUE(tp.feasible && tpp.feasible && hil.feasible);
    EXPECT_LE(tpp.stars, tp.stars) << "l=" << l;
    EXPECT_LE(tpp.stars, hil.stars) << "l=" << l;
  }
}

TEST_F(SalWorkloadTest, StarsIncreaseWithL) {
  std::uint64_t prev = 0;
  for (std::uint32_t l : {2u, 4u, 6u, 8u}) {
    AnonymizationOutcome tpp = Anonymize(*sal4_, l, Algorithm::kTpPlus);
    ASSERT_TRUE(tpp.feasible);
    EXPECT_GE(tpp.stars, prev) << "l=" << l;
    prev = tpp.stars;
  }
}

TEST_F(SalWorkloadTest, StarsIncreaseWithDimensionality) {
  // Figure 3's curse of dimensionality, for TP+.
  std::uint64_t prev = 0;
  for (std::size_t d : {1u, 3u, 5u}) {
    std::vector<AttrId> attrs;
    for (std::size_t a = 0; a < d; ++a) attrs.push_back(static_cast<AttrId>(a));
    Table t = sal_->ProjectQi(attrs);
    AnonymizationOutcome tpp = Anonymize(t, 6, Algorithm::kTpPlus);
    ASSERT_TRUE(tpp.feasible);
    EXPECT_GE(tpp.stars, prev) << "d=" << d;
    prev = tpp.stars;
  }
}

TEST_F(SalWorkloadTest, TpSkipsPhaseThree) {
  // "on all 128 tables and for all 9 values of l, TP terminates before the
  // third phase" -- check the same on this workload.
  for (std::uint32_t l : {2u, 5u, 10u}) {
    AnonymizationOutcome tp = Anonymize(*sal4_, l, Algorithm::kTp);
    ASSERT_TRUE(tp.feasible);
    EXPECT_LE(tp.tp_stats.terminated_phase, 2) << "l=" << l;
  }
}

TEST_F(SalWorkloadTest, TpPlusBeatsTdsOnKlDivergence) {
  // The Section 6.2 comparison (Figures 7, 8).
  const std::uint32_t l = 4;
  AnonymizationOutcome tpp = Anonymize(*sal4_, l, Algorithm::kTpPlus);
  TdsResult tds = RunTds(*sal4_, l);
  ASSERT_TRUE(tpp.feasible);
  ASSERT_TRUE(tds.feasible);
  GeneralizedTable tpp_gen(*sal4_, tpp.partition);
  double kl_tpp = KlDivergenceSuppression(*sal4_, tpp_gen);
  double kl_tds = KlDivergenceSingleDim(*sal4_, *tds.generalization);
  EXPECT_LT(kl_tpp, kl_tds);
}

TEST_F(SalWorkloadTest, AllPartitionsAreValidAndDiverse) {
  for (std::uint32_t l : {3u, 7u}) {
    for (Algorithm algo : {Algorithm::kTp, Algorithm::kTpPlus, Algorithm::kHilbert}) {
      AnonymizationOutcome outcome = Anonymize(*sal4_, l, algo);
      ASSERT_TRUE(outcome.feasible) << AlgorithmName(algo);
      EXPECT_TRUE(outcome.partition.CoversExactly(*sal4_)) << AlgorithmName(algo);
      EXPECT_TRUE(IsLDiverse(*sal4_, outcome.partition, l)) << AlgorithmName(algo);
      GroupSizeStats stats = ComputeGroupSizeStats(outcome.partition);
      EXPECT_GT(stats.group_count, 0u);
    }
  }
}

TEST(OccWorkload, SameInvariantsOnOccupationData) {
  Table occ = GenerateOcc(15000, 2);
  Table occ4 = occ.ProjectQi({kAge, kRace, kMarital, kWorkClass});
  for (std::uint32_t l : {2u, 6u}) {
    AnonymizationOutcome tp = Anonymize(occ4, l, Algorithm::kTp);
    AnonymizationOutcome tpp = Anonymize(occ4, l, Algorithm::kTpPlus);
    ASSERT_TRUE(tp.feasible && tpp.feasible);
    EXPECT_TRUE(IsLDiverse(occ4, tpp.partition, l));
    EXPECT_LE(tpp.stars, tp.stars);
    EXPECT_LE(tp.tp_stats.terminated_phase, 2);
  }
}

TEST(ScalingSanity, TpRuntimeGrowsRoughlyLinearly) {
  // Figure 6's claim in miniature: 4x the data should cost far less than
  // 16x the time (i.e. clearly sub-quadratic). Generous slack keeps this
  // robust on noisy CI machines.
  Table big = GenerateSal(40000, 3);
  Table small_t = big.SelectRows([] {
    std::vector<RowId> rows(10000);
    for (RowId r = 0; r < 10000; ++r) rows[r] = r;
    return rows;
  }());
  Table t_small = small_t.ProjectQi({kAge, kGender, kRace, kEducation});
  Table t_big = big.ProjectQi({kAge, kGender, kRace, kEducation});

  AnonymizationOutcome a = Anonymize(t_small, 6, Algorithm::kTp);
  AnonymizationOutcome b = Anonymize(t_big, 6, Algorithm::kTp);
  ASSERT_TRUE(a.feasible && b.feasible);
  if (a.seconds < 1e-4) GTEST_SKIP() << "too fast to measure";
  EXPECT_LT(b.seconds, a.seconds * 13.0);
}

}  // namespace
}  // namespace ldv
