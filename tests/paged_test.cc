// Unit tests of the out-of-core building blocks: byte-size parsing and
// the MemoryBudget accounting, SpillFile round trips, PageCache
// pin/evict/refault behavior, PagedColumn staging + cursor spans, the
// PagedTableBuilder -> Table bridge, and ExternalSorter ordering on both
// the in-RAM fast path and forced multi-run spills.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "common/external_sort.h"
#include "common/memory_budget.h"
#include "common/page_cache.h"
#include "common/paged_column.h"
#include "common/rng.h"
#include "test_util.h"

namespace ldv {
namespace {

TEST(ParseByteSize, AcceptsIntegersAndBinarySuffixes) {
  std::uint64_t bytes = 0;
  std::string error;
  EXPECT_TRUE(ParseByteSize("0", &bytes, &error));
  EXPECT_EQ(bytes, 0u);
  EXPECT_TRUE(ParseByteSize("123", &bytes, &error));
  EXPECT_EQ(bytes, 123u);
  EXPECT_TRUE(ParseByteSize("4K", &bytes, &error));
  EXPECT_EQ(bytes, 4096u);
  EXPECT_TRUE(ParseByteSize("512M", &bytes, &error));
  EXPECT_EQ(bytes, 512ull << 20);
  EXPECT_TRUE(ParseByteSize("2g", &bytes, &error));
  EXPECT_EQ(bytes, 2ull << 30);
  EXPECT_TRUE(ParseByteSize("1T", &bytes, &error));
  EXPECT_EQ(bytes, 1ull << 40);
  // Optional iB / B spellings.
  EXPECT_TRUE(ParseByteSize("512MiB", &bytes, &error));
  EXPECT_EQ(bytes, 512ull << 20);
  EXPECT_TRUE(ParseByteSize("4kb", &bytes, &error));
  EXPECT_EQ(bytes, 4096u);
  EXPECT_TRUE(ParseByteSize("100B", &bytes, &error));
  EXPECT_EQ(bytes, 100u);
}

TEST(ParseByteSize, RejectsMalformedAndOverflowingSizes) {
  std::uint64_t bytes = 0;
  std::string error;
  for (const char* bad : {"", "M", "12X", "abc", "1MM", "12 M", "-1", "1Mx"}) {
    EXPECT_FALSE(ParseByteSize(bad, &bytes, &error)) << bad;
    EXPECT_NE(error.find('\''), std::string::npos) << "error should quote the input: " << error;
  }
  // 2^64 overflows both in the digit loop and via the suffix multiply.
  EXPECT_FALSE(ParseByteSize("18446744073709551616", &bytes, &error));
  EXPECT_NE(error.find("overflow"), std::string::npos);
  EXPECT_FALSE(ParseByteSize("99999999999T", &bytes, &error));
  EXPECT_NE(error.find("overflow"), std::string::npos);
}

TEST(FormatByteSize, PrintsExactMultiplesWithSuffix) {
  EXPECT_EQ(FormatByteSize(512ull << 20), "512M");
  EXPECT_EQ(FormatByteSize(4ull << 30), "4G");
  EXPECT_EQ(FormatByteSize(1ull << 10), "1K");
  EXPECT_EQ(FormatByteSize(1234), "1234");
  EXPECT_EQ(FormatByteSize(0), "0");
}

TEST(MemoryBudget, TracksUsedPeakAndRemaining) {
  MemoryBudget budget(1000);
  EXPECT_FALSE(budget.unlimited());
  EXPECT_EQ(budget.remaining(), 1000u);
  EXPECT_TRUE(budget.WouldFit(1000));
  EXPECT_FALSE(budget.WouldFit(1001));

  budget.Charge(600);
  EXPECT_EQ(budget.used(), 600u);
  EXPECT_EQ(budget.remaining(), 400u);
  EXPECT_TRUE(budget.WouldFit(400));
  EXPECT_FALSE(budget.WouldFit(401));

  // Charge never fails; overshoot shows up in used()/peak() and remaining
  // saturates at zero.
  budget.Charge(600);
  EXPECT_EQ(budget.used(), 1200u);
  EXPECT_EQ(budget.remaining(), 0u);
  EXPECT_FALSE(budget.WouldFit(1));

  budget.Release(1200);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak(), 1200u);  // high-water mark survives releases
}

TEST(MemoryBudget, UnlimitedBudgetAlwaysFits) {
  MemoryBudget budget(0);
  EXPECT_TRUE(budget.unlimited());
  EXPECT_TRUE(budget.WouldFit(~0ull));
  budget.Charge(123);
  EXPECT_EQ(budget.used(), 123u);  // accounting still works
  budget.Release(123);
}

TEST(MemoryReservation, RaiiAndMoveSemantics) {
  auto budget = std::make_shared<MemoryBudget>(1 << 20);
  {
    MemoryReservation r(budget, 1000);
    EXPECT_EQ(budget->used(), 1000u);
    r.Resize(400);
    EXPECT_EQ(budget->used(), 400u);
    r.Resize(800);
    EXPECT_EQ(budget->used(), 800u);
    MemoryReservation moved = std::move(r);
    EXPECT_EQ(moved.bytes(), 800u);
    EXPECT_EQ(budget->used(), 800u);  // a move transfers, never double-counts
  }
  EXPECT_EQ(budget->used(), 0u);
  // Null budget: every operation is a no-op.
  MemoryReservation null_res(nullptr, 1 << 30);
  null_res.Resize(1);
  null_res.Reset();
}

TEST(SpillFile, AllocateWriteReadRoundTrip) {
  std::string error;
  std::unique_ptr<SpillFile> file = SpillFile::Create(&error);
  ASSERT_NE(file, nullptr) << error;
  EXPECT_FALSE(file->directory().empty());
  EXPECT_EQ(file->size(), 0u);

  std::vector<std::uint32_t> a(100), b(50);
  std::iota(a.begin(), a.end(), 1000);
  std::iota(b.begin(), b.end(), 7);
  const std::uint64_t off_a = file->Allocate(a.size() * sizeof(std::uint32_t));
  const std::uint64_t off_b = file->Allocate(b.size() * sizeof(std::uint32_t));
  EXPECT_EQ(off_a, 0u);
  EXPECT_EQ(off_b, a.size() * sizeof(std::uint32_t));
  file->Write(off_a, a.data(), a.size() * sizeof(std::uint32_t));
  file->Write(off_b, b.data(), b.size() * sizeof(std::uint32_t));

  std::vector<std::uint32_t> back(100);
  file->Read(off_a, back.data(), back.size() * sizeof(std::uint32_t));
  EXPECT_EQ(back, a);
  back.resize(50);
  file->Read(off_b, back.data(), back.size() * sizeof(std::uint32_t));
  EXPECT_EQ(back, b);

  // Ids are process-unique so the page cache can key frames by (id, page).
  std::unique_ptr<SpillFile> other = SpillFile::Create(&error);
  ASSERT_NE(other, nullptr) << error;
  EXPECT_NE(file->id(), other->id());
}

// Writes `pages` pages of 16 u32s each, page p filled with p * 1000 + i.
std::unique_ptr<SpillFile> MakePagedFile(std::size_t pages, std::size_t page_bytes) {
  std::string error;
  std::unique_ptr<SpillFile> file = SpillFile::Create(&error);
  EXPECT_NE(file, nullptr) << error;
  const std::size_t per_page = page_bytes / sizeof(std::uint32_t);
  for (std::size_t p = 0; p < pages; ++p) {
    std::vector<std::uint32_t> data(per_page);
    for (std::size_t i = 0; i < per_page; ++i) {
      data[i] = static_cast<std::uint32_t>(p * 1000 + i);
    }
    file->Write(file->Allocate(page_bytes), data.data(), page_bytes);
  }
  return file;
}

TEST(PageCache, PinsHitAndMiss) {
  constexpr std::size_t kPageBytes = 64;
  std::unique_ptr<SpillFile> file = MakePagedFile(4, kPageBytes);
  auto budget = std::make_shared<MemoryBudget>(1 << 20);
  PageCache cache({kPageBytes, 4, budget});
  EXPECT_EQ(budget->used(), 4 * kPageBytes);  // frames charged up front

  const std::byte* p0 = cache.Pin(*file, 0, kPageBytes);
  std::uint32_t value = 0;
  std::memcpy(&value, p0, sizeof(value));
  EXPECT_EQ(value, 0u);
  std::memcpy(&value, p0 + 4, sizeof(value));
  EXPECT_EQ(value, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.pinned_frames(), 1u);

  // Nested pin of the same page: a hit, still one frame.
  const std::byte* again = cache.Pin(*file, 0, kPageBytes);
  EXPECT_EQ(again, p0);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.pinned_frames(), 1u);
  cache.Unpin(*file, 0);
  EXPECT_EQ(cache.pinned_frames(), 1u);  // one pin still outstanding
  cache.Unpin(*file, 0);
  EXPECT_EQ(cache.pinned_frames(), 0u);

  // An unpinned page stays resident: re-pinning is a hit, not a re-read.
  cache.Pin(*file, 0, kPageBytes);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  cache.Unpin(*file, 0);
}

TEST(PageCache, EvictsUnpinnedFramesAndCountsRefaults) {
  constexpr std::size_t kPageBytes = 64;
  std::unique_ptr<SpillFile> file = MakePagedFile(8, kPageBytes);
  PageCache cache({kPageBytes, 2, nullptr});

  // Touch 8 pages through 2 frames: 8 misses, 6 evictions.
  for (std::uint64_t p = 0; p < 8; ++p) {
    const std::byte* data = cache.Pin(*file, p, kPageBytes);
    std::uint32_t value = 0;
    std::memcpy(&value, data, sizeof(value));
    EXPECT_EQ(value, static_cast<std::uint32_t>(p * 1000));
    cache.Unpin(*file, p);
  }
  EXPECT_EQ(cache.stats().misses, 8u);
  EXPECT_EQ(cache.stats().evictions, 6u);
  EXPECT_EQ(cache.stats().refaults, 0u);

  // Page 0 was evicted long ago; touching it again is a refault.
  cache.Pin(*file, 0, kPageBytes);
  cache.Unpin(*file, 0);
  EXPECT_EQ(cache.stats().refaults, 1u);

  // A pinned frame is never evicted: pin page 0, then stream the rest --
  // its bytes must stay valid throughout.
  const std::byte* pinned = cache.Pin(*file, 0, kPageBytes);
  for (std::uint64_t p = 1; p < 8; ++p) {
    cache.Pin(*file, p, kPageBytes);
    cache.Unpin(*file, p);
  }
  std::uint32_t value = 0;
  std::memcpy(&value, pinned + 4, sizeof(value));
  EXPECT_EQ(value, 1u);
  cache.Unpin(*file, 0);
}

TEST(PagedColumn, AppendsAcrossPageBoundariesAndServesCursorSpans) {
  constexpr std::size_t kPageBytes = 64;  // 16 values per page
  auto budget = std::make_shared<MemoryBudget>(1 << 20);
  PageCache cache({kPageBytes, 2, budget});
  std::string error;
  std::unique_ptr<SpillFile> file = SpillFile::Create(&error);
  ASSERT_NE(file, nullptr) << error;

  PagedColumn column(std::move(file), &cache, budget);
  // 41 values: two full pages plus a 9-value tail, fed in ragged chunks.
  std::vector<std::uint32_t> values(41);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = static_cast<std::uint32_t>(i * 3);
  column.Append(values.data(), 10);
  column.Append(values.data() + 10, 25);
  for (std::size_t i = 35; i < values.size(); ++i) column.Append(values[i]);
  EXPECT_EQ(column.size(), values.size());

  ASSERT_TRUE(column.Seal(/*map=*/false, &error)) << error;
  EXPECT_EQ(column.page_count(), 3u);
  EXPECT_FALSE(column.mapped());

  // Random access.
  EXPECT_EQ(column.Get(0), 0u);
  EXPECT_EQ(column.Get(16), 48u);
  EXPECT_EQ(column.Get(40), 120u);

  // Full-range cursor: three spans of 16 / 16 / 9 values.
  ColumnCursor cursor(column);
  std::vector<std::uint32_t> streamed;
  std::vector<std::size_t> span_sizes;
  std::span<const std::uint32_t> span;
  while (cursor.Next(&span)) {
    span_sizes.push_back(span.size());
    streamed.insert(streamed.end(), span.begin(), span.end());
  }
  EXPECT_EQ(span_sizes, (std::vector<std::size_t>{16, 16, 9}));
  EXPECT_EQ(streamed, values);
  EXPECT_EQ(cache.pinned_frames(), 0u);  // cursor released its pin

  // Sub-range cursor starting mid-page.
  ColumnCursor sub(column, 5, 20);
  streamed.clear();
  while (sub.Next(&span)) streamed.insert(streamed.end(), span.begin(), span.end());
  EXPECT_EQ(streamed, std::vector<std::uint32_t>(values.begin() + 5, values.begin() + 20));

  // Mapping the sealed column turns the cursor into one whole-range span.
  ASSERT_TRUE(column.Map(&error)) << error;
  ColumnCursor mapped(column);
  ASSERT_TRUE(mapped.Next(&span));
  EXPECT_EQ(span.size(), values.size());
  EXPECT_FALSE(mapped.Next(&span));
  EXPECT_TRUE(std::equal(span.begin(), span.end(), values.begin()));
}

TEST(PagedTableBuilder, FinishedTableMatchesInRamTable) {
  Rng rng(99);
  Table expected = testutil::RandomEligibleTable(rng, 2000, {16, 8, 5}, 6, 2);

  PagedTableBuilder::Options options;
  options.page_bytes = 256;  // tiny pages: every column spans many pages
  options.cache_frames = 8;
  std::string error;
  std::unique_ptr<PagedTableBuilder> builder =
      PagedTableBuilder::Create(expected.qi_count(), options, &error);
  ASSERT_NE(builder, nullptr) << error;
  for (RowId r = 0; r < expected.size(); ++r) {
    builder->AppendRow(expected.qi_row(r), expected.sa(r));
  }
  std::unique_ptr<PagedTable> paged = builder->Finish(expected.schema(), &error);
  ASSERT_NE(paged, nullptr) << error;
  ASSERT_TRUE(paged->has_resident());

  const Table& resident = paged->resident();
  EXPECT_TRUE(resident.borrowed());
  ASSERT_EQ(resident.size(), expected.size());
  ASSERT_EQ(resident.qi_count(), expected.qi_count());
  for (AttrId a = 0; a < expected.qi_count(); ++a) {
    EXPECT_TRUE(std::ranges::equal(resident.column(a), expected.column(a))) << "attr " << a;
  }
  EXPECT_TRUE(std::ranges::equal(resident.sa_column(), expected.sa_column()));
  EXPECT_EQ(paged->SaHistogramCounts(), expected.SaHistogramCounts());
}

TEST(PagedTableBuilder, ValidationRejectsOutOfDomainAndRaggedColumns) {
  Schema schema = testutil::MakeSchema({4, 3}, 2);
  PagedTableBuilder::Options options;
  options.page_bytes = 64;
  options.cache_frames = 4;
  std::string error;

  // Out-of-domain QI value, detected by the streamed validation sweep.
  std::unique_ptr<PagedTableBuilder> builder = PagedTableBuilder::Create(2, options, &error);
  ASSERT_NE(builder, nullptr) << error;
  for (int i = 0; i < 50; ++i) {
    const Value qi[2] = {static_cast<Value>(i == 37 ? 9 : 1), 2};
    builder->AppendRow(qi, 0);
  }
  EXPECT_EQ(builder->Finish(schema, &error), nullptr);
  EXPECT_NE(error.find("A1"), std::string::npos) << error;

  // Ragged columns (chunked feeding left one column short).
  builder = PagedTableBuilder::Create(2, options, &error);
  ASSERT_NE(builder, nullptr) << error;
  const Value column[3] = {1, 1, 1};
  const SaValue sa[3] = {0, 1, 0};
  builder->AppendQiChunk(0, column, 3);
  builder->AppendQiChunk(1, column, 2);
  builder->AppendSaChunk(sa, 3);
  EXPECT_EQ(builder->Finish(schema, &error), nullptr);
  EXPECT_NE(error.find("ragged"), std::string::npos) << error;
}

TEST(ExternalSorter, InRamFastPathServesSortedRecords) {
  ExternalSorter::Options options;
  options.buffer_records = 1024;
  std::string error;
  std::unique_ptr<ExternalSorter> sorter = ExternalSorter::Create(options, &error);
  ASSERT_NE(sorter, nullptr) << error;

  Rng rng(5);
  std::vector<SortRecord> expected;
  for (int i = 0; i < 500; ++i) {
    SortRecord record{rng.Below(64), static_cast<std::uint64_t>(i)};
    expected.push_back(record);
    sorter->Add(record);
  }
  std::sort(expected.begin(), expected.end());
  sorter->Finish();
  EXPECT_EQ(sorter->run_count(), 1u);  // nothing spilled

  std::vector<SortRecord> merged;
  SortRecord out;
  while (sorter->Next(&out)) merged.push_back(out);
  EXPECT_EQ(merged, expected);
}

TEST(ExternalSorter, MultiRunMergePreservesTotalOrder) {
  ExternalSorter::Options options;
  options.buffer_records = 128;        // force many spilled runs
  options.merge_buffer_records = 16;   // and many refills per run
  auto budget = std::make_shared<MemoryBudget>(1 << 20);
  options.budget = budget;
  std::string error;
  {
    std::unique_ptr<ExternalSorter> sorter = ExternalSorter::Create(options, &error);
    ASSERT_NE(sorter, nullptr) << error;

    Rng rng(17);
    std::vector<SortRecord> expected;
    for (int i = 0; i < 5000; ++i) {
      // Narrow key range: plenty of duplicate keys, so the payload
      // tie-break is what keeps the order total and deterministic.
      SortRecord record{rng.Below(97), static_cast<std::uint64_t>(i)};
      expected.push_back(record);
      sorter->Add(record);
    }
    std::sort(expected.begin(), expected.end());
    sorter->Finish();
    EXPECT_GT(sorter->run_count(), 1u);

    std::vector<SortRecord> merged;
    SortRecord out;
    while (sorter->Next(&out)) merged.push_back(out);
    EXPECT_EQ(merged, expected);
  }
  // Every charge (run buffer, merge buffers) was returned at destruction,
  // and the high-water mark proves the charges happened at all.
  EXPECT_EQ(budget->used(), 0u);
  EXPECT_GT(budget->peak(), 0u);
}

TEST(ExternalSorter, EmptyInputDrainsImmediately) {
  std::string error;
  std::unique_ptr<ExternalSorter> sorter = ExternalSorter::Create({}, &error);
  ASSERT_NE(sorter, nullptr) << error;
  sorter->Finish();
  SortRecord out;
  EXPECT_FALSE(sorter->Next(&out));
  EXPECT_EQ(sorter->record_count(), 0u);
}

}  // namespace
}  // namespace ldv
