// Tests for the alternative l-diversity instantiations (entropy, recursive
// (c,l)) and the generic-predicate Hilbert partitioner.

#include "anonymity/diversity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "anonymity/eligibility.h"
#include "hilbert/hilbert_partitioner.h"
#include "test_util.h"

namespace ldv {
namespace {

TEST(Diversity, FrequencyMatchesDefinitionTwo) {
  DiversitySpec spec{DiversityKind::kFrequency, 2, 1.0};
  EXPECT_TRUE(SatisfiesDiversity(SaHistogram({2, 2}), spec));
  EXPECT_FALSE(SatisfiesDiversity(SaHistogram({3, 1}), spec));
  EXPECT_TRUE(SatisfiesDiversity(SaHistogram(3), spec));  // empty
}

TEST(Diversity, EntropyOfUniformIsLogM) {
  SaHistogram h({5, 5, 5, 5});
  EXPECT_NEAR(SaEntropy(h), std::log(4.0), 1e-12);
  EXPECT_NEAR(SaEntropy(SaHistogram({7, 0, 0})), 0.0, 1e-12);
  EXPECT_NEAR(SaEntropy(SaHistogram(4)), 0.0, 1e-12);
}

TEST(Diversity, EntropyVariantIsStricterThanFrequency) {
  // Entropy l-diversity implies frequency l-diversity ([31], since
  // entropy >= ln l forces max p <= 1/l is false in general -- the
  // implication is entropy => frequency fails; but for the canonical
  // skewed example entropy is the stricter test).
  DiversitySpec freq{DiversityKind::kFrequency, 2, 1.0};
  DiversitySpec entr{DiversityKind::kEntropy, 2, 1.0};
  // (2,1,1): max fraction 1/2 -> frequency-2-diverse; entropy =
  // -(1/2 ln 1/2 + 2 * 1/4 ln 1/4) = 1.039 > ln 2 -> also entropy-ok.
  SaHistogram mixed({2, 1, 1});
  EXPECT_TRUE(SatisfiesDiversity(mixed, freq));
  EXPECT_TRUE(SatisfiesDiversity(mixed, entr));
  // (3,3,0): exactly frequency-2-diverse and entropy ln 2 (boundary).
  SaHistogram boundary({3, 3, 0});
  EXPECT_TRUE(SatisfiesDiversity(boundary, freq));
  EXPECT_TRUE(SatisfiesDiversity(boundary, entr));
  // (6,1,1): frequency fails for l=2 (6 > 8/2) but entropy 0.736 > ln 2
  // passes -- the two variants are incomparable in general.
  SaHistogram skewed({6, 1, 1});
  EXPECT_FALSE(SatisfiesDiversity(skewed, freq));
  EXPECT_TRUE(SatisfiesDiversity(skewed, entr));
  // (8,1,1): entropy 0.639 < ln 2 = 0.693, so both variants fail.
  SaHistogram very_skewed({8, 1, 1});
  EXPECT_FALSE(SatisfiesDiversity(very_skewed, freq));
  EXPECT_FALSE(SatisfiesDiversity(very_skewed, entr));
}

TEST(Diversity, RecursiveClDiversity) {
  // counts sorted desc r1..rm; requirement r1 < c (r_l + ... + r_m).
  DiversitySpec spec{DiversityKind::kRecursive, 2, 1.0};
  // (3, 2, 2): r1 = 3 < 1.0 * (2 + 2) = 4 -> ok.
  EXPECT_TRUE(SatisfiesDiversity(SaHistogram({3, 2, 2}), spec));
  // (5, 2, 2): r1 = 5 >= 4 -> fail with c = 1, pass with c = 2.
  EXPECT_FALSE(SatisfiesDiversity(SaHistogram({5, 2, 2}), spec));
  DiversitySpec loose{DiversityKind::kRecursive, 2, 2.0};
  EXPECT_TRUE(SatisfiesDiversity(SaHistogram({5, 2, 2}), loose));
  // Fewer than l distinct values can never satisfy the requirement.
  EXPECT_FALSE(SatisfiesDiversity(SaHistogram({4, 0, 0}), spec));
}

TEST(Diversity, AllVariantsAreMonotoneUnderUnion) {
  // The Lemma-1 style property the partitioners rely on; randomized sweep.
  Rng rng(71);
  for (DiversityKind kind :
       {DiversityKind::kFrequency, DiversityKind::kEntropy, DiversityKind::kRecursive}) {
    DiversitySpec spec{kind, 2, 1.0};
    int satisfied_pairs = 0;
    for (int trial = 0; trial < 400; ++trial) {
      std::size_t m = 3 + rng.Below(4);
      auto random_hist = [&]() {
        SaHistogram h(m);
        for (int i = 0; i < 12; ++i) h.Add(rng.Below(static_cast<std::uint32_t>(m)));
        return h;
      };
      SaHistogram a = random_hist();
      SaHistogram b = random_hist();
      if (!SatisfiesDiversity(a, spec) || !SatisfiesDiversity(b, spec)) continue;
      ++satisfied_pairs;
      a.MergeFrom(b);
      EXPECT_TRUE(SatisfiesDiversity(a, spec))
          << "kind " << static_cast<int>(kind) << ": union violated on " << a.ToString();
    }
    EXPECT_GT(satisfied_pairs, 10) << "sweep too weak for kind " << static_cast<int>(kind);
  }
}

class HilbertSpecTest : public ::testing::TestWithParam<DiversityKind> {};

TEST_P(HilbertSpecTest, PartitionSatisfiesSpecEverywhere) {
  Rng rng(73);
  Table table = testutil::RandomEligibleTable(rng, 400, {8, 6}, 6, 3);
  DiversitySpec spec{GetParam(), 3, 2.0};
  SaHistogram whole(std::vector<std::uint32_t>(table.SaHistogramCounts()));
  if (!SatisfiesDiversity(whole, spec)) GTEST_SKIP();
  HilbertResult result = HilbertAnonymizeWithSpec(table, spec);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.partition.CoversExactly(table));
  for (const auto& group : result.partition.groups()) {
    EXPECT_TRUE(SatisfiesDiversity(RowsHistogram(table, group), spec));
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, HilbertSpecTest,
                         ::testing::Values(DiversityKind::kFrequency, DiversityKind::kEntropy,
                                           DiversityKind::kRecursive),
                         [](const auto& info) {
                           switch (info.param) {
                             case DiversityKind::kFrequency: return "frequency";
                             case DiversityKind::kEntropy: return "entropy";
                             case DiversityKind::kRecursive: return "recursive";
                           }
                           return "unknown";
                         });

TEST(HilbertSpec, FrequencySpecMatchesPlainHilbertSemantics) {
  Rng rng(79);
  Table table = testutil::RandomEligibleTable(rng, 300, {8, 4}, 5, 3);
  DiversitySpec spec{DiversityKind::kFrequency, 3, 1.0};
  HilbertResult generic = HilbertAnonymizeWithSpec(table, spec);
  ASSERT_TRUE(generic.feasible);
  EXPECT_TRUE(IsLDiverse(table, generic.partition, 3));
}

TEST(HilbertSpec, InfeasibleSpecReported) {
  Schema schema = testutil::MakeSchema({4}, 3);
  Table table(schema);
  std::vector<Value> qi{0};
  for (int i = 0; i < 9; ++i) table.AppendRow(qi, 0);
  table.AppendRow(qi, 1);
  DiversitySpec spec{DiversityKind::kEntropy, 3, 1.0};
  EXPECT_FALSE(HilbertAnonymizeWithSpec(table, spec).feasible);
}

}  // namespace
}  // namespace ldv
