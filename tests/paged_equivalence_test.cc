// Byte-identity gate for the out-of-core engine: everything the paged
// data plane touches -- streamed ingestion (CSV and synthetic), the
// chunked GroupedTable build, the external Hilbert order, and the full
// six-algorithm pipeline under a tight memory budget with heavy page
// eviction -- must reproduce the in-RAM results bit for bit. The budget
// may only change WHERE bytes live, never WHICH bytes come out.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/grouped_table.h"
#include "common/memory_budget.h"
#include "common/workspace.h"
#include "core/anonymizer.h"
#include "data/acs_generator.h"
#include "data/dataset.h"
#include "hilbert/hilbert_partitioner.h"
#include "test_util.h"

namespace ldv {
namespace {

// Every test must leave the process-wide budget unlimited, whatever path
// it exits through -- other tests assume the in-RAM defaults.
class PagedEquivalence : public ::testing::Test {
 protected:
  void TearDown() override { SetMemoryBudget(0); }
};

// Tiny pages and few frames: even small test tables span many pages and
// the bounded cache must evict constantly.
PagedTableBuilder::Options TinyPages() {
  PagedTableBuilder::Options options;
  options.page_bytes = 4096;
  options.cache_frames = 8;
  options.budget = GlobalMemoryBudgetShared();
  return options;
}

std::string DataPath(const std::string& name) {
  // ctest may run from the build directory; fall back to the source dir.
  std::string relative = "tests/data/" + name;
  std::ifstream probe(relative);
  if (probe.good()) return relative;
  return std::string(LDIV_SOURCE_DIR) + "/" + relative;
}

void ExpectSameTable(const Table& expected, const Table& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  ASSERT_EQ(expected.qi_count(), actual.qi_count());
  EXPECT_EQ(expected.schema(), actual.schema());
  for (AttrId a = 0; a < expected.qi_count(); ++a) {
    EXPECT_TRUE(std::ranges::equal(expected.column(a), actual.column(a))) << "attr " << a;
  }
  EXPECT_TRUE(std::ranges::equal(expected.sa_column(), actual.sa_column()));
}

void ExpectSameGroups(const GroupedTable& expected, const GroupedTable& actual) {
  ASSERT_EQ(expected.group_count(), actual.group_count());
  for (GroupId g = 0; g < expected.group_count(); ++g) {
    const QiGroup& e = expected.group(g);
    const QiGroup& a = actual.group(g);
    ASSERT_TRUE(std::ranges::equal(e.qi_values, a.qi_values)) << "group " << g;
    ASSERT_TRUE(std::ranges::equal(e.rows, a.rows)) << "group " << g;
    ASSERT_TRUE(std::ranges::equal(e.sa_runs, a.sa_runs)) << "group " << g;
  }
}

TEST_F(PagedEquivalence, GeneratorPagedMatchesInRam) {
  for (const char* name : {"sal", "occ"}) {
    for (std::size_t d : {std::size_t{7}, std::size_t{3}}) {
      SCOPED_TRACE(std::string(name) + " d=" + std::to_string(d));
      DatasetSpec spec;
      spec.name = name;
      spec.n = 5000;
      spec.d = d;
      std::string error;
      std::optional<Table> expected = GenerateDataset(spec, &error);
      ASSERT_TRUE(expected.has_value()) << error;
      std::unique_ptr<PagedTable> paged = GenerateDatasetPaged(spec, TinyPages(), &error);
      ASSERT_NE(paged, nullptr) << error;
      ASSERT_TRUE(paged->has_resident());
      ExpectSameTable(*expected, paged->resident());
    }
  }
}

TEST_F(PagedEquivalence, CodedCsvPagedMatchesInRamReader) {
  Schema schema({Attribute{"Age", 79}, Attribute{"Gender", 2}, Attribute{"Race", 9}},
                Attribute{"Income", 50});
  const std::string path = DataPath("micro.csv");
  CsvError error;
  std::optional<Table> expected = ReadTableCsv(schema, path, &error);
  ASSERT_TRUE(expected.has_value()) << error.ToString();
  std::unique_ptr<PagedTable> paged = ReadTableCsvPaged(schema, path, TinyPages(), &error);
  ASSERT_NE(paged, nullptr) << error.ToString();
  ExpectSameTable(*expected, paged->resident());
}

TEST_F(PagedEquivalence, RawCsvPagedMatchesInRamReaderIncludingDictionaries) {
  const std::string path = DataPath("micro_raw.csv");
  CsvError error;
  std::optional<Table> expected = ReadRawTableCsv(path, &error);
  ASSERT_TRUE(expected.has_value()) << error.ToString();
  std::unique_ptr<PagedTable> paged = ReadRawTableCsvPaged(path, TinyPages(), &error);
  ASSERT_NE(paged, nullptr) << error.ToString();
  ExpectSameTable(*expected, paged->resident());
  // Dictionaries are data payload (schema equality ignores them): require
  // the insertion-ordered labels to agree code for code.
  const Schema& e = expected->schema();
  const Schema& a = paged->resident().schema();
  for (AttrId attr = 0; attr < e.qi_count(); ++attr) {
    EXPECT_TRUE(e.qi(attr).dictionary == a.qi(attr).dictionary) << "attr " << attr;
  }
  EXPECT_TRUE(e.sensitive().dictionary == a.sensitive().dictionary);
}

TEST_F(PagedEquivalence, AllAlgorithmsByteIdenticalUnderTightBudget) {
  DatasetSpec spec;
  spec.n = 30000;
  spec.d = 3;

  // Unbudgeted reference: in-RAM generation, sharded grouping, in-RAM
  // Hilbert sort.
  std::string error;
  std::optional<Table> in_ram = GenerateDataset(spec, &error);
  ASSERT_TRUE(in_ram.has_value()) << error;
  std::vector<AnonymizationOutcome> reference;
  for (Algorithm algo : kAllAlgorithms) {
    reference.push_back(Anonymize(*in_ram, 4, algo, AnonymizerOptions{}));
    ASSERT_TRUE(reference.back().feasible) << AlgorithmName(algo);
  }

  // 256 KiB budget: far below the 32n sharded-grouping scratch (960 KB)
  // and the 12n Hilbert code buffer (360 KB), so every budget-aware
  // dispatch takes its streaming path, over a paged table whose 8-frame
  // 4 KiB-page cache evicted heavily during ingestion validation.
  SetMemoryBudget(256u << 10);
  std::unique_ptr<PagedTable> paged = GenerateDatasetPaged(spec, TinyPages(), &error);
  ASSERT_NE(paged, nullptr) << error;
  EXPECT_GT(paged->cache().stats().evictions, 0u);
  const Table& table = paged->resident();

  Workspace ws;
  for (std::size_t i = 0; i < kAllAlgorithms.size(); ++i) {
    const Algorithm algo = kAllAlgorithms[i];
    SCOPED_TRACE(AlgorithmName(algo));
    AnonymizationOutcome outcome = Anonymize(table, 4, algo, AnonymizerOptions{}, &ws);
    ASSERT_TRUE(outcome.feasible);
    EXPECT_EQ(reference[i].stars, outcome.stars);
    EXPECT_EQ(reference[i].suppressed_tuples, outcome.suppressed_tuples);
    EXPECT_EQ(reference[i].kl_divergence, outcome.kl_divergence);
    ASSERT_EQ(reference[i].partition.group_count(), outcome.partition.group_count());
    for (GroupId g = 0; g < outcome.partition.group_count(); ++g) {
      ASSERT_EQ(reference[i].partition.group(g), outcome.partition.group(g)) << "group " << g;
    }
  }
}

TEST_F(PagedEquivalence, ChunkedGroupingMatchesShardedBuild) {
  Table sal = GenerateSal(20000, 1);
  Table t = sal.ProjectQi({0, 2, 5});
  Workspace ws;
  GroupedTable sharded(t, &ws);

  // Explicit chunked build, in-RAM sorter path.
  GroupedTable chunked = GroupedTable::BuildChunked(t, &ws);
  ExpectSameGroups(sharded, chunked);

  // Tiny sort buffer: the (gid, sa, row) stream spills into many runs and
  // the k-way merge must reassemble the identical arena layout.
  GroupedTable spilled = GroupedTable::BuildChunked(t, &ws, /*sort_buffer_records=*/1024);
  ExpectSameGroups(sharded, spilled);

  // Budget-driven dispatch inside the constructor picks the chunked path
  // when the sharded scratch would not fit.
  SetMemoryBudget(64u << 10);
  GroupedTable dispatched(t, &ws);
  ExpectSameGroups(sharded, dispatched);
}

TEST_F(PagedEquivalence, HilbertExternalOrderMatchesInRamSort) {
  Table sal = GenerateSal(150000, 1);
  Table t = sal.ProjectQi({0, 2, 3, 5});
  HilbertResult expected = HilbertAnonymize(t, 4);
  ASSERT_TRUE(expected.feasible);

  // 64 KiB budget: 12n = 1.8 MB does not fit, so ComputeOrder goes
  // external; with n > the sorter's 64Ki-record buffer floor the run
  // actually spills and merges.
  SetMemoryBudget(64u << 10);
  Workspace ws;
  HilbertResult external = HilbertAnonymize(t, 4, {}, &ws);
  ASSERT_TRUE(external.feasible);
  ASSERT_EQ(expected.partition.group_count(), external.partition.group_count());
  for (GroupId g = 0; g < expected.partition.group_count(); ++g) {
    ASSERT_EQ(expected.partition.group(g), external.partition.group(g)) << "group " << g;
  }
}

}  // namespace
}  // namespace ldv
