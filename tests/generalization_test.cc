// Definition 1 (suppression generalization) tests, built on the paper's
// running example: Table 1 microdata, Table 2 (2-anonymous) and Table 3
// (2-diverse) partitions.

#include "anonymity/generalization.h"

#include <gtest/gtest.h>

#include "anonymity/eligibility.h"
#include "anonymity/k_anonymity.h"
#include "test_util.h"

namespace ldv {
namespace {

using testutil::PaperTable1;

// The partition behind Table 2 of the paper (4 QI-groups).
Partition PaperTable2Partition() {
  return Partition({{0, 1}, {2, 3}, {4, 5, 6, 7}, {8, 9}});
}

// The partition behind Table 3 of the paper (3 QI-groups).
Partition PaperTable3Partition() {
  return Partition({{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}});
}

TEST(Generalization, PaperTable2HasTwoStars) {
  Table table = PaperTable1();
  Partition partition = PaperTable2Partition();
  GeneralizedTable generalized(table, partition);
  // Only Tuples 3 and 4 have their Age suppressed.
  EXPECT_EQ(generalized.StarCount(), 2u);
  EXPECT_EQ(generalized.SuppressedTupleCount(), 2u);
  EXPECT_EQ(PartitionStarCount(table, partition), 2u);
}

TEST(Generalization, PaperTable3HasEightStarsAndFourSuppressedTuples) {
  // "in Table 3, the amount of information loss is 8 (stars) in Problem 1,
  // but 4 (tuples) in Problem 2."
  Table table = PaperTable1();
  Partition partition = PaperTable3Partition();
  GeneralizedTable generalized(table, partition);
  EXPECT_EQ(generalized.StarCount(), 8u);
  EXPECT_EQ(generalized.SuppressedTupleCount(), 4u);
}

TEST(Generalization, PaperTable2IsTwoAnonymousButNotTwoDiverse) {
  Table table = PaperTable1();
  Partition partition = PaperTable2Partition();
  EXPECT_TRUE(IsKAnonymous(partition, 2));
  // The first QI-group {Adam, Bob} is homogeneous (both HIV): the
  // homogeneity problem that motivates l-diversity.
  EXPECT_TRUE(HasHomogeneityViolation(table, partition));
  EXPECT_FALSE(IsLDiverse(table, partition, 2));
  EXPECT_DOUBLE_EQ(HomogeneousTupleFraction(table, partition), 0.2);
}

TEST(Generalization, PaperTable3IsTwoDiverse) {
  Table table = PaperTable1();
  Partition partition = PaperTable3Partition();
  EXPECT_TRUE(IsLDiverse(table, partition, 2));
  EXPECT_FALSE(HasHomogeneityViolation(table, partition));
}

TEST(Generalization, SignatureKeepsSharedValues) {
  Table table = PaperTable1();
  GeneralizedTable generalized(table, PaperTable3Partition());
  // First group: Age and Education starred, Gender retained (all male).
  const std::vector<Value>& sig = generalized.signature(0);
  EXPECT_TRUE(IsStar(sig[0]));
  EXPECT_EQ(sig[1], 0u);
  EXPECT_TRUE(IsStar(sig[2]));
  EXPECT_EQ(generalized.StarredAttributeCount(0), 2u);
  // Second group fully retained.
  EXPECT_EQ(generalized.StarredAttributeCount(1), 0u);
}

TEST(Generalization, SingletonGroupsCarryNoStars) {
  Table table = PaperTable1();
  std::vector<std::vector<RowId>> singletons;
  for (RowId r = 0; r < table.size(); ++r) singletons.push_back({r});
  GeneralizedTable generalized(table, Partition(singletons));
  EXPECT_EQ(generalized.StarCount(), 0u);
  EXPECT_EQ(generalized.SuppressedTupleCount(), 0u);
}

TEST(Generalization, SplittingAGroupNeverIncreasesStars) {
  // Star monotonicity under refinement, the property TP+ relies on.
  Rng rng(17);
  Table table = testutil::RandomEligibleTable(rng, 24, {3, 3, 2}, 4, 2);
  std::vector<RowId> all(table.size());
  for (RowId r = 0; r < table.size(); ++r) all[r] = r;
  std::uint64_t whole = GroupStarCount(table, all);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<RowId> left, right;
    for (RowId r = 0; r < table.size(); ++r) {
      (rng.Below(2) == 0 ? left : right).push_back(r);
    }
    if (left.empty() || right.empty()) continue;
    EXPECT_LE(GroupStarCount(table, left) + GroupStarCount(table, right), whole);
  }
}

TEST(Generalization, ToStringRendersStars) {
  Table table = PaperTable1();
  GeneralizedTable generalized(table, PaperTable3Partition());
  std::string rendered = generalized.ToString(table);
  EXPECT_NE(rendered.find('*'), std::string::npos);
  EXPECT_NE(rendered.find("group 0"), std::string::npos);
}

TEST(Eligibility, PaperTable1MaxFeasibleL) {
  // Table 1: n = 10, most frequent disease is pneumonia (4 tuples): the
  // table is l-eligible exactly for l <= 2.
  Table table = PaperTable1();
  EXPECT_EQ(MaxFeasibleL(table), 2u);
  EXPECT_TRUE(IsTableEligible(table, 2));
  EXPECT_FALSE(IsTableEligible(table, 3));
}

TEST(Eligibility, SingleGroupPartitionIsDiverseIffTableEligible) {
  Table table = PaperTable1();
  Partition single = Partition::SingleGroup(table);
  EXPECT_TRUE(IsLDiverse(table, single, 2));
  EXPECT_FALSE(IsLDiverse(table, single, 3));
}

}  // namespace
}  // namespace ldv
