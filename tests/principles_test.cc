// Tests for the Section 2 companion principles: (alpha,k)-anonymity,
// t-closeness, and the single-release core of m-invariance.

#include "anonymity/principles.h"

#include <gtest/gtest.h>

#include "anonymity/anatomy.h"
#include "anonymity/eligibility.h"
#include "core/anonymizer.h"
#include "test_util.h"

namespace ldv {
namespace {

using testutil::PaperTable1;

Partition PaperTable2Partition() { return Partition({{0, 1}, {2, 3}, {4, 5, 6, 7}, {8, 9}}); }
Partition PaperTable3Partition() { return Partition({{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}}); }

TEST(AlphaK, HalfAlphaEqualsKAnonymityPlusTwoDiversity) {
  // Section 4: (0.5, k)-anonymity = k-anonymity + 2-diversity. Table 2 is
  // 2-anonymous but its first group is homogeneous, so (0.5, 2) fails;
  // Table 3's partition satisfies it.
  Table table = PaperTable1();
  EXPECT_FALSE(IsAlphaKAnonymous(table, PaperTable2Partition(), 0.5, 2));
  EXPECT_TRUE(IsAlphaKAnonymous(table, PaperTable3Partition(), 0.5, 2));
}

TEST(AlphaK, SizeRequirementIsChecked) {
  Table table = PaperTable1();
  // Table 3's partition has a group of size 2: k = 3 must fail even though
  // the frequency bound holds.
  EXPECT_FALSE(IsAlphaKAnonymous(table, PaperTable3Partition(), 0.5, 3));
}

TEST(AlphaK, LDiverseOutputsSatisfyTheFrequencyBound) {
  // Frequency l-diversity is exactly the alpha = 1/l bound with k = l
  // implied by group sizes >= l... group sizes can be smaller than l only
  // if ineligible, so check alpha alone with k = 1.
  Rng rng(91);
  Table table = testutil::RandomEligibleTable(rng, 200, {6, 4}, 6, 3);
  AnonymizationOutcome outcome = Anonymize(table, 3, Algorithm::kTpPlus);
  ASSERT_TRUE(outcome.feasible);
  EXPECT_TRUE(IsAlphaKAnonymous(table, outcome.partition, 1.0 / 3.0, 1));
}

TEST(TCloseness, SingleGroupHasDistanceZero) {
  Table table = PaperTable1();
  Partition single = Partition::SingleGroup(table);
  EXPECT_DOUBLE_EQ(MaxSaDistributionDistance(table, single), 0.0);
  EXPECT_TRUE(IsTClose(table, single, 0.0));
}

TEST(TCloseness, HomogeneousGroupsAreFarFromTheTable) {
  Table table = PaperTable1();
  Partition partition = PaperTable2Partition();
  // Group {Adam, Bob} is pure HIV while the table has 20% HIV: TV distance
  // = (1/2)(|1 - 0.2| + 0.4 + 0.3 + 0.1) = 0.8.
  EXPECT_NEAR(MaxSaDistributionDistance(table, partition), 0.8, 1e-9);
  EXPECT_FALSE(IsTClose(table, partition, 0.5));
  EXPECT_TRUE(IsTClose(table, partition, 0.8));
}

TEST(TCloseness, FinerPartitionsCannotBeCloserThanCoarser) {
  // Refining groups can only move SA distributions further from the
  // table's (information monotonicity of t-closeness).
  Table table = PaperTable1();
  double coarse = MaxSaDistributionDistance(table, Partition::SingleGroup(table));
  double fine = MaxSaDistributionDistance(table, PaperTable3Partition());
  EXPECT_GE(fine, coarse);
}

TEST(MUnique, PerfectAnatomyBucketsSatisfyIt) {
  Schema schema = testutil::MakeSchema({3}, 4);
  Table table(schema);
  for (int round = 0; round < 5; ++round) {
    for (SaValue v = 0; v < 4; ++v) {
      std::vector<Value> qi{static_cast<Value>(round % 3)};
      table.AppendRow(qi, v);
    }
  }
  AnatomyResult anatomy = AnatomyAnonymize(table, 4);
  ASSERT_TRUE(anatomy.feasible);
  EXPECT_TRUE(IsMUnique(table, anatomy.partition, 4));
}

TEST(MUnique, RejectsDuplicatesAndWrongSizes) {
  Table table = PaperTable1();
  EXPECT_FALSE(IsMUnique(table, PaperTable3Partition(), 4));  // sizes differ
  // Pairs with distinct diseases: {Calvin(pneumonia), Danny(bronchitis)} ok,
  // {Adam, Bob} duplicates HIV.
  EXPECT_FALSE(IsMUnique(table, Partition({{0, 1}, {2, 3}}), 2));
  EXPECT_TRUE(IsMUnique(table, Partition({{2, 3}, {8, 9}}), 2));
}

}  // namespace
}  // namespace ldv
