// Unit tests for the open-addressing FlatMap / FlatSet and the Workspace
// buffer pools backing the allocation-lean hot paths.

#include "common/flat_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/workspace.h"

namespace ldv {
namespace {

TEST(FlatMap, EmptyMapFindsNothing) {
  FlatMap<std::uint32_t> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(0), nullptr);
  EXPECT_EQ(map.Find(42), nullptr);
}

TEST(FlatMap, InsertFindAndUpdate) {
  FlatMap<std::uint32_t> map;
  auto [v1, inserted1] = map.TryEmplace(7, 100);
  EXPECT_TRUE(inserted1);
  EXPECT_EQ(*v1, 100u);
  auto [v2, inserted2] = map.TryEmplace(7, 200);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*v2, 100u);  // first value wins
  *v2 = 300;
  EXPECT_EQ(*map.Find(7), 300u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, ExtremeKeysAreOrdinary) {
  // 0 and ~0 are valid keys (occupancy is tracked separately, not via a
  // sentinel key).
  FlatMap<double> map;
  map[0] = 1.5;
  map[~std::uint64_t{0}] = 2.5;
  EXPECT_EQ(map.size(), 2u);
  EXPECT_DOUBLE_EQ(*map.Find(0), 1.5);
  EXPECT_DOUBLE_EQ(*map.Find(~std::uint64_t{0}), 2.5);
}

TEST(FlatMap, OperatorBracketAccumulates) {
  FlatMap<double> map;
  for (int i = 0; i < 10; ++i) map[3] += 0.5;
  EXPECT_DOUBLE_EQ(*map.Find(3), 5.0);
}

TEST(FlatMap, MatchesUnorderedMapUnderRandomChurn) {
  Rng rng(99);
  FlatMap<std::uint32_t> map;
  std::unordered_map<std::uint64_t, std::uint32_t> reference;
  for (int i = 0; i < 20000; ++i) {
    // Structured keys (multiples of a large stride) exercise the mixer.
    std::uint64_t key = static_cast<std::uint64_t>(rng.Below(4096)) * 0x10000001ULL;
    std::uint32_t value = rng.Below(1000);
    auto [slot, inserted] = map.TryEmplace(key, value);
    auto [it, ref_inserted] = reference.try_emplace(key, value);
    EXPECT_EQ(inserted, ref_inserted);
    EXPECT_EQ(*slot, it->second);
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [key, value] : reference) {
    ASSERT_NE(map.Find(key), nullptr);
    EXPECT_EQ(*map.Find(key), value);
  }
  // ForEach visits every entry exactly once.
  std::size_t visited = 0;
  map.ForEach([&](std::uint64_t key, std::uint32_t value) {
    ++visited;
    EXPECT_EQ(reference.at(key), value);
  });
  EXPECT_EQ(visited, reference.size());
}

TEST(FlatMap, ClearKeepsCapacityAndWorks) {
  FlatMap<std::uint32_t> map;
  for (std::uint64_t k = 0; k < 1000; ++k) map[k] = static_cast<std::uint32_t>(k);
  std::size_t capacity = map.capacity();
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), capacity);
  EXPECT_EQ(map.Find(5), nullptr);
  for (std::uint64_t k = 0; k < 1000; ++k) map[k] = 1;
  EXPECT_EQ(map.size(), 1000u);
  EXPECT_EQ(map.capacity(), capacity);  // no regrowth needed
}

TEST(FlatMap, ReservePreventsRehash) {
  FlatMap<std::uint32_t> map(10000);
  std::size_t capacity = map.capacity();
  for (std::uint64_t k = 0; k < 10000; ++k) map[k] = 0;
  EXPECT_EQ(map.capacity(), capacity);
}

TEST(FlatSet, InsertAndContains) {
  FlatSet set;
  EXPECT_FALSE(set.Contains(11));
  EXPECT_TRUE(set.Insert(11));
  EXPECT_FALSE(set.Insert(11));
  EXPECT_TRUE(set.Contains(11));
  EXPECT_FALSE(set.Contains(12));
  EXPECT_EQ(set.size(), 1u);
}

TEST(Workspace, BuffersAreRecycledWithCapacity) {
  Workspace ws;
  std::uint32_t* data = nullptr;
  {
    auto buffer = ws.U32();
    buffer->resize(4096);
    data = buffer->data();
  }  // released back to the pool
  EXPECT_EQ(ws.u32_pool().idle(), 1u);
  {
    auto buffer = ws.U32();
    EXPECT_TRUE(buffer->empty());            // handed out cleared...
    EXPECT_GE(buffer->capacity(), 4096u);    // ...but with its capacity
    EXPECT_EQ(buffer->data(), data);         // and the same storage
    EXPECT_EQ(ws.u32_pool().idle(), 0u);
  }
  EXPECT_EQ(ws.u32_pool().idle(), 1u);
}

TEST(Workspace, NestedAcquisitionsGetDistinctBuffers) {
  Workspace ws;
  auto a = ws.U32();
  auto b = ws.U32();
  a->push_back(1);
  b->push_back(2);
  EXPECT_NE(a->data(), b->data());
  auto c = ws.U64();
  c->push_back(3);
  EXPECT_EQ((*a)[0], 1u);
  EXPECT_EQ((*b)[0], 2u);
}

TEST(Workspace, MoveTransfersOwnership) {
  Workspace ws;
  {
    ScratchVec<std::uint32_t> a = ws.U32();
    a->resize(16);
    ScratchVec<std::uint32_t> b = std::move(a);
    EXPECT_EQ(b->size(), 16u);
  }  // exactly one release
  EXPECT_EQ(ws.u32_pool().idle(), 1u);
}

}  // namespace
}  // namespace ldv
