// Taxonomy and TDS (top-down specialization) tests.

#include "tds/tds.h"

#include <gtest/gtest.h>

#include "anonymity/eligibility.h"
#include "common/rng.h"
#include "tds/taxonomy.h"
#include "test_util.h"

namespace ldv {
namespace {

TEST(Taxonomy, BuildsBalancedBinaryTree) {
  Taxonomy tax(8);
  EXPECT_EQ(tax.node_count(), 15u);  // 2 * 8 - 1
  EXPECT_EQ(tax.node(tax.root()).width(), 8u);
  EXPECT_TRUE(tax.node(tax.LeafFor(5)).is_leaf());
  EXPECT_EQ(tax.node(tax.LeafFor(5)).lo, 5u);
  EXPECT_EQ(tax.Depth(tax.root()), 0u);
  EXPECT_EQ(tax.Depth(tax.LeafFor(0)), 3u);
  EXPECT_EQ(tax.NodeLabel(tax.root()), "[0,8)");
}

TEST(Taxonomy, OddDomainSplitsUnevenly) {
  Taxonomy tax(5);
  const TaxonomyNode& root = tax.node(tax.root());
  EXPECT_EQ(tax.node(root.left).width(), 3u);
  EXPECT_EQ(tax.node(root.right).width(), 2u);
  EXPECT_EQ(tax.node_count(), 9u);  // 2 * 5 - 1
}

TEST(Taxonomy, SingletonDomainIsALeafRoot) {
  Taxonomy tax(1);
  EXPECT_EQ(tax.node_count(), 1u);
  EXPECT_TRUE(tax.node(tax.root()).is_leaf());
}

TEST(Taxonomy, ChildrenPartitionParent) {
  Taxonomy tax(17);
  for (std::int32_t id = 0; id < static_cast<std::int32_t>(tax.node_count()); ++id) {
    const TaxonomyNode& node = tax.node(id);
    if (node.is_leaf()) continue;
    const TaxonomyNode& l = tax.node(node.left);
    const TaxonomyNode& r = tax.node(node.right);
    EXPECT_EQ(l.lo, node.lo);
    EXPECT_EQ(l.hi, r.lo);
    EXPECT_EQ(r.hi, node.hi);
    EXPECT_EQ(l.parent, id);
    EXPECT_EQ(r.parent, id);
  }
}

TEST(Tds, FullySpecializesWhenPrivacyAllows) {
  // One row per (qi, sa) combination arranged so every leaf cell is
  // 2-eligible: two rows (different SA) per QI value.
  Schema schema = testutil::MakeSchema({4}, 2);
  Table table(schema);
  for (Value v = 0; v < 4; ++v) {
    std::vector<Value> qi{v};
    table.AppendRow(qi, 0);
    table.AppendRow(qi, 1);
  }
  TdsResult result = RunTds(table, 2);
  ASSERT_TRUE(result.feasible);
  // Every value should be published at its leaf.
  for (Value v = 0; v < 4; ++v) {
    EXPECT_EQ(result.generalization->CellWidth(0, v), 1u) << "value " << v;
  }
  EXPECT_EQ(result.partition.group_count(), 4u);
}

TEST(Tds, StopsAtRootWhenDataForbidsAnySplit) {
  // Left half all SA 0, right half all SA 1: any split of the root creates
  // homogeneous cells, so the cut must stay at the root.
  Schema schema = testutil::MakeSchema({4}, 2);
  Table table(schema);
  for (Value v = 0; v < 4; ++v) {
    std::vector<Value> qi{v};
    table.AppendRow(qi, v < 2 ? 0 : 1);
  }
  TdsResult result = RunTds(table, 2);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.specializations, 0u);
  EXPECT_EQ(result.generalization->CellWidth(0, 0), 4u);
  EXPECT_EQ(result.partition.group_count(), 1u);
}

TEST(Tds, AllCellsAreLEligible) {
  Rng rng(31);
  for (std::uint32_t l : {2u, 4u, 6u}) {
    Table table = testutil::RandomEligibleTable(rng, 500, {16, 8, 4}, 8, l);
    if (!IsTableEligible(table, l)) continue;
    TdsResult result = RunTds(table, l);
    ASSERT_TRUE(result.feasible);
    EXPECT_TRUE(result.partition.CoversExactly(table));
    EXPECT_TRUE(IsLDiverse(table, result.partition, l)) << "l=" << l;
    // Groups match the published cells: all rows of a group share a cell id.
    for (const auto& group : result.partition.groups()) {
      std::uint64_t cell = result.generalization->PackedCellId(table.qi_row(group[0]));
      for (RowId r : group) {
        EXPECT_EQ(result.generalization->PackedCellId(table.qi_row(r)), cell);
      }
    }
  }
}

TEST(Tds, MoreSpecializationsWithSmallerL) {
  Rng rng(33);
  // Generate for the stricter privacy level so both runs are feasible.
  Table table = testutil::RandomEligibleTable(rng, 800, {16, 8}, 8, 6);
  TdsResult loose = RunTds(table, 2);
  TdsResult strict = RunTds(table, 6);
  ASSERT_TRUE(loose.feasible);
  ASSERT_TRUE(strict.feasible);
  EXPECT_GE(loose.specializations, strict.specializations);
}

TEST(Tds, InfeasibleTableRejected) {
  Schema schema = testutil::MakeSchema({2}, 2);
  Table table(schema);
  std::vector<Value> qi{0};
  table.AppendRow(qi, 0);
  EXPECT_FALSE(RunTds(table, 2).feasible);
}

TEST(Tds, CellVolumeMatchesWidths) {
  Schema schema = testutil::MakeSchema({4, 8}, 2);
  Table table(schema);
  for (Value v = 0; v < 4; ++v) {
    std::vector<Value> qi{v, static_cast<Value>(v * 2)};
    table.AppendRow(qi, 0);
    table.AppendRow(qi, 1);
  }
  TdsResult result = RunTds(table, 2);
  ASSERT_TRUE(result.feasible);
  std::vector<Value> probe{0, 0};
  double volume = result.generalization->CellVolume(probe);
  double expected = static_cast<double>(result.generalization->CellWidth(0, 0)) *
                    result.generalization->CellWidth(1, 0);
  EXPECT_DOUBLE_EQ(volume, expected);
}

}  // namespace
}  // namespace ldv
