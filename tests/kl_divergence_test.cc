// KL-divergence (Equation 2) tests for suppression and single-dimensional
// generalizations.

#include "metrics/kl_divergence.h"

#include <gtest/gtest.h>

#include <cmath>

#include "anonymity/generalization.h"
#include "common/rng.h"
#include "core/anonymizer.h"
#include "tds/tds.h"
#include "test_util.h"

namespace ldv {
namespace {

TEST(KlSuppression, SingletonGroupsGiveZeroDivergence) {
  // With every tuple its own group nothing is generalized: f* = f.
  Table table = testutil::PaperTable1();
  std::vector<std::vector<RowId>> singletons;
  for (RowId r = 0; r < table.size(); ++r) singletons.push_back({r});
  GeneralizedTable generalized(table, Partition(singletons));
  EXPECT_NEAR(KlDivergenceSuppression(table, generalized), 0.0, 1e-9);
}

TEST(KlSuppression, HandComputedTwoRowExample) {
  // Two rows, one QI attribute of domain size 2, distinct QI values, same
  // SA, grouped together: both rows get a star.
  // f(p) = 1/2 at two points; f*(p) = (1/2) * (2 * (1/2)) / ... concretely:
  // each generalized tuple is uniform over {0, 1}, so the induced density
  // at each of the two points is (1/2 + 1/2) * (1/2) / 2 ... = 1/2.
  // Hence f* = f and KL = 0 by symmetry.
  Schema schema = testutil::MakeSchema({2}, 2);
  Table table(schema);
  {
    std::vector<Value> qi{0};
    table.AppendRow(qi, 0);
  }
  {
    std::vector<Value> qi{1};
    table.AppendRow(qi, 0);
  }
  GeneralizedTable generalized(table, Partition::SingleGroup(table));
  EXPECT_NEAR(KlDivergenceSuppression(table, generalized), 0.0, 1e-12);
}

TEST(KlSuppression, AsymmetricGroupHasPositiveDivergence) {
  // Domain size 4, two rows at values {0, 1} grouped: each point keeps
  // f = 1/2 but f* spreads mass uniformly over 4 values: f* = 1/4 at each
  // point, so KL = ln 2.
  Schema schema = testutil::MakeSchema({4}, 2);
  Table table(schema);
  {
    std::vector<Value> qi{0};
    table.AppendRow(qi, 0);
  }
  {
    std::vector<Value> qi{1};
    table.AppendRow(qi, 0);
  }
  GeneralizedTable generalized(table, Partition::SingleGroup(table));
  EXPECT_NEAR(KlDivergenceSuppression(table, generalized), std::log(2.0), 1e-12);
}

TEST(KlSuppression, MoreStarsMoreDivergence) {
  Rng rng(51);
  Table table = testutil::RandomEligibleTable(rng, 200, {8, 8}, 4, 2);
  // Fine partition: Hilbert groups; coarse partition: single group.
  AnonymizationOutcome fine = Anonymize(table, 2, Algorithm::kHilbert);
  ASSERT_TRUE(fine.feasible);
  GeneralizedTable fine_gen(table, fine.partition);
  GeneralizedTable coarse_gen(table, Partition::SingleGroup(table));
  EXPECT_LT(KlDivergenceSuppression(table, fine_gen),
            KlDivergenceSuppression(table, coarse_gen));
}

TEST(KlSingleDim, RootCutMatchesFullySuppressedTable) {
  // TDS stuck at the root publishes every attribute as its full domain --
  // informationally identical to a single all-starred QI-group, so the two
  // KL computations must agree.
  Schema schema = testutil::MakeSchema({4, 3}, 2);
  Table table(schema);
  Rng rng(53);
  for (int i = 0; i < 40; ++i) {
    std::vector<Value> qi{rng.Below(4), rng.Below(3)};
    table.AppendRow(qi, rng.Below(2));
  }
  // Build the root-level single-dim generalization directly.
  std::vector<Taxonomy> taxonomies;
  taxonomies.emplace_back(4);
  taxonomies.emplace_back(3);
  std::vector<std::vector<std::int32_t>> cut = {{0, 0, 0, 0}, {0, 0, 0}};
  SingleDimGeneralization root_gen(std::move(taxonomies), std::move(cut));

  GeneralizedTable starred(table, Partition::SingleGroup(table));
  EXPECT_NEAR(KlDivergenceSingleDim(table, root_gen),
              KlDivergenceSuppression(table, starred), 1e-9);
}

TEST(KlSingleDim, LeafCutGivesZeroDivergence) {
  Schema schema = testutil::MakeSchema({4}, 2);
  Table table(schema);
  for (Value v = 0; v < 4; ++v) {
    std::vector<Value> qi{v};
    table.AppendRow(qi, 0);
    table.AppendRow(qi, 1);
  }
  TdsResult result = RunTds(table, 2);
  ASSERT_TRUE(result.feasible);
  // Fully specialized: no information loss.
  EXPECT_NEAR(KlDivergenceSingleDim(table, *result.generalization), 0.0, 1e-9);
}

TEST(KlSingleDim, TdsDivergenceGrowsWithL) {
  Rng rng(55);
  // Generate for the stricter privacy level so both runs are feasible.
  Table table = testutil::RandomEligibleTable(rng, 600, {16, 8}, 8, 6);
  TdsResult l2 = RunTds(table, 2);
  TdsResult l6 = RunTds(table, 6);
  ASSERT_TRUE(l2.feasible);
  ASSERT_TRUE(l6.feasible);
  EXPECT_LE(KlDivergenceSingleDim(table, *l2.generalization),
            KlDivergenceSingleDim(table, *l6.generalization) + 1e-9);
}

TEST(KlDivergence, NonNegativity) {
  // KL(f, f*) >= 0 for every generalization (Gibbs' inequality); random
  // sweep across algorithms.
  Rng rng(57);
  for (int trial = 0; trial < 5; ++trial) {
    Table table = testutil::RandomEligibleTable(rng, 150, {6, 5}, 5, 3);
    for (Algorithm algo : {Algorithm::kTp, Algorithm::kTpPlus, Algorithm::kHilbert}) {
      AnonymizationOutcome outcome = Anonymize(table, 3, algo);
      ASSERT_TRUE(outcome.feasible);
      GeneralizedTable gen(table, outcome.partition);
      EXPECT_GE(KlDivergenceSuppression(table, gen), -1e-9);
    }
  }
}

}  // namespace
}  // namespace ldv
