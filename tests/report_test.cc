// Report-layer tests: the JSON report golden (byte-exact rendering with
// timings off), the metrics CSV shape, and the release writers for both
// the suppression view and the Anatomy bucketization pair.

#include "engine/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "anonymity/release.h"
#include "cli/pipeline.h"
#include "core/algorithm.h"
#include "test_util.h"

namespace ldv {
namespace {

using testutil::PaperTable1;

// A fully constructed one-job result with hand-picked metric values, so
// the golden below pins the exact rendering rather than algorithm output.
PipelineResult UnitResult() {
  PipelineResult result;
  auto input = std::make_shared<PipelineTable>(PaperTable1());
  input->source = "unit";
  result.tables.push_back(std::move(input));

  PipelineJobResult job;
  job.spec.algorithm = Algorithm::kTp;
  job.spec.l = 2;
  job.spec.table_index = 0;
  job.outcome.feasible = true;
  job.outcome.algorithm = Algorithm::kTp;
  job.outcome.methodology = Methodology::kSuppression;
  job.outcome.stars = 7;
  job.outcome.suppressed_tuples = 3;
  job.outcome.group_stats.group_count = 2;
  job.outcome.group_stats.min_size = 4;
  job.outcome.group_stats.max_size = 6;
  job.outcome.group_stats.mean_size = 5.0;
  job.outcome.kl_divergence = 0.25;
  job.outcome.specializations = 0;
  job.outcome.seconds = 123.0;  // must not appear with timings off
  result.jobs.push_back(std::move(job));
  return result;
}

TEST(Report, JsonGoldenWithoutTimings) {
  ReportOptions options;
  options.include_seconds = false;
  const std::string expected =
      "{\n"
      "  \"ldiv_report_version\": 1,\n"
      "  \"job_count\": 1,\n"
      "  \"tables\": [\n"
      "    {\"index\": 0, \"source\": \"unit\", \"rows\": 10, \"qi_attributes\": 3, "
      "\"schema\": \"Age(3),Gender(2),Education(3)|Disease(4)\"}\n"
      "  ],\n"
      "  \"jobs\": [\n"
      "    {\n"
      "      \"job\": 0,\n"
      "      \"table\": 0,\n"
      "      \"algorithm\": \"TP\",\n"
      "      \"methodology\": \"suppression\",\n"
      "      \"l\": 2,\n"
      "      \"feasible\": true,\n"
      "      \"stars\": 7,\n"
      "      \"suppressed_tuples\": 3,\n"
      "      \"groups\": 2,\n"
      "      \"min_group\": 4,\n"
      "      \"max_group\": 6,\n"
      "      \"mean_group\": 5,\n"
      "      \"kl_divergence\": 0.25,\n"
      "      \"specializations\": 0\n"
      "    }\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(RenderJsonReport(UnitResult(), options), expected);
}

TEST(Report, JsonIncludesSecondsByDefault) {
  std::string json = RenderJsonReport(UnitResult());
  EXPECT_NE(json.find("\"seconds\": 123"), std::string::npos);
}

TEST(Report, MetricsCsvGoldenWithoutTimings) {
  ReportOptions options;
  options.include_seconds = false;
  const std::string expected =
      "job,table,source,algorithm,methodology,l,rows,feasible,stars,"
      "suppressed_tuples,groups,min_group,max_group,mean_group,kl_divergence,"
      "specializations\n"
      "0,0,\"unit\",TP,suppression,2,10,true,7,3,2,4,6,5,0.25,0\n";
  EXPECT_EQ(RenderMetricsCsv(UnitResult(), options), expected);
}

TEST(Report, WritersRoundTripThroughDisk) {
  std::string stem = testing::TempDir() + "report_test";
  std::string error;
  ReportOptions options;
  options.include_seconds = false;
  ASSERT_TRUE(WriteJsonReport(UnitResult(), stem + ".json", options, &error)) << error;
  ASSERT_TRUE(WriteMetricsCsv(UnitResult(), stem + "_metrics.csv", options, &error)) << error;
  std::ifstream json(stem + ".json");
  std::stringstream content;
  content << json.rdbuf();
  EXPECT_EQ(content.str(), RenderJsonReport(UnitResult(), options));
  std::remove((stem + ".json").c_str());
  std::remove((stem + "_metrics.csv").c_str());
}

TEST(Report, SuppressionReleaseRoundTrips) {
  Table table = PaperTable1();
  AnonymizationOutcome outcome = AlgorithmRegistry::Global().Get(Algorithm::kTp).Run(table, 2);
  ASSERT_TRUE(outcome.feasible);
  ASSERT_NE(outcome.generalized, nullptr);

  std::string stem = testing::TempDir() + "release_test";
  std::string error;
  ASSERT_TRUE(WriteReleaseForOutcome(table, outcome, stem, &error)) << error;
  std::optional<std::vector<ReleaseRow>> rows = ReadReleaseCsv(table.schema(), stem + ".csv");
  ASSERT_TRUE(rows.has_value());
  EXPECT_EQ(rows->size(), table.size());
  std::uint64_t stars = 0;
  for (const ReleaseRow& row : *rows) {
    for (Value v : row.qi) stars += IsStar(v) ? 1 : 0;
  }
  EXPECT_EQ(stars, outcome.stars);
  std::remove((stem + ".csv").c_str());
}

TEST(Report, AnatomyReleaseWritesBucketPair) {
  Table table = PaperTable1();
  AnonymizationOutcome outcome =
      AlgorithmRegistry::Global().Get(Algorithm::kAnatomy).Run(table, 2);
  ASSERT_TRUE(outcome.feasible);
  ASSERT_EQ(outcome.generalized, nullptr) << "bucketization publishes no suppression view";

  std::string stem = testing::TempDir() + "anatomy_release_test";
  std::string error;
  ASSERT_TRUE(WriteReleaseForOutcome(table, outcome, stem, &error)) << error;

  std::ifstream qit(stem + ".csv");
  std::string header;
  ASSERT_TRUE(std::getline(qit, header));
  EXPECT_EQ(header, "Age,Gender,Education,Bucket");
  std::size_t qit_rows = 0;
  for (std::string line; std::getline(qit, line);) qit_rows += line.empty() ? 0 : 1;
  EXPECT_EQ(qit_rows, table.size());

  std::ifstream st(stem + "_sa.csv");
  ASSERT_TRUE(std::getline(st, header));
  EXPECT_EQ(header, "Bucket,Disease,Count");
  std::uint64_t total = 0;
  for (std::string line; std::getline(st, line);) {
    if (line.empty()) continue;
    std::size_t last_comma = line.rfind(',');
    total += std::stoull(line.substr(last_comma + 1));
  }
  EXPECT_EQ(total, table.size()) << "ST counts must cover every tuple exactly once";
  std::remove((stem + ".csv").c_str());
  std::remove((stem + "_sa.csv").c_str());
}

TEST(Report, InfeasibleOutcomeWritesNothing) {
  Table table = PaperTable1();
  AnonymizationOutcome outcome;
  outcome.feasible = false;
  std::string stem = testing::TempDir() + "infeasible_release_test";
  std::string error;
  ASSERT_TRUE(WriteReleaseForOutcome(table, outcome, stem, &error));
  std::ifstream in(stem + ".csv");
  EXPECT_FALSE(in.good());
}

}  // namespace
}  // namespace ldv
