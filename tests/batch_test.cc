// AnonymizeBatch tests: result ordering is the job ordering, and outcomes
// are identical to a sequential run regardless of the thread count.

#include "core/batch.h"

#include <gtest/gtest.h>

#include <string>

#include "data/acs_generator.h"
#include "data/acs_schema.h"
#include "test_util.h"

namespace ldv {
namespace {

// Full structural equality of two outcomes (the acceptance criterion asks
// for byte-identical results across thread counts; the partition's group
// lists pin down everything the algorithms decide, the metrics pin down
// the shared post-processing).
void ExpectSameOutcome(const AnonymizationOutcome& a, const AnonymizationOutcome& b,
                       const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.methodology, b.methodology);
  if (!a.feasible) return;
  EXPECT_EQ(a.stars, b.stars);
  EXPECT_EQ(a.suppressed_tuples, b.suppressed_tuples);
  EXPECT_EQ(a.kl_divergence, b.kl_divergence);  // exact: same arithmetic, same order
  EXPECT_EQ(a.group_stats.group_count, b.group_stats.group_count);
  EXPECT_EQ(a.group_stats.min_size, b.group_stats.min_size);
  EXPECT_EQ(a.group_stats.max_size, b.group_stats.max_size);
  EXPECT_EQ(a.partition.groups(), b.partition.groups());
}

std::vector<BatchJob> MakeJobs(const std::vector<const Table*>& tables) {
  std::vector<BatchJob> jobs;
  for (const Table* table : tables) {
    for (std::uint32_t l : {2u, 4u}) {
      for (Algorithm algorithm : kAllAlgorithms) {
        jobs.push_back(BatchJob{table, l, algorithm, AnonymizerOptions{}});
      }
    }
  }
  return jobs;
}

TEST(Batch, EmptyJobListYieldsEmptyResults) {
  EXPECT_TRUE(AnonymizeBatch({}).empty());
}

TEST(Batch, ResultsFollowJobOrder) {
  Table table = GenerateSal(2000, 1).ProjectQi({kAge, kGender});
  std::vector<BatchJob> jobs = MakeJobs({&table});
  std::vector<AnonymizationOutcome> results = AnonymizeBatch(jobs, BatchOptions{4});
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(results[i].algorithm, jobs[i].algorithm) << "job " << i;
  }
}

TEST(Batch, IdenticalAcrossThreadCounts) {
  Table sal = GenerateSal(3000, 1).ProjectQi({kAge, kGender, kEducation});
  Table occ = GenerateOcc(3000, 2).ProjectQi({kAge, kRace});
  std::vector<BatchJob> jobs = MakeJobs({&sal, &occ});

  std::vector<AnonymizationOutcome> sequential = AnonymizeBatch(jobs, BatchOptions{1});
  ASSERT_EQ(sequential.size(), jobs.size());
  for (unsigned threads : {2u, 4u, 7u}) {
    std::vector<AnonymizationOutcome> parallel = AnonymizeBatch(jobs, BatchOptions{threads});
    ASSERT_EQ(parallel.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      ExpectSameOutcome(sequential[i], parallel[i],
                        "threads=" + std::to_string(threads) + " job=" + std::to_string(i) +
                            " algo=" + AlgorithmName(jobs[i].algorithm));
    }
  }
}

TEST(Batch, InfeasibleJobsReportInfeasible) {
  Table table = testutil::PaperTable1();  // max feasible l is 2
  std::vector<BatchJob> jobs;
  for (Algorithm algorithm : kAllAlgorithms) {
    jobs.push_back(BatchJob{&table, 3, algorithm, AnonymizerOptions{}});
  }
  for (const AnonymizationOutcome& outcome : AnonymizeBatch(jobs, BatchOptions{3})) {
    EXPECT_FALSE(outcome.feasible);
  }
}

TEST(Batch, DefaultThreadCountRuns) {
  Table table = GenerateSal(1000, 9).ProjectQi({kAge});
  std::vector<BatchJob> jobs = {
      BatchJob{&table, 2, Algorithm::kTp, AnonymizerOptions{}},
      BatchJob{&table, 2, Algorithm::kAnatomy, AnonymizerOptions{}},
  };
  std::vector<AnonymizationOutcome> results = AnonymizeBatch(jobs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].feasible);
  EXPECT_TRUE(results[1].feasible);
}

}  // namespace
}  // namespace ldv
