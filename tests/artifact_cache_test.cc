// ArtifactCache tests: the LRU byte-budget mechanics (hit/miss, eviction
// order, recency refresh, capacity re-sizing, shared-ownership pinning),
// content-identity invalidation when a CSV input changes on disk, refault
// correctness under a forced-eviction artifact budget, and concurrent
// daemon submissions sharing one cached artifact (run under TSan in CI).

#include "engine/artifact_cache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/csv.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/schema_spec.h"
#include "daemon/client.h"
#include "daemon/daemon.h"
#include "daemon/protocol.h"
#include "engine/engine.h"
#include "engine/job_spec.h"
#include "engine/report.h"
#include "test_util.h"

namespace ldv {
namespace {

std::string ReadFile(const std::string& path) {
  std::string content;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return content;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, got);
  std::fclose(f);
  return content;
}

std::shared_ptr<const std::vector<RowId>> MakeOrder(std::size_t n) {
  auto order = std::make_shared<std::vector<RowId>>();
  for (std::size_t i = 0; i < n; ++i) order->push_back(static_cast<RowId>(i));
  return order;
}

TEST(ArtifactCache, LruHitMissEvictAndRefresh) {
  ArtifactCache cache(/*capacity_bytes=*/1000);
  auto a = MakeOrder(3);
  auto b = MakeOrder(1);
  auto c = MakeOrder(2);

  EXPECT_EQ(cache.LookupOrder("a"), nullptr);
  cache.InsertOrder("a", a, 400);
  cache.InsertOrder("b", b, 400);
  EXPECT_EQ(cache.LookupOrder("a"), a) << "a hit returns the shared artifact, not a copy";
  cache.InsertOrder("c", c, 400);  // over budget: evicts "b", the least recently used
  EXPECT_EQ(cache.LookupOrder("b"), nullptr);
  EXPECT_EQ(cache.LookupOrder("a"), a);
  EXPECT_EQ(cache.LookupOrder("c"), c);

  const ArtifactCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.resident_bytes, 800u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(ArtifactCache, ZeroCapacityAndOversizedEntriesAreNotCached) {
  ArtifactCache disabled(0);
  disabled.InsertOrder("a", MakeOrder(1), 10);
  EXPECT_EQ(disabled.LookupOrder("a"), nullptr);
  EXPECT_EQ(disabled.stats().insertions, 0u);

  ArtifactCache small(100);
  small.InsertOrder("big", MakeOrder(1), 101);
  EXPECT_EQ(small.LookupOrder("big"), nullptr);
  EXPECT_EQ(small.stats().resident_bytes, 0u);
}

TEST(ArtifactCache, SetCapacityEvictsPastTheNewBudgetButPinnedArtifactsSurvive) {
  ArtifactCache cache(1000);
  cache.InsertOrder("a", MakeOrder(4), 400);
  cache.InsertOrder("b", MakeOrder(5), 400);

  // A consumer holding the artifact keeps it alive across eviction: the
  // cache only drops its own reference.
  std::shared_ptr<const std::vector<RowId>> pinned = cache.LookupOrder("a");
  ASSERT_NE(pinned, nullptr);

  cache.SetCapacity(400);  // "b" is now least recently used; only "a" fits
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.LookupOrder("b"), nullptr);
  EXPECT_EQ(cache.LookupOrder("a"), pinned);

  cache.SetCapacity(0);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(pinned->size(), 4u) << "the pinned artifact outlives its cache entry";
}

TEST(ArtifactCache, KeysSeparateArtifactKindsAndSchemas) {
  Table table = testutil::PaperTable1();
  const std::string grouped_key = ArtifactCache::GroupedKey("ds", table);
  const std::string order_key = ArtifactCache::OrderKey("ds", table);
  EXPECT_NE(grouped_key, order_key) << "one dataset, two artifact kinds, two keys";
  EXPECT_NE(grouped_key.find("ds"), std::string::npos);
  EXPECT_NE(ArtifactCache::GroupedKey("other", table), grouped_key)
      << "the dataset content key is part of the artifact key";
}

TEST(ArtifactCacheEngine, CsvContentChangeInvalidatesArtifacts) {
  Rng rng(7);
  Table table = testutil::RandomEligibleTable(rng, 60, {6, 4}, 5, 2);
  const std::string path = testing::TempDir() + "artifact_input.csv";
  ASSERT_TRUE(WriteTableCsv(table, path));

  Engine engine;
  JobSpec spec;
  spec.input = path;
  spec.schema_spec = FormatSchemaSpec(table.schema());
  spec.algorithms = {Algorithm::kTp};
  spec.ls = {2};
  spec.timings = false;

  Expected<JobResult, PipelineError> first = engine.Run(spec);
  ASSERT_TRUE(first.ok()) << first.error().message;
  EXPECT_EQ(first->artifact_misses, 1u);
  EXPECT_EQ(first->artifact_hits, 0u);

  Expected<JobResult, PipelineError> second = engine.Run(spec);
  ASSERT_TRUE(second.ok()) << second.error().message;
  EXPECT_EQ(second->artifact_hits, 1u);
  EXPECT_EQ(second->artifact_misses, 0u);

  // Rewriting the file (different row count, hence size and mtime)
  // changes the dataset content key, so the stale grouping is never
  // served for the new data.
  Rng changed_rng(8);
  Table changed = testutil::RandomEligibleTable(changed_rng, 80, {6, 4}, 5, 2);
  ASSERT_TRUE(WriteTableCsv(changed, path));
  Expected<JobResult, PipelineError> third = engine.Run(spec);
  ASSERT_TRUE(third.ok()) << third.error().message;
  EXPECT_EQ(third->artifact_hits, 0u) << "a changed CSV must not reuse stale artifacts";
  EXPECT_EQ(third->artifact_misses, 1u);

  std::remove(path.c_str());
  SetThreadBudget(0);
}

TEST(ArtifactCacheEngine, ForcedEvictionRefaultsByteForByte) {
  Engine engine;
  JobSpec spec;
  spec.dataset.name = "sal";
  spec.ns = {900};
  spec.ds = {3};
  spec.algorithms = {Algorithm::kTp, Algorithm::kHilbert};
  spec.ls = {2, 3};
  spec.timings = false;

  Expected<JobResult, PipelineError> reference = engine.Run(spec);
  ASSERT_TRUE(reference.ok()) << reference.error().message;
  EXPECT_EQ(reference->artifact_misses, 2u);
  const std::uint64_t resident = engine.artifact_cache().stats().resident_bytes;
  ASSERT_GT(resident, 0u);

  // A budget one byte short of both artifacts forces an eviction up
  // front; the run refaults what it lost and must still match.
  JobSpec tight = spec;
  tight.artifact_cache = resident - 1;
  Expected<JobResult, PipelineError> refaulted = engine.Run(tight);
  ASSERT_TRUE(refaulted.ok()) << refaulted.error().message;
  EXPECT_GT(engine.artifact_cache().stats().evictions, 0u);
  EXPECT_GT(refaulted->artifact_misses, 0u) << "the evicted artifact must refault";

  ReportOptions options;
  options.include_seconds = false;
  EXPECT_EQ(RenderJsonReport(reference.value(), options),
            RenderJsonReport(refaulted.value(), options));
  EXPECT_EQ(RenderMetricsCsv(reference.value(), options),
            RenderMetricsCsv(refaulted.value(), options));
  SetThreadBudget(0);
}

TEST(ArtifactCacheDaemon, ConcurrentSubmissionsShareOneArtifact) {
  DaemonOptions options;
  options.socket_path = testing::TempDir() + "ldivd_artifact.sock";
  options.workers = 2;
  Daemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  auto spec_for = [](const std::string& out) {
    JobSpec spec;
    spec.dataset.name = "sal";
    spec.ns = {600};
    spec.ds = {3};
    spec.algorithms = {Algorithm::kTp};
    spec.ls = {2};
    spec.timings = false;
    spec.out = out;
    return spec;
  };

  constexpr std::size_t kClients = 6;
  std::vector<Frame> replies(kClients);
  std::vector<std::map<std::string, std::string>> kvs(kClients);
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const JobSpec spec =
          spec_for(testing::TempDir() + "ldivd_artifact_" + std::to_string(i));
      DaemonRequest(options.socket_path, Frame{"job", SerializeJobSpec(spec)}, &replies[i],
                    &kvs[i], &errors[i]);
    });
  }
  for (std::thread& t : clients) t.join();
  for (std::size_t i = 0; i < kClients; ++i) {
    ASSERT_EQ(replies[i].verb, "ok") << errors[i] << " " << replies[i].payload;
  }

  // One GroupedTable build serves every submission; the stats verb
  // surfaces the shared counters.
  Frame reply;
  std::map<std::string, std::string> kv;
  ASSERT_TRUE(DaemonRequest(options.socket_path, Frame{"stats", ""}, &reply, &kv, &error))
      << error;
  EXPECT_EQ(kv.at("artifact-misses"), "1") << "the grouping must be built exactly once";
  EXPECT_EQ(kv.at("artifact-hits"), std::to_string(kClients - 1));

  // Hit-path outputs are byte-identical to the cold-path ones.
  const std::string reference = ReadFile(testing::TempDir() + "ldivd_artifact_0.csv");
  ASSERT_FALSE(reference.empty());
  for (std::size_t i = 1; i < kClients; ++i) {
    EXPECT_EQ(ReadFile(testing::TempDir() + "ldivd_artifact_" + std::to_string(i) + ".csv"),
              reference);
  }
  for (std::size_t i = 0; i < kClients; ++i) {
    const std::string stem = testing::TempDir() + "ldivd_artifact_" + std::to_string(i);
    for (const char* suffix : {".csv", "_sa.csv", ".json", "_metrics.csv"}) {
      std::remove((stem + suffix).c_str());
    }
  }
  daemon.Stop();
  daemon.WaitForShutdown();
  SetThreadBudget(0);
}

}  // namespace
}  // namespace ldv
