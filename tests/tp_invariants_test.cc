// Parameterized grid sweep of the three-phase engine's formal guarantees
// over histogram-level instances: every (l, m, s, skew) cell runs many
// random instances and checks the per-phase lemmas end to end.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/tp.h"

namespace ldv {
namespace {

struct GridParam {
  std::uint32_t l;
  std::size_t m;
  std::size_t max_groups;
  std::uint32_t skew;  // 0 = flat group histograms, larger = heavier heads
  std::uint64_t seed;
};

class TpInvariantGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(TpInvariantGrid, AllPhaseGuaranteesHold) {
  const GridParam p = GetParam();
  Rng rng(p.seed);
  int ran = 0;
  for (int trial = 0; trial < 150; ++trial) {
    std::size_t s = 1 + rng.Below(static_cast<std::uint32_t>(p.max_groups));
    std::vector<SaHistogram> groups;
    SaHistogram overall(p.m);
    for (std::size_t g = 0; g < s; ++g) {
      SaHistogram h(p.m);
      for (SaValue v = 0; v < p.m; ++v) {
        std::uint32_t c = rng.Below(3);
        if (p.skew > 0 && rng.Below(3) == 0) c += rng.Below(p.skew + 1);
        if (c > 0) {
          h.Add(v, c);
          overall.Add(v, c);
        }
      }
      groups.push_back(std::move(h));
    }
    // Repair to table-level eligibility by topping up the least frequent
    // SA value in a random group; this keeps the per-group shapes random
    // while making every trial feasible (tight cells like l = m would
    // otherwise almost never be eligible by chance).
    while (!overall.IsEligible(p.l)) {
      SaValue min_v = 0;
      for (SaValue v = 1; v < p.m; ++v) {
        if (overall.count(v) < overall.count(min_v)) min_v = v;
      }
      groups[rng.Below(static_cast<std::uint32_t>(groups.size()))].Add(min_v);
      overall.Add(min_v);
    }
    ++ran;

    TpEngine engine(groups, p.l);
    const TpStats& stats = engine.Run();

    // Universal invariants.
    ASSERT_TRUE(engine.ResidueEligible());
    for (GroupId g = 0; g < engine.group_count(); ++g) {
      ASSERT_TRUE(engine.GroupHistogram(g).IsEligible(p.l))
          << "trial " << trial << " group " << g;
    }
    ASSERT_EQ(stats.removed_phase1 + stats.removed_phase2 + stats.removed_phase3,
              stats.residue_size);
    const std::uint32_t h1 = stats.residue_pillar_after_phase1;

    switch (stats.terminated_phase) {
      case 1:
        ASSERT_EQ(stats.removed_phase2, 0u);
        ASSERT_EQ(stats.removed_phase3, 0u);
        // Eligibility at phase-one end: |R| >= l * h(R-dot).
        ASSERT_GE(stats.residue_size, static_cast<std::uint64_t>(p.l) * h1);
        break;
      case 2:
        // Lemma 5 + Lemma 6.
        ASSERT_EQ(stats.residue_pillar_after_phase2, h1);
        ASSERT_LE(stats.residue_size,
                  static_cast<std::uint64_t>(p.l) * h1 + p.l - 1);
        break;
      case 3: {
        // Theorem 2: l = 2 never reaches phase three.
        ASSERT_GE(p.l, 3u);
        // Lemma 9 and the Theorem 3 chain.
        ASSERT_LE(stats.phase3_rounds, stats.residue_pillar_after_phase2);
        std::uint32_t h_final = engine.ResiduePillarHeight();
        ASSERT_LE(h_final, (p.l - 1) * stats.residue_pillar_after_phase2);
        ASSERT_LE(stats.residue_size,
                  static_cast<std::uint64_t>(p.l) * h_final + p.l - 1);
        // Corollary 2 chain: |R| < l * l * h(R-dot) <= l * OPT.
        ASSERT_LT(stats.residue_size,
                  static_cast<std::uint64_t>(p.l) * p.l * std::max(h1, 1u));
        break;
      }
      default:
        FAIL() << "invalid terminated_phase " << stats.terminated_phase;
    }
  }
  ASSERT_EQ(ran, 150) << "repair loop failed to reach eligibility";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TpInvariantGrid,
    ::testing::Values(GridParam{2, 3, 4, 0, 1}, GridParam{2, 5, 6, 3, 2},
                      GridParam{2, 8, 8, 5, 3}, GridParam{3, 3, 4, 0, 4},
                      GridParam{3, 5, 6, 3, 5}, GridParam{3, 8, 8, 5, 6},
                      GridParam{4, 4, 4, 2, 7}, GridParam{4, 6, 6, 4, 8},
                      GridParam{5, 5, 5, 2, 9}, GridParam{5, 9, 8, 5, 10},
                      GridParam{6, 6, 4, 3, 11}, GridParam{6, 10, 8, 6, 12},
                      GridParam{8, 8, 5, 4, 13}, GridParam{10, 12, 6, 5, 14}),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      return "l" + std::to_string(info.param.l) + "m" + std::to_string(info.param.m) + "s" +
             std::to_string(info.param.max_groups) + "k" + std::to_string(info.param.skew);
    });

}  // namespace
}  // namespace ldv
