// Tests driving the three-phase engine through the paper's worked examples
// (Sections 5.2, 5.3 and 5.4) and checking the per-phase lemmas.

#include <gtest/gtest.h>

#include "anonymity/eligibility.h"
#include "common/grouped_table.h"
#include "core/tp.h"
#include "test_util.h"

namespace ldv {
namespace {

using testutil::PaperTable1;

// ---------------------------------------------------------------------------
// Phase one (Section 5.2)
// ---------------------------------------------------------------------------

TEST(TpPhase1, PaperTable1ExampleTerminatesInPhaseOne) {
  // "Consider the example in Table 1 with l = 2. ... The set R of removed
  // tuples have the following (multi)set of SA values: {HIV, HIV,
  // pneumonia, bronchitis}. In this case R is already l-eligible and thus
  // the whole algorithm terminates."
  Table table = PaperTable1();
  GroupedTable grouped(table);
  EXPECT_EQ(grouped.group_count(), 5u);  // {1,2},{3},{4},{5..8},{9,10}

  TpEngine engine(grouped, 2);
  engine.Run();
  EXPECT_EQ(engine.stats().terminated_phase, 1);
  // HIV=0, pneumonia=1, bronchitis=2, dyspepsia=3.
  EXPECT_EQ(engine.ResidueHistogram(), SaHistogram({2, 1, 1, 0}));
  EXPECT_EQ(engine.stats().removed_phase1, 4u);
  EXPECT_TRUE(engine.ResidueEligible());
}

TEST(TpPhase1, MakesEveryGroupEligible) {
  std::vector<SaHistogram> groups = {SaHistogram({5, 1, 0}), SaHistogram({2, 2, 2}),
                                     SaHistogram({0, 0, 4})};
  TpEngine engine(groups, 2);
  engine.RunPhase1();
  for (GroupId g = 0; g < engine.group_count(); ++g) {
    SaHistogram h = engine.GroupHistogram(g);
    EXPECT_TRUE(h.IsEligible(2)) << "group " << g << " = " << h.ToString();
  }
}

TEST(TpPhase1, PillarRemovalIsOrderIndependentInOutcome) {
  // The paper argues the phase-one end state is unique. Check the specific
  // shape: (5,1,0) with l=2 must shrink to (1,1,0).
  std::vector<SaHistogram> groups = {SaHistogram({5, 1, 0})};
  TpEngine engine(groups, 2);
  engine.RunPhase1();
  EXPECT_EQ(engine.GroupHistogram(0), SaHistogram({1, 1, 0}));
  EXPECT_EQ(engine.ResidueHistogram(), SaHistogram({4, 0, 0}));
}

TEST(TpPhase1, GroupTooSmallIsFullyEliminated) {
  // A group with fewer than l distinct values can only become eligible by
  // becoming empty (the Section 5.6 degradation mode for diverse QI data).
  std::vector<SaHistogram> groups = {SaHistogram({3, 3, 0, 0})};
  TpEngine engine(groups, 3);
  engine.RunPhase1();
  EXPECT_EQ(engine.GroupHistogram(0).total(), 0u);
  EXPECT_EQ(engine.ResidueHistogram(), SaHistogram({3, 3, 0, 0}));
}

TEST(TpPhase1, LemmaFourResidueLowerBoundsOpt) {
  // Corollary 2: OPT >= l * h(R-dot). Cross-check on the paper example:
  // h(R-dot) = 2, l = 2 so OPT >= 4, and phase-1 termination removed
  // exactly 4, certifying optimality (Corollary 1).
  Table table = PaperTable1();
  TpResult result = RunTp(table, 2);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.stats.terminated_phase, 1);
  EXPECT_EQ(result.stats.residue_pillar_after_phase1, 2u);
  EXPECT_EQ(result.residue_rows.size(), 4u);
}

// ---------------------------------------------------------------------------
// Phase two (Section 5.3)
// ---------------------------------------------------------------------------

TEST(TpPhase2, PaperSection53Example) {
  // m = 5, s = 3, l = 3; Q1 = (3,1,1,2,3), Q2 = (0,2,2,4,4),
  // Q3 = (4,4,0,0,0).
  std::vector<SaHistogram> groups = {SaHistogram({3, 1, 1, 2, 3}), SaHistogram({0, 2, 2, 4, 4}),
                                     SaHistogram({4, 4, 0, 0, 0})};
  TpEngine engine(groups, 3);
  const TpStats& stats = engine.Run();

  // Phase one eliminates Q3 entirely (two distinct values can never be
  // 3-eligible) and leaves Q1, Q2 untouched.
  EXPECT_EQ(stats.removed_phase1, 8u);
  EXPECT_EQ(stats.residue_pillar_after_phase1, 4u);

  // Phase two succeeds (the paper's trace ends with R = (4,4,2,1,1); exact
  // counts depend on the arbitrary tie-breaks, the guarantees do not).
  EXPECT_EQ(stats.terminated_phase, 2);
  // Lemma 5: h(R) unchanged by phase two.
  EXPECT_EQ(stats.residue_pillar_after_phase2, 4u);
  EXPECT_EQ(engine.ResiduePillarHeight(), 4u);
  // Lemma 6: |R| <= l * h(R-dot) + l - 1 = 12 + 2.
  EXPECT_LE(engine.ResidueSize(), 14u);
  EXPECT_TRUE(engine.ResidueEligible());
  // Groups stay l-eligible throughout.
  for (GroupId g = 0; g < engine.group_count(); ++g) {
    EXPECT_TRUE(engine.GroupHistogram(g).IsEligible(3));
  }
}

TEST(TpPhase2, Theorem2TwoDiversityNeverReachesPhaseThree) {
  // Theorem 2: for l = 2 the algorithm always terminates during the first
  // two phases with |R| <= OPT + 1. Randomized sweep over histogram
  // configurations.
  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    std::size_t m = 2 + rng.Below(5);
    std::size_t s = 1 + rng.Below(6);
    std::vector<SaHistogram> groups;
    SaHistogram overall(m);
    for (std::size_t g = 0; g < s; ++g) {
      SaHistogram h(m);
      int values = 1 + rng.Below(8);
      for (int i = 0; i < values; ++i) {
        SaValue v = rng.Below(static_cast<std::uint32_t>(m));
        h.Add(v);
        overall.Add(v);
      }
      groups.push_back(std::move(h));
    }
    if (!overall.IsEligible(2)) continue;
    TpEngine engine(groups, 2);
    engine.Run();
    EXPECT_LE(engine.stats().terminated_phase, 2) << "trial " << trial;
  }
}

TEST(TpPhase2, DirectCallAfterEligibleResidueIsNoOp) {
  std::vector<SaHistogram> groups = {SaHistogram({2, 2})};
  TpEngine engine(groups, 2);
  engine.RunPhase1();
  EXPECT_TRUE(engine.RunPhase2());
  EXPECT_EQ(engine.ResidueSize(), 0u);
}

// ---------------------------------------------------------------------------
// Phase three (Section 5.4)
// ---------------------------------------------------------------------------

TEST(TpPhase3, PaperSection54Example) {
  // m = 5, s = 2, l = 4; status after phase two: Q1 = (3,1,2,3,3),
  // Q2 = (1,3,2,3,3), R = (4,4,4,0,0). Both groups are dead (thin and
  // conflicting: Q1 on value 1, Q2 on value 2 in 1-based paper notation).
  std::vector<SaHistogram> groups = {SaHistogram({3, 1, 2, 3, 3}), SaHistogram({1, 3, 2, 3, 3})};
  SaHistogram residue({4, 4, 4, 0, 0});
  TpEngine engine(groups, residue, 4);

  ASSERT_FALSE(engine.ResidueEligible());
  ASSERT_TRUE(engine.GroupIsDead(0));
  ASSERT_TRUE(engine.GroupIsDead(1));

  engine.RunPhase3();
  EXPECT_TRUE(engine.ResidueEligible());
  // The paper's trace finishes in one round; the greedy here picks both
  // groups as well.
  EXPECT_EQ(engine.stats().phase3_rounds, 1u);
  // Lemma 8: each round raises h(R) by at most l - 2 = 2 (from 4 to <= 6).
  EXPECT_LE(engine.ResiduePillarHeight(), 6u);
  // Groups remain l-eligible.
  for (GroupId g = 0; g < engine.group_count(); ++g) {
    EXPECT_TRUE(engine.GroupHistogram(g).IsEligible(4));
  }
}

TEST(TpPhase3, RandomHardInstancesRespectTheoremThreeBounds) {
  // Configurations engineered to need phase three: many thin conflicting
  // groups sharing the residue pillar structure.
  Rng rng(123);
  int phase3_seen = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::size_t m = 3 + rng.Below(4);
    std::uint32_t l = 3 + rng.Below(static_cast<std::uint32_t>(m) - 2);
    std::size_t s = 1 + rng.Below(5);
    std::vector<SaHistogram> groups;
    SaHistogram overall(m);
    for (std::size_t g = 0; g < s; ++g) {
      SaHistogram h(m);
      // Mostly-flat groups with occasional heavy values.
      for (SaValue v = 0; v < m; ++v) {
        std::uint32_t c = rng.Below(4);
        if (rng.Below(4) == 0) c += rng.Below(5);
        if (c > 0) {
          h.Add(v, c);
          overall.Add(v, c);
        }
      }
      groups.push_back(std::move(h));
    }
    if (!overall.IsEligible(l)) continue;

    TpEngine engine(groups, l);
    const TpStats& stats = engine.Run();
    EXPECT_TRUE(engine.ResidueEligible());
    if (stats.terminated_phase == 3) {
      ++phase3_seen;
      // Theorem 3 internals: h(R-hat) <= (l-1) h(R-double-dot) and
      // |R-hat| <= l * h(R-hat) + l - 1.
      EXPECT_LE(engine.ResiduePillarHeight(),
                (l - 1) * stats.residue_pillar_after_phase2);
      EXPECT_LE(engine.ResidueSize(),
                static_cast<std::uint64_t>(l) * engine.ResiduePillarHeight() + l - 1);
      // Lemma 9: rounds <= h(R-double-dot).
      EXPECT_LE(stats.phase3_rounds, stats.residue_pillar_after_phase2);
    }
    // Always: groups l-eligible at the end.
    for (GroupId g = 0; g < engine.group_count(); ++g) {
      EXPECT_TRUE(engine.GroupHistogram(g).IsEligible(l));
    }
  }
  // The sweep must actually exercise phase three at least once; otherwise
  // the assertions above are vacuous.
  EXPECT_GT(phase3_seen, 0);
}

TEST(TpPhase3, MidDonationTerminationRegression) {
  // Regression: phase three used to test "R became l-eligible" after every
  // single removal, which could cut a thin group's donation short and leave
  // that group l-ineligible. On this instance (found by the approximation-
  // ratio harness) the buggy version returned |R| = 9 with an ineligible
  // group; the valid optimum is 14.
  Schema schema = testutil::MakeSchema({2, 3}, 5);
  Table table = testutil::MakeTable(
      schema, {{1, 0, 3}, {1, 1, 3}, {0, 0, 2}, {0, 0, 0}, {1, 0, 0}, {0, 2, 1}, {1, 2, 1},
               {1, 1, 3}, {1, 1, 0}, {1, 2, 4}, {0, 1, 1}, {1, 2, 1}, {0, 0, 3}, {1, 2, 2}});
  TpResult result = RunTp(table, 3);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.stats.terminated_phase, 3);
  Partition partition = result.ToPartition();
  EXPECT_TRUE(partition.CoversExactly(table));
  EXPECT_TRUE(IsLDiverse(table, partition, 3));
}

TEST(TpPhase3, TableLevelOutputsStayLDiverseWhenPhaseThreeFires) {
  // Table-level fuzz targeted at phase three: tiny QI domains and skewed
  // SA values produce many thin conflicting groups.
  Rng rng(2027);
  int phase3_seen = 0;
  for (int trial = 0; trial < 800; ++trial) {
    std::uint32_t l = 3 + rng.Below(2);
    std::size_t m = l + 1 + rng.Below(3);
    Schema schema = testutil::MakeSchema({2, 3}, m);
    Table table(schema);
    std::size_t n = 10 + rng.Below(8);
    std::vector<Value> qi(2);
    for (std::size_t i = 0; i < n; ++i) {
      qi[0] = rng.Below(2);
      qi[1] = rng.Below(3);
      table.AppendRow(qi, rng.Below(static_cast<std::uint32_t>(m)));
    }
    if (!IsTableEligible(table, l)) continue;
    TpResult result = RunTp(table, l);
    ASSERT_TRUE(result.feasible);
    Partition partition = result.ToPartition();
    ASSERT_TRUE(partition.CoversExactly(table));
    ASSERT_TRUE(IsLDiverse(table, partition, l)) << "trial " << trial << " l=" << l;
    if (result.stats.terminated_phase == 3) ++phase3_seen;
  }
  EXPECT_GT(phase3_seen, 0) << "fuzz never reached phase three; weak sweep";
}

}  // namespace
}  // namespace ldv
