#ifndef LDIV_TESTS_TEST_UTIL_H_
#define LDIV_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/schema.h"
#include "common/table.h"

namespace ldv {
namespace testutil {

/// Builds a schema with unnamed QI attributes of the given domain sizes and
/// an SA domain of size `m`.
inline Schema MakeSchema(std::vector<std::size_t> qi_domains, std::size_t m) {
  std::vector<Attribute> qi;
  for (std::size_t i = 0; i < qi_domains.size(); ++i) {
    qi.push_back(Attribute{"A" + std::to_string(i + 1), qi_domains[i]});
  }
  return Schema(std::move(qi), Attribute{"B", m});
}

/// Builds a table from rows given as {qi..., sa}.
inline Table MakeTable(const Schema& schema,
                       std::initializer_list<std::vector<Value>> rows) {
  Table table(schema);
  for (const auto& row : rows) {
    std::vector<Value> qi(row.begin(), row.end() - 1);
    table.AppendRow(qi, row.back());
  }
  return table;
}

/// The paper's running example, Table 1 (10 hospital records).
/// Age: {<30, [30,50), >=50} -> {0,1,2};  Gender: {M,F} -> {0,1};
/// Education: {Master, Bachelor, HighSchool} -> {0,1,2};
/// Disease: {HIV, pneumonia, bronchitis, dyspepsia} -> {0,1,2,3}.
inline Table PaperTable1() {
  Schema schema({Attribute{"Age", 3}, Attribute{"Gender", 2}, Attribute{"Education", 3}},
                Attribute{"Disease", 4});
  return MakeTable(schema, {
                               {0, 0, 0, 0},  // 1 Adam:   <30, M, Master,   HIV
                               {0, 0, 0, 0},  // 2 Bob:    <30, M, Master,   HIV
                               {0, 0, 1, 1},  // 3 Calvin: <30, M, Bachelor, pneumonia
                               {1, 0, 1, 2},  // 4 Danny:  30s, M, Bachelor, bronchitis
                               {1, 1, 1, 1},  // 5 Eva
                               {1, 1, 1, 2},  // 6 Fiona
                               {1, 1, 1, 2},  // 7 Ginny
                               {1, 1, 1, 1},  // 8 Helen
                               {2, 1, 2, 3},  // 9 Ivy:    >=50, F, HighSch, dyspepsia
                               {2, 1, 2, 1},  // 10 Jane:  >=50, F, HighSch, pneumonia
                           });
}

/// A random table over `qi_domains` x [0, m) that is guaranteed l-eligible:
/// rows are drawn until the SA histogram satisfies the constraint, by
/// topping up underrepresented values.
inline Table RandomEligibleTable(Rng& rng, std::size_t n, std::vector<std::size_t> qi_domains,
                                 std::size_t m, std::uint32_t l) {
  Schema schema = MakeSchema(std::move(qi_domains), m);
  Table table(schema);
  std::vector<std::uint32_t> counts(m, 0);
  std::vector<Value> qi(schema.qi_count());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < schema.qi_count(); ++a) {
      qi[a] = rng.Below(static_cast<std::uint32_t>(schema.qi(static_cast<AttrId>(a)).domain_size));
    }
    // Biased SA draw, then eligibility repair below.
    SaValue sa = rng.Below(static_cast<std::uint32_t>(m));
    if (rng.Below(3) == 0) sa = sa / 2;  // skew
    table.AppendRow(qi, sa);
    ++counts[sa];
  }
  // Repair until l-eligible. Two moves, both rebuilding the table (Table is
  // append-only): replace one most-frequent-value row with a fresh value,
  // or -- when no replacement can ever reach eligibility, e.g. n odd with
  // m = l = 2, where max >= ceil(n/m) > n/l -- drop one such row instead.
  for (;;) {
    std::uint32_t max_count = 0;
    SaValue argmax = 0;
    for (SaValue v = 0; v < m; ++v) {
      if (counts[v] > max_count) {
        max_count = counts[v];
        argmax = v;
      }
    }
    if (static_cast<std::uint64_t>(l) * max_count <= table.size()) break;
    std::uint64_t best_possible_max = (table.size() + m - 1) / m;  // perfectly balanced
    bool drop = static_cast<std::uint64_t>(l) * best_possible_max > table.size();
    Table rebuilt(schema);
    bool handled = false;
    for (RowId r = 0; r < table.size(); ++r) {
      SaValue sa = table.sa(r);
      if (!handled && sa == argmax) {
        handled = true;
        --counts[argmax];
        if (drop) continue;  // remove the row entirely
        sa = (argmax + 1 + rng.Below(static_cast<std::uint32_t>(m - 1))) %
             static_cast<std::uint32_t>(m);
        ++counts[sa];
      }
      rebuilt.AppendRow(table.qi_row(r), sa);
    }
    table = std::move(rebuilt);
  }
  return table;
}

}  // namespace testutil
}  // namespace ldv

#endif  // LDIV_TESTS_TEST_UTIL_H_
