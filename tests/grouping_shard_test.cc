// Regression tests of the sharded GroupedTable build under oversubscribed
// thread budgets. The pre-shard build ran its probe loop sequentially and
// its per-group vectors allocation-heavy; budgets above the core count
// made it measurably SLOWER than the 1-thread build (the grouping_par
// 2t/4t rows of BENCH_micro.json). The sharded build's parallel phases
// claim fixed chunks dynamically, so oversubscription must now cost no
// more than scheduling noise -- asserted here as a 1.3x ceiling on
// min-of-N wall time, alongside byte-identical output.

#include <algorithm>
#include <chrono>
#include <limits>

#include <gtest/gtest.h>

#include "common/grouped_table.h"
#include "common/parallel.h"
#include "common/workspace.h"
#include "data/acs_generator.h"

// Sanitizer instrumentation skews per-thread costs (lock and allocator
// interception grow with the thread count), so the wall-time ratio below
// is only meaningful in uninstrumented builds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define LDIV_TIMING_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define LDIV_TIMING_UNDER_SANITIZER 1
#endif
#endif

namespace ldv {
namespace {

// Minimum wall time of `builds` grouping runs at the given budget, after
// one untimed warmup that grows the workspace pools to steady state.
double MinBuildSeconds(const Table& table, unsigned budget, int builds) {
  SetThreadBudget(budget);
  Workspace ws;
  { GroupedTable warmup(table, &ws); }
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < builds; ++i) {
    auto start = std::chrono::steady_clock::now();
    GroupedTable grouped(table, &ws);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    EXPECT_GT(grouped.group_count(), 0u);
    best = std::min(best, seconds);
  }
  SetThreadBudget(0);
  return best;
}

TEST(GroupingShard, OversubscribedBudgetsMatchSequentialOutput) {
  // Full-width SAL-7 at 100k rows: ~94k groups, the workload where the
  // sharded build's parallel phases all engage.
  Table t = GenerateSal(100000, 1);

  SetThreadBudget(1);
  Workspace ref_ws;
  GroupedTable ref(t, &ref_ws);

  for (unsigned budget : {2u, 4u}) {
    SCOPED_TRACE("budget=" + std::to_string(budget));
    SetThreadBudget(budget);
    Workspace ws;
    GroupedTable grouped(t, &ws);
    ASSERT_EQ(ref.group_count(), grouped.group_count());
    ASSERT_EQ(ref.row_count(), grouped.row_count());
    for (GroupId g = 0; g < ref.group_count(); ++g) {
      const QiGroup& want = ref.group(g);
      const QiGroup& got = grouped.group(g);
      ASSERT_TRUE(std::ranges::equal(want.qi_values, got.qi_values)) << "group " << g;
      ASSERT_TRUE(std::ranges::equal(want.rows, got.rows)) << "group " << g;
      ASSERT_TRUE(std::ranges::equal(want.sa_runs, got.sa_runs)) << "group " << g;
    }
  }
  SetThreadBudget(0);
}

TEST(GroupingShard, OversubscribedBuildIsNotSlowerThanSequential) {
#ifdef LDIV_TIMING_UNDER_SANITIZER
  GTEST_SKIP() << "wall-time ratios are not meaningful under sanitizers";
#endif
  Table t = GenerateSal(100000, 1);
  const int kBuilds = 7;
  const double base = MinBuildSeconds(t, 1, kBuilds);
  for (unsigned budget : {2u, 4u}) {
    const double oversub = MinBuildSeconds(t, budget, kBuilds);
    // 1.3x headroom covers pool-dispatch overhead and scheduler noise on
    // a single-core host; a return of the old sequential-probe regression
    // (2x and worse) still fails decisively.
    EXPECT_LE(oversub, 1.3 * base)
        << "budget " << budget << ": " << oversub << "s vs 1-thread " << base << "s";
  }
}

}  // namespace
}  // namespace ldv
