// Hilbert curve encoder and Hilbert baseline partitioner tests.

#include <gtest/gtest.h>

#include <set>

#include "anonymity/eligibility.h"
#include "anonymity/generalization.h"
#include "common/rng.h"
#include "hilbert/hilbert_curve.h"
#include "hilbert/hilbert_partitioner.h"
#include "test_util.h"

namespace ldv {
namespace {

TEST(HilbertCurve, BitsForDomain) {
  EXPECT_EQ(HilbertCurve::BitsForDomain(2), 1u);
  EXPECT_EQ(HilbertCurve::BitsForDomain(3), 2u);
  EXPECT_EQ(HilbertCurve::BitsForDomain(79), 7u);
  EXPECT_EQ(HilbertCurve::BitsForDomain(1), 1u);
}

TEST(HilbertCurve, TwoDimOrder2IsTheClassicCurve) {
  // The 2x2 Hilbert curve visits (0,0), (0,1), (1,1), (1,0).
  HilbertCurve curve(2, 1);
  EXPECT_EQ(curve.Encode(std::vector<std::uint32_t>{0, 0}), 0u);
  EXPECT_EQ(curve.Encode(std::vector<std::uint32_t>{0, 1}), 1u);
  EXPECT_EQ(curve.Encode(std::vector<std::uint32_t>{1, 1}), 2u);
  EXPECT_EQ(curve.Encode(std::vector<std::uint32_t>{1, 0}), 3u);
}

class HilbertCurveRoundTrip
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(HilbertCurveRoundTrip, EncodeDecodeIsABijectionWithUnitSteps) {
  auto [dims, bits] = GetParam();
  HilbertCurve curve(dims, bits);
  const std::uint64_t cells = std::uint64_t{1} << (dims * bits);
  std::vector<std::uint32_t> coords(dims), prev(dims);
  std::set<std::uint64_t> seen;
  for (std::uint64_t index = 0; index < cells; ++index) {
    curve.Decode(index, coords);
    // Bijection: encoding the decoded point recovers the index.
    EXPECT_EQ(curve.Encode(coords), index);
    // Unit-step property: consecutive curve positions differ by 1 in
    // exactly one coordinate.
    if (index > 0) {
      std::uint64_t distance = 0;
      for (std::uint32_t i = 0; i < dims; ++i) {
        distance += coords[i] > prev[i] ? coords[i] - prev[i] : prev[i] - coords[i];
      }
      EXPECT_EQ(distance, 1u) << "at index " << index;
    }
    prev = coords;
    seen.insert(curve.Encode(coords));
  }
  EXPECT_EQ(seen.size(), cells);
}

INSTANTIATE_TEST_SUITE_P(Grids, HilbertCurveRoundTrip,
                         ::testing::Values(std::make_pair(1u, 4u), std::make_pair(2u, 1u),
                                           std::make_pair(2u, 3u), std::make_pair(3u, 2u),
                                           std::make_pair(4u, 2u), std::make_pair(5u, 2u),
                                           std::make_pair(7u, 2u), std::make_pair(2u, 7u)),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param.first) + "b" +
                                  std::to_string(info.param.second);
                         });

TEST(HilbertPartitioner, ProducesLDiverseGroups) {
  Rng rng(11);
  Table table = testutil::RandomEligibleTable(rng, 400, {8, 4, 4}, 6, 4);
  HilbertResult result = HilbertAnonymize(table, 4);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.partition.CoversExactly(table));
  EXPECT_TRUE(IsLDiverse(table, result.partition, 4));
}

TEST(HilbertPartitioner, InfeasibleTableRejected) {
  Schema schema = testutil::MakeSchema({2}, 2);
  Table table(schema);
  std::vector<Value> qi{0};
  table.AppendRow(qi, 0);
  table.AppendRow(qi, 0);
  table.AppendRow(qi, 1);
  EXPECT_FALSE(HilbertAnonymize(table, 2).feasible);
}

TEST(HilbertPartitioner, AdversarialSaRunIsMergedBackwards) {
  // A long run of one SA value at the end of the Hilbert order forces the
  // tail-merge path. QI = identity so the Hilbert order is the row order.
  Schema schema = testutil::MakeSchema({64}, 2);
  Table table(schema);
  for (std::uint32_t i = 0; i < 16; ++i) {
    std::vector<Value> qi{i};
    table.AppendRow(qi, i < 8 ? (i % 2) : 1);
  }
  // SA sequence: 0101 0101 1111 1111 -> overall histogram (4, 12)?
  // That is not 2-eligible; rebuild with balance.
  Table balanced(schema);
  for (std::uint32_t i = 0; i < 16; ++i) {
    std::vector<Value> qi{i};
    balanced.AppendRow(qi, i < 8 ? 0 : 1);
  }
  // SA sequence: 00000000 11111111. Greedy groups of {0,1} cannot form in
  // the prefix; the whole table must end up merged yet still 2-diverse.
  HilbertResult result = HilbertAnonymize(balanced, 2);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.partition.CoversExactly(balanced));
  EXPECT_TRUE(IsLDiverse(balanced, result.partition, 2));
}

TEST(HilbertPartitioner, LocalityBeatsArbitraryGrouping) {
  // On smooth data the Hilbert order should produce far fewer stars than
  // a round-robin partition of the same group size.
  Rng rng(3);
  Schema schema = testutil::MakeSchema({16, 16}, 4);
  Table table(schema);
  for (int i = 0; i < 300; ++i) {
    std::uint32_t x = rng.Below(16);
    std::vector<Value> qi{x, x / 2 + rng.Below(8)};
    table.AppendRow(qi, rng.Below(4));
  }
  if (!IsTableEligible(table, 2)) GTEST_SKIP();
  HilbertResult hilbert = HilbertAnonymize(table, 2);
  ASSERT_TRUE(hilbert.feasible);

  // Round-robin partition with groups of 4 (2-diverse only by luck, so
  // compare star counts on the raw partitions instead of privacy).
  std::vector<std::vector<RowId>> rr(table.size() / 4 + 1);
  for (RowId r = 0; r < table.size(); ++r) rr[r % rr.size()].push_back(r);
  std::uint64_t rr_stars = PartitionStarCount(table, Partition(rr));
  std::uint64_t hilbert_stars = PartitionStarCount(table, hilbert.partition);
  EXPECT_LT(hilbert_stars * 10, rr_stars * 7);
}

TEST(HilbertPartitioner, WindowDpNotWorseThanGreedyOnSmallInputs) {
  Rng rng(21);
  int dp_wins_or_ties = 0, trials = 0;
  for (int t = 0; t < 10; ++t) {
    Table table = testutil::RandomEligibleTable(rng, 120, {6, 4}, 5, 3);
    if (!IsTableEligible(table, 3)) continue;
    ++trials;
    HilbertOptions greedy;
    HilbertOptions dp;
    dp.splitter = HilbertOptions::Splitter::kWindowDp;
    HilbertResult rg = HilbertAnonymize(table, 3, greedy);
    HilbertResult rd = HilbertAnonymize(table, 3, dp);
    ASSERT_TRUE(rg.feasible);
    ASSERT_TRUE(rd.feasible);
    EXPECT_TRUE(IsLDiverse(table, rd.partition, 3));
    std::uint64_t sg = PartitionStarCount(table, rg.partition);
    std::uint64_t sd = PartitionStarCount(table, rd.partition);
    if (sd <= sg) ++dp_wins_or_ties;
  }
  // The DP optimizes the split directly, so it should not lose on most
  // instances (it is not strictly dominant because of the window cap).
  EXPECT_GE(dp_wins_or_ties * 2, trials);
}

TEST(HilbertPartitioner, WideSchemaFallsBackToCoarsenedGrid) {
  // 10 attributes of domain 100 need 10 x 7 = 70 bits; the encoder coarsens
  // to 6 bits per axis (right-shift) and must still produce a valid
  // l-diverse partition.
  Rng rng(29);
  Schema schema = testutil::MakeSchema(std::vector<std::size_t>(10, 100), 4);
  Table table(schema);
  std::vector<Value> qi(10);
  for (int i = 0; i < 400; ++i) {
    for (auto& v : qi) v = rng.Below(100);
    table.AppendRow(qi, rng.Below(4));
  }
  if (!IsTableEligible(table, 2)) GTEST_SKIP();
  HilbertResult result = HilbertAnonymize(table, 2);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.partition.CoversExactly(table));
  EXPECT_TRUE(IsLDiverse(table, result.partition, 2));
}

TEST(HilbertPartitioner, EmptyTableIsFeasibleNoop) {
  Schema schema = testutil::MakeSchema({4}, 2);
  Table table(schema);
  HilbertResult result = HilbertAnonymize(table, 2);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.partition.group_count(), 0u);
}

}  // namespace
}  // namespace ldv
