// End-to-end smoke test: every algorithm produces an l-diverse partition on
// a small synthetic workload.

#include <gtest/gtest.h>

#include "anonymity/eligibility.h"
#include "core/anonymizer.h"
#include "data/acs_generator.h"
#include "data/acs_schema.h"
#include "data/workload.h"

namespace ldv {
namespace {

TEST(Smoke, AllAlgorithmsProduceLDiversePartitions) {
  Table sal = GenerateSal(2000, 7);
  Table t = sal.ProjectQi({kAge, kGender, kEducation});
  for (Algorithm algorithm : {Algorithm::kTp, Algorithm::kTpPlus, Algorithm::kHilbert}) {
    AnonymizationOutcome outcome = Anonymize(t, 4, algorithm);
    ASSERT_TRUE(outcome.feasible) << AlgorithmName(algorithm);
    EXPECT_TRUE(outcome.partition.CoversExactly(t)) << AlgorithmName(algorithm);
    EXPECT_TRUE(IsLDiverse(t, outcome.partition, 4)) << AlgorithmName(algorithm);
  }
}

}  // namespace
}  // namespace ldv
