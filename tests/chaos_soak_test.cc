// Chaos soak: a concurrent submit flood against a small-queue daemon
// while a chaos thread randomly arms failpoints across every layer and
// hostile clients send garbage, truncated frames, and vanish mid-frame.
// Mid-soak the daemon is stopped (the drain path under fire). The
// invariants: every transported request got exactly one well-formed
// reply; accepted == completed + expired + failed; no spill files or
// budget reservations leak; and a fresh daemon binds the same path and
// serves. Run under ASan and TSan in CI.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/memory_budget.h"
#include "common/page_cache.h"
#include "common/parallel.h"
#include "daemon/client.h"
#include "daemon/daemon.h"
#include "daemon/protocol.h"
#include "engine/job_spec.h"
#include "test_util.h"

namespace ldv {
namespace {

using failpoint::Injection;
using failpoint::Site;

int RawConnect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void SendAll(int fd, const std::string& bytes) {
  const char* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t sent = ::send(fd, data, left, MSG_NOSIGNAL);
    if (sent <= 0) return;
    data += sent;
    left -= static_cast<std::size_t>(sent);
  }
}

JobSpec SoakSpec(const std::string& out) {
  JobSpec spec;
  spec.dataset.name = "sal";
  spec.ns = {400};
  spec.ds = {3};
  spec.algorithms = {Algorithm::kTp};
  spec.ls = {2};
  spec.timings = false;
  spec.compute_kl = false;
  spec.out = out;
  return spec;
}

void RemoveOutputs(const std::string& stem) {
  for (const char* suffix : {".csv", "_sa.csv", ".json", "_metrics.csv"}) {
    std::remove((stem + suffix).c_str());
  }
}

TEST(ChaosSoak, FloodWithRandomFailpointsDrainsCleanlyAndRestarts) {
  failpoint::DisarmAll();
  ASSERT_EQ(SpillFile::LiveCount(), 0u);

  DaemonOptions options;
  options.socket_path = testing::TempDir() + "chaos_soak.sock";
  options.queue_depth = 4;
  options.workers = 2;
  options.retry_after_ms = 20;
  options.io_timeout_ms = 500;  // hostile clients stall at most half a second
  Daemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  // Short soak profile for routine ctest; CI's chaos leg runs the same
  // shape, the sanitizers do the deep checking.
  const int kClients = 4;
  const int kIterations = 12;
  std::atomic<std::uint64_t> malformed_replies{0};
  std::atomic<std::uint64_t> ok_replies{0};
  std::atomic<bool> chaos_stop{false};

  // The chaos thread: arm a random site for exactly one firing, let the
  // flood hit it, repeat. DisarmAll on exit so the drain below is clean.
  std::thread chaos([&] {
    std::mt19937 rng(12345);
    while (!chaos_stop.load(std::memory_order_relaxed)) {
      const Site site = static_cast<Site>(rng() % failpoint::kSiteCount);
      const int code = rng() % 2 == 0 ? ENOSPC : EIO;
      failpoint::Arm(site, Injection{code, false}, /*nth=*/1, /*count=*/1);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    failpoint::DisarmAll();
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937 rng(1000 + c);
      for (int i = 0; i < kIterations; ++i) {
        const int action = rng() % 6;
        if (action <= 2) {
          // A real submit. Transport may fail (injected socket faults,
          // shutdown); when a frame does come back it must be one of the
          // three reply verbs.
          const std::string out = testing::TempDir() + "chaos_soak_" + std::to_string(c) + "_" +
                                  std::to_string(i);
          Frame reply;
          std::map<std::string, std::string> kv;
          std::string request_error;
          if (DaemonRequest(options.socket_path, Frame{"job", SerializeJobSpec(SoakSpec(out))},
                            &reply, &kv, &request_error)) {
            if (reply.verb == "ok") {
              ok_replies.fetch_add(1, std::memory_order_relaxed);
            } else if (reply.verb != "busy" && reply.verb != "error") {
              malformed_replies.fetch_add(1, std::memory_order_relaxed);
            }
          }
          RemoveOutputs(out);
        } else if (action == 3) {
          Frame reply;
          std::map<std::string, std::string> kv;
          std::string request_error;
          (void)DaemonRequest(options.socket_path, Frame{rng() % 2 == 0 ? "ping" : "stats", ""},
                              &reply, &kv, &request_error);
        } else if (action == 4) {
          // Garbage or a lying header; the daemon must answer or drop,
          // never wedge.
          const int fd = RawConnect(options.socket_path);
          if (fd >= 0) {
            SendAll(fd, rng() % 2 == 0 ? "ldiv1 job 5000\nonly-ten-b" : "total garbage\n");
            ::close(fd);
          }
        } else {
          // A client killed mid-frame: partial header, abrupt close.
          const int fd = RawConnect(options.socket_path);
          if (fd >= 0) {
            SendAll(fd, "ldiv1 jo");
            ::close(fd);
          }
        }
      }
    });
  }

  // Mid-soak drain: stop while clients are still flooding. Accepted jobs
  // must still be answered; later submits get refused, not hung.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  daemon.Stop();
  for (std::thread& t : clients) t.join();
  chaos_stop.store(true, std::memory_order_relaxed);
  chaos.join();
  daemon.WaitForShutdown();

  EXPECT_EQ(malformed_replies.load(), 0u);
  const Daemon::Stats stats = daemon.stats();
  EXPECT_EQ(stats.accepted, stats.completed + stats.expired + stats.failed)
      << "accepted=" << stats.accepted << " completed=" << stats.completed
      << " expired=" << stats.expired << " failed=" << stats.failed;
  EXPECT_GE(stats.completed, ok_replies.load()) << "an ok reply implies a completed job";
  EXPECT_EQ(SpillFile::LiveCount(), 0u) << "soak leaked spill files";
  EXPECT_EQ(GlobalMemoryBudget().used(), 0u) << "soak leaked budget reservations";

  // The socket is gone and the path is reusable: a fresh daemon binds and
  // serves -- no leaked listener, no stale-socket wedge.
  Daemon fresh(options);
  ASSERT_TRUE(fresh.Start(&error)) << error;
  Frame reply;
  std::map<std::string, std::string> kv;
  ASSERT_TRUE(DaemonRequest(options.socket_path, Frame{"ping", ""}, &reply, &kv, &error)) << error;
  EXPECT_EQ(reply.verb, "ok");
  const std::string out = testing::TempDir() + "chaos_soak_fresh";
  kv.clear();
  ASSERT_TRUE(DaemonRequest(options.socket_path, Frame{"job", SerializeJobSpec(SoakSpec(out))},
                            &reply, &kv, &error))
      << error;
  EXPECT_EQ(reply.verb, "ok") << reply.payload;
  RemoveOutputs(out);
  fresh.Stop();
  fresh.WaitForShutdown();

  SetThreadBudget(0);
  SetMemoryBudget(0);
}

}  // namespace
}  // namespace ldv
