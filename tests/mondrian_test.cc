// Mondrian multi-dimensional generalization and box-relaxation tests
// (Section 2 / Section 6.2).

#include "mondrian/mondrian.h"

#include <gtest/gtest.h>

#include "anonymity/eligibility.h"
#include "anonymity/generalization.h"
#include "anonymity/multidim.h"
#include "core/anonymizer.h"
#include "metrics/kl_divergence.h"
#include "test_util.h"

namespace ldv {
namespace {

TEST(QiBox, VolumeAndContainment) {
  QiBox box{{1, 0}, {4, 2}};
  EXPECT_DOUBLE_EQ(box.Volume(), 6.0);
  EXPECT_TRUE(box.Contains(std::vector<Value>{1, 0}));
  EXPECT_TRUE(box.Contains(std::vector<Value>{3, 1}));
  EXPECT_FALSE(box.Contains(std::vector<Value>{4, 1}));
  EXPECT_FALSE(box.Contains(std::vector<Value>{0, 0}));
}

TEST(Mondrian, PartitionIsLDiverseAndBoxesCoverGroups) {
  Rng rng(81);
  Table table = testutil::RandomEligibleTable(rng, 600, {16, 8, 4}, 6, 3);
  MondrianResult result = MondrianAnonymize(table, 3);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.partition.CoversExactly(table));
  EXPECT_TRUE(IsLDiverse(table, result.partition, 3));
  ASSERT_EQ(result.generalization.group_count(), result.partition.group_count());
  for (std::size_t g = 0; g < result.generalization.group_count(); ++g) {
    for (RowId r : result.generalization.rows(g)) {
      EXPECT_TRUE(result.generalization.box(g).Contains(table.qi_row(r)));
    }
  }
}

TEST(Mondrian, BoxesTileTheDomain) {
  // Split-based boxes never overlap: every QI point lies in exactly one box.
  Rng rng(83);
  Table table = testutil::RandomEligibleTable(rng, 300, {6, 6}, 5, 2);
  MondrianResult result = MondrianAnonymize(table, 2);
  ASSERT_TRUE(result.feasible);
  for (Value x = 0; x < 6; ++x) {
    for (Value y = 0; y < 6; ++y) {
      std::vector<Value> p{x, y};
      int covering = 0;
      for (std::size_t g = 0; g < result.generalization.group_count(); ++g) {
        covering += result.generalization.box(g).Contains(p) ? 1 : 0;
      }
      EXPECT_EQ(covering, 1) << "(" << x << "," << y << ")";
    }
  }
}

TEST(Mondrian, RefinesWhereDataAllows) {
  // Balanced SA values on a spread-out attribute: Mondrian should produce
  // many groups, not one.
  Schema schema = testutil::MakeSchema({32}, 2);
  Table table(schema);
  for (Value v = 0; v < 32; ++v) {
    std::vector<Value> qi{v};
    table.AppendRow(qi, 0);
    table.AppendRow(qi, 1);
  }
  MondrianResult result = MondrianAnonymize(table, 2);
  ASSERT_TRUE(result.feasible);
  EXPECT_GE(result.partition.group_count(), 16u);
}

TEST(Mondrian, InfeasibleTableRejected) {
  Schema schema = testutil::MakeSchema({4}, 2);
  Table table(schema);
  std::vector<Value> qi{0};
  table.AppendRow(qi, 0);
  EXPECT_FALSE(MondrianAnonymize(table, 2).feasible);
}

TEST(MultiDimRelax, BoxesCoverGroupsAndShrinkVolume) {
  Rng rng(85);
  Table table = testutil::RandomEligibleTable(rng, 300, {8, 8}, 5, 3);
  AnonymizationOutcome tpp = Anonymize(table, 3, Algorithm::kTpPlus);
  ASSERT_TRUE(tpp.feasible);
  GeneralizedTable suppressed(table, tpp.partition);
  BoxGeneralization relaxed = RelaxSuppressionToMultiDim(table, suppressed);
  ASSERT_EQ(relaxed.group_count(), suppressed.group_count());
  double full_volume = 8.0 * 8.0;
  for (std::size_t g = 0; g < relaxed.group_count(); ++g) {
    EXPECT_LE(relaxed.box(g).Volume(), full_volume + 1e-9);
    for (RowId r : relaxed.rows(g)) {
      EXPECT_TRUE(relaxed.box(g).Contains(table.qi_row(r)));
    }
  }
}

TEST(MultiDimRelax, RelaxationNeverHurtsKlDivergence) {
  // The Section 6.2 claim: T*' (multi-dimensional relaxation) is at least
  // as accurate as T* (suppression). KL must not increase.
  Rng rng(87);
  for (int trial = 0; trial < 5; ++trial) {
    Table table = testutil::RandomEligibleTable(rng, 250, {8, 6}, 5, 3);
    AnonymizationOutcome tpp = Anonymize(table, 3, Algorithm::kTpPlus);
    ASSERT_TRUE(tpp.feasible);
    GeneralizedTable suppressed(table, tpp.partition);
    BoxGeneralization relaxed = RelaxSuppressionToMultiDim(table, suppressed);
    double kl_star = KlDivergenceSuppression(table, suppressed);
    double kl_box = KlDivergenceMultiDim(table, relaxed);
    EXPECT_LE(kl_box, kl_star + 1e-9) << "trial " << trial;
  }
}

TEST(MultiDimKl, MatchesSuppressionWhenBoxesAreFullDomains) {
  // If every starred attribute's values span the whole domain, the relaxed
  // boxes equal the suppression semantics and the KLs coincide.
  Schema schema = testutil::MakeSchema({2}, 2);
  Table table(schema);
  {
    std::vector<Value> qi{0};
    table.AppendRow(qi, 0);
  }
  {
    std::vector<Value> qi{1};
    table.AppendRow(qi, 1);
  }
  GeneralizedTable suppressed(table, Partition::SingleGroup(table));
  BoxGeneralization relaxed = RelaxSuppressionToMultiDim(table, suppressed);
  EXPECT_NEAR(KlDivergenceMultiDim(table, relaxed),
              KlDivergenceSuppression(table, suppressed), 1e-12);
}

TEST(MultiDimKl, MondrianBeatsSuppressionOnSmoothData) {
  // Multi-dimensional generalization retains more information than
  // suppression-based grouping of the same privacy level (the Section 6.2
  // comparison in KL terms).
  Rng rng(89);
  Table table = testutil::RandomEligibleTable(rng, 800, {16, 16}, 4, 2);
  MondrianResult mondrian = MondrianAnonymize(table, 2);
  AnonymizationOutcome hilbert = Anonymize(table, 2, Algorithm::kHilbert);
  ASSERT_TRUE(mondrian.feasible);
  ASSERT_TRUE(hilbert.feasible);
  GeneralizedTable suppressed(table, hilbert.partition);
  EXPECT_LT(KlDivergenceMultiDim(table, mondrian.generalization),
            KlDivergenceSuppression(table, suppressed));
}

}  // namespace
}  // namespace ldv
