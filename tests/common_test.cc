// Tests for the common substrate: schema, table, RNG, CSV, grouped table,
// text tables.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <span>

#include "common/csv.h"
#include "common/grouped_table.h"
#include "common/rng.h"
#include "common/schema.h"
#include "common/table.h"
#include "common/text_table.h"
#include "test_util.h"

namespace ldv {
namespace {

TEST(Schema, BasicAccessors) {
  Schema schema = testutil::MakeSchema({4, 2, 9}, 5);
  EXPECT_EQ(schema.qi_count(), 3u);
  EXPECT_EQ(schema.qi(0).domain_size, 4u);
  EXPECT_EQ(schema.sa_domain_size(), 5u);
  EXPECT_TRUE(schema.Valid());
  EXPECT_EQ(schema.ToString(), "A1(4),A2(2),A3(9)|B(5)");
}

TEST(Schema, ProjectionKeepsOrderAndSa) {
  Schema schema = testutil::MakeSchema({4, 2, 9, 7}, 5);
  Schema projected = schema.Project({2, 0});
  EXPECT_EQ(projected.qi_count(), 2u);
  EXPECT_EQ(projected.qi(0).domain_size, 9u);
  EXPECT_EQ(projected.qi(1).domain_size, 4u);
  EXPECT_EQ(projected.sa_domain_size(), 5u);
}

TEST(Schema, EqualityComparesNamesAndSizes) {
  Schema a = testutil::MakeSchema({3, 2}, 4);
  Schema b = testutil::MakeSchema({3, 2}, 4);
  Schema c = testutil::MakeSchema({3, 3}, 4);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(Table, AppendAndAccess) {
  Table table = testutil::PaperTable1();
  EXPECT_EQ(table.size(), 10u);
  EXPECT_EQ(table.qi(3, 0), 1u);
  EXPECT_EQ(table.sa(9), 1u);
  EXPECT_EQ(table.DistinctSaCount(), 4u);
  auto counts = table.SaHistogramCounts();
  EXPECT_EQ(counts, (std::vector<std::uint32_t>{2, 4, 3, 1}));
}

TEST(TableDeathTest, RejectsOutOfDomainValues) {
  Schema schema = testutil::MakeSchema({2}, 2);
  Table table(schema);
  std::vector<Value> qi{5};
  EXPECT_DEATH(table.AppendRow(qi, 0), "CHECK failed");
  std::vector<Value> ok{1};
  EXPECT_DEATH(table.AppendRow(ok, 9), "CHECK failed");
}

TEST(Table, ProjectQiSelectsColumns) {
  Table table = testutil::PaperTable1();
  Table projected = table.ProjectQi({2});
  EXPECT_EQ(projected.qi_count(), 1u);
  EXPECT_EQ(projected.qi(0, 0), 0u);  // Adam's Education = Master
  EXPECT_EQ(projected.sa(0), 0u);
}

TEST(Table, ProjectQiReordersAndDuplicates) {
  // The columnar projection copies whole columns; order and multiplicity
  // of the subset must be preserved exactly.
  Table table = testutil::PaperTable1();
  Table projected = table.ProjectQi({2, 0, 2});
  EXPECT_EQ(projected.qi_count(), 3u);
  for (RowId r = 0; r < table.size(); ++r) {
    EXPECT_EQ(projected.qi(r, 0), table.qi(r, 2));
    EXPECT_EQ(projected.qi(r, 1), table.qi(r, 0));
    EXPECT_EQ(projected.qi(r, 2), table.qi(r, 2));
    EXPECT_EQ(projected.sa(r), table.sa(r));
  }
}

TEST(Table, ProjectQiToZeroAttributesKeepsSa) {
  Table table = testutil::PaperTable1();
  Table projected = table.ProjectQi({});
  EXPECT_EQ(projected.qi_count(), 0u);
  EXPECT_EQ(projected.size(), table.size());
  EXPECT_TRUE(projected.qi_row(0).empty());
}

TEST(Table, SelectRowsPreservesOrder) {
  Table table = testutil::PaperTable1();
  Table selected = table.SelectRows({9, 0, 4});
  EXPECT_EQ(selected.size(), 3u);
  EXPECT_EQ(selected.sa(0), 1u);  // Jane
  EXPECT_EQ(selected.sa(1), 0u);  // Adam
  EXPECT_EQ(selected.qi(1, 0), table.qi(0, 0));
}

TEST(Table, SelectRowsEmptyAndRepeated) {
  Table table = testutil::PaperTable1();
  Table none = table.SelectRows({});
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(none.qi_count(), table.qi_count());
  Table twice = table.SelectRows({3, 3});
  EXPECT_EQ(twice.size(), 2u);
  EXPECT_EQ(twice.qi(0, 0), twice.qi(1, 0));
}

TEST(Table, SampleRowsIsSubsetWithoutReplacement) {
  Rng rng(6);
  Table table = testutil::PaperTable1();
  Table sample = table.SampleRows(6, rng);
  EXPECT_EQ(sample.size(), 6u);
  Table all = table.SampleRows(100, rng);
  EXPECT_EQ(all.size(), table.size());
  Table none = table.SampleRows(0, rng);
  EXPECT_TRUE(none.empty());
}

TEST(Table, ColumnSpansMirrorAccessors) {
  Table table = testutil::PaperTable1();
  for (AttrId a = 0; a < table.qi_count(); ++a) {
    std::span<const Value> column = table.column(a);
    ASSERT_EQ(column.size(), table.size());
    for (RowId r = 0; r < table.size(); ++r) EXPECT_EQ(column[r], table.qi(r, a));
  }
  std::span<const SaValue> sa = table.sa_column();
  for (RowId r = 0; r < table.size(); ++r) EXPECT_EQ(sa[r], table.sa(r));
}

TEST(Table, QiRowMaterializesAcrossTheInlineBoundary) {
  // 10 attributes exceed QiRow's inline capacity, exercising the heap
  // fallback; the view must stay equal to the per-attribute accessors.
  Schema schema = testutil::MakeSchema({2, 3, 2, 3, 2, 3, 2, 3, 2, 3}, 4);
  Table table(schema);
  std::vector<Value> qi = {1, 2, 0, 1, 1, 0, 1, 2, 0, 2};
  table.AppendRow(qi, 3);
  QiRow row = table.qi_row(0);
  ASSERT_EQ(row.size(), qi.size());
  for (std::size_t a = 0; a < qi.size(); ++a) EXPECT_EQ(row[a], qi[a]);
  std::span<const Value> as_span = row;
  EXPECT_TRUE(std::equal(as_span.begin(), as_span.end(), qi.begin()));
  EXPECT_EQ(row.ToVector(), qi);
}

TEST(Table, FromColumnsBuildsColumnarStorageDirectly) {
  Schema schema = testutil::MakeSchema({3, 2}, 2);
  Table table = Table::FromColumns(schema, {{0, 1, 2}, {1, 0, 1}}, {0, 1, 0});
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.qi(1, 0), 1u);
  EXPECT_EQ(table.qi(2, 1), 1u);
  EXPECT_EQ(table.sa(1), 1u);
}

TEST(TableDeathTest, FromColumnsRejectsRaggedOrOutOfDomainColumns) {
  Schema schema = testutil::MakeSchema({3, 2}, 2);
  std::vector<SaValue> sa = {0, 1};
  std::vector<std::vector<Value>> missing_column = {{0, 1}};
  EXPECT_DEATH(Table::FromColumns(schema, missing_column, sa), "CHECK failed");
  std::vector<std::vector<Value>> ragged = {{0, 1}, {1, 0, 1}};
  EXPECT_DEATH(Table::FromColumns(schema, ragged, sa), "CHECK failed");
  std::vector<std::vector<Value>> out_of_domain = {{0, 9}, {1, 0}};
  EXPECT_DEATH(Table::FromColumns(schema, out_of_domain, sa), "CHECK failed");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next32(), b.Next32());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(7), 7u);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(10);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(Zipf, PmfSumsToOneAndIsDecreasing) {
  ZipfSampler zipf(20, 1.1);
  double total = 0;
  for (std::uint32_t k = 0; k < 20; ++k) {
    total += zipf.Pmf(k);
    if (k > 0) EXPECT_LE(zipf.Pmf(k), zipf.Pmf(k - 1) + 1e-12);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, ZeroSkewIsUniform) {
  ZipfSampler zipf(8, 0.0);
  for (std::uint32_t k = 0; k < 8; ++k) EXPECT_NEAR(zipf.Pmf(k), 0.125, 1e-9);
}

TEST(Csv, RoundTrip) {
  Table table = testutil::PaperTable1();
  std::string path = ::testing::TempDir() + "/ldv_csv_roundtrip.csv";
  ASSERT_TRUE(WriteTableCsv(table, path));
  auto loaded = ReadTableCsv(table.schema(), path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), table.size());
  for (RowId r = 0; r < table.size(); ++r) {
    EXPECT_EQ(loaded->sa(r), table.sa(r));
    for (AttrId a = 0; a < table.qi_count(); ++a) {
      EXPECT_EQ(loaded->qi(r, a), table.qi(r, a));
    }
  }
  std::remove(path.c_str());
}

TEST(Csv, RejectsMalformedInput) {
  std::string path = ::testing::TempDir() + "/ldv_csv_bad.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("A1,B\n1,notanumber\n", f);
    fclose(f);
  }
  Schema schema = testutil::MakeSchema({2}, 2);
  EXPECT_FALSE(ReadTableCsv(schema, path).has_value());
  std::remove(path.c_str());
}

TEST(Csv, RejectsOutOfDomain) {
  std::string path = ::testing::TempDir() + "/ldv_csv_range.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("A1,B\n9,0\n", f);
    fclose(f);
  }
  Schema schema = testutil::MakeSchema({2}, 2);
  EXPECT_FALSE(ReadTableCsv(schema, path).has_value());
  std::remove(path.c_str());
}

TEST(GroupedTable, GroupsPaperTable1ByExactSignature) {
  Table table = testutil::PaperTable1();
  GroupedTable grouped(table);
  EXPECT_EQ(grouped.group_count(), 5u);
  EXPECT_EQ(grouped.row_count(), 10u);
  EXPECT_EQ(grouped.MaxGroupSize(), 4u);
  // Find the {Eva, Fiona, Ginny, Helen} group and check SA accounting.
  bool found = false;
  for (const QiGroup& g : grouped.groups()) {
    if (g.size() == 4) {
      found = true;
      EXPECT_EQ(g.SaCount(1), 2u);  // pneumonia
      EXPECT_EQ(g.SaCount(2), 2u);  // bronchitis
      EXPECT_EQ(g.SaCount(0), 0u);
      EXPECT_EQ(g.ToHistogram(4), SaHistogram({0, 2, 2, 0}));
    }
  }
  EXPECT_TRUE(found);
}

TEST(GroupedTable, RowsSortedBySaWithinGroup) {
  Rng rng(20);
  Table table = testutil::RandomEligibleTable(rng, 100, {3}, 5, 2);
  GroupedTable grouped(table);
  std::size_t total = 0;
  for (const QiGroup& g : grouped.groups()) {
    total += g.size();
    for (std::size_t i = 1; i < g.rows.size(); ++i) {
      EXPECT_LE(table.sa(g.rows[i - 1]), table.sa(g.rows[i]));
    }
    // Runs consistent with rows.
    for (std::size_t i = 0; i < g.sa_runs.size(); ++i) {
      std::uint32_t begin = g.sa_runs[i].second;
      for (std::uint32_t j = 0; j < g.RunLength(i); ++j) {
        EXPECT_EQ(table.sa(g.rows[begin + j]), g.sa_runs[i].first);
      }
    }
  }
  EXPECT_EQ(total, table.size());
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"algo", "stars"});
  t.AddRow({"Hilbert", "123456"});
  t.AddRow({"TP", "9"});
  std::string rendered = t.ToString();
  EXPECT_NE(rendered.find("algo"), std::string::npos);
  EXPECT_NE(rendered.find("Hilbert"), std::string::npos);
  EXPECT_NE(rendered.find("------"), std::string::npos);
}

TEST(TextTable, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(2.0, 3), "2.000");
}

}  // namespace
}  // namespace ldv
