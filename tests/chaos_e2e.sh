#!/usr/bin/env bash
# End-to-end gate for the failure-path surface. Run by ctest (chaos_e2e)
# and by CI's chaos job:
#
#   chaos_e2e.sh <path-to-ldiv-binary> <repo-source-dir>
#
# Drives the REAL binary through injected faults and operator mistakes:
# LDIV_FAILPOINT one-shots must exit 3 with a "[failpoint <site>]" line
# (and a clean rerun must exit 0 -- failpoints are off by default); a
# stale socket file is replaced on startup while a live one is refused
# with exit 1; and `submit --retry=N` rides out busy backpressure with
# jittered exponential backoff.
set -euo pipefail

BIN=$1
SRC=$2
INPUT="$SRC/tests/data/micro.csv"
SCHEMA='Age:79,Gender:2,Race:9|Income:50'

TMP=$(mktemp -d)
SOCK="$TMP/chaosd.sock"
SERVE_PID=

cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2> /dev/null
  [ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2> /dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT

expect_failpoint() {
  # expect_failpoint <site> <cli args...>: the run must exit 3 and name
  # the failpoint in its error line.
  local site=$1
  shift
  local got=0
  LDIV_FAILPOINT="$site=ENOSPC" "$@" > /dev/null 2> "$TMP/fp.err" || got=$?
  [ "$got" -eq 3 ] ||
    { echo "FAIL: $site: expected exit 3, got $got"; cat "$TMP/fp.err"; exit 1; }
  grep -q "\[failpoint $site\]" "$TMP/fp.err" ||
    { echo "FAIL: $site: error line does not name the failpoint"; cat "$TMP/fp.err"; exit 1; }
  echo "ok: $site -> exit 3, typed error"
}

echo "== LDIV_FAILPOINT one-shots: typed exit 3, never an abort =="
expect_failpoint report.write \
  "$BIN" --algo=tp --l=2 --n=600 --d=3 --no-timings --out="$TMP/fp_report"
expect_failpoint csv.read \
  "$BIN" --algo=tp --l=2 --input="$INPUT" --schema="$SCHEMA" --out="$TMP/fp_csv"
# The paged out-of-core path: small pages + a tight budget force spill
# traffic, so the spill-layer site is genuinely reached.
expect_failpoint spill.write \
  env LDIV_PAGE_BYTES=4096 "$BIN" --algo=hilbert --l=2 --n=150000 --d=3 \
  --memory-budget=8M --no-timings --out="$TMP/fp_spill"

echo "== failpoints are off by default: the same runs exit 0 =="
"$BIN" --algo=tp --l=2 --n=600 --d=3 --no-timings --out="$TMP/clean_report" 2> /dev/null ||
  { echo "FAIL: clean report run"; exit 1; }
LDIV_PAGE_BYTES=4096 "$BIN" --algo=hilbert --l=2 --n=150000 --d=3 --memory-budget=8M \
  --no-timings --out="$TMP/clean_spill" 2> /dev/null ||
  { echo "FAIL: clean spill run"; exit 1; }

echo "== stale socket is replaced; live socket is refused =="
"$BIN" serve --socket="$SOCK" --queue-depth=2 --workers=1 2> "$TMP/serve1.log" &
SERVE_PID=$!
"$BIN" ctl --socket="$SOCK" ping | grep -q "status = ok" ||
  { echo "FAIL: first daemon ping"; cat "$TMP/serve1.log"; exit 1; }

# A second daemon on the live socket must refuse with a usage error (1),
# and must NOT disturb the running one.
got=0
"$BIN" serve --socket="$SOCK" 2> "$TMP/serve_live.err" || got=$?
[ "$got" -eq 1 ] || { echo "FAIL: live-socket serve exited $got, want 1"; exit 1; }
grep -q "already listening" "$TMP/serve_live.err" ||
  { echo "FAIL: live-socket error text"; cat "$TMP/serve_live.err"; exit 1; }
"$BIN" ctl --socket="$SOCK" ping | grep -q "status = ok" ||
  { echo "FAIL: original daemon was disturbed"; exit 1; }

# SIGKILL the daemon: no cleanup runs, the socket file goes stale. A new
# daemon must detect the dead socket, replace it, and serve.
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2> /dev/null || true
SERVE_PID=
[ -S "$SOCK" ] || { echo "FAIL: SIGKILL should have left a stale socket file"; exit 1; }
"$BIN" serve --socket="$SOCK" --queue-depth=2 --workers=1 2> "$TMP/serve2.log" &
SERVE_PID=$!
"$BIN" ctl --socket="$SOCK" ping | grep -q "status = ok" ||
  { echo "FAIL: stale socket was not replaced"; cat "$TMP/serve2.log"; exit 1; }
"$BIN" ctl --socket="$SOCK" shutdown > /dev/null
wait "$SERVE_PID" || { echo "FAIL: second daemon exit"; cat "$TMP/serve2.log"; exit 1; }
SERVE_PID=

echo "== submit --retry rides out busy backpressure =="
# One worker, one queue slot, and a pile of slow jobs: the retry client
# must see busy, back off, and eventually land (exit 0).
"$BIN" serve --socket="$SOCK" --queue-depth=1 --workers=1 --retry-after-ms=100 \
  2> "$TMP/serve3.log" &
SERVE_PID=$!
"$BIN" ctl --socket="$SOCK" ping > /dev/null ||
  { echo "FAIL: retry daemon ping"; cat "$TMP/serve3.log"; exit 1; }
declare -a BLOCK_PIDS=()
for i in 1 2 3 4; do
  "$BIN" submit --socket="$SOCK" --algo=hilbert --l=2 --n=800000 --d=3 \
    --memory-budget=8M --no-timings --out="$TMP/block_$i" > /dev/null 2> /dev/null &
  BLOCK_PIDS+=($!)
done
sleep 0.1
got=0
"$BIN" submit --socket="$SOCK" --algo=tp --l=2 --n=600 --d=3 --retry=10 \
  --no-timings --out="$TMP/retried" > /dev/null 2> "$TMP/retry.err" || got=$?
[ "$got" -eq 0 ] || { echo "FAIL: --retry client exited $got"; cat "$TMP/retry.err"; exit 1; }
if grep -q "daemon busy, retrying" "$TMP/retry.err"; then
  echo "ok: retried through backpressure: $(grep -c 'retrying' "$TMP/retry.err") backoffs"
else
  # The blockers drained faster than the client connected; the retry path
  # itself is still covered by the exit-0 requirement above.
  echo "note: queue drained before the retry client saw busy"
fi
for pid in "${BLOCK_PIDS[@]}"; do
  wait "$pid" || true  # busy blockers exit 4 by design
done
"$BIN" ctl --socket="$SOCK" shutdown > /dev/null
wait "$SERVE_PID" || { echo "FAIL: retry daemon exit"; cat "$TMP/serve3.log"; exit 1; }
SERVE_PID=

echo "chaos e2e: all checks passed"
