// ldivd daemon tests over a real unix socket: the framed protocol, the
// bounded admission queue (every client gets exactly one reply -- ok or
// busy -- never a hang or a silent drop), priority and deadline handling
// at dequeue, DatasetCache hits across submissions, byte-identical
// outputs versus a direct Engine run, and graceful shutdown draining.

#include "daemon/daemon.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/parallel.h"
#include "daemon/client.h"
#include "daemon/protocol.h"
#include "engine/job_spec.h"
#include "test_util.h"

namespace ldv {
namespace {

struct Reply {
  bool transported = false;
  Frame frame;
  std::map<std::string, std::string> kv;
  std::string error;
};

Reply Submit(const std::string& socket_path, const JobSpec& spec) {
  Reply reply;
  reply.transported = DaemonRequest(socket_path, Frame{"job", SerializeJobSpec(spec)},
                                    &reply.frame, &reply.kv, &reply.error);
  return reply;
}

JobSpec SmallSpec(const std::string& out) {
  JobSpec spec;
  spec.dataset.name = "sal";
  spec.ns = {600};
  spec.ds = {3};
  spec.algorithms = {Algorithm::kTp};
  spec.ls = {2};
  spec.timings = false;  // byte-deterministic outputs for the comparisons
  spec.out = out;
  return spec;
}

std::string ReadFile(const std::string& path) {
  std::string content;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return content;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, got);
  std::fclose(f);
  return content;
}

void RemoveOutputs(const std::string& stem) {
  for (const char* suffix : {".csv", "_sa.csv", ".json", "_metrics.csv"}) {
    std::remove((stem + suffix).c_str());
  }
}

class DaemonTest : public ::testing::Test {
 protected:
  // Budgets are process-global; leave them reset for whatever runs next.
  void TearDown() override { SetThreadBudget(0); }

  std::string SocketPath(const std::string& name) { return testing::TempDir() + name; }
};

TEST_F(DaemonTest, ProtocolFramesRoundTripAndRejectOversizedPayloads) {
  std::map<std::string, std::string> kv = {{"b key", "value = with = signs"}, {"a", "1"}};
  std::string payload = EncodeKvPayload(kv);
  std::map<std::string, std::string> parsed;
  std::string error;
  ASSERT_TRUE(ParseKvPayload(payload, &parsed, &error)) << error;
  EXPECT_EQ(parsed.at("a"), "1");
  EXPECT_EQ(parsed.at("b key"), "value = with = signs");
  EXPECT_FALSE(ParseKvPayload("no equals sign here\n", &parsed, &error));
}

TEST_F(DaemonTest, PingStatsAndUnknownVerbs) {
  DaemonOptions options;
  options.socket_path = SocketPath("ldivd_basic.sock");
  Daemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  Frame reply;
  std::map<std::string, std::string> kv;
  ASSERT_TRUE(DaemonRequest(options.socket_path, Frame{"ping", ""}, &reply, &kv, &error)) << error;
  EXPECT_EQ(reply.verb, "ok");
  EXPECT_EQ(kv.at("status"), "ok");

  kv.clear();
  ASSERT_TRUE(DaemonRequest(options.socket_path, Frame{"stats", ""}, &reply, &kv, &error)) << error;
  EXPECT_EQ(reply.verb, "ok");
  EXPECT_EQ(kv.at("accepted"), "0");
  EXPECT_EQ(kv.at("queue-depth"), "16");

  kv.clear();
  ASSERT_TRUE(DaemonRequest(options.socket_path, Frame{"frobnicate", ""}, &reply, &kv, &error))
      << error;
  EXPECT_EQ(reply.verb, "error");
  EXPECT_NE(kv.at("error").find("unknown request verb"), std::string::npos);

  daemon.Stop();
  daemon.WaitForShutdown();
}

TEST_F(DaemonTest, MalformedJobSpecsGetTypedErrorReplies) {
  DaemonOptions options;
  options.socket_path = SocketPath("ldivd_badspec.sock");
  Daemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  Frame reply;
  std::map<std::string, std::string> kv;
  ASSERT_TRUE(DaemonRequest(options.socket_path, Frame{"job", "version = 1\nl = 0\n"}, &reply,
                            &kv, &error))
      << error;
  EXPECT_EQ(reply.verb, "error");
  EXPECT_EQ(kv.at("field"), "l");
  EXPECT_EQ(kv.at("exit-code"), "1");

  daemon.Stop();
  daemon.WaitForShutdown();
  EXPECT_EQ(daemon.stats().rejected_error, 1u);
}

TEST_F(DaemonTest, ConcurrentSubmitsBoundTheQueueAndReplyToEveryone) {
  DaemonOptions options;
  options.socket_path = SocketPath("ldivd_stress.sock");
  options.queue_depth = 2;
  options.workers = 1;
  options.retry_after_ms = 55;
  Daemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  // Reference output, written by a direct engine run (the one-shot path).
  const std::string reference_stem = testing::TempDir() + "ldivd_stress_reference";
  Engine reference;
  JobSpec reference_spec = SmallSpec(reference_stem);
  Expected<ExecuteSummary, PipelineError> reference_summary = reference.Execute(reference_spec);
  ASSERT_TRUE(reference_summary.ok()) << reference_summary.error().message;

  constexpr std::size_t kClients = 8;
  std::vector<Reply> replies(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      replies[i] = Submit(options.socket_path,
                          SmallSpec(testing::TempDir() + "ldivd_stress_" + std::to_string(i)));
    });
  }
  for (std::thread& t : clients) t.join();

  std::size_t ok_count = 0, busy_count = 0;
  for (std::size_t i = 0; i < kClients; ++i) {
    const Reply& reply = replies[i];
    ASSERT_TRUE(reply.transported) << reply.error;
    if (reply.frame.verb == "busy") {
      ++busy_count;
      EXPECT_EQ(reply.kv.at("retry-after-ms"), "55");
      EXPECT_EQ(reply.kv.at("exit-code"), "4");
      continue;
    }
    ASSERT_EQ(reply.frame.verb, "ok") << reply.frame.payload;
    ++ok_count;
    EXPECT_EQ(reply.kv.at("exit-code"), "0");
    // Acceptance: per-job results byte-identical to the one-shot path.
    const std::string stem = testing::TempDir() + "ldivd_stress_" + std::to_string(i);
    EXPECT_EQ(ReadFile(stem + ".csv"), ReadFile(reference_stem + ".csv")) << stem;
    EXPECT_EQ(ReadFile(stem + "_metrics.csv"), ReadFile(reference_stem + "_metrics.csv"));
    RemoveOutputs(stem);
  }
  EXPECT_EQ(ok_count + busy_count, kClients) << "no job may go unanswered";
  EXPECT_GE(ok_count, 1u);

  daemon.Stop();
  daemon.WaitForShutdown();
  Daemon::Stats stats = daemon.stats();
  EXPECT_EQ(stats.accepted, ok_count);
  EXPECT_EQ(stats.completed, ok_count);
  EXPECT_EQ(stats.rejected_busy, busy_count);
  EXPECT_LE(stats.max_queue_depth, options.queue_depth) << "admission must bound the queue";
  RemoveOutputs(reference_stem);
}

TEST_F(DaemonTest, RepeatSubmissionsHitTheDatasetCache) {
  DaemonOptions options;
  options.socket_path = SocketPath("ldivd_cache.sock");
  Daemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  const std::string stem = testing::TempDir() + "ldivd_cache_out";
  Reply first = Submit(options.socket_path, SmallSpec(stem));
  ASSERT_TRUE(first.transported) << first.error;
  ASSERT_EQ(first.frame.verb, "ok") << first.frame.payload;
  EXPECT_EQ(first.kv.at("cache-hits"), "0");
  EXPECT_EQ(first.kv.at("cache-misses"), "1");

  Reply second = Submit(options.socket_path, SmallSpec(stem));
  ASSERT_TRUE(second.transported) << second.error;
  ASSERT_EQ(second.frame.verb, "ok") << second.frame.payload;
  EXPECT_EQ(second.kv.at("cache-hits"), "1") << "repeat input must hit the DatasetCache";
  EXPECT_EQ(second.kv.at("cache-misses"), "0");

  Frame reply;
  std::map<std::string, std::string> kv;
  ASSERT_TRUE(DaemonRequest(options.socket_path, Frame{"stats", ""}, &reply, &kv, &error)) << error;
  EXPECT_EQ(kv.at("cache-hits"), "1");
  EXPECT_EQ(kv.at("cache-misses"), "1");

  daemon.Stop();
  daemon.WaitForShutdown();
  RemoveOutputs(stem);
}

TEST_F(DaemonTest, PriorityWinsTheQueueAndExpiredDeadlinesAreRefused) {
  DaemonOptions options;
  options.socket_path = SocketPath("ldivd_prio.sock");
  options.queue_depth = 8;
  options.workers = 1;
  Daemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  // A multi-second sweep occupies the single worker while the contenders
  // queue up behind it (12 jobs x 500k rows runs ~2s even on fast
  // hardware; the sleeps below stay an order of magnitude shorter).
  JobSpec blocker = SmallSpec(testing::TempDir() + "ldivd_prio_blocker");
  blocker.ns = {500000};
  blocker.ls = {2, 3, 4};
  blocker.algorithms.assign(kAllAlgorithms.begin(), kAllAlgorithms.end());
  blocker.sweep = true;
  std::thread blocker_client([&] { Submit(options.socket_path, blocker); });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  JobSpec low = SmallSpec(testing::TempDir() + "ldivd_prio_low");
  low.priority = 0;
  JobSpec high = SmallSpec(testing::TempDir() + "ldivd_prio_high");
  high.priority = 5;
  JobSpec doomed = SmallSpec(testing::TempDir() + "ldivd_prio_doomed");
  doomed.deadline_ms = 1;  // expires long before the blocker finishes

  Reply low_reply, high_reply, doomed_reply;
  std::thread low_client([&] { low_reply = Submit(options.socket_path, low); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::thread high_client([&] { high_reply = Submit(options.socket_path, high); });
  std::thread doomed_client([&] { doomed_reply = Submit(options.socket_path, doomed); });
  low_client.join();
  high_client.join();
  doomed_client.join();
  blocker_client.join();

  ASSERT_EQ(low_reply.frame.verb, "ok") << low_reply.frame.payload;
  ASSERT_EQ(high_reply.frame.verb, "ok") << high_reply.frame.payload;
  std::uint64_t low_seq = 0, high_seq = 0;
  ASSERT_TRUE(ParseUint64(low_reply.kv.at("completed-seq"), &low_seq));
  ASSERT_TRUE(ParseUint64(high_reply.kv.at("completed-seq"), &high_seq));
  EXPECT_LT(high_seq, low_seq) << "priority 5 must dequeue before priority 0";

  ASSERT_EQ(doomed_reply.frame.verb, "error") << doomed_reply.frame.payload;
  EXPECT_NE(doomed_reply.kv.at("error").find("deadline expired"), std::string::npos);
  EXPECT_EQ(doomed_reply.kv.at("exit-code"), "4");

  daemon.Stop();
  daemon.WaitForShutdown();
  EXPECT_EQ(daemon.stats().expired, 1u);
  for (const char* name : {"ldivd_prio_blocker", "ldivd_prio_low", "ldivd_prio_high"}) {
    RemoveOutputs(testing::TempDir() + name);
  }
}

TEST_F(DaemonTest, ShutdownDrainsEveryAcceptedJob) {
  DaemonOptions options;
  options.socket_path = SocketPath("ldivd_drain.sock");
  options.queue_depth = 8;
  options.workers = 1;
  Daemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  constexpr std::size_t kJobs = 4;
  std::vector<Reply> replies(kJobs);
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < kJobs; ++i) {
    clients.emplace_back([&, i] {
      replies[i] = Submit(options.socket_path,
                          SmallSpec(testing::TempDir() + "ldivd_drain_" + std::to_string(i)));
    });
  }
  // Stop while jobs are (likely) still queued; the drain guarantee says
  // every accepted job still completes with a reply.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  daemon.Stop();
  daemon.WaitForShutdown();
  for (std::thread& t : clients) t.join();

  std::size_t answered = 0;
  for (std::size_t i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(replies[i].transported) << replies[i].error;
    EXPECT_TRUE(replies[i].frame.verb == "ok" || replies[i].frame.verb == "error")
        << replies[i].frame.verb;
    if (replies[i].frame.verb == "ok") ++answered;
    RemoveOutputs(testing::TempDir() + "ldivd_drain_" + std::to_string(i));
  }
  Daemon::Stats stats = daemon.stats();
  EXPECT_EQ(stats.completed, answered);
  EXPECT_EQ(stats.accepted, stats.completed) << "graceful shutdown must drain the queue";
}

int RawConnect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void SendAll(int fd, const std::string& bytes) {
  const char* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t sent = ::send(fd, data, left, MSG_NOSIGNAL);
    if (sent <= 0) return;
    data += sent;
    left -= static_cast<std::size_t>(sent);
  }
}

void ExpectAlive(const std::string& socket_path) {
  Frame reply;
  std::map<std::string, std::string> kv;
  std::string error;
  ASSERT_TRUE(DaemonRequest(socket_path, Frame{"ping", ""}, &reply, &kv, &error)) << error;
  EXPECT_EQ(reply.verb, "ok");
}

TEST_F(DaemonTest, StartRefusesALiveSocketAndReplacesAStaleOne) {
  DaemonOptions options;
  options.socket_path = SocketPath("ldivd_stale.sock");
  Daemon first(options);
  std::string error;
  ASSERT_TRUE(first.Start(&error)) << error;

  // A second daemon on the same path must refuse, not hijack.
  Daemon contender(options);
  EXPECT_FALSE(contender.Start(&error));
  EXPECT_NE(error.find("already listening"), std::string::npos) << error;
  ExpectAlive(options.socket_path);  // the first daemon was not disturbed

  first.Stop();
  first.WaitForShutdown();

  // Fake a crashed daemon: a bound-then-abandoned socket file with
  // nothing listening behind it.
  const int stale = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(stale, 0);
  struct sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options.socket_path.c_str(), options.socket_path.size() + 1);
  ASSERT_EQ(::bind(stale, reinterpret_cast<const struct sockaddr*>(&addr), sizeof(addr)), 0);
  ::close(stale);  // the file outlives the socket -- the classic stale sock

  Daemon replacement(options);
  ASSERT_TRUE(replacement.Start(&error)) << "a dead socket file must be replaced: " << error;
  ExpectAlive(options.socket_path);
  replacement.Stop();
  replacement.WaitForShutdown();

  // A non-socket file at the path is never touched.
  {
    std::ofstream plain(options.socket_path);
    plain << "precious";
  }
  Daemon refused(options);
  EXPECT_FALSE(refused.Start(&error));
  EXPECT_NE(error.find("not a socket"), std::string::npos) << error;
  std::string content;
  {
    std::ifstream in(options.socket_path);
    std::getline(in, content);
  }
  EXPECT_EQ(content, "precious") << "refusing must leave the file intact";
  std::remove(options.socket_path.c_str());
}

TEST_F(DaemonTest, ClientVanishingBeforeItsReplyDoesNotKillTheDaemon) {
  DaemonOptions options;
  options.socket_path = SocketPath("ldivd_sigpipe.sock");
  options.io_timeout_ms = 500;
  Daemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  // Send a complete request, then close without reading the reply: the
  // daemon's write lands on a dead peer (EPIPE territory). Repeat a few
  // times so at least one write truly races the close.
  for (int i = 0; i < 5; ++i) {
    const int fd = RawConnect(options.socket_path);
    ASSERT_GE(fd, 0);
    SendAll(fd, "ldiv1 ping 0\n");
    ::close(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ExpectAlive(options.socket_path);  // SIGPIPE would have killed the process

  daemon.Stop();
  daemon.WaitForShutdown();
}

TEST_F(DaemonTest, TruncatedLyingAndOversizedFramesDropOnlyTheirConnection) {
  DaemonOptions options;
  options.socket_path = SocketPath("ldivd_frames.sock");
  options.io_timeout_ms = 300;  // a stalled hostile client is cut loose fast
  Daemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  // Partial header, then silence: the silence budget must cut the
  // connection loose instead of pinning a handler forever.
  const int partial = RawConnect(options.socket_path);
  ASSERT_GE(partial, 0);
  SendAll(partial, "ldiv1 jo");

  // A concurrent well-formed client must be unaffected while the hostile
  // one is still stalling.
  ExpectAlive(options.socket_path);

  // A header lying about its payload size: 100 promised, 10 sent.
  const int liar = RawConnect(options.socket_path);
  ASSERT_GE(liar, 0);
  SendAll(liar, "ldiv1 job 100\nten bytes!");
  ExpectAlive(options.socket_path);

  // An oversized frame is refused up front with a typed error reply.
  const int huge = RawConnect(options.socket_path);
  ASSERT_GE(huge, 0);
  SendAll(huge, "ldiv1 job " + std::to_string(kMaxFramePayload + 1) + "\n");
  Frame reply;
  std::string read_error;
  ASSERT_TRUE(ReadFrame(huge, &reply, &read_error, nullptr, 2000)) << read_error;
  EXPECT_EQ(reply.verb, "error");
  EXPECT_NE(reply.payload.find("exceeds"), std::string::npos) << reply.payload;
  ::close(huge);

  // Garbage magic: typed error, connection dropped.
  const int garbage = RawConnect(options.socket_path);
  ASSERT_GE(garbage, 0);
  SendAll(garbage, "not a frame at all\n");
  ASSERT_TRUE(ReadFrame(garbage, &reply, &read_error, nullptr, 2000)) << read_error;
  EXPECT_EQ(reply.verb, "error");
  EXPECT_NE(reply.payload.find("bad frame magic"), std::string::npos) << reply.payload;
  ::close(garbage);

  // Wait out the stalled connections' silence budget; the daemon must
  // still be serving afterwards.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  ::close(partial);
  ::close(liar);
  ExpectAlive(options.socket_path);

  daemon.Stop();
  daemon.WaitForShutdown();
  EXPECT_GE(daemon.stats().rejected_error, 3u) << "hostile frames must be counted";
}

TEST_F(DaemonTest, PayloadValidationRejectsNulsDuplicatesAndOversizedKeys) {
  std::map<std::string, std::string> pairs;
  std::string error;

  std::string with_nul = "a = 1\n";
  with_nul.push_back('\0');
  EXPECT_FALSE(ParseKvPayload(with_nul, &pairs, &error));
  EXPECT_NE(error.find("NUL"), std::string::npos) << error;

  pairs.clear();
  EXPECT_FALSE(ParseKvPayload("a = 1\nb = 2\na = 3\n", &pairs, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  EXPECT_NE(error.find("repeats"), std::string::npos) << error;

  pairs.clear();
  EXPECT_FALSE(ParseKvPayload(" = naked value\n", &pairs, &error));
  EXPECT_NE(error.find("empty key"), std::string::npos) << error;

  pairs.clear();
  const std::string long_key(kMaxPayloadKeyBytes + 1, 'k');
  EXPECT_FALSE(ParseKvPayload(long_key + " = v\n", &pairs, &error));
  EXPECT_NE(error.find("exceeds"), std::string::npos) << error;

  // The daemon rejects a job spec smuggling a duplicate key (a silently
  // dropped second `out` would hide where the job writes).
  DaemonOptions options;
  options.socket_path = SocketPath("ldivd_dupkey.sock");
  Daemon daemon(options);
  ASSERT_TRUE(daemon.Start(&error)) << error;
  Frame reply;
  std::map<std::string, std::string> kv;
  ASSERT_TRUE(DaemonRequest(options.socket_path,
                            Frame{"job", "version = 1\nout = a\nout = b\n"}, &reply, &kv, &error))
      << error;
  EXPECT_EQ(reply.verb, "error");
  EXPECT_NE(kv["error"].find("duplicate key 'out'"), std::string::npos) << kv["error"];
  EXPECT_EQ(kv["exit-code"], "1");
  daemon.Stop();
  daemon.WaitForShutdown();
}

}  // namespace
}  // namespace ldv
