// RunSpec tests: deterministic grid expansion, BatchJob conversion, and
// the algorithm-list front-end parsing over the registry.

#include "core/run_spec.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ldv {
namespace {

using testutil::PaperTable1;

TEST(RunSpec, LabelNamesAlgorithmLAndTable) {
  RunSpec spec;
  spec.algorithm = Algorithm::kTpPlus;
  spec.l = 4;
  spec.table_index = 2;
  EXPECT_EQ(RunSpecLabel(spec), "TP+/l=4/table=2");
}

TEST(RunSpec, GridExpandsTableMajorThenAlgorithmThenL) {
  const Algorithm algorithms[] = {Algorithm::kTp, Algorithm::kMondrian};
  const std::uint32_t ls[] = {2, 4};
  AnonymizerOptions options;
  options.compute_kl = false;
  std::vector<RunSpec> specs = ExpandRunGrid(algorithms, ls, 2, options);
  ASSERT_EQ(specs.size(), 8u);
  // Job order: table-major, then algorithm, then l.
  EXPECT_EQ(specs[0].table_index, 0u);
  EXPECT_EQ(specs[0].algorithm, Algorithm::kTp);
  EXPECT_EQ(specs[0].l, 2u);
  EXPECT_EQ(specs[1].l, 4u);
  EXPECT_EQ(specs[2].algorithm, Algorithm::kMondrian);
  EXPECT_EQ(specs[3].algorithm, Algorithm::kMondrian);
  EXPECT_EQ(specs[3].l, 4u);
  EXPECT_EQ(specs[4].table_index, 1u);
  EXPECT_EQ(specs[7].table_index, 1u);
  EXPECT_EQ(specs[7].algorithm, Algorithm::kMondrian);
  EXPECT_EQ(specs[7].l, 4u);
  for (const RunSpec& spec : specs) EXPECT_FALSE(spec.options.compute_kl);
}

TEST(RunSpec, ToBatchJobsBorrowsTheRightTables) {
  Table a = PaperTable1();
  Table b = PaperTable1();
  const Table* tables[] = {&a, &b};
  const Algorithm algorithms[] = {Algorithm::kTp};
  const std::uint32_t ls[] = {2};
  std::vector<RunSpec> specs = ExpandRunGrid(algorithms, ls, 2, AnonymizerOptions{});
  std::vector<BatchJob> jobs = ToBatchJobs(specs, tables);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].table, &a);
  EXPECT_EQ(jobs[1].table, &b);
  EXPECT_EQ(jobs[0].algorithm, Algorithm::kTp);
  EXPECT_EQ(jobs[0].l, 2u);
}

TEST(RunSpec, ParseAlgorithmListAcceptsNamesAndAll) {
  std::vector<Algorithm> algorithms;
  std::string error;
  ASSERT_TRUE(ParseAlgorithmList("tp,MONDRIAN,tp+", &algorithms, &error)) << error;
  EXPECT_EQ(algorithms, (std::vector<Algorithm>{Algorithm::kTp, Algorithm::kMondrian,
                                                Algorithm::kTpPlus}));
  ASSERT_TRUE(ParseAlgorithmList("all", &algorithms, &error));
  EXPECT_EQ(algorithms.size(), kAlgorithmCount);
  for (std::size_t i = 0; i < kAlgorithmCount; ++i) EXPECT_EQ(algorithms[i], kAllAlgorithms[i]);
}

TEST(RunSpec, ParseAlgorithmListRejectsUnknownNames) {
  std::vector<Algorithm> algorithms;
  std::string error;
  EXPECT_FALSE(ParseAlgorithmList("tp,bogus", &algorithms, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
  EXPECT_NE(error.find("Mondrian"), std::string::npos) << "error should list the registry";
  EXPECT_FALSE(ParseAlgorithmList("", &algorithms, &error));
  EXPECT_FALSE(ParseAlgorithmList("tp,,tds", &algorithms, &error));
}

TEST(RunSpec, RegisteredAlgorithmNamesIsEnumOrdered) {
  EXPECT_EQ(RegisteredAlgorithmNames(", "), "TP, TP+, Hilbert, Mondrian, Anatomy, TDS");
}

}  // namespace
}  // namespace ldv
