// Unit and differential tests for the Section 5.5 inverted-list structure.

#include "core/pillar_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ldv {
namespace {

TEST(PillarIndex, SparseConstruction) {
  const std::vector<std::pair<SaValue, std::uint32_t>> entries = {{2, 3}, {5, 1}, {9, 3}};
  PillarIndex idx(entries);
  EXPECT_EQ(idx.slot_count(), 3u);
  EXPECT_EQ(idx.total(), 7u);
  EXPECT_EQ(idx.PillarHeight(), 3u);
  EXPECT_EQ(idx.value(0), 2u);
  EXPECT_EQ(idx.CountOf(5), 1u);
  EXPECT_EQ(idx.CountOf(7), 0u);  // untracked
  EXPECT_EQ(idx.FindSlot(9), 2);
  EXPECT_EQ(idx.FindSlot(3), -1);
  EXPECT_EQ(idx.PillarSlots(), (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(idx.DistinctCount(), 3u);
}

TEST(PillarIndex, DenseEmptyTracksWholeDomain) {
  PillarIndex idx = PillarIndex::DenseEmpty(4);
  EXPECT_EQ(idx.slot_count(), 4u);
  EXPECT_EQ(idx.total(), 0u);
  EXPECT_EQ(idx.PillarHeight(), 0u);
  idx.Increment(2);
  idx.Increment(2);
  idx.Increment(0);
  EXPECT_EQ(idx.PillarHeight(), 2u);
  EXPECT_TRUE(idx.IsPillarValue(2));
  EXPECT_FALSE(idx.IsPillarValue(0));
  EXPECT_FALSE(idx.IsPillarValue(3));
}

TEST(PillarIndex, DecrementMovesPillarPointerDown) {
  PillarIndex idx = PillarIndex::FromHistogram(SaHistogram({4, 2, 4}));
  idx.Decrement(0);
  EXPECT_EQ(idx.PillarHeight(), 4u);
  EXPECT_EQ(idx.PillarSlots(), (std::vector<std::uint32_t>{2}));
  idx.Decrement(2);
  EXPECT_EQ(idx.PillarHeight(), 3u);
  std::vector<std::uint32_t> pillars = idx.PillarSlots();
  std::sort(pillars.begin(), pillars.end());  // list order is insertion order
  EXPECT_EQ(pillars, (std::vector<std::uint32_t>{0, 2}));
}

TEST(PillarIndex, EligibilityMatchesDefinition) {
  PillarIndex idx = PillarIndex::FromHistogram(SaHistogram({2, 2, 2}));
  EXPECT_TRUE(idx.IsEligible(3));
  idx.Decrement(0);
  EXPECT_FALSE(idx.IsEligible(3));
  EXPECT_TRUE(idx.IsEligible(2));
}

TEST(PillarIndex, FirstPillarSlotIsSmallestSlot) {
  PillarIndex idx = PillarIndex::FromHistogram(SaHistogram({1, 3, 3, 2}));
  EXPECT_EQ(idx.FirstPillarSlot(), 1u);
}

TEST(PillarIndexDeathTest, FirstPillarOfEmptyAborts) {
  PillarIndex idx = PillarIndex::DenseEmpty(3);
  EXPECT_DEATH(idx.FirstPillarSlot(), "empty multiset");
}

TEST(PillarIndex, RoundTripToHistogram) {
  SaHistogram h({0, 5, 0, 2, 1});
  PillarIndex idx = PillarIndex::FromHistogram(h);
  EXPECT_EQ(idx.ToHistogram(5), h);
}

TEST(PillarIndex, AnyPillarSlotShortCircuits) {
  PillarIndex idx = PillarIndex::FromHistogram(SaHistogram({3, 3, 1}));
  int visits = 0;
  bool found = idx.AnyPillarSlot([&](std::uint32_t slot) {
    ++visits;
    return idx.value(slot) == 0;  // slot lists are ascending by slot id
  });
  EXPECT_TRUE(found);
  EXPECT_EQ(visits, 1);
}

// Differential test: PillarIndex must agree with a plain SaHistogram under
// a long random sequence of increments and decrements.
TEST(PillarIndex, DifferentialAgainstHistogram) {
  Rng rng(7);
  const std::size_t m = 6;
  PillarIndex idx = PillarIndex::DenseEmpty(m);
  SaHistogram ref(m);
  for (int step = 0; step < 5000; ++step) {
    SaValue v = rng.Below(m);
    bool can_remove = ref.count(v) > 0;
    if (can_remove && rng.Below(2) == 0) {
      idx.Decrement(v);  // dense index: slot == value
      ref.Remove(v);
    } else {
      idx.Increment(v);
      ref.Add(v);
    }
    ASSERT_EQ(idx.total(), ref.total());
    ASSERT_EQ(idx.PillarHeight(), ref.PillarHeight());
    ASSERT_EQ(idx.DistinctCount(), ref.DistinctCount());
    for (SaValue u = 0; u < m; ++u) ASSERT_EQ(idx.CountOf(u), ref.count(u));
    // Pillar sets must match (list order is insertion-dependent; sort).
    std::vector<SaValue> pillars;
    idx.ForEachPillarSlot([&](std::uint32_t slot) { pillars.push_back(idx.value(slot)); });
    std::sort(pillars.begin(), pillars.end());
    ASSERT_EQ(pillars, ref.Pillars());
  }
}

}  // namespace
}  // namespace ldv
