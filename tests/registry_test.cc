// AlgorithmRegistry tests: lookup by enum and by name, and the parity
// guarantee that every registered algorithm produces a valid l-diverse
// partition with the shared utility metrics populated.

#include "core/algorithm.h"

#include <gtest/gtest.h>

#include "anonymity/eligibility.h"
#include "data/acs_generator.h"
#include "data/acs_schema.h"
#include "test_util.h"

namespace ldv {
namespace {

TEST(Registry, AllSixAlgorithmsRegistered) {
  const AlgorithmRegistry& registry = AlgorithmRegistry::Global();
  EXPECT_EQ(registry.All().size(), kAlgorithmCount);
  for (Algorithm id : kAllAlgorithms) {
    const Anonymizer& algo = registry.Get(id);
    EXPECT_EQ(algo.id(), id);
    EXPECT_STREQ(algo.name(), AlgorithmName(id));
  }
}

TEST(Registry, FindByNameIsCaseInsensitive) {
  const AlgorithmRegistry& registry = AlgorithmRegistry::Global();
  EXPECT_EQ(registry.Find("tp")->id(), Algorithm::kTp);
  EXPECT_EQ(registry.Find("TP")->id(), Algorithm::kTp);
  EXPECT_EQ(registry.Find("tp+")->id(), Algorithm::kTpPlus);
  EXPECT_EQ(registry.Find("HILBERT")->id(), Algorithm::kHilbert);
  EXPECT_EQ(registry.Find("Mondrian")->id(), Algorithm::kMondrian);
  EXPECT_EQ(registry.Find("anatomy")->id(), Algorithm::kAnatomy);
  EXPECT_EQ(registry.Find("tds")->id(), Algorithm::kTds);
}

TEST(Registry, FindUnknownNameReturnsNull) {
  const AlgorithmRegistry& registry = AlgorithmRegistry::Global();
  EXPECT_EQ(registry.Find(""), nullptr);
  EXPECT_EQ(registry.Find("tp++"), nullptr);
  EXPECT_EQ(registry.Find("mondrian2"), nullptr);
}

TEST(Registry, CreateHonorsOptions) {
  AnonymizerOptions options;
  options.compute_kl = false;
  options.hilbert.splitter = HilbertOptions::Splitter::kWindowDp;
  std::unique_ptr<Anonymizer> algo =
      AlgorithmRegistry::Global().Create(Algorithm::kHilbert, options);
  EXPECT_FALSE(algo->options().compute_kl);
  EXPECT_EQ(algo->options().hilbert.splitter, HilbertOptions::Splitter::kWindowDp);
}

// The acceptance-criteria parity test: every registered algorithm, run on
// ACS-style workloads, yields a partition that exactly covers the table
// and is l-diverse, with the shared metrics filled in uniformly.
TEST(Registry, ParityOnAcsWorkloads) {
  Table sal = GenerateSal(4000, 1).ProjectQi({kAge, kGender, kEducation});
  Table occ = GenerateOcc(4000, 2).ProjectQi({kAge, kRace, kMarital});
  for (const Table* table : {&sal, &occ}) {
    for (std::uint32_t l : {2u, 4u}) {
      for (const Anonymizer* algo : AlgorithmRegistry::Global().All()) {
        SCOPED_TRACE(std::string(algo->name()) + " l=" + std::to_string(l));
        AnonymizationOutcome outcome = algo->Run(*table, l);
        ASSERT_TRUE(outcome.feasible);
        EXPECT_EQ(outcome.algorithm, algo->id());
        EXPECT_EQ(outcome.methodology, algo->methodology());
        EXPECT_TRUE(outcome.partition.CoversExactly(*table));
        EXPECT_TRUE(IsLDiverse(*table, outcome.partition, l));
        EXPECT_EQ(outcome.group_stats.group_count, outcome.partition.group_count());
        EXPECT_GE(outcome.kl_divergence, 0.0);
        EXPECT_GE(outcome.seconds, 0.0);
        if (outcome.methodology == Methodology::kBucketization) {
          // Anatomy publishes QI values exactly: no stars by construction.
          EXPECT_EQ(outcome.stars, 0u);
          EXPECT_EQ(outcome.generalized, nullptr);
        } else {
          ASSERT_NE(outcome.generalized, nullptr);
          EXPECT_EQ(outcome.stars, outcome.generalized->StarCount());
          EXPECT_EQ(outcome.suppressed_tuples, outcome.generalized->SuppressedTupleCount());
        }
      }
    }
  }
}

TEST(Registry, MethodologyArtifactsMatchKind) {
  Table table = GenerateSal(3000, 5).ProjectQi({kAge, kGender});
  const AlgorithmRegistry& registry = AlgorithmRegistry::Global();
  EXPECT_NE(registry.Get(Algorithm::kMondrian).Run(table, 2).boxes, nullptr);
  EXPECT_NE(registry.Get(Algorithm::kTds).Run(table, 2).single_dim, nullptr);
  EXPECT_EQ(registry.Get(Algorithm::kTp).Run(table, 2).boxes, nullptr);
}

TEST(Registry, InfeasibleIsUniformAcrossAlgorithms) {
  Table table = testutil::PaperTable1();  // max feasible l is 2
  for (const Anonymizer* algo : AlgorithmRegistry::Global().All()) {
    AnonymizationOutcome outcome = algo->Run(table, 3);
    EXPECT_FALSE(outcome.feasible) << algo->name();
    EXPECT_EQ(outcome.partition.group_count(), 0u) << algo->name();
  }
}

}  // namespace
}  // namespace ldv
