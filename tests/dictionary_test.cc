// Tests of the dictionary-encoded string ingestion path: raw CSV ->
// per-column ValueDictionary -> columnar table -> anonymize -> decoded
// (human-readable) release, plus the format detection front-end and the
// structured CsvError reporting of the coded reader.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "anonymity/release.h"
#include "engine/report.h"
#include "common/csv.h"
#include "core/anonymizer.h"
#include "data/dataset.h"
#include "test_util.h"

namespace ldv {
namespace {

std::string WriteTempFile(const std::string& name, const std::string& content) {
  std::string path = testing::TempDir() + name;
  std::ofstream out(path);
  out << content;
  return path;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

TEST(ValueDictionary, InsertionOrderedCodes) {
  ValueDictionary dict;
  EXPECT_TRUE(dict.empty());
  EXPECT_EQ(dict.GetOrAdd("flu"), 0u);
  EXPECT_EQ(dict.GetOrAdd("asthma"), 1u);
  EXPECT_EQ(dict.GetOrAdd("flu"), 0u);  // stable on re-sight
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.label(1), "asthma");
  ASSERT_NE(dict.Find("asthma"), nullptr);
  EXPECT_EQ(*dict.Find("asthma"), 1u);
  EXPECT_EQ(dict.Find("unknown"), nullptr);
}

TEST(RawCsv, BuildsDictionariesInFirstOccurrenceOrder) {
  std::string path = WriteTempFile(
      "raw_basic.csv",
      "City,Job,Disease\nLisbon,nurse,flu\nPorto,teacher,asthma\nLisbon,nurse,flu\n");
  CsvError error;
  std::optional<Table> table = ReadRawTableCsv(path, &error);
  ASSERT_TRUE(table.has_value()) << error.ToString();
  EXPECT_EQ(table->size(), 3u);
  EXPECT_EQ(table->qi_count(), 2u);
  const Schema& schema = table->schema();
  EXPECT_EQ(schema.qi(0).name, "City");
  EXPECT_EQ(schema.qi(0).domain_size, 2u);
  EXPECT_EQ(schema.qi(0).dictionary.label(0), "Lisbon");
  EXPECT_EQ(schema.qi(0).dictionary.label(1), "Porto");
  EXPECT_EQ(schema.sensitive().name, "Disease");
  EXPECT_EQ(schema.sensitive().dictionary.label(1), "asthma");
  EXPECT_TRUE(schema.has_dictionaries());
  // Codes follow first occurrence: Lisbon=0, Porto=1; flu=0, asthma=1.
  EXPECT_EQ(table->qi(0, 0), 0u);
  EXPECT_EQ(table->qi(1, 0), 1u);
  EXPECT_EQ(table->qi(2, 0), 0u);
  EXPECT_EQ(table->sa(1), 1u);
  std::remove(path.c_str());
}

TEST(RawCsv, QuotedLabelsRoundTrip) {
  std::string path = WriteTempFile("raw_quoted.csv",
                                   "City,Disease\n\"Porto, Norte\",\"flu \"\"A\"\"\"\nBraga,flu\n");
  CsvError error;
  std::optional<Table> table = ReadRawTableCsv(path, &error);
  ASSERT_TRUE(table.has_value()) << error.ToString();
  EXPECT_EQ(table->schema().qi(0).dictionary.label(0), "Porto, Norte");
  EXPECT_EQ(table->schema().sensitive().dictionary.label(0), "flu \"A\"");
  // The escaper reproduces parseable cells for both labels.
  EXPECT_EQ(CsvEscapeCell("Porto, Norte"), "\"Porto, Norte\"");
  EXPECT_EQ(CsvEscapeCell("flu \"A\""), "\"flu \"\"A\"\"\"");
  std::remove(path.c_str());
}

TEST(RawCsv, CrlfLineEndingsDoNotLeakIntoLabels) {
  // Windows/Excel CSVs end lines with \r\n; the carriage return must
  // never become part of the last column's labels or the header name.
  std::string path = WriteTempFile("raw_crlf.csv",
                                   "City,Disease\r\nLisbon,flu\r\nPorto,asthma\r\n\r\n");
  CsvError error;
  std::optional<Table> table = ReadRawTableCsv(path, &error);
  ASSERT_TRUE(table.has_value()) << error.ToString();
  EXPECT_EQ(table->size(), 2u);  // the trailing blank CRLF line is skipped
  EXPECT_EQ(table->schema().sensitive().name, "Disease");
  EXPECT_EQ(table->schema().sensitive().dictionary.label(0), "flu");
  EXPECT_EQ(table->schema().sensitive().dictionary.label(1), "asthma");
  // Coded loads and detection tolerate CRLF the same way.
  std::string detect_error;
  std::string coded = WriteTempFile("coded_crlf.csv", "A1,B\r\n1,0\r\n");
  EXPECT_EQ(DetectCsvFormat(coded, &detect_error), CsvFormat::kCoded);
  Schema schema = testutil::MakeSchema({2}, 2);
  CsvError coded_error;
  std::optional<Table> coded_table = ReadTableCsv(schema, coded, &coded_error);
  ASSERT_TRUE(coded_table.has_value()) << coded_error.ToString();
  EXPECT_EQ(coded_table->qi(0, 0), 1u);
  std::remove(path.c_str());
  std::remove(coded.c_str());
}

TEST(RawCsv, StructuredErrorsCarryLineAndColumn) {
  CsvError error;
  // Ragged row.
  std::string ragged = WriteTempFile("raw_ragged.csv", "A,B\nx,y\nonly_one_cell\n");
  EXPECT_FALSE(ReadRawTableCsv(ragged, &error).has_value());
  EXPECT_EQ(error.line, 3u);
  EXPECT_NE(error.ToString().find(ragged + ":3"), std::string::npos) << error.ToString();
  std::remove(ragged.c_str());
  // Empty cell.
  std::string empty_cell = WriteTempFile("raw_empty_cell.csv", "A,B\nx,\n");
  EXPECT_FALSE(ReadRawTableCsv(empty_cell, &error).has_value());
  EXPECT_EQ(error.line, 2u);
  EXPECT_EQ(error.column, 2u);
  std::remove(empty_cell.c_str());
  // No data rows.
  std::string header_only = WriteTempFile("raw_header_only.csv", "A,B\n");
  EXPECT_FALSE(ReadRawTableCsv(header_only, &error).has_value());
  EXPECT_NE(error.reason.find("no data rows"), std::string::npos);
  std::remove(header_only.c_str());
  // Missing file.
  EXPECT_FALSE(ReadRawTableCsv(testing::TempDir() + "raw_nope.csv", &error).has_value());
  EXPECT_NE(error.reason.find("cannot open"), std::string::npos);
}

TEST(RawCsv, TruncatedQuotedCellIsAPositionedErrorNotEofSuccess) {
  // A file whose final chunk ends mid-quoted-field (e.g. a truncated
  // download) used to EOF-succeed with the partial label silently
  // treated as a closed quote; ingestion must reject it with the line
  // and cell of the open quote instead.
  CsvError error;
  std::string truncated =
      WriteTempFile("raw_truncated.csv", "City,Disease\nLisbon,flu\nPorto,\"ast");
  EXPECT_FALSE(ReadRawTableCsv(truncated, &error).has_value());
  EXPECT_EQ(error.line, 3u);
  EXPECT_EQ(error.column, 2u);
  EXPECT_NE(error.reason.find("unterminated quoted cell"), std::string::npos)
      << error.ToString();
  std::remove(truncated.c_str());

  // Same rejection mid-file: line-oriented ingestion never spans records
  // across newlines, so an unclosed quote on any line is an error.
  std::string mid_file =
      WriteTempFile("raw_midquote.csv", "City,Disease\n\"Lisbon,flu\nPorto,asthma\n");
  EXPECT_FALSE(ReadRawTableCsv(mid_file, &error).has_value());
  EXPECT_EQ(error.line, 2u);
  EXPECT_EQ(error.column, 1u);
  std::remove(mid_file.c_str());

  // The coded reader rejects the same shape.
  Schema schema = testutil::MakeSchema({5}, 3);
  std::string coded = WriteTempFile("coded_truncated.csv", "A1,B\n1,\"0");
  EXPECT_FALSE(ReadTableCsv(schema, coded, &error).has_value());
  EXPECT_EQ(error.line, 2u);
  EXPECT_EQ(error.column, 2u);
  EXPECT_NE(error.reason.find("unterminated"), std::string::npos);
  std::remove(coded.c_str());

  // The low-level splitter reports the open cell; the legacy silent
  // wrapper still closes it (writers never emit such lines).
  std::vector<std::string> cells;
  std::size_t open_cell = 0;
  EXPECT_FALSE(SplitCsvRecord("a,\"b", &cells, &open_cell));
  EXPECT_EQ(open_cell, 2u);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[1], "b");
  EXPECT_TRUE(SplitCsvRecord("a,\"b\"", &cells, &open_cell));
}

TEST(CodedCsv, HeaderIsValidatedAgainstSchema) {
  Schema schema({Attribute{"Age", 5}, Attribute{"Gender", 2}}, Attribute{"Income", 3});
  CsvError error;
  // Wrong column count in the header.
  std::string short_header = WriteTempFile("coded_short.csv", "Age,Income\n1,0\n");
  EXPECT_FALSE(ReadTableCsv(schema, short_header, &error).has_value());
  EXPECT_EQ(error.line, 1u);
  EXPECT_NE(error.reason.find("header"), std::string::npos) << error.ToString();
  std::remove(short_header.c_str());
  // Mismatched name, with its column position.
  std::string wrong_name = WriteTempFile("coded_wrong_name.csv", "Age,Sex,Income\n1,0,0\n");
  EXPECT_FALSE(ReadTableCsv(schema, wrong_name, &error).has_value());
  EXPECT_EQ(error.line, 1u);
  EXPECT_EQ(error.column, 2u);
  EXPECT_NE(error.reason.find("Sex"), std::string::npos);
  std::remove(wrong_name.c_str());
  // Generated placeholder names (unnamed --schema specs) accept any header.
  Schema placeholders({Attribute{"Q1", 5}, Attribute{"Q2", 2}}, Attribute{"S", 3});
  std::string named = WriteTempFile("coded_placeholder.csv", "Age,Gender,Income\n1,0,0\n");
  EXPECT_TRUE(ReadTableCsv(placeholders, named, &error).has_value()) << error.ToString();
  std::remove(named.c_str());
}

TEST(CodedCsv, CellErrorsCarryLineColumnAndReason) {
  Schema schema({Attribute{"Age", 5}}, Attribute{"Income", 3});
  CsvError error;
  std::string bad_cell = WriteTempFile("coded_bad_cell.csv", "Age,Income\n1,0\nyoung,0\n");
  EXPECT_FALSE(ReadTableCsv(schema, bad_cell, &error).has_value());
  EXPECT_EQ(error.line, 3u);
  EXPECT_EQ(error.column, 1u);
  EXPECT_NE(error.reason.find("young"), std::string::npos);
  std::remove(bad_cell.c_str());

  std::string out_of_domain = WriteTempFile("coded_oob.csv", "Age,Income\n1,7\n");
  EXPECT_FALSE(ReadTableCsv(schema, out_of_domain, &error).has_value());
  EXPECT_EQ(error.line, 2u);
  EXPECT_EQ(error.column, 2u);
  EXPECT_NE(error.reason.find("[0, 3)"), std::string::npos) << error.ToString();
  EXPECT_NE(error.reason.find("Income"), std::string::npos);
  std::remove(out_of_domain.c_str());
}

TEST(FormatDetection, SniffsCodedVersusRaw) {
  std::string error;
  std::string coded = WriteTempFile("detect_coded.csv", "A,B\n3,0\n");
  EXPECT_EQ(DetectCsvFormat(coded, &error), CsvFormat::kCoded);
  std::string raw = WriteTempFile("detect_raw.csv", "A,B\nLisbon,flu\n");
  EXPECT_EQ(DetectCsvFormat(raw, &error), CsvFormat::kRaw);
  std::string header_only = WriteTempFile("detect_empty.csv", "A,B\n");
  EXPECT_FALSE(DetectCsvFormat(header_only, &error).has_value());
  EXPECT_NE(error.find("no data rows"), std::string::npos);
  // LoadTableCsv resolves auto: a raw file loads without a schema...
  std::optional<Table> table = LoadTableCsv(raw, CsvFormat::kAuto, nullptr, &error);
  ASSERT_TRUE(table.has_value()) << error;
  EXPECT_TRUE(table->schema().has_dictionaries());
  // ...while a coded-looking file without a schema is rejected.
  EXPECT_FALSE(LoadTableCsv(coded, CsvFormat::kAuto, nullptr, &error).has_value());
  EXPECT_NE(error.find("integer-coded"), std::string::npos) << error;
  for (const std::string& path : {coded, raw, header_only}) std::remove(path.c_str());
}

TEST(DictionaryRoundTrip, RawCsvThroughSuppressionReleaseDecodesLabels) {
  // Raw string CSV -> anonymize (TP+) -> release: stars stay '*', every
  // other cell decodes to its label, and parsing the release back with the
  // ingested schema recovers the codes.
  CsvError csv_error;
  std::optional<Table> table = ReadRawTableCsv("tests/data/micro_raw.csv", &csv_error);
  if (!table.has_value()) {
    // ctest may run from the build directory; resolve via the source dir.
    table = ReadRawTableCsv(std::string(LDIV_SOURCE_DIR) + "/tests/data/micro_raw.csv", &csv_error);
  }
  ASSERT_TRUE(table.has_value()) << csv_error.ToString();
  AnonymizationOutcome outcome = Anonymize(*table, 2, Algorithm::kTpPlus);
  ASSERT_TRUE(outcome.feasible);

  std::string stem = testing::TempDir() + "dict_round_trip";
  std::string error;
  ASSERT_TRUE(WriteReleaseForOutcome(*table, outcome, stem, &error)) << error;
  std::string release = ReadFile(stem + ".csv");
  EXPECT_NE(release.find("City,Occupation,Disease"), std::string::npos);
  // Labels, not codes: at least one known city and disease must appear.
  EXPECT_NE(release.find("flu"), std::string::npos);

  std::optional<std::vector<ReleaseRow>> rows = ReadReleaseCsv(table->schema(), stem + ".csv");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), table->size());
  std::uint64_t stars = 0;
  std::vector<std::uint32_t> sa_histogram(table->schema().sa_domain_size(), 0);
  for (const ReleaseRow& row : *rows) {
    for (Value v : row.qi) stars += IsStar(v) ? 1 : 0;
    ++sa_histogram[row.sa];
  }
  EXPECT_EQ(stars, outcome.stars);
  EXPECT_EQ(sa_histogram, table->SaHistogramCounts());
  std::remove((stem + ".csv").c_str());
}

TEST(DictionaryRoundTrip, AnatomyBucketPairDecodesLabels) {
  std::string path = WriteTempFile("dict_anatomy.csv",
                                   "City,Disease\n"
                                   "Lisbon,flu\nLisbon,asthma\nPorto,flu\nPorto,asthma\n"
                                   "Braga,flu\nBraga,asthma\nFaro,flu\nFaro,asthma\n");
  CsvError csv_error;
  std::optional<Table> table = ReadRawTableCsv(path, &csv_error);
  ASSERT_TRUE(table.has_value()) << csv_error.ToString();
  AnonymizationOutcome outcome = Anonymize(*table, 2, Algorithm::kAnatomy);
  ASSERT_TRUE(outcome.feasible);
  std::string stem = testing::TempDir() + "dict_anatomy_release";
  std::string error;
  ASSERT_TRUE(WriteReleaseForOutcome(*table, outcome, stem, &error)) << error;
  std::string qit = ReadFile(stem + ".csv");
  EXPECT_NE(qit.find("City,Bucket"), std::string::npos);
  EXPECT_NE(qit.find("Lisbon"), std::string::npos);
  std::string st = ReadFile(stem + "_sa.csv");
  EXPECT_NE(st.find("Bucket,Disease,Count"), std::string::npos);
  EXPECT_NE(st.find("asthma"), std::string::npos);
  for (const std::string& p : {path, stem + ".csv", stem + "_sa.csv"}) std::remove(p.c_str());
}

TEST(DictionaryCsv, SerializesAttributeCodeLabelRows) {
  std::string path = WriteTempFile("dict_sidecar_in.csv", "City,Disease\nLisbon,flu\nPorto,flu\n");
  CsvError csv_error;
  std::optional<Table> table = ReadRawTableCsv(path, &csv_error);
  ASSERT_TRUE(table.has_value()) << csv_error.ToString();
  std::string dict_path = testing::TempDir() + "dict_sidecar_out.csv";
  ASSERT_TRUE(WriteDictionaryCsv(table->schema(), dict_path));
  EXPECT_EQ(ReadFile(dict_path),
            "attribute,code,label\n"
            "City,0,Lisbon\n"
            "City,1,Porto\n"
            "Disease,0,flu\n");
  std::remove(path.c_str());
  std::remove(dict_path.c_str());
}

}  // namespace
}  // namespace ldv
