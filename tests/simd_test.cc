// Tests of the SIMD kernel layer (src/common/simd.h): every kernel, at
// every compiled-in tier the host can run, cross-checked against the
// scalar reference on randomized inputs -- including unaligned tails
// (lengths that are not lane multiples and pointers offset off alignment),
// n smaller than one lane, and n == 0. The KL kernel is additionally
// checked for BIT-identical output across tiers, which is the determinism
// guarantee the estimators rely on.

#include "common/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "hilbert/hilbert_curve.h"

namespace ldv {
namespace {

using simd::Level;

// The tiers the host can actually run, scalar first.
std::vector<Level> RunnableLevels() {
  std::vector<Level> levels = {Level::kScalar};
  if (simd::DetectedLevel() >= Level::kSse2) levels.push_back(Level::kSse2);
  if (simd::DetectedLevel() >= Level::kAvx2) levels.push_back(Level::kAvx2);
  return levels;
}

// Restores the dispatch level active at construction on scope exit.
class LevelGuard {
 public:
  LevelGuard() : saved_(simd::ActiveLevel()) {}
  ~LevelGuard() { simd::ForceLevel(saved_); }

 private:
  Level saved_;
};

// The lengths every kernel is exercised at: empty, below one lane, exactly
// one SSE2/AVX2 lane, lane multiples, and off-multiple tails.
const std::size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 64, 65, 1000, 1023};

TEST(SimdDispatch, LevelNamesRoundTrip) {
  EXPECT_STREQ(simd::LevelName(Level::kScalar), "scalar");
  EXPECT_STREQ(simd::LevelName(Level::kSse2), "sse2");
  EXPECT_STREQ(simd::LevelName(Level::kAvx2), "avx2");
}

TEST(SimdDispatch, ForceLevelClampsToDetected) {
  LevelGuard guard;
  simd::ForceLevel(Level::kAvx2);
  EXPECT_LE(static_cast<int>(simd::ActiveLevel()), static_cast<int>(simd::DetectedLevel()));
  simd::ForceLevel(Level::kScalar);
  EXPECT_EQ(simd::ActiveLevel(), Level::kScalar);
}

TEST(SimdKernels, FnvFoldColumnMatchesScalar) {
  LevelGuard guard;
  Rng rng(11);
  for (std::size_t n : kLengths) {
    // +1 slack so the kernel can also run from an odd (unaligned) offset.
    std::vector<std::uint64_t> seed(n + 1);
    std::vector<std::uint32_t> col(n + 1);
    for (auto& h : seed) h = rng.Next64();
    for (auto& v : col) v = rng.Next32();
    for (std::size_t off : {std::size_t{0}, std::size_t{1}}) {
      std::vector<std::uint64_t> want(seed.begin() + off, seed.end());
      simd::ForceLevel(Level::kScalar);
      simd::FnvFoldColumn(want.data(), col.data() + off, n);
      for (Level level : RunnableLevels()) {
        std::vector<std::uint64_t> got(seed.begin() + off, seed.end());
        simd::ForceLevel(level);
        simd::FnvFoldColumn(got.data(), col.data() + off, n);
        EXPECT_EQ(got, want) << simd::LevelName(level) << " n=" << n << " off=" << off;
      }
    }
  }
}

TEST(SimdKernels, StrideAccumulateMatchesScalar) {
  LevelGuard guard;
  Rng rng(12);
  const std::uint64_t strides[] = {1, 79, 158u * 79, 0x123456789abcULL,
                                   0xfedcba9876543210ULL};
  for (std::size_t n : kLengths) {
    std::vector<std::uint64_t> seed(n + 1);
    std::vector<std::uint32_t> col(n + 1);
    for (auto& a : seed) a = rng.Next64();
    for (auto& v : col) v = rng.Next32();
    for (std::uint64_t stride : strides) {
      std::vector<std::uint64_t> want(seed.begin() + 1, seed.end());
      simd::ForceLevel(Level::kScalar);
      simd::StrideAccumulate(want.data(), col.data() + 1, stride, n);
      for (Level level : RunnableLevels()) {
        std::vector<std::uint64_t> got(seed.begin() + 1, seed.end());
        simd::ForceLevel(level);
        simd::StrideAccumulate(got.data(), col.data() + 1, stride, n);
        EXPECT_EQ(got, want) << simd::LevelName(level) << " n=" << n << " stride=" << stride;
      }
    }
  }
}

TEST(SimdKernels, MinMaxGatherMatchesScalar) {
  LevelGuard guard;
  Rng rng(13);
  std::vector<std::uint32_t> values(4096);
  for (auto& v : values) v = rng.Next32();
  for (std::size_t n : kLengths) {
    if (n == 0) continue;  // the kernel requires n >= 1
    std::vector<std::uint32_t> idx(n + 1);
    for (auto& i : idx) i = rng.Below(static_cast<std::uint32_t>(values.size()));
    std::uint32_t want_mn = 0, want_mx = 0;
    simd::ForceLevel(Level::kScalar);
    simd::MinMaxGatherU32(values.data(), idx.data() + 1, n, &want_mn, &want_mx);
    for (Level level : RunnableLevels()) {
      std::uint32_t mn = 0, mx = 0;
      simd::ForceLevel(level);
      simd::MinMaxGatherU32(values.data(), idx.data() + 1, n, &mn, &mx);
      EXPECT_EQ(mn, want_mn) << simd::LevelName(level) << " n=" << n;
      EXPECT_EQ(mx, want_mx) << simd::LevelName(level) << " n=" << n;
    }
  }
}

TEST(SimdKernels, GatherMatchesScalar) {
  LevelGuard guard;
  Rng rng(14);
  std::vector<std::uint32_t> values(4096);
  for (auto& v : values) v = rng.Next32();
  for (std::size_t n : kLengths) {
    std::vector<std::uint32_t> idx(n + 1);
    for (auto& i : idx) i = rng.Below(static_cast<std::uint32_t>(values.size()));
    std::vector<std::uint32_t> want(n);
    simd::ForceLevel(Level::kScalar);
    simd::GatherU32(values.data(), idx.data() + 1, n, want.data());
    for (Level level : RunnableLevels()) {
      std::vector<std::uint32_t> got(n);
      simd::ForceLevel(level);
      simd::GatherU32(values.data(), idx.data() + 1, n, got.data());
      EXPECT_EQ(got, want) << simd::LevelName(level) << " n=" << n;
    }
  }
}

TEST(SimdKernels, StabCandidatesMatchesScalar) {
  LevelGuard guard;
  Rng rng(15);
  constexpr std::size_t kGroups = 512;
  constexpr std::size_t kDims = 5;
  constexpr std::uint32_t kDomain = 32;
  // SoA per-attribute bounds with lo <= hi, tight enough that hits are
  // neither universal nor vanishing.
  std::vector<std::uint32_t> lo_store(kDims * kGroups), hi_store(kDims * kGroups);
  const std::uint32_t* lo[kDims];
  const std::uint32_t* hi[kDims];
  for (std::size_t a = 0; a < kDims; ++a) {
    lo[a] = lo_store.data() + a * kGroups;
    hi[a] = hi_store.data() + a * kGroups;
    for (std::size_t g = 0; g < kGroups; ++g) {
      std::uint32_t x = rng.Below(kDomain), y = rng.Below(kDomain + 1);
      lo_store[a * kGroups + g] = x < y ? x : y;
      hi_store[a * kGroups + g] = (x < y ? y : x) + 1;
    }
  }
  for (std::size_t n : kLengths) {
    std::vector<std::uint32_t> candidates(n + 1);
    for (auto& c : candidates) c = rng.Below(kGroups);
    std::uint32_t point[kDims];
    for (auto& p : point) p = rng.Below(kDomain);
    for (bool first_only : {false, true}) {
      std::vector<std::uint32_t> want(n + 1, 0xdeadbeefu), got(n + 1, 0xdeadbeefu);
      simd::ForceLevel(Level::kScalar);
      std::size_t want_n = simd::StabCandidates(candidates.data() + 1, n, point, lo, hi, kDims,
                                                first_only, want.data());
      for (Level level : RunnableLevels()) {
        simd::ForceLevel(level);
        std::size_t got_n = simd::StabCandidates(candidates.data() + 1, n, point, lo, hi,
                                                 kDims, first_only, got.data());
        ASSERT_EQ(got_n, want_n)
            << simd::LevelName(level) << " n=" << n << " first_only=" << first_only;
        for (std::size_t k = 0; k < want_n; ++k) {
          EXPECT_EQ(got[k], want[k]) << simd::LevelName(level) << " hit " << k;
        }
      }
    }
  }
}

TEST(SimdKernels, KlAccumulateBitIdenticalAcrossTiers) {
  LevelGuard guard;
  Rng rng(16);
  const double n_rows = 100000.0;
  for (std::size_t n : kLengths) {
    std::vector<double> count(n + 1), fstar(n + 1);
    for (auto& c : count) c = 1.0 + rng.Below(1000);
    for (auto& f : fstar) f = (1.0 + rng.Below(100000)) / 256.0;
    double want[4] = {0.125, -3.5, 7.25, 0.0};  // nonzero seeds must carry through
    simd::ForceLevel(Level::kScalar);
    simd::KlAccumulate(count.data() + 1, fstar.data() + 1, n_rows, n, want);
    for (Level level : RunnableLevels()) {
      double acc[4] = {0.125, -3.5, 7.25, 0.0};
      simd::ForceLevel(level);
      simd::KlAccumulate(count.data() + 1, fstar.data() + 1, n_rows, n, acc);
      for (int j = 0; j < 4; ++j) {
        // Bit equality, not approximate equality: the determinism contract.
        EXPECT_EQ(std::memcmp(&acc[j], &want[j], sizeof(double)), 0)
            << simd::LevelName(level) << " n=" << n << " lane " << j << " got " << acc[j]
            << " want " << want[j];
      }
    }
  }
}

// Split accumulation (consecutive blocks with multiple-of-4 lengths) must
// equal one whole-range call: the estimators feed the kernel in cache
// blocks, and the block size must not leak into the result.
TEST(SimdKernels, KlAccumulateBlockSizeInvariant) {
  LevelGuard guard;
  Rng rng(17);
  const std::size_t n = 1000;
  std::vector<double> count(n), fstar(n);
  for (auto& c : count) c = 1.0 + rng.Below(1000);
  for (auto& f : fstar) f = (1.0 + rng.Below(100000)) / 256.0;
  for (Level level : RunnableLevels()) {
    simd::ForceLevel(level);
    double whole[4] = {0, 0, 0, 0};
    simd::KlAccumulate(count.data(), fstar.data(), 1000.0, n, whole);
    for (std::size_t block : {4u, 64u, 256u}) {
      double split[4] = {0, 0, 0, 0};
      for (std::size_t b = 0; b < n; b += block) {
        simd::KlAccumulate(count.data() + b, fstar.data() + b, 1000.0,
                           b + block < n ? block : n - b, split);
      }
      for (int j = 0; j < 4; ++j) {
        EXPECT_EQ(std::memcmp(&split[j], &whole[j], sizeof(double)), 0)
            << simd::LevelName(level) << " block=" << block << " lane " << j;
      }
    }
  }
}

TEST(SimdKernels, HilbertEncodeBlockMatchesCurveEncode) {
  LevelGuard guard;
  Rng rng(18);
  struct Case {
    std::uint32_t dims, bits, shift;
  };
  const Case cases[] = {{2, 7, 0}, {3, 5, 0}, {4, 7, 1}, {7, 7, 0}, {7, 9, 2}, {16, 4, 0}};
  for (const Case& c : cases) {
    HilbertCurve curve(c.dims, c.bits);
    for (std::size_t n : kLengths) {
      // Columns with one row of unaligned slack; raw values stay below
      // 2^(bits + shift) so the shifted coordinates fit the grid.
      std::vector<std::vector<std::uint32_t>> columns(c.dims,
                                                      std::vector<std::uint32_t>(n + 1));
      std::vector<const std::uint32_t*> cols(c.dims);
      for (std::uint32_t a = 0; a < c.dims; ++a) {
        for (auto& v : columns[a]) v = rng.Below(1u << (c.bits + c.shift));
        cols[a] = columns[a].data();
      }
      std::vector<std::uint64_t> want(n);
      std::vector<std::uint32_t> coords(c.dims);
      for (std::size_t r = 0; r < n; ++r) {
        for (std::uint32_t a = 0; a < c.dims; ++a) coords[a] = cols[a][1 + r] >> c.shift;
        want[r] = curve.Encode(coords);
      }
      for (Level level : RunnableLevels()) {
        std::vector<std::uint64_t> got(n);
        simd::ForceLevel(level);
        simd::HilbertEncodeBlock(cols.data(), c.dims, c.bits, c.shift, 1, n, got.data());
        EXPECT_EQ(got, want) << simd::LevelName(level) << " dims=" << c.dims
                             << " bits=" << c.bits << " n=" << n;
      }
    }
  }
}

}  // namespace
}  // namespace ldv
