// Tests for the generalized l-dimensional matching reduction (the l > 3
// extension of Theorem 1).

#include "hardness/k_dim_matching.h"

#include <gtest/gtest.h>

#include <set>

#include "anonymity/eligibility.h"
#include "anonymity/generalization.h"
#include "hardness/exact_solver.h"

namespace ldv {
namespace {

TEST(KDm, PlantedInstancesAreYesForSeveralK) {
  Rng rng(11);
  for (std::uint32_t k : {3u, 4u, 5u}) {
    for (int trial = 0; trial < 5; ++trial) {
      KDmInstance inst = MakePlantedKDmInstance(k, 2 + rng.Below(3), rng.Below(4), rng);
      ASSERT_TRUE(inst.Valid());
      auto solution = SolveKDm(inst);
      ASSERT_TRUE(solution.has_value()) << "k=" << k;
      // Verify coverage per dimension.
      for (std::uint32_t dim = 0; dim < k; ++dim) {
        std::set<std::uint32_t> covered;
        for (std::uint32_t idx : *solution) covered.insert(inst.points[idx][dim]);
        EXPECT_EQ(covered.size(), inst.n);
      }
    }
  }
}

TEST(KDm, DetectsNoInstance) {
  KDmInstance inst;
  inst.k = 4;
  inst.n = 2;
  inst.points = {{0, 0, 0, 0}, {0, 1, 1, 1}};  // value 1 of D1 uncovered
  ASSERT_TRUE(inst.Valid());
  EXPECT_FALSE(SolveKDm(inst).has_value());
}

TEST(KDm, ValidRejectsBadPoints) {
  KDmInstance wrong_arity;
  wrong_arity.k = 3;
  wrong_arity.n = 2;
  wrong_arity.points = {{0, 0}};
  EXPECT_FALSE(wrong_arity.Valid());
  KDmInstance dup;
  dup.k = 3;
  dup.n = 2;
  dup.points = {{0, 0, 0}, {0, 0, 0}};
  EXPECT_FALSE(dup.Valid());
}

TEST(KDmReduction, TableStructureGeneralizesProperties) {
  Rng rng(13);
  KDmInstance inst = MakePlantedKDmInstance(4, 3, 2, rng);
  Table table = BuildKDimReductionTable(inst);
  EXPECT_EQ(table.size(), 12u);           // k * n rows
  EXPECT_EQ(table.qi_count(), inst.d());  // one attribute per point
  // Property 1 generalized: each attribute has exactly k zero rows.
  for (AttrId a = 0; a < table.qi_count(); ++a) {
    std::uint32_t zeros = 0;
    for (RowId r = 0; r < table.size(); ++r) {
      if (table.qi(r, a) == 0) ++zeros;
    }
    EXPECT_EQ(zeros, inst.k) << "attr " << a;
  }
  // Every row has a distinct SA value (m = k * n regime).
  EXPECT_EQ(table.DistinctSaCount(), table.size());
}

TEST(KDmReduction, MatchingInducesTargetStarGeneralization) {
  Rng rng(17);
  for (std::uint32_t k : {4u, 5u}) {
    KDmInstance inst = MakePlantedKDmInstance(k, 3, 2, rng);
    Table table = BuildKDimReductionTable(inst);
    auto matching = SolveKDm(inst);
    ASSERT_TRUE(matching.has_value());
    Partition partition = KDimPartitionFromMatching(inst, *matching);
    EXPECT_TRUE(partition.CoversExactly(table));
    EXPECT_TRUE(IsLDiverse(table, partition, k));
    EXPECT_EQ(PartitionStarCount(table, partition), KDimReductionTargetStars(inst));
  }
}

TEST(KDmReduction, Lemma3GeneralizedOnTinyInstances) {
  // l = 4: optimal 4-diverse generalization hits 4n(d-1) stars iff the
  // 4-dimensional matching is yes. n = 2 keeps the 8-row tables inside the
  // exhaustive solver's reach.
  Rng rng(19);
  int yes_seen = 0, no_seen = 0;
  for (int trial = 0; trial < 10; ++trial) {
    KDmInstance inst;
    inst.k = 4;
    inst.n = 2;
    // Random distinct points.
    std::set<std::vector<std::uint32_t>> seen;
    std::uint32_t want = 2 + rng.Below(3);
    while (inst.points.size() < want) {
      std::vector<std::uint32_t> p(4);
      for (auto& c : p) c = rng.Below(2);
      if (seen.insert(p).second) inst.points.push_back(p);
    }
    ASSERT_TRUE(inst.Valid());
    Table table = BuildKDimReductionTable(inst);
    bool is_yes = SolveKDm(inst).has_value();
    ExactStarResult opt = ExactStarMinimization(table, 4);
    std::uint64_t target = KDimReductionTargetStars(inst);
    if (is_yes) {
      ASSERT_TRUE(opt.feasible);
      EXPECT_EQ(opt.stars, target);
      ++yes_seen;
    } else {
      // A no-instance either cannot be 4-diversified at this cost or at
      // all; with every SA value distinct the table is always 4-eligible
      // (8 rows, all distinct), so only the star count distinguishes.
      ASSERT_TRUE(opt.feasible);
      EXPECT_GT(opt.stars, target);
      ++no_seen;
    }
  }
  EXPECT_GT(yes_seen, 0);
  EXPECT_GT(no_seen, 0);
}

}  // namespace
}  // namespace ldv
