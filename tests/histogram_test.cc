// Unit tests for SaHistogram and the l-eligibility predicate (Definition 2,
// Lemma 1).

#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ldv {
namespace {

TEST(SaHistogram, StartsEmpty) {
  SaHistogram h(5);
  EXPECT_EQ(h.domain_size(), 5u);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.PillarHeight(), 0u);
  EXPECT_TRUE(h.Pillars().empty());
  EXPECT_EQ(h.DistinctCount(), 0u);
}

TEST(SaHistogram, VectorConstructorMatchesPaperNotation) {
  // Q1 = (3,1,1,2,3) from the Section 5.3 example.
  SaHistogram h({3, 1, 1, 2, 3});
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.PillarHeight(), 3u);
  EXPECT_EQ(h.Pillars(), (std::vector<SaValue>{0, 4}));
  EXPECT_EQ(h.DistinctCount(), 5u);
  EXPECT_EQ(h.ToString(), "(3,1,1,2,3)");
}

TEST(SaHistogram, AddRemoveMaintainCounts) {
  SaHistogram h(3);
  h.Add(0, 2);
  h.Add(1);
  h.Add(2, 5);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 5u);
  EXPECT_EQ(h.total(), 8u);
  h.Remove(2, 4);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.PillarHeight(), 2u);
}

TEST(SaHistogramDeathTest, RemoveUnderflowAborts) {
  SaHistogram h(2);
  h.Add(0);
  EXPECT_DEATH(h.Remove(0, 2), "CHECK failed");
}

TEST(SaHistogram, EligibilityDefinition) {
  // |S| >= l * h(S): (2,1) has total 3, pillar 2.
  SaHistogram h({2, 1});
  EXPECT_TRUE(h.IsEligible(1));
  EXPECT_FALSE(h.IsEligible(2));
  // (2,2) is exactly 2-eligible.
  SaHistogram h2({2, 2});
  EXPECT_TRUE(h2.IsEligible(2));
  EXPECT_FALSE(h2.IsEligible(3));
}

TEST(SaHistogram, EmptyIsEligibleForAllL) {
  SaHistogram h(4);
  for (std::uint32_t l = 1; l <= 10; ++l) EXPECT_TRUE(h.IsEligible(l));
}

TEST(SaHistogram, MergePreservesCounts) {
  SaHistogram a({1, 2, 0});
  SaHistogram b({0, 1, 3});
  a.MergeFrom(b);
  EXPECT_EQ(a, SaHistogram({1, 3, 3}));
}

// Lemma 1 (monotonicity): the union of two l-eligible multisets is
// l-eligible. Randomized property sweep.
TEST(SaHistogram, Lemma1MonotonicityProperty) {
  Rng rng(42);
  for (int trial = 0; trial < 500; ++trial) {
    std::uint32_t m = 2 + rng.Below(6);
    std::uint32_t l = 1 + rng.Below(m);
    auto random_eligible = [&]() {
      SaHistogram h(m);
      for (int i = 0; i < 30; ++i) {
        SaValue v = rng.Below(m);
        h.Add(v);
        if (!h.IsEligible(l)) h.Remove(v);
      }
      return h;
    };
    SaHistogram s1 = random_eligible();
    SaHistogram s2 = random_eligible();
    ASSERT_TRUE(s1.IsEligible(l));
    ASSERT_TRUE(s2.IsEligible(l));
    s1.MergeFrom(s2);
    EXPECT_TRUE(s1.IsEligible(l)) << "Lemma 1 violated: " << s1.ToString() << " l=" << l;
  }
}

TEST(SaHistogram, PillarsAfterRemoval) {
  SaHistogram h({3, 3, 1});
  h.Remove(0);
  EXPECT_EQ(h.Pillars(), (std::vector<SaValue>{1}));
  h.Remove(1);
  EXPECT_EQ(h.Pillars(), (std::vector<SaValue>{0, 1}));
}

}  // namespace
}  // namespace ldv
