#!/usr/bin/env bash
# End-to-end gate for the `ldiv` CLI binary. Run by ctest (ldiv_e2e) and
# by CI's e2e-smoke job:
#
#   ldiv_e2e.sh <path-to-ldiv-binary> <repo-source-dir>
#
# For every registered algorithm: anonymize the committed micro CSV and
# check that the release and the JSON/CSV metrics reports exist and are
# well-formed; then repeat over the committed raw string-valued CSV
# (dictionary ingestion) and require decoded labels plus the dictionary
# sidecar in the outputs. Then run a 12-job sweep (all algorithms x l in
# {2,4}) through the batch driver at --threads=1,2,4 and require
# byte-identical --no-timings reports AND byte-identical per-job releases
# (deterministic, job-ordered output at any thread budget).
#
# LDIV_E2E_ONLY=threads skips everything but that last determinism
# section -- the TSan CI job runs just the threaded surface.
set -euo pipefail

BIN=$1
SRC=$2
INPUT="$SRC/tests/data/micro.csv"
SCHEMA='Age:79,Gender:2,Race:9|Income:50'
ONLY=${LDIV_E2E_ONLY:-}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

HAVE_PYTHON=0
command -v python3 > /dev/null && HAVE_PYTHON=1

check_json() {
  # Validate report shape: version, expected job count, every job feasible
  # with non-negative metrics.
  [ "$HAVE_PYTHON" = 1 ] || return 0
  python3 - "$1" "$2" << 'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
want_jobs = int(sys.argv[2])
assert report["ldiv_report_version"] == 1, "bad report version"
assert report["job_count"] == want_jobs, f"expected {want_jobs} jobs, got {report['job_count']}"
assert len(report["jobs"]) == want_jobs
for job in report["jobs"]:
    for key in ("algorithm", "methodology", "l", "feasible", "stars",
                "suppressed_tuples", "groups", "kl_divergence"):
        assert key in job, f"job {job.get('job')} is missing '{key}'"
    assert job["feasible"], f"job {job['job']} ({job['algorithm']}) infeasible"
    assert job["stars"] >= 0 and job["groups"] > 0
EOF
}

if [ "$ONLY" != "threads" ]; then

echo "== single runs: every registered algorithm =="
for algo in tp tp+ hilbert mondrian anatomy tds; do
  "$BIN" --algo="$algo" --l=2 --input="$INPUT" --schema="$SCHEMA" \
    --out="$TMP/$algo" 2> /dev/null
  [ -s "$TMP/$algo.csv" ] || { echo "FAIL: $algo wrote no release"; exit 1; }
  [ -s "$TMP/$algo.json" ] || { echo "FAIL: $algo wrote no JSON report"; exit 1; }
  [ -s "$TMP/${algo}_metrics.csv" ] || { echo "FAIL: $algo wrote no metrics CSV"; exit 1; }
  check_json "$TMP/$algo.json" 1
  echo "ok: $algo"
done
[ -s "$TMP/anatomy_sa.csv" ] || { echo "FAIL: anatomy wrote no sensitive table"; exit 1; }

echo "== raw string CSV: dictionary ingestion through every algorithm =="
RAW_INPUT="$SRC/tests/data/micro_raw.csv"
for algo in tp tp+ hilbert mondrian anatomy tds; do
  "$BIN" --algo="$algo" --l=2 --input="$RAW_INPUT" --format=raw \
    --out="$TMP/raw_$algo" 2> /dev/null
  [ -s "$TMP/raw_$algo.csv" ] || { echo "FAIL: raw $algo wrote no release"; exit 1; }
  grep -q "flu" "$TMP/raw_$algo.csv" "$TMP/raw_${algo}_sa.csv" 2> /dev/null ||
    { echo "FAIL: raw $algo release holds no decoded labels"; exit 1; }
  [ -s "$TMP/raw_${algo}_dict.csv" ] ||
    { echo "FAIL: raw $algo wrote no dictionary sidecar"; exit 1; }
  grep -q "^City,0," "$TMP/raw_${algo}_dict.csv" ||
    { echo "FAIL: raw $algo dictionary sidecar is malformed"; exit 1; }
  check_json "$TMP/raw_$algo.json" 1
  echo "ok: raw $algo"
done
# Format auto-detection: a string-valued file loads without --schema or
# --format, and the release decodes to the same labels.
"$BIN" --algo=mondrian --l=2 --input="$RAW_INPUT" --out="$TMP/raw_auto" 2> /dev/null
grep -q "flu" "$TMP/raw_auto.csv" || { echo "FAIL: auto-detected raw release"; exit 1; }

echo "== usage errors exit with the documented codes, never an abort =="
expect_exit() {
  local want=$1
  shift
  local got=0
  "$@" > /dev/null 2>&1 || got=$?
  [ "$got" -eq "$want" ] ||
    { echo "FAIL: expected exit $want, got $got for: $*"; exit 1; }
}
expect_exit 1 "$BIN" --algo=bogus --out="$TMP/x"
expect_exit 1 "$BIN" --input="$INPUT" --out="$TMP/x"
expect_exit 1 "$BIN" --dataset=bogus --out="$TMP/x"
expect_exit 1 "$BIN" --d=9 --out="$TMP/x"
expect_exit 1 "$BIN" --input="$INPUT" --format=parquet --out="$TMP/x"
expect_exit 1 "$BIN" --input="$RAW_INPUT" --format=raw --schema="$SCHEMA" --out="$TMP/x"
# Structured CSV errors surface as one-line messages with positions.
printf 'Age,Gender,Race,Income\n1,0,notanumber,0\n' > "$TMP/bad.csv"
expect_exit 3 "$BIN" --input="$TMP/bad.csv" --schema="$SCHEMA" --out="$TMP/x"
ERRMSG=$("$BIN" --input="$TMP/bad.csv" --schema="$SCHEMA" --out="$TMP/x" 2>&1 || true)
echo "$ERRMSG" | grep -q "bad.csv:2: column 3" ||
  { echo "FAIL: CSV parse error lost its line/column position: $ERRMSG"; exit 1; }
expect_exit 2 "$BIN" --algo=tp --l=100000 --input="$INPUT" --schema="$SCHEMA" --out="$TMP/x"
expect_exit 3 "$BIN" --input="$TMP/no_such_file.csv" --schema="$SCHEMA" --out="$TMP/x"
expect_exit 1 "$BIN" --threads=lots --out="$TMP/x"

echo "== memory budget: out-of-core runs are byte-identical =="
# Malformed sizes and sub-floor budgets are usage errors, caught up front.
expect_exit 1 "$BIN" --memory-budget=bogus --out="$TMP/x"
expect_exit 1 "$BIN" --memory-budget=1M --out="$TMP/x"
# The micro CSV fits its budget, so it stays on the in-RAM readers (and
# caches normally); the big synthetic run below is what goes paged.
"$BIN" --algo=all --l=2 --input="$INPUT" --schema="$SCHEMA" --sweep \
  --write-releases --no-timings --out="$TMP/csvref" 2> /dev/null
LDIV_PAGE_BYTES=4096 "$BIN" --algo=all --l=2 --input="$INPUT" --schema="$SCHEMA" \
  --sweep --write-releases --no-timings --memory-budget=8M \
  --out="$TMP/csvbud" 2> /dev/null
# Synthetic table big enough that the 8M budget cannot hold the grouping
# scratch (32n = 12.8M): the GroupedTable build streams through the
# external sorter and ingestion goes through the page cache.
"$BIN" --algo=all --l=4 --n=400000 --d=3 --sweep --write-releases \
  --no-timings --out="$TMP/bigref" 2> /dev/null
LDIV_PAGE_BYTES=4096 "$BIN" --algo=all --l=4 --n=400000 --d=3 --sweep \
  --write-releases --no-timings --memory-budget=8M \
  --out="$TMP/bigbud" 2> /dev/null
for pair in "csvref csvbud" "bigref bigbud"; do
  set -- $pair
  check_json "$TMP/$1.json" 6
  cmp "$TMP/$1.json" "$TMP/$2.json" ||
    { echo "FAIL: report depends on --memory-budget ($1)"; exit 1; }
  cmp "$TMP/$1_metrics.csv" "$TMP/$2_metrics.csv" ||
    { echo "FAIL: metrics depend on --memory-budget ($1)"; exit 1; }
  for k in $(seq 0 5); do
    cmp "$TMP/$1.job$k.csv" "$TMP/$2.job$k.csv" ||
      { echo "FAIL: release job$k depends on --memory-budget ($1)"; exit 1; }
    if [ -f "$TMP/$1.job${k}_sa.csv" ]; then
      cmp "$TMP/$1.job${k}_sa.csv" "$TMP/$2.job${k}_sa.csv" ||
        { echo "FAIL: sensitive table job$k depends on --memory-budget ($1)"; exit 1; }
    fi
  done
  echo "ok: $1 == $2"
done

fi  # LDIV_E2E_ONLY != threads

echo "== sweep: 12-job grid, deterministic across thread budgets =="
# All six algorithms x l in {2,4}, with per-job releases, at --threads=1,
# 2 and 4: the --no-timings reports and every release (including the
# Anatomy sensitive tables) must be byte-identical -- the thread budget
# feeds both the batch workers and the in-kernel parallelism, and neither
# may leak into any output.
for threads in 1 2 4; do
  "$BIN" --algo=all --l=2,4 --input="$INPUT" --schema="$SCHEMA" --sweep \
    --write-releases --threads="$threads" --no-timings \
    --out="$TMP/sweep$threads" 2> /dev/null
  check_json "$TMP/sweep$threads.json" 12
done
for threads in 2 4; do
  cmp "$TMP/sweep1.json" "$TMP/sweep$threads.json" ||
    { echo "FAIL: sweep JSON depends on --threads=$threads"; exit 1; }
  cmp "$TMP/sweep1_metrics.csv" "$TMP/sweep${threads}_metrics.csv" ||
    { echo "FAIL: sweep metrics depend on --threads=$threads"; exit 1; }
  for k in $(seq 0 11); do
    cmp "$TMP/sweep1.job$k.csv" "$TMP/sweep$threads.job$k.csv" ||
      { echo "FAIL: release job$k depends on --threads=$threads"; exit 1; }
    if [ -f "$TMP/sweep1.job${k}_sa.csv" ]; then
      cmp "$TMP/sweep1.job${k}_sa.csv" "$TMP/sweep$threads.job${k}_sa.csv" ||
        { echo "FAIL: sensitive table job$k depends on --threads=$threads"; exit 1; }
    fi
  done
done
# The thread budget is an execution detail: it may only surface next to
# the wall-clock fields, never in --no-timings output.
grep -q '"threads"' "$TMP/sweep1.json" &&
  { echo "FAIL: --no-timings report records the thread budget"; exit 1; }
"$BIN" --algo=mondrian --l=2 --input="$INPUT" --schema="$SCHEMA" \
  --threads=2 --out="$TMP/timed" 2> /dev/null
grep -q '"threads": 2' "$TMP/timed.json" ||
  { echo "FAIL: timed report does not record the thread budget"; exit 1; }

echo "ldiv e2e: all checks passed"
