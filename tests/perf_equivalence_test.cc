// Equivalence regression tests for the allocation-lean hot-path rewrites:
// the in-place Mondrian, the flat-map KL estimators and the
// workspace-threaded solvers must reproduce the seed implementations'
// outputs. The reference implementations below are verbatim copies of the
// pre-rewrite (seed) algorithms, kept simple and allocation-heavy on
// purpose -- they are the spec.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "anonymity/eligibility.h"
#include "anonymity/generalization.h"
#include "anonymity/multidim.h"
#include "anonymity/partition.h"
#include "common/grouped_table.h"
#include "common/histogram.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "common/workspace.h"
#include "core/anonymizer.h"
#include "core/tp.h"
#include "data/acs_generator.h"
#include "data/acs_schema.h"
#include "hilbert/hilbert_partitioner.h"
#include "metrics/kl_divergence.h"
#include "mondrian/mondrian.h"
#include "test_util.h"

namespace ldv {
namespace {

// ---------------------------------------------------------------------------
// Reference Mondrian: the seed's copy-and-sort recursion.
// ---------------------------------------------------------------------------

class ReferenceMondrianState {
 public:
  ReferenceMondrianState(const Table& table, std::uint32_t l, BoxGeneralization* out,
                         ldv::Partition* partition)
      : table_(table), l_(l), out_(out), partition_(partition) {}

  void Recurse(std::vector<RowId> rows, QiBox box) {
    const std::size_t d = table_.qi_count();
    std::vector<std::pair<double, AttrId>> spreads;
    spreads.reserve(d);
    for (AttrId a = 0; a < d; ++a) {
      auto [min_it, max_it] = std::minmax_element(
          rows.begin(), rows.end(),
          [&](RowId x, RowId y) { return table_.qi(x, a) < table_.qi(y, a); });
      double spread =
          static_cast<double>(table_.qi(*max_it, a) - table_.qi(*min_it, a)) /
          static_cast<double>(table_.schema().qi(a).domain_size);
      spreads.push_back({spread, a});
    }
    std::sort(spreads.begin(), spreads.end(), [](const auto& x, const auto& y) {
      return x.first != y.first ? x.first > y.first : x.second < y.second;
    });

    for (const auto& [spread, attr] : spreads) {
      if (spread <= 0.0) break;
      Value split = MedianSplitValue(rows, attr);
      if (split == 0) continue;
      std::vector<RowId> left, right;
      SaHistogram left_hist(table_.schema().sa_domain_size());
      SaHistogram right_hist(table_.schema().sa_domain_size());
      for (RowId r : rows) {
        if (table_.qi(r, attr) < split) {
          left.push_back(r);
          left_hist.Add(table_.sa(r));
        } else {
          right.push_back(r);
          right_hist.Add(table_.sa(r));
        }
      }
      if (left.empty() || right.empty()) continue;
      if (!left_hist.IsEligible(l_) || !right_hist.IsEligible(l_)) continue;
      QiBox left_box = box, right_box = box;
      left_box.hi[attr] = split;
      right_box.lo[attr] = split;
      Recurse(std::move(left), std::move(left_box));
      Recurse(std::move(right), std::move(right_box));
      return;
    }
    partition_->AddGroup(rows);
    out_->AddGroup(std::move(box), std::move(rows));
  }

 private:
  Value MedianSplitValue(const std::vector<RowId>& rows, AttrId attr) const {
    std::vector<Value> values;
    values.reserve(rows.size());
    for (RowId r : rows) values.push_back(table_.qi(r, attr));
    std::sort(values.begin(), values.end());
    if (values.front() == values.back()) return 0;
    Value median = values[values.size() / 2];
    return median > values.front() ? median : median + 1;
  }

  const Table& table_;
  std::uint32_t l_;
  BoxGeneralization* out_;
  ldv::Partition* partition_;
};

MondrianResult ReferenceMondrian(const Table& table, std::uint32_t l) {
  MondrianResult result;
  if (table.empty()) {
    result.feasible = true;
    return result;
  }
  if (!IsTableEligible(table, l)) return result;
  std::vector<RowId> all(table.size());
  for (RowId r = 0; r < table.size(); ++r) all[r] = r;
  QiBox root;
  root.lo.assign(table.qi_count(), 0);
  root.hi.resize(table.qi_count());
  for (AttrId a = 0; a < table.qi_count(); ++a) {
    root.hi[a] = static_cast<Value>(table.schema().qi(a).domain_size);
  }
  ReferenceMondrianState state(table, l, &result.generalization, &result.partition);
  state.Recurse(std::move(all), std::move(root));
  result.feasible = true;
  return result;
}

// ---------------------------------------------------------------------------
// Reference KL estimators: the seed's unordered_map accumulation.
// ---------------------------------------------------------------------------

class ReferencePointPacker {
 public:
  explicit ReferencePointPacker(const Schema& schema) {
    std::uint64_t stride = 1;
    for (std::size_t a = 0; a < schema.qi_count(); ++a) {
      strides_.push_back(stride);
      stride *= schema.qi(static_cast<AttrId>(a)).domain_size;
    }
    sa_stride_ = stride;
  }

  std::uint64_t Pack(std::span<const Value> qi, SaValue sa) const {
    std::uint64_t key = static_cast<std::uint64_t>(sa) * sa_stride_;
    for (std::size_t a = 0; a < qi.size(); ++a) key += strides_[a] * qi[a];
    return key;
  }

 private:
  std::vector<std::uint64_t> strides_;
  std::uint64_t sa_stride_ = 0;
};

struct ReferencePointCount {
  RowId representative = 0;
  std::uint32_t count = 0;
};

std::unordered_map<std::uint64_t, ReferencePointCount> ReferenceDistinctPoints(
    const Table& table, const ReferencePointPacker& packer) {
  std::unordered_map<std::uint64_t, ReferencePointCount> points;
  points.reserve(table.size());
  for (RowId r = 0; r < table.size(); ++r) {
    std::uint64_t key = packer.Pack(table.qi_row(r), table.sa(r));
    auto [it, inserted] = points.try_emplace(key, ReferencePointCount{r, 0});
    ++it->second.count;
  }
  return points;
}

double ReferenceKlSuppression(const Table& table, const GeneralizedTable& generalized) {
  if (table.empty()) return 0.0;
  const Schema& schema = table.schema();
  const std::size_t d = table.qi_count();
  const double n = static_cast<double>(table.size());

  struct MaskBucket {
    std::vector<AttrId> unstarred;
    std::vector<std::uint64_t> strides;
    std::uint64_t sa_stride = 0;
    std::unordered_map<std::uint64_t, double> mass;
  };
  std::unordered_map<std::uint32_t, MaskBucket> buckets;

  auto bucket_for_mask = [&](std::uint32_t mask) -> MaskBucket& {
    auto [it, inserted] = buckets.try_emplace(mask);
    if (inserted) {
      MaskBucket& b = it->second;
      std::uint64_t stride = 1;
      for (AttrId a = 0; a < d; ++a) {
        if ((mask >> a) & 1u) continue;
        b.unstarred.push_back(a);
        b.strides.push_back(stride);
        stride *= schema.qi(a).domain_size;
      }
      b.sa_stride = stride;
    }
    return it->second;
  };

  for (GroupId g = 0; g < generalized.group_count(); ++g) {
    const std::vector<Value>& sig = generalized.signature(g);
    std::uint32_t mask = 0;
    double volume = 1.0;
    for (AttrId a = 0; a < d; ++a) {
      if (IsStar(sig[a])) {
        mask |= 1u << a;
        volume *= static_cast<double>(schema.qi(a).domain_size);
      }
    }
    MaskBucket& bucket = bucket_for_mask(mask);
    std::unordered_map<SaValue, std::uint32_t> sa_counts;
    for (RowId r : generalized.rows(g)) ++sa_counts[table.sa(r)];
    std::uint64_t base = 0;
    for (std::size_t i = 0; i < bucket.unstarred.size(); ++i) {
      base += bucket.strides[i] * sig[bucket.unstarred[i]];
    }
    for (const auto& [sa, count] : sa_counts) {
      bucket.mass[base + bucket.sa_stride * sa] += static_cast<double>(count) / volume;
    }
  }

  ReferencePointPacker packer(schema);
  double kl = 0.0;
  for (const auto& [key, pc] : ReferenceDistinctPoints(table, packer)) {
    (void)key;
    auto qi = table.qi_row(pc.representative);
    SaValue sa = table.sa(pc.representative);
    double fstar_n = 0.0;
    for (auto& [mask, bucket] : buckets) {
      (void)mask;
      std::uint64_t probe = static_cast<std::uint64_t>(sa) * bucket.sa_stride;
      for (std::size_t i = 0; i < bucket.unstarred.size(); ++i) {
        probe += bucket.strides[i] * qi[bucket.unstarred[i]];
      }
      auto it = bucket.mass.find(probe);
      if (it != bucket.mass.end()) fstar_n += it->second;
    }
    double f = static_cast<double>(pc.count) / n;
    kl += f * std::log(static_cast<double>(pc.count) / fstar_n);
  }
  return kl;
}

double ReferenceKlMultiDim(const Table& table, const BoxGeneralization& gen) {
  if (table.empty()) return 0.0;
  const double n = static_cast<double>(table.size());
  const std::size_t m = table.schema().sa_domain_size();

  std::vector<std::vector<double>> mass(gen.group_count());
  for (std::size_t g = 0; g < gen.group_count(); ++g) {
    mass[g].assign(m, 0.0);
    double volume = gen.box(g).Volume();
    for (RowId r : gen.rows(g)) mass[g][table.sa(r)] += 1.0 / volume;
  }

  const std::size_t attr0_domain = table.schema().qi(0).domain_size;
  std::vector<std::vector<std::uint32_t>> candidates(attr0_domain);
  for (std::size_t g = 0; g < gen.group_count(); ++g) {
    for (Value v = gen.box(g).lo[0]; v < gen.box(g).hi[0]; ++v) {
      candidates[v].push_back(static_cast<std::uint32_t>(g));
    }
  }

  ReferencePointPacker packer(table.schema());
  double kl = 0.0;
  for (const auto& [key, pc] : ReferenceDistinctPoints(table, packer)) {
    (void)key;
    auto qi = table.qi_row(pc.representative);
    SaValue sa = table.sa(pc.representative);
    double fstar_n = 0.0;
    for (std::uint32_t g : candidates[qi[0]]) {
      if (gen.box(g).Contains(qi)) fstar_n += mass[g][sa];
    }
    double f = static_cast<double>(pc.count) / n;
    kl += f * std::log(static_cast<double>(pc.count) / fstar_n);
  }
  return kl;
}

// ---------------------------------------------------------------------------
// Equivalence tests
// ---------------------------------------------------------------------------

void ExpectSamePartition(const Partition& a, const Partition& b) {
  ASSERT_EQ(a.group_count(), b.group_count());
  for (GroupId g = 0; g < a.group_count(); ++g) {
    EXPECT_EQ(a.group(g), b.group(g)) << "group " << g;
  }
}

void ExpectSameBoxes(const BoxGeneralization& a, const BoxGeneralization& b) {
  ASSERT_EQ(a.group_count(), b.group_count());
  for (std::size_t g = 0; g < a.group_count(); ++g) {
    EXPECT_EQ(a.box(g).lo, b.box(g).lo) << "box " << g;
    EXPECT_EQ(a.box(g).hi, b.box(g).hi) << "box " << g;
    EXPECT_EQ(a.rows(g), b.rows(g)) << "box rows " << g;
  }
}

TEST(MondrianEquivalence, MatchesSeedOnRandomTables) {
  Rng rng(2026);
  struct Shape {
    std::size_t n;
    std::vector<std::size_t> qi_domains;
    std::size_t m;
    std::uint32_t l;
  };
  const Shape shapes[] = {
      {400, {16, 8, 4}, 6, 3},
      {800, {32, 2, 9}, 8, 2},
      {1500, {79, 2, 9, 17}, 10, 6},
      {300, {6, 6}, 5, 2},
      {64, {4}, 2, 2},
  };
  for (const Shape& shape : shapes) {
    Table table = testutil::RandomEligibleTable(rng, shape.n, shape.qi_domains, shape.m, shape.l);
    MondrianResult expected = ReferenceMondrian(table, shape.l);
    Workspace ws;
    MondrianResult actual = MondrianAnonymize(table, shape.l, &ws);
    ASSERT_EQ(expected.feasible, actual.feasible);
    if (!expected.feasible) continue;
    ExpectSamePartition(expected.partition, actual.partition);
    ExpectSameBoxes(expected.generalization, actual.generalization);
  }
}

TEST(MondrianEquivalence, MatchesSeedOnAcsWorkload) {
  Table sal = GenerateSal(3000, 1);
  Table t = sal.ProjectQi({kAge, kGender, kRace, kEducation});
  MondrianResult expected = ReferenceMondrian(t, 6);
  MondrianResult actual = MondrianAnonymize(t, 6);
  ASSERT_TRUE(expected.feasible);
  ASSERT_TRUE(actual.feasible);
  ExpectSamePartition(expected.partition, actual.partition);
  ExpectSameBoxes(expected.generalization, actual.generalization);
}

TEST(KlEquivalence, SuppressionMatchesSeedAcrossAlgorithms) {
  Rng rng(4051);
  for (int trial = 0; trial < 4; ++trial) {
    Table table = testutil::RandomEligibleTable(rng, 300, {8, 6, 4}, 5, 3);
    for (Algorithm algo : {Algorithm::kTp, Algorithm::kTpPlus, Algorithm::kHilbert}) {
      AnonymizationOutcome outcome = Anonymize(table, 3, algo);
      ASSERT_TRUE(outcome.feasible);
      GeneralizedTable gen(table, outcome.partition);
      double expected = ReferenceKlSuppression(table, gen);
      double actual = KlDivergenceSuppression(table, gen);
      // The flat rewrite sums in first-occurrence order instead of hash-
      // bucket order, so agreement is to rounding, not bit-for-bit.
      EXPECT_NEAR(actual, expected, 1e-9) << "trial " << trial;
    }
  }
}

TEST(KlEquivalence, MultiDimMatchesSeedOnMondrianBoxes) {
  Rng rng(4053);
  for (int trial = 0; trial < 4; ++trial) {
    Table table = testutil::RandomEligibleTable(rng, 500, {16, 9, 5}, 6, 2);
    MondrianResult mondrian = MondrianAnonymize(table, 2);
    ASSERT_TRUE(mondrian.feasible);
    double expected = ReferenceKlMultiDim(table, mondrian.generalization);
    double actual = KlDivergenceMultiDim(table, mondrian.generalization);
    EXPECT_NEAR(actual, expected, 1e-9) << "trial " << trial;
  }
}

TEST(WorkspaceEquivalence, ReusedWorkspaceGivesIdenticalOutcomes) {
  // Run every algorithm three ways -- fresh workspace, first reuse, second
  // reuse -- and require bit-identical outcomes: a workspace must never
  // leak state between solves.
  Rng rng(4055);
  Table table = testutil::RandomEligibleTable(rng, 400, {8, 8, 3}, 6, 3);
  Workspace ws;
  for (Algorithm algo : kAllAlgorithms) {
    AnonymizationOutcome fresh = Anonymize(table, 3, algo, AnonymizerOptions{});
    AnonymizationOutcome reused1 = Anonymize(table, 3, algo, AnonymizerOptions{}, &ws);
    AnonymizationOutcome reused2 = Anonymize(table, 3, algo, AnonymizerOptions{}, &ws);
    ASSERT_TRUE(fresh.feasible) << AlgorithmName(algo);
    for (const AnonymizationOutcome* outcome : {&reused1, &reused2}) {
      ASSERT_TRUE(outcome->feasible) << AlgorithmName(algo);
      EXPECT_EQ(fresh.stars, outcome->stars) << AlgorithmName(algo);
      EXPECT_EQ(fresh.suppressed_tuples, outcome->suppressed_tuples) << AlgorithmName(algo);
      EXPECT_EQ(fresh.kl_divergence, outcome->kl_divergence) << AlgorithmName(algo);
      ExpectSamePartition(fresh.partition, outcome->partition);
    }
  }
}

// ---------------------------------------------------------------------------
// Thread-count equivalence: the intra-run parallel kernels must produce
// byte-identical output at any thread budget. The tables are large enough
// that every parallel path actually engages (multiple ParallelFor chunks,
// a Mondrian frontier, several KL reduction chunks) even though the
// sequential references below run the same code inline at budget 1.
// ---------------------------------------------------------------------------

// Restores the process-wide thread budget however a test exits.
class ThreadCountEquivalence : public ::testing::Test {
 protected:
  void TearDown() override { SetThreadBudget(0); }
};

TEST_F(ThreadCountEquivalence, KernelsAreByteIdenticalAcrossThreadBudgets) {
  Table sal = GenerateSal(20000, 1);
  Table t = sal.ProjectQi({kAge, kGender, kRace, kEducation});
  HilbertOptions dp_options;
  dp_options.splitter = HilbertOptions::Splitter::kWindowDp;

  SetThreadBudget(1);
  Workspace ref_ws;
  HilbertResult greedy_ref = HilbertAnonymize(t, 6, {}, &ref_ws);
  HilbertResult dp_ref = HilbertAnonymize(t, 6, dp_options, &ref_ws);
  MondrianResult mondrian_ref = MondrianAnonymize(t, 6, &ref_ws);
  GroupedTable grouped_ref(t, &ref_ws);
  TpResult tp = RunTp(t, 6);
  GeneralizedTable generalized(t, tp.ToPartition());
  const double kl_suppression_ref = KlDivergenceSuppression(t, generalized);
  const double kl_multidim_ref = KlDivergenceMultiDim(t, mondrian_ref.generalization);

  for (unsigned threads : {2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SetThreadBudget(threads);
    Workspace ws;

    HilbertResult greedy = HilbertAnonymize(t, 6, {}, &ws);
    ExpectSamePartition(greedy_ref.partition, greedy.partition);
    HilbertResult dp = HilbertAnonymize(t, 6, dp_options, &ws);
    ExpectSamePartition(dp_ref.partition, dp.partition);

    MondrianResult mondrian = MondrianAnonymize(t, 6, &ws);
    ExpectSamePartition(mondrian_ref.partition, mondrian.partition);
    ExpectSameBoxes(mondrian_ref.generalization, mondrian.generalization);

    GroupedTable grouped(t, &ws);
    ASSERT_EQ(grouped_ref.group_count(), grouped.group_count());
    for (GroupId g = 0; g < grouped_ref.group_count(); ++g) {
      const QiGroup& ref = grouped_ref.group(g);
      const QiGroup& got = grouped.group(g);
      ASSERT_TRUE(std::ranges::equal(ref.qi_values, got.qi_values)) << "group " << g;
      ASSERT_TRUE(std::ranges::equal(ref.rows, got.rows)) << "group " << g;
      ASSERT_TRUE(std::ranges::equal(ref.sa_runs, got.sa_runs)) << "group " << g;
    }

    // Bit-equality, not near-equality: the estimators' chunk geometry and
    // combine order are fixed, so the doubles cannot drift.
    EXPECT_EQ(KlDivergenceSuppression(t, generalized), kl_suppression_ref);
    EXPECT_EQ(KlDivergenceMultiDim(t, mondrian.generalization), kl_multidim_ref);
  }
}

TEST_F(ThreadCountEquivalence, OutcomesAreBitIdenticalAcrossThreadBudgets) {
  // The full Anonymize path (solve + shared post-processing) for every
  // registered algorithm, budget 1 vs oversubscribed budgets.
  Table sal = GenerateSal(12000, 1);
  Table t = sal.ProjectQi({kAge, kRace, kEducation});

  SetThreadBudget(1);
  std::vector<AnonymizationOutcome> reference;
  for (Algorithm algo : kAllAlgorithms) {
    reference.push_back(Anonymize(t, 4, algo, AnonymizerOptions{}));
    ASSERT_TRUE(reference.back().feasible) << AlgorithmName(algo);
  }

  for (unsigned threads : {2u, 4u}) {
    SetThreadBudget(threads);
    Workspace ws;
    for (std::size_t i = 0; i < kAllAlgorithms.size(); ++i) {
      const Algorithm algo = kAllAlgorithms[i];
      SCOPED_TRACE(std::string(AlgorithmName(algo)) + " threads=" + std::to_string(threads));
      AnonymizationOutcome outcome = Anonymize(t, 4, algo, AnonymizerOptions{}, &ws);
      ASSERT_TRUE(outcome.feasible);
      EXPECT_EQ(reference[i].stars, outcome.stars);
      EXPECT_EQ(reference[i].suppressed_tuples, outcome.suppressed_tuples);
      EXPECT_EQ(reference[i].kl_divergence, outcome.kl_divergence);
      ExpectSamePartition(reference[i].partition, outcome.partition);
    }
  }
}

// Restores both the thread budget and the SIMD dispatch level however a
// test exits.
class SimdEquivalence : public ::testing::Test {
 protected:
  void TearDown() override {
    SetThreadBudget(0);
    simd::ForceLevel(simd::DetectedLevel());
  }
};

TEST_F(SimdEquivalence, OutcomesAreBitIdenticalAcrossSimdLevelsAndThreads) {
  // The full {scalar, sse2, avx2} x {1, 2, 4}-thread matrix (levels above
  // DetectedLevel() are skipped on hosts that lack them). The scalar
  // 1-thread corner is the reference; every other cell must reproduce its
  // releases and KL doubles bit-for-bit -- the determinism contract of the
  // SIMD layer, not just of the thread scheduler.
  Table sal = GenerateSal(12000, 1);
  Table t = sal.ProjectQi({kAge, kRace, kEducation});

  simd::ForceLevel(simd::Level::kScalar);
  SetThreadBudget(1);
  std::vector<AnonymizationOutcome> reference;
  for (Algorithm algo : kAllAlgorithms) {
    reference.push_back(Anonymize(t, 4, algo, AnonymizerOptions{}));
    ASSERT_TRUE(reference.back().feasible) << AlgorithmName(algo);
  }
  Workspace ref_ws;
  GroupedTable grouped_ref(t, &ref_ws);

  for (simd::Level level : {simd::Level::kScalar, simd::Level::kSse2, simd::Level::kAvx2}) {
    if (level > simd::DetectedLevel()) continue;
    simd::ForceLevel(level);
    ASSERT_EQ(simd::ActiveLevel(), level);
    for (unsigned threads : {1u, 2u, 4u}) {
      SCOPED_TRACE(std::string("simd=") + simd::LevelName(level) +
                   " threads=" + std::to_string(threads));
      SetThreadBudget(threads);
      Workspace ws;

      GroupedTable grouped(t, &ws);
      ASSERT_EQ(grouped_ref.group_count(), grouped.group_count());
      for (GroupId g = 0; g < grouped_ref.group_count(); ++g) {
        const QiGroup& ref = grouped_ref.group(g);
        const QiGroup& got = grouped.group(g);
        ASSERT_TRUE(std::ranges::equal(ref.qi_values, got.qi_values)) << "group " << g;
        ASSERT_TRUE(std::ranges::equal(ref.rows, got.rows)) << "group " << g;
        ASSERT_TRUE(std::ranges::equal(ref.sa_runs, got.sa_runs)) << "group " << g;
      }

      for (std::size_t i = 0; i < kAllAlgorithms.size(); ++i) {
        const Algorithm algo = kAllAlgorithms[i];
        AnonymizationOutcome outcome = Anonymize(t, 4, algo, AnonymizerOptions{}, &ws);
        ASSERT_TRUE(outcome.feasible) << AlgorithmName(algo);
        EXPECT_EQ(reference[i].stars, outcome.stars) << AlgorithmName(algo);
        EXPECT_EQ(reference[i].suppressed_tuples, outcome.suppressed_tuples)
            << AlgorithmName(algo);
        EXPECT_EQ(reference[i].kl_divergence, outcome.kl_divergence) << AlgorithmName(algo);
        ExpectSamePartition(reference[i].partition, outcome.partition);
      }
    }
  }
}

TEST(WorkspaceEquivalence, MixedAlgorithmsShareOneWorkspace) {
  // Interleave algorithms on one workspace (the AnonymizeBatch worker
  // regime) and compare against fresh runs.
  Table sal = GenerateSal(2000, 7);
  Table t = sal.ProjectQi({kAge, kRace, kEducation});
  Workspace ws;
  for (int round = 0; round < 2; ++round) {
    for (Algorithm algo : kAllAlgorithms) {
      AnonymizationOutcome fresh = Anonymize(t, 4, algo, AnonymizerOptions{});
      AnonymizationOutcome shared = Anonymize(t, 4, algo, AnonymizerOptions{}, &ws);
      ASSERT_EQ(fresh.feasible, shared.feasible) << AlgorithmName(algo);
      if (!fresh.feasible) continue;
      EXPECT_EQ(fresh.stars, shared.stars) << AlgorithmName(algo);
      EXPECT_EQ(fresh.kl_divergence, shared.kl_divergence) << AlgorithmName(algo);
      ExpectSamePartition(fresh.partition, shared.partition);
    }
  }
}

}  // namespace
}  // namespace ldv
