#!/usr/bin/env bash
# End-to-end gate for the `ldivd` daemon surface. Run by ctest
# (ldivd_e2e) and by CI's daemon-e2e job:
#
#   ldivd_e2e.sh <path-to-ldiv-binary> <repo-source-dir>
#
# Starts `ldiv serve` on a unix socket, drives it with `ldiv submit` and
# `ldiv ctl`, and requires: byte-identical outputs versus the one-shot
# CLI (including under --memory-budget and --threads), a DatasetCache hit
# on a repeated submission (observable in the reply and in ctl stats),
# ArtifactCache hits on a repeated sweep with byte-identical outputs,
# explicit busy backpressure under a submit flood (exit 4, never a hang
# or a drop), and a graceful drain on shutdown.
set -euo pipefail

BIN=$1
SRC=$2
INPUT="$SRC/tests/data/micro.csv"
SCHEMA='Age:79,Gender:2,Race:9|Income:50'

TMP=$(mktemp -d)
SOCK="$TMP/ldivd.sock"
SERVE_LOG="$TMP/serve.log"
SERVE_PID=

cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2> /dev/null
  [ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2> /dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "== serve: daemon starts and answers ping =="
"$BIN" serve --socket="$SOCK" --queue-depth=4 --workers=1 2> "$SERVE_LOG" &
SERVE_PID=$!
# `ldiv ctl` retries ECONNREFUSED/ENOENT briefly, so no sleep is needed.
"$BIN" ctl --socket="$SOCK" ping | grep -q "status = ok" ||
  { echo "FAIL: ping"; cat "$SERVE_LOG"; exit 1; }

echo "== submit matrix: byte-identical to the one-shot CLI =="
# One-shot references (--no-timings for byte-determinism), then the same
# jobs through the daemon. Matrix covers a plain run, a sweep with
# releases, a --threads run and a --memory-budget out-of-core run.
run_pair() {
  local name=$1
  shift
  "$BIN" "$@" --no-timings --out="$TMP/oneshot_$name" 2> /dev/null
  "$BIN" submit --socket="$SOCK" "$@" --no-timings --out="$TMP/daemon_$name" > /dev/null
  cmp "$TMP/oneshot_$name.json" "$TMP/daemon_$name.json" ||
    { echo "FAIL: $name JSON differs between one-shot and daemon"; exit 1; }
  cmp "$TMP/oneshot_${name}_metrics.csv" "$TMP/daemon_${name}_metrics.csv" ||
    { echo "FAIL: $name metrics differ between one-shot and daemon"; exit 1; }
  if [ -f "$TMP/oneshot_$name.csv" ]; then
    cmp "$TMP/oneshot_$name.csv" "$TMP/daemon_$name.csv" ||
      { echo "FAIL: $name release differs between one-shot and daemon"; exit 1; }
  fi
  echo "ok: $name"
}
run_pair csv --algo=tp+ --l=2 --input="$INPUT" --schema="$SCHEMA"
run_pair sweep --algo=all --l=2,4 --n=2000 --d=3 --sweep --write-releases
for k in $(seq 0 11); do
  cmp "$TMP/oneshot_sweep.job$k.csv" "$TMP/daemon_sweep.job$k.csv" ||
    { echo "FAIL: sweep release job$k differs between one-shot and daemon"; exit 1; }
done
run_pair threads --algo=mondrian --l=2 --n=20000 --d=3 --threads=2
# 150k rows estimate past a quarter of the 8M budget, so ingestion
# genuinely takes the out-of-core paged path (smaller tables now stay
# in-RAM and cache normally under a budget).
run_pair budget --algo=hilbert --l=2 --n=150000 --d=3 --memory-budget=8M

echo "== repeat submission hits the DatasetCache =="
# daemon_csv ran the micro CSV once already; the same input again must be
# served from cache, visible in the reply and in ctl stats.
"$BIN" submit --socket="$SOCK" --algo=tp --l=2 --input="$INPUT" --schema="$SCHEMA" \
  --no-timings --out="$TMP/daemon_csv2" > "$TMP/repeat.out"
grep -q "cache-hits = 1" "$TMP/repeat.out" ||
  { echo "FAIL: repeated input missed the DatasetCache"; cat "$TMP/repeat.out"; exit 1; }
"$BIN" ctl --socket="$SOCK" stats > "$TMP/stats.out"
grep -q "cache-hits = [1-9]" "$TMP/stats.out" ||
  { echo "FAIL: ctl stats reports no cache hits"; cat "$TMP/stats.out"; exit 1; }

echo "== repeat sweep hits the ArtifactCache =="
# A fresh (n, d) cell, so the first sweep builds its GroupedTable and
# Hilbert order cold; the repeat resolves both from the ArtifactCache
# (visible in the reply and in ctl stats) and every output must stay
# byte-identical to the cold run.
"$BIN" submit --socket="$SOCK" --algo=tp,tp+,hilbert --l=2,4 --n=5000 --d=3 --sweep \
  --write-releases --no-timings --out="$TMP/art_cold" > "$TMP/art_cold.out"
grep -q "artifact-misses = 2" "$TMP/art_cold.out" ||
  { echo "FAIL: cold sweep did not build both artifacts"; cat "$TMP/art_cold.out"; exit 1; }
"$BIN" submit --socket="$SOCK" --algo=tp,tp+,hilbert --l=2,4 --n=5000 --d=3 --sweep \
  --write-releases --no-timings --out="$TMP/art_hot" > "$TMP/art_hot.out"
grep -q "artifact-hits = 2" "$TMP/art_hot.out" ||
  { echo "FAIL: repeated sweep missed the ArtifactCache"; cat "$TMP/art_hot.out"; exit 1; }
cmp "$TMP/art_cold.json" "$TMP/art_hot.json" ||
  { echo "FAIL: artifact hit path changed the JSON report"; exit 1; }
cmp "$TMP/art_cold_metrics.csv" "$TMP/art_hot_metrics.csv" ||
  { echo "FAIL: artifact hit path changed the metrics"; exit 1; }
for k in $(seq 0 5); do
  cmp "$TMP/art_cold.job$k.csv" "$TMP/art_hot.job$k.csv" ||
    { echo "FAIL: artifact hit path changed release job$k"; exit 1; }
done
"$BIN" ctl --socket="$SOCK" stats > "$TMP/stats_art.out"
grep -q "artifact-hits = [1-9]" "$TMP/stats_art.out" ||
  { echo "FAIL: ctl stats reports no artifact hits"; cat "$TMP/stats_art.out"; exit 1; }

echo "== spec errors reply with exit codes, not hangs =="
expect_exit() {
  local want=$1
  shift
  local got=0
  "$@" > /dev/null 2>&1 || got=$?
  [ "$got" -eq "$want" ] ||
    { echo "FAIL: expected exit $want, got $got for: $*"; exit 1; }
}
expect_exit 1 "$BIN" submit --socket="$SOCK" --algo=bogus --out="$TMP/x"
expect_exit 2 "$BIN" submit --socket="$SOCK" --algo=tp --l=100000 --input="$INPUT" \
  --schema="$SCHEMA" --out="$TMP/x"
expect_exit 3 "$BIN" submit --socket="$SOCK" --input="$TMP/no_such_file.csv" \
  --schema="$SCHEMA" --out="$TMP/x"
expect_exit 4 "$BIN" submit --socket="$TMP/no_daemon_here.sock" --algo=tp --out="$TMP/x"

echo "== flood: backpressure is an explicit busy reply (exit 4) =="
# More simultaneous submits than queue-depth=4 can hold behind one
# worker: every client must exit 0 (ran) or 4 (busy); anything else --
# or a hang -- is a protocol failure.
FLOOD=10
declare -a FLOOD_PIDS=()
for i in $(seq 1 $FLOOD); do
  "$BIN" submit --socket="$SOCK" --algo=tp --l=2 --n=150000 --d=3 \
    --no-timings --out="$TMP/flood_$i" > /dev/null 2> /dev/null &
  FLOOD_PIDS+=($!)
done
RAN=0
BUSY=0
for pid in "${FLOOD_PIDS[@]}"; do
  got=0
  wait "$pid" || got=$?
  case "$got" in
    0) RAN=$((RAN + 1)) ;;
    4) BUSY=$((BUSY + 1)) ;;
    *) echo "FAIL: flood client exited $got (want 0 or 4)"; exit 1 ;;
  esac
done
[ $((RAN + BUSY)) -eq $FLOOD ] || { echo "FAIL: flood lost a client"; exit 1; }
[ "$RAN" -ge 1 ] || { echo "FAIL: flood ran no jobs at all"; exit 1; }
echo "ok: $RAN ran, $BUSY got busy replies"
"$BIN" ctl --socket="$SOCK" stats | grep -q "rejected-busy = $BUSY" ||
  { echo "FAIL: ctl stats disagrees with observed busy replies"; exit 1; }

echo "== graceful shutdown drains and exits 0 =="
"$BIN" ctl --socket="$SOCK" shutdown | grep -q "status = stopping" ||
  { echo "FAIL: shutdown ack"; exit 1; }
SHUTDOWN_OK=0
for _ in $(seq 1 100); do
  kill -0 "$SERVE_PID" 2> /dev/null || { SHUTDOWN_OK=1; break; }
  sleep 0.1
done
[ "$SHUTDOWN_OK" = 1 ] || { echo "FAIL: daemon did not stop within 10s"; exit 1; }
wait "$SERVE_PID" || { echo "FAIL: serve exited non-zero"; cat "$SERVE_LOG"; exit 1; }
SERVE_PID=
grep -q "drained and stopped" "$SERVE_LOG" ||
  { echo "FAIL: serve log has no drain line"; cat "$SERVE_LOG"; exit 1; }
[ -S "$SOCK" ] && { echo "FAIL: socket file survived shutdown"; exit 1; }

echo "ldivd e2e: all checks passed"
