// Tests for the synthetic ACS generators and the projection workloads.

#include <gtest/gtest.h>

#include <cmath>

#include "anonymity/eligibility.h"
#include "common/grouped_table.h"
#include "data/acs_generator.h"
#include "data/acs_schema.h"
#include "data/workload.h"

namespace ldv {
namespace {

TEST(AcsSchema, MatchesTable6DomainSizes) {
  Schema sal = SalSchema();
  EXPECT_EQ(sal.qi_count(), 7u);
  EXPECT_EQ(sal.qi(kAge).domain_size, 79u);
  EXPECT_EQ(sal.qi(kGender).domain_size, 2u);
  EXPECT_EQ(sal.qi(kRace).domain_size, 9u);
  EXPECT_EQ(sal.qi(kMarital).domain_size, 6u);
  EXPECT_EQ(sal.qi(kBirthPlace).domain_size, 56u);
  EXPECT_EQ(sal.qi(kEducation).domain_size, 17u);
  EXPECT_EQ(sal.qi(kWorkClass).domain_size, 9u);
  EXPECT_EQ(sal.sensitive().name, "Income");
  EXPECT_EQ(sal.sa_domain_size(), 50u);
  Schema occ = OccSchema();
  EXPECT_EQ(occ.sensitive().name, "Occupation");
  EXPECT_EQ(occ.sa_domain_size(), 50u);
}

TEST(AcsGenerator, DeterministicInSeed) {
  Table a = GenerateSal(500, 9);
  Table b = GenerateSal(500, 9);
  ASSERT_EQ(a.size(), b.size());
  for (RowId r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a.sa(r), b.sa(r));
    for (AttrId attr = 0; attr < a.qi_count(); ++attr) {
      ASSERT_EQ(a.qi(r, attr), b.qi(r, attr));
    }
  }
  Table c = GenerateSal(500, 10);
  bool any_diff = false;
  for (RowId r = 0; r < c.size() && !any_diff; ++r) any_diff = c.sa(r) != a.sa(r);
  EXPECT_TRUE(any_diff);
}

TEST(AcsGenerator, ValuesWithinDomains) {
  // AppendRow CHECKs domains, so construction succeeding is the assertion;
  // verify spread too: every attribute uses more than one value.
  Table sal = GenerateSal(2000, 3);
  for (AttrId a = 0; a < sal.qi_count(); ++a) {
    Value first = sal.qi(0, a);
    bool varied = false;
    for (RowId r = 1; r < sal.size() && !varied; ++r) varied = sal.qi(r, a) != first;
    EXPECT_TRUE(varied) << "attribute " << a << " is constant";
  }
}

TEST(AcsGenerator, EligibleForPaperLRange) {
  // The paper sweeps l in [2, 10]; the generated SA marginals must leave
  // that range feasible, as the real SAL/OCC do.
  Table sal = GenerateSal(20000, 1);
  Table occ = GenerateOcc(20000, 2);
  EXPECT_GE(MaxFeasibleL(sal), 10u);
  EXPECT_GE(MaxFeasibleL(occ), 10u);
}

TEST(AcsGenerator, IncomeIsMoreSkewedThanOccupation) {
  // The SAL-vs-OCC difference in Section 6.1 comes from SA skew; verify via
  // the max SA frequency.
  Table sal = GenerateSal(30000, 1);
  Table occ = GenerateOcc(30000, 2);
  auto max_frequency = [](const Table& t) {
    auto counts = t.SaHistogramCounts();
    std::uint32_t max_count = 0;
    for (auto c : counts) max_count = std::max(max_count, c);
    return static_cast<double>(max_count) / static_cast<double>(t.size());
  };
  EXPECT_GT(max_frequency(sal), max_frequency(occ));
}

TEST(AcsGenerator, QiDistinctnessGrowsWithDimensionality) {
  // The curse-of-dimensionality premise behind Figure 3: the number of
  // distinct QI signatures must grow steeply with d.
  Table sal = GenerateSal(20000, 4);
  std::size_t prev = 0;
  for (std::size_t d : {1u, 3u, 5u, 7u}) {
    std::vector<AttrId> attrs;
    for (std::size_t a = 0; a < d; ++a) attrs.push_back(static_cast<AttrId>(a));
    GroupedTable grouped(sal.ProjectQi(attrs));
    EXPECT_GT(grouped.group_count(), prev);
    prev = grouped.group_count();
  }
  // With all 7 attributes most tuples should be nearly unique.
  EXPECT_GT(prev, sal.size() / 3);
}

TEST(AcsGenerator, EducationCorrelatesWithIncome) {
  Table sal = GenerateSal(30000, 1);
  // Average income band for low vs high education.
  double low_sum = 0, high_sum = 0;
  std::size_t low_n = 0, high_n = 0;
  for (RowId r = 0; r < sal.size(); ++r) {
    if (sal.qi(r, kEducation) <= 4) {
      low_sum += sal.sa(r);
      ++low_n;
    } else if (sal.qi(r, kEducation) >= 12) {
      high_sum += sal.sa(r);
      ++high_n;
    }
  }
  ASSERT_GT(low_n, 100u);
  ASSERT_GT(high_n, 100u);
  EXPECT_GT(high_sum / high_n, low_sum / low_n + 2.0);
}

TEST(Workload, CombinationCountsMatchBinomials) {
  EXPECT_EQ(QiCombinations(7, 1).size(), 7u);
  EXPECT_EQ(QiCombinations(7, 2).size(), 21u);
  EXPECT_EQ(QiCombinations(7, 3).size(), 35u);
  EXPECT_EQ(QiCombinations(7, 4).size(), 35u);
  EXPECT_EQ(QiCombinations(7, 7).size(), 1u);
  EXPECT_EQ(QiCombinations(3, 0).size(), 1u);
}

TEST(Workload, CombinationsAreSortedAndDistinct) {
  auto combos = QiCombinations(6, 3);
  for (const auto& combo : combos) {
    for (std::size_t i = 1; i < combo.size(); ++i) EXPECT_LT(combo[i - 1], combo[i]);
  }
  for (std::size_t i = 1; i < combos.size(); ++i) EXPECT_LT(combos[i - 1], combos[i]);
}

TEST(Workload, ProjectionFamilyRespectsCap) {
  Table sal = GenerateSal(100, 5);
  auto family = ProjectionFamily(sal, 4, 10);
  EXPECT_EQ(family.size(), 10u);
  for (const Table& t : family) {
    EXPECT_EQ(t.qi_count(), 4u);
    EXPECT_EQ(t.size(), sal.size());
  }
}

}  // namespace
}  // namespace ldv
