// Failpoint framework tests: the arming/firing/stats machinery itself,
// then the acceptance matrix -- every registered site armed with
// representative injections (ENOSPC, EIO, and a short write where the
// site writes), driven through a real engine or daemon path, asserting
// the failure surfaces as a typed io error (never an abort), no spill
// files or budget reservations leak, and the process keeps working
// afterwards (a clean run succeeds; the daemon answers a follow-up
// ping and job).

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/memory_budget.h"
#include "common/page_cache.h"
#include "common/parallel.h"
#include "daemon/client.h"
#include "daemon/daemon.h"
#include "daemon/protocol.h"
#include "engine/engine.h"
#include "engine/error.h"
#include "engine/job_spec.h"
#include "test_util.h"

namespace ldv {
namespace {

using failpoint::Injection;
using failpoint::Site;

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DisarmAll();
    ASSERT_EQ(SpillFile::LiveCount(), 0u) << "a previous test leaked spill files";
  }
  void TearDown() override {
    failpoint::DisarmAll();
    ::unsetenv("LDIV_PAGE_BYTES");
    SetMemoryBudget(0);
    SetThreadBudget(0);
  }
};

TEST_F(FailpointTest, SiteNamesRoundTrip) {
  for (int i = 0; i < failpoint::kSiteCount; ++i) {
    const Site site = static_cast<Site>(i);
    const char* name = failpoint::SiteName(site);
    ASSERT_NE(name, nullptr);
    ASSERT_NE(name[0], '\0') << "site " << i << " has no name";
    Site parsed = Site::kCount;
    ASSERT_TRUE(failpoint::SiteFromName(name, &parsed)) << name;
    EXPECT_EQ(parsed, site);
  }
  Site ignored = Site::kCount;
  EXPECT_FALSE(failpoint::SiteFromName("no.such.site", &ignored));
}

TEST_F(FailpointTest, DisarmedChecksNeverFire) {
  Injection injection;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(failpoint::Check(Site::kSpillWrite, &injection));
  }
  // Evaluations are only counted while something is armed: the disabled
  // fast path must stay one atomic load.
  for (const failpoint::SiteStats& stats : failpoint::Stats()) {
    EXPECT_EQ(stats.evaluations, 0u) << stats.name;
    EXPECT_EQ(stats.triggers, 0u) << stats.name;
    EXPECT_FALSE(stats.armed) << stats.name;
  }
}

TEST_F(FailpointTest, NthAndCountBoundTheFiringWindow) {
  failpoint::Arm(Site::kSpillWrite, Injection{ENOSPC, false}, /*nth=*/3, /*count=*/2);
  Injection injection;
  EXPECT_FALSE(failpoint::Check(Site::kSpillWrite, &injection));  // 1
  EXPECT_FALSE(failpoint::Check(Site::kSpillWrite, &injection));  // 2
  EXPECT_TRUE(failpoint::Check(Site::kSpillWrite, &injection));   // 3 fires
  EXPECT_EQ(injection.error_code, ENOSPC);
  EXPECT_TRUE(failpoint::Check(Site::kSpillWrite, &injection));   // 4 fires
  EXPECT_FALSE(failpoint::Check(Site::kSpillWrite, &injection));  // 5: window closed
  EXPECT_EQ(failpoint::Triggers(Site::kSpillWrite), 2u);
  // An armed site never bleeds into its neighbors.
  EXPECT_FALSE(failpoint::Check(Site::kSpillRead, &injection));
  failpoint::DisarmAll();
  EXPECT_FALSE(failpoint::Check(Site::kSpillWrite, &injection));
  EXPECT_EQ(failpoint::Triggers(Site::kSpillWrite), 0u);
}

TEST_F(FailpointTest, ArmFromSpecParsesSitesErrnosAndWindows) {
  std::string error;
  ASSERT_TRUE(failpoint::ArmFromSpec("spill.write=ENOSPC:2:1,daemon.read=EIO", &error)) << error;
  Injection injection;
  EXPECT_FALSE(failpoint::Check(Site::kSpillWrite, &injection));
  EXPECT_TRUE(failpoint::Check(Site::kSpillWrite, &injection));
  EXPECT_EQ(injection.error_code, ENOSPC);
  EXPECT_TRUE(failpoint::Check(Site::kDaemonRead, &injection));
  EXPECT_EQ(injection.error_code, EIO);
  failpoint::DisarmAll();

  ASSERT_TRUE(failpoint::ArmFromSpec("spill.write=short", &error)) << error;
  EXPECT_TRUE(failpoint::Check(Site::kSpillWrite, &injection));
  EXPECT_TRUE(injection.short_write);
  EXPECT_EQ(injection.error_code, ENOSPC);
  failpoint::DisarmAll();

  EXPECT_FALSE(failpoint::ArmFromSpec("no.such.site=EIO", &error));
  EXPECT_NE(error.find("no.such.site"), std::string::npos);
  EXPECT_FALSE(failpoint::ArmFromSpec("spill.write", &error));
  EXPECT_FALSE(failpoint::ArmFromSpec("spill.write=EBOGUS", &error));
}

TEST_F(FailpointTest, DescribeNamesTheSiteAndTheErrno) {
  const std::string message =
      failpoint::Describe(Site::kSpillWrite, Injection{ENOSPC, false}, "spill write failed");
  EXPECT_NE(message.find("spill write failed"), std::string::npos);
  EXPECT_NE(message.find("[failpoint spill.write]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The acceptance matrix.

// A paged Hilbert run that exercises the storage-layer sites: the 8M
// budget (the smallest ResolveJobSpec accepts) with 4K pages forces
// paged ingestion with heavy eviction -- spill create/write/read, paged
// append/seal/map, cache refaults.
JobSpec PagedHilbertSpec() {
  JobSpec spec;
  spec.dataset.name = "sal";
  spec.ns = {150000};
  spec.ds = {3};
  spec.algorithms = {Algorithm::kHilbert};
  spec.ls = {2};
  spec.memory_budget = 8u << 20;
  spec.timings = false;
  spec.compute_kl = false;
  spec.out = testing::TempDir() + "failpoint_paged";
  return spec;
}

// Reaches the external-sort sites: 12 bytes/row of Hilbert sort state
// over 800k rows (9.6M) can never fit the 8M budget, so ComputeOrder is
// forced onto the external spill+merge path, and 800k records overflow
// the budget-derived sort buffer into multiple runs.
JobSpec SortHeavySpec() {
  JobSpec spec = PagedHilbertSpec();
  spec.ns = {800000};
  spec.out = testing::TempDir() + "failpoint_extsort";
  return spec;
}

JobSpec ReportSpec() {
  JobSpec spec;
  spec.dataset.name = "sal";
  spec.ns = {600};
  spec.ds = {3};
  spec.algorithms = {Algorithm::kTp};
  spec.ls = {2};
  spec.timings = false;
  spec.out = testing::TempDir() + "failpoint_report";
  return spec;
}

std::string WriteCodedCsv() {
  const std::string path = testing::TempDir() + "failpoint_input.csv";
  std::ofstream out(path);
  out << "Age,Gender,Income\n";
  for (int i = 0; i < 40; ++i) {
    out << (i % 3) << "," << (i % 2) << "," << (i % 4) << "\n";
  }
  return path;
}

JobSpec CsvSpec() {
  JobSpec spec;
  spec.input = WriteCodedCsv();
  spec.schema_spec = "Age:3,Gender:2|Income:4";
  spec.algorithms = {Algorithm::kTp};
  spec.ls = {2};
  spec.timings = false;
  spec.out = testing::TempDir() + "failpoint_csv";
  return spec;
}

void RemoveOutputs(const std::string& stem) {
  for (const char* suffix : {".csv", "_sa.csv", ".json", "_metrics.csv"}) {
    std::remove((stem + suffix).c_str());
  }
}

// Runs `spec` through a fresh engine with `site` armed and asserts the
// hardened contract: a typed io error (exit code 3), the site actually
// fired, and nothing leaked.
void ExpectInjectedIoError(const JobSpec& spec, Site site, Injection injection) {
  SCOPED_TRACE(std::string(failpoint::SiteName(site)) + " errno=" +
               std::to_string(injection.error_code) +
               (injection.short_write ? " short" : ""));
  failpoint::Arm(site, injection);
  {
    Engine engine;
    Expected<ExecuteSummary, PipelineError> result = engine.Execute(spec);
    ASSERT_FALSE(result.ok()) << "armed " << failpoint::SiteName(site)
                              << " but the run succeeded";
    EXPECT_EQ(result.error().code, PipelineErrorCode::kIo) << result.error().message;
    EXPECT_EQ(ExitCodeFor(result.error().code), 3);
    EXPECT_GE(failpoint::Triggers(site), 1u) << "the armed site never fired";
  }
  failpoint::DisarmAll();
  // Leak probes: every spill file reclaimed, every budget reservation
  // released, once the engine (and its caches) is gone.
  EXPECT_EQ(SpillFile::LiveCount(), 0u) << "leaked spill files after " << failpoint::SiteName(site);
  EXPECT_EQ(GlobalMemoryBudget().used(), 0u)
      << "leaked budget reservations after " << failpoint::SiteName(site);
  RemoveOutputs(spec.out);
}

TEST_F(FailpointTest, MatrixEveryEngineSiteSurfacesAsTypedIoError) {
  ::setenv("LDIV_PAGE_BYTES", "4096", 1);
  SetThreadBudget(2);  // exercise exception propagation out of parallel kernels

  const JobSpec paged = PagedHilbertSpec();
  const JobSpec extsort = SortHeavySpec();
  const JobSpec report = ReportSpec();
  const JobSpec csv = CsvSpec();

  // Which driver reaches which site. Enumerated over the full registry so
  // a future site cannot be added without a matrix entry.
  std::map<Site, const JobSpec*> drivers = {
      {Site::kSpillCreate, &paged},  {Site::kSpillWrite, &paged},
      {Site::kSpillRead, &paged},    {Site::kPagedAppend, &paged},
      {Site::kPagedSeal, &paged},    {Site::kPagedMap, &paged},
      {Site::kPageCacheRead, &paged}, {Site::kExtSortSpill, &extsort},
      {Site::kExtSortMerge, &extsort}, {Site::kCsvRead, &csv},
      {Site::kReportWrite, &report}, {Site::kReleaseWrite, &report},
  };
  const std::vector<Site> daemon_sites = {Site::kDaemonAccept, Site::kDaemonRead,
                                          Site::kDaemonWrite};
  ASSERT_EQ(drivers.size() + daemon_sites.size(), static_cast<std::size_t>(failpoint::kSiteCount))
      << "every registered site needs a matrix driver (daemon sites are "
         "covered by MatrixDaemonSites*)";

  for (const auto& [site, spec] : drivers) {
    ExpectInjectedIoError(*spec, site, Injection{ENOSPC, false});
    ExpectInjectedIoError(*spec, site, Injection{EIO, false});
  }
  // Short writes land half the page for real before failing, exercising
  // the unwind against a genuinely torn spill page.
  ExpectInjectedIoError(paged, Site::kSpillWrite, Injection{ENOSPC, true});

  // With everything disarmed, the same specs run clean: the failures were
  // the injections, not the hardening.
  Engine engine;
  Expected<ExecuteSummary, PipelineError> clean = engine.Execute(report);
  ASSERT_TRUE(clean.ok()) << clean.error().message;
  EXPECT_EQ(clean->exit_code, 0);
  RemoveOutputs(report.out);
  std::remove(csv.input.c_str());
}

TEST_F(FailpointTest, MatrixDaemonSitesKeepTheDaemonServing) {
  DaemonOptions options;
  options.socket_path = testing::TempDir() + "failpoint_daemon.sock";
  options.io_timeout_ms = 2000;
  Daemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  JobSpec job = ReportSpec();
  job.out = testing::TempDir() + "failpoint_daemon_job";

  for (const Site site : {Site::kDaemonAccept, Site::kDaemonRead, Site::kDaemonWrite}) {
    for (const int code : {ENOSPC, EIO}) {
      SCOPED_TRACE(std::string(failpoint::SiteName(site)) + " errno=" + std::to_string(code));
      // count=1: exactly one protocol operation fails; the client request
      // riding on it loses (connection dropped or local error), which is
      // the contract -- what must survive is the daemon.
      failpoint::Arm(site, Injection{code, false}, /*nth=*/1, /*count=*/1);
      Frame reply;
      std::map<std::string, std::string> kv;
      std::string request_error;
      (void)DaemonRequest(options.socket_path, Frame{"ping", ""}, &reply, &kv, &request_error);
      EXPECT_GE(failpoint::Triggers(site), 1u);
      failpoint::DisarmAll();

      // The daemon must answer a follow-up ping AND run a real job.
      kv.clear();
      ASSERT_TRUE(DaemonRequest(options.socket_path, Frame{"ping", ""}, &reply, &kv, &error))
          << error;
      EXPECT_EQ(reply.verb, "ok");
      kv.clear();
      ASSERT_TRUE(DaemonRequest(options.socket_path, Frame{"job", SerializeJobSpec(job)}, &reply,
                                &kv, &error))
          << error;
      EXPECT_EQ(reply.verb, "ok") << reply.payload;
      RemoveOutputs(job.out);
    }
  }

  daemon.Stop();
  daemon.WaitForShutdown();
}

// An engine failure INSIDE a daemon worker must become an error reply --
// the isolation boundary -- and count as `failed`, keeping the stats
// invariant accepted == completed + expired + failed.
TEST_F(FailpointTest, DaemonWorkerIsolatesInjectedJobFailures) {
  ::setenv("LDIV_PAGE_BYTES", "4096", 1);
  DaemonOptions options;
  options.socket_path = testing::TempDir() + "failpoint_isolation.sock";
  Daemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  failpoint::Arm(Site::kSpillWrite, Injection{ENOSPC, false});
  Frame reply;
  std::map<std::string, std::string> kv;
  ASSERT_TRUE(DaemonRequest(options.socket_path, Frame{"job", SerializeJobSpec(PagedHilbertSpec())},
                            &reply, &kv, &error))
      << error;
  EXPECT_EQ(reply.verb, "error") << reply.payload;
  EXPECT_EQ(kv["exit-code"], "3") << reply.payload;
  EXPECT_NE(kv["error"].find("failpoint spill.write"), std::string::npos) << kv["error"];
  failpoint::DisarmAll();

  // The daemon survived and still runs clean jobs.
  JobSpec clean = ReportSpec();
  clean.out = testing::TempDir() + "failpoint_isolation_out";
  kv.clear();
  ASSERT_TRUE(DaemonRequest(options.socket_path, Frame{"job", SerializeJobSpec(clean)}, &reply,
                            &kv, &error))
      << error;
  EXPECT_EQ(reply.verb, "ok") << reply.payload;
  RemoveOutputs(clean.out);

  daemon.Stop();
  daemon.WaitForShutdown();
  const Daemon::Stats stats = daemon.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.accepted, stats.completed + stats.expired + stats.failed);
  EXPECT_EQ(SpillFile::LiveCount(), 0u);
}

}  // namespace
}  // namespace ldv
