// Release writer/reader round-trip tests.

#include "anonymity/release.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/anonymizer.h"
#include "test_util.h"

namespace ldv {
namespace {

TEST(Release, RoundTripPreservesStarsAndValues) {
  Table table = testutil::PaperTable1();
  AnonymizationOutcome outcome = Anonymize(table, 2, Algorithm::kTp);
  ASSERT_TRUE(outcome.feasible);
  GeneralizedTable generalized(table, outcome.partition);

  std::string path = ::testing::TempDir() + "/ldv_release.csv";
  ASSERT_TRUE(WriteReleaseCsv(table, generalized, path));
  auto rows = ReadReleaseCsv(table.schema(), path);
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), table.size());

  // Star count in the file matches the generalization.
  std::uint64_t stars = 0;
  for (const ReleaseRow& row : *rows) {
    for (Value v : row.qi) stars += IsStar(v) ? 1 : 0;
  }
  EXPECT_EQ(stars, generalized.StarCount());
  EXPECT_EQ(stars, outcome.stars);

  // SA histogram is preserved exactly (Definition 1 keeps SA values).
  std::vector<std::uint32_t> counts(table.schema().sa_domain_size(), 0);
  for (const ReleaseRow& row : *rows) ++counts[row.sa];
  EXPECT_EQ(counts, table.SaHistogramCounts());
  std::remove(path.c_str());
}

TEST(Release, NonStarValuesMatchOriginals) {
  Table table = testutil::PaperTable1();
  AnonymizationOutcome outcome = Anonymize(table, 2, Algorithm::kTpPlus);
  ASSERT_TRUE(outcome.feasible);
  GeneralizedTable generalized(table, outcome.partition);
  std::string path = ::testing::TempDir() + "/ldv_release2.csv";
  ASSERT_TRUE(WriteReleaseCsv(table, generalized, path));
  auto rows = ReadReleaseCsv(table.schema(), path);
  ASSERT_TRUE(rows.has_value());
  // Row order in the file follows the partition's groups; rebuild that
  // order and compare non-star cells to the microdata.
  std::size_t file_idx = 0;
  for (GroupId g = 0; g < generalized.group_count(); ++g) {
    for (RowId r : generalized.rows(g)) {
      const ReleaseRow& row = (*rows)[file_idx++];
      for (AttrId a = 0; a < table.qi_count(); ++a) {
        if (!IsStar(row.qi[a])) EXPECT_EQ(row.qi[a], table.qi(r, a));
      }
      EXPECT_EQ(row.sa, table.sa(r));
    }
  }
}

TEST(Release, ReaderRejectsCorruptFiles) {
  std::string path = ::testing::TempDir() + "/ldv_release_bad.csv";
  Schema schema = testutil::MakeSchema({3}, 2);
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("A1,B\n7,0\n", f);  // 7 outside domain of size 3
    fclose(f);
  }
  EXPECT_FALSE(ReadReleaseCsv(schema, path).has_value());
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("A1,B\n1,*\n", f);  // SA may never be a star
    fclose(f);
  }
  EXPECT_FALSE(ReadReleaseCsv(schema, path).has_value());
  std::remove(path.c_str());
}

TEST(Release, MissingFileReported) {
  Schema schema = testutil::MakeSchema({3}, 2);
  EXPECT_FALSE(ReadReleaseCsv(schema, "/nonexistent/release.csv").has_value());
}

}  // namespace
}  // namespace ldv
