// In-process end-to-end tests of the CLI pipeline: CSV load -> anonymize
// -> release/report, the synthetic (n, d) grid, sweep determinism across
// thread counts, and clean failure on unreadable input.

#include "cli/pipeline.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "anonymity/eligibility.h"
#include "anonymity/release.h"
#include "engine/report.h"
#include "common/csv.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "test_util.h"

namespace ldv {
namespace {

CliOptions SyntheticOptions() {
  CliOptions options;
  options.dataset.name = "sal";
  options.ns = {1200};
  options.ds = {3};
  return options;
}

TEST(CliPipeline, SingleRunOnSyntheticData) {
  CliOptions options = SyntheticOptions();
  options.algorithms = {Algorithm::kTp};
  options.ls = {2};
  Expected<PipelineResult, PipelineError> result_run = RunPipeline(options);
  ASSERT_TRUE(result_run.ok()) << result_run.error().message;
  const PipelineResult& result = result_run.value();
  ASSERT_EQ(result.tables.size(), 1u);
  EXPECT_EQ(result.tables[0]->table.size(), 1200u);
  EXPECT_EQ(result.tables[0]->table.qi_count(), 3u);
  EXPECT_EQ(result.tables[0]->source, "sal(n=1200, seed=1, d=3)");
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_TRUE(result.jobs[0].outcome.feasible);
  EXPECT_TRUE(IsLDiverse(result.tables[0]->table, result.jobs[0].outcome.partition, 2));
}

TEST(CliPipeline, EveryRegisteredAlgorithmRunsEndToEnd) {
  CliOptions options = SyntheticOptions();
  options.algorithms.assign(kAllAlgorithms.begin(), kAllAlgorithms.end());
  options.ls = {4};
  Expected<PipelineResult, PipelineError> result_run = RunPipeline(options);
  ASSERT_TRUE(result_run.ok()) << result_run.error().message;
  const PipelineResult& result = result_run.value();
  ASSERT_EQ(result.jobs.size(), kAlgorithmCount);
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    const PipelineJobResult& job = result.jobs[i];
    EXPECT_EQ(job.spec.algorithm, kAllAlgorithms[i]) << "job order must follow the grid";
    EXPECT_TRUE(job.outcome.feasible) << RunSpecLabel(job.spec);
    EXPECT_TRUE(IsLDiverse(result.tables[0]->table, job.outcome.partition, 4))
        << RunSpecLabel(job.spec);
  }
}

TEST(CliPipeline, CsvInputRoundTripsThroughRelease) {
  // Write microdata as CSV, run the pipeline on the file, write the
  // release, and parse the release back: every row survives with its SA
  // value, and the star count matches the outcome.
  Rng rng(7);
  Table table = testutil::RandomEligibleTable(rng, 300, {12, 6, 4}, 8, 3);
  std::string input_path = testing::TempDir() + "cli_pipeline_input.csv";
  ASSERT_TRUE(WriteTableCsv(table, input_path));

  CliOptions options;
  options.input = input_path;
  options.format = CsvFormat::kCoded;
  options.schema = table.schema();
  options.algorithms = {Algorithm::kTpPlus};
  options.ls = {3};
  Expected<PipelineResult, PipelineError> result_run = RunPipeline(options);
  ASSERT_TRUE(result_run.ok()) << result_run.error().message;
  const PipelineResult& result = result_run.value();
  ASSERT_EQ(result.jobs.size(), 1u);
  ASSERT_TRUE(result.jobs[0].outcome.feasible);
  EXPECT_EQ(result.tables[0]->source, "csv:" + input_path);

  std::string stem = testing::TempDir() + "cli_pipeline_release";
  std::string error;
  ASSERT_TRUE(
      WriteReleaseForOutcome(result.tables[0]->table, result.jobs[0].outcome, stem, &error))
      << error;
  std::optional<std::vector<ReleaseRow>> rows = ReadReleaseCsv(table.schema(), stem + ".csv");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), table.size());
  std::uint64_t stars = 0;
  std::vector<std::uint32_t> sa_histogram(table.schema().sa_domain_size(), 0);
  for (const ReleaseRow& row : *rows) {
    for (Value v : row.qi) stars += IsStar(v) ? 1 : 0;
    ++sa_histogram[row.sa];
  }
  EXPECT_EQ(stars, result.jobs[0].outcome.stars);
  EXPECT_EQ(sa_histogram, table.SaHistogramCounts()) << "releases never perturb SA values";
  std::remove(input_path.c_str());
  std::remove((stem + ".csv").c_str());
}

TEST(CliPipeline, SweepGridIsJobOrderedAndThreadCountInvariant) {
  // 2 algorithms x 2 l x (2 n-cells x 1 d-cell) = 8 jobs. Identical
  // reports regardless of worker count is the batch-driver determinism
  // guarantee surfaced through the CLI layer.
  CliOptions options = SyntheticOptions();
  options.algorithms = {Algorithm::kMondrian, Algorithm::kAnatomy};
  options.ls = {2, 4};
  options.ns = {600, 900};
  options.sweep = true;

  ReportOptions report_options;
  report_options.include_seconds = false;

  options.threads = 1;
  Expected<PipelineResult, PipelineError> serial_run = RunPipeline(options);
  ASSERT_TRUE(serial_run.ok()) << serial_run.error().message;
  const PipelineResult& serial = serial_run.value();
  ASSERT_EQ(serial.jobs.size(), 8u);
  EXPECT_EQ(serial.tables.size(), 2u);
  EXPECT_EQ(RunSpecLabel(serial.jobs[0].spec), "Mondrian/l=2/table=0");
  EXPECT_EQ(RunSpecLabel(serial.jobs[3].spec), "Anatomy/l=4/table=0");
  EXPECT_EQ(RunSpecLabel(serial.jobs[7].spec), "Anatomy/l=4/table=1");

  options.threads = 4;
  Expected<PipelineResult, PipelineError> threaded_run = RunPipeline(options);
  ASSERT_TRUE(threaded_run.ok()) << threaded_run.error().message;
  const PipelineResult& threaded = threaded_run.value();
  EXPECT_EQ(RenderJsonReport(serial, report_options),
            RenderJsonReport(threaded, report_options));
  EXPECT_EQ(RenderMetricsCsv(serial, report_options),
            RenderMetricsCsv(threaded, report_options));
}

TEST(CliPipeline, SingleJobIsThreadBudgetInvariant) {
  // A single job runs inline and spends the whole budget on in-kernel
  // parallelism (Hilbert encode, Mondrian subtrees, grouping, the KL
  // reductions) -- the deterministic-kernel guarantee surfaced through
  // the CLI layer. The table is large enough that every parallel path
  // actually engages.
  CliOptions options = SyntheticOptions();
  options.ns = {20000};
  options.algorithms = {Algorithm::kMondrian, Algorithm::kHilbert};
  options.ls = {6};

  ReportOptions report_options;
  report_options.include_seconds = false;

  std::string reference_json, reference_csv;
  for (std::uint32_t threads : {1u, 2u, 4u}) {
    options.threads = threads;
    Expected<PipelineResult, PipelineError> result_run = RunPipeline(options);
    ASSERT_TRUE(result_run.ok()) << result_run.error().message;
    const PipelineResult& result = result_run.value();
    ASSERT_EQ(result.jobs.size(), 2u);
    EXPECT_EQ(result.threads, threads);
    std::string json = RenderJsonReport(result, report_options);
    std::string csv = RenderMetricsCsv(result, report_options);
    if (threads == 1) {
      reference_json = std::move(json);
      reference_csv = std::move(csv);
    } else {
      EXPECT_EQ(json, reference_json) << "threads=" << threads;
      EXPECT_EQ(csv, reference_csv) << "threads=" << threads;
    }
  }
  SetThreadBudget(0);
}

TEST(CliPipeline, ReportRecordsThreadsOnlyBesideTimings) {
  CliOptions options = SyntheticOptions();
  options.algorithms = {Algorithm::kTp};
  options.threads = 3;
  Expected<PipelineResult, PipelineError> result_run = RunPipeline(options);
  ASSERT_TRUE(result_run.ok()) << result_run.error().message;
  const PipelineResult& result = result_run.value();
  SetThreadBudget(0);

  ReportOptions with_timings;
  with_timings.include_seconds = true;
  EXPECT_NE(RenderJsonReport(result, with_timings).find("\"threads\": 3"), std::string::npos);
  ReportOptions no_timings;
  no_timings.include_seconds = false;
  EXPECT_EQ(RenderJsonReport(result, no_timings).find("\"threads\""), std::string::npos)
      << "--no-timings output must stay byte-identical across thread budgets";
}

TEST(CliPipeline, InfeasibleJobIsReportedNotFatal) {
  CliOptions options = SyntheticOptions();
  options.ns = {50};
  options.algorithms = {Algorithm::kTp};
  options.ls = {10000};
  Expected<PipelineResult, PipelineError> result_run = RunPipeline(options);
  ASSERT_TRUE(result_run.ok()) << result_run.error().message;
  const PipelineResult& result = result_run.value();
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_FALSE(result.jobs[0].outcome.feasible);
}

TEST(CliPipeline, LoadAndGenerationFailuresAreCleanTypedErrors) {
  CliOptions missing;
  missing.input = testing::TempDir() + "cli_pipeline_missing.csv";
  missing.format = CsvFormat::kCoded;
  missing.schema = testutil::MakeSchema({4, 4}, 3);
  Expected<PipelineResult, PipelineError> result = RunPipeline(missing);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, PipelineErrorCode::kIo);
  EXPECT_EQ(ExitCodeFor(result.error().code), 3);
  EXPECT_NE(result.error().message.find("cannot open"), std::string::npos)
      << result.error().message;

  CliOptions bad_dataset = SyntheticOptions();
  bad_dataset.dataset.name = "census";
  Expected<PipelineResult, PipelineError> result2 = RunPipeline(bad_dataset);
  ASSERT_FALSE(result2.ok());
  EXPECT_EQ(result2.error().code, PipelineErrorCode::kUsage);
  EXPECT_EQ(result2.error().field, "dataset");
  EXPECT_NE(result2.error().message.find("census"), std::string::npos);

  CliOptions bad_d = SyntheticOptions();
  bad_d.ds = {9};
  Expected<PipelineResult, PipelineError> result3 = RunPipeline(bad_d);
  ASSERT_FALSE(result3.ok());
  EXPECT_EQ(result3.error().code, PipelineErrorCode::kUsage);
  EXPECT_NE(result3.error().message.find("out of range"), std::string::npos)
      << result3.error().message;
}

}  // namespace
}  // namespace ldv
