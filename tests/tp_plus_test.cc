// Tests for the hybrid TP+ algorithm (Section 6.1).

#include "core/tp_plus.h"

#include <gtest/gtest.h>

#include "anonymity/eligibility.h"
#include "anonymity/generalization.h"
#include "core/tp.h"
#include "test_util.h"

namespace ldv {
namespace {

TEST(TpPlus, ProducesLDiversePartition) {
  Rng rng(41);
  Table table = testutil::RandomEligibleTable(rng, 300, {8, 4, 3}, 6, 3);
  TpPlusResult result = RunTpPlus(table, 3);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.partition.CoversExactly(table));
  EXPECT_TRUE(IsLDiverse(table, result.partition, 3));
}

TEST(TpPlus, NeverWorseThanTpOnStars) {
  // TP+ splits R into smaller groups; splitting never increases the
  // Definition-1 star count, so TP+ <= TP must hold on every input.
  Rng rng(43);
  for (int trial = 0; trial < 15; ++trial) {
    std::uint32_t l = 2 + rng.Below(4);
    Table table = testutil::RandomEligibleTable(rng, 100 + rng.Below(200), {6, 5, 3},
                                                l + 2 + rng.Below(3), l);
    if (!IsTableEligible(table, l)) continue;
    TpResult tp = RunTp(table, l);
    TpPlusResult tp_plus = RunTpPlus(table, l);
    ASSERT_TRUE(tp.feasible);
    ASSERT_TRUE(tp_plus.feasible);
    std::uint64_t tp_stars = PartitionStarCount(table, tp.ToPartition());
    std::uint64_t tpp_stars = PartitionStarCount(table, tp_plus.partition);
    EXPECT_LE(tpp_stars, tp_stars) << "trial " << trial << " l=" << l;
  }
}

TEST(TpPlus, EmptyResidueDegeneratesToTp) {
  // A table whose exact-signature groups are all l-eligible: TP keeps
  // everything, R is empty, and TP+ must not add stars.
  Schema schema = testutil::MakeSchema({2}, 2);
  Table table(schema);
  for (int i = 0; i < 4; ++i) {
    // Two signature groups, each holding one tuple of each SA value.
    std::vector<Value> qi{static_cast<Value>(i % 2)};
    table.AppendRow(qi, static_cast<SaValue>(i / 2));
  }
  TpPlusResult result = RunTpPlus(table, 2);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(PartitionStarCount(table, result.partition), 0u);
  EXPECT_EQ(result.hilbert_seconds, 0.0);
}

TEST(TpPlus, InfeasibleTableIsReported) {
  Schema schema = testutil::MakeSchema({3}, 2);
  Table table(schema);
  std::vector<Value> qi{0};
  table.AppendRow(qi, 0);
  EXPECT_FALSE(RunTpPlus(table, 2).feasible);
}

TEST(TpPlus, StatsCarriedThroughFromTp) {
  Rng rng(47);
  Table table = testutil::RandomEligibleTable(rng, 200, {10, 5}, 5, 3);
  TpResult tp = RunTp(table, 3);
  TpPlusResult tp_plus = RunTpPlus(table, 3);
  ASSERT_TRUE(tp_plus.feasible);
  EXPECT_EQ(tp_plus.tp_stats.terminated_phase, tp.stats.terminated_phase);
  EXPECT_EQ(tp_plus.tp_stats.residue_size, tp.stats.residue_size);
}

}  // namespace
}  // namespace ldv
