// Anatomy bucketization tests (Xiao and Tao [47], Section 2).

#include "anonymity/anatomy.h"

#include <gtest/gtest.h>

#include <set>

#include "anonymity/eligibility.h"
#include "data/acs_generator.h"
#include "data/acs_schema.h"
#include "test_util.h"

namespace ldv {
namespace {

TEST(Anatomy, BucketsAreLDiverse) {
  Rng rng(61);
  for (std::uint32_t l : {2u, 3u, 5u}) {
    Table table = testutil::RandomEligibleTable(rng, 300, {6, 4}, 8, l);
    if (!IsTableEligible(table, l)) continue;
    AnatomyResult result = AnatomyAnonymize(table, l);
    ASSERT_TRUE(result.feasible) << "l=" << l;
    EXPECT_TRUE(result.partition.CoversExactly(table));
    EXPECT_TRUE(IsLDiverse(table, result.partition, l));
  }
}

TEST(Anatomy, BucketsHaveDistinctCoreValues) {
  // Every bucket contains at least l pairwise distinct SA values.
  Rng rng(63);
  Table table = testutil::RandomEligibleTable(rng, 400, {5}, 10, 4);
  AnatomyResult result = AnatomyAnonymize(table, 4);
  ASSERT_TRUE(result.feasible);
  for (const auto& bucket : result.partition.groups()) {
    std::set<SaValue> distinct;
    for (RowId r : bucket) distinct.insert(table.sa(r));
    EXPECT_GE(distinct.size(), 4u);
  }
}

TEST(Anatomy, BucketSizesAreTight) {
  // The greedy produces buckets of size l, plus at most one extra tuple
  // per bucket from the residual pass.
  Rng rng(65);
  const std::uint32_t l = 3;
  Table table = testutil::RandomEligibleTable(rng, 301, {4}, 9, l);
  AnatomyResult result = AnatomyAnonymize(table, l);
  ASSERT_TRUE(result.feasible);
  for (const auto& bucket : result.partition.groups()) {
    EXPECT_GE(bucket.size(), l);
    EXPECT_LE(bucket.size(), static_cast<std::size_t>(2 * l));
  }
}

TEST(Anatomy, ExactlyBalancedInputGivesPerfectBuckets) {
  // m = l and perfectly balanced counts: every bucket has exactly l tuples.
  Schema schema = testutil::MakeSchema({3}, 4);
  Table table(schema);
  for (int round = 0; round < 6; ++round) {
    for (SaValue v = 0; v < 4; ++v) {
      std::vector<Value> qi{static_cast<Value>(round % 3)};
      table.AppendRow(qi, v);
    }
  }
  AnatomyResult result = AnatomyAnonymize(table, 4);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.partition.group_count(), 6u);
  for (const auto& bucket : result.partition.groups()) EXPECT_EQ(bucket.size(), 4u);
}

TEST(Anatomy, InfeasibleTableRejected) {
  Schema schema = testutil::MakeSchema({2}, 2);
  Table table(schema);
  std::vector<Value> qi{0};
  table.AppendRow(qi, 0);
  table.AppendRow(qi, 0);
  table.AppendRow(qi, 1);
  EXPECT_FALSE(AnatomyAnonymize(table, 2).feasible);
}

TEST(Anatomy, EmptyTableIsTriviallyFeasible) {
  Schema schema = testutil::MakeSchema({2}, 2);
  Table table(schema);
  AnatomyResult result = AnatomyAnonymize(table, 5);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.partition.group_count(), 0u);
}

TEST(Anatomy, WorksOnCensusScaleData) {
  Table occ = GenerateOcc(20000, 2).ProjectQi({kAge, kRace});
  AnatomyResult result = AnatomyAnonymize(occ, 8);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(IsLDiverse(occ, result.partition, 8));
}

}  // namespace
}  // namespace ldv
