// Hungarian algorithm and exact m = 2 solver tests (Section 4's polynomial
// special case).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "anonymity/eligibility.h"
#include "anonymity/generalization.h"
#include "hardness/exact_solver.h"
#include "matching/exact_m2.h"
#include "matching/hungarian.h"
#include "test_util.h"

namespace ldv {
namespace {

TEST(Hungarian, TrivialOneByOne) {
  std::vector<std::int32_t> assignment;
  EXPECT_EQ(SolveAssignment({{7}}, &assignment), 7);
  EXPECT_EQ(assignment, (std::vector<std::int32_t>{0}));
}

TEST(Hungarian, KnownThreeByThree) {
  // Classic example: optimal assignment cost 5 (0->1, 1->0, 2->2).
  std::vector<std::vector<std::int64_t>> cost = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  std::vector<std::int32_t> assignment;
  EXPECT_EQ(SolveAssignment(cost, &assignment), 5);
  // Assignment must be a permutation.
  std::vector<std::int32_t> sorted = assignment;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::int32_t>{0, 1, 2}));
}

TEST(Hungarian, MatchesBruteForceOnRandomMatrices) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    std::size_t n = 2 + rng.Below(5);
    std::vector<std::vector<std::int64_t>> cost(n, std::vector<std::int64_t>(n));
    for (auto& row : cost) {
      for (auto& c : row) c = rng.Below(100);
    }
    std::vector<std::int32_t> assignment;
    std::int64_t got = SolveAssignment(cost, &assignment);

    // Brute force over all permutations.
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    do {
      std::int64_t total = 0;
      for (std::size_t i = 0; i < n; ++i) total += cost[i][perm[i]];
      best = std::min(best, total);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_EQ(got, best) << "trial " << trial;

    // Returned assignment must realize the reported cost.
    std::int64_t realized = 0;
    for (std::size_t i = 0; i < n; ++i) realized += cost[i][assignment[i]];
    EXPECT_EQ(realized, got);
  }
}

Table RandomM2Table(Rng& rng, std::size_t pairs, std::size_t qi_domain) {
  Schema schema = testutil::MakeSchema({qi_domain, qi_domain}, 2);
  Table table(schema);
  for (std::size_t i = 0; i < 2 * pairs; ++i) {
    std::vector<Value> qi{rng.Below(static_cast<std::uint32_t>(qi_domain)),
                          rng.Below(static_cast<std::uint32_t>(qi_domain))};
    table.AppendRow(qi, static_cast<SaValue>(i % 2));
  }
  return table;
}

TEST(ExactM2, ProducesTwoDiversePairPartition) {
  Rng rng(3);
  Table table = RandomM2Table(rng, 10, 4);
  ExactM2Result result = SolveExactM2(table);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.partition.CoversExactly(table));
  EXPECT_TRUE(IsLDiverse(table, result.partition, 2));
  for (const auto& group : result.partition.groups()) EXPECT_EQ(group.size(), 2u);
  EXPECT_EQ(PartitionStarCount(table, result.partition), result.stars);
}

TEST(ExactM2, MatchesExhaustiveStarMinimization) {
  // Section 4: for m = 2 the matching solution is an optimal 2-diverse
  // generalization. Cross-check against the O(3^n) solver.
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    Table table = RandomM2Table(rng, 2 + rng.Below(4), 3);
    ExactM2Result matching = SolveExactM2(table);
    ExactStarResult exhaustive = ExactStarMinimization(table, 2);
    ASSERT_TRUE(matching.feasible);
    ASSERT_TRUE(exhaustive.feasible);
    EXPECT_EQ(matching.stars, exhaustive.stars) << "trial " << trial;
  }
}

TEST(ExactM2, RejectsUnbalancedClasses) {
  Schema schema = testutil::MakeSchema({2}, 2);
  Table table(schema);
  std::vector<Value> qi{0};
  table.AppendRow(qi, 0);
  table.AppendRow(qi, 0);
  table.AppendRow(qi, 1);
  EXPECT_FALSE(SolveExactM2(table).feasible);
}

TEST(ExactM2, RejectsMoreThanTwoValues) {
  Schema schema = testutil::MakeSchema({2}, 3);
  Table table(schema);
  std::vector<Value> qi{0};
  table.AppendRow(qi, 0);
  table.AppendRow(qi, 1);
  table.AppendRow(qi, 2);
  EXPECT_FALSE(SolveExactM2(table).feasible);
}

TEST(ExactM2, IdenticalPairsCostZero) {
  Schema schema = testutil::MakeSchema({4, 4}, 2);
  Table table(schema);
  for (int i = 0; i < 4; ++i) {
    std::vector<Value> qi{static_cast<Value>(i), static_cast<Value>(i)};
    table.AppendRow(qi, 0);
    table.AppendRow(qi, 1);
  }
  ExactM2Result result = SolveExactM2(table);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.stars, 0u);
}

}  // namespace
}  // namespace ldv
