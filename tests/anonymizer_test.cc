// Facade tests.

#include "core/anonymizer.h"

#include <gtest/gtest.h>

#include "anonymity/generalization.h"
#include "test_util.h"

namespace ldv {
namespace {

TEST(Anonymizer, NamesAreStable) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kTp), "TP");
  EXPECT_STREQ(AlgorithmName(Algorithm::kTpPlus), "TP+");
  EXPECT_STREQ(AlgorithmName(Algorithm::kHilbert), "Hilbert");
  EXPECT_STREQ(AlgorithmName(Algorithm::kMondrian), "Mondrian");
  EXPECT_STREQ(AlgorithmName(Algorithm::kAnatomy), "Anatomy");
  EXPECT_STREQ(AlgorithmName(Algorithm::kTds), "TDS");
}

TEST(Anonymizer, ComputesBothObjectives) {
  Table table = testutil::PaperTable1();
  AnonymizationOutcome outcome = Anonymize(table, 2, Algorithm::kTp);
  ASSERT_TRUE(outcome.feasible);
  GeneralizedTable gen(table, outcome.partition);
  EXPECT_EQ(outcome.stars, gen.StarCount());
  EXPECT_EQ(outcome.suppressed_tuples, gen.SuppressedTupleCount());
}

TEST(Anonymizer, TpOnPaperTable1IsOptimal) {
  // Phase-one termination on Table 1 (l = 2) suppresses exactly the 4
  // tuples of the optimal solution; stars <= the Table 3 reference (8).
  Table table = testutil::PaperTable1();
  AnonymizationOutcome outcome = Anonymize(table, 2, Algorithm::kTp);
  ASSERT_TRUE(outcome.feasible);
  EXPECT_EQ(outcome.suppressed_tuples, 4u);
  EXPECT_EQ(outcome.tp_stats.terminated_phase, 1);
  EXPECT_LE(outcome.stars, 12u);  // 4 tuples x up to 3 attributes
}

TEST(Anonymizer, InfeasibleForLBeyondMaxFeasible) {
  Table table = testutil::PaperTable1();  // max feasible l is 2
  for (Algorithm algo : kAllAlgorithms) {
    EXPECT_FALSE(Anonymize(table, 3, algo).feasible) << AlgorithmName(algo);
  }
}

}  // namespace
}  // namespace ldv
