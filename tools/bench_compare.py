#!/usr/bin/env python3
"""Diff two BENCH_*.json perf-trajectory files and flag regressions.

Usage:
    tools/bench_compare.py BASELINE.json FRESH.json [--threshold PCT]

Compares the benchmarks present in BOTH files by name and prints one row
per series: baseline ns/op, fresh ns/op, and the ratio. Exits non-zero
when any shared series regressed by more than --threshold percent
(default 15). Series present in only one file are listed but never gate.

Stdlib-only on purpose: CI's bench-smoke job runs it as a soft gate
(warn + artifact), and developers run it locally after regenerating a
trajectory file. Timings on shared runners are noisy -- treat the exit
code as a prompt to look, not as proof of a regression.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    entries = {}
    for bench in report.get("benchmarks", []):
        name, ns = bench.get("name"), bench.get("ns_per_op")
        if not isinstance(name, str) or not isinstance(ns, (int, float)) or ns <= 0:
            sys.exit(f"bench_compare: malformed entry in {path}: {bench!r}")
        entries[name] = float(ns)
    if not entries:
        sys.exit(f"bench_compare: {path} holds no benchmarks")
    return entries


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed trajectory file")
    parser.add_argument("fresh", help="freshly generated trajectory file")
    parser.add_argument(
        "--threshold",
        type=float,
        default=15.0,
        metavar="PCT",
        help="regression gate in percent (default: 15)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)
    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        sys.exit("bench_compare: the files share no benchmark names")

    width = max(len(name) for name in shared)
    regressions = []
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'fresh':>12}  {'ratio':>7}")
    for name in shared:
        ratio = fresh[name] / baseline[name]
        flag = ""
        if ratio > 1.0 + args.threshold / 100.0:
            flag = "  << REGRESSION"
            regressions.append((name, ratio))
        print(
            f"{name:<{width}}  {baseline[name]:>12.1f}  {fresh[name]:>12.1f}"
            f"  {ratio:>6.2f}x{flag}"
        )

    for name in sorted(set(baseline) - set(fresh)):
        print(f"{name:<{width}}  only in {args.baseline}")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"{name:<{width}}  only in {args.fresh}")

    if regressions:
        print(
            f"\n{len(regressions)} series regressed by more than "
            f"{args.threshold:g}% (of {len(shared)} compared)"
        )
        return 1
    print(f"\nok: {len(shared)} series within {args.threshold:g}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
