// The `ldiv` command-line front-end: the end-to-end pipeline of the
// repository behind one binary. Loads a coded CSV (or generates an
// ACS-style synthetic table), runs any registered algorithm -- or a sweep
// over algorithms x (l, n, d) grids through the batched driver -- and
// writes the anonymized release plus a JSON/CSV metrics report.
//
//   ldiv --algo=tp+ --l=4 --input=micro.csv --out=release
//        --schema=Age:79,Gender:2,Education:17|Income:50
//   ldiv --algo=all --l=2,4 --dataset=sal --n=10000 --d=3 --sweep --out=grid
//
// Exit codes: 0 success, 1 usage error, 2 infeasible instance, 3 I/O error.

#include <cstdio>
#include <string>

#include "cli/cli_options.h"
#include "cli/pipeline.h"
#include "cli/report.h"
#include "common/csv.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitInfeasible = 2;
constexpr int kExitIo = 3;

}  // namespace

int main(int argc, char** argv) {
  using namespace ldv;

  CliOptions options;
  std::string error;
  if (!ParseCliOptions(argc, argv, &options, &error)) {
    std::fprintf(stderr, "ldiv: %s\n\n%s", error.c_str(), CliUsage(argv[0]).c_str());
    return kExitUsage;
  }
  if (options.help) {
    std::fprintf(stdout, "%s", CliUsage(argv[0]).c_str());
    return kExitOk;
  }

  PipelineResult result;
  if (!RunPipeline(options, &result, &error)) {
    std::fprintf(stderr, "ldiv: %s\n", error.c_str());
    return kExitIo;
  }

  if (!options.emit_input.empty()) {
    // ParseCliOptions guarantees a single-table grid when --emit-input is
    // set, so tables.front() is the one input.
    if (!WriteTableCsv(result.tables.front().table, options.emit_input)) {
      std::fprintf(stderr, "ldiv: cannot write '%s'\n", options.emit_input.c_str());
      return kExitIo;
    }
    std::fprintf(stderr, "wrote input table to %s\n", options.emit_input.c_str());
  }

  // A raw (dictionary-coded) input serializes its dictionaries alongside
  // the releases so the codes stay machine-recoverable.
  if (!result.tables.empty() && result.tables.front().table.schema().has_dictionaries()) {
    std::string dict_path = options.out + "_dict.csv";
    if (!WriteDictionaryCsv(result.tables.front().table.schema(), dict_path)) {
      std::fprintf(stderr, "ldiv: cannot write '%s'\n", dict_path.c_str());
      return kExitIo;
    }
    std::fprintf(stderr, "wrote value dictionaries to %s\n", dict_path.c_str());
  }

  // Releases: single-job runs always write one; sweeps write per-job
  // releases only on request (--write-releases).
  bool single = result.jobs.size() == 1;
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    if (!single && !options.write_releases) break;
    const PipelineJobResult& job = result.jobs[i];
    std::string stem = single ? options.out : options.out + ".job" + std::to_string(i);
    const Table& table = result.tables[job.spec.table_index].table;
    if (!WriteReleaseForOutcome(table, job.outcome, stem, &error)) {
      std::fprintf(stderr, "ldiv: %s\n", error.c_str());
      return kExitIo;
    }
  }

  ReportOptions report_options;
  report_options.include_seconds = options.timings;
  if (!WriteJsonReport(result, options.out + ".json", report_options, &error) ||
      !WriteMetricsCsv(result, options.out + "_metrics.csv", report_options, &error)) {
    std::fprintf(stderr, "ldiv: %s\n", error.c_str());
    return kExitIo;
  }

  // One summary line per job, in job order.
  std::size_t infeasible = 0;
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    const PipelineJobResult& job = result.jobs[i];
    const AnonymizationOutcome& outcome = job.outcome;
    if (!outcome.feasible) {
      ++infeasible;
      std::fprintf(stderr, "[%zu] %s: infeasible (table is not %u-eligible)\n", i,
                   RunSpecLabel(job.spec).c_str(), job.spec.l);
      continue;
    }
    std::fprintf(stderr,
                 "[%zu] %s: %llu stars, %llu suppressed, %zu groups, KL %.4f, %.3fs\n", i,
                 RunSpecLabel(job.spec).c_str(),
                 static_cast<unsigned long long>(outcome.stars),
                 static_cast<unsigned long long>(outcome.suppressed_tuples),
                 outcome.group_stats.group_count, outcome.kl_divergence, outcome.seconds);
  }
  std::fprintf(stderr, "report: %s.json, %s_metrics.csv (%zu jobs)\n", options.out.c_str(),
               options.out.c_str(), result.jobs.size());

  // A sweep treats infeasible cells as data; a single run fails loudly.
  if (single && infeasible > 0) return kExitInfeasible;
  return kExitOk;
}
