// The `ldiv` command-line front-end: the end-to-end pipeline of the
// repository behind one binary. Loads a coded CSV (or generates an
// ACS-style synthetic table), runs any registered algorithm -- or a sweep
// over algorithms x (l, n, d) grids through the batched driver -- and
// writes the anonymized release plus a JSON/CSV metrics report.
//
//   ldiv --algo=tp+ --l=4 --input=micro.csv --out=release
//        --schema=Age:79,Gender:2,Education:17|Income:50
//   ldiv --algo=all --l=2,4 --dataset=sal --n=10000 --d=3 --sweep --out=grid
//
// Subcommands turn the same pipeline into a service (see README):
//
//   ldiv serve --socket=/tmp/ldivd.sock --queue-depth=16
//   ldiv submit --socket=/tmp/ldivd.sock --algo=tp+ --l=4 --out=release
//   ldiv ctl --socket=/tmp/ldivd.sock stats|ping|shutdown
//
// Exit codes: 0 success, 1 usage error, 2 infeasible instance, 3 I/O
// error, 4 daemon unavailable / backpressure / expired deadline.

#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli_options.h"
#include "cli/pipeline.h"
#include "common/flags.h"
#include "common/memory_budget.h"
#include "daemon/client.h"
#include "daemon/daemon.h"
#include "daemon/protocol.h"
#include "engine/report.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitUnavailable = 4;

// Set by the SIGINT/SIGTERM handler; a watcher thread turns it into a
// graceful Daemon::Stop (the handler itself must stay async-signal-safe).
std::atomic<bool> g_signal_stop{false};

void OnStopSignal(int) { g_signal_stop.store(true, std::memory_order_relaxed); }

// The daemon's CWD is not the client's: every path in a submitted spec
// crosses the socket absolutized.
std::string Absolutize(const std::string& path) {
  if (path.empty() || path.front() == '/') return path;
  char cwd[4096];
  if (::getcwd(cwd, sizeof cwd) == nullptr) return path;
  return std::string(cwd) + "/" + path;
}

int OneShotMain(int argc, char** argv) {
  using namespace ldv;

  CliOptions options;
  std::string error;
  if (!ParseCliOptions(argc, argv, &options, &error)) {
    std::fprintf(stderr, "ldiv: %s\n\n%s", error.c_str(), CliUsage(argv[0]).c_str());
    return kExitUsage;
  }
  if (options.help) {
    std::fprintf(stdout, "%s", CliUsage(argv[0]).c_str());
    return kExitOk;
  }

  Expected<PipelineResult, PipelineError> run = RunPipeline(options);
  if (!run.ok()) {
    std::fprintf(stderr, "ldiv: %s\n", run.error().message.c_str());
    return ExitCodeFor(run.error().code);
  }
  const PipelineResult& result = run.value();

  std::string notices;
  if (std::optional<PipelineError> write_error =
          WriteJobOutputs(ToJobSpec(options), result, &notices)) {
    std::fprintf(stderr, "ldiv: %s\n", write_error->message.c_str());
    return ExitCodeFor(write_error->code);
  }
  std::fprintf(stderr, "%s", notices.c_str());

  // One summary line per job, in job order.
  std::size_t infeasible = 0;
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    const PipelineJobResult& job = result.jobs[i];
    const AnonymizationOutcome& outcome = job.outcome;
    if (!outcome.feasible) {
      ++infeasible;
      std::fprintf(stderr, "[%zu] %s: infeasible (table is not %u-eligible)\n", i,
                   RunSpecLabel(job.spec).c_str(), job.spec.l);
      continue;
    }
    std::fprintf(stderr,
                 "[%zu] %s: %llu stars, %llu suppressed, %zu groups, KL %.4f, %.3fs\n", i,
                 RunSpecLabel(job.spec).c_str(),
                 static_cast<unsigned long long>(outcome.stars),
                 static_cast<unsigned long long>(outcome.suppressed_tuples),
                 outcome.group_stats.group_count, outcome.kl_divergence, outcome.seconds);
  }
  std::fprintf(stderr, "report: %s.json, %s_metrics.csv (%zu jobs)\n", options.out.c_str(),
               options.out.c_str(), result.jobs.size());

  // A sweep treats infeasible cells as data; a single run fails loudly.
  if (result.jobs.size() == 1 && infeasible > 0) {
    return ExitCodeFor(PipelineErrorCode::kInfeasible);
  }
  return kExitOk;
}

int ServeMain(int argc, char** argv) {
  using namespace ldv;

  FlagSet flags;
  std::string error;
  constexpr std::array<std::string_view, 7> kServeFlags = {
      "socket",         "queue-depth",    "workers",      "cache-bytes",
      "artifact-cache", "retry-after-ms", "io-timeout-ms"};
  DaemonOptions options;
  std::uint64_t queue_depth = 16;
  std::uint64_t workers = 1;
  std::string cache_text;
  std::string artifact_text;
  std::uint64_t retry_after_ms = 100;
  std::uint64_t io_timeout_ms = 10000;
  bool parsed = flags.ParseArgs(argc, argv, &error) &&
                flags.GetString("socket", "", &options.socket_path, &error) &&
                flags.GetUint64("queue-depth", 16, &queue_depth, &error) &&
                flags.GetUint64("workers", 1, &workers, &error) &&
                flags.GetString("cache-bytes", "256M", &cache_text, &error) &&
                flags.GetString("artifact-cache", "", &artifact_text, &error) &&
                flags.GetUint64("retry-after-ms", 100, &retry_after_ms, &error) &&
                flags.GetUint64("io-timeout-ms", 10000, &io_timeout_ms, &error);
  if (parsed) {
    std::vector<std::string> unknown =
        flags.UnknownKeys(std::span<const std::string_view>(kServeFlags));
    if (!unknown.empty()) {
      parsed = false;
      error = "unknown flag --" + unknown.front() + " (see --help)";
    }
  }
  if (parsed && options.socket_path.empty()) {
    parsed = false;
    error = "serve requires --socket=PATH";
  }
  if (parsed && !ParseByteSize(cache_text, &options.cache_bytes, &error)) {
    parsed = false;
    error = "--cache-bytes: " + error;
  }
  if (parsed && !artifact_text.empty() &&
      !ParseByteSize(artifact_text, &options.artifact_cache_bytes, &error)) {
    parsed = false;
    error = "--artifact-cache: " + error;
  }
  if (parsed && queue_depth == 0) {
    parsed = false;
    error = "--queue-depth must be at least 1";
  }
  if (!parsed) {
    std::fprintf(stderr, "ldiv serve: %s\n", error.c_str());
    return kExitUsage;
  }
  options.queue_depth = static_cast<std::size_t>(queue_depth);
  options.workers = static_cast<std::size_t>(workers);
  options.retry_after_ms = static_cast<std::uint32_t>(retry_after_ms);
  options.io_timeout_ms = static_cast<std::uint32_t>(io_timeout_ms);

  // Daemon::Start ignores SIGPIPE too, but do it before Start so even the
  // startup error paths cannot die to a racing peer.
  std::signal(SIGPIPE, SIG_IGN);

  Daemon daemon(options);
  if (!daemon.Start(&error)) {
    std::fprintf(stderr, "ldiv serve: %s\n", error.c_str());
    // Colliding with a live daemon is an operator mistake, not an I/O
    // fault -- exit 1 so scripts can tell the two apart.
    if (error.find("already listening") != std::string::npos) return kExitUsage;
    return ExitCodeFor(PipelineErrorCode::kIo);
  }
  std::fprintf(stderr, "ldivd listening on %s (queue %zu, %zu worker%s)\n",
               options.socket_path.c_str(), options.queue_depth, options.workers,
               options.workers == 1 ? "" : "s");

  std::signal(SIGINT, OnStopSignal);
  std::signal(SIGTERM, OnStopSignal);
  std::thread signal_watcher([&daemon] {
    while (!g_signal_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    daemon.Stop();
  });

  daemon.WaitForShutdown();
  // Unblock the watcher if shutdown came over the socket, not a signal.
  g_signal_stop.store(true, std::memory_order_relaxed);
  signal_watcher.join();
  std::fprintf(stderr, "ldivd drained and stopped\n");
  return kExitOk;
}

int SubmitMain(int argc, char** argv) {
  using namespace ldv;

  constexpr std::array<std::string_view, 4> kSubmitFlags = {"socket", "priority", "deadline-ms",
                                                            "retry"};
  CliOptions options;
  FlagSet raw_flags;
  std::string error;
  if (!ParseCliOptions(argc, argv, &options, &error,
                       std::span<const std::string_view>(kSubmitFlags), &raw_flags)) {
    std::fprintf(stderr, "ldiv submit: %s\n\n%s", error.c_str(), CliUsage(argv[0]).c_str());
    return kExitUsage;
  }
  if (options.help) {
    std::fprintf(stdout, "%s", CliUsage(argv[0]).c_str());
    return kExitOk;
  }

  std::string socket_path;
  std::uint32_t priority = 0;
  std::uint64_t deadline_ms = 0;
  std::uint64_t retries = 0;
  if (!raw_flags.GetString("socket", "", &socket_path, &error) ||
      !raw_flags.GetUint32("priority", 0, &priority, &error) ||
      !raw_flags.GetUint64("deadline-ms", 0, &deadline_ms, &error) ||
      !raw_flags.GetUint64("retry", 0, &retries, &error)) {
    std::fprintf(stderr, "ldiv submit: %s\n", error.c_str());
    return kExitUsage;
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "ldiv submit: submit requires --socket=PATH\n");
    return kExitUsage;
  }

  options.input = Absolutize(options.input);
  options.out = Absolutize(options.out);
  options.emit_input = Absolutize(options.emit_input);
  JobSpec spec = ToJobSpec(options);
  spec.priority = priority;
  spec.deadline_ms = deadline_ms;

  // Jittered exponential backoff against `busy` backpressure: the daemon's
  // retry-after-ms hint is the base, doubled per attempt (capped at 10s),
  // and the actual sleep is uniform in [base/2, base] so a flood of
  // rejected clients does not re-arrive in lockstep.
  std::mt19937 jitter(static_cast<std::uint32_t>(::getpid()) ^
                      static_cast<std::uint32_t>(
                          std::chrono::steady_clock::now().time_since_epoch().count()));
  Frame reply;
  std::map<std::string, std::string> kv;
  for (std::uint64_t attempt = 0;; ++attempt) {
    kv.clear();
    if (!DaemonRequest(socket_path, Frame{"job", SerializeJobSpec(spec)}, &reply, &kv, &error)) {
      std::fprintf(stderr, "ldiv submit: %s\n", error.c_str());
      return kExitUnavailable;
    }
    if (reply.verb != "busy") break;
    if (attempt >= retries) {
      std::fprintf(stderr, "ldiv submit: %s (retry after %s ms)\n", kv["error"].c_str(),
                   kv["retry-after-ms"].c_str());
      return kExitUnavailable;
    }
    std::uint64_t hint_ms = 100;
    ParseUint64(kv["retry-after-ms"], &hint_ms);
    if (hint_ms == 0) hint_ms = 1;
    const std::uint64_t shift = attempt < 16 ? attempt : 16;
    const std::uint64_t base = std::min<std::uint64_t>(10000, hint_ms << shift);
    const std::uint64_t delay = base / 2 + jitter() % (base / 2 + 1);
    std::fprintf(stderr, "ldiv submit: daemon busy, retrying in %llu ms (%llu of %llu)\n",
                 static_cast<unsigned long long>(delay),
                 static_cast<unsigned long long>(attempt + 1),
                 static_cast<unsigned long long>(retries));
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
  if (reply.verb != "ok") {
    std::fprintf(stderr, "ldiv submit: %s\n", kv["error"].c_str());
    int exit_code = kExitUnavailable;
    std::uint64_t parsed_code = 0;
    if (ParseUint64(kv["exit-code"], &parsed_code) && parsed_code != 0) {
      exit_code = static_cast<int>(parsed_code);
    }
    return exit_code;
  }

  // Mirror the one-shot CLI: notices to stderr, the result summary (the
  // reply's key = value lines) to stdout, exit status from the server.
  for (std::size_t i = 0;; ++i) {
    auto notice = kv.find("notice-" + std::to_string(i));
    if (notice == kv.end()) break;
    std::fprintf(stderr, "%s\n", notice->second.c_str());
  }
  for (const auto& [key, value] : kv) {
    if (key.rfind("notice-", 0) == 0) continue;
    std::fprintf(stdout, "%s = %s\n", key.c_str(), value.c_str());
  }
  std::uint64_t exit_code = 0;
  ParseUint64(kv["exit-code"], &exit_code);
  return static_cast<int>(exit_code);
}

int CtlMain(int argc, char** argv) {
  using namespace ldv;

  // The command is the one positional token; everything else is flags.
  std::string command;
  std::vector<char*> flag_argv = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-' && command.empty()) {
      command = argv[i];
    } else {
      flag_argv.push_back(argv[i]);
    }
  }

  FlagSet flags;
  std::string error;
  std::string socket_path;
  constexpr std::array<std::string_view, 1> kCtlFlags = {"socket"};
  bool parsed = flags.ParseArgs(static_cast<int>(flag_argv.size()), flag_argv.data(), &error) &&
                flags.GetString("socket", "", &socket_path, &error);
  if (parsed) {
    std::vector<std::string> unknown =
        flags.UnknownKeys(std::span<const std::string_view>(kCtlFlags));
    if (!unknown.empty()) {
      parsed = false;
      error = "unknown flag --" + unknown.front() + " (see --help)";
    }
  }
  if (parsed && socket_path.empty()) {
    parsed = false;
    error = "ctl requires --socket=PATH";
  }
  if (parsed && command != "stats" && command != "ping" && command != "shutdown") {
    parsed = false;
    error = "ctl expects one command: stats | ping | shutdown";
  }
  if (!parsed) {
    std::fprintf(stderr, "ldiv ctl: %s\n", error.c_str());
    return kExitUsage;
  }

  Frame reply;
  std::map<std::string, std::string> kv;
  if (!DaemonRequest(socket_path, Frame{command, ""}, &reply, &kv, &error)) {
    std::fprintf(stderr, "ldiv ctl: %s\n", error.c_str());
    return kExitUnavailable;
  }
  if (reply.verb != "ok") {
    std::fprintf(stderr, "ldiv ctl: %s\n", kv["error"].c_str());
    return kExitUnavailable;
  }
  for (const auto& [key, value] : kv) {
    std::fprintf(stdout, "%s = %s\n", key.c_str(), value.c_str());
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  // Subcommand dispatch: a non-flag argv[1] selects the daemon verbs; the
  // flag-only form stays the one-shot pipeline for compatibility.
  const std::string verb = argc > 1 && argv[1][0] != '-' ? argv[1] : "";
  if (verb.empty()) return OneShotMain(argc, argv);

  std::vector<char*> rest = {argv[0]};
  for (int i = 2; i < argc; ++i) rest.push_back(argv[i]);
  const int rest_argc = static_cast<int>(rest.size());
  if (verb == "serve") return ServeMain(rest_argc, rest.data());
  if (verb == "submit") return SubmitMain(rest_argc, rest.data());
  if (verb == "ctl") return CtlMain(rest_argc, rest.data());

  std::fprintf(stderr, "ldiv: unknown subcommand '%s' (expected serve, submit or ctl)\n\n%s",
               verb.c_str(), ldv::CliUsage(argv[0]).c_str());
  return kExitUsage;
}
