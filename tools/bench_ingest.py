#!/usr/bin/env python3
"""Merge a freshly generated BENCH_*.json into the committed trajectory.

Usage:
    tools/bench_ingest.py FRESH.json [--into BENCH_micro.json] [--dry-run]

Takes the trajectory file a bench binary just wrote (FRESH.json, e.g.
build/BENCH_micro.json) and folds it into the committed copy: series are
keyed by name, fresh datapoints replace same-named committed ones, and
series the fresh run did not exercise (a filtered run, a host without a
bench leg) keep their committed values. The merged file is rewritten in
the bench binaries' own formatting -- one datapoint per line, fields in
(name, ns_per_op, n, attrs, threads, simd) order -- so the diff against
the previous commit stays one line per re-measured series.

Stdlib-only on purpose, like tools/bench_compare.py: it runs on bare CI
runners and developer hosts with no packages installed.
"""

import argparse
import json
import sys

# Field order of bench_util.h's JsonReport::WriteTo; preserved so merged
# files are byte-compatible with freshly generated ones.
FIELD_ORDER = ("name", "ns_per_op", "n", "attrs", "threads", "simd")


def load(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_ingest: cannot read {path}: {e}")
    if not isinstance(report.get("tool"), str):
        sys.exit(f"bench_ingest: {path} has no 'tool' field")
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, list):
        sys.exit(f"bench_ingest: {path} has no 'benchmarks' list")
    for bench in benchmarks:
        name, ns = bench.get("name"), bench.get("ns_per_op")
        if not isinstance(name, str) or not isinstance(ns, (int, float)) or ns <= 0:
            sys.exit(f"bench_ingest: malformed entry in {path}: {bench!r}")
        unknown = set(bench) - set(FIELD_ORDER)
        if unknown:
            sys.exit(f"bench_ingest: unknown fields {sorted(unknown)} in {path}: {bench!r}")
    return report


def format_entry(bench):
    parts = [f'"name": {json.dumps(bench["name"])}']
    parts.append(f'"ns_per_op": {float(bench["ns_per_op"]):.1f}')
    for field in ("n", "attrs", "threads"):
        if field in bench:
            parts.append(f'"{field}": {int(bench[field])}')
    if "simd" in bench:
        parts.append(f'"simd": {json.dumps(bench["simd"])}')
    return "{" + ", ".join(parts) + "}"


def render(tool, benchmarks):
    lines = ["{", f'  "tool": "{tool}",', '  "benchmarks": [']
    for i, bench in enumerate(benchmarks):
        comma = "," if i + 1 < len(benchmarks) else ""
        lines.append(f"    {format_entry(bench)}{comma}")
    lines.append("  ]")
    lines.append("}")
    return "\n".join(lines) + "\n"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="trajectory file a bench binary just wrote")
    parser.add_argument(
        "--into",
        default="BENCH_micro.json",
        metavar="PATH",
        help="committed trajectory to merge into (default: BENCH_micro.json)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the merged file instead of rewriting --into",
    )
    args = parser.parse_args()

    fresh = load(args.fresh)
    committed = load(args.into)
    if committed["benchmarks"] and fresh["tool"] != committed["tool"]:
        sys.exit(
            f"bench_ingest: tool mismatch: {args.fresh} is from "
            f"'{fresh['tool']}', {args.into} from '{committed['tool']}'"
        )

    fresh_by_name = {bench["name"]: bench for bench in fresh["benchmarks"]}
    merged = []
    replaced = 0
    for bench in committed["benchmarks"]:
        new = fresh_by_name.pop(bench["name"], None)
        if new is not None:
            replaced += 1
        merged.append(new if new is not None else bench)
    appended = list(fresh_by_name.values())  # insertion order = fresh file order
    merged.extend(appended)

    text = render(fresh["tool"], merged)
    if args.dry_run:
        sys.stdout.write(text)
    else:
        try:
            with open(args.into, "w") as f:
                f.write(text)
        except OSError as e:
            sys.exit(f"bench_ingest: cannot write {args.into}: {e}")
    kept = len(merged) - replaced - len(appended)
    print(
        f"bench_ingest: {args.into}: {replaced} series re-measured, "
        f"{len(appended)} new, {kept} kept",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
