#ifndef LDIV_DAEMON_DAEMON_H_
#define LDIV_DAEMON_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/job_spec.h"

namespace ldv {

struct DaemonOptions {
  /// Unix-domain socket path. Start probes an existing socket file with a
  /// connect: a stale one (crashed daemon) is unlinked and replaced, a
  /// live one is a startup error -- never silently hijacked. The daemon
  /// removes its own file at shutdown.
  std::string socket_path;
  /// Admission-queue depth. A job arriving when `queue_depth` jobs are
  /// already waiting gets a `busy` reply (with retry-after-ms) instead of
  /// queueing -- bounded memory and explicit backpressure by design.
  std::size_t queue_depth = 16;
  /// Worker threads draining the queue. Budgets (threads, memory) are
  /// process-global, so Engine::Execute serializes solves internally;
  /// extra workers overlap job parsing/reply I/O, not anonymization.
  std::size_t workers = 1;
  /// DatasetCache capacity for the daemon's engine.
  std::uint64_t cache_bytes = 256u << 20;
  /// ArtifactCache capacity (memoized GroupedTable builds + Hilbert row
  /// orders shared across requests). kArtifactCacheAuto = engine default;
  /// 0 disables cross-request artifact reuse.
  std::uint64_t artifact_cache_bytes = kArtifactCacheAuto;
  /// The retry hint carried in `busy` replies.
  std::uint32_t retry_after_ms = 100;
  /// Per-connection I/O patience: how long a peer may send nothing while
  /// the daemon waits on its frame (ReadFrame's silence budget) and how
  /// long a reply write may stall on a peer that stops draining its
  /// socket. 0 = unbounded (tests of slow paths set it small).
  std::uint32_t io_timeout_ms = 10000;
};

/// The `ldivd` anonymization daemon: accepts serialized JobSpecs over a
/// unix socket, runs them through one shared Engine (so repeated inputs
/// hit the DatasetCache), and replies with per-job result metadata. See
/// daemon/protocol.h for the wire format.
///
/// Threading: an accept loop spawns one short-lived handler per
/// connection; handlers parse the request and either reply directly
/// (stats/ping/errors/busy) or enqueue the job with its connection fd,
/// whose ownership passes to the worker that will run the job and write
/// the reply. Dequeue order is priority (desc), then deadline (asc, 0 =
/// none = last), then arrival. A job whose deadline has passed at
/// dequeue time gets an error reply without running.
///
/// Shutdown (Stop or a `shutdown` request) is graceful: stop accepting,
/// drain every queued job, join the workers, unlink the socket. Nothing
/// accepted is ever dropped without a reply.
class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket and starts the accept loop and workers. Returns
  /// false with a one-line reason (bad path, bind failure) on error.
  bool Start(std::string* error);

  /// Blocks until a shutdown request (or Stop from another thread) has
  /// fully drained the daemon.
  void WaitForShutdown();

  /// Initiates graceful shutdown; idempotent, callable from any thread
  /// (including a signal-watcher).
  void Stop();

  struct Stats {
    std::uint64_t accepted = 0;         // jobs admitted to the queue
    std::uint64_t completed = 0;        // jobs run to a reply
    std::uint64_t rejected_busy = 0;    // busy replies (queue full)
    std::uint64_t rejected_error = 0;   // malformed requests
    std::uint64_t expired = 0;          // deadline passed before dequeue
    std::uint64_t failed = 0;           // accepted jobs that ran to an error reply
    std::uint64_t max_queue_depth = 0;  // high-water mark of waiting jobs
    std::uint64_t cache_hits = 0;       // DatasetCache hits across jobs
    std::uint64_t cache_misses = 0;
    std::uint64_t bypassed_paged = 0;   // DatasetCache bypasses (paged loads)
    std::uint64_t artifact_hits = 0;    // ArtifactCache hits across jobs
    std::uint64_t artifact_misses = 0;
  };
  Stats stats() const;

  Engine& engine() { return engine_; }

 private:
  struct PendingJob {
    JobSpec spec;
    std::uint64_t seq = 0;  // admission order, the final tie-breaker
    std::int64_t deadline_at_ms = 0;  // absolute monotonic ms; 0 = none
    int fd = -1;  // owned: the worker replies on it and closes it
  };

  void AcceptLoop();
  void HandleConnection(int fd);
  void WorkerLoop();
  // Pops the best runnable job; false when stopping and drained.
  bool Dequeue(PendingJob* job);
  void RunJob(PendingJob job);
  void ReapHandlers(bool all);

  DaemonOptions options_;
  Engine engine_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;     // workers wait here
  std::condition_variable shutdown_cv_;  // WaitForShutdown waits here
  std::deque<PendingJob> queue_;
  std::uint64_t next_seq_ = 0;
  bool drained_ = false;
  Stats stats_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::vector<std::thread> handlers_;  // guarded by mutex_
};

}  // namespace ldv

#endif  // LDIV_DAEMON_DAEMON_H_
