#include "daemon/protocol.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <charconv>
#include <cstring>

#include "common/failpoint.h"

namespace ldv {

namespace {

// One poll slice: how long a blocked read waits before rechecking the
// cancel flag.
constexpr int kPollSliceMs = 200;

std::string_view TrimView(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) text.remove_prefix(1);
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

// Reads exactly `bytes` into `data`, polling in slices so cancellation
// and the silence budget are honored. Returns false with a reason on
// EOF/error/timeout/cancel.
bool ReadExact(int fd, char* data, std::size_t bytes, std::string* error,
               const std::atomic<bool>* cancel, int silence_budget_ms) {
  int waited_ms = 0;
  while (bytes > 0) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      *error = "read cancelled (daemon shutting down)";
      return false;
    }
    struct pollfd pfd = {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollSliceMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      *error = std::string("poll: ") + std::strerror(errno);
      return false;
    }
    if (ready == 0) {
      waited_ms += kPollSliceMs;
      if (silence_budget_ms > 0 && waited_ms >= silence_budget_ms) {
        *error = "timed out waiting for frame bytes";
        return false;
      }
      continue;
    }
    const ssize_t got = ::recv(fd, data, bytes, 0);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      *error = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    if (got == 0) {
      *error = "connection closed mid-frame";
      return false;
    }
    data += got;
    bytes -= static_cast<std::size_t>(got);
    waited_ms = 0;
  }
  return true;
}

}  // namespace

bool ReadFrame(int fd, Frame* frame, std::string* error, const std::atomic<bool>* cancel,
               int silence_budget_ms) {
  failpoint::Injection injection;
  if (failpoint::Check(failpoint::Site::kDaemonRead, &injection)) {
    *error = failpoint::Describe(failpoint::Site::kDaemonRead, injection, "recv");
    return false;
  }
  // Header: read byte-by-byte to the newline. Headers are tiny
  // ("ldiv1 job 123\n"), so the per-byte reads are noise next to the
  // payload read that follows.
  std::string header;
  char c = 0;
  while (true) {
    if (!ReadExact(fd, &c, 1, error, cancel, silence_budget_ms)) {
      if (header.empty() && *error == "connection closed mid-frame") *error = "connection closed";
      return false;
    }
    if (c == '\n') break;
    header.push_back(c);
    if (header.size() > 128) {
      *error = "oversized frame header";
      return false;
    }
  }

  const std::size_t magic_end = header.find(' ');
  if (magic_end == std::string::npos ||
      std::string_view(header).substr(0, magic_end) != kProtocolMagic) {
    *error = "bad frame magic (expected '" + std::string(kProtocolMagic) + " <verb> <nbytes>')";
    return false;
  }
  const std::size_t verb_end = header.find(' ', magic_end + 1);
  if (verb_end == std::string::npos) {
    *error = "bad frame header '" + header + "'";
    return false;
  }
  frame->verb = header.substr(magic_end + 1, verb_end - magic_end - 1);

  std::size_t payload_bytes = 0;
  const char* size_begin = header.data() + verb_end + 1;
  const char* size_end = header.data() + header.size();
  auto [ptr, ec] = std::from_chars(size_begin, size_end, payload_bytes);
  if (ec != std::errc{} || ptr != size_end || frame->verb.empty()) {
    *error = "bad frame header '" + header + "'";
    return false;
  }
  if (payload_bytes > kMaxFramePayload) {
    *error = "frame payload of " + std::to_string(payload_bytes) + " bytes exceeds the " +
             std::to_string(kMaxFramePayload) + "-byte limit";
    return false;
  }

  frame->payload.resize(payload_bytes);
  return payload_bytes == 0 ||
         ReadExact(fd, frame->payload.data(), payload_bytes, error, cancel, silence_budget_ms);
}

bool WriteFrame(int fd, const Frame& frame, std::string* error, int deadline_ms) {
  failpoint::Injection injection;
  if (failpoint::Check(failpoint::Site::kDaemonWrite, &injection)) {
    if (error != nullptr) {
      *error = failpoint::Describe(failpoint::Site::kDaemonWrite, injection, "send");
    }
    return false;
  }
  std::string wire = std::string(kProtocolMagic) + " " + frame.verb + " " +
                     std::to_string(frame.payload.size()) + "\n" + frame.payload;
  const char* data = wire.data();
  std::size_t bytes = wire.size();
  int waited_ms = 0;
  while (bytes > 0) {
    if (deadline_ms > 0) {
      // Bounded mode: wait for writability in slices so a peer that stops
      // draining its socket (full buffer, suspended process) cannot pin
      // this thread past the deadline.
      struct pollfd pfd = {};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      const int ready = ::poll(&pfd, 1, kPollSliceMs);
      if (ready < 0) {
        if (errno == EINTR) continue;
        if (error != nullptr) *error = std::string("poll: ") + std::strerror(errno);
        return false;
      }
      if (ready == 0) {
        waited_ms += kPollSliceMs;
        if (waited_ms >= deadline_ms) {
          if (error != nullptr) *error = "timed out writing frame";
          return false;
        }
        continue;
      }
    }
    // MSG_NOSIGNAL: a client that disconnected before its reply must
    // surface as EPIPE, not kill the daemon with SIGPIPE.
    const ssize_t sent =
        ::send(fd, data, bytes, MSG_NOSIGNAL | (deadline_ms > 0 ? MSG_DONTWAIT : 0));
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (deadline_ms > 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      if (error != nullptr) *error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    data += sent;
    bytes -= static_cast<std::size_t>(sent);
    waited_ms = 0;
  }
  return true;
}

std::string EncodeKvPayload(const std::map<std::string, std::string>& pairs) {
  std::string payload;
  for (const auto& [key, value] : pairs) {
    payload += key + " = " + value + "\n";
  }
  return payload;
}

bool ParseKvPayload(std::string_view payload, std::map<std::string, std::string>* pairs,
                    std::string* error) {
  if (payload.find('\0') != std::string_view::npos) {
    // A NUL would survive into C-string-shaped sinks (paths, error
    // messages) and silently truncate there; no legitimate payload
    // carries one.
    if (error != nullptr) *error = "payload contains a NUL byte";
    return false;
  }
  std::size_t line_number = 0;
  while (!payload.empty()) {
    const std::size_t eol = payload.find('\n');
    std::string_view line = payload.substr(0, eol);
    payload.remove_prefix(eol == std::string_view::npos ? payload.size() : eol + 1);
    ++line_number;
    if (TrimView(line).empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      if (error != nullptr) {
        *error = "payload line " + std::to_string(line_number) + " without '=': '" +
                 std::string(line) + "'";
      }
      return false;
    }
    std::string key(TrimView(line.substr(0, eq)));
    if (key.empty()) {
      if (error != nullptr) {
        *error = "payload line " + std::to_string(line_number) + " has an empty key";
      }
      return false;
    }
    if (key.size() > kMaxPayloadKeyBytes) {
      if (error != nullptr) {
        *error = "payload line " + std::to_string(line_number) + " key of " +
                 std::to_string(key.size()) + " bytes exceeds the " +
                 std::to_string(kMaxPayloadKeyBytes) + "-byte limit";
      }
      return false;
    }
    std::string value(TrimView(line.substr(eq + 1)));
    if (!pairs->emplace(std::move(key), std::move(value)).second) {
      if (error != nullptr) {
        *error = "payload line " + std::to_string(line_number) + " repeats an earlier key";
      }
      return false;
    }
  }
  return true;
}

}  // namespace ldv
