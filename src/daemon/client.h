#ifndef LDIV_DAEMON_CLIENT_H_
#define LDIV_DAEMON_CLIENT_H_

#include <map>
#include <string>

#include "daemon/protocol.h"

namespace ldv {

/// One daemon round trip: connect to `socket_path`, send `request`, read
/// the reply frame into `*reply` and its parsed payload into `*kv`.
/// Connection refusals are retried briefly (the serve/submit race in
/// scripts: the daemon may still be binding); a missing socket after the
/// retry budget, a refused connection or a protocol error all return
/// false with a one-line reason.
bool DaemonRequest(const std::string& socket_path, const Frame& request, Frame* reply,
                   std::map<std::string, std::string>* kv, std::string* error);

}  // namespace ldv

#endif  // LDIV_DAEMON_CLIENT_H_
