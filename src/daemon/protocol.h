#ifndef LDIV_DAEMON_PROTOCOL_H_
#define LDIV_DAEMON_PROTOCOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace ldv {

/// The ldivd wire protocol, version 1. One frame per request and one per
/// reply, over a unix stream socket:
///
///   ldiv1 <verb> <nbytes>\n
///   <nbytes bytes of payload>
///
/// The header is ASCII (trivially inspectable with socat); the payload is
/// `key = value` lines -- a job request carries a serialized JobSpec
/// (engine/job_spec.h) plus client keys (priority, deadline-ms), replies
/// carry result or error keys. Verbs:
///
///   requests:  job | stats | ping | shutdown
///   replies:   ok | busy | error
///
/// `busy` is the explicit backpressure reply (queue full); its payload
/// carries retry-after-ms. A full queue NEVER silently drops or hangs a
/// connection -- every accepted frame gets exactly one reply frame.
inline constexpr std::string_view kProtocolMagic = "ldiv1";

/// Upper bound on a frame payload. A serialized JobSpec is a few hundred
/// bytes; 1 MiB leaves room for pathological flag values while bounding
/// what a client can make the daemon buffer.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

/// Upper bound on one key in a kv payload. Engine flag names are a dozen
/// characters; 256 bounds the per-key allocations a hostile payload can
/// force while leaving room for namespaced client keys.
inline constexpr std::size_t kMaxPayloadKeyBytes = 256;

struct Frame {
  std::string verb;
  std::string payload;
};

/// Reads one frame from `fd`. Blocks in ~200ms slices so a daemon
/// shutdown (signalled through `*cancel`, may be null) interrupts a
/// half-read frame instead of waiting on a stalled client forever.
/// `silence_budget_ms` bounds how long the peer may send NOTHING (it
/// resets on every byte): the daemon uses the ~10s default against
/// stalled clients; a submit client waiting on a queued job passes 0 =
/// unbounded, since a daemon crash still surfaces as EOF. Returns false
/// on EOF, malformed header, oversized payload, budget exhaustion or
/// cancellation, with a one-line reason in `*error`.
bool ReadFrame(int fd, Frame* frame, std::string* error,
               const std::atomic<bool>* cancel = nullptr, int silence_budget_ms = 10000);

/// Writes one frame to `fd` (MSG_NOSIGNAL -- a vanished client must not
/// SIGPIPE the daemon). `deadline_ms > 0` bounds how long a peer that
/// stops draining its socket may stall the write (polled in slices, like
/// ReadFrame's silence budget); 0 blocks until the kernel accepts the
/// bytes. Returns false on any short write, error, or expired deadline.
bool WriteFrame(int fd, const Frame& frame, std::string* error, int deadline_ms = 0);

/// Renders `pairs` as the protocol's `key = value\n` payload lines.
/// Values must be single-line; keys are emitted in map order so payloads
/// are deterministic.
std::string EncodeKvPayload(const std::map<std::string, std::string>& pairs);

/// Parses a reply payload's `key = value` lines. Stricter than the
/// FlagSet config parser on purpose: no comments, no continuation -- a
/// value is everything after the first '=' (trimmed), so error messages
/// survive the round trip verbatim. Returns false, with a line-numbered
/// reason, on a NUL byte anywhere in the payload, a line with no '=', an
/// empty key, a key over kMaxPayloadKeyBytes, or a duplicate key (silent
/// last-wins would let a smuggled second `out = ...` redirect a job's
/// outputs).
bool ParseKvPayload(std::string_view payload, std::map<std::string, std::string>* pairs,
                    std::string* error);

}  // namespace ldv

#endif  // LDIV_DAEMON_PROTOCOL_H_
