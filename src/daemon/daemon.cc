#include "daemon/daemon.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <exception>

#include "common/failpoint.h"
#include "daemon/protocol.h"
#include "engine/error.h"

namespace ldv {

namespace {

constexpr int kAcceptPollMs = 200;

std::int64_t MonotonicMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ReplyBestEffort(int fd, const Frame& frame, int deadline_ms) {
  std::string ignored;
  WriteFrame(fd, frame, &ignored, deadline_ms);
}

// True when a live daemon answers on `path` -- distinguishes a stale
// socket file (crashed daemon; safe to replace) from an active one.
bool SocketAnswers(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  struct sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const bool answered =
      ::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr), sizeof(addr)) == 0;
  ::close(fd);
  return answered;
}

Frame ErrorFrame(const PipelineError& error) {
  std::map<std::string, std::string> kv;
  kv["error"] = error.message;
  if (!error.field.empty()) kv["field"] = error.field;
  kv["exit-code"] = std::to_string(ExitCodeFor(error.code));
  return Frame{"error", EncodeKvPayload(kv)};
}

}  // namespace

namespace {

EngineOptions MakeEngineOptions(const DaemonOptions& options) {
  EngineOptions engine_options;
  engine_options.cache_bytes = options.cache_bytes;
  if (options.artifact_cache_bytes != kArtifactCacheAuto) {
    engine_options.artifact_cache_bytes = options.artifact_cache_bytes;
  }
  return engine_options;
}

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)), engine_(MakeEngineOptions(options_)) {}

Daemon::~Daemon() {
  Stop();
  WaitForShutdown();
}

bool Daemon::Start(std::string* error) {
  struct sockaddr_un addr = {};
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "--socket: path must be 1.." + std::to_string(sizeof(addr.sun_path) - 1) +
             " bytes, got " + std::to_string(options_.socket_path.size());
    return false;
  }
  // A vanished peer mid-write must surface as EPIPE from send(), never
  // kill the process; WriteFrame already sends MSG_NOSIGNAL, this covers
  // any other fd the process writes.
  std::signal(SIGPIPE, SIG_IGN);

  // A leftover socket file fails the bind, but blind unlinking would
  // hijack a RUNNING daemon's socket. Probe first: only a dead file
  // (crashed daemon) is replaced.
  struct stat existing = {};
  if (::lstat(options_.socket_path.c_str(), &existing) == 0) {
    if (!S_ISSOCK(existing.st_mode)) {
      *error = "'" + options_.socket_path + "' exists and is not a socket; refusing to replace it";
      return false;
    }
    if (SocketAnswers(options_.socket_path)) {
      *error = "a daemon is already listening on '" + options_.socket_path + "'";
      return false;
    }
    ::unlink(options_.socket_path.c_str());
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(), options_.socket_path.size() + 1);
  if (::bind(listen_fd_, reinterpret_cast<const struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "cannot bind '" + options_.socket_path + "': " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) {
    *error = "cannot listen on '" + options_.socket_path + "': " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  accept_thread_ = std::thread(&Daemon::AcceptLoop, this);
  const std::size_t workers = std::max<std::size_t>(options_.workers, 1);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back(&Daemon::WorkerLoop, this);
  }
  return true;
}

void Daemon::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_.store(true, std::memory_order_relaxed);
  }
  queue_cv_.notify_all();
  shutdown_cv_.notify_all();
}

void Daemon::WaitForShutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_cv_.wait(lock, [this] { return stopping_.load(std::memory_order_relaxed); });
    if (drained_) return;  // another caller already tore down
  }
  // Teardown order matters: stop admitting (accept loop), finish parsing
  // (handlers -- anything they enqueued is still drained), drain the
  // queue (workers exit once it is empty), then release the socket.
  if (accept_thread_.joinable()) accept_thread_.join();
  ReapHandlers(/*all=*/true);
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    drained_ = true;
  }
  shutdown_cv_.notify_all();
}

void Daemon::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    struct pollfd pfd = {};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    failpoint::Injection injection;
    if (failpoint::Check(failpoint::Site::kDaemonAccept, &injection)) {
      // Model a transient accept() failure (EMFILE, ECONNABORTED): this
      // connection is lost but the loop keeps serving. Drain the pending
      // connection so poll() does not re-report it forever.
      const int dropped = ::accept(listen_fd_, nullptr, nullptr);
      if (dropped >= 0) ::close(dropped);
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::size_t live = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      handlers_.emplace_back(&Daemon::HandleConnection, this, fd);
      live = handlers_.size();
    }
    // Handlers are short-lived (one frame in, at most one frame out);
    // reap in batches so the vector cannot grow without bound under a
    // connection flood.
    if (live >= 32) ReapHandlers(/*all=*/false);
  }
}

void Daemon::ReapHandlers(bool all) {
  std::vector<std::thread> reaped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    reaped.swap(handlers_);
  }
  // Join OUTSIDE the lock: handlers take mutex_ to enqueue.
  for (std::thread& handler : reaped) {
    if (handler.joinable()) handler.join();
  }
  (void)all;
}

void Daemon::HandleConnection(int fd) {
  const int deadline_ms = static_cast<int>(options_.io_timeout_ms);
  Frame request;
  std::string error;
  if (!ReadFrame(fd, &request, &error, &stopping_, deadline_ms)) {
    ReplyBestEffort(fd, ErrorFrame({PipelineErrorCode::kUsage, "", error}), deadline_ms);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rejected_error;
    ::close(fd);
    return;
  }

  if (request.verb == "ping") {
    ReplyBestEffort(fd, Frame{"ok", EncodeKvPayload({{"status", "ok"}})}, deadline_ms);
    ::close(fd);
    return;
  }
  if (request.verb == "stats") {
    const Stats s = stats();
    std::map<std::string, std::string> kv;
    kv["accepted"] = std::to_string(s.accepted);
    kv["completed"] = std::to_string(s.completed);
    kv["rejected-busy"] = std::to_string(s.rejected_busy);
    kv["rejected-error"] = std::to_string(s.rejected_error);
    kv["expired"] = std::to_string(s.expired);
    kv["failed"] = std::to_string(s.failed);
    kv["max-queue-depth"] = std::to_string(s.max_queue_depth);
    kv["cache-hits"] = std::to_string(s.cache_hits);
    kv["cache-misses"] = std::to_string(s.cache_misses);
    kv["bypassed-paged"] = std::to_string(s.bypassed_paged);
    kv["artifact-hits"] = std::to_string(s.artifact_hits);
    kv["artifact-misses"] = std::to_string(s.artifact_misses);
    kv["queue-depth"] = std::to_string(options_.queue_depth);
    kv["workers"] = std::to_string(std::max<std::size_t>(options_.workers, 1));
    ReplyBestEffort(fd, Frame{"ok", EncodeKvPayload(kv)}, deadline_ms);
    ::close(fd);
    return;
  }
  if (request.verb == "shutdown") {
    // Reply before stopping so the client sees an ack, not a reset.
    ReplyBestEffort(fd, Frame{"ok", EncodeKvPayload({{"status", "stopping"}})}, deadline_ms);
    ::close(fd);
    Stop();
    return;
  }
  if (request.verb != "job") {
    ReplyBestEffort(fd, ErrorFrame(UsageError("", "unknown request verb '" + request.verb + "'")),
                    deadline_ms);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rejected_error;
    ::close(fd);
    return;
  }

  Expected<JobSpec, PipelineError> spec = ParseJobSpec(request.payload);
  if (spec.ok()) {
    // Resolve at admission: a usage error replies immediately instead of
    // wasting a queue slot to fail at run time.
    Expected<ResolvedJobSpec, PipelineError> resolved = ResolveJobSpec(spec.value());
    if (!resolved.ok()) spec = resolved.error();
  }
  if (!spec.ok()) {
    ReplyBestEffort(fd, ErrorFrame(spec.error()), deadline_ms);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rejected_error;
    ::close(fd);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ReplyBestEffort(
          fd, ErrorFrame({PipelineErrorCode::kUnavailable, "", "daemon is shutting down"}),
          deadline_ms);
      ++stats_.rejected_error;
      ::close(fd);
      return;
    }
    if (queue_.size() >= options_.queue_depth) {
      // Explicit backpressure: a full queue REPLIES, never hangs the
      // client or silently drops the job.
      std::map<std::string, std::string> kv;
      kv["error"] =
          "admission queue is full (" + std::to_string(queue_.size()) + " jobs waiting)";
      kv["retry-after-ms"] = std::to_string(options_.retry_after_ms);
      kv["exit-code"] = std::to_string(ExitCodeFor(PipelineErrorCode::kUnavailable));
      ReplyBestEffort(fd, Frame{"busy", EncodeKvPayload(kv)}, deadline_ms);
      ++stats_.rejected_busy;
      ::close(fd);
      return;
    }
    PendingJob job;
    job.spec = std::move(spec.value());
    job.seq = next_seq_++;
    job.deadline_at_ms =
        job.spec.deadline_ms == 0 ? 0 : MonotonicMs() + static_cast<std::int64_t>(job.spec.deadline_ms);
    job.fd = fd;  // ownership moves to the worker that replies
    queue_.push_back(std::move(job));
    ++stats_.accepted;
    stats_.max_queue_depth = std::max<std::uint64_t>(stats_.max_queue_depth, queue_.size());
  }
  queue_cv_.notify_one();
}

bool Daemon::Dequeue(PendingJob* job) {
  std::unique_lock<std::mutex> lock(mutex_);
  queue_cv_.wait(lock, [this] {
    return !queue_.empty() || stopping_.load(std::memory_order_relaxed);
  });
  if (queue_.empty()) return false;  // stopping and drained

  // Priority desc, then deadline asc (0 = none = last), then arrival.
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const PendingJob& a = queue_[i];
    const PendingJob& b = queue_[best];
    if (a.spec.priority != b.spec.priority) {
      if (a.spec.priority > b.spec.priority) best = i;
      continue;
    }
    const std::int64_t da = a.deadline_at_ms == 0 ? INT64_MAX : a.deadline_at_ms;
    const std::int64_t db = b.deadline_at_ms == 0 ? INT64_MAX : b.deadline_at_ms;
    if (da != db) {
      if (da < db) best = i;
      continue;
    }
    if (a.seq < b.seq) best = i;
  }
  *job = std::move(queue_[best]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
  return true;
}

void Daemon::WorkerLoop() {
  PendingJob job;
  while (Dequeue(&job)) RunJob(std::move(job));
}

void Daemon::RunJob(PendingJob job) {
  const int deadline_ms = static_cast<int>(options_.io_timeout_ms);
  if (job.deadline_at_ms != 0 && MonotonicMs() > job.deadline_at_ms) {
    ReplyBestEffort(job.fd, ErrorFrame({PipelineErrorCode::kUnavailable, "deadline-ms",
                                        "deadline expired before the job was scheduled"}),
                    deadline_ms);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.expired;
    ::close(job.fd);
    return;
  }

  // Worker isolation boundary: whatever one job does -- a typed engine
  // error, an IoFailure that slipped past the engine's catch, any other
  // exception -- becomes an error REPLY on this job's connection, and the
  // worker goes back to the queue. One poisoned job must never take the
  // daemon down.
  std::string notices;
  Expected<ExecuteSummary, PipelineError> summary = [&]() -> Expected<ExecuteSummary, PipelineError> {
    try {
      return engine_.Execute(job.spec, &notices);
    } catch (const std::exception& failure) {
      return IoError(failure.what());
    } catch (...) {
      return IoError("job failed with an unknown error");
    }
  }();
  if (!summary.ok()) {
    ReplyBestEffort(job.fd, ErrorFrame(summary.error()), deadline_ms);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.failed;
    ::close(job.fd);
    return;
  }

  std::uint64_t completed_seq = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    completed_seq = stats_.completed++;
  }
  std::map<std::string, std::string> kv;
  kv["exit-code"] = std::to_string(summary->exit_code);
  kv["jobs"] = std::to_string(summary->job_count);
  kv["infeasible"] = std::to_string(summary->infeasible);
  kv["threads"] = std::to_string(summary->threads);
  kv["cache-hits"] = std::to_string(summary->cache_hits);
  kv["cache-misses"] = std::to_string(summary->cache_misses);
  kv["artifact-hits"] = std::to_string(summary->artifact_hits);
  kv["artifact-misses"] = std::to_string(summary->artifact_misses);
  kv["completed-seq"] = std::to_string(completed_seq);
  kv["out"] = job.spec.out;
  std::size_t notice_index = 0;
  std::string_view rest = notices;
  while (!rest.empty()) {
    const std::size_t eol = rest.find('\n');
    std::string_view line = rest.substr(0, eol);
    rest.remove_prefix(eol == std::string_view::npos ? rest.size() : eol + 1);
    if (line.empty()) continue;
    kv["notice-" + std::to_string(notice_index++)] = std::string(line);
  }
  ReplyBestEffort(job.fd, Frame{"ok", EncodeKvPayload(kv)}, deadline_ms);
  ::close(job.fd);
}

Daemon::Stats Daemon::stats() const {
  Stats copy;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    copy = stats_;
  }
  // The cache counts are authoritative from the engine (they also cover
  // lookups from jobs still in flight).
  Engine& engine = const_cast<Daemon*>(this)->engine_;
  const DatasetCache::Stats cache = engine.dataset_cache().stats();
  copy.cache_hits = cache.hits;
  copy.cache_misses = cache.misses;
  copy.bypassed_paged = cache.bypassed_paged;
  const ArtifactCache::Stats artifacts = engine.artifact_cache().stats();
  copy.artifact_hits = artifacts.hits;
  copy.artifact_misses = artifacts.misses;
  return copy;
}

}  // namespace ldv
