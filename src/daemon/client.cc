#include "daemon/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace ldv {

namespace {

// Connects with a short retry loop so `ldiv serve & ldiv submit` works
// without a sleep in between: ECONNREFUSED / ENOENT while the daemon is
// still binding are retried for ~2s, anything else fails immediately.
int ConnectWithRetry(const std::string& socket_path, std::string* error) {
  struct sockaddr_un addr = {};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "--socket: bad socket path '" + socket_path + "'";
    return -1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  constexpr int kAttempts = 20;
  for (int attempt = 0;; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    if (::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    const int err = errno;
    ::close(fd);
    if ((err != ECONNREFUSED && err != ENOENT) || attempt + 1 >= kAttempts) {
      *error = "cannot connect to daemon at '" + socket_path + "': " + std::strerror(err);
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

}  // namespace

bool DaemonRequest(const std::string& socket_path, const Frame& request, Frame* reply,
                   std::map<std::string, std::string>* kv, std::string* error) {
  const int fd = ConnectWithRetry(socket_path, error);
  if (fd < 0) return false;
  if (!WriteFrame(fd, request, error)) {
    ::close(fd);
    return false;
  }
  // 0 = unbounded silence budget: a queued job legitimately says nothing
  // until a worker runs it; a daemon crash still surfaces as EOF.
  const bool ok = ReadFrame(fd, reply, error, nullptr, 0);
  ::close(fd);
  if (!ok) return false;
  if (kv != nullptr && !ParseKvPayload(reply->payload, kv, error)) return false;
  return true;
}

}  // namespace ldv
