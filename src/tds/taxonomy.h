#ifndef LDIV_TDS_TAXONOMY_H_
#define LDIV_TDS_TAXONOMY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace ldv {

/// One node of a domain taxonomy: the half-open code interval [lo, hi).
struct TaxonomyNode {
  Value lo = 0;
  Value hi = 0;
  std::int32_t parent = -1;
  std::int32_t left = -1;   ///< -1 for leaves
  std::int32_t right = -1;  ///< -1 for leaves

  std::uint32_t width() const { return hi - lo; }
  bool is_leaf() const { return left < 0; }
};

/// Balanced binary interval taxonomy over a categorical domain [0, size).
///
/// TDS [15] requires a generalization hierarchy per QI attribute. Real
/// deployments use hand-curated semantic hierarchies; as the substitution
/// for those (see DESIGN.md) we build balanced binary hierarchies over the
/// coded domains, which is what synthetic evaluations of single-dimensional
/// schemes conventionally use. The root covers the whole domain; each
/// internal node splits its interval into two halves.
class Taxonomy {
 public:
  explicit Taxonomy(std::size_t domain_size);

  std::int32_t root() const { return 0; }
  std::size_t node_count() const { return nodes_.size(); }
  const TaxonomyNode& node(std::int32_t id) const { return nodes_[id]; }

  std::size_t domain_size() const { return domain_size_; }

  /// The leaf node whose interval is {v}.
  std::int32_t LeafFor(Value v) const { return leaf_of_value_[v]; }

  /// Depth of node `id` (root = 0).
  std::uint32_t Depth(std::int32_t id) const;

  /// Renders node `id` as "[lo,hi)".
  std::string NodeLabel(std::int32_t id) const;

 private:
  std::int32_t Build(Value lo, Value hi, std::int32_t parent);

  std::size_t domain_size_;
  std::vector<TaxonomyNode> nodes_;
  std::vector<std::int32_t> leaf_of_value_;
};

}  // namespace ldv

#endif  // LDIV_TDS_TAXONOMY_H_
