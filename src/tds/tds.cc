#include "tds/tds.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "anonymity/eligibility.h"
#include "common/check.h"
#include "common/histogram.h"

namespace ldv {

// ---------------------------------------------------------------------------
// SingleDimGeneralization
// ---------------------------------------------------------------------------

SingleDimGeneralization::SingleDimGeneralization(
    std::vector<Taxonomy> taxonomies, std::vector<std::vector<std::int32_t>> value_to_node)
    : taxonomies_(std::move(taxonomies)), value_to_node_(std::move(value_to_node)) {
  LDIV_CHECK_EQ(taxonomies_.size(), value_to_node_.size());
  strides_.resize(taxonomies_.size());
  std::uint64_t stride = 1;
  for (std::size_t a = 0; a < taxonomies_.size(); ++a) {
    strides_[a] = stride;
    std::uint64_t count = taxonomies_[a].node_count();
    LDIV_CHECK_LT(stride, std::numeric_limits<std::uint64_t>::max() / (count + 1))
        << "cell id space exceeds 64 bits";
    stride *= count + 1;
  }
}

double SingleDimGeneralization::CellVolume(std::span<const Value> qi) const {
  LDIV_CHECK_EQ(qi.size(), taxonomies_.size());
  double volume = 1.0;
  for (std::size_t a = 0; a < qi.size(); ++a) {
    volume *= CellWidth(static_cast<AttrId>(a), qi[a]);
  }
  return volume;
}

std::uint64_t SingleDimGeneralization::PackedCellId(std::span<const Value> qi) const {
  LDIV_CHECK_EQ(qi.size(), taxonomies_.size());
  std::uint64_t id = 0;
  for (std::size_t a = 0; a < qi.size(); ++a) {
    id += strides_[a] * static_cast<std::uint64_t>(value_to_node_[a][qi[a]] + 1);
  }
  return id;
}

// ---------------------------------------------------------------------------
// RunTds
// ---------------------------------------------------------------------------

namespace {

struct TdsGroup {
  std::vector<RowId> rows;
  SaHistogram histogram;
  std::vector<std::int32_t> node_ids;  // current taxonomy node per attribute
  bool alive = true;
};

struct Candidate {
  double score = 0.0;
  AttrId attr = 0;
  std::int32_t node = -1;

  bool operator<(const Candidate& other) const {
    // max-heap by score; deterministic tie-break on (attr, node)
    if (score != other.score) return score < other.score;
    if (attr != other.attr) return attr > other.attr;
    return node > other.node;
  }
};

class TdsState {
 public:
  TdsState(const Table& table, std::uint32_t l) : table_(table), l_(l) {
    const Schema& schema = table.schema();
    std::size_t d = schema.qi_count();
    for (AttrId a = 0; a < d; ++a) {
      taxonomies_.emplace_back(schema.qi(a).domain_size);
      value_to_node_.emplace_back(schema.qi(a).domain_size, taxonomies_[a].root());
      value_counts_.emplace_back(schema.qi(a).domain_size, 0);
    }
    for (RowId r = 0; r < table.size(); ++r) {
      for (AttrId a = 0; a < d; ++a) ++value_counts_[a][table.qi(r, a)];
    }
    node_groups_.resize(d);

    // Initial state: one group holding everything, every attribute at root.
    TdsGroup root_group;
    root_group.rows.resize(table.size());
    for (RowId r = 0; r < table.size(); ++r) root_group.rows[r] = r;
    root_group.histogram = SaHistogram(std::vector<std::uint32_t>(table.SaHistogramCounts()));
    root_group.node_ids.assign(d, 0);
    for (AttrId a = 0; a < d; ++a) {
      root_group.node_ids[a] = taxonomies_[a].root();
      node_groups_[a][taxonomies_[a].root()].push_back(0);
    }
    groups_.push_back(std::move(root_group));

    for (AttrId a = 0; a < d; ++a) PushCandidate(a, taxonomies_[a].root());
  }

  std::uint32_t RunToCompletion() {
    std::uint32_t applied = 0;
    while (!candidates_.empty()) {
      Candidate c = candidates_.top();
      candidates_.pop();
      if (TrySpecialize(c.attr, c.node)) {
        ++applied;
        const TaxonomyNode& node = taxonomies_[c.attr].node(c.node);
        PushCandidate(c.attr, node.left);
        PushCandidate(c.attr, node.right);
      }
      // Invalid candidates are discarded permanently: by Lemma 1 an
      // ineligible refinement piece stays ineligible under any further
      // refinement.
    }
    return applied;
  }

  TdsResult BuildResult() {
    TdsResult result;
    result.feasible = true;
    result.generalization = std::make_shared<SingleDimGeneralization>(std::move(taxonomies_),
                                                                      std::move(value_to_node_));
    for (const TdsGroup& g : groups_) {
      if (g.alive) result.partition.AddGroup(g.rows);
    }
    return result;
  }

 private:
  void PushCandidate(AttrId a, std::int32_t node_id) {
    const TaxonomyNode& node = taxonomies_[a].node(node_id);
    if (node.is_leaf()) return;
    const TaxonomyNode& left = taxonomies_[a].node(node.left);
    const TaxonomyNode& right = taxonomies_[a].node(node.right);
    double gain = 0.0;
    double log_w = std::log2(static_cast<double>(node.width()));
    for (Value v = node.lo; v < node.hi; ++v) {
      double child_w = (v < left.hi) ? left.width() : right.width();
      gain += static_cast<double>(value_counts_[a][v]) *
              (log_w - std::log2(static_cast<double>(child_w)));
    }
    candidates_.push(Candidate{gain, a, node_id});
  }

  // Validates and, when valid, applies the specialization of `node_id` on
  // attribute `a`: every group currently published at that node splits into
  // its left/right pieces; all pieces must stay l-eligible.
  bool TrySpecialize(AttrId a, std::int32_t node_id) {
    auto it = node_groups_[a].find(node_id);
    std::vector<GroupId> affected;
    if (it != node_groups_[a].end()) {
      for (GroupId g : it->second) {
        if (groups_[g].alive && groups_[g].node_ids[a] == node_id) affected.push_back(g);
      }
    }
    const TaxonomyNode& node = taxonomies_[a].node(node_id);
    const Value mid = taxonomies_[a].node(node.left).hi;

    // Validation pass (no mutation).
    SaHistogram left_hist(table_.schema().sa_domain_size());
    SaHistogram right_hist(table_.schema().sa_domain_size());
    for (GroupId g : affected) {
      left_hist = SaHistogram(table_.schema().sa_domain_size());
      right_hist = SaHistogram(table_.schema().sa_domain_size());
      for (RowId r : groups_[g].rows) {
        (table_.qi(r, a) < mid ? left_hist : right_hist).Add(table_.sa(r));
      }
      if (!left_hist.IsEligible(l_) || !right_hist.IsEligible(l_)) return false;
    }

    // Apply: update the cut ...
    for (Value v = node.lo; v < node.hi; ++v) {
      value_to_node_[a][v] = (v < mid) ? node.left : node.right;
    }
    // ... and split the affected groups.
    for (GroupId g : affected) {
      SplitGroup(g, a, mid, node.left, node.right);
    }
    if (it != node_groups_[a].end()) node_groups_[a].erase(it);
    return true;
  }

  void SplitGroup(GroupId g, AttrId a, Value mid, std::int32_t left_node,
                  std::int32_t right_node) {
    std::vector<RowId> left_rows, right_rows;
    for (RowId r : groups_[g].rows) {
      (table_.qi(r, a) < mid ? left_rows : right_rows).push_back(r);
    }
    if (left_rows.empty() || right_rows.empty()) {
      // The group sits entirely inside one child: only its label refines.
      std::int32_t child = left_rows.empty() ? right_node : left_node;
      groups_[g].node_ids[a] = child;
      node_groups_[a][child].push_back(g);
      return;
    }
    groups_[g].alive = false;
    AddChildGroup(g, a, left_node, std::move(left_rows));
    AddChildGroup(g, a, right_node, std::move(right_rows));
  }

  void AddChildGroup(GroupId parent, AttrId a, std::int32_t node_id, std::vector<RowId> rows) {
    TdsGroup child;
    child.histogram = SaHistogram(table_.schema().sa_domain_size());
    for (RowId r : rows) child.histogram.Add(table_.sa(r));
    child.rows = std::move(rows);
    child.node_ids = groups_[parent].node_ids;
    child.node_ids[a] = node_id;
    GroupId id = static_cast<GroupId>(groups_.size());
    groups_.push_back(std::move(child));
    for (AttrId attr = 0; attr < table_.qi_count(); ++attr) {
      node_groups_[attr][groups_[id].node_ids[attr]].push_back(id);
    }
  }

  const Table& table_;
  std::uint32_t l_;
  std::vector<Taxonomy> taxonomies_;
  std::vector<std::vector<std::int32_t>> value_to_node_;
  std::vector<std::vector<std::uint64_t>> value_counts_;
  std::vector<TdsGroup> groups_;
  // Per attribute: taxonomy node id -> group ids published at that node
  // (entries are validated lazily against the group's current node).
  std::vector<std::unordered_map<std::int32_t, std::vector<GroupId>>> node_groups_;
  std::priority_queue<Candidate> candidates_;
};

}  // namespace

TdsResult RunTds(const Table& table, std::uint32_t l) {
  TdsResult result;
  if (table.empty() || !IsTableEligible(table, l)) {
    result.feasible = table.empty();
    return result;
  }
  auto start = std::chrono::steady_clock::now();
  TdsState state(table, l);
  std::uint32_t applied = state.RunToCompletion();
  result = state.BuildResult();
  result.specializations = applied;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

}  // namespace ldv
