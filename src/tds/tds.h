#ifndef LDIV_TDS_TDS_H_
#define LDIV_TDS_TDS_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "anonymity/partition.h"
#include "common/table.h"
#include "tds/taxonomy.h"

namespace ldv {

/// A single-dimensional generalization: for every QI attribute, a "cut"
/// through its taxonomy, i.e. a mapping from each domain value to the
/// taxonomy node (sub-domain) it is published as. Cuts are global per
/// attribute, so the induced cells tile the QI space without overlap --
/// exactly the property Section 2 credits single-dimensional schemes with.
class SingleDimGeneralization {
 public:
  SingleDimGeneralization(std::vector<Taxonomy> taxonomies,
                          std::vector<std::vector<std::int32_t>> value_to_node);

  std::size_t attribute_count() const { return taxonomies_.size(); }
  const Taxonomy& taxonomy(AttrId a) const { return taxonomies_[a]; }

  /// The taxonomy node value `v` of attribute `a` is published as.
  std::int32_t NodeFor(AttrId a, Value v) const { return value_to_node_[a][v]; }

  /// Width |sub-domain| of the published node for (a, v).
  std::uint32_t CellWidth(AttrId a, Value v) const {
    return taxonomies_[a].node(value_to_node_[a][v]).width();
  }

  /// Volume (product of widths) of the cell containing the QI vector.
  double CellVolume(std::span<const Value> qi) const;

  /// Packs the cell signature of a QI vector into one integer (mixed radix
  /// over per-attribute node ids). Requires the product of node counts to
  /// fit in 64 bits, which holds for every workload in this repository.
  std::uint64_t PackedCellId(std::span<const Value> qi) const;

 private:
  std::vector<Taxonomy> taxonomies_;
  std::vector<std::vector<std::int32_t>> value_to_node_;
  std::vector<std::uint64_t> strides_;
};

/// Result of the TDS run.
struct TdsResult {
  /// False iff the table is not l-eligible.
  bool feasible = false;
  std::shared_ptr<SingleDimGeneralization> generalization;
  /// The row partition induced by the final cut (one group per occupied
  /// cell); useful for privacy checks and statistics.
  Partition partition;
  /// Number of specializations applied.
  std::uint32_t specializations = 0;
  double seconds = 0.0;
};

/// Top-Down Specialization (Fung, Wang, Yu [15]) adapted to l-diversity as
/// in Section 6.2 of the paper: starting from the fully generalized table
/// (every attribute at its taxonomy root), repeatedly apply the
/// highest-scoring specialization whose induced refinement keeps every
/// cell l-eligible. The score of specializing a node is the total
/// information gain of its tuples, Sum_t log2(width(node)/width(child(t)));
/// validity is anti-monotone (an invalid specialization can never become
/// valid after further refinement, by Lemma 1), so rejected candidates are
/// discarded permanently.
TdsResult RunTds(const Table& table, std::uint32_t l);

}  // namespace ldv

#endif  // LDIV_TDS_TDS_H_
