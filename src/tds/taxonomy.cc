#include "tds/taxonomy.h"

#include <sstream>

#include "common/check.h"

namespace ldv {

Taxonomy::Taxonomy(std::size_t domain_size) : domain_size_(domain_size) {
  LDIV_CHECK_GT(domain_size, 0u);
  leaf_of_value_.assign(domain_size, -1);
  nodes_.reserve(2 * domain_size - 1);
  Build(0, static_cast<Value>(domain_size), -1);
}

std::int32_t Taxonomy::Build(Value lo, Value hi, std::int32_t parent) {
  std::int32_t id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(TaxonomyNode{lo, hi, parent, -1, -1});
  if (hi - lo == 1) {
    leaf_of_value_[lo] = id;
    return id;
  }
  Value mid = lo + (hi - lo + 1) / 2;
  std::int32_t left = Build(lo, mid, id);
  std::int32_t right = Build(mid, hi, id);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

std::uint32_t Taxonomy::Depth(std::int32_t id) const {
  std::uint32_t depth = 0;
  while (nodes_[id].parent >= 0) {
    id = nodes_[id].parent;
    ++depth;
  }
  return depth;
}

std::string Taxonomy::NodeLabel(std::int32_t id) const {
  std::ostringstream out;
  out << "[" << nodes_[id].lo << "," << nodes_[id].hi << ")";
  return out.str();
}

}  // namespace ldv
