#include "data/acs_schema.h"

namespace ldv {

namespace {

std::vector<Attribute> AcsQiAttributes() {
  return {
      Attribute{"Age", 79},        Attribute{"Gender", 2},    Attribute{"Race", 9},
      Attribute{"Marital", 6},     Attribute{"BirthPlace", 56}, Attribute{"Education", 17},
      Attribute{"WorkClass", 9},
  };
}

}  // namespace

Schema SalSchema() { return Schema(AcsQiAttributes(), Attribute{"Income", 50}); }

Schema OccSchema() { return Schema(AcsQiAttributes(), Attribute{"Occupation", 50}); }

}  // namespace ldv
