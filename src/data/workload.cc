#include "data/workload.h"

#include <algorithm>

#include "common/check.h"

namespace ldv {

std::vector<std::vector<AttrId>> QiCombinations(std::size_t total, std::size_t choose) {
  LDIV_CHECK_LE(choose, total);
  std::vector<std::vector<AttrId>> result;
  std::vector<AttrId> current(choose);
  // Iterative lexicographic enumeration.
  for (std::size_t i = 0; i < choose; ++i) current[i] = static_cast<AttrId>(i);
  if (choose == 0) {
    result.push_back({});
    return result;
  }
  for (;;) {
    result.push_back(current);
    // Advance to the next combination.
    std::size_t i = choose;
    while (i > 0) {
      --i;
      if (current[i] < total - choose + i) {
        ++current[i];
        for (std::size_t j = i + 1; j < choose; ++j) current[j] = current[j - 1] + 1;
        break;
      }
      if (i == 0) return result;
    }
  }
}

std::vector<Table> ProjectionFamily(const Table& source, std::size_t d,
                                    std::size_t max_tables) {
  std::vector<std::vector<AttrId>> combos = QiCombinations(source.qi_count(), d);
  std::vector<Table> tables;
  tables.reserve(std::min(max_tables, combos.size()));
  for (const auto& combo : combos) {
    if (tables.size() >= max_tables) break;
    tables.push_back(source.ProjectQi(combo));
  }
  return tables;
}

}  // namespace ldv
