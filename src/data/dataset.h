#ifndef LDIV_DATA_DATASET_H_
#define LDIV_DATA_DATASET_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/paged_column.h"
#include "common/table.h"

namespace ldv {

/// How a CSV input file encodes its cells.
enum class CsvFormat {
  kAuto,   ///< Sniff the file: all-integer first data row = coded, else raw.
  kCoded,  ///< Integer codes; a Schema describes the domains (the seed format).
  kRaw,    ///< String labels; per-column dictionaries are built on the fly.
};

/// Parses "auto" / "coded" / "raw" (case-insensitive). Returns false with
/// a usage-grade message on anything else.
bool ParseCsvFormat(std::string_view text, CsvFormat* format, std::string* error);

/// The canonical lower-case name of `format`.
std::string_view CsvFormatName(CsvFormat format);

/// Sniffs the file's format: kCoded when every cell of the first data row
/// parses as a non-negative integer, kRaw otherwise. Returns std::nullopt
/// (with `*error` set) when the file cannot be opened or has no data row.
std::optional<CsvFormat> DetectCsvFormat(const std::string& path, std::string* error);

/// The single kAuto resolution policy, shared by the CLI front-end and
/// LoadTableCsv: with a schema the load is coded; without one the file is
/// sniffed -- a string-valued file resolves to kRaw, while an
/// integer-coded-looking file is rejected (almost certainly a coded CSV
/// missing its schema; pass one, or force kRaw to ingest digits as
/// labels). Detection I/O failures resolve to kRaw so the loader's own
/// open error reports the path. Non-auto formats pass through unchanged.
bool ResolveCsvFormat(const std::string& path, CsvFormat format, bool has_schema,
                      CsvFormat* resolved, std::string* error);

/// Loads a CSV microdata table, resolving kAuto through DetectCsvFormat.
/// Coded loads require `schema` (header and cells are validated against
/// it); raw loads require `schema == nullptr` (the dictionaries define the
/// domains). Errors render as one line, with line/column positions for
/// parse failures.
std::optional<Table> LoadTableCsv(const std::string& path, CsvFormat format,
                                  const Schema* schema, std::string* error);

/// Specification of one synthetic dataset, the CLI front-end over the ACS
/// generators: which extract, how many rows, which seed, and an optional
/// prefix projection onto the first `d` of the seven QI attributes (the
/// dimensionality knob of the paper's SAL-d / OCC-d sweeps).
struct DatasetSpec {
  std::string name = "sal";  ///< "sal" or "occ" (case-insensitive)
  std::size_t n = 10000;     ///< rows to generate
  std::uint64_t seed = 0;    ///< 0 = the generator's default seed
  std::size_t d = 0;         ///< 0 = keep all seven QI attributes
};

/// Validates `spec` and resolves its defaults (lower-cased name, the
/// generator's default seed, d = all attributes). Returns std::nullopt
/// (with `*error` set) on an unknown dataset name, n == 0, or d out of
/// range -- all front-end input, so failures report instead of aborting.
/// Flag parsing calls this up front so spec mistakes surface as usage
/// errors; GenerateDataset and DatasetLabel resolve through it, so the
/// provenance label always matches the generated data.
std::optional<DatasetSpec> ResolveDatasetSpec(const DatasetSpec& spec, std::string* error);

/// Materializes the table described by `spec` (resolved internally).
std::optional<Table> GenerateDataset(const DatasetSpec& spec, std::string* error);

/// Out-of-core twin of GenerateDataset: streams the same row sequence in
/// column chunks straight into a PagedTableBuilder, so resident cost is
/// one staging page per column plus the chunk buffers -- independent of n.
/// The sealed table's resident() view is byte-identical to
/// GenerateDataset's output (prefix projection for d < 7 included).
std::unique_ptr<PagedTable> GenerateDatasetPaged(const DatasetSpec& spec,
                                                 const PagedTableBuilder::Options& options,
                                                 std::string* error);

/// Out-of-core twin of LoadTableCsv: same format resolution and
/// diagnostics, but rows stream into pages (see ReadTableCsvPaged /
/// ReadRawTableCsvPaged) instead of materializing in RAM.
std::unique_ptr<PagedTable> LoadTableCsvPaged(const std::string& path, CsvFormat format,
                                              const Schema* schema,
                                              const PagedTableBuilder::Options& options,
                                              std::string* error);

/// One-line description of the spec, e.g. "sal(n=10000, seed=1, d=3)";
/// reports and job labels use it to record where a table came from.
std::string DatasetLabel(const DatasetSpec& spec);

}  // namespace ldv

#endif  // LDIV_DATA_DATASET_H_
