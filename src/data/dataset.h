#ifndef LDIV_DATA_DATASET_H_
#define LDIV_DATA_DATASET_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/table.h"

namespace ldv {

/// Specification of one synthetic dataset, the CLI front-end over the ACS
/// generators: which extract, how many rows, which seed, and an optional
/// prefix projection onto the first `d` of the seven QI attributes (the
/// dimensionality knob of the paper's SAL-d / OCC-d sweeps).
struct DatasetSpec {
  std::string name = "sal";  ///< "sal" or "occ" (case-insensitive)
  std::size_t n = 10000;     ///< rows to generate
  std::uint64_t seed = 0;    ///< 0 = the generator's default seed
  std::size_t d = 0;         ///< 0 = keep all seven QI attributes
};

/// Validates `spec` and resolves its defaults (lower-cased name, the
/// generator's default seed, d = all attributes). Returns std::nullopt
/// (with `*error` set) on an unknown dataset name, n == 0, or d out of
/// range -- all front-end input, so failures report instead of aborting.
/// Flag parsing calls this up front so spec mistakes surface as usage
/// errors; GenerateDataset and DatasetLabel resolve through it, so the
/// provenance label always matches the generated data.
std::optional<DatasetSpec> ResolveDatasetSpec(const DatasetSpec& spec, std::string* error);

/// Materializes the table described by `spec` (resolved internally).
std::optional<Table> GenerateDataset(const DatasetSpec& spec, std::string* error);

/// One-line description of the spec, e.g. "sal(n=10000, seed=1, d=3)";
/// reports and job labels use it to record where a table came from.
std::string DatasetLabel(const DatasetSpec& spec);

}  // namespace ldv

#endif  // LDIV_DATA_DATASET_H_
