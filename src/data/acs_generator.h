#ifndef LDIV_DATA_ACS_GENERATOR_H_
#define LDIV_DATA_ACS_GENERATOR_H_

#include <cstddef>
#include <cstdint>

#include "common/table.h"

namespace ldv {

/// Synthetic stand-ins for the SAL and OCC extracts of the American
/// Community Survey used in Section 6 (the real IPUMS extracts are not
/// redistributable; see DESIGN.md for the substitution argument).
///
/// The generator reproduces the two properties the algorithms are sensitive
/// to: (a) heavily skewed categorical marginals, so QI-signature
/// distinctness grows with the number of projected attributes exactly as in
/// census data (the curse-of-dimensionality effect of Figure 3), and (b) a
/// skewed sensitive attribute, so l-eligibility tightens as l grows
/// (Figure 2). Attributes are correlated through a latent socio-economic
/// status variable plus age-driven conditionals (age -> marital status,
/// age/SES -> education, education -> income/occupation/work class), which
/// keeps the joint distribution census-shaped rather than independent.
///
/// Generation is deterministic in (n, seed) and platform-independent.
Table GenerateSal(std::size_t n, std::uint64_t seed = 1);
Table GenerateOcc(std::size_t n, std::uint64_t seed = 2);

}  // namespace ldv

#endif  // LDIV_DATA_ACS_GENERATOR_H_
