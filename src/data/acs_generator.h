#ifndef LDIV_DATA_ACS_GENERATOR_H_
#define LDIV_DATA_ACS_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/table.h"

namespace ldv {

/// Synthetic stand-ins for the SAL and OCC extracts of the American
/// Community Survey used in Section 6 (the real IPUMS extracts are not
/// redistributable; see DESIGN.md for the substitution argument).
///
/// The generator reproduces the two properties the algorithms are sensitive
/// to: (a) heavily skewed categorical marginals, so QI-signature
/// distinctness grows with the number of projected attributes exactly as in
/// census data (the curse-of-dimensionality effect of Figure 3), and (b) a
/// skewed sensitive attribute, so l-eligibility tightens as l grows
/// (Figure 2). Attributes are correlated through a latent socio-economic
/// status variable plus age-driven conditionals (age -> marital status,
/// age/SES -> education, education -> income/occupation/work class), which
/// keeps the joint distribution census-shaped rather than independent.
///
/// Generation is deterministic in (n, seed) and platform-independent.
Table GenerateSal(std::size_t n, std::uint64_t seed = 1);
Table GenerateOcc(std::size_t n, std::uint64_t seed = 2);

/// Streaming row source behind GenerateSal/GenerateOcc: Next() emits the
/// exact row sequence those functions materialize, one row at a time, so
/// the out-of-core (paged) generator stays byte-identical to the in-RAM
/// one -- both are this sampler plus a different sink. Resident cost is
/// the sampler state, independent of n.
class AcsRowGenerator {
 public:
  enum class Kind { kSal, kOcc };

  AcsRowGenerator(Kind kind, std::uint64_t seed);
  ~AcsRowGenerator();
  AcsRowGenerator(const AcsRowGenerator&) = delete;
  AcsRowGenerator& operator=(const AcsRowGenerator&) = delete;

  /// The full seven-QI extract schema (SalSchema / OccSchema per kind).
  const Schema& schema() const;

  /// Fills qi[0..kAcsQiCount) and *sa with the next row.
  void Next(Value* qi, SaValue* sa);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ldv

#endif  // LDIV_DATA_ACS_GENERATOR_H_
