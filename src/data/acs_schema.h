#ifndef LDIV_DATA_ACS_SCHEMA_H_
#define LDIV_DATA_ACS_SCHEMA_H_

#include "common/schema.h"

namespace ldv {

/// QI attribute positions in the SAL / OCC schemas (Section 6, Table 6).
enum AcsQiAttr : AttrId {
  kAge = 0,         ///< domain size 79
  kGender = 1,      ///< domain size 2
  kRace = 2,        ///< domain size 9
  kMarital = 3,     ///< domain size 6
  kBirthPlace = 4,  ///< domain size 56
  kEducation = 5,   ///< domain size 17
  kWorkClass = 6,   ///< domain size 9
};

/// Number of QI attributes in SAL / OCC.
inline constexpr std::size_t kAcsQiCount = 7;

/// Schema of the SAL dataset: the seven Table-6 QI attributes with
/// sensitive attribute Income (domain size 50).
Schema SalSchema();

/// Schema of the OCC dataset: the same QI attributes with sensitive
/// attribute Occupation (domain size 50).
Schema OccSchema();

}  // namespace ldv

#endif  // LDIV_DATA_ACS_SCHEMA_H_
