#include "data/acs_generator.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "data/acs_schema.h"

namespace ldv {

namespace {

// Small discrete distribution sampled by inverse CDF over integer weights.
class WeightedSampler {
 public:
  explicit WeightedSampler(std::vector<std::uint32_t> weights) : cdf_(std::move(weights)) {
    for (std::size_t i = 1; i < cdf_.size(); ++i) cdf_[i] += cdf_[i - 1];
    LDIV_CHECK_GT(cdf_.back(), 0u);
  }

  std::uint32_t Sample(Rng& rng) const {
    std::uint32_t u = rng.Below(cdf_.back());
    return static_cast<std::uint32_t>(
        std::upper_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<std::uint32_t> cdf_;
};

std::uint32_t Clamp(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  return static_cast<std::uint32_t>(std::max(lo, std::min(hi, v)));
}

enum class SaKind { kIncome, kOccupation };

// Shared generator for the SAL / OCC families. All sampling goes through
// the deterministic Rng so tables are reproducible bit-for-bit.
Table GenerateAcs(const Schema& schema, SaKind kind, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);

  // Latent socio-economic status drives the education/income/occupation
  // correlations (5 levels, skewed toward the low end like census data).
  WeightedSampler ses_dist({35, 30, 20, 10, 5});
  // Marital-status conditionals per age band (young / middle / senior).
  WeightedSampler marital_young({70, 20, 4, 2, 2, 2});
  WeightedSampler marital_middle({15, 60, 12, 6, 4, 3});
  WeightedSampler marital_senior({6, 50, 15, 20, 6, 3});
  ZipfSampler race_dist(9, 1.3);
  ZipfSampler birthplace_dist(56, 1.1);
  ZipfSampler education_noise(6, 0.8);
  ZipfSampler workclass_noise(9, 1.0);
  // Income is noticeably more skewed than Occupation; this is what makes
  // the SAL workloads harder for TP than the OCC workloads (Section 6.1).
  ZipfSampler income_noise(50, 1.15);
  ZipfSampler occupation_noise(50, 0.6);

  Table table(schema);
  table.Reserve(n);
  std::vector<Value> row(kAcsQiCount);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t ses = ses_dist.Sample(rng);

    // Age in [0, 79): sum of two uniforms gives the census-like central
    // bulge; adults dominate.
    std::uint32_t age = (rng.Below(40) + rng.Below(40)) % 79;
    std::uint32_t gender = rng.Below(100) < 51 ? 0 : 1;
    std::uint32_t race = race_dist.Sample(rng);
    std::uint32_t marital =
        (age < 12 ? marital_young : (age < 42 ? marital_middle : marital_senior)).Sample(rng);
    // Birth place mildly correlates with race (migration clusters).
    std::uint32_t birthplace = (birthplace_dist.Sample(rng) + 5 * race) % 56;
    // Education rises with SES and with adulthood.
    std::uint32_t education =
        Clamp(static_cast<std::int64_t>(education_noise.Sample(rng)) + 2 * ses +
                  (age >= 7 ? 2 : 0) + (age >= 17 ? 1 : 0),
              0, 16);
    std::uint32_t edu_band = education / 6;  // 0..2
    std::uint32_t workclass = (workclass_noise.Sample(rng) + 3 * edu_band) % 9;

    row[kAge] = age;
    row[kGender] = gender;
    row[kRace] = race;
    row[kMarital] = marital;
    row[kBirthPlace] = birthplace;
    row[kEducation] = education;
    row[kWorkClass] = workclass;

    SaValue sa;
    if (kind == SaKind::kIncome) {
      // Income bands shift upward with education and SES; the shift is kept
      // small so the Zipf head (and hence the overall skew) survives.
      sa = Clamp(static_cast<std::int64_t>(income_noise.Sample(rng)) + education / 3 + ses,
                 0, 49);
    } else {
      // Occupation codes cluster by education band but stay much flatter.
      sa = (occupation_noise.Sample(rng) + 13 * edu_band) % 50;
    }
    table.AppendRow(row, sa);
  }
  return table;
}

}  // namespace

Table GenerateSal(std::size_t n, std::uint64_t seed) {
  return GenerateAcs(SalSchema(), SaKind::kIncome, n, seed);
}

Table GenerateOcc(std::size_t n, std::uint64_t seed) {
  return GenerateAcs(OccSchema(), SaKind::kOccupation, n, seed);
}

}  // namespace ldv
