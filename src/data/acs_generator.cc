#include "data/acs_generator.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "data/acs_schema.h"

namespace ldv {

namespace {

// Small discrete distribution sampled by inverse CDF over integer weights.
class WeightedSampler {
 public:
  explicit WeightedSampler(std::vector<std::uint32_t> weights) : cdf_(std::move(weights)) {
    for (std::size_t i = 1; i < cdf_.size(); ++i) cdf_[i] += cdf_[i - 1];
    LDIV_CHECK_GT(cdf_.back(), 0u);
  }

  std::uint32_t Sample(Rng& rng) const {
    std::uint32_t u = rng.Below(cdf_.back());
    return static_cast<std::uint32_t>(
        std::upper_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<std::uint32_t> cdf_;
};

std::uint32_t Clamp(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  return static_cast<std::uint32_t>(std::max(lo, std::min(hi, v)));
}

}  // namespace

// All sampling goes through the deterministic Rng so tables are
// reproducible bit-for-bit; sampler setup draws nothing from it, so the
// per-row consumption order is exactly the historical GenerateAcs loop.
struct AcsRowGenerator::Impl {
  Impl(Kind kind, std::uint64_t seed)
      : kind(kind),
        schema(kind == Kind::kSal ? SalSchema() : OccSchema()),
        rng(seed),
        // Latent socio-economic status drives the education/income/
        // occupation correlations (5 levels, skewed toward the low end
        // like census data).
        ses_dist({35, 30, 20, 10, 5}),
        // Marital-status conditionals per age band (young/middle/senior).
        marital_young({70, 20, 4, 2, 2, 2}),
        marital_middle({15, 60, 12, 6, 4, 3}),
        marital_senior({6, 50, 15, 20, 6, 3}),
        race_dist(9, 1.3),
        birthplace_dist(56, 1.1),
        education_noise(6, 0.8),
        workclass_noise(9, 1.0),
        // Income is noticeably more skewed than Occupation; this is what
        // makes the SAL workloads harder for TP than the OCC workloads
        // (Section 6.1).
        income_noise(50, 1.15),
        occupation_noise(50, 0.6) {}

  Kind kind;
  Schema schema;
  Rng rng;
  WeightedSampler ses_dist;
  WeightedSampler marital_young;
  WeightedSampler marital_middle;
  WeightedSampler marital_senior;
  ZipfSampler race_dist;
  ZipfSampler birthplace_dist;
  ZipfSampler education_noise;
  ZipfSampler workclass_noise;
  ZipfSampler income_noise;
  ZipfSampler occupation_noise;
};

AcsRowGenerator::AcsRowGenerator(Kind kind, std::uint64_t seed)
    : impl_(std::make_unique<Impl>(kind, seed)) {}

AcsRowGenerator::~AcsRowGenerator() = default;

const Schema& AcsRowGenerator::schema() const { return impl_->schema; }

void AcsRowGenerator::Next(Value* qi, SaValue* sa) {
  Impl& g = *impl_;
  std::uint32_t ses = g.ses_dist.Sample(g.rng);

  // Age in [0, 79): sum of two uniforms gives the census-like central
  // bulge; adults dominate.
  std::uint32_t age = (g.rng.Below(40) + g.rng.Below(40)) % 79;
  std::uint32_t gender = g.rng.Below(100) < 51 ? 0 : 1;
  std::uint32_t race = g.race_dist.Sample(g.rng);
  std::uint32_t marital =
      (age < 12 ? g.marital_young : (age < 42 ? g.marital_middle : g.marital_senior))
          .Sample(g.rng);
  // Birth place mildly correlates with race (migration clusters).
  std::uint32_t birthplace = (g.birthplace_dist.Sample(g.rng) + 5 * race) % 56;
  // Education rises with SES and with adulthood.
  std::uint32_t education =
      Clamp(static_cast<std::int64_t>(g.education_noise.Sample(g.rng)) + 2 * ses +
                (age >= 7 ? 2 : 0) + (age >= 17 ? 1 : 0),
            0, 16);
  std::uint32_t edu_band = education / 6;  // 0..2
  std::uint32_t workclass = (g.workclass_noise.Sample(g.rng) + 3 * edu_band) % 9;

  qi[kAge] = age;
  qi[kGender] = gender;
  qi[kRace] = race;
  qi[kMarital] = marital;
  qi[kBirthPlace] = birthplace;
  qi[kEducation] = education;
  qi[kWorkClass] = workclass;

  if (g.kind == Kind::kSal) {
    // Income bands shift upward with education and SES; the shift is kept
    // small so the Zipf head (and hence the overall skew) survives.
    *sa = Clamp(static_cast<std::int64_t>(g.income_noise.Sample(g.rng)) + education / 3 + ses,
                0, 49);
  } else {
    // Occupation codes cluster by education band but stay much flatter.
    *sa = (g.occupation_noise.Sample(g.rng) + 13 * edu_band) % 50;
  }
}

namespace {

Table GenerateAcs(AcsRowGenerator::Kind kind, std::size_t n, std::uint64_t seed) {
  AcsRowGenerator gen(kind, seed);
  Table table(gen.schema());
  table.Reserve(n);
  std::vector<Value> row(kAcsQiCount);
  SaValue sa = 0;
  for (std::size_t i = 0; i < n; ++i) {
    gen.Next(row.data(), &sa);
    table.AppendRow(row, sa);
  }
  return table;
}

}  // namespace

Table GenerateSal(std::size_t n, std::uint64_t seed) {
  return GenerateAcs(AcsRowGenerator::Kind::kSal, n, seed);
}

Table GenerateOcc(std::size_t n, std::uint64_t seed) {
  return GenerateAcs(AcsRowGenerator::Kind::kOcc, n, seed);
}

}  // namespace ldv
