#ifndef LDIV_DATA_WORKLOAD_H_
#define LDIV_DATA_WORKLOAD_H_

#include <cstddef>
#include <vector>

#include "common/table.h"

namespace ldv {

/// All `choose`-element subsets of {0, ..., total-1} in lexicographic order.
/// Models the paper's SAL-d / OCC-d workloads, which take every
/// d-combination of the seven QI attributes.
std::vector<std::vector<AttrId>> QiCombinations(std::size_t total, std::size_t choose);

/// Projects `source` onto each d-subset of its QI attributes, in
/// lexicographic order, keeping at most `max_tables` projections. With
/// max_tables = SIZE_MAX this is exactly the paper's SAL-d / OCC-d family
/// of C(7, d) microdata tables.
std::vector<Table> ProjectionFamily(const Table& source, std::size_t d,
                                    std::size_t max_tables = static_cast<std::size_t>(-1));

}  // namespace ldv

#endif  // LDIV_DATA_WORKLOAD_H_
