#include "data/dataset.h"

#include <cctype>
#include <string_view>

#include "data/acs_generator.h"
#include "data/acs_schema.h"

namespace ldv {

namespace {

std::string Lowered(std::string_view text) {
  std::string lowered(text);
  for (char& c : lowered) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return lowered;
}

}  // namespace

std::optional<DatasetSpec> ResolveDatasetSpec(const DatasetSpec& spec, std::string* error) {
  DatasetSpec resolved = spec;
  resolved.name = Lowered(spec.name);
  if (resolved.name != "sal" && resolved.name != "occ") {
    *error = "unknown dataset '" + spec.name + "' (available: sal, occ)";
    return std::nullopt;
  }
  if (resolved.n == 0) {
    *error = "dataset needs at least one row (--n=0)";
    return std::nullopt;
  }
  if (resolved.d > kAcsQiCount) {
    *error = "dataset has " + std::to_string(kAcsQiCount) + " QI attributes; --d=" +
             std::to_string(spec.d) + " is out of range";
    return std::nullopt;
  }
  if (resolved.seed == 0) resolved.seed = resolved.name == "occ" ? 2 : 1;
  if (resolved.d == 0) resolved.d = kAcsQiCount;
  return resolved;
}

std::optional<Table> GenerateDataset(const DatasetSpec& spec, std::string* error) {
  std::optional<DatasetSpec> resolved = ResolveDatasetSpec(spec, error);
  if (!resolved) return std::nullopt;

  Table table = resolved->name == "sal" ? GenerateSal(resolved->n, resolved->seed)
                                        : GenerateOcc(resolved->n, resolved->seed);
  if (resolved->d == kAcsQiCount) return table;

  // Prefix projection: the first d of the seven Table-6 attributes. The
  // paper's SAL-d family takes every C(7, d) combination (see
  // data/workload.h); the CLI pins the lexicographically first one so a
  // (d, n) grid stays one table per cell.
  std::vector<AttrId> prefix(resolved->d);
  for (std::size_t i = 0; i < resolved->d; ++i) prefix[i] = static_cast<AttrId>(i);
  return table.ProjectQi(prefix);
}

std::string DatasetLabel(const DatasetSpec& spec) {
  std::string error;
  std::optional<DatasetSpec> resolved = ResolveDatasetSpec(spec, &error);
  if (!resolved) return "invalid(" + error + ")";
  return resolved->name + "(n=" + std::to_string(resolved->n) +
         ", seed=" + std::to_string(resolved->seed) + ", d=" + std::to_string(resolved->d) + ")";
}

}  // namespace ldv
