#include "data/dataset.h"

#include <cctype>
#include <fstream>
#include <string_view>

#include "common/csv.h"
#include "data/acs_generator.h"
#include "data/acs_schema.h"

namespace ldv {

namespace {

std::string Lowered(std::string_view text) {
  std::string lowered(text);
  for (char& c : lowered) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return lowered;
}

bool IsIntegerCell(const std::string& cell) {
  if (cell.empty()) return false;
  for (char c : cell) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

}  // namespace

bool ParseCsvFormat(std::string_view text, CsvFormat* format, std::string* error) {
  std::string lowered = Lowered(text);
  if (lowered == "auto") {
    *format = CsvFormat::kAuto;
  } else if (lowered == "coded") {
    *format = CsvFormat::kCoded;
  } else if (lowered == "raw") {
    *format = CsvFormat::kRaw;
  } else {
    *error = "unknown CSV format '" + std::string(text) + "' (available: auto, coded, raw)";
    return false;
  }
  return true;
}

std::string_view CsvFormatName(CsvFormat format) {
  switch (format) {
    case CsvFormat::kAuto:
      return "auto";
    case CsvFormat::kCoded:
      return "coded";
    case CsvFormat::kRaw:
      return "raw";
  }
  return "auto";
}

std::optional<CsvFormat> DetectCsvFormat(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::string line;
  if (!std::getline(in, line)) {
    *error = "'" + path + "' is empty (missing header row)";
    return std::nullopt;
  }
  while (std::getline(in, line)) {
    if (IsBlankCsvLine(line)) continue;
    std::vector<std::string> cells;
    SplitCsvLine(line, &cells);
    for (const std::string& cell : cells) {
      if (!IsIntegerCell(cell)) return CsvFormat::kRaw;
    }
    return CsvFormat::kCoded;
  }
  *error = "'" + path + "' has no data rows after the header";
  return std::nullopt;
}

bool ResolveCsvFormat(const std::string& path, CsvFormat format, bool has_schema,
                      CsvFormat* resolved, std::string* error) {
  if (format != CsvFormat::kAuto) {
    *resolved = format;
    return true;
  }
  if (has_schema) {
    // A schema means a coded load: raw files carry no codes to check
    // against it. Mismatches surface as positioned parse errors.
    *resolved = CsvFormat::kCoded;
    return true;
  }
  std::string detect_error;
  std::optional<CsvFormat> detected = DetectCsvFormat(path, &detect_error);
  if (detected.has_value() && *detected == CsvFormat::kCoded) {
    *error = "'" + path +
             "' looks integer-coded: pass a schema (--schema=...) for a coded load, or "
             "force format 'raw' to ingest the digits as labels";
    return false;
  }
  *resolved = CsvFormat::kRaw;
  return true;
}

std::optional<Table> LoadTableCsv(const std::string& path, CsvFormat format,
                                  const Schema* schema, std::string* error) {
  if (!ResolveCsvFormat(path, format, schema != nullptr, &format, error)) return std::nullopt;
  CsvError csv_error;
  if (format == CsvFormat::kCoded) {
    if (schema == nullptr) {
      *error = "a coded CSV load requires a schema";
      return std::nullopt;
    }
    std::optional<Table> table = ReadTableCsv(*schema, path, &csv_error);
    if (!table) *error = csv_error.ToString();
    return table;
  }
  std::optional<Table> table = ReadRawTableCsv(path, &csv_error);
  if (!table) *error = csv_error.ToString();
  return table;
}

std::optional<DatasetSpec> ResolveDatasetSpec(const DatasetSpec& spec, std::string* error) {
  DatasetSpec resolved = spec;
  resolved.name = Lowered(spec.name);
  if (resolved.name != "sal" && resolved.name != "occ") {
    *error = "unknown dataset '" + spec.name + "' (available: sal, occ)";
    return std::nullopt;
  }
  if (resolved.n == 0) {
    *error = "dataset needs at least one row (--n=0)";
    return std::nullopt;
  }
  if (resolved.d > kAcsQiCount) {
    *error = "dataset has " + std::to_string(kAcsQiCount) + " QI attributes; --d=" +
             std::to_string(spec.d) + " is out of range";
    return std::nullopt;
  }
  if (resolved.seed == 0) resolved.seed = resolved.name == "occ" ? 2 : 1;
  if (resolved.d == 0) resolved.d = kAcsQiCount;
  return resolved;
}

std::optional<Table> GenerateDataset(const DatasetSpec& spec, std::string* error) {
  std::optional<DatasetSpec> resolved = ResolveDatasetSpec(spec, error);
  if (!resolved) return std::nullopt;

  Table table = resolved->name == "sal" ? GenerateSal(resolved->n, resolved->seed)
                                        : GenerateOcc(resolved->n, resolved->seed);
  if (resolved->d == kAcsQiCount) return table;

  // Prefix projection: the first d of the seven Table-6 attributes. The
  // paper's SAL-d family takes every C(7, d) combination (see
  // data/workload.h); the CLI pins the lexicographically first one so a
  // (d, n) grid stays one table per cell.
  std::vector<AttrId> prefix(resolved->d);
  for (std::size_t i = 0; i < resolved->d; ++i) prefix[i] = static_cast<AttrId>(i);
  return table.ProjectQi(prefix);
}

std::unique_ptr<PagedTable> GenerateDatasetPaged(const DatasetSpec& spec,
                                                 const PagedTableBuilder::Options& options,
                                                 std::string* error) {
  std::optional<DatasetSpec> resolved = ResolveDatasetSpec(spec, error);
  if (!resolved) return nullptr;

  const std::size_t d = resolved->d;
  std::unique_ptr<PagedTableBuilder> builder = PagedTableBuilder::Create(d, options, error);
  if (builder == nullptr) return nullptr;

  AcsRowGenerator gen(resolved->name == "sal" ? AcsRowGenerator::Kind::kSal
                                              : AcsRowGenerator::Kind::kOcc,
                      resolved->seed);

  // Chunked generation: rows are sampled one at a time but handed to the
  // builder in column chunks, so appends amortize to one memcpy per page.
  // The prefix projection for d < 7 simply never buffers the dropped
  // attributes -- same effect as GenerateDataset's ProjectQi, without the
  // intermediate 7-column table.
  constexpr std::size_t kChunkRows = 16384;
  std::vector<std::vector<Value>> qi_chunks(d);
  for (std::vector<Value>& chunk : qi_chunks) chunk.reserve(kChunkRows);
  std::vector<SaValue> sa_chunk;
  sa_chunk.reserve(kChunkRows);
  const auto flush = [&]() {
    for (std::size_t a = 0; a < d; ++a) {
      builder->AppendQiChunk(static_cast<AttrId>(a), qi_chunks[a].data(), qi_chunks[a].size());
      qi_chunks[a].clear();
    }
    builder->AppendSaChunk(sa_chunk.data(), sa_chunk.size());
    sa_chunk.clear();
  };

  Value row[kAcsQiCount];
  SaValue sa = 0;
  for (std::size_t i = 0; i < resolved->n; ++i) {
    gen.Next(row, &sa);
    for (std::size_t a = 0; a < d; ++a) qi_chunks[a].push_back(row[a]);
    sa_chunk.push_back(sa);
    if (sa_chunk.size() == kChunkRows) flush();
  }
  if (!sa_chunk.empty()) flush();

  Schema schema = gen.schema();
  if (d < kAcsQiCount) {
    std::vector<AttrId> prefix(d);
    for (std::size_t i = 0; i < d; ++i) prefix[i] = static_cast<AttrId>(i);
    schema = schema.Project(prefix);
  }
  return builder->Finish(std::move(schema), error);
}

std::unique_ptr<PagedTable> LoadTableCsvPaged(const std::string& path, CsvFormat format,
                                              const Schema* schema,
                                              const PagedTableBuilder::Options& options,
                                              std::string* error) {
  if (!ResolveCsvFormat(path, format, schema != nullptr, &format, error)) return nullptr;
  CsvError csv_error;
  if (format == CsvFormat::kCoded) {
    if (schema == nullptr) {
      *error = "a coded CSV load requires a schema";
      return nullptr;
    }
    std::unique_ptr<PagedTable> table = ReadTableCsvPaged(*schema, path, options, &csv_error);
    if (table == nullptr) *error = csv_error.ToString();
    return table;
  }
  std::unique_ptr<PagedTable> table = ReadRawTableCsvPaged(path, options, &csv_error);
  if (table == nullptr) *error = csv_error.ToString();
  return table;
}

std::string DatasetLabel(const DatasetSpec& spec) {
  std::string error;
  std::optional<DatasetSpec> resolved = ResolveDatasetSpec(spec, &error);
  if (!resolved) return "invalid(" + error + ")";
  return resolved->name + "(n=" + std::to_string(resolved->n) +
         ", seed=" + std::to_string(resolved->seed) + ", d=" + std::to_string(resolved->d) + ")";
}

}  // namespace ldv
