#include "hilbert/hilbert_curve.h"

#include <vector>

#include "common/check.h"
#include "common/simd.h"

namespace ldv {

namespace {

// Skilling's in-place transforms between axis coordinates and the
// "transposed" Hilbert index representation (b bits per axis, n axes).

void AxesToTranspose(std::uint32_t* x, std::uint32_t b, std::uint32_t n) {
  std::uint32_t m = 1u << (b - 1);
  // Inverse undo.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    std::uint32_t p = q - 1;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        std::uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (std::uint32_t i = 1; i < n; ++i) x[i] ^= x[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    if (x[n - 1] & q) t ^= q - 1;
  }
  for (std::uint32_t i = 0; i < n; ++i) x[i] ^= t;
}

void TransposeToAxes(std::uint32_t* x, std::uint32_t b, std::uint32_t n) {
  std::uint32_t big = 2u << (b - 1);
  // Gray decode by H ^ (H/2).
  std::uint32_t t = x[n - 1] >> 1;
  for (std::uint32_t i = n - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != big; q <<= 1) {
    std::uint32_t p = q - 1;
    for (std::uint32_t i = n; i-- > 0;) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        std::uint32_t t2 = (x[0] ^ x[i]) & p;
        x[0] ^= t2;
        x[i] ^= t2;
      }
    }
  }
}

}  // namespace

HilbertCurve::HilbertCurve(std::uint32_t dimensions, std::uint32_t bits_per_dimension)
    : dims_(dimensions), bits_(bits_per_dimension) {
  LDIV_CHECK_GE(dims_, 1u);
  LDIV_CHECK_GE(bits_, 1u);
  LDIV_CHECK_LE(bits_, 32u);
  LDIV_CHECK_LE(static_cast<std::uint64_t>(dims_) * bits_, 64u)
      << "Hilbert index must fit in 64 bits";
}

std::uint64_t HilbertCurve::Encode(std::span<const std::uint32_t> coords) const {
  LDIV_CHECK_EQ(coords.size(), dims_);
  std::uint32_t x[64];
  for (std::uint32_t i = 0; i < dims_; ++i) {
    LDIV_CHECK_LT(coords[i], 1u << bits_);
    x[i] = coords[i];
  }
  if (dims_ == 1) return coords[0];  // the 1-D curve is the identity
  AxesToTranspose(x, bits_, dims_);
  // Interleave the transposed form, most significant bit plane first.
  std::uint64_t index = 0;
  for (std::uint32_t bit = bits_; bit-- > 0;) {
    for (std::uint32_t i = 0; i < dims_; ++i) {
      index = (index << 1) | ((x[i] >> bit) & 1u);
    }
  }
  return index;
}

void HilbertCurve::EncodeBlock(const std::uint32_t* const* cols, std::uint32_t shift,
                               std::size_t row_begin, std::size_t count,
                               std::uint64_t* out) const {
  if (dims_ == 1) {  // the 1-D curve is the identity
    for (std::size_t r = 0; r < count; ++r) out[r] = cols[0][row_begin + r] >> shift;
    return;
  }
  simd::HilbertEncodeBlock(cols, dims_, bits_, shift, row_begin, count, out);
}

void HilbertCurve::Decode(std::uint64_t index, std::span<std::uint32_t> coords) const {
  LDIV_CHECK_EQ(coords.size(), dims_);
  if (dims_ == 1) {
    coords[0] = static_cast<std::uint32_t>(index);
    return;
  }
  std::uint32_t x[64] = {0};
  for (std::uint32_t bit = 0; bit < bits_; ++bit) {
    for (std::uint32_t i = dims_; i-- > 0;) {
      x[i] |= static_cast<std::uint32_t>(index & 1u) << bit;
      index >>= 1;
    }
  }
  TransposeToAxes(x, bits_, dims_);
  for (std::uint32_t i = 0; i < dims_; ++i) coords[i] = x[i];
}

std::uint32_t HilbertCurve::BitsForDomain(std::uint64_t domain_size) {
  std::uint32_t bits = 1;
  while ((std::uint64_t{1} << bits) < domain_size) ++bits;
  return bits;
}

}  // namespace ldv
