#ifndef LDIV_HILBERT_HILBERT_CURVE_H_
#define LDIV_HILBERT_HILBERT_CURVE_H_

#include <cstdint>
#include <span>

namespace ldv {

/// d-dimensional Hilbert space-filling curve encoder.
///
/// The Hilbert baseline of Ghinita et al. [16] maps every tuple's QI vector
/// to its position along a Hilbert curve and anonymizes in 1-D order; the
/// curve's locality guarantees that consecutive tuples have similar QI
/// values. This implementation follows John Skilling, "Programming the
/// Hilbert curve" (AIP Conf. Proc. 707, 2004): coordinates are converted to
/// the transposed Hilbert index via Gray-code arithmetic in O(d * b) time.
///
/// `dimensions * bits_per_dimension` must be at most 64 so the index fits a
/// single machine word (the paper's workloads need at most 7 attributes of
/// 7 bits).
class HilbertCurve {
 public:
  HilbertCurve(std::uint32_t dimensions, std::uint32_t bits_per_dimension);

  std::uint32_t dimensions() const { return dims_; }
  std::uint32_t bits_per_dimension() const { return bits_; }

  /// Position of `coords` along the curve. Each coordinate must be below
  /// 2^bits_per_dimension.
  std::uint64_t Encode(std::span<const std::uint32_t> coords) const;

  /// Encode for a block of rows in columnar form: row r of the block takes
  /// coordinate cols[i][row_begin + r] >> shift on axis i, and its curve
  /// position lands in out[r]. Bit-exact with Encode on every row, but
  /// runs on the SIMD kernels (several rows walk the curve per step), so
  /// the bulk per-row paths should prefer it. Shifted coordinates must be
  /// below 2^bits_per_dimension.
  void EncodeBlock(const std::uint32_t* const* cols, std::uint32_t shift,
                   std::size_t row_begin, std::size_t count, std::uint64_t* out) const;

  /// Inverse of Encode: recovers coordinates from a curve position.
  void Decode(std::uint64_t index, std::span<std::uint32_t> coords) const;

  /// Smallest bit width that can represent values in [0, domain_size).
  static std::uint32_t BitsForDomain(std::uint64_t domain_size);

 private:
  std::uint32_t dims_;
  std::uint32_t bits_;
};

}  // namespace ldv

#endif  // LDIV_HILBERT_HILBERT_CURVE_H_
