#ifndef LDIV_HILBERT_HILBERT_PARTITIONER_H_
#define LDIV_HILBERT_HILBERT_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "anonymity/diversity.h"
#include "anonymity/partition.h"
#include "common/table.h"
#include "common/types.h"
#include "common/workspace.h"

namespace ldv {

/// Options for the Hilbert baseline.
struct HilbertOptions {
  enum class Splitter {
    /// Linear greedy scan: close each QI-group as soon as it becomes
    /// l-eligible; an ineligible tail is merged backwards until eligible.
    /// This is the near-linear strategy of [16].
    kGreedy,
    /// Sliding-window dynamic program that picks the contiguous split with
    /// the fewest stars among groups of bounded size. Slower, usually a
    /// little better; kept as an ablation of the splitting rule.
    kWindowDp,
  };
  Splitter splitter = Splitter::kGreedy;
  /// Maximum group size considered by the kWindowDp splitter, as a multiple
  /// of l (window = dp_window_factor * l).
  std::uint32_t dp_window_factor = 4;
};

/// Result of the Hilbert baseline.
struct HilbertResult {
  /// False iff the table is not l-eligible.
  bool feasible = false;
  Partition partition;
  double seconds = 0.0;
};

/// The suppression-adapted Hilbert baseline of Section 6.1 (Ghinita et
/// al. [16]): sort tuples by their position along a d-dimensional Hilbert
/// curve over the QI space, then cut the 1-D sequence into consecutive
/// l-eligible QI-groups. Locality of the curve keeps tuples with similar QI
/// values in the same group, which keeps the Definition-1 star count low.
/// The code, order and split-offset buffers come from `workspace` when one
/// is supplied, so repeated solves reuse their scratch memory. When
/// `precomputed_order` is non-null it must be the exact row order
/// HilbertComputeOrder produces for `table`; the encode + sort step is
/// skipped and the splitter consumes the given order (the engine's
/// artifact cache uses this to amortize the sort across a sweep).
HilbertResult HilbertAnonymize(const Table& table, std::uint32_t l,
                               const HilbertOptions& options = {},
                               Workspace* workspace = nullptr,
                               const std::vector<RowId>* precomputed_order = nullptr);

/// The sorted Hilbert row order of `table` -- the dataset-dependent,
/// l-independent half of HilbertAnonymize, exposed so callers can compute
/// it once per dataset and replay it across solves. Byte-identical to the
/// order HilbertAnonymize derives internally (including the external-sort
/// path under a memory budget).
void HilbertComputeOrder(const Table& table, Workspace* workspace, std::vector<RowId>* order);

/// Generic-predicate variant for the alternative l-diversity
/// instantiations of [31] (entropy, recursive (c,l)): same Hilbert sort and
/// greedy consecutive grouping, closing a group as soon as it satisfies
/// `spec` and merging an unsatisfiable tail backwards. Sound because all
/// three diversity variants are monotone under union. Returns infeasible
/// when the whole table violates `spec`.
HilbertResult HilbertAnonymizeWithSpec(const Table& table, const DiversitySpec& spec);

}  // namespace ldv

#endif  // LDIV_HILBERT_HILBERT_PARTITIONER_H_
