#include "hilbert/hilbert_partitioner.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "anonymity/eligibility.h"
#include "common/check.h"
#include "common/external_sort.h"
#include "common/failpoint.h"
#include "common/memory_budget.h"
#include "common/parallel.h"
#include "common/workspace.h"
#include "hilbert/hilbert_curve.h"

namespace ldv {

namespace {

// Incremental l-eligibility tracker for a growing multiset of SA values,
// backed by a caller-supplied dense counter so repeated splits reuse one
// buffer.
class GrowingEligibility {
 public:
  GrowingEligibility(std::vector<std::uint32_t>* counts, std::vector<SaValue>* touched,
                     std::size_t m)
      : counts_(*counts), touched_(*touched) {
    counts_.assign(m, 0);
    touched_.clear();
  }

  void Add(SaValue v) {
    ++counts_[v];
    touched_.push_back(v);
    max_ = std::max(max_, counts_[v]);
    ++total_;
  }

  bool Eligible(std::uint32_t l) const {
    return total_ >= static_cast<std::uint64_t>(l) * max_;
  }

  std::uint64_t total() const { return total_; }

  void Reset() {
    for (SaValue v : touched_) counts_[v] = 0;
    touched_.clear();
    max_ = 0;
    total_ = 0;
  }

 private:
  std::vector<std::uint32_t>& counts_;
  std::vector<SaValue>& touched_;
  std::uint32_t max_ = 0;
  std::uint64_t total_ = 0;
};

// Hilbert code per row, written into `codes`. Domains larger than the
// representable grid are right-shifted (graceful coarsening); the paper's
// workloads (d <= 7, domains <= 79) always fit exactly. The encode is a
// pure per-row map, so the rows are fanned out in fixed chunks -- the
// result cannot depend on the thread count.
void ComputeCodes(const Table& table, Workspace& ws, std::vector<std::uint64_t>* codes) {
  std::uint32_t d = static_cast<std::uint32_t>(table.qi_count());
  std::uint32_t bits_needed = 1;
  for (AttrId a = 0; a < d; ++a) {
    bits_needed = std::max(bits_needed,
                           HilbertCurve::BitsForDomain(table.schema().qi(a).domain_size));
  }
  std::uint32_t bits = std::min(bits_needed, std::max(1u, 64u / d));
  std::uint32_t shift = bits_needed - bits;
  HilbertCurve curve(d, bits);

  codes->resize(table.size());
  std::vector<const Value*> cols(d);
  for (AttrId a = 0; a < d; ++a) cols[a] = table.column(a).data();
  std::uint64_t* out = codes->data();
  ParallelFor(table.size(), 8192, ws,
              [&](std::size_t begin, std::size_t end, Workspace&) {
                curve.EncodeBlock(cols.data(), shift, begin, end - begin, out + begin);
              });
}

// Out-of-core variant of ComputeOrder: rows are Hilbert-encoded in fixed
// chunks and fed straight into a budget-bounded external sort of
// (code, row) records, so neither the full code array (8 bytes/row) nor
// any sort scratch is ever resident -- peak memory is one encode chunk
// plus the sorter's buffer. The sorted (key, payload) order equals the
// in-RAM path's comparator `codes[a] < codes[b], ties by a < b` exactly,
// so the emitted order is byte-identical.
void ComputeOrderExternal(const Table& table, Workspace& ws, std::vector<RowId>* order) {
  constexpr std::size_t kEncodeChunk = 65536;
  std::uint32_t d = static_cast<std::uint32_t>(table.qi_count());
  std::uint32_t bits_needed = 1;
  for (AttrId a = 0; a < d; ++a) {
    bits_needed = std::max(bits_needed,
                           HilbertCurve::BitsForDomain(table.schema().qi(a).domain_size));
  }
  std::uint32_t bits = std::min(bits_needed, std::max(1u, 64u / d));
  std::uint32_t shift = bits_needed - bits;
  HilbertCurve curve(d, bits);

  std::shared_ptr<MemoryBudget> budget =
      MemoryBudgetBytes() != 0 ? GlobalMemoryBudgetShared() : nullptr;
  const std::uint64_t spend = budget != nullptr ? budget->remaining() / 4 : 64ull << 20;
  const std::size_t buffer_records = static_cast<std::size_t>(
      std::clamp<std::uint64_t>(spend / sizeof(SortRecord), 1u << 16, 4u << 20));
  std::string sort_error;
  std::unique_ptr<ExternalSorter> sorter = ExternalSorter::Create(
      ExternalSorter::Options{.buffer_records = buffer_records, .budget = budget}, &sort_error);
  // Recoverable: the engine boundary converts the throw to a typed I/O
  // error instead of aborting the process mid-sort.
  if (sorter == nullptr) throw IoFailure("external sort unavailable: " + sort_error);

  std::vector<const Value*> cols(d);
  for (AttrId a = 0; a < d; ++a) cols[a] = table.column(a).data();
  auto chunk_s = ws.U64();
  std::vector<std::uint64_t>& chunk = *chunk_s;
  chunk.resize(std::min(table.size(), kEncodeChunk));
  for (std::size_t begin = 0; begin < table.size(); begin += kEncodeChunk) {
    const std::size_t count = std::min(kEncodeChunk, table.size() - begin);
    curve.EncodeBlock(cols.data(), shift, begin, count, chunk.data());
    for (std::size_t i = 0; i < count; ++i) sorter->Add(chunk[i], begin + i);
  }
  sorter->Finish();
  order->resize(table.size());
  SortRecord record;
  for (std::size_t i = 0; i < table.size(); ++i) {
    LDIV_CHECK(sorter->Next(&record)) << "external sort lost records";
    (*order)[i] = static_cast<RowId>(record.payload);
  }
}

// Sorted Hilbert order of the table's rows, drawn from the workspace.
// Under a process memory budget that cannot fit the code array plus sort,
// the external-sort path streams instead (byte-identical output).
void ComputeOrder(const Table& table, Workspace& ws, std::vector<RowId>* order) {
  if (MemoryBudgetBytes() != 0 &&
      !GlobalMemoryBudget().WouldFit(12ull * table.size())) {  // codes + sorted order
    ComputeOrderExternal(table, ws, order);
    return;
  }
  auto codes_s = ws.U64();
  std::vector<std::uint64_t>& codes = *codes_s;
  ComputeCodes(table, ws, &codes);
  order->resize(table.size());
  std::iota(order->begin(), order->end(), 0u);
  std::sort(order->begin(), order->end(), [&](RowId a, RowId b) {
    return codes[a] != codes[b] ? codes[a] < codes[b] : a < b;
  });
}

// Greedy splitter: close each group as soon as it becomes l-eligible; merge
// an ineligible tail backwards (the union of l-eligible groups stays
// l-eligible by Lemma 1, and the whole table is l-eligible, so the merge
// terminates). Group start offsets are appended to `starts`.
void GreedySplit(const Table& table, const std::vector<RowId>& order, std::uint32_t l,
                 Workspace& ws, std::vector<std::uint32_t>* starts) {
  auto counts_s = ws.U32();
  auto touched_s = ws.U32();
  GrowingEligibility acc(&*counts_s, &*touched_s, table.schema().sa_domain_size());
  std::size_t group_start = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (acc.total() == 0) group_start = i;
    acc.Add(table.sa(order[i]));
    if (acc.Eligible(l)) {
      starts->push_back(static_cast<std::uint32_t>(group_start));
      acc.Reset();
    }
  }
  if (acc.total() > 0) {
    // Ineligible tail: merge backwards until the combined suffix is
    // l-eligible (at worst the suffix becomes the whole table).
    std::size_t tail_start = group_start;
    while (!acc.Eligible(l)) {
      LDIV_CHECK(!starts->empty());
      std::size_t prev = starts->back();
      starts->pop_back();
      for (std::size_t i = prev; i < tail_start; ++i) acc.Add(table.sa(order[i]));
      tail_start = prev;
    }
    starts->push_back(static_cast<std::uint32_t>(tail_start));
  }
}

// Sliding-window DP splitter: dp[i] = fewest stars for the first i rows in
// Hilbert order, transitioning over the last group (j, i]. Groups larger
// than the window are considered only when no in-window transition is
// eligible, which keeps the DP feasible on adversarial SA runs.
//
// The dominant cost -- scanning every position's candidate window for
// group eligibility and star counts -- depends only on the data, never on
// dp, so it is computed block-parallel: fixed chunks of positions fill a
// candidate-cost table (stars of (j, i], or a sentinel when ineligible),
// then a sequential combine walks the positions in order and resolves the
// dp recurrence over the precomputed costs. Positions whose window holds
// no eligible reachable transition replay the original unbounded backward
// scan (the adversarial-run escape hatch, which does consult dp); the
// replay is verbatim the sequential loop, so the split is byte-identical
// to the single-threaded path at any thread count.
void WindowDpSplit(const Table& table, const std::vector<RowId>& order, std::uint32_t l,
                   std::uint32_t window, Workspace& ws, std::vector<std::uint32_t>* starts) {
  const std::size_t n = order.size();
  const std::size_t d = table.qi_count();
  const std::size_t m = table.schema().sa_domain_size();
  const std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  constexpr std::uint32_t kIneligible = std::numeric_limits<std::uint32_t>::max();
  const std::size_t w = std::min<std::size_t>(std::max(1u, window), n);
  // In-window star counts are at most d * w; they must stay clear of the
  // sentinel for the u32 candidate table to be lossless.
  LDIV_CHECK_LT(static_cast<std::uint64_t>(d) * w, kIneligible);

  auto dp_s = ws.U64();
  std::vector<std::uint64_t>& dp = *dp_s;
  dp.assign(n + 1, kInf);
  auto parent_s = ws.U32();
  std::vector<std::uint32_t>& parent = *parent_s;
  parent.assign(n + 1, 0);
  dp[0] = 0;

  std::vector<const Value*> cols(d);
  for (AttrId a = 0; a < d; ++a) cols[a] = table.column(a).data();

  // Candidate-cost table for one block of positions: entry k * w + off is
  // the cost of ending a group at position i = block_begin + k with the
  // transition j = i - 1 - off. Blocked so the table stays a few MB even
  // for wide windows; the block size is a function of (n, w) only.
  const std::size_t kMaxEntries = std::size_t{1} << 22;
  const std::size_t block = std::max<std::size_t>(1, kMaxEntries / w);
  auto cand_s = ws.U32();
  std::vector<std::uint32_t>& cand = *cand_s;
  cand.resize(std::min(n, block) * w);

  // Scratch for the sequential escape-hatch replay.
  auto fb_counts_s = ws.U32();
  auto fb_touched_s = ws.U32();
  GrowingEligibility fb_acc(&*fb_counts_s, &*fb_touched_s, m);
  std::vector<Value> fb_first(d);
  std::vector<char> fb_uniform(d);

  for (std::size_t block_begin = 1; block_begin <= n; block_begin += block) {
    const std::size_t count = std::min(block, n + 1 - block_begin);
    // Parallel fill: each chunk of positions keeps one eligibility
    // accumulator and scans its windows backward, exactly like the
    // sequential inner loop (minus the dp-dependent parts).
    ParallelFor(count, 128, ws, [&](std::size_t cb, std::size_t ce, Workspace& cws) {
      auto counts_s = cws.U32();
      auto touched_s = cws.U32();
      GrowingEligibility acc(&*counts_s, &*touched_s, m);
      std::vector<Value> first_value(d);
      std::vector<char> uniform(d);
      for (std::size_t k = cb; k < ce; ++k) {
        const std::size_t i = block_begin + k;
        std::uint32_t* out = cand.data() + k * w;
        acc.Reset();
        std::fill(uniform.begin(), uniform.end(), 1);
        for (std::size_t a = 0; a < d; ++a) first_value[a] = cols[a][order[i - 1]];
        std::size_t nonuniform = 0;
        const std::size_t lo = i > w ? i - w : 0;
        for (std::size_t j = i; j-- > lo;) {
          acc.Add(table.sa(order[j]));
          const RowId row = order[j];
          for (std::size_t a = 0; a < d; ++a) {
            if (uniform[a] && cols[a][row] != first_value[a]) {
              uniform[a] = 0;
              ++nonuniform;
            }
          }
          out[i - 1 - j] = acc.Eligible(l)
                               ? static_cast<std::uint32_t>(nonuniform * (i - j))
                               : kIneligible;
        }
      }
    });

    // Sequential combine, positions in ascending order: the recurrence
    // itself, over the precomputed candidate costs. Descending-j candidate
    // order and the strict improvement test reproduce the sequential
    // tie-breaking (ties keep the larger j).
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t i = block_begin + k;
      const std::uint32_t* row_cand = cand.data() + k * w;
      const std::size_t limit = std::min(i, w);
      bool found = false;
      for (std::size_t off = 0; off < limit; ++off) {
        const std::uint32_t cost = row_cand[off];
        if (cost == kIneligible) continue;
        const std::size_t j = i - 1 - off;
        if (dp[j] == kInf) continue;
        found = true;
        if (dp[j] + cost < dp[i]) {
          dp[i] = dp[j] + cost;
          parent[i] = static_cast<std::uint32_t>(j);
        }
      }
      if (found || i <= w) continue;
      // No eligible reachable transition inside the window: replay the
      // original unbounded backward scan for this position (verbatim the
      // pre-parallel loop, including its beyond-window stopping rule).
      fb_acc.Reset();
      std::fill(fb_uniform.begin(), fb_uniform.end(), 1);
      for (std::size_t a = 0; a < d; ++a) fb_first[a] = cols[a][order[i - 1]];
      std::size_t nonuniform = 0;
      bool found_eligible = false;
      for (std::size_t j = i; j-- > 0;) {
        fb_acc.Add(table.sa(order[j]));
        const RowId row = order[j];
        for (std::size_t a = 0; a < d; ++a) {
          if (fb_uniform[a] && cols[a][row] != fb_first[a]) {
            fb_uniform[a] = 0;
            ++nonuniform;
          }
        }
        if (i - j > window && found_eligible) break;
        if (!fb_acc.Eligible(l) || dp[j] == kInf) continue;
        found_eligible = true;
        std::uint64_t stars = static_cast<std::uint64_t>(nonuniform) * (i - j);
        if (dp[j] + stars < dp[i]) {
          dp[i] = dp[j] + stars;
          parent[i] = static_cast<std::uint32_t>(j);
        }
      }
    }
  }
  LDIV_CHECK_NE(dp[n], kInf);

  for (std::size_t i = n; i > 0; i = parent[i]) starts->push_back(parent[i]);
  std::reverse(starts->begin(), starts->end());
}

// Emits order[starts[i], starts[i+1]) as the partition's groups.
void EmitGroups(const std::vector<RowId>& order, const std::vector<std::uint32_t>& starts,
                Partition* partition) {
  partition->Reserve(starts.size());
  for (std::size_t gi = 0; gi < starts.size(); ++gi) {
    std::size_t end = (gi + 1 < starts.size()) ? starts[gi + 1] : order.size();
    partition->AddGroup(std::vector<RowId>(order.begin() + starts[gi], order.begin() + end));
  }
}

}  // namespace

HilbertResult HilbertAnonymizeWithSpec(const Table& table, const DiversitySpec& spec) {
  HilbertResult result;
  if (table.empty()) {
    result.feasible = true;
    return result;
  }
  const std::size_t m = table.schema().sa_domain_size();
  {
    SaHistogram whole(std::vector<std::uint32_t>(table.SaHistogramCounts()));
    if (!SatisfiesDiversity(whole, spec)) return result;
  }
  auto start_time = std::chrono::steady_clock::now();

  Workspace ws;
  auto order_s = ws.U32();
  std::vector<RowId>& order = *order_s;
  ComputeOrder(table, ws, &order);

  // Greedy close + backward merge, with the generic (monotone) predicate.
  std::vector<std::uint32_t> starts;
  SaHistogram acc(m);
  std::size_t group_start = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (acc.empty()) group_start = i;
    acc.Add(table.sa(order[i]));
    if (SatisfiesDiversity(acc, spec)) {
      starts.push_back(static_cast<std::uint32_t>(group_start));
      acc = SaHistogram(m);
    }
  }
  if (!acc.empty()) {
    std::size_t tail_start = group_start;
    while (!SatisfiesDiversity(acc, spec)) {
      LDIV_CHECK(!starts.empty());
      std::size_t prev = starts.back();
      starts.pop_back();
      for (std::size_t i = prev; i < tail_start; ++i) acc.Add(table.sa(order[i]));
      tail_start = prev;
    }
    starts.push_back(static_cast<std::uint32_t>(tail_start));
  }

  EmitGroups(order, starts, &result.partition);
  result.feasible = true;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time).count();
  return result;
}

void HilbertComputeOrder(const Table& table, Workspace* workspace, std::vector<RowId>* order) {
  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;
  ComputeOrder(table, ws, order);
}

HilbertResult HilbertAnonymize(const Table& table, std::uint32_t l,
                               const HilbertOptions& options, Workspace* workspace,
                               const std::vector<RowId>* precomputed_order) {
  HilbertResult result;
  if (table.empty() || !IsTableEligible(table, l)) {
    result.feasible = table.empty();
    return result;
  }
  auto start_time = std::chrono::steady_clock::now();

  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;
  auto order_s = ws.U32();
  const std::vector<RowId>* order_ptr;
  if (precomputed_order != nullptr) {
    order_ptr = precomputed_order;
  } else {
    ComputeOrder(table, ws, &*order_s);
    order_ptr = &*order_s;
  }
  const std::vector<RowId>& order = *order_ptr;

  auto starts_s = ws.U32();
  std::vector<std::uint32_t>& starts = *starts_s;
  if (options.splitter == HilbertOptions::Splitter::kGreedy) {
    GreedySplit(table, order, l, ws, &starts);
  } else {
    WindowDpSplit(table, order, l, options.dp_window_factor * l, ws, &starts);
  }

  EmitGroups(order, starts, &result.partition);
  result.feasible = true;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time).count();
  return result;
}

}  // namespace ldv
