#include "hilbert/hilbert_partitioner.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "anonymity/eligibility.h"
#include "common/check.h"
#include "common/workspace.h"
#include "hilbert/hilbert_curve.h"

namespace ldv {

namespace {

// Incremental l-eligibility tracker for a growing multiset of SA values,
// backed by a caller-supplied dense counter so repeated splits reuse one
// buffer.
class GrowingEligibility {
 public:
  GrowingEligibility(std::vector<std::uint32_t>* counts, std::vector<SaValue>* touched,
                     std::size_t m)
      : counts_(*counts), touched_(*touched) {
    counts_.assign(m, 0);
    touched_.clear();
  }

  void Add(SaValue v) {
    ++counts_[v];
    touched_.push_back(v);
    max_ = std::max(max_, counts_[v]);
    ++total_;
  }

  bool Eligible(std::uint32_t l) const {
    return total_ >= static_cast<std::uint64_t>(l) * max_;
  }

  std::uint64_t total() const { return total_; }

  void Reset() {
    for (SaValue v : touched_) counts_[v] = 0;
    touched_.clear();
    max_ = 0;
    total_ = 0;
  }

 private:
  std::vector<std::uint32_t>& counts_;
  std::vector<SaValue>& touched_;
  std::uint32_t max_ = 0;
  std::uint64_t total_ = 0;
};

// Hilbert code per row, written into `codes`. Domains larger than the
// representable grid are right-shifted (graceful coarsening); the paper's
// workloads (d <= 7, domains <= 79) always fit exactly.
void ComputeCodes(const Table& table, std::vector<std::uint64_t>* codes) {
  std::uint32_t d = static_cast<std::uint32_t>(table.qi_count());
  std::uint32_t bits_needed = 1;
  for (AttrId a = 0; a < d; ++a) {
    bits_needed = std::max(bits_needed,
                           HilbertCurve::BitsForDomain(table.schema().qi(a).domain_size));
  }
  std::uint32_t bits = std::min(bits_needed, std::max(1u, 64u / d));
  std::uint32_t shift = bits_needed - bits;
  HilbertCurve curve(d, bits);

  codes->resize(table.size());
  std::vector<const Value*> cols(d);
  for (AttrId a = 0; a < d; ++a) cols[a] = table.column(a).data();
  std::vector<std::uint32_t> coords(d);
  for (RowId r = 0; r < table.size(); ++r) {
    for (std::uint32_t i = 0; i < d; ++i) coords[i] = cols[i][r] >> shift;
    (*codes)[r] = curve.Encode(coords);
  }
}

// Sorted Hilbert order of the table's rows, drawn from the workspace.
void ComputeOrder(const Table& table, Workspace& ws, std::vector<RowId>* order) {
  auto codes_s = ws.U64();
  std::vector<std::uint64_t>& codes = *codes_s;
  ComputeCodes(table, &codes);
  order->resize(table.size());
  std::iota(order->begin(), order->end(), 0u);
  std::sort(order->begin(), order->end(), [&](RowId a, RowId b) {
    return codes[a] != codes[b] ? codes[a] < codes[b] : a < b;
  });
}

// Greedy splitter: close each group as soon as it becomes l-eligible; merge
// an ineligible tail backwards (the union of l-eligible groups stays
// l-eligible by Lemma 1, and the whole table is l-eligible, so the merge
// terminates). Group start offsets are appended to `starts`.
void GreedySplit(const Table& table, const std::vector<RowId>& order, std::uint32_t l,
                 Workspace& ws, std::vector<std::uint32_t>* starts) {
  auto counts_s = ws.U32();
  auto touched_s = ws.U32();
  GrowingEligibility acc(&*counts_s, &*touched_s, table.schema().sa_domain_size());
  std::size_t group_start = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (acc.total() == 0) group_start = i;
    acc.Add(table.sa(order[i]));
    if (acc.Eligible(l)) {
      starts->push_back(static_cast<std::uint32_t>(group_start));
      acc.Reset();
    }
  }
  if (acc.total() > 0) {
    // Ineligible tail: merge backwards until the combined suffix is
    // l-eligible (at worst the suffix becomes the whole table).
    std::size_t tail_start = group_start;
    while (!acc.Eligible(l)) {
      LDIV_CHECK(!starts->empty());
      std::size_t prev = starts->back();
      starts->pop_back();
      for (std::size_t i = prev; i < tail_start; ++i) acc.Add(table.sa(order[i]));
      tail_start = prev;
    }
    starts->push_back(static_cast<std::uint32_t>(tail_start));
  }
}

// Sliding-window DP splitter: dp[i] = fewest stars for the first i rows in
// Hilbert order, transitioning over the last group (j, i]. Groups larger
// than the window are considered only when no in-window transition is
// eligible, which keeps the DP feasible on adversarial SA runs.
void WindowDpSplit(const Table& table, const std::vector<RowId>& order, std::uint32_t l,
                   std::uint32_t window, Workspace& ws, std::vector<std::uint32_t>* starts) {
  const std::size_t n = order.size();
  const std::size_t d = table.qi_count();
  const std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  auto dp_s = ws.U64();
  std::vector<std::uint64_t>& dp = *dp_s;
  dp.assign(n + 1, kInf);
  auto parent_s = ws.U32();
  std::vector<std::uint32_t>& parent = *parent_s;
  parent.assign(n + 1, 0);
  dp[0] = 0;

  auto counts_s = ws.U32();
  auto touched_s = ws.U32();
  GrowingEligibility acc(&*counts_s, &*touched_s, table.schema().sa_domain_size());
  std::vector<const Value*> cols(d);
  for (AttrId a = 0; a < d; ++a) cols[a] = table.column(a).data();
  std::vector<Value> first_value(d);
  std::vector<char> uniform(d);

  for (std::size_t i = 1; i <= n; ++i) {
    acc.Reset();
    std::fill(uniform.begin(), uniform.end(), 1);
    for (std::size_t a = 0; a < d; ++a) first_value[a] = cols[a][order[i - 1]];
    std::size_t nonuniform = 0;
    bool found_eligible = false;
    for (std::size_t j = i; j-- > 0;) {
      // Extend the candidate group to cover rows (j, i] in Hilbert order.
      acc.Add(table.sa(order[j]));
      const RowId row = order[j];
      for (std::size_t a = 0; a < d; ++a) {
        if (uniform[a] && cols[a][row] != first_value[a]) {
          uniform[a] = 0;
          ++nonuniform;
        }
      }
      if (i - j > window && found_eligible) break;
      if (!acc.Eligible(l) || dp[j] == kInf) continue;
      found_eligible = true;
      std::uint64_t stars = static_cast<std::uint64_t>(nonuniform) * (i - j);
      if (dp[j] + stars < dp[i]) {
        dp[i] = dp[j] + stars;
        parent[i] = static_cast<std::uint32_t>(j);
      }
    }
  }
  LDIV_CHECK_NE(dp[n], kInf);

  for (std::size_t i = n; i > 0; i = parent[i]) starts->push_back(parent[i]);
  std::reverse(starts->begin(), starts->end());
}

// Emits order[starts[i], starts[i+1]) as the partition's groups.
void EmitGroups(const std::vector<RowId>& order, const std::vector<std::uint32_t>& starts,
                Partition* partition) {
  partition->Reserve(starts.size());
  for (std::size_t gi = 0; gi < starts.size(); ++gi) {
    std::size_t end = (gi + 1 < starts.size()) ? starts[gi + 1] : order.size();
    partition->AddGroup(std::vector<RowId>(order.begin() + starts[gi], order.begin() + end));
  }
}

}  // namespace

HilbertResult HilbertAnonymizeWithSpec(const Table& table, const DiversitySpec& spec) {
  HilbertResult result;
  if (table.empty()) {
    result.feasible = true;
    return result;
  }
  const std::size_t m = table.schema().sa_domain_size();
  {
    SaHistogram whole(std::vector<std::uint32_t>(table.SaHistogramCounts()));
    if (!SatisfiesDiversity(whole, spec)) return result;
  }
  auto start_time = std::chrono::steady_clock::now();

  Workspace ws;
  auto order_s = ws.U32();
  std::vector<RowId>& order = *order_s;
  ComputeOrder(table, ws, &order);

  // Greedy close + backward merge, with the generic (monotone) predicate.
  std::vector<std::uint32_t> starts;
  SaHistogram acc(m);
  std::size_t group_start = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (acc.empty()) group_start = i;
    acc.Add(table.sa(order[i]));
    if (SatisfiesDiversity(acc, spec)) {
      starts.push_back(static_cast<std::uint32_t>(group_start));
      acc = SaHistogram(m);
    }
  }
  if (!acc.empty()) {
    std::size_t tail_start = group_start;
    while (!SatisfiesDiversity(acc, spec)) {
      LDIV_CHECK(!starts.empty());
      std::size_t prev = starts.back();
      starts.pop_back();
      for (std::size_t i = prev; i < tail_start; ++i) acc.Add(table.sa(order[i]));
      tail_start = prev;
    }
    starts.push_back(static_cast<std::uint32_t>(tail_start));
  }

  EmitGroups(order, starts, &result.partition);
  result.feasible = true;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time).count();
  return result;
}

HilbertResult HilbertAnonymize(const Table& table, std::uint32_t l,
                               const HilbertOptions& options, Workspace* workspace) {
  HilbertResult result;
  if (table.empty() || !IsTableEligible(table, l)) {
    result.feasible = table.empty();
    return result;
  }
  auto start_time = std::chrono::steady_clock::now();

  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;
  auto order_s = ws.U32();
  std::vector<RowId>& order = *order_s;
  ComputeOrder(table, ws, &order);

  auto starts_s = ws.U32();
  std::vector<std::uint32_t>& starts = *starts_s;
  if (options.splitter == HilbertOptions::Splitter::kGreedy) {
    GreedySplit(table, order, l, ws, &starts);
  } else {
    WindowDpSplit(table, order, l, options.dp_window_factor * l, ws, &starts);
  }

  EmitGroups(order, starts, &result.partition);
  result.feasible = true;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time).count();
  return result;
}

}  // namespace ldv
