#ifndef LDIV_MATCHING_EXACT_M2_H_
#define LDIV_MATCHING_EXACT_M2_H_

#include <cstdint>

#include "anonymity/partition.h"
#include "common/table.h"

namespace ldv {

/// Result of the exact polynomial-time algorithm for the m = 2 case.
struct ExactM2Result {
  /// False iff the instance is not of the m = 2, 2-eligible form (two
  /// distinct SA values with equal multiplicity).
  bool feasible = false;
  Partition partition;
  std::uint64_t stars = 0;
  double seconds = 0.0;
};

/// The polynomial special case of Section 4: with m = 2 distinct SA values
/// the only useful l is 2, an optimal 2-diverse generalization can be
/// assumed to consist of groups of exactly two tuples (one per SA value),
/// and finding it reduces to a minimum-weight perfect bipartite matching
/// between the two SA classes, where the weight of a pair is the number of
/// stars needed to unify the two tuples (2 per disagreeing attribute).
/// Runs in O(|T|^3) time via the Hungarian algorithm.
ExactM2Result SolveExactM2(const Table& table);

}  // namespace ldv

#endif  // LDIV_MATCHING_EXACT_M2_H_
