#include "matching/exact_m2.h"

#include <chrono>
#include <vector>

#include "common/check.h"
#include "matching/hungarian.h"

namespace ldv {

ExactM2Result SolveExactM2(const Table& table) {
  ExactM2Result result;
  if (table.empty()) return result;

  // Collect the two SA classes S1, S2.
  std::vector<std::uint32_t> counts = table.SaHistogramCounts();
  std::int64_t first = -1, second = -1;
  for (std::size_t v = 0; v < counts.size(); ++v) {
    if (counts[v] == 0) continue;
    if (first < 0) {
      first = static_cast<std::int64_t>(v);
    } else if (second < 0) {
      second = static_cast<std::int64_t>(v);
    } else {
      return result;  // more than two distinct SA values
    }
  }
  if (second < 0) return result;                      // only one SA value: not 2-eligible
  if (counts[first] != counts[second]) return result;  // |S1| != |S2|: infeasible

  auto start = std::chrono::steady_clock::now();
  std::vector<RowId> s1, s2;
  for (RowId r = 0; r < table.size(); ++r) {
    (table.sa(r) == static_cast<SaValue>(first) ? s1 : s2).push_back(r);
  }

  const std::size_t n = s1.size();
  const std::size_t d = table.qi_count();
  std::vector<const Value*> cols(d);
  for (AttrId a = 0; a < d; ++a) cols[a] = table.column(a).data();
  std::vector<std::vector<std::int64_t>> cost(n, std::vector<std::int64_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      std::int64_t differing = 0;
      for (std::size_t a = 0; a < d; ++a) {
        if (cols[a][s1[i]] != cols[a][s2[j]]) ++differing;
      }
      // Definition 1 assigns one star to each tuple on each disagreeing
      // attribute, so a pair costs 2 stars per disagreeing attribute.
      cost[i][j] = 2 * differing;
    }
  }

  std::vector<std::int32_t> assignment;
  std::int64_t total = SolveAssignment(cost, &assignment);

  result.feasible = true;
  result.stars = static_cast<std::uint64_t>(total);
  for (std::size_t i = 0; i < n; ++i) {
    result.partition.AddGroup({s1[i], s2[assignment[i]]});
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

}  // namespace ldv
