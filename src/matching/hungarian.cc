#include "matching/hungarian.h"

#include <limits>

#include "common/check.h"

namespace ldv {

std::int64_t SolveAssignment(const std::vector<std::vector<std::int64_t>>& cost,
                             std::vector<std::int32_t>* assignment) {
  const std::size_t n = cost.size();
  LDIV_CHECK_GT(n, 0u);
  for (const auto& row : cost) LDIV_CHECK_EQ(row.size(), n);

  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

  // Potentials over rows (u) and columns (v); p[j] = row matched to column
  // j (0 is a virtual row). Classic O(n^3) shortest-augmenting-path scheme;
  // indices are 1-based internally.
  std::vector<std::int64_t> u(n + 1, 0), v(n + 1, 0);
  std::vector<std::size_t> p(n + 1, 0), way(n + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<std::int64_t> minv(n + 1, kInf);
    std::vector<char> used(n + 1, 0);
    do {
      used[j0] = 1;
      std::size_t i0 = p[j0], j1 = 0;
      std::int64_t delta = kInf;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        std::int64_t cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  assignment->assign(n, -1);
  std::int64_t total = 0;
  for (std::size_t j = 1; j <= n; ++j) {
    if (p[j] == 0) continue;
    (*assignment)[p[j] - 1] = static_cast<std::int32_t>(j - 1);
    total += cost[p[j] - 1][j - 1];
  }
  return total;
}

}  // namespace ldv
