#ifndef LDIV_MATCHING_HUNGARIAN_H_
#define LDIV_MATCHING_HUNGARIAN_H_

#include <cstdint>
#include <vector>

namespace ldv {

/// Minimum-cost perfect matching in a complete bipartite graph (the
/// assignment problem), solved by the Hungarian algorithm with potentials
/// in O(n^3) time (Kuhn 1955 [24], Jonker-Volgenant style implementation).
///
/// `cost` must be square: cost[i][j] is the cost of matching left vertex i
/// to right vertex j. Returns the minimum total cost and fills
/// `assignment[i]` with the right vertex matched to left vertex i.
std::int64_t SolveAssignment(const std::vector<std::vector<std::int64_t>>& cost,
                             std::vector<std::int32_t>* assignment);

}  // namespace ldv

#endif  // LDIV_MATCHING_HUNGARIAN_H_
