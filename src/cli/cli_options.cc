#include "cli/cli_options.h"

#include <array>
#include <charconv>

#include "common/flags.h"
#include "common/memory_budget.h"
#include "common/schema_spec.h"

namespace ldv {

namespace {

constexpr std::array<std::string_view, 19> kKnownFlags = {
    "algo",
    "l",
    "input",
    "format",
    "schema",
    "dataset",
    "n",
    "d",
    "seed",
    "out",
    "sweep",
    "config",
    "write-releases",
    "kl",
    "no-timings",
    "threads",
    "emit-input",
    "memory-budget",
    "artifact-cache",
};

}  // namespace

bool ParseCliOptions(int argc, const char* const* argv, CliOptions* options, std::string* error,
                     std::span<const std::string_view> extra_flags, FlagSet* raw_flags) {
  FlagSet local_flags;
  FlagSet& flags = raw_flags != nullptr ? *raw_flags : local_flags;
  if (!flags.ParseArgs(argc, argv, error)) return false;
  if (flags.Has("help")) {
    options->help = true;
    return true;
  }

  std::string config;
  if (!flags.GetString("config", "", &config, error)) return false;
  if (!config.empty() && !flags.ParseConfigFile(config, error)) return false;

  std::vector<std::string_view> known(kKnownFlags.begin(), kKnownFlags.end());
  known.insert(known.end(), extra_flags.begin(), extra_flags.end());
  std::vector<std::string> unknown = flags.UnknownKeys(known);
  if (!unknown.empty()) {
    *error = "unknown flag --" + unknown.front() + " (see --help)";
    return false;
  }

  // Syntactic layer: flag grammar, typed values, and flag-PRESENCE
  // conflicts (which only the parser can see -- a JobSpec has no notion
  // of which keys were explicitly set).
  std::string algo_list;
  if (!flags.GetString("algo", "tp+", &algo_list, error)) return false;
  if (!ParseAlgorithmList(algo_list, &options->algorithms, error)) return false;

  constexpr std::array<std::uint32_t, 1> kDefaultL = {2};
  if (!flags.GetUint32List("l", kDefaultL, &options->ls, error)) return false;

  if (!flags.GetString("input", "", &options->input, error)) return false;
  std::string format_text;
  if (!flags.GetString("format", "auto", &format_text, error)) return false;
  if (!ParseCsvFormat(format_text, &options->format, error)) {
    *error = "--format: " + *error;
    return false;
  }
  if (options->input.empty() && flags.Has("format")) {
    *error = "--format only applies to --input CSV data";
    return false;
  }
  std::string schema_spec;
  if (!flags.GetString("schema", "", &schema_spec, error)) return false;
  if (options->input.empty() && !schema_spec.empty()) {
    *error = "--schema only applies to --input CSV data (synthetic datasets carry their own)";
    return false;
  }

  if (!flags.GetString("dataset", "sal", &options->dataset.name, error)) return false;
  std::uint64_t seed = 0;
  if (!flags.GetUint64("seed", 0, &seed, error)) return false;
  options->dataset.seed = seed;
  constexpr std::array<std::uint64_t, 1> kDefaultN = {10000};
  constexpr std::array<std::uint64_t, 1> kDefaultD = {3};
  if (!flags.GetUint64List("n", kDefaultN, &options->ns, error)) return false;
  if (!flags.GetUint64List("d", kDefaultD, &options->ds, error)) return false;
  if (!options->input.empty()) {
    for (std::string_view f : {"dataset", "n", "d", "seed"}) {
      if (flags.Has(f)) {
        *error = "--" + std::string(f) + " applies to synthetic data and conflicts with --input";
        return false;
      }
    }
    options->ns = {0};
    options->ds = {0};
  }

  if (!flags.GetString("out", "ldiv_out", &options->out, error)) return false;
  if (!flags.GetBool("sweep", false, &options->sweep, error)) return false;
  if (!flags.GetBool("write-releases", false, &options->write_releases, error)) return false;
  if (!flags.GetBool("kl", true, &options->compute_kl, error)) return false;
  bool no_timings = false;
  if (!flags.GetBool("no-timings", false, &no_timings, error)) return false;
  options->timings = !no_timings;
  std::string threads_text;
  if (!flags.GetString("threads", "auto", &threads_text, error)) return false;
  if (threads_text == "auto") {
    options->threads = 0;
  } else {
    const char* begin = threads_text.data();
    const char* end = begin + threads_text.size();
    auto [ptr, ec] = std::from_chars(begin, end, options->threads);
    if (ec != std::errc{} || ptr != end) {
      *error = "--threads: expected a thread count or 'auto', got '" + threads_text + "'";
      return false;
    }
  }
  std::string budget_text;
  if (!flags.GetString("memory-budget", "", &budget_text, error)) return false;
  if (!budget_text.empty()) {
    if (!ParseByteSize(budget_text, &options->memory_budget, error)) {
      *error = "--memory-budget: " + *error;
      return false;
    }
  }
  std::string artifact_text;
  if (!flags.GetString("artifact-cache", "", &artifact_text, error)) return false;
  if (!artifact_text.empty()) {
    if (!ParseByteSize(artifact_text, &options->artifact_cache, error)) {
      *error = "--artifact-cache: " + *error;
      return false;
    }
  }
  if (!flags.GetString("emit-input", "", &options->emit_input, error)) return false;

  // Semantic layer: the one validation pass shared with the daemon.
  // Passing the raw schema text (instead of a formatted round-trip) keeps
  // the user's spelling in error messages.
  JobSpec spec = ToJobSpec(*options);
  spec.schema_spec = schema_spec;
  Expected<ResolvedJobSpec, PipelineError> resolved = ResolveJobSpec(spec);
  if (!resolved.ok()) {
    *error = resolved.error().message;
    return false;
  }
  if (!options->input.empty()) {
    // Surface the resolved encoding so the pipeline (and tests) only ever
    // see kCoded or kRaw.
    options->format = resolved->format;
    options->schema = resolved->schema;
  }
  return true;
}

JobSpec ToJobSpec(const CliOptions& options) {
  JobSpec spec;
  spec.algorithms = options.algorithms;
  spec.ls = options.ls;
  spec.input = options.input;
  spec.format = options.format;
  spec.schema_spec = options.schema.has_value() ? FormatSchemaSpec(*options.schema) : "";
  spec.dataset = options.dataset;
  spec.ns = options.ns;
  spec.ds = options.ds;
  spec.out = options.out;
  spec.sweep = options.sweep;
  spec.write_releases = options.write_releases;
  spec.compute_kl = options.compute_kl;
  spec.timings = options.timings;
  spec.threads = options.threads;
  spec.memory_budget = options.memory_budget;
  spec.artifact_cache = options.artifact_cache;
  spec.emit_input = options.emit_input;
  return spec;
}

std::string CliUsage(std::string_view program) {
  std::string usage;
  usage += "usage: " + std::string(program) + " [flags]\n";
  usage += "       " + std::string(program) + " serve|submit|ctl [flags]\n";
  usage += "\n";
  usage += "End-to-end l-diversity pipeline: load or generate a microdata table, run\n";
  usage += "one registered algorithm (or a sweep grid through the batch driver), and\n";
  usage += "write the anonymized release plus a JSON/CSV metrics report.\n";
  usage += "\n";
  usage += "  --algo=LIST        algorithms to run: comma-separated registry names, or\n";
  usage += "                     'all' (registered: " + RegisteredAlgorithmNames(", ") +
           "). default: TP+\n";
  usage += "  --l=LIST           privacy parameters, e.g. --l=4 or --l=2,4,6. default: 2\n";
  usage += "  --input=FILE       CSV microdata, coded (integer codes + --schema) or raw\n";
  usage += "                     (string labels; per-column dictionaries are built and\n";
  usage += "                     releases decode back to labels)\n";
  usage += "  --format=F         input cell encoding: auto | coded | raw. default: auto\n";
  usage += "                     (sniffs the file; --schema implies coded)\n";
  usage += "  --schema=SPEC      e.g. Age:79,Gender:2|Income:50 (names optional); coded\n";
  usage += "                     inputs only -- the header row is validated against it\n";
  usage += "  --dataset=NAME     synthetic input when no --input: sal | occ. default: sal\n";
  usage += "  --n=LIST           synthetic rows per table, e.g. --n=10000,100000\n";
  usage += "  --d=LIST           QI prefix dimensionality 1..7, e.g. --d=3,4. default: 3\n";
  usage += "  --seed=SEED        generator seed (0 = dataset default)\n";
  usage += "  --out=STEM         output stem: STEM.csv release, STEM.json report,\n";
  usage += "                     STEM_metrics.csv; raw inputs add STEM_dict.csv\n";
  usage += "                     (attribute,code,label). default: ldiv_out\n";
  usage += "  --sweep            run through the batch driver even for one job\n";
  usage += "                     (grids with >1 job sweep automatically)\n";
  usage += "  --write-releases   sweep mode: write one release per job (STEM.jobK.csv)\n";
  usage += "  --threads=T        thread budget of the whole run: sweeps spend it on batch\n";
  usage += "                     workers, single jobs on in-kernel parallelism. T = count\n";
  usage += "                     or 'auto' (hardware). Outputs are byte-identical at any\n";
  usage += "                     T. default: auto\n";
  usage += "  --memory-budget=B  cap accounted working memory (paged ingestion, page\n";
  usage += "                     cache, external sorts, grouping arenas), e.g. 512M or\n";
  usage += "                     2G (binary suffixes K/M/G/T). 0 or unset = unlimited\n";
  usage += "                     (all-in-RAM). Outputs are byte-identical at any budget\n";
  usage += "  --artifact-cache=B cap the cross-job artifact cache (memoized GroupedTable\n";
  usage += "                     builds + Hilbert row orders, keyed by dataset content +\n";
  usage += "                     QI schema), e.g. 64M; 0 disables. unset = engine default\n";
  usage += "                     (256M, clamped to a quarter of --memory-budget). Outputs\n";
  usage += "                     are byte-identical with the cache on, off, or evicting\n";
  usage += "  --kl=false         skip the KL-divergence estimate\n";
  usage += "  --no-timings       omit wall-clock fields (byte-deterministic reports)\n";
  usage += "  --emit-input=FILE  also write the input table as coded CSV\n";
  usage += "  --config=FILE      key = value file of the flags above (flags win)\n";
  usage += "  --help             this text\n";
  usage += "\n";
  usage += "subcommands (see README for the daemon protocol):\n";
  usage += "  serve   run the ldivd anonymization daemon on a unix socket\n";
  usage += "  submit  send one job (the flags above, plus --socket/--priority/\n";
  usage += "          --deadline-ms/--retry=N, which retries busy replies with\n";
  usage += "          jittered exponential backoff) to a running daemon\n";
  usage += "  ctl     daemon control: ldiv ctl --socket=PATH stats|ping|shutdown\n";
  usage += "\n";
  usage += "exit codes: 0 ok, 1 usage error, 2 infeasible instance, 3 I/O error,\n";
  usage += "            4 daemon unavailable / backpressure / expired deadline\n";
  return usage;
}

}  // namespace ldv
