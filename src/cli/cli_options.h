#ifndef LDIV_CLI_CLI_OPTIONS_H_
#define LDIV_CLI_CLI_OPTIONS_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/schema.h"
#include "core/run_spec.h"
#include "data/dataset.h"
#include "engine/job_spec.h"

namespace ldv {

class FlagSet;

/// Fully resolved options of one `ldiv` invocation: flags (and the
/// optional `--config` file, which flags override) parsed, validated and
/// expanded into typed values. Everything here is user input, so parsing
/// reports through error strings -- an `ldiv` user can never trip an
/// LDIV_CHECK from the command line.
///
/// ParseCliOptions owns only the *syntactic* layer (flag grammar, typed
/// value parsing, flag-presence conflicts); every semantic rule lives in
/// ResolveJobSpec, the single validation pass shared with the daemon,
/// which the parser runs so spec mistakes still surface as usage errors.
struct CliOptions {
  /// Algorithms to run, in job order ("--algo=tp,mondrian" or "all").
  std::vector<Algorithm> algorithms = {Algorithm::kTpPlus};
  /// Privacy parameters to run ("--l=2,4,6").
  std::vector<std::uint32_t> ls = {2};

  /// CSV input path; empty means synthetic data. Coded inputs require
  /// `schema`; raw inputs build per-column dictionaries instead.
  std::string input;
  /// Input cell encoding ("--format=coded|raw|auto"). ParseCliOptions
  /// resolves kAuto, so the pipeline only ever sees kCoded or kRaw.
  CsvFormat format = CsvFormat::kAuto;
  /// Schema of a coded CSV input (from "--schema=Age:79,...|Income:50");
  /// disengaged for raw inputs, which infer theirs from the file.
  std::optional<Schema> schema;

  /// Synthetic-input spec ("--dataset", "--seed"); `ns` and `ds` sweep its
  /// row count and QI prefix dimensionality, one table per (n, d) cell.
  DatasetSpec dataset;
  std::vector<std::uint64_t> ns = {10000};
  std::vector<std::uint64_t> ds = {3};

  /// Output stem: releases land at <out>.csv (plus <out>_sa.csv for a
  /// bucketization), metrics at <out>.json and <out>_metrics.csv.
  std::string out = "ldiv_out";
  /// Force the AnonymizeBatch path even for a single job; any grid with
  /// more than one job sweeps automatically.
  bool sweep = false;
  /// In sweep mode, also write one release per job (<out>.jobK.csv).
  bool write_releases = false;
  /// Skip the Equation-2 KL estimate (timing-focused runs).
  bool compute_kl = true;
  /// Omit wall-clock fields from reports, making output byte-deterministic.
  bool timings = true;
  /// Thread budget of the whole run ("--threads=N|auto", 0 = auto =
  /// hardware concurrency): sweeps spend it on batch workers, single jobs
  /// on in-kernel parallelism. Outputs never depend on it.
  std::uint32_t threads = 0;
  /// Memory budget in bytes ("--memory-budget=512M", 0 = unlimited): caps
  /// the explicitly accounted working memory (paged ingestion staging,
  /// page-cache frames, external-sort buffers, grouping arenas) and
  /// switches ingestion to the out-of-core paged path. Outputs are
  /// byte-identical at any budget.
  std::uint64_t memory_budget = 0;
  /// ArtifactCache capacity ("--artifact-cache=64M"): cross-job
  /// memoization of GroupedTable builds and Hilbert row orders. Unset
  /// (kArtifactCacheAuto) lets the engine pick; 0 disables. Outputs are
  /// byte-identical with the cache on, off, or thrashing.
  std::uint64_t artifact_cache = kArtifactCacheAuto;
  /// When non-empty, also write the (first) input table as CSV here.
  std::string emit_input;
  bool help = false;
};

/// Parses argv (and any `--config` file) into `*options`. Returns false
/// with a one-line message on any malformed, unknown or inconsistent
/// flag; `*options` is default-complete on success. Front-ends with
/// additional flags (the `ldiv submit` client) pass their names through
/// `extra_flags` and read the raw values back through `raw_flags`.
bool ParseCliOptions(int argc, const char* const* argv, CliOptions* options, std::string* error,
                     std::span<const std::string_view> extra_flags = {},
                     FlagSet* raw_flags = nullptr);

/// Maps parsed options onto the engine's JobSpec -- the one
/// CliOptions -> JobSpec normalization point. Purely mechanical; semantic
/// validation happens in ResolveJobSpec.
JobSpec ToJobSpec(const CliOptions& options);

/// The usage text printed by --help and on parse errors.
std::string CliUsage(std::string_view program);

}  // namespace ldv

#endif  // LDIV_CLI_CLI_OPTIONS_H_
