#include "cli/pipeline.h"

#include <optional>
#include <utility>

#include "common/parallel.h"
#include "common/workspace.h"
#include "core/batch.h"
#include "data/dataset.h"

namespace ldv {

namespace {

bool MaterializeTables(const CliOptions& options, PipelineResult* result, std::string* error) {
  if (!options.input.empty()) {
    const Schema* schema = options.schema.has_value() ? &*options.schema : nullptr;
    std::optional<Table> table = LoadTableCsv(options.input, options.format, schema, error);
    if (!table) return false;
    if (table->empty()) {
      *error = "'" + options.input + "' holds no data rows";
      return false;
    }
    PipelineTable input(std::move(*table));
    input.source = (options.format == CsvFormat::kRaw ? "csv-raw:" : "csv:") + options.input;
    result->tables.push_back(std::move(input));
    return true;
  }

  // Synthetic grid: one table per (n, d) cell, n-major -- the job order
  // the report documents.
  for (std::uint64_t n : options.ns) {
    for (std::uint64_t d : options.ds) {
      DatasetSpec spec = options.dataset;
      spec.n = static_cast<std::size_t>(n);
      spec.d = static_cast<std::size_t>(d);
      std::optional<Table> table = GenerateDataset(spec, error);
      if (!table) return false;
      PipelineTable input(std::move(*table));
      input.source = DatasetLabel(spec);
      result->tables.push_back(std::move(input));
    }
  }
  return true;
}

}  // namespace

bool RunPipeline(const CliOptions& options, PipelineResult* result, std::string* error) {
  if (options.algorithms.empty() || options.ls.empty()) {
    *error = "nothing to run: the algorithm and l lists must be non-empty";
    return false;
  }
  // One budget for the whole run: the batch driver and the in-kernel
  // parallelism both draw from it (see src/common/parallel.h).
  SetThreadBudget(options.threads);
  result->threads = ThreadBudget();
  if (!MaterializeTables(options, result, error)) return false;
  if (result->tables.empty()) {
    *error = "nothing to run: the (n, d) grid produced no input tables";
    return false;
  }

  AnonymizerOptions algo_options;
  algo_options.compute_kl = options.compute_kl;
  std::vector<RunSpec> specs = ExpandRunGrid(options.algorithms, options.ls,
                                             result->tables.size(), algo_options);
  result->jobs.reserve(specs.size());

  if (specs.size() == 1 && !options.sweep) {
    // Single invocation: run inline so errors and timings stay on the
    // calling thread.
    const RunSpec& spec = specs.front();
    Workspace workspace;
    AnonymizationOutcome outcome =
        AlgorithmRegistry::Global()
            .Create(spec.algorithm, spec.options)
            ->Run(result->tables[spec.table_index].table, spec.l, &workspace);
    result->jobs.push_back({spec, std::move(outcome)});
    return true;
  }

  std::vector<const Table*> tables;
  tables.reserve(result->tables.size());
  for (const PipelineTable& input : result->tables) tables.push_back(&input.table);
  // BatchOptions::threads stays 0: the driver follows the budget set
  // above, splitting it between job-level workers and inner kernels.
  std::vector<AnonymizationOutcome> outcomes = AnonymizeBatch(ToBatchJobs(specs, tables));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    result->jobs.push_back({specs[i], std::move(outcomes[i])});
  }
  return true;
}

}  // namespace ldv
