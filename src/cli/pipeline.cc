#include "cli/pipeline.h"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/memory_budget.h"
#include "common/parallel.h"
#include "common/workspace.h"
#include "core/batch.h"
#include "data/dataset.h"

namespace ldv {

namespace {

// Sizes the paged-ingestion machinery from the run's memory budget: the
// page cache gets roughly a quarter of the budget (clamped to [8, 256]
// frames) so staging pages, sort buffers, and grouping arenas keep the
// rest. LDIV_PAGE_BYTES overrides the page size (tests and the CI
// memory-capped leg set it tiny to force heavy eviction on small inputs).
PagedTableBuilder::Options PagedOptionsFromBudget() {
  PagedTableBuilder::Options paged;
  paged.budget = &GlobalMemoryBudget();
  if (const char* env = std::getenv("LDIV_PAGE_BYTES")) {
    char* end = nullptr;
    const unsigned long long bytes = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && bytes >= 64 && bytes % sizeof(std::uint32_t) == 0) {
      paged.page_bytes = static_cast<std::size_t>(bytes);
    }
  }
  const std::uint64_t budget = MemoryBudgetBytes();
  if (budget != 0) {
    const std::uint64_t frames = budget / 4 / paged.page_bytes;
    paged.cache_frames = static_cast<std::size_t>(
        std::clamp<std::uint64_t>(frames, 8, 256));
  }
  return paged;
}

bool MaterializeTables(const CliOptions& options, PipelineResult* result, std::string* error) {
  const bool paged = MemoryBudgetBytes() != 0;
  const PagedTableBuilder::Options paged_options = PagedOptionsFromBudget();
  if (!options.input.empty()) {
    const Schema* schema = options.schema.has_value() ? &*options.schema : nullptr;
    std::optional<PipelineTable> input;
    if (paged) {
      std::unique_ptr<PagedTable> table =
          LoadTableCsvPaged(options.input, options.format, schema, paged_options, error);
      if (table == nullptr) return false;
      if (table->size() == 0) {
        *error = "'" + options.input + "' holds no data rows";
        return false;
      }
      input.emplace(std::move(table));
    } else {
      std::optional<Table> table = LoadTableCsv(options.input, options.format, schema, error);
      if (!table) return false;
      if (table->empty()) {
        *error = "'" + options.input + "' holds no data rows";
        return false;
      }
      input.emplace(std::move(*table));
    }
    input->source = (options.format == CsvFormat::kRaw ? "csv-raw:" : "csv:") + options.input;
    result->tables.push_back(std::move(*input));
    return true;
  }

  // Synthetic grid: one table per (n, d) cell, n-major -- the job order
  // the report documents.
  for (std::uint64_t n : options.ns) {
    for (std::uint64_t d : options.ds) {
      DatasetSpec spec = options.dataset;
      spec.n = static_cast<std::size_t>(n);
      spec.d = static_cast<std::size_t>(d);
      std::optional<PipelineTable> input;
      if (paged) {
        std::unique_ptr<PagedTable> table = GenerateDatasetPaged(spec, paged_options, error);
        if (table == nullptr) return false;
        input.emplace(std::move(table));
      } else {
        std::optional<Table> table = GenerateDataset(spec, error);
        if (!table) return false;
        input.emplace(std::move(*table));
      }
      input->source = DatasetLabel(spec);
      result->tables.push_back(std::move(*input));
    }
  }
  return true;
}

}  // namespace

bool RunPipeline(const CliOptions& options, PipelineResult* result, std::string* error) {
  if (options.algorithms.empty() || options.ls.empty()) {
    *error = "nothing to run: the algorithm and l lists must be non-empty";
    return false;
  }
  // One budget for the whole run: the batch driver and the in-kernel
  // parallelism both draw from it (see src/common/parallel.h).
  SetThreadBudget(options.threads);
  result->threads = ThreadBudget();
  // Likewise one memory budget (0 = unlimited): ingestion, grouping, and
  // the Hilbert sort all consult it through GlobalMemoryBudget().
  SetMemoryBudget(options.memory_budget);
  if (!MaterializeTables(options, result, error)) return false;
  if (result->tables.empty()) {
    *error = "nothing to run: the (n, d) grid produced no input tables";
    return false;
  }

  AnonymizerOptions algo_options;
  algo_options.compute_kl = options.compute_kl;
  std::vector<RunSpec> specs = ExpandRunGrid(options.algorithms, options.ls,
                                             result->tables.size(), algo_options);
  result->jobs.reserve(specs.size());

  if (specs.size() == 1 && !options.sweep) {
    // Single invocation: run inline so errors and timings stay on the
    // calling thread.
    const RunSpec& spec = specs.front();
    Workspace workspace;
    AnonymizationOutcome outcome =
        AlgorithmRegistry::Global()
            .Create(spec.algorithm, spec.options)
            ->Run(result->tables[spec.table_index].table, spec.l, &workspace);
    result->jobs.push_back({spec, std::move(outcome)});
    return true;
  }

  std::vector<const Table*> tables;
  tables.reserve(result->tables.size());
  for (const PipelineTable& input : result->tables) tables.push_back(&input.table);
  // BatchOptions::threads stays 0: the driver follows the budget set
  // above, splitting it between job-level workers and inner kernels.
  std::vector<AnonymizationOutcome> outcomes = AnonymizeBatch(ToBatchJobs(specs, tables));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    result->jobs.push_back({specs[i], std::move(outcomes[i])});
  }
  return true;
}

}  // namespace ldv
