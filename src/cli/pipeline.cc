#include "cli/pipeline.h"

namespace ldv {

Engine& GlobalEngine() {
  // Leaked intentionally: cached tables must stay valid for any
  // static-destruction-order stragglers.
  static Engine* engine = new Engine;
  return *engine;
}

Expected<PipelineResult, PipelineError> RunPipeline(const CliOptions& options) {
  return GlobalEngine().Run(ToJobSpec(options));
}

}  // namespace ldv
