#ifndef LDIV_CLI_REPORT_H_
#define LDIV_CLI_REPORT_H_

#include <string>

#include "cli/pipeline.h"

namespace ldv {

/// Report rendering knobs.
struct ReportOptions {
  /// Include wall-clock fields. Disabled (--no-timings) the reports are
  /// byte-deterministic, which golden tests and CI diffs rely on.
  bool include_seconds = true;
};

/// Renders the machine-readable JSON report: a versioned header, the input
/// tables with provenance, and one entry per job in job order carrying the
/// uniform utility metrics of AnonymizationOutcome. Key order is fixed and
/// number formatting locale-independent, so equal results render equal
/// bytes.
std::string RenderJsonReport(const PipelineResult& result, const ReportOptions& options = {});

/// The same rows as CSV (one line per job), for spreadsheet pipelines.
std::string RenderMetricsCsv(const PipelineResult& result, const ReportOptions& options = {});

/// Writes RenderJsonReport / RenderMetricsCsv to `path`. Returns false
/// with `*error` set on I/O failure.
bool WriteJsonReport(const PipelineResult& result, const std::string& path,
                     const ReportOptions& options, std::string* error);
bool WriteMetricsCsv(const PipelineResult& result, const std::string& path,
                     const ReportOptions& options, std::string* error);

/// Writes the anonymized release of one job. Suppression-view outcomes
/// (everything but Anatomy) land at <stem>.csv in the WriteReleaseCsv
/// format; a bucketization lands as the Anatomy pair -- the exact-QI table
/// at <stem>.csv with a Bucket column and the sensitive table at
/// <stem>_sa.csv as (Bucket, SA, Count) rows. Infeasible outcomes write
/// nothing and succeed. Returns false with `*error` set on I/O failure.
bool WriteReleaseForOutcome(const Table& table, const AnonymizationOutcome& outcome,
                            const std::string& stem, std::string* error);

}  // namespace ldv

#endif  // LDIV_CLI_REPORT_H_
