#ifndef LDIV_CLI_PIPELINE_H_
#define LDIV_CLI_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "cli/cli_options.h"
#include "common/paged_column.h"
#include "common/table.h"
#include "core/run_spec.h"

namespace ldv {

/// One materialized input table plus where it came from, for reports.
/// Under --memory-budget the row data lives in `paged` (memory-mapped
/// spill files) and `table` is the borrowed resident() view over it; the
/// algorithms and report writers consume `table` either way, so outputs
/// are byte-identical across the two storage modes.
struct PipelineTable {
  Table table;
  /// Keeps the spill files and mappings alive behind a borrowed `table`;
  /// null for ordinary in-RAM inputs.
  std::unique_ptr<PagedTable> paged;
  /// Provenance label, e.g. "csv:micro.csv" or "sal(n=10000, seed=1, d=3)".
  std::string source;

  explicit PipelineTable(Table t) : table(std::move(t)) {}
  explicit PipelineTable(std::unique_ptr<PagedTable> p)
      : table(p->resident()), paged(std::move(p)) {}
};

/// One completed pipeline job: its spec and the algorithm outcome.
struct PipelineJobResult {
  RunSpec spec;
  AnonymizationOutcome outcome;
};

/// Everything one `ldiv` invocation produced, in deterministic job order
/// (the ExpandRunGrid order: table-major, then algorithm, then l).
struct PipelineResult {
  std::vector<PipelineTable> tables;
  std::vector<PipelineJobResult> jobs;
  /// The resolved thread budget the run executed under. An execution
  /// detail like wall-clock: reports include it only alongside timings,
  /// so --no-timings output stays byte-identical across budgets.
  unsigned threads = 1;
};

/// Runs the full pipeline described by `options`: materialize the input
/// table(s) (CSV load or synthetic generation), expand the run grid, and
/// execute it -- inline with one Workspace for a single job, through
/// AnonymizeBatch for a grid (or when options.sweep forces it). Returns
/// false with a message on load/generation failure; infeasible jobs are
/// not an error (they are reported with feasible = false).
bool RunPipeline(const CliOptions& options, PipelineResult* result, std::string* error);

}  // namespace ldv

#endif  // LDIV_CLI_PIPELINE_H_
