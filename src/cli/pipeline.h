#ifndef LDIV_CLI_PIPELINE_H_
#define LDIV_CLI_PIPELINE_H_

#include "cli/cli_options.h"
#include "common/expected.h"
#include "engine/engine.h"
#include "engine/error.h"

namespace ldv {

/// The CLI pipeline is a thin adapter over the engine since the ldivd
/// redesign: CliOptions normalize into a JobSpec (ToJobSpec) and run
/// through the shared Engine, so the one-shot CLI and the daemon execute
/// byte-identical code paths. The old names remain as aliases for callers
/// that grew up against the pipeline API.
using PipelineTable = EngineTable;
using PipelineJobResult = EngineJob;
using PipelineResult = JobResult;

/// The process-wide engine the CLI adapters share: one DatasetCache, one
/// run lock. The daemon constructs its own Engine instead.
Engine& GlobalEngine();

/// Runs the full pipeline described by `options`: materialize the input
/// table(s) (CSV load or synthetic generation, through the DatasetCache),
/// expand the run grid, and execute it -- inline with one Workspace for a
/// single job, through AnonymizeBatch for a grid (or when options.sweep
/// forces it). Load/generation failures return a typed PipelineError;
/// infeasible jobs are not an error (reported with feasible = false).
Expected<PipelineResult, PipelineError> RunPipeline(const CliOptions& options);

}  // namespace ldv

#endif  // LDIV_CLI_PIPELINE_H_
