#include "hardness/three_dim_matching.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "common/check.h"

namespace ldv {

bool ThreeDmInstance::Valid() const {
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
  for (const Point3& p : points) {
    if (p.a >= n || p.b >= n || p.c >= n) return false;
    if (!seen.insert({p.a, p.b, p.c}).second) return false;  // duplicate point
  }
  return true;
}

namespace {

bool SolveRec(const ThreeDmInstance& inst, std::uint32_t next_a, std::uint32_t used_b,
              std::uint32_t used_c, std::vector<std::uint32_t>& chosen) {
  if (next_a == inst.n) return true;
  for (std::uint32_t i = 0; i < inst.points.size(); ++i) {
    const Point3& p = inst.points[i];
    if (p.a != next_a) continue;
    if ((used_b >> p.b) & 1u) continue;
    if ((used_c >> p.c) & 1u) continue;
    chosen.push_back(i);
    if (SolveRec(inst, next_a + 1, used_b | (1u << p.b), used_c | (1u << p.c), chosen)) {
      return true;
    }
    chosen.pop_back();
  }
  return false;
}

}  // namespace

std::optional<std::vector<std::uint32_t>> Solve3Dm(const ThreeDmInstance& instance) {
  LDIV_CHECK(instance.Valid());
  LDIV_CHECK_LE(instance.n, 30u) << "exhaustive solver limited to small instances";
  std::vector<std::uint32_t> chosen;
  if (SolveRec(instance, 0, 0, 0, chosen)) return chosen;
  return std::nullopt;
}

ThreeDmInstance MakePlantedYesInstance(std::uint32_t n, std::uint32_t extra, Rng& rng) {
  ThreeDmInstance inst;
  inst.n = n;
  std::vector<std::uint32_t> perm_b(n), perm_c(n);
  for (std::uint32_t i = 0; i < n; ++i) perm_b[i] = perm_c[i] = i;
  rng.Shuffle(perm_b);
  rng.Shuffle(perm_c);
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
  for (std::uint32_t i = 0; i < n; ++i) {
    inst.points.push_back(Point3{i, perm_b[i], perm_c[i]});
    seen.insert({i, perm_b[i], perm_c[i]});
  }
  std::uint32_t added = 0;
  while (added < extra) {
    Point3 p{rng.Below(n), rng.Below(n), rng.Below(n)};
    if (seen.insert({p.a, p.b, p.c}).second) {
      inst.points.push_back(p);
      ++added;
    }
  }
  return inst;
}

ThreeDmInstance MakeRandomInstance(std::uint32_t n, std::uint32_t d, Rng& rng) {
  LDIV_CHECK_LE(static_cast<std::uint64_t>(d),
                static_cast<std::uint64_t>(n) * n * n);
  ThreeDmInstance inst;
  inst.n = n;
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
  while (inst.points.size() < d) {
    Point3 p{rng.Below(n), rng.Below(n), rng.Below(n)};
    if (seen.insert({p.a, p.b, p.c}).second) inst.points.push_back(p);
  }
  return inst;
}

ThreeDmInstance PaperFigure1Instance() {
  // D1 = {1,2,3,4}, D2 = {a,b,c,d}, D3 = {alpha,beta,gamma,delta} mapped to
  // 0-based codes. Points p1..p6 of Figure 1a.
  ThreeDmInstance inst;
  inst.n = 4;
  inst.points = {
      Point3{0, 0, 3},  // p1 = (1, a, delta)
      Point3{0, 1, 2},  // p2 = (1, b, gamma)
      Point3{1, 2, 0},  // p3 = (2, c, alpha)
      Point3{1, 1, 0},  // p4 = (2, b, alpha)
      Point3{2, 1, 2},  // p5 = (3, b, gamma)
      Point3{3, 3, 1},  // p6 = (4, d, beta)
  };
  return inst;
}

}  // namespace ldv
