#ifndef LDIV_HARDNESS_K_DIM_MATCHING_H_
#define LDIV_HARDNESS_K_DIM_MATCHING_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "anonymity/partition.h"
#include "common/rng.h"
#include "common/table.h"

namespace ldv {

/// An instance of k-DIMENSIONAL MATCHING (Hazan, Safra, Schwartz [17]):
/// k disjoint domains of size n each; points have one coordinate per
/// domain; decide whether n points cover every domain value exactly once.
/// Section 4 extends the 3DM reduction to this problem to prove Theorem 1
/// for every l > 3.
struct KDmInstance {
  std::uint32_t k = 3;  ///< number of dimensions (the paper's l)
  std::uint32_t n = 0;  ///< size of each domain
  /// points[i] has exactly k coordinates, each in [0, n).
  std::vector<std::vector<std::uint32_t>> points;

  std::uint32_t d() const { return static_cast<std::uint32_t>(points.size()); }
  bool Valid() const;
};

/// Exhaustive backtracking solver for small instances. Returns indices of a
/// perfect matching, or nullopt.
std::optional<std::vector<std::uint32_t>> SolveKDm(const KDmInstance& instance);

/// Planted yes-instance: a hidden matching plus `extra` random points.
KDmInstance MakePlantedKDmInstance(std::uint32_t k, std::uint32_t n, std::uint32_t extra,
                                   Rng& rng);

/// Builds the microdata table of the generalized reduction ("Extending the
/// above analysis in a straightforward manner", Section 4): one QI
/// attribute per point, k*n rows (one per domain value), SA values chosen
/// so the table has exactly m distinct values with distinct values across
/// domain blocks, QI value 0 where the row's domain value is a coordinate
/// of the attribute's point and the row's SA value otherwise. Deciding
/// whether an optimal k-diverse generalization has k*n*(d-1) stars decides
/// the k-dimensional matching.
///
/// Requires k <= m <= k * n. For simplicity of the SA-value rule (which
/// only needs to guarantee per-block distinctness), this generalized
/// builder uses m = k * n (every row its own SA value), the regime of the
/// simple reduction noted in Section 1.2 -- plus the useful-group counting
/// arguments of Properties 1-4 which carry over verbatim.
Table BuildKDimReductionTable(const KDmInstance& instance);

/// The target star count k * n * (d - 1) of the generalized Lemma 3.
std::uint64_t KDimReductionTargetStars(const KDmInstance& instance);

/// The k-diverse generalization induced by a perfect matching (generalized
/// "only-if" direction): one group of k rows per matched point.
Partition KDimPartitionFromMatching(const KDmInstance& instance,
                                    const std::vector<std::uint32_t>& matching);

}  // namespace ldv

#endif  // LDIV_HARDNESS_K_DIM_MATCHING_H_
