#ifndef LDIV_HARDNESS_EXACT_SOLVER_H_
#define LDIV_HARDNESS_EXACT_SOLVER_H_

#include <cstdint>

#include "anonymity/partition.h"
#include "common/grouped_table.h"
#include "common/table.h"

namespace ldv {

/// Result of the exhaustive star-minimization solver.
struct ExactStarResult {
  /// False iff the table is not l-eligible (Problem 1 infeasible).
  bool feasible = false;
  /// Minimum number of stars over all l-diverse generalizations.
  std::uint64_t stars = 0;
  /// One optimal partition.
  Partition partition;
};

/// Solves Problem 1 (star minimization) exactly by dynamic programming over
/// row subsets: dp[S] = min stars to partition subset S into l-eligible
/// QI-groups. O(3^n) time, so the table is limited to 16 rows; this solver
/// exists to validate the approximation algorithms and the NP-hardness
/// reduction on small instances.
ExactStarResult ExactStarMinimization(const Table& table, std::uint32_t l);

/// Result of the exhaustive tuple-minimization solver.
struct ExactTupleResult {
  /// False iff the table is not l-eligible (Problem 2 infeasible).
  bool feasible = false;
  /// Minimum number of removed tuples (the paper's OPT of Section 5).
  std::uint64_t removed = 0;
};

/// Solves Problem 2 (tuple minimization) exactly: remove the fewest tuples
/// from the exact-signature QI-groups such that every group stays
/// l-eligible and the removed multiset is l-eligible. Enumerates reachable
/// residue histograms group by group; feasible for the small instances used
/// in tests (requires m <= 8 and n < 256).
ExactTupleResult ExactTupleMinimization(const GroupedTable& grouped, std::uint32_t l);
ExactTupleResult ExactTupleMinimization(const Table& table, std::uint32_t l);

}  // namespace ldv

#endif  // LDIV_HARDNESS_EXACT_SOLVER_H_
