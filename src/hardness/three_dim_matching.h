#ifndef LDIV_HARDNESS_THREE_DIM_MATCHING_H_
#define LDIV_HARDNESS_THREE_DIM_MATCHING_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"

namespace ldv {

/// One point of a 3-dimensional matching instance; coordinates are indices
/// into the three disjoint equally-sized domains D1, D2, D3 (each of size
/// `n`), i.e. each coordinate lies in [0, n).
struct Point3 {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;

  friend bool operator==(const Point3& x, const Point3& y) {
    return x.a == y.a && x.b == y.b && x.c == y.c;
  }
};

/// An instance of 3-DIMENSIONAL MATCHING (Karp [22]): decide whether the
/// point set contains n points covering every domain value exactly once.
/// This is the NP-hard problem Section 4 reduces from.
struct ThreeDmInstance {
  std::uint32_t n = 0;          ///< |D1| = |D2| = |D3|
  std::vector<Point3> points;   ///< d >= n distinct points

  std::uint32_t d() const { return static_cast<std::uint32_t>(points.size()); }

  /// True if all points are distinct and coordinates are in range.
  bool Valid() const;
};

/// Exhaustive solver (backtracking over D1 values); exponential, intended
/// for the small instances used to validate the reduction. Returns the
/// indices of a perfect matching, or nullopt if none exists.
std::optional<std::vector<std::uint32_t>> Solve3Dm(const ThreeDmInstance& instance);

/// Generates an instance that is guaranteed to contain a perfect matching:
/// a random planted matching plus `extra` random distractor points.
ThreeDmInstance MakePlantedYesInstance(std::uint32_t n, std::uint32_t extra, Rng& rng);

/// Generates an instance with `d` random distinct points (may or may not
/// contain a matching).
ThreeDmInstance MakeRandomInstance(std::uint32_t n, std::uint32_t d, Rng& rng);

/// The paper's running example (Figure 1a): n = 4, six points, answer yes.
ThreeDmInstance PaperFigure1Instance();

}  // namespace ldv

#endif  // LDIV_HARDNESS_THREE_DIM_MATCHING_H_
