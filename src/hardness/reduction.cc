#include "hardness/reduction.h"

#include <set>
#include <vector>

#include "anonymity/partition.h"
#include "common/check.h"

namespace ldv {

namespace {

// The paper's three-case choice of the SA value u for the j-th row
// (1-based j in [1, 3n]); ensures m distinct SA values and distinct values
// across the three domain blocks.
std::uint32_t SaForRow(std::uint32_t j, std::uint32_t n, std::uint32_t m) {
  if (j + 2 <= m) return j;  // j <= m - 2
  if (m - 1 > 2 * n) return (j <= 3 * n - 1) ? m - 1 : m;
  if (m - 1 > n) return (j <= 2 * n) ? m - 1 : m;
  if (j <= n) return m - 2;
  return (j <= 2 * n) ? m - 1 : m;
}

// True iff v_j (1-based row index) is a coordinate of point p.
bool IsCoordinate(std::uint32_t j, std::uint32_t n, const Point3& p) {
  if (j <= n) return p.a == j - 1;
  if (j <= 2 * n) return p.b == j - n - 1;
  return p.c == j - 2 * n - 1;
}

}  // namespace

Table BuildReductionTable(const ThreeDmInstance& instance, std::uint32_t m) {
  LDIV_CHECK(instance.Valid());
  const std::uint32_t n = instance.n;
  const std::uint32_t d = instance.d();
  LDIV_CHECK_GE(m, 3u);
  LDIV_CHECK_LE(m, 3 * n);

  std::vector<Attribute> qi_attrs;
  qi_attrs.reserve(d);
  for (std::uint32_t i = 0; i < d; ++i) {
    qi_attrs.push_back(Attribute{"A" + std::to_string(i + 1), m + 1});
  }
  Table table(Schema(std::move(qi_attrs), Attribute{"B", m}));
  table.Reserve(3 * n);

  std::vector<Value> row(d);
  for (std::uint32_t j = 1; j <= 3 * n; ++j) {
    std::uint32_t u = SaForRow(j, n, m);
    LDIV_CHECK_GE(u, 1u);
    LDIV_CHECK_LE(u, m);
    for (std::uint32_t i = 0; i < d; ++i) {
      row[i] = IsCoordinate(j, n, instance.points[i]) ? 0 : u;
    }
    table.AppendRow(row, u - 1);  // SA codes are 0-based
  }
  return table;
}

std::uint64_t ReductionTargetStars(std::uint32_t n, std::uint32_t d) {
  return static_cast<std::uint64_t>(3) * n * (d - 1);
}

bool CheckReductionProperties(const Table& table, const ThreeDmInstance& instance,
                              std::uint32_t m) {
  const std::uint32_t n = instance.n;
  if (table.size() != 3 * n) return false;
  if (table.qi_count() != instance.d()) return false;

  // Property 1: each QI attribute has exactly three zero rows.
  for (AttrId a = 0; a < table.qi_count(); ++a) {
    std::uint32_t zeros = 0;
    for (RowId r = 0; r < table.size(); ++r) {
      if (table.qi(r, a) == 0) ++zeros;
    }
    if (zeros != 3) return false;
  }

  // Exactly m distinct SA values.
  if (table.DistinctSaCount() != m) return false;

  // Rows from different domains never share an SA value.
  std::set<SaValue> d1, d2, d3;
  for (RowId r = 0; r < table.size(); ++r) {
    (r < n ? d1 : (r < 2 * n ? d2 : d3)).insert(table.sa(r));
  }
  for (SaValue v : d1) {
    if (d2.count(v) || d3.count(v)) return false;
  }
  for (SaValue v : d2) {
    if (d3.count(v)) return false;
  }

  // Non-zero QI values always equal the row's own SA value (paper encoding).
  for (RowId r = 0; r < table.size(); ++r) {
    for (AttrId a = 0; a < table.qi_count(); ++a) {
      Value v = table.qi(r, a);
      if (v != 0 && v != table.sa(r) + 1) return false;
    }
  }
  return true;
}

Partition PartitionFromMatching(const ThreeDmInstance& instance,
                                const std::vector<std::uint32_t>& matching) {
  const std::uint32_t n = instance.n;
  LDIV_CHECK_EQ(matching.size(), n);
  Partition partition;
  for (std::uint32_t idx : matching) {
    const Point3& p = instance.points[idx];
    // The three rows that carry 0 on the point's attribute: its D1, D2 and
    // D3 coordinates (0-based row ids).
    partition.AddGroup({p.a, n + p.b, 2 * n + p.c});
  }
  return partition;
}

}  // namespace ldv
