#include "hardness/k_dim_matching.h"

#include <algorithm>
#include <set>

#include "anonymity/partition.h"
#include "common/check.h"

namespace ldv {

bool KDmInstance::Valid() const {
  if (k < 2) return false;
  std::set<std::vector<std::uint32_t>> seen;
  for (const auto& p : points) {
    if (p.size() != k) return false;
    for (std::uint32_t c : p) {
      if (c >= n) return false;
    }
    if (!seen.insert(p).second) return false;
  }
  return true;
}

namespace {

bool SolveKDmRec(const KDmInstance& inst, std::uint32_t next_first,
                 std::vector<std::uint32_t>& used,  // bitmask per dimension 1..k-1
                 std::vector<std::uint32_t>& chosen) {
  if (next_first == inst.n) return true;
  for (std::uint32_t i = 0; i < inst.points.size(); ++i) {
    const auto& p = inst.points[i];
    if (p[0] != next_first) continue;
    bool clash = false;
    for (std::uint32_t dim = 1; dim < inst.k && !clash; ++dim) {
      clash = (used[dim] >> p[dim]) & 1u;
    }
    if (clash) continue;
    for (std::uint32_t dim = 1; dim < inst.k; ++dim) used[dim] |= 1u << p[dim];
    chosen.push_back(i);
    if (SolveKDmRec(inst, next_first + 1, used, chosen)) return true;
    chosen.pop_back();
    for (std::uint32_t dim = 1; dim < inst.k; ++dim) used[dim] &= ~(1u << p[dim]);
  }
  return false;
}

}  // namespace

std::optional<std::vector<std::uint32_t>> SolveKDm(const KDmInstance& instance) {
  LDIV_CHECK(instance.Valid());
  LDIV_CHECK_LE(instance.n, 30u);
  std::vector<std::uint32_t> used(instance.k, 0);
  std::vector<std::uint32_t> chosen;
  if (SolveKDmRec(instance, 0, used, chosen)) return chosen;
  return std::nullopt;
}

KDmInstance MakePlantedKDmInstance(std::uint32_t k, std::uint32_t n, std::uint32_t extra,
                                   Rng& rng) {
  KDmInstance inst;
  inst.k = k;
  inst.n = n;
  std::set<std::vector<std::uint32_t>> seen;
  // Planted matching: point i = (i, perm_2(i), ..., perm_k(i)).
  std::vector<std::vector<std::uint32_t>> perms(k);
  for (std::uint32_t dim = 0; dim < k; ++dim) {
    perms[dim].resize(n);
    for (std::uint32_t i = 0; i < n; ++i) perms[dim][i] = i;
    if (dim > 0) rng.Shuffle(perms[dim]);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    std::vector<std::uint32_t> p(k);
    for (std::uint32_t dim = 0; dim < k; ++dim) p[dim] = perms[dim][i];
    seen.insert(p);
    inst.points.push_back(std::move(p));
  }
  std::uint32_t added = 0;
  while (added < extra) {
    std::vector<std::uint32_t> p(k);
    for (std::uint32_t dim = 0; dim < k; ++dim) p[dim] = rng.Below(n);
    if (seen.insert(p).second) {
      inst.points.push_back(std::move(p));
      ++added;
    }
  }
  return inst;
}

Table BuildKDimReductionTable(const KDmInstance& instance) {
  LDIV_CHECK(instance.Valid());
  const std::uint32_t k = instance.k;
  const std::uint32_t n = instance.n;
  const std::uint32_t d = instance.d();
  const std::uint32_t m = k * n;  // every row its own SA value

  std::vector<Attribute> qi_attrs;
  qi_attrs.reserve(d);
  for (std::uint32_t i = 0; i < d; ++i) {
    qi_attrs.push_back(Attribute{"A" + std::to_string(i + 1), m + 1});
  }
  Table table(Schema(std::move(qi_attrs), Attribute{"B", m}));
  table.Reserve(m);

  std::vector<Value> row(d);
  for (std::uint32_t j = 0; j < k * n; ++j) {
    std::uint32_t block = j / n;       // which domain D_block
    std::uint32_t value = j % n;       // which value within the domain
    std::uint32_t u = j + 1;           // SA value (1-based paper style)
    for (std::uint32_t i = 0; i < d; ++i) {
      row[i] = (instance.points[i][block] == value) ? 0 : u;
    }
    table.AppendRow(row, u - 1);
  }
  return table;
}

std::uint64_t KDimReductionTargetStars(const KDmInstance& instance) {
  return static_cast<std::uint64_t>(instance.k) * instance.n * (instance.d() - 1);
}

Partition KDimPartitionFromMatching(const KDmInstance& instance,
                                    const std::vector<std::uint32_t>& matching) {
  LDIV_CHECK_EQ(matching.size(), instance.n);
  Partition partition;
  for (std::uint32_t idx : matching) {
    const auto& p = instance.points[idx];
    std::vector<RowId> rows;
    rows.reserve(instance.k);
    for (std::uint32_t dim = 0; dim < instance.k; ++dim) {
      rows.push_back(dim * instance.n + p[dim]);
    }
    partition.AddGroup(std::move(rows));
  }
  return partition;
}

}  // namespace ldv
