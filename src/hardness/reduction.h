#ifndef LDIV_HARDNESS_REDUCTION_H_
#define LDIV_HARDNESS_REDUCTION_H_

#include <cstdint>

#include "anonymity/partition.h"
#include "common/table.h"
#include "hardness/three_dim_matching.h"

namespace ldv {

/// Builds the microdata table T of the Section 4 NP-hardness reduction from
/// a 3DM instance S.
///
/// T has one QI attribute A_i per point p_i of S and 3n rows, one per domain
/// value v_j (D1 values first, then D2, then D3). Row j gets SA value u
/// chosen by the paper's three-case rule so that T contains exactly m
/// distinct SA values and rows from different domains never share an SA
/// value; its QI value on A_i is 0 when v_j is a coordinate of p_i and u
/// otherwise.
///
/// Encoding: the paper's SA values 1..m become 0-based codes 0..m-1; the
/// alphabet {0, 1, ..., m} of the QI attributes is kept verbatim, so each QI
/// domain has size m+1 (the alphabet-size claim of Theorem 1).
///
/// Requires 3 <= m <= 3n.
Table BuildReductionTable(const ThreeDmInstance& instance, std::uint32_t m);

/// The star count that an optimal 3-diverse generalization of the reduction
/// table attains exactly when the 3DM answer is yes (Lemma 3): 3n(d-1).
std::uint64_t ReductionTargetStars(std::uint32_t n, std::uint32_t d);

/// Verifies the structural properties the reduction proof relies on:
/// Property 1 (every column has exactly three zeros), m distinct SA values,
/// and distinct SA values across domain boundaries.
bool CheckReductionProperties(const Table& table, const ThreeDmInstance& instance,
                              std::uint32_t m);

/// Builds the 3-diverse generalization induced by a 3DM solution (the
/// "only-if" direction of Lemma 3): one useful QI-group per matched point,
/// each containing the three rows that are 0 on the point's attribute.
/// `matching` must be a valid perfect matching of `instance`.
Partition PartitionFromMatching(const ThreeDmInstance& instance,
                                const std::vector<std::uint32_t>& matching);

}  // namespace ldv

#endif  // LDIV_HARDNESS_REDUCTION_H_
