#include "hardness/exact_solver.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "anonymity/eligibility.h"
#include "anonymity/generalization.h"
#include "common/check.h"

namespace ldv {

ExactStarResult ExactStarMinimization(const Table& table, std::uint32_t l) {
  ExactStarResult result;
  const std::size_t n = table.size();
  LDIV_CHECK_LE(n, 16u) << "exhaustive solver limited to 16 rows";
  if (n == 0) {
    result.feasible = true;
    return result;
  }
  if (!IsTableEligible(table, l)) return result;

  const std::uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1);
  const std::size_t m = table.schema().sa_domain_size();
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

  // Precompute eligibility and star cost for every row subset.
  std::vector<char> eligible(full + 1, 0);
  std::vector<std::uint64_t> stars(full + 1, 0);
  std::vector<std::uint32_t> counts(m);
  std::vector<RowId> members;
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    std::fill(counts.begin(), counts.end(), 0);
    members.clear();
    for (std::uint32_t r = 0; r < n; ++r) {
      if ((mask >> r) & 1u) {
        ++counts[table.sa(r)];
        members.push_back(r);
      }
    }
    std::uint32_t max_count = *std::max_element(counts.begin(), counts.end());
    eligible[mask] =
        members.size() >= static_cast<std::size_t>(l) * max_count ? 1 : 0;
    stars[mask] = GroupStarCount(table, members);
  }

  std::vector<std::uint64_t> dp(full + 1, kInf);
  std::vector<std::uint32_t> choice(full + 1, 0);
  dp[0] = 0;
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    std::uint32_t low = mask & (~mask + 1);  // lowest set bit
    // Enumerate submasks of `mask` containing `low` as the group holding
    // the lowest remaining row; this canonicalization enumerates every set
    // partition exactly once.
    for (std::uint32_t sub = mask; sub > 0; sub = (sub - 1) & mask) {
      if (!(sub & low) || !eligible[sub]) continue;
      std::uint64_t rest = dp[mask ^ sub];
      if (rest == kInf) continue;
      if (rest + stars[sub] < dp[mask]) {
        dp[mask] = rest + stars[sub];
        choice[mask] = sub;
      }
    }
  }
  LDIV_CHECK_NE(dp[full], kInf);  // the whole table is one eligible group

  result.feasible = true;
  result.stars = dp[full];
  for (std::uint32_t mask = full; mask > 0; mask ^= choice[mask]) {
    std::vector<RowId> group;
    for (std::uint32_t r = 0; r < n; ++r) {
      if ((choice[mask] >> r) & 1u) group.push_back(r);
    }
    result.partition.AddGroup(std::move(group));
  }
  return result;
}

namespace {

// Packs a residue histogram (m <= 8 values, counts < 256) into a uint64.
std::uint64_t PackHistogram(const std::vector<std::uint32_t>& counts) {
  std::uint64_t key = 0;
  for (std::size_t v = 0; v < counts.size(); ++v) {
    key |= static_cast<std::uint64_t>(counts[v]) << (8 * v);
  }
  return key;
}

// Enumerates all removal vectors for one group: counts_removed[v] in
// [0, h(Q, v)] such that the remaining group multiset is l-eligible.
// For each valid removal vector, calls fn(removal_counts).
void EnumerateGroupRemovals(const std::vector<std::uint32_t>& group_counts, std::uint32_t l,
                            std::vector<std::uint32_t>& removal, std::size_t v,
                            const std::function<void(const std::vector<std::uint32_t>&)>& fn) {
  if (v == group_counts.size()) {
    std::uint64_t remaining_total = 0;
    std::uint32_t remaining_max = 0;
    for (std::size_t i = 0; i < group_counts.size(); ++i) {
      std::uint32_t rem = group_counts[i] - removal[i];
      remaining_total += rem;
      remaining_max = std::max(remaining_max, rem);
    }
    if (remaining_total >= static_cast<std::uint64_t>(l) * remaining_max) fn(removal);
    return;
  }
  for (std::uint32_t r = 0; r <= group_counts[v]; ++r) {
    removal[v] = r;
    EnumerateGroupRemovals(group_counts, l, removal, v + 1, fn);
  }
  removal[v] = 0;
}

}  // namespace

ExactTupleResult ExactTupleMinimization(const GroupedTable& grouped, std::uint32_t l) {
  ExactTupleResult result;
  const std::size_t m = grouped.sa_domain_size();
  LDIV_CHECK_LE(m, 8u) << "exhaustive tuple solver requires m <= 8";
  LDIV_CHECK_LT(grouped.row_count(), 256u);

  // Feasibility: the whole table must be l-eligible.
  {
    SaHistogram all(m);
    for (const QiGroup& g : grouped.groups()) {
      for (std::size_t i = 0; i < g.sa_runs.size(); ++i) {
        all.Add(g.sa_runs[i].first, g.RunLength(i));
      }
    }
    if (!all.IsEligible(l)) return result;
  }

  // Reachable residue histograms after processing a prefix of groups.
  std::unordered_set<std::uint64_t> reachable = {0};
  for (const QiGroup& group : grouped.groups()) {
    std::vector<std::uint32_t> counts(m, 0);
    for (std::size_t i = 0; i < group.sa_runs.size(); ++i) {
      counts[group.sa_runs[i].first] = group.RunLength(i);
    }
    std::vector<std::vector<std::uint32_t>> removals;
    std::vector<std::uint32_t> removal(m, 0);
    EnumerateGroupRemovals(counts, l, removal, 0,
                           [&](const std::vector<std::uint32_t>& rv) { removals.push_back(rv); });

    std::unordered_set<std::uint64_t> next;
    next.reserve(reachable.size() * removals.size());
    for (std::uint64_t key : reachable) {
      for (const auto& rv : removals) {
        std::uint64_t add = PackHistogram(rv);
        next.insert(key + add);  // counts never exceed 255, so no carries
      }
    }
    reachable = std::move(next);
  }

  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (std::uint64_t key : reachable) {
    std::uint64_t total = 0;
    std::uint32_t max_count = 0;
    for (std::size_t v = 0; v < m; ++v) {
      std::uint32_t c = static_cast<std::uint32_t>((key >> (8 * v)) & 0xFF);
      total += c;
      max_count = std::max(max_count, c);
    }
    if (total >= static_cast<std::uint64_t>(l) * max_count) best = std::min(best, total);
  }
  LDIV_CHECK_NE(best, std::numeric_limits<std::uint64_t>::max());
  result.feasible = true;
  result.removed = best;
  return result;
}

ExactTupleResult ExactTupleMinimization(const Table& table, std::uint32_t l) {
  GroupedTable grouped(table);
  return ExactTupleMinimization(grouped, l);
}

}  // namespace ldv
