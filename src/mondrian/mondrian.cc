#include "mondrian/mondrian.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>
#include <vector>

#include "anonymity/eligibility.h"
#include "common/check.h"
#include "common/workspace.h"

namespace ldv {

namespace {

// In-place Mondrian recursion over a single shared RowId buffer. Each call
// owns the half-open range [begin, end) of the buffer; an accepted cut
// stably partitions that range in place (two passes through a shared
// scratch buffer, preserving relative row order on both sides exactly like
// the seed's left/right copies), a rejected cut leaves it untouched. The
// SA column is materialized once and permuted alongside the row ids, so
// the eligibility pass streams it sequentially.
//
// Per node, one gather pass per attribute over its contiguous column
// builds a small per-attribute value histogram (the QI domains are
// categorical codes, so the histograms fit comfortably in cache); spread,
// minimum and median all fall out of a walk
// over that histogram, replacing the seed's per-split copy-and-sort. When
// the combined domains outgrow the range the node falls back to min/max
// scans plus nth_element selection -- both paths produce the identical
// median, so the partitions cannot depend on the mode. All scratch lives
// in the Workspace; a whole solve allocates only the published groups.
class MondrianState {
 public:
  MondrianState(const Table& table, std::uint32_t l, BoxGeneralization* out,
                ldv::Partition* partition, Workspace& ws)
      : table_(table),
        l_(l),
        n_(table.size()),
        d_(table.qi_count()),
        m_(table.schema().sa_domain_size()),
        out_(out),
        partition_(partition),
        rows_s_(ws.U32()),
        sa_s_(ws.U32()),
        scratch_s_(ws.U32()),
        values_s_(ws.U32()),
        vhist_s_(ws.U32()),
        left_counts_s_(ws.U32()),
        right_counts_s_(ws.U32()),
        touched_s_(ws.U32()),
        rows_(*rows_s_),
        sa_(*sa_s_),
        scratch_(*scratch_s_),
        values_(*values_s_),
        vhist_(*vhist_s_),
        left_counts_(*left_counts_s_),
        right_counts_(*right_counts_s_),
        touched_(*touched_s_) {
    cols_.resize(d_);
    for (AttrId a = 0; a < d_; ++a) cols_[a] = table.column(a).data();
    rows_.resize(n_);
    std::iota(rows_.begin(), rows_.end(), 0u);
    sa_.resize(n_);
    for (RowId r = 0; r < n_; ++r) sa_[r] = table.sa(r);
    left_counts_.assign(m_, 0);
    right_counts_.assign(m_, 0);
    spreads_.reserve(d_);
    mins_.resize(d_);
    maxs_.resize(d_);
    medians_.resize(d_);
    vhist_offset_.resize(d_ + 1);
    vhist_offset_[0] = 0;
    for (AttrId a = 0; a < d_; ++a) {
      vhist_offset_[a + 1] =
          vhist_offset_[a] + static_cast<std::uint32_t>(table.schema().qi(a).domain_size);
    }
    vhist_.resize(vhist_offset_[d_]);
    box_.lo.assign(d_, 0);
    box_.hi.resize(d_);
    for (AttrId a = 0; a < d_; ++a) {
      box_.hi[a] = static_cast<Value>(table.schema().qi(a).domain_size);
    }
  }

  void Run() { Recurse(0, n_); }

 private:
  void Recurse(std::size_t begin, std::size_t end) {
    // Per-attribute min / max / median for the range, via one histogram
    // pass when the combined domains are no larger than the range, via
    // min-max scans plus lazy nth_element selection otherwise.
    const bool use_hist = vhist_offset_[d_] <= end - begin;
    if (use_hist) {
      std::fill(vhist_.begin(), vhist_.end(), 0u);
      // Column-major: one pass per attribute, each streaming a single
      // contiguous column (gathered through rows_) into its histogram.
      for (AttrId a = 0; a < d_; ++a) {
        const Value* col = cols_[a];
        std::uint32_t* hist = vhist_.data() + vhist_offset_[a];
        for (std::size_t i = begin; i < end; ++i) ++hist[col[rows_[i]]];
      }
      const std::size_t k = (end - begin) / 2;  // median = (k+1)-th smallest
      for (AttrId a = 0; a < d_; ++a) {
        const std::uint32_t* hist = vhist_.data() + vhist_offset_[a];
        const std::uint32_t domain = vhist_offset_[a + 1] - vhist_offset_[a];
        std::uint32_t mn = 0, mx = 0, median = 0;
        std::uint64_t cum = 0;
        bool first = true, median_found = false;
        for (std::uint32_t v = 0; v < domain; ++v) {
          if (hist[v] == 0) continue;
          if (first) {
            mn = v;
            first = false;
          }
          mx = v;
          cum += hist[v];
          if (!median_found && cum >= k + 1) {
            median = v;
            median_found = true;
          }
        }
        mins_[a] = mn;
        maxs_[a] = mx;
        medians_[a] = median;
      }
    } else {
      for (AttrId a = 0; a < d_; ++a) {
        const Value* col = cols_[a];
        Value mn = col[rows_[begin]], mx = mn;
        for (std::size_t i = begin + 1; i < end; ++i) {
          Value v = col[rows_[i]];
          mn = std::min(mn, v);
          mx = std::max(mx, v);
        }
        mins_[a] = mn;
        maxs_[a] = mx;
      }
    }

    // Candidate attributes by descending normalized spread inside the
    // range; the per-attribute min doubles as the median cut's lower guard.
    spreads_.clear();
    for (AttrId a = 0; a < d_; ++a) {
      double spread = static_cast<double>(maxs_[a] - mins_[a]) /
                      static_cast<double>(table_.schema().qi(a).domain_size);
      spreads_.push_back({spread, a});
    }
    std::sort(spreads_.begin(), spreads_.end(), [](const auto& x, const auto& y) {
      return x.first != y.first ? x.first > y.first : x.second < y.second;
    });

    // spreads_ is shared across recursion levels; that is safe because a
    // frame returns immediately after recursing, so once a child clobbers
    // the buffer the parent never reads it again. The index loop (rather
    // than iterators) keeps that clobbering well-defined.
    for (std::size_t si = 0; si < spreads_.size(); ++si) {
      const double spread = spreads_[si].first;
      const AttrId attr = spreads_[si].second;
      if (spread <= 0.0) break;  // no attribute with two distinct values
      Value split = MedianSplitValue(begin, end, attr, use_hist);
      if (split == 0) continue;  // all rows share one value on attr

      // Counting pass: side sizes and SA histograms, without moving
      // anything, so a rejected cut leaves the range untouched.
      for (SaValue v : touched_) left_counts_[v] = right_counts_[v] = 0;
      touched_.clear();
      const Value* cut_col = cols_[attr];
      std::uint64_t left_total = 0, right_total = 0;
      std::uint32_t left_max = 0, right_max = 0;
      for (std::size_t i = begin; i < end; ++i) {
        SaValue v = sa_[i];
        if (left_counts_[v] == 0 && right_counts_[v] == 0) touched_.push_back(v);
        if (cut_col[rows_[i]] < split) {
          left_max = std::max(left_max, ++left_counts_[v]);
          ++left_total;
        } else {
          right_max = std::max(right_max, ++right_counts_[v]);
          ++right_total;
        }
      }
      if (left_total == 0 || right_total == 0) continue;
      if (left_total < static_cast<std::uint64_t>(l_) * left_max ||
          right_total < static_cast<std::uint64_t>(l_) * right_max) {
        continue;  // a side would not be l-eligible
      }

      // Commit: stable two-way partition of rows_ and sa_ in place. The
      // right side detours through the scratch buffer so both sides keep
      // their relative order (identical to the seed's push_back copies).
      scratch_.clear();
      std::size_t write = begin;
      for (std::size_t i = begin; i < end; ++i) {
        RowId r = rows_[i];
        if (cut_col[r] < split) {
          rows_[write++] = r;
        } else {
          scratch_.push_back(r);
        }
      }
      std::copy(scratch_.begin(), scratch_.end(), rows_.begin() + write);
      const std::size_t mid = write;
      for (std::size_t i = begin; i < end; ++i) sa_[i] = table_.sa(rows_[i]);

      // Recurse with the shared box mutated and restored around each side.
      Value old_hi = box_.hi[attr];
      box_.hi[attr] = split;
      Recurse(begin, mid);
      box_.hi[attr] = old_hi;
      Value old_lo = box_.lo[attr];
      box_.lo[attr] = split;
      Recurse(mid, end);
      box_.lo[attr] = old_lo;
      return;
    }
    // No allowable cut: emit the group.
    std::vector<RowId> group(rows_.begin() + begin, rows_.begin() + end);
    partition_->AddGroup(group);
    out_->AddGroup(box_, std::move(group));
  }

  /// The median cut point for `attr` within [begin, end): the smallest
  /// value v such that at least half the rows are strictly below v, or 0
  /// when the rows share a single value (no cut). The histogram pass
  /// already computed the median; the fallback selects it with
  /// nth_element -- the (k+1)-th smallest value either way, exactly the
  /// seed's values[size/2] after a full sort.
  Value MedianSplitValue(std::size_t begin, std::size_t end, AttrId attr, bool use_hist) {
    if (mins_[attr] == maxs_[attr]) return 0;
    Value median;
    if (use_hist) {
      median = medians_[attr];
    } else {
      values_.clear();
      const Value* col = cols_[attr];
      for (std::size_t i = begin; i < end; ++i) values_.push_back(col[rows_[i]]);
      const std::size_t k = values_.size() / 2;
      std::nth_element(values_.begin(), values_.begin() + k, values_.end());
      median = values_[k];
    }
    // Cut strictly above the minimum so both sides are nonempty.
    return median > mins_[attr] ? median : median + 1;
  }

  const Table& table_;
  const std::uint32_t l_;
  const std::size_t n_;
  const std::size_t d_;
  const std::size_t m_;
  BoxGeneralization* out_;
  ldv::Partition* partition_;

  ScratchVec<std::uint32_t> rows_s_, sa_s_, scratch_s_, values_s_, vhist_s_;
  ScratchVec<std::uint32_t> left_counts_s_, right_counts_s_, touched_s_;
  std::vector<const Value*> cols_;  // per-attribute column base pointers
  std::vector<RowId>& rows_;             // the single shared row index buffer
  std::vector<SaValue>& sa_;             // SA column, permuted alongside rows_
  std::vector<std::uint32_t>& scratch_;  // right-side staging for stable partition
  std::vector<Value>& values_;           // nth_element fallback scratch
  std::vector<std::uint32_t>& vhist_;    // concatenated per-attr value histograms
  std::vector<std::uint32_t>& left_counts_;   // dense SA histograms,
  std::vector<std::uint32_t>& right_counts_;  // reset via touched_
  std::vector<SaValue>& touched_;
  std::vector<std::uint32_t> vhist_offset_;
  std::vector<std::pair<double, AttrId>> spreads_;
  std::vector<Value> mins_, maxs_, medians_;
  QiBox box_;  // current box, mutated and restored around recursion
};

}  // namespace

MondrianResult MondrianAnonymize(const Table& table, std::uint32_t l, Workspace* workspace) {
  MondrianResult result;
  if (table.empty()) {
    result.feasible = true;
    return result;
  }
  if (!IsTableEligible(table, l)) return result;
  auto start = std::chrono::steady_clock::now();

  Workspace local;
  MondrianState state(table, l, &result.generalization, &result.partition,
                      workspace != nullptr ? *workspace : local);
  state.Run();
  // Splits are global cuts of the parent box, so the boxes tile the QI
  // space (see MondrianResult::generalization).
  result.generalization.MarkTiling();

  result.feasible = true;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  LDIV_DCHECK(result.partition.CoversExactly(table));
  return result;
}

}  // namespace ldv
