#include "mondrian/mondrian.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <vector>

#include "anonymity/eligibility.h"
#include "common/check.h"
#include "common/histogram.h"

namespace ldv {

namespace {

class MondrianState {
 public:
  MondrianState(const Table& table, std::uint32_t l, BoxGeneralization* out,
                ldv::Partition* partition)
      : table_(table), l_(l), out_(out), partition_(partition) {}

  void Recurse(std::vector<RowId> rows, QiBox box) {
    // Candidate attributes by descending normalized spread inside `rows`.
    const std::size_t d = table_.qi_count();
    std::vector<std::pair<double, AttrId>> spreads;
    spreads.reserve(d);
    for (AttrId a = 0; a < d; ++a) {
      auto [min_it, max_it] = std::minmax_element(
          rows.begin(), rows.end(),
          [&](RowId x, RowId y) { return table_.qi(x, a) < table_.qi(y, a); });
      double spread = static_cast<double>(table_.qi(*max_it, a) - table_.qi(*min_it, a)) /
                      static_cast<double>(table_.schema().qi(a).domain_size);
      spreads.push_back({spread, a});
    }
    std::sort(spreads.begin(), spreads.end(), [](const auto& x, const auto& y) {
      return x.first != y.first ? x.first > y.first : x.second < y.second;
    });

    for (const auto& [spread, attr] : spreads) {
      if (spread <= 0.0) break;  // no attribute with two distinct values
      Value split = MedianSplitValue(rows, attr);
      if (split == 0) continue;  // all rows share one value on attr
      std::vector<RowId> left, right;
      SaHistogram left_hist(table_.schema().sa_domain_size());
      SaHistogram right_hist(table_.schema().sa_domain_size());
      for (RowId r : rows) {
        if (table_.qi(r, attr) < split) {
          left.push_back(r);
          left_hist.Add(table_.sa(r));
        } else {
          right.push_back(r);
          right_hist.Add(table_.sa(r));
        }
      }
      if (left.empty() || right.empty()) continue;
      if (!left_hist.IsEligible(l_) || !right_hist.IsEligible(l_)) continue;
      QiBox left_box = box, right_box = box;
      left_box.hi[attr] = split;
      right_box.lo[attr] = split;
      Recurse(std::move(left), std::move(left_box));
      Recurse(std::move(right), std::move(right_box));
      return;
    }
    // No allowable cut: emit the group.
    partition_->AddGroup(rows);
    out_->AddGroup(std::move(box), std::move(rows));
  }

 private:
  /// The median cut point for `attr` within `rows`: the smallest value v
  /// such that at least half the rows are strictly below v, or 0 when the
  /// rows share a single value (no cut).
  Value MedianSplitValue(const std::vector<RowId>& rows, AttrId attr) const {
    std::vector<Value> values;
    values.reserve(rows.size());
    for (RowId r : rows) values.push_back(table_.qi(r, attr));
    std::sort(values.begin(), values.end());
    if (values.front() == values.back()) return 0;
    Value median = values[values.size() / 2];
    // Cut strictly above the minimum so both sides are nonempty.
    return median > values.front() ? median : median + 1;
  }

  const Table& table_;
  std::uint32_t l_;
  BoxGeneralization* out_;
  ldv::Partition* partition_;
};

}  // namespace

MondrianResult MondrianAnonymize(const Table& table, std::uint32_t l) {
  MondrianResult result;
  if (table.empty()) {
    result.feasible = true;
    return result;
  }
  if (!IsTableEligible(table, l)) return result;
  auto start = std::chrono::steady_clock::now();

  std::vector<RowId> all(table.size());
  std::iota(all.begin(), all.end(), 0u);
  QiBox root;
  root.lo.assign(table.qi_count(), 0);
  root.hi.resize(table.qi_count());
  for (AttrId a = 0; a < table.qi_count(); ++a) {
    root.hi[a] = static_cast<Value>(table.schema().qi(a).domain_size);
  }
  MondrianState state(table, l, &result.generalization, &result.partition);
  state.Recurse(std::move(all), std::move(root));

  result.feasible = true;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  LDIV_DCHECK(result.partition.CoversExactly(table));
  return result;
}

}  // namespace ldv
