#include "mondrian/mondrian.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>
#include <vector>

#include "anonymity/eligibility.h"
#include "common/check.h"
#include "common/memory_budget.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "common/workspace.h"

namespace ldv {

namespace {

// Immutable per-solve context shared by every walker: the table, the
// hoisted column pointers and the concatenated-histogram layout.
struct MondrianShared {
  MondrianShared(const Table& table, std::uint32_t l)
      : table(table),
        l(l),
        n(table.size()),
        d(table.qi_count()),
        m(table.schema().sa_domain_size()) {
    cols.resize(d);
    for (AttrId a = 0; a < d; ++a) cols[a] = table.column(a).data();
    vhist_offset.resize(d + 1);
    vhist_offset[0] = 0;
    for (AttrId a = 0; a < d; ++a) {
      vhist_offset[a + 1] =
          vhist_offset[a] + static_cast<std::uint32_t>(table.schema().qi(a).domain_size);
    }
  }

  QiBox RootBox() const {
    QiBox box;
    box.lo.assign(d, 0);
    box.hi.resize(d);
    for (AttrId a = 0; a < d; ++a) {
      box.hi[a] = static_cast<Value>(table.schema().qi(a).domain_size);
    }
    return box;
  }

  const Table& table;
  const std::uint32_t l;
  const std::size_t n;
  const std::size_t d;
  const std::size_t m;
  std::vector<const Value*> cols;
  std::vector<std::uint32_t> vhist_offset;
};

// In-place Mondrian recursion over a single shared RowId buffer. Each call
// owns the half-open range [begin, end) of the buffer; an accepted cut
// stably partitions that range in place (two passes through a shared
// scratch buffer, preserving relative row order on both sides exactly like
// the seed's left/right copies), a rejected cut leaves it untouched. The
// SA column is materialized once and permuted alongside the row ids, so
// the eligibility pass streams it sequentially.
//
// Per node, one gather pass per attribute over its contiguous column
// builds a small per-attribute value histogram (the QI domains are
// categorical codes, so the histograms fit comfortably in cache); spread,
// minimum and median all fall out of a walk
// over that histogram, replacing the seed's per-split copy-and-sort. When
// the combined domains outgrow the range the node falls back to min/max
// scans plus nth_element selection -- both paths produce the identical
// median, so the partitions cannot depend on the mode. All scratch lives
// in the Workspace; a whole solve allocates only the published groups.
//
// A walker owns only scratch and outputs; the row/SA buffers are shared
// between walkers, and independent subtrees cover disjoint ranges of
// them, which is what makes the parallel driver below safe: every walker
// reads and writes exclusively inside its subtree's range.
class MondrianWalker {
 public:
  MondrianWalker(const MondrianShared& shared, std::vector<RowId>& rows,
                 std::vector<SaValue>& sa, BoxGeneralization* out, ldv::Partition* partition,
                 Workspace& ws)
      : s_(shared),
        out_(out),
        partition_(partition),
        scratch_s_(ws.U32()),
        values_s_(ws.U32()),
        vhist_s_(ws.U32()),
        left_counts_s_(ws.U32()),
        right_counts_s_(ws.U32()),
        touched_s_(ws.U32()),
        rows_(rows),
        sa_(sa),
        scratch_(*scratch_s_),
        values_(*values_s_),
        vhist_(*vhist_s_),
        left_counts_(*left_counts_s_),
        right_counts_(*right_counts_s_),
        touched_(*touched_s_) {
    left_counts_.assign(s_.m, 0);
    right_counts_.assign(s_.m, 0);
    spreads_.reserve(s_.d);
    mins_.resize(s_.d);
    maxs_.resize(s_.d);
    medians_.resize(s_.d);
    vhist_.resize(s_.vhist_offset[s_.d]);
    box_ = shared.RootBox();
  }

  /// The box the next Recurse/TrySplit call starts from; defaults to the
  /// root box. The parallel driver points it at a frontier node's box.
  QiBox& box() { return box_; }

  void Recurse(std::size_t begin, std::size_t end) {
    AttrId attr = 0;
    Value split = 0;
    std::size_t mid = 0;
    if (TrySplit(begin, end, &attr, &split, &mid)) {
      // Recurse with the shared box mutated and restored around each side.
      Value old_hi = box_.hi[attr];
      box_.hi[attr] = split;
      Recurse(begin, mid);
      box_.hi[attr] = old_hi;
      Value old_lo = box_.lo[attr];
      box_.lo[attr] = split;
      Recurse(mid, end);
      box_.lo[attr] = old_lo;
      return;
    }
    // No allowable cut: emit the group.
    std::vector<RowId> group(rows_.begin() + begin, rows_.begin() + end);
    partition_->AddGroup(group);
    out_->AddGroup(box_, std::move(group));
  }

  /// One cut attempt on [begin, end): finds the best allowable median cut
  /// and, on success, stably partitions rows_/sa_ in place, returning the
  /// cut attribute, split value and partition point. A rejected range is
  /// left untouched.
  bool TrySplit(std::size_t begin, std::size_t end, AttrId* out_attr, Value* out_split,
                std::size_t* out_mid) {
    // Per-attribute min / max / median for the range, via one histogram
    // pass when the combined domains are no larger than the range, via
    // min-max scans plus lazy nth_element selection otherwise.
    const std::size_t d = s_.d;
    const bool use_hist = s_.vhist_offset[d] <= end - begin;
    if (use_hist) {
      std::fill(vhist_.begin(), vhist_.end(), 0u);
      // Column-major: one pass per attribute, each streaming a single
      // contiguous column (gathered through rows_) into its histogram.
      // Stays scalar: histogram increments scatter to data-dependent
      // slots (with possible duplicates per vector), which SIMD cannot
      // express without a slow conflict-detection pass.
      for (AttrId a = 0; a < d; ++a) {
        const Value* col = s_.cols[a];
        std::uint32_t* hist = vhist_.data() + s_.vhist_offset[a];
        for (std::size_t i = begin; i < end; ++i) ++hist[col[rows_[i]]];
      }
      const std::size_t k = (end - begin) / 2;  // median = (k+1)-th smallest
      for (AttrId a = 0; a < d; ++a) {
        const std::uint32_t* hist = vhist_.data() + s_.vhist_offset[a];
        const std::uint32_t domain = s_.vhist_offset[a + 1] - s_.vhist_offset[a];
        std::uint32_t mn = 0, mx = 0, median = 0;
        std::uint64_t cum = 0;
        bool first = true, median_found = false;
        for (std::uint32_t v = 0; v < domain; ++v) {
          if (hist[v] == 0) continue;
          if (first) {
            mn = v;
            first = false;
          }
          mx = v;
          cum += hist[v];
          if (!median_found && cum >= k + 1) {
            median = v;
            median_found = true;
          }
        }
        mins_[a] = mn;
        maxs_[a] = mx;
        medians_[a] = median;
      }
    } else {
      for (AttrId a = 0; a < d; ++a) {
        simd::MinMaxGatherU32(s_.cols[a], rows_.data() + begin, end - begin, &mins_[a],
                              &maxs_[a]);
      }
    }

    // Candidate attributes by descending normalized spread inside the
    // range; the per-attribute min doubles as the median cut's lower guard.
    spreads_.clear();
    for (AttrId a = 0; a < d; ++a) {
      double spread = static_cast<double>(maxs_[a] - mins_[a]) /
                      static_cast<double>(s_.table.schema().qi(a).domain_size);
      spreads_.push_back({spread, a});
    }
    std::sort(spreads_.begin(), spreads_.end(), [](const auto& x, const auto& y) {
      return x.first != y.first ? x.first > y.first : x.second < y.second;
    });

    for (std::size_t si = 0; si < spreads_.size(); ++si) {
      const double spread = spreads_[si].first;
      const AttrId attr = spreads_[si].second;
      if (spread <= 0.0) break;  // no attribute with two distinct values
      Value split = MedianSplitValue(begin, end, attr, use_hist);
      if (split == 0) continue;  // all rows share one value on attr

      // Counting pass: side sizes and SA histograms, without moving
      // anything, so a rejected cut leaves the range untouched.
      for (SaValue v : touched_) left_counts_[v] = right_counts_[v] = 0;
      touched_.clear();
      const Value* cut_col = s_.cols[attr];
      std::uint64_t left_total = 0, right_total = 0;
      std::uint32_t left_max = 0, right_max = 0;
      for (std::size_t i = begin; i < end; ++i) {
        SaValue v = sa_[i];
        if (left_counts_[v] == 0 && right_counts_[v] == 0) touched_.push_back(v);
        if (cut_col[rows_[i]] < split) {
          left_max = std::max(left_max, ++left_counts_[v]);
          ++left_total;
        } else {
          right_max = std::max(right_max, ++right_counts_[v]);
          ++right_total;
        }
      }
      if (left_total == 0 || right_total == 0) continue;
      if (left_total < static_cast<std::uint64_t>(s_.l) * left_max ||
          right_total < static_cast<std::uint64_t>(s_.l) * right_max) {
        continue;  // a side would not be l-eligible
      }

      // Commit: stable two-way partition of rows_ and sa_ in place. The
      // right side detours through the scratch buffer so both sides keep
      // their relative order (identical to the seed's push_back copies).
      scratch_.clear();
      std::size_t write = begin;
      for (std::size_t i = begin; i < end; ++i) {
        RowId r = rows_[i];
        if (cut_col[r] < split) {
          rows_[write++] = r;
        } else {
          scratch_.push_back(r);
        }
      }
      std::copy(scratch_.begin(), scratch_.end(), rows_.begin() + write);
      simd::GatherU32(s_.table.sa_column().data(), rows_.data() + begin, end - begin,
                      sa_.data() + begin);

      *out_attr = attr;
      *out_split = split;
      *out_mid = write;
      return true;
    }
    return false;
  }

 private:
  /// The median cut point for `attr` within [begin, end): the smallest
  /// value v such that at least half the rows are strictly below v, or 0
  /// when the rows share a single value (no cut). The histogram pass
  /// already computed the median; the fallback selects it with
  /// nth_element -- the (k+1)-th smallest value either way, exactly the
  /// seed's values[size/2] after a full sort.
  Value MedianSplitValue(std::size_t begin, std::size_t end, AttrId attr, bool use_hist) {
    if (mins_[attr] == maxs_[attr]) return 0;
    Value median;
    if (use_hist) {
      median = medians_[attr];
    } else {
      values_.resize(end - begin);
      simd::GatherU32(s_.cols[attr], rows_.data() + begin, end - begin, values_.data());
      const std::size_t k = values_.size() / 2;
      std::nth_element(values_.begin(), values_.begin() + k, values_.end());
      median = values_[k];
    }
    // Cut strictly above the minimum so both sides are nonempty.
    return median > mins_[attr] ? median : median + 1;
  }

  const MondrianShared& s_;
  BoxGeneralization* out_;
  ldv::Partition* partition_;

  ScratchVec<std::uint32_t> scratch_s_, values_s_, vhist_s_;
  ScratchVec<std::uint32_t> left_counts_s_, right_counts_s_, touched_s_;
  std::vector<RowId>& rows_;             // the single shared row index buffer
  std::vector<SaValue>& sa_;             // SA column, permuted alongside rows_
  std::vector<std::uint32_t>& scratch_;  // right-side staging for stable partition
  std::vector<Value>& values_;           // nth_element fallback scratch
  std::vector<std::uint32_t>& vhist_;    // concatenated per-attr value histograms
  std::vector<std::uint32_t>& left_counts_;   // dense SA histograms,
  std::vector<std::uint32_t>& right_counts_;  // reset via touched_
  std::vector<SaValue>& touched_;
  std::vector<std::pair<double, AttrId>> spreads_;
  std::vector<Value> mins_, maxs_, medians_;
  QiBox box_;  // current box, mutated and restored around recursion
};

// One pending subtree of the parallel driver: its row range and the box
// the sequential recursion would have carried into it.
struct FrontierNode {
  std::size_t begin = 0;
  std::size_t end = 0;
  QiBox box;
  bool leaf = false;  // TrySplit already failed: the node is one group
};

// Parallel Mondrian: expand the top of the tree sequentially into a
// left-to-right frontier of independent subtrees, solve the subtrees in
// parallel (disjoint row ranges, per-task scratch, per-task outputs), and
// concatenate the per-subtree groups in frontier order. The tree is a pure
// function of (table, l) -- every node's cut depends only on the rows it
// covers -- and frontier order is depth-first left-to-right order, so the
// merged output is byte-identical to the sequential recursion at any
// thread count.
void RunParallel(const MondrianShared& shared, std::vector<RowId>& rows,
                 std::vector<SaValue>& sa, unsigned threads, Workspace& ws,
                 BoxGeneralization* out, ldv::Partition* partition) {
  const std::size_t target_nodes = 8 * static_cast<std::size_t>(threads);
  const std::size_t cutoff =
      std::max<std::size_t>(4096, shared.n / (8 * static_cast<std::size_t>(threads)));

  std::vector<FrontierNode> frontier;
  frontier.push_back({0, shared.n, shared.RootBox(), false});
  MondrianWalker expander(shared, rows, sa, nullptr, nullptr, ws);
  while (frontier.size() < target_nodes) {
    // Expand the largest splittable node; stop when every remaining node
    // is below the task-granularity cutoff (its subtree runs as one task).
    std::size_t best = frontier.size();
    std::size_t best_size = cutoff;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const std::size_t size = frontier[i].end - frontier[i].begin;
      if (!frontier[i].leaf && size >= best_size) {
        best = i;
        best_size = size + 1;
      }
    }
    if (best == frontier.size()) break;
    FrontierNode& node = frontier[best];
    expander.box() = node.box;
    AttrId attr = 0;
    Value split = 0;
    std::size_t mid = 0;
    if (!expander.TrySplit(node.begin, node.end, &attr, &split, &mid)) {
      node.leaf = true;
      continue;
    }
    FrontierNode right = node;
    node.end = mid;
    node.box.hi[attr] = split;
    right.begin = mid;
    right.box.lo[attr] = split;
    frontier.insert(frontier.begin() + static_cast<std::ptrdiff_t>(best) + 1,
                    std::move(right));
  }

  // Solve the subtrees in parallel, one task per frontier node, each with
  // its own walker (scratch from the executing thread's workspace) and
  // its own outputs. Leaf nodes re-run one failing TrySplit and emit.
  std::vector<ldv::Partition> parts(frontier.size());
  std::vector<BoxGeneralization> gens(frontier.size());
  ParallelFor(frontier.size(), 1, ws,
              [&](std::size_t begin, std::size_t end, Workspace& cws) {
                for (std::size_t i = begin; i < end; ++i) {
                  MondrianWalker walker(shared, rows, sa, &gens[i], &parts[i], cws);
                  walker.box() = frontier[i].box;
                  walker.Recurse(frontier[i].begin, frontier[i].end);
                }
              });

  for (std::size_t i = 0; i < frontier.size(); ++i) {
    partition->Append(std::move(parts[i]));
    out->Append(std::move(gens[i]));
  }
}

}  // namespace

MondrianResult MondrianAnonymize(const Table& table, std::uint32_t l, Workspace* workspace) {
  MondrianResult result;
  if (table.empty()) {
    result.feasible = true;
    return result;
  }
  if (!IsTableEligible(table, l)) return result;
  auto start = std::chrono::steady_clock::now();

  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;
  MondrianShared shared(table, l);

  // The recursion's resident working set is dominated by the two O(n)
  // buffers below; under a process memory budget, account for them so
  // peak() reflects the solve (the passes themselves already run
  // chunk-at-a-time over columns or in-place over these buffers).
  MemoryReservation budget_charge(
      MemoryBudgetBytes() != 0 ? GlobalMemoryBudgetShared() : nullptr,
      2ull * shared.n * sizeof(std::uint32_t));

  // The shared row-id and SA buffers every walker indexes into.
  auto rows_s = ws.U32();
  std::vector<RowId>& rows = *rows_s;
  rows.resize(shared.n);
  std::iota(rows.begin(), rows.end(), 0u);
  auto sa_s = ws.U32();
  std::vector<SaValue>& sa = *sa_s;
  sa.resize(shared.n);
  for (RowId r = 0; r < shared.n; ++r) sa[r] = table.sa(r);

  const unsigned threads = InnerThreads();
  if (threads > 1 && shared.n >= 8192) {
    RunParallel(shared, rows, sa, threads, ws, &result.generalization, &result.partition);
  } else {
    MondrianWalker walker(shared, rows, sa, &result.generalization, &result.partition, ws);
    walker.Recurse(0, shared.n);
  }
  // Splits are global cuts of the parent box, so the boxes tile the QI
  // space (see MondrianResult::generalization).
  result.generalization.MarkTiling();

  result.feasible = true;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  LDIV_DCHECK(result.partition.CoversExactly(table));
  return result;
}

}  // namespace ldv
