#ifndef LDIV_MONDRIAN_MONDRIAN_H_
#define LDIV_MONDRIAN_MONDRIAN_H_

#include <cstdint>

#include "anonymity/multidim.h"
#include "anonymity/partition.h"
#include "common/table.h"
#include "common/workspace.h"

namespace ldv {

/// Result of the Mondrian partitioner.
struct MondrianResult {
  /// False iff the table is not l-eligible.
  bool feasible = false;
  /// The kd-style partition of the rows.
  Partition partition;
  /// The published boxes (one per group). The boxes tile the whole QI
  /// space (splits are global cuts of the parent box), so they never
  /// overlap -- the property that makes the Equation-2 pdf well-defined
  /// with one cell per point.
  BoxGeneralization generalization;
  double seconds = 0.0;
};

/// Mondrian multi-dimensional generalization (LeFevre, DeWitt,
/// Ramakrishnan [27]) adapted from k-anonymity to l-diversity, the paper's
/// Section 2 / 6.2 representative of the multi-dimensional category:
/// recursively bisect the QI space at the median of the attribute with the
/// widest normalized spread, as long as both halves remain l-eligible.
///
/// The recursion runs in place over one shared RowId buffer (medians by
/// selection, partitions by stable in-range swaps); when a Workspace is
/// supplied all scratch memory is drawn from (and returned to) its pools,
/// so repeated solves allocate only the published groups.
MondrianResult MondrianAnonymize(const Table& table, std::uint32_t l,
                                 Workspace* workspace = nullptr);

}  // namespace ldv

#endif  // LDIV_MONDRIAN_MONDRIAN_H_
