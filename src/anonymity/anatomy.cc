#include "anonymity/anatomy.h"

#include <algorithm>
#include <chrono>
#include <queue>
#include <vector>

#include "anonymity/eligibility.h"
#include "common/check.h"

namespace ldv {

AnatomyResult AnatomyAnonymize(const Table& table, std::uint32_t l) {
  AnatomyResult result;
  if (table.empty()) {
    result.feasible = true;
    return result;
  }
  if (!IsTableEligible(table, l)) return result;
  auto start = std::chrono::steady_clock::now();

  // Row stacks per SA value.
  const std::size_t m = table.schema().sa_domain_size();
  std::vector<std::vector<RowId>> rows_by_sa(m);
  for (RowId r = 0; r < table.size(); ++r) rows_by_sa[table.sa(r)].push_back(r);

  // Max-heap of (remaining count, SA value).
  std::priority_queue<std::pair<std::uint32_t, SaValue>> heap;
  for (SaValue v = 0; v < m; ++v) {
    if (!rows_by_sa[v].empty()) {
      heap.push({static_cast<std::uint32_t>(rows_by_sa[v].size()), v});
    }
  }

  std::vector<std::vector<RowId>> buckets;
  while (heap.size() >= l) {
    // Pop the l most frequent remaining values and take one tuple of each.
    std::vector<std::pair<std::uint32_t, SaValue>> picked;
    std::vector<RowId> bucket;
    for (std::uint32_t i = 0; i < l; ++i) {
      auto [count, v] = heap.top();
      heap.pop();
      bucket.push_back(rows_by_sa[v].back());
      rows_by_sa[v].pop_back();
      if (count > 1) picked.push_back({count - 1, v});
    }
    for (const auto& p : picked) heap.push(p);
    buckets.push_back(std::move(bucket));
  }

  // Residual tuples (fewer than l distinct values remain): append each to a
  // bucket not yet containing its SA value. Eligibility of the whole table
  // guarantees enough buckets exist: the residue of value v has at most
  // (#buckets / l) tuples left... concretely, h(T, v) <= n / l = #buckets
  // when every bucket has exactly l members, and each bucket absorbed at
  // most one v-tuple so far.
  while (!heap.empty()) {
    SaValue v = heap.top().second;
    heap.pop();
    std::size_t cursor = 0;
    while (!rows_by_sa[v].empty()) {
      // Find the next bucket without value v.
      bool placed = false;
      for (; cursor < buckets.size(); ++cursor) {
        bool has_v = false;
        for (RowId r : buckets[cursor]) {
          if (table.sa(r) == v) {
            has_v = true;
            break;
          }
        }
        if (!has_v) {
          buckets[cursor].push_back(rows_by_sa[v].back());
          rows_by_sa[v].pop_back();
          ++cursor;
          placed = true;
          break;
        }
      }
      LDIV_CHECK(placed) << "anatomy residual placement failed (value " << v << ")";
    }
  }

  for (auto& bucket : buckets) result.partition.AddGroup(std::move(bucket));
  result.feasible = true;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  LDIV_DCHECK(result.partition.CoversExactly(table));
  return result;
}

}  // namespace ldv
