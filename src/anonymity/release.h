#ifndef LDIV_ANONYMITY_RELEASE_H_
#define LDIV_ANONYMITY_RELEASE_H_

#include <optional>
#include <string>

#include "anonymity/generalization.h"
#include "common/table.h"

namespace ldv {

/// Writes a suppression release as CSV: a header row, then one row per
/// tuple with starred attributes emitted as '*' (the missing-value
/// convention off-the-shelf statistics packages understand, Section 2) and
/// the SA value as its integer code. Rows are grouped by QI-group.
/// Returns false on I/O failure.
bool WriteReleaseCsv(const Table& table, const GeneralizedTable& generalized,
                     const std::string& path);

/// One row of a parsed release.
struct ReleaseRow {
  /// QI values; kStar for suppressed cells.
  std::vector<Value> qi;
  SaValue sa = 0;
};

/// Reads a release written by WriteReleaseCsv. Returns std::nullopt on I/O
/// or parse failure (wrong column count, values outside the schema
/// domains). Stars parse back to kStar.
std::optional<std::vector<ReleaseRow>> ReadReleaseCsv(const Schema& schema,
                                                      const std::string& path);

}  // namespace ldv

#endif  // LDIV_ANONYMITY_RELEASE_H_
