#include "anonymity/k_anonymity.h"

#include "anonymity/eligibility.h"

namespace ldv {

bool IsKAnonymous(const Partition& partition, std::uint32_t k) {
  for (const auto& group : partition.groups()) {
    if (group.size() < k) return false;
  }
  return true;
}

namespace {

bool GroupIsHomogeneous(const Table& table, const std::vector<RowId>& group) {
  if (group.size() < 2) return false;
  SaValue first = table.sa(group[0]);
  for (std::size_t i = 1; i < group.size(); ++i) {
    if (table.sa(group[i]) != first) return false;
  }
  return true;
}

}  // namespace

bool HasHomogeneityViolation(const Table& table, const Partition& partition) {
  for (const auto& group : partition.groups()) {
    if (GroupIsHomogeneous(table, group)) return true;
  }
  return false;
}

double HomogeneousTupleFraction(const Table& table, const Partition& partition) {
  if (table.empty()) return 0.0;
  std::uint64_t exposed = 0;
  for (const auto& group : partition.groups()) {
    if (GroupIsHomogeneous(table, group)) exposed += group.size();
  }
  return static_cast<double>(exposed) / static_cast<double>(table.size());
}

}  // namespace ldv
