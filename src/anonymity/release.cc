#include "anonymity/release.h"

#include <fstream>

#include "common/csv.h"
#include "common/failpoint.h"

namespace ldv {

bool WriteReleaseCsv(const Table& table, const GeneralizedTable& generalized,
                     const std::string& path) {
  failpoint::Injection injection;
  if (failpoint::Check(failpoint::Site::kReleaseWrite, &injection)) return false;
  std::ofstream out(path);
  if (!out) return false;
  const Schema& schema = table.schema();
  for (std::size_t a = 0; a < schema.qi_count(); ++a) {
    out << CsvEscapeCell(schema.qi(static_cast<AttrId>(a)).name) << ",";
  }
  out << CsvEscapeCell(schema.sensitive().name) << "\n";
  for (GroupId g = 0; g < generalized.group_count(); ++g) {
    const std::vector<Value>& sig = generalized.signature(g);
    for (RowId r : generalized.rows(g)) {
      for (std::size_t a = 0; a < sig.size(); ++a) {
        if (IsStar(sig[a])) {
          out << "*,";
        } else {
          out << DecodeCsvValue(schema.qi(static_cast<AttrId>(a)), sig[a]) << ",";
        }
      }
      out << DecodeCsvValue(schema.sensitive(), table.sa(r)) << "\n";
    }
  }
  // Close before checking: a full disk behind the buffered stream only
  // surfaces at flush/close time.
  out.close();
  return !out.fail();
}

namespace {

// Parses one cell back into a code: '*' maps to kStar, a dictionary-backed
// attribute looks its label up, and a plain attribute parses a
// non-negative integer below its domain size.
bool ParseCell(const std::string& cell, const Attribute& attr, bool allow_star, Value* out) {
  if (allow_star && cell == "*") {
    *out = kStar;
    return true;
  }
  if (cell.empty()) return false;
  if (attr.has_dictionary()) {
    const Value* code = attr.dictionary.Find(cell);
    if (code == nullptr) return false;
    *out = *code;
    return true;
  }
  if (cell.size() > 10) return false;  // cannot be a Value code; avoids wrap
  std::uint64_t v = 0;
  for (char c : cell) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (v >= attr.domain_size) return false;
  *out = static_cast<Value>(v);
  return true;
}

}  // namespace

std::optional<std::vector<ReleaseRow>> ReadReleaseCsv(const Schema& schema,
                                                      const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;  // header

  std::vector<ReleaseRow> rows;
  std::vector<std::string> cells;
  while (std::getline(in, line)) {
    if (IsBlankCsvLine(line)) continue;
    SplitCsvLine(line, &cells);
    if (cells.size() != schema.qi_count() + 1) return std::nullopt;
    ReleaseRow row;
    for (std::size_t a = 0; a < schema.qi_count(); ++a) {
      Value v;
      if (!ParseCell(cells[a], schema.qi(static_cast<AttrId>(a)), /*allow_star=*/true, &v)) {
        return std::nullopt;
      }
      row.qi.push_back(v);
    }
    Value sa;
    if (!ParseCell(cells.back(), schema.sensitive(), /*allow_star=*/false, &sa)) {
      return std::nullopt;
    }
    row.sa = sa;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace ldv
