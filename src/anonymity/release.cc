#include "anonymity/release.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ldv {

bool WriteReleaseCsv(const Table& table, const GeneralizedTable& generalized,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  const Schema& schema = table.schema();
  for (std::size_t a = 0; a < schema.qi_count(); ++a) {
    out << schema.qi(static_cast<AttrId>(a)).name << ",";
  }
  out << schema.sensitive().name << "\n";
  for (GroupId g = 0; g < generalized.group_count(); ++g) {
    const std::vector<Value>& sig = generalized.signature(g);
    for (RowId r : generalized.rows(g)) {
      for (Value v : sig) {
        if (IsStar(v)) {
          out << "*,";
        } else {
          out << v << ",";
        }
      }
      out << table.sa(r) << "\n";
    }
  }
  return static_cast<bool>(out);
}

namespace {

// Parses one cell: '*' or a non-negative integer below `bound`.
bool ParseCell(const std::string& cell, std::uint64_t bound, Value* out) {
  if (cell == "*") {
    *out = kStar;
    return true;
  }
  if (cell.empty()) return false;
  std::uint64_t v = 0;
  for (char c : cell) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (v >= bound) return false;
  *out = static_cast<Value>(v);
  return true;
}

}  // namespace

std::optional<std::vector<ReleaseRow>> ReadReleaseCsv(const Schema& schema,
                                                      const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;  // header

  std::vector<ReleaseRow> rows;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ReleaseRow row;
    std::stringstream ss(line);
    std::string cell;
    for (std::size_t a = 0; a < schema.qi_count(); ++a) {
      if (!std::getline(ss, cell, ',')) return std::nullopt;
      Value v;
      if (!ParseCell(cell, schema.qi(static_cast<AttrId>(a)).domain_size, &v)) {
        return std::nullopt;
      }
      row.qi.push_back(v);
    }
    if (!std::getline(ss, cell, ',')) return std::nullopt;
    Value sa;
    if (!ParseCell(cell, schema.sa_domain_size(), &sa) || IsStar(sa)) return std::nullopt;
    row.sa = sa;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace ldv
