#include "anonymity/multidim.h"

#include <algorithm>

#include "common/check.h"

namespace ldv {

double QiBox::Volume() const {
  double volume = 1.0;
  for (std::size_t a = 0; a < lo.size(); ++a) {
    volume *= static_cast<double>(hi[a] - lo[a]);
  }
  return volume;
}

bool QiBox::Contains(std::span<const Value> qi) const {
  for (std::size_t a = 0; a < lo.size(); ++a) {
    if (qi[a] < lo[a] || qi[a] >= hi[a]) return false;
  }
  return true;
}

void BoxGeneralization::AddGroup(QiBox box, std::vector<RowId> rows) {
  LDIV_CHECK_EQ(box.lo.size(), box.hi.size());
  LDIV_CHECK(!rows.empty());
  boxes_.push_back(std::move(box));
  rows_.push_back(std::move(rows));
}

void BoxGeneralization::Append(BoxGeneralization&& other) {
  for (std::size_t g = 0; g < other.boxes_.size(); ++g) {
    boxes_.push_back(std::move(other.boxes_[g]));
    rows_.push_back(std::move(other.rows_[g]));
  }
  other.boxes_.clear();
  other.rows_.clear();
}

BoxGeneralization RelaxSuppressionToMultiDim(const Table& table,
                                             const GeneralizedTable& generalized) {
  BoxGeneralization out;
  const std::size_t d = table.qi_count();
  for (GroupId g = 0; g < generalized.group_count(); ++g) {
    const std::vector<Value>& sig = generalized.signature(g);
    const std::vector<RowId>& rows = generalized.rows(g);
    QiBox box;
    box.lo.resize(d);
    box.hi.resize(d);
    for (AttrId a = 0; a < d; ++a) {
      if (!IsStar(sig[a])) {
        box.lo[a] = sig[a];
        box.hi[a] = sig[a] + 1;
        continue;
      }
      Value min_v = table.qi(rows[0], a), max_v = min_v;
      for (RowId r : rows) {
        min_v = std::min(min_v, table.qi(r, a));
        max_v = std::max(max_v, table.qi(r, a));
      }
      box.lo[a] = min_v;
      box.hi[a] = max_v + 1;
    }
    out.AddGroup(std::move(box), rows);
  }
  return out;
}

}  // namespace ldv
