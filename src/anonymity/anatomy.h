#ifndef LDIV_ANONYMITY_ANATOMY_H_
#define LDIV_ANONYMITY_ANATOMY_H_

#include <cstdint>

#include "anonymity/partition.h"
#include "common/table.h"

namespace ldv {

/// Result of the Anatomy bucketization.
struct AnatomyResult {
  /// False iff the table is not l-eligible.
  bool feasible = false;
  /// The bucketization: every bucket has >= l tuples with pairwise distinct
  /// SA values among its first l members and is l-eligible.
  Partition partition;
  double seconds = 0.0;
};

/// Anatomy (Xiao and Tao [47], discussed in Section 2): instead of
/// generalizing QI values, publish the exact QI table and a separate
/// SA table linked only through bucket ids, where each bucket is l-diverse.
///
/// The bucketization algorithm is the original one: repeatedly pick the l
/// SA values with the most remaining tuples and move one tuple of each into
/// a new bucket; leftover tuples (fewer than l non-empty values remain) are
/// appended to buckets that do not yet contain their SA value. The output
/// buckets satisfy Definition 2, so Anatomy slots into the same privacy
/// checks as the generalization algorithms while losing no QI information
/// at all -- the trade-off Section 2 describes (linkage is hidden, exact
/// tuples are not).
AnatomyResult AnatomyAnonymize(const Table& table, std::uint32_t l);

}  // namespace ldv

#endif  // LDIV_ANONYMITY_ANATOMY_H_
