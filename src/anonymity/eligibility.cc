#include "anonymity/eligibility.h"

namespace ldv {

bool IsEligible(const SaHistogram& histogram, std::uint32_t l) {
  return histogram.IsEligible(l);
}

SaHistogram RowsHistogram(const Table& table, const std::vector<RowId>& rows) {
  SaHistogram h(table.schema().sa_domain_size());
  for (RowId r : rows) h.Add(table.sa(r));
  return h;
}

bool IsEligible(const Table& table, const std::vector<RowId>& rows, std::uint32_t l) {
  return RowsHistogram(table, rows).IsEligible(l);
}

bool IsTableEligible(const Table& table, std::uint32_t l) {
  SaHistogram h(std::vector<std::uint32_t>(table.SaHistogramCounts()));
  return h.IsEligible(l);
}

bool IsLDiverse(const Table& table, const Partition& partition, std::uint32_t l) {
  for (const auto& group : partition.groups()) {
    if (!IsEligible(table, group, l)) return false;
  }
  return true;
}

std::uint32_t MaxFeasibleL(const Table& table) {
  if (table.empty()) return 0;
  SaHistogram h(std::vector<std::uint32_t>(table.SaHistogramCounts()));
  std::uint32_t pillar = h.PillarHeight();
  if (pillar == 0) return 0;
  return static_cast<std::uint32_t>(table.size() / pillar);
}

}  // namespace ldv
