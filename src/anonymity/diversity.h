#ifndef LDIV_ANONYMITY_DIVERSITY_H_
#define LDIV_ANONYMITY_DIVERSITY_H_

#include <cstdint>

#include "common/histogram.h"

namespace ldv {

/// Alternative instantiations of the l-diversity principle [31]. The paper
/// studies the frequency ("distinct") interpretation of Definition 2; these
/// variants are the other two interpretations Machanavajjhala et al. define,
/// provided for completeness and for the generic baseline partitioner. All
/// three are monotone under union (Lemma 1 / [31]), which is what the
/// merge-repair steps of the partitioners rely on.
enum class DiversityKind {
  /// Definition 2: at most |S|/l tuples share one SA value.
  kFrequency,
  /// Entropy l-diversity: entropy of the SA distribution >= log(l).
  kEntropy,
  /// Recursive (c,l)-diversity: r_1 < c * (r_l + r_{l+1} + ... + r_m) where
  /// r_i are the SA counts in non-increasing order.
  kRecursive,
};

/// Parameters of a diversity requirement.
struct DiversitySpec {
  DiversityKind kind = DiversityKind::kFrequency;
  std::uint32_t l = 2;
  /// The constant c of recursive (c,l)-diversity (ignored otherwise).
  double c = 1.0;
};

/// True iff the multiset satisfies the requirement. The empty multiset
/// satisfies every requirement (mirroring Definition 2's convention).
bool SatisfiesDiversity(const SaHistogram& histogram, const DiversitySpec& spec);

/// Entropy (natural log) of the SA distribution of `histogram`; 0 if empty.
double SaEntropy(const SaHistogram& histogram);

}  // namespace ldv

#endif  // LDIV_ANONYMITY_DIVERSITY_H_
