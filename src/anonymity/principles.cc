#include "anonymity/principles.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "anonymity/eligibility.h"

namespace ldv {

bool IsAlphaKAnonymous(const Table& table, const Partition& partition, double alpha,
                       std::uint32_t k) {
  for (const auto& group : partition.groups()) {
    if (group.size() < k) return false;
    SaHistogram h = RowsHistogram(table, group);
    double limit = alpha * static_cast<double>(group.size());
    if (static_cast<double>(h.PillarHeight()) > limit + 1e-9) return false;
  }
  return true;
}

double MaxSaDistributionDistance(const Table& table, const Partition& partition) {
  if (table.empty()) return 0.0;
  const std::size_t m = table.schema().sa_domain_size();
  std::vector<double> table_dist(m, 0.0);
  {
    auto counts = table.SaHistogramCounts();
    for (std::size_t v = 0; v < m; ++v) {
      table_dist[v] = static_cast<double>(counts[v]) / static_cast<double>(table.size());
    }
  }
  double worst = 0.0;
  for (const auto& group : partition.groups()) {
    SaHistogram h = RowsHistogram(table, group);
    double tv = 0.0;
    for (SaValue v = 0; v < m; ++v) {
      double p = static_cast<double>(h.count(v)) / static_cast<double>(group.size());
      tv += std::abs(p - table_dist[v]);
    }
    worst = std::max(worst, tv / 2.0);
  }
  return worst;
}

bool IsTClose(const Table& table, const Partition& partition, double t) {
  return MaxSaDistributionDistance(table, partition) <= t + 1e-9;
}

bool IsMUnique(const Table& table, const Partition& partition, std::uint32_t m_groups) {
  for (const auto& group : partition.groups()) {
    if (group.size() != m_groups) return false;
    std::set<SaValue> seen;
    for (RowId r : group) {
      if (!seen.insert(table.sa(r)).second) return false;
    }
  }
  return true;
}

}  // namespace ldv
