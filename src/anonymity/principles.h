#ifndef LDIV_ANONYMITY_PRINCIPLES_H_
#define LDIV_ANONYMITY_PRINCIPLES_H_

#include <cstdint>

#include "anonymity/partition.h"
#include "common/table.h"

namespace ldv {

/// (alpha, k)-anonymity (Wong et al. [46], Section 2): every QI-group has
/// at least k tuples and no SA value exceeds the fraction `alpha` within a
/// group. The paper's Section 4 notes that (0.5, k)-anonymity combines
/// k-anonymity with 2-diversity.
bool IsAlphaKAnonymous(const Table& table, const Partition& partition, double alpha,
                       std::uint32_t k);

/// t-closeness (Li, Li, Venkatasubramanian [29], Section 2) for categorical
/// SAs under the equal-distance ground metric, where the earth mover's
/// distance degenerates to total variation distance: every QI-group's SA
/// distribution must be within `t` of the whole table's, i.e.
/// (1/2) * sum_v |P_group(v) - P_table(v)| <= t.
bool IsTClose(const Table& table, const Partition& partition, double t);

/// The largest per-group total-variation distance from the table's SA
/// distribution (so IsTClose(t) iff MaxSaDistributionDistance <= t).
/// Returns 0 for an empty partition.
double MaxSaDistributionDistance(const Table& table, const Partition& partition);

/// m-invariance's static core (Xiao and Tao [49], Section 2, for one
/// release): every QI-group has exactly `m_groups` tuples, all with
/// distinct SA values. Anatomy's perfect buckets satisfy this.
bool IsMUnique(const Table& table, const Partition& partition, std::uint32_t m_groups);

}  // namespace ldv

#endif  // LDIV_ANONYMITY_PRINCIPLES_H_
