#ifndef LDIV_ANONYMITY_PARTITION_H_
#define LDIV_ANONYMITY_PARTITION_H_

#include <cstddef>
#include <vector>

#include "common/table.h"
#include "common/types.h"

namespace ldv {

/// A partition P of a table into disjoint QI-groups whose union is the whole
/// table (Section 3). Groups are lists of row ids into the underlying table.
class Partition {
 public:
  Partition() = default;

  /// Creates a partition from explicit groups. Empty groups are dropped.
  explicit Partition(std::vector<std::vector<RowId>> groups);

  /// The partition with a single group containing all rows of `table`
  /// (always l-diverse when the table itself is l-eligible, by Lemma 1).
  static Partition SingleGroup(const Table& table);

  std::size_t group_count() const { return groups_.size(); }
  const std::vector<RowId>& group(GroupId g) const { return groups_[g]; }
  const std::vector<std::vector<RowId>>& groups() const { return groups_; }

  /// Total number of rows covered.
  std::size_t row_count() const;

  /// Adds one group (ignored if empty).
  void AddGroup(std::vector<RowId> rows);

  /// Moves every group of `other` to the end of this partition, in order.
  /// `other` is left empty.
  void Append(Partition&& other);

  /// Reserves storage for `groups` groups.
  void Reserve(std::size_t groups) { groups_.reserve(groups); }

  /// Verifies that the groups are disjoint and exactly cover rows
  /// [0, table.size()). Used by tests and by debug-mode validation.
  bool CoversExactly(const Table& table) const;

 private:
  std::vector<std::vector<RowId>> groups_;
};

}  // namespace ldv

#endif  // LDIV_ANONYMITY_PARTITION_H_
