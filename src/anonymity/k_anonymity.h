#ifndef LDIV_ANONYMITY_K_ANONYMITY_H_
#define LDIV_ANONYMITY_K_ANONYMITY_H_

#include <cstdint>

#include "anonymity/partition.h"
#include "common/table.h"

namespace ldv {

/// k-anonymity (Samarati / Sweeney, Section 1): every QI-group contains at
/// least k tuples.
bool IsKAnonymous(const Partition& partition, std::uint32_t k);

/// The homogeneity problem of Machanavajjhala et al. that motivates
/// l-diversity (Section 1): returns true if some QI-group of size >= 2 has
/// all tuples sharing one SA value, so an adversary learns the SA value
/// without identifying the tuple.
bool HasHomogeneityViolation(const Table& table, const Partition& partition);

/// Fraction of tuples that sit in a homogeneous QI-group of size >= 2.
/// Quantifies how exposed a k-anonymous release is.
double HomogeneousTupleFraction(const Table& table, const Partition& partition);

}  // namespace ldv

#endif  // LDIV_ANONYMITY_K_ANONYMITY_H_
