#include "anonymity/diversity.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace ldv {

double SaEntropy(const SaHistogram& histogram) {
  if (histogram.empty()) return 0.0;
  double n = static_cast<double>(histogram.total());
  double entropy = 0.0;
  for (SaValue v = 0; v < histogram.domain_size(); ++v) {
    std::uint32_t c = histogram.count(v);
    if (c == 0) continue;
    double p = static_cast<double>(c) / n;
    entropy -= p * std::log(p);
  }
  return entropy;
}

bool SatisfiesDiversity(const SaHistogram& histogram, const DiversitySpec& spec) {
  LDIV_CHECK_GE(spec.l, 1u);
  if (histogram.empty()) return true;
  switch (spec.kind) {
    case DiversityKind::kFrequency:
      return histogram.IsEligible(spec.l);
    case DiversityKind::kEntropy:
      // entropy(S) >= ln(l); for l = 1 this is trivially true.
      return SaEntropy(histogram) >= std::log(static_cast<double>(spec.l)) - 1e-12;
    case DiversityKind::kRecursive: {
      std::vector<std::uint32_t> counts;
      counts.reserve(histogram.domain_size());
      for (SaValue v = 0; v < histogram.domain_size(); ++v) {
        if (histogram.count(v) > 0) counts.push_back(histogram.count(v));
      }
      std::sort(counts.begin(), counts.end(), std::greater<>());
      if (counts.size() < spec.l) return false;
      double tail = 0.0;
      for (std::size_t i = spec.l - 1; i < counts.size(); ++i) tail += counts[i];
      return static_cast<double>(counts[0]) < spec.c * tail;
    }
  }
  return false;
}

}  // namespace ldv
