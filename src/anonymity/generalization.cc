#include "anonymity/generalization.h"

#include <sstream>

#include "common/check.h"

namespace ldv {

namespace {

// Computes the Definition-1 signature of one group: per attribute, the
// common value or kStar.
std::vector<Value> ComputeSignature(const Table& table, const std::vector<RowId>& rows) {
  LDIV_CHECK(!rows.empty());
  std::vector<Value> sig(table.qi_row(rows[0]).begin(), table.qi_row(rows[0]).end());
  for (std::size_t i = 1; i < rows.size(); ++i) {
    auto qi = table.qi_row(rows[i]);
    for (std::size_t a = 0; a < sig.size(); ++a) {
      if (sig[a] != qi[a]) sig[a] = kStar;
    }
  }
  return sig;
}

}  // namespace

GeneralizedTable::GeneralizedTable(const Table& table, const Partition& partition)
    : partition_(partition), qi_count_(table.qi_count()) {
  signatures_.reserve(partition_.group_count());
  for (GroupId g = 0; g < partition_.group_count(); ++g) {
    signatures_.push_back(ComputeSignature(table, partition_.group(g)));
  }
}

std::uint64_t GeneralizedTable::StarCount() const {
  std::uint64_t stars = 0;
  for (GroupId g = 0; g < group_count(); ++g) {
    stars += static_cast<std::uint64_t>(StarredAttributeCount(g)) * rows(g).size();
  }
  return stars;
}

std::uint64_t GeneralizedTable::SuppressedTupleCount() const {
  std::uint64_t suppressed = 0;
  for (GroupId g = 0; g < group_count(); ++g) {
    if (StarredAttributeCount(g) > 0) suppressed += rows(g).size();
  }
  return suppressed;
}

std::uint32_t GeneralizedTable::StarredAttributeCount(GroupId g) const {
  std::uint32_t count = 0;
  for (Value v : signatures_[g]) {
    if (IsStar(v)) ++count;
  }
  return count;
}

std::string GeneralizedTable::ToString(const Table& table, std::size_t max_rows) const {
  std::ostringstream out;
  std::size_t printed = 0;
  for (GroupId g = 0; g < group_count(); ++g) {
    out << "group " << g << ":\n";
    for (RowId r : rows(g)) {
      if (printed++ >= max_rows) {
        out << "  ...\n";
        return out.str();
      }
      out << "  ";
      for (Value v : signatures_[g]) {
        if (IsStar(v)) {
          out << "* ";
        } else {
          out << v << " ";
        }
      }
      out << "| " << table.sa(r) << "\n";
    }
  }
  return out.str();
}

std::uint64_t GroupStarCount(const Table& table, const std::vector<RowId>& rows) {
  if (rows.empty()) return 0;
  std::uint32_t starred = 0;
  auto first = table.qi_row(rows[0]);
  for (std::size_t a = 0; a < first.size(); ++a) {
    for (std::size_t i = 1; i < rows.size(); ++i) {
      if (table.qi(rows[i], static_cast<AttrId>(a)) != first[a]) {
        ++starred;
        break;
      }
    }
  }
  return static_cast<std::uint64_t>(starred) * rows.size();
}

std::uint64_t PartitionStarCount(const Table& table, const Partition& partition) {
  std::uint64_t stars = 0;
  for (const auto& group : partition.groups()) stars += GroupStarCount(table, group);
  return stars;
}

}  // namespace ldv
