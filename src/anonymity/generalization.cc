#include "anonymity/generalization.h"

#include <sstream>

#include "common/check.h"

namespace ldv {

namespace {

// Computes the Definition-1 signature of one group: per attribute, the
// common value or kStar. Column-major: one gathered scan per attribute
// with a first-disagreement early exit.
std::vector<Value> ComputeSignature(const Table& table, const std::vector<RowId>& rows) {
  LDIV_CHECK(!rows.empty());
  const std::size_t d = table.qi_count();
  std::vector<Value> sig(d);
  for (AttrId a = 0; a < d; ++a) {
    const Value* col = table.column(a).data();
    const Value first = col[rows[0]];
    sig[a] = first;
    for (std::size_t i = 1; i < rows.size(); ++i) {
      if (col[rows[i]] != first) {
        sig[a] = kStar;
        break;
      }
    }
  }
  return sig;
}

}  // namespace

GeneralizedTable::GeneralizedTable(const Table& table, const Partition& partition)
    : partition_(partition), qi_count_(table.qi_count()) {
  signatures_.reserve(partition_.group_count());
  for (GroupId g = 0; g < partition_.group_count(); ++g) {
    signatures_.push_back(ComputeSignature(table, partition_.group(g)));
  }
}

std::uint64_t GeneralizedTable::StarCount() const {
  std::uint64_t stars = 0;
  for (GroupId g = 0; g < group_count(); ++g) {
    stars += static_cast<std::uint64_t>(StarredAttributeCount(g)) * rows(g).size();
  }
  return stars;
}

std::uint64_t GeneralizedTable::SuppressedTupleCount() const {
  std::uint64_t suppressed = 0;
  for (GroupId g = 0; g < group_count(); ++g) {
    if (StarredAttributeCount(g) > 0) suppressed += rows(g).size();
  }
  return suppressed;
}

std::uint32_t GeneralizedTable::StarredAttributeCount(GroupId g) const {
  std::uint32_t count = 0;
  for (Value v : signatures_[g]) {
    if (IsStar(v)) ++count;
  }
  return count;
}

std::string GeneralizedTable::ToString(const Table& table, std::size_t max_rows) const {
  std::ostringstream out;
  std::size_t printed = 0;
  for (GroupId g = 0; g < group_count(); ++g) {
    out << "group " << g << ":\n";
    for (RowId r : rows(g)) {
      if (printed++ >= max_rows) {
        out << "  ...\n";
        return out.str();
      }
      out << "  ";
      for (Value v : signatures_[g]) {
        if (IsStar(v)) {
          out << "* ";
        } else {
          out << v << " ";
        }
      }
      out << "| " << table.sa(r) << "\n";
    }
  }
  return out.str();
}

std::uint64_t GroupStarCount(const Table& table, const std::vector<RowId>& rows) {
  if (rows.empty()) return 0;
  std::uint32_t starred = 0;
  for (AttrId a = 0; a < table.qi_count(); ++a) {
    const Value* col = table.column(a).data();
    const Value first = col[rows[0]];
    for (std::size_t i = 1; i < rows.size(); ++i) {
      if (col[rows[i]] != first) {
        ++starred;
        break;
      }
    }
  }
  return static_cast<std::uint64_t>(starred) * rows.size();
}

std::uint64_t PartitionStarCount(const Table& table, const Partition& partition) {
  std::uint64_t stars = 0;
  for (const auto& group : partition.groups()) stars += GroupStarCount(table, group);
  return stars;
}

}  // namespace ldv
