#include "anonymity/partition.h"

#include <numeric>

namespace ldv {

Partition::Partition(std::vector<std::vector<RowId>> groups) {
  for (auto& g : groups) {
    if (!g.empty()) groups_.push_back(std::move(g));
  }
}

Partition Partition::SingleGroup(const Table& table) {
  std::vector<RowId> all(table.size());
  std::iota(all.begin(), all.end(), 0u);
  Partition p;
  p.AddGroup(std::move(all));
  return p;
}

std::size_t Partition::row_count() const {
  std::size_t n = 0;
  for (const auto& g : groups_) n += g.size();
  return n;
}

void Partition::AddGroup(std::vector<RowId> rows) {
  if (!rows.empty()) groups_.push_back(std::move(rows));
}

void Partition::Append(Partition&& other) {
  for (auto& g : other.groups_) groups_.push_back(std::move(g));
  other.groups_.clear();
}

bool Partition::CoversExactly(const Table& table) const {
  std::vector<bool> seen(table.size(), false);
  for (const auto& g : groups_) {
    for (RowId r : g) {
      if (r >= table.size() || seen[r]) return false;
      seen[r] = true;
    }
  }
  for (bool s : seen) {
    if (!s) return false;
  }
  return true;
}

}  // namespace ldv
