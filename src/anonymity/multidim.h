#ifndef LDIV_ANONYMITY_MULTIDIM_H_
#define LDIV_ANONYMITY_MULTIDIM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "anonymity/generalization.h"
#include "common/table.h"

namespace ldv {

/// An axis-aligned box of QI sub-domains: attribute a is published as the
/// half-open code interval [lo[a], hi[a]). Multi-dimensional generalization
/// (Section 2, Table 5) publishes one box per QI-group; boxes from
/// different groups may overlap.
struct QiBox {
  std::vector<Value> lo;
  std::vector<Value> hi;

  /// Product of interval widths.
  double Volume() const;

  /// True iff the QI vector lies inside the box.
  bool Contains(std::span<const Value> qi) const;
};

/// A multi-dimensional generalization: one (box, rows) pair per QI-group.
class BoxGeneralization {
 public:
  BoxGeneralization() = default;

  void AddGroup(QiBox box, std::vector<RowId> rows);

  /// Moves every (box, rows) pair of `other` to the end, in order.
  /// `other` is left empty; its tiling flag is ignored.
  void Append(BoxGeneralization&& other);

  std::size_t group_count() const { return boxes_.size(); }
  const QiBox& box(std::size_t g) const { return boxes_[g]; }
  const std::vector<RowId>& rows(std::size_t g) const { return rows_[g]; }

  /// Declares that the boxes are pairwise disjoint (they tile the QI
  /// space), so every point lies in at most one box. Set by producers
  /// whose construction guarantees it -- Mondrian's boxes are global cuts
  /// of the parent box -- and exploited by KlDivergenceMultiDim to stop
  /// each point probe at its first hit.
  void MarkTiling() { tiling_ = true; }
  bool tiling() const { return tiling_; }

 private:
  std::vector<QiBox> boxes_;
  std::vector<std::vector<RowId>> rows_;
  bool tiling_ = false;
};

/// The transformation described at the start of Section 6.2: any suppression
/// generalization T* can be relaxed into a multi-dimensional generalization
/// T*' by replacing each star on attribute A with the smallest sub-domain of
/// A covering the group's values (its min..max code range), and each
/// retained value with the singleton interval. T*' is never less accurate
/// than T*, which is why the paper concludes multi-dimensional
/// generalization dominates suppression on utility.
BoxGeneralization RelaxSuppressionToMultiDim(const Table& table,
                                             const GeneralizedTable& generalized);

}  // namespace ldv

#endif  // LDIV_ANONYMITY_MULTIDIM_H_
