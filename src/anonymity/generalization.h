#ifndef LDIV_ANONYMITY_GENERALIZATION_H_
#define LDIV_ANONYMITY_GENERALIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "anonymity/partition.h"
#include "common/table.h"
#include "common/types.h"

namespace ldv {

/// The generalization T* of a table determined by a partition
/// (Definition 1): in each QI-group, an attribute keeps its value if all
/// member tuples agree on it and becomes a star otherwise; SA values are
/// always retained.
class GeneralizedTable {
 public:
  /// Applies Definition 1 to `table` under `partition`.
  GeneralizedTable(const Table& table, const Partition& partition);

  std::size_t group_count() const { return signatures_.size(); }

  /// The generalized QI signature of group `g`; entries are either a
  /// concrete value or kStar.
  const std::vector<Value>& signature(GroupId g) const { return signatures_[g]; }

  /// Rows belonging to group `g` (same indices as the input partition,
  /// empty groups removed).
  const std::vector<RowId>& rows(GroupId g) const { return partition_.group(g); }

  const Partition& partition() const { return partition_; }

  /// Total number of stars in T*: for each group, d_starred * |group|.
  /// This is the objective of Problem 1 (star minimization).
  std::uint64_t StarCount() const;

  /// Number of suppressed tuples, i.e. tuples with at least one star
  /// (the objective of Problem 2, tuple minimization).
  std::uint64_t SuppressedTupleCount() const;

  /// Number of starred attributes in group `g`.
  std::uint32_t StarredAttributeCount(GroupId g) const;

  /// Renders the generalized table (codes and '*'), mainly for examples
  /// and debugging. `max_rows` caps the output.
  std::string ToString(const Table& table, std::size_t max_rows = 32) const;

 private:
  Partition partition_;
  std::vector<std::vector<Value>> signatures_;
  std::size_t qi_count_ = 0;
};

/// Number of stars that Definition 1 assigns to `rows` as a single QI-group:
/// |rows| times the number of attributes on which the rows disagree.
std::uint64_t GroupStarCount(const Table& table, const std::vector<RowId>& rows);

/// Total stars of the generalization induced by `partition` without
/// materializing a GeneralizedTable.
std::uint64_t PartitionStarCount(const Table& table, const Partition& partition);

}  // namespace ldv

#endif  // LDIV_ANONYMITY_GENERALIZATION_H_
