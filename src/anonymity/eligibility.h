#ifndef LDIV_ANONYMITY_ELIGIBILITY_H_
#define LDIV_ANONYMITY_ELIGIBILITY_H_

#include <cstdint>

#include "anonymity/partition.h"
#include "common/histogram.h"
#include "common/table.h"

namespace ldv {

/// Definition 2: a set S of tuples is l-eligible if at most |S|/l of the
/// tuples share an identical SA value, i.e. |S| >= l * h(S).
bool IsEligible(const SaHistogram& histogram, std::uint32_t l);

/// l-eligibility of a subset of rows of `table`.
bool IsEligible(const Table& table, const std::vector<RowId>& rows, std::uint32_t l);

/// l-eligibility of the whole table; by Lemma 1 the star-minimization
/// problem has a solution iff this holds.
bool IsTableEligible(const Table& table, std::uint32_t l);

/// A generalization is l-diverse iff every QI-group is l-eligible
/// (Definition 2 applied to a partition).
bool IsLDiverse(const Table& table, const Partition& partition, std::uint32_t l);

/// The largest l for which `table` is l-eligible: floor(n / h(T)).
/// Returns 0 for an empty table.
std::uint32_t MaxFeasibleL(const Table& table);

/// Builds the SA histogram of a subset of rows of `table`.
SaHistogram RowsHistogram(const Table& table, const std::vector<RowId>& rows);

}  // namespace ldv

#endif  // LDIV_ANONYMITY_ELIGIBILITY_H_
