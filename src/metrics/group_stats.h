#ifndef LDIV_METRICS_GROUP_STATS_H_
#define LDIV_METRICS_GROUP_STATS_H_

#include <cstdint>

#include "anonymity/partition.h"

namespace ldv {

/// Summary statistics of the QI-group sizes of a partition.
struct GroupSizeStats {
  std::size_t group_count = 0;
  std::size_t min_size = 0;
  std::size_t max_size = 0;
  double mean_size = 0.0;
};

GroupSizeStats ComputeGroupSizeStats(const Partition& partition);

}  // namespace ldv

#endif  // LDIV_METRICS_GROUP_STATS_H_
