#include "metrics/group_stats.h"

#include <algorithm>

namespace ldv {

GroupSizeStats ComputeGroupSizeStats(const Partition& partition) {
  GroupSizeStats stats;
  stats.group_count = partition.group_count();
  if (stats.group_count == 0) return stats;
  stats.min_size = partition.group(0).size();
  std::size_t total = 0;
  for (const auto& group : partition.groups()) {
    stats.min_size = std::min(stats.min_size, group.size());
    stats.max_size = std::max(stats.max_size, group.size());
    total += group.size();
  }
  stats.mean_size = static_cast<double>(total) / static_cast<double>(stats.group_count);
  return stats;
}

}  // namespace ldv
