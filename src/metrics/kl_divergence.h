#ifndef LDIV_METRICS_KL_DIVERGENCE_H_
#define LDIV_METRICS_KL_DIVERGENCE_H_

#include "anonymity/generalization.h"
#include "anonymity/multidim.h"
#include "common/table.h"
#include "tds/tds.h"

namespace ldv {

/// Tuning knobs of the parallel KL estimators. Every field is a pure
/// performance parameter: the estimators' chunk geometry and combine order
/// are functions of these values alone, so two runs with the same tuning
/// produce bit-identical doubles at every thread count and SIMD level --
/// but changing a value changes where the partial sums break and therefore
/// the last-bit rounding. Callers that compare KL values across runs must
/// compare runs with the same tuning (the defaults, for every production
/// call site).
struct KlTuning {
  /// Distinct points per parallel chunk; 0 = the tuned default. The
  /// default ParallelReduce grain heuristic targets cheap per-item work,
  /// but a multi-dim KL point costs hundreds of box probes, so the right
  /// grain here is much smaller than for the scan-like kernels.
  std::size_t point_grain = 0;
  /// Rows per KL accumulation block (term staging for the SIMD
  /// p*log(p/q) kernel, used by the multi-dimensional estimator; the
  /// suppression estimator folds inline -- its points are too cheap for
  /// staging to pay); 0 = the tuned default. Rounded up to a multiple of
  /// 4 so the virtual-lane assignment never depends on the block size.
  std::size_t block_rows = 0;
};

/// KL-divergence KL(f, f*) of Section 6.2 (Equation 2) between the pdf f of
/// the microdata over the (d+1)-dimensional space Omega and the pdf f*
/// induced by a suppression generalization: a starred attribute value is
/// treated as uniform over the whole attribute domain, a retained value as a
/// point mass; SA values are never generalized.
///
/// Exact computation in O(n * 2^d): the groups of T* are bucketed by their
/// star mask (at most 2^d masks), and f*(p) is assembled per distinct data
/// point by one lookup per mask.
double KlDivergenceSuppression(const Table& table, const GeneralizedTable& generalized,
                               const KlTuning& tuning = {});

/// KL-divergence for a single-dimensional generalization: each tuple is
/// uniform over its cell (the product of its published sub-domains). Cells
/// tile the space, so f*(p) comes from exactly one cell. O(n).
double KlDivergenceSingleDim(const Table& table, const SingleDimGeneralization& gen);

/// KL-divergence for a multi-dimensional generalization: each tuple is
/// uniform over its group's box; boxes may overlap (Section 2), so f*(p)
/// sums contributions from every box containing p. Candidate boxes per
/// point are pruned through an inverted index on the first QI attribute.
double KlDivergenceMultiDim(const Table& table, const BoxGeneralization& gen,
                            const KlTuning& tuning = {});

/// KL-divergence for an Anatomy release (QI table published exactly, SA
/// linked only through l-diverse buckets): the adversary's density at point
/// p is (1/n) * sum over tuples t with QI(t) = QI(p) of
/// count_{bucket(t)}(SA(p)) / |bucket(t)|.
double KlDivergenceAnatomy(const Table& table, const Partition& buckets);

}  // namespace ldv

#endif  // LDIV_METRICS_KL_DIVERGENCE_H_
