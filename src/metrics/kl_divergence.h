#ifndef LDIV_METRICS_KL_DIVERGENCE_H_
#define LDIV_METRICS_KL_DIVERGENCE_H_

#include "anonymity/generalization.h"
#include "anonymity/multidim.h"
#include "common/table.h"
#include "tds/tds.h"

namespace ldv {

/// KL-divergence KL(f, f*) of Section 6.2 (Equation 2) between the pdf f of
/// the microdata over the (d+1)-dimensional space Omega and the pdf f*
/// induced by a suppression generalization: a starred attribute value is
/// treated as uniform over the whole attribute domain, a retained value as a
/// point mass; SA values are never generalized.
///
/// Exact computation in O(n * 2^d): the groups of T* are bucketed by their
/// star mask (at most 2^d masks), and f*(p) is assembled per distinct data
/// point by one lookup per mask.
double KlDivergenceSuppression(const Table& table, const GeneralizedTable& generalized);

/// KL-divergence for a single-dimensional generalization: each tuple is
/// uniform over its cell (the product of its published sub-domains). Cells
/// tile the space, so f*(p) comes from exactly one cell. O(n).
double KlDivergenceSingleDim(const Table& table, const SingleDimGeneralization& gen);

/// KL-divergence for a multi-dimensional generalization: each tuple is
/// uniform over its group's box; boxes may overlap (Section 2), so f*(p)
/// sums contributions from every box containing p. Candidate boxes per
/// point are pruned through an inverted index on the first QI attribute.
double KlDivergenceMultiDim(const Table& table, const BoxGeneralization& gen);

/// KL-divergence for an Anatomy release (QI table published exactly, SA
/// linked only through l-diverse buckets): the adversary's density at point
/// p is (1/n) * sum over tuples t with QI(t) = QI(p) of
/// count_{bucket(t)}(SA(p)) / |bucket(t)|.
double KlDivergenceAnatomy(const Table& table, const Partition& buckets);

}  // namespace ldv

#endif  // LDIV_METRICS_KL_DIVERGENCE_H_
