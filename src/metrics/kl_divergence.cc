#include "metrics/kl_divergence.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/flat_map.h"
#include "common/parallel.h"
#include "common/simd.h"

namespace ldv {

namespace {

// Mixed-radix packing of a full data point (all QI values plus SA).
// The products involved fit in 64 bits for every schema in this repository
// (checked at runtime).
class PointPacker {
 public:
  explicit PointPacker(const Schema& schema) {
    std::uint64_t stride = 1;
    for (std::size_t a = 0; a < schema.qi_count(); ++a) {
      strides_.push_back(stride);
      Grow(&stride, schema.qi(static_cast<AttrId>(a)).domain_size);
    }
    sa_stride_ = stride;
    Grow(&stride, schema.sa_domain_size());
  }

  std::uint64_t Pack(std::span<const Value> qi, SaValue sa) const {
    std::uint64_t key = static_cast<std::uint64_t>(sa) * sa_stride_;
    for (std::size_t a = 0; a < qi.size(); ++a) key += strides_[a] * qi[a];
    return key;
  }

  /// Packed ids of every row, accumulated column by column (one pass per
  /// QI attribute over its contiguous column, then the SA column when
  /// `include_sa`) -- the columnar replacement for packing row views. A
  /// pure per-row map: fixed row chunks fan out across threads and the
  /// integer accumulation is identical at any thread count.
  std::vector<std::uint64_t> PackAllRows(const Table& table, bool include_sa,
                                         Workspace& ws) const {
    const std::size_t n = table.size();
    std::vector<std::uint64_t> keys(n, 0);
    std::uint64_t* out = keys.data();
    ParallelFor(n, 16384, ws, [&](std::size_t begin, std::size_t end, Workspace&) {
      for (std::size_t a = 0; a < strides_.size(); ++a) {
        const Value* col = table.column(static_cast<AttrId>(a)).data();
        simd::StrideAccumulate(out + begin, col + begin, strides_[a], end - begin);
      }
      if (include_sa) {
        simd::StrideAccumulate(out + begin, table.sa_column().data() + begin, sa_stride_,
                               end - begin);
      }
    });
    return keys;
  }

 private:
  static void Grow(std::uint64_t* stride, std::uint64_t radix) {
    LDIV_CHECK_LT(*stride, std::numeric_limits<std::uint64_t>::max() / (radix + 1))
        << "point id space exceeds 64 bits";
    *stride *= radix;
  }

  std::vector<std::uint64_t> strides_;
  std::uint64_t sa_stride_ = 0;
};

// One distinct data point: its packed id, a representative row and its
// multiplicity.
struct PointCount {
  std::uint64_t key = 0;
  RowId representative = 0;
  std::uint32_t count = 0;
};

// The distinct data points of `table` in first-occurrence row order
// (deterministic, unlike the seed's unordered_map bucket order). The
// FlatMap only resolves duplicates; the sums below iterate the flat
// vector.
std::vector<PointCount> DistinctPoints(const Table& table, const PointPacker& packer,
                                       Workspace& ws) {
  std::vector<std::uint64_t> keys = packer.PackAllRows(table, /*include_sa=*/true, ws);
  std::vector<PointCount> points;
  points.reserve(table.size());
  FlatMap<std::uint32_t> index(table.size());
  for (RowId r = 0; r < table.size(); ++r) {
    auto [slot, inserted] = index.TryEmplace(keys[r], static_cast<std::uint32_t>(points.size()));
    if (inserted) {
      points.push_back(PointCount{keys[r], r, 1});
    } else {
      ++points[*slot].count;
    }
  }
  return points;
}

// Chunk sizes of the parallel per-point accumulation in the estimators
// below. The partial sums are combined in ascending chunk order
// (ParallelReduce), so the floating-point result is a function of the
// grain alone, never of the thread count. The two estimators tune
// differently (bench_micro on SAL-7 100k, ~95k distinct points): a
// suppression point costs a handful of flat-map probes, so small chunks
// just add sink churn (grain 1024 measured 8.65 ms vs 8.13 ms at 4096);
// a multi-dim point costs hundreds of box probes, so smaller chunks help
// the parallel split (56.6 ms at 1024 vs 57.6 ms at 4096). Overridable
// per call through KlTuning::point_grain.
constexpr std::size_t kKlSuppressionPointGrain = 4096;
constexpr std::size_t kKlMultiDimPointGrain = 1024;

// Rows per staged KL-accumulation block: (count, n*f*) pairs are staged in
// blocks of this many terms, then folded through simd::KlAccumulate.
// Must be a multiple of 4 so the kernel's virtual-lane assignment (term i
// -> lane i mod 4) never depends on where the blocks break -- the block
// size is then a pure performance knob. The bench_micro kl_block sweep on
// SAL-7 100k (kl_multidim_columnar workload) measured 1024/4096/16384 rows
// at 58.6/59.5/57.6 ms per estimate on a quiet machine -- within run-to-run
// noise of each other, since the stabbing probes dominate the staged fold.
// 1024 is kept as the default because its 16 KiB of staging is the smallest
// footprint that still amortizes the kernel-call overhead, leaving the most
// cache to the probe-heavy remainder on hosts with less L2 than this one.
constexpr std::size_t kKlBlockRows = 1024;

std::size_t ResolvePointGrain(const KlTuning& tuning, std::size_t fallback) {
  return tuning.point_grain != 0 ? tuning.point_grain : fallback;
}

std::size_t ResolveBlockRows(const KlTuning& tuning) {
  const std::size_t rows = tuning.block_rows != 0 ? tuning.block_rows : kKlBlockRows;
  return (rows + 3) & ~std::size_t{3};  // multiple of 4, minimum 4
}

// Per-chunk sink for KL terms: stages (count, n*f*) pairs in fixed-size
// blocks and folds full blocks through the SIMD p*log(p/q) kernel into
// four virtual-lane accumulators. Every block except the final partial
// one has block_rows terms (a multiple of 4), so term i always lands in
// lane i mod 4 of this chunk and the folded result is bit-identical at
// every SIMD level.
class KlTermSink {
 public:
  KlTermSink(double n, std::size_t block_rows, Workspace& ws)
      : n_(n),
        block_rows_(block_rows),
        counts_s_(ws.F64()),
        fstars_s_(ws.F64()),
        counts_(*counts_s_),
        fstars_(*fstars_s_) {
    counts_.resize(block_rows_);
    fstars_.resize(block_rows_);
  }

  void Add(double count, double fstar_n) {
    counts_[fill_] = count;
    fstars_[fill_] = fstar_n;
    if (++fill_ == block_rows_) Flush();
  }

  /// The chunk's partial sum: lanes folded in fixed order.
  double Finish() {
    Flush();
    return ((acc_[0] + acc_[1]) + acc_[2]) + acc_[3];
  }

 private:
  void Flush() {
    simd::KlAccumulate(counts_.data(), fstars_.data(), n_, fill_, acc_);
    fill_ = 0;
  }

  const double n_;
  const std::size_t block_rows_;
  ScratchVec<double> counts_s_, fstars_s_;
  std::vector<double>& counts_;
  std::vector<double>& fstars_;
  std::size_t fill_ = 0;
  double acc_[4] = {0.0, 0.0, 0.0, 0.0};
};

}  // namespace

double KlDivergenceSuppression(const Table& table, const GeneralizedTable& generalized,
                               const KlTuning& tuning) {
  if (table.empty()) return 0.0;
  const Schema& schema = table.schema();
  const std::size_t d = table.qi_count();
  LDIV_CHECK_LE(d, 20u);
  const double n = static_cast<double>(table.size());
  const std::size_t m = schema.sa_domain_size();

  // Per star-mask aggregation: for each mask, map (projected unstarred
  // values, SA) -> accumulated count / volume over groups with that mask.
  // Masks live in a small flat vector (first-occurrence order); each
  // bucket's mass lives in a FlatMap keyed by the packed projection.
  struct MaskBucket {
    std::uint32_t mask = 0;
    std::vector<AttrId> unstarred;
    std::vector<std::uint64_t> strides;  // one per unstarred attr, then SA
    std::uint64_t sa_stride = 0;
    FlatMap<double> mass;
  };
  std::vector<MaskBucket> buckets;
  FlatMap<std::uint32_t> bucket_index;

  auto bucket_for_mask = [&](std::uint32_t mask) -> MaskBucket& {
    auto [slot, inserted] =
        bucket_index.TryEmplace(mask, static_cast<std::uint32_t>(buckets.size()));
    if (inserted) {
      MaskBucket& b = buckets.emplace_back();
      b.mask = mask;
      std::uint64_t stride = 1;
      for (AttrId a = 0; a < d; ++a) {
        if ((mask >> a) & 1u) continue;  // starred
        b.unstarred.push_back(a);
        b.strides.push_back(stride);
        stride *= schema.qi(a).domain_size;
      }
      b.sa_stride = stride;
    }
    return buckets[*slot];
  };

  // Dense per-group SA counter, reset through the touched list.
  std::vector<std::uint32_t> sa_counts(m, 0);
  std::vector<SaValue> sa_touched;
  for (GroupId g = 0; g < generalized.group_count(); ++g) {
    const std::vector<Value>& sig = generalized.signature(g);
    std::uint32_t mask = 0;
    double volume = 1.0;
    for (AttrId a = 0; a < d; ++a) {
      if (IsStar(sig[a])) {
        mask |= 1u << a;
        volume *= static_cast<double>(schema.qi(a).domain_size);
      }
    }
    MaskBucket& bucket = bucket_for_mask(mask);
    // SA counts of the group.
    sa_touched.clear();
    for (RowId r : generalized.rows(g)) {
      SaValue v = table.sa(r);
      if (sa_counts[v]++ == 0) sa_touched.push_back(v);
    }
    std::uint64_t base = 0;
    for (std::size_t i = 0; i < bucket.unstarred.size(); ++i) {
      base += bucket.strides[i] * sig[bucket.unstarred[i]];
    }
    for (SaValue v : sa_touched) {
      bucket.mass[base + bucket.sa_stride * v] +=
          static_cast<double>(sa_counts[v]) / volume;
      sa_counts[v] = 0;
    }
  }

  // Per-point probes only read the bucket maps, so the distinct points
  // fan out in fixed chunks with one partial sum each, folded in chunk
  // order. The p*log(p/q) fold stays inline here instead of staging
  // through KlTermSink: a suppression point costs only a handful of
  // flat-map probes, and bench_micro measured the sink's staging pass at
  // ~9 ns/point -- lost out-of-order overlap with the probe loads -- a
  // 21% regression on kl_suppression/10k (527 us inline vs 614 us
  // staged). The multi-dim estimator below, whose points are two orders
  // of magnitude heavier, is where the staged SIMD fold pays.
  Workspace ws;
  PointPacker packer(schema);
  const std::vector<PointCount> points = DistinctPoints(table, packer, ws);
  return ParallelReduce(
      points.size(), ResolvePointGrain(tuning, kKlSuppressionPointGrain), ws, 0.0,
      [&](std::size_t begin, std::size_t end, Workspace&) {
        double partial = 0.0;
        for (std::size_t p = begin; p < end; ++p) {
          const PointCount& pc = points[p];
          const RowId rep = pc.representative;
          SaValue sa = table.sa(rep);
          double fstar_n = 0.0;  // n * f*(p)
          for (const MaskBucket& bucket : buckets) {
            std::uint64_t probe;
            if (bucket.mask == 0) {
              // No stars: the bucket's packing coincides with the point
              // packing (same strides in the same order), so the point id
              // is the probe.
              probe = pc.key;
            } else {
              probe = static_cast<std::uint64_t>(sa) * bucket.sa_stride;
              for (std::size_t i = 0; i < bucket.unstarred.size(); ++i) {
                probe += bucket.strides[i] * table.qi(rep, bucket.unstarred[i]);
              }
            }
            const double* mass = bucket.mass.Find(probe);
            if (mass != nullptr) fstar_n += *mass;
          }
          LDIV_CHECK_GT(fstar_n, 0.0) << "f* must cover every data point";
          partial += (pc.count / n) * std::log(pc.count / fstar_n);
        }
        return partial;
      },
      std::plus<double>());
}

double KlDivergenceMultiDim(const Table& table, const BoxGeneralization& gen,
                            const KlTuning& tuning) {
  if (table.empty()) return 0.0;
  const double n = static_cast<double>(table.size());
  const std::size_t m = table.schema().sa_domain_size();
  const std::size_t d = table.qi_count();

  Workspace ws;
  const std::size_t group_count = gen.group_count();
  const std::size_t group_grain = std::max<std::size_t>(64, (group_count + 63) / 64);

  // Per-group SA histograms, flattened to one dense (group, SA) array so
  // the stabbing loop below does one indexed load per hit. Each group
  // writes only its own slice, so groups accumulate in parallel chunks
  // with identical per-group arithmetic.
  std::vector<double> mass(group_count * m, 0.0);  // n*f* weight per (group, SA)
  ParallelFor(group_count, group_grain, ws,
              [&](std::size_t gb, std::size_t ge, Workspace&) {
                for (std::size_t g = gb; g < ge; ++g) {
                  double volume = gen.box(g).Volume();
                  for (RowId r : gen.rows(g)) mass[g * m + table.sa(r)] += 1.0 / volume;
                }
              });

  // Flattened box bounds in struct-of-arrays layout: one lo array and one
  // hi array per attribute, each indexed by group, so the stabbing kernel
  // can gather a vector of candidates' bounds per compare. (Domain codes
  // are far below 2^31, the kernel's signed-compare precondition.)
  std::vector<Value> bounds(2 * d * group_count);
  std::vector<const std::uint32_t*> lo_ptr(d), hi_ptr(d);
  for (std::size_t a = 0; a < d; ++a) {
    lo_ptr[a] = bounds.data() + a * group_count;
    hi_ptr[a] = bounds.data() + (d + a) * group_count;
  }
  ParallelFor(group_count, group_grain, ws,
              [&](std::size_t gb, std::size_t ge, Workspace&) {
                for (std::size_t g = gb; g < ge; ++g) {
                  const QiBox& box = gen.box(g);
                  for (std::size_t a = 0; a < d; ++a) {
                    bounds[a * group_count + g] = box.lo[a];
                    bounds[(d + a) * group_count + g] = box.hi[a];
                  }
                }
              });

  // Tiling generalizations (Mondrian: boxes are global cuts, pairwise
  // disjoint by construction) let the stabbing loop below stop at each
  // point's first hit; overlapping box sets (relaxed suppression) sum
  // every containing box, exactly as before.
  const bool disjoint = gen.tiling();

  // Inverted index on attribute 0 in CSR form: candidate groups per
  // attribute-0 value (count pass, then fill pass -- no per-value vectors).
  const std::size_t attr0_domain = table.schema().qi(0).domain_size;
  std::vector<std::uint32_t> offsets(attr0_domain + 1, 0);
  for (std::size_t g = 0; g < gen.group_count(); ++g) {
    for (Value v = gen.box(g).lo[0]; v < gen.box(g).hi[0]; ++v) ++offsets[v + 1];
  }
  for (std::size_t v = 0; v < attr0_domain; ++v) offsets[v + 1] += offsets[v];
  std::vector<std::uint32_t> candidates(offsets[attr0_domain]);
  {
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t g = 0; g < gen.group_count(); ++g) {
      for (Value v = gen.box(g).lo[0]; v < gen.box(g).hi[0]; ++v) {
        candidates[cursor[v]++] = static_cast<std::uint32_t>(g);
      }
    }
  }

  // Per-attribute column base pointers for the representative-row probes.
  std::vector<const Value*> cols(d);
  for (std::size_t a = 0; a < d; ++a) cols[a] = table.column(static_cast<AttrId>(a)).data();

  // Widest candidate list, so each chunk sizes its hit buffer once.
  std::uint32_t max_candidates = 0;
  for (std::size_t v = 0; v < attr0_domain; ++v) {
    max_candidates = std::max(max_candidates, offsets[v + 1] - offsets[v]);
  }

  // The stabbing loop reads only the index structures built above, so the
  // distinct points fan out in fixed chunks, one partial sum per chunk,
  // folded in chunk order. Attribute 0 is pre-filtered by the candidate
  // index; the remaining attributes run through the SIMD stabbing kernel
  // (several candidates' bounds gathered and compared per step; for a
  // tiling the kernel stops at the first hit).
  PointPacker packer(table.schema());
  const std::vector<PointCount> points = DistinctPoints(table, packer, ws);
  const std::size_t block_rows = ResolveBlockRows(tuning);
  return ParallelReduce(
      points.size(), ResolvePointGrain(tuning, kKlMultiDimPointGrain), ws, 0.0,
      [&](std::size_t begin, std::size_t end, Workspace& cws) {
        auto hits_s = cws.U32();
        std::vector<std::uint32_t>& hits = *hits_s;
        hits.resize(max_candidates);
        auto point_s = cws.U32();
        std::vector<std::uint32_t>& point = *point_s;
        point.resize(d);
        KlTermSink sink(n, block_rows, cws);
        for (std::size_t p = begin; p < end; ++p) {
          const PointCount& pc = points[p];
          const RowId rep = pc.representative;
          const Value qi0 = cols[0][rep];
          SaValue sa = table.sa(rep);
          for (std::size_t a = 1; a < d; ++a) point[a] = cols[a][rep];
          const std::size_t hit_count = simd::StabCandidates(
              candidates.data() + offsets[qi0], offsets[qi0 + 1] - offsets[qi0], point.data(),
              lo_ptr.data(), hi_ptr.data(), d, /*first_only=*/disjoint, hits.data());
          double fstar_n = 0.0;
          for (std::size_t k = 0; k < hit_count; ++k) fstar_n += mass[hits[k] * m + sa];
          LDIV_CHECK_GT(fstar_n, 0.0) << "every point lies in its own group's box";
          sink.Add(static_cast<double>(pc.count), fstar_n);
        }
        return sink.Finish();
      },
      std::plus<double>());
}

double KlDivergenceAnatomy(const Table& table, const Partition& buckets) {
  if (table.empty()) return 0.0;
  const double n = static_cast<double>(table.size());
  const std::size_t m = table.schema().sa_domain_size();

  // Per-bucket SA frequency vectors (count / bucket size).
  std::vector<std::vector<double>> frequency(buckets.group_count());
  std::vector<std::uint32_t> bucket_of(table.size());
  for (GroupId g = 0; g < buckets.group_count(); ++g) {
    frequency[g].assign(m, 0.0);
    for (RowId r : buckets.group(g)) {
      frequency[g][table.sa(r)] += 1.0 / static_cast<double>(buckets.group(g).size());
      bucket_of[r] = g;
    }
  }

  // Rows grouped by exact QI signature (SA excluded), in CSR form: a
  // FlatMap assigns every signature a class id, then a count/fill pass
  // lays the rows out contiguously (ascending row id within a class,
  // matching the seed's push_back order).
  Workspace ws;
  PointPacker packer(table.schema());
  std::vector<std::uint32_t> class_of(table.size());
  std::uint32_t class_count = 0;
  {
    // QI-only keys (no SA term), packed in one column-major sweep.
    std::vector<std::uint64_t> qi_keys = packer.PackAllRows(table, /*include_sa=*/false, ws);
    FlatMap<std::uint32_t> classes(table.size());
    for (RowId r = 0; r < table.size(); ++r) {
      auto [slot, inserted] = classes.TryEmplace(qi_keys[r], class_count);
      class_of[r] = *slot;
      if (inserted) ++class_count;
    }
  }
  std::vector<std::uint32_t> class_offsets(class_count + 1, 0);
  for (RowId r = 0; r < table.size(); ++r) ++class_offsets[class_of[r] + 1];
  for (std::uint32_t c = 0; c < class_count; ++c) class_offsets[c + 1] += class_offsets[c];
  std::vector<RowId> class_rows(table.size());
  {
    std::vector<std::uint32_t> cursor(class_offsets.begin(), class_offsets.end() - 1);
    for (RowId r = 0; r < table.size(); ++r) class_rows[cursor[class_of[r]]++] = r;
  }

  double kl = 0.0;
  for (const PointCount& pc : DistinctPoints(table, packer, ws)) {
    SaValue sa = table.sa(pc.representative);
    std::uint32_t c = class_of[pc.representative];
    double fstar_n = 0.0;
    for (std::uint32_t i = class_offsets[c]; i < class_offsets[c + 1]; ++i) {
      fstar_n += frequency[bucket_of[class_rows[i]]][sa];
    }
    LDIV_CHECK_GT(fstar_n, 0.0);
    double f = static_cast<double>(pc.count) / n;
    kl += f * std::log(static_cast<double>(pc.count) / fstar_n);
  }
  return kl;
}

double KlDivergenceSingleDim(const Table& table, const SingleDimGeneralization& gen) {
  if (table.empty()) return 0.0;
  const double n = static_cast<double>(table.size());
  const std::size_t d = table.qi_count();

  // Row gather buffer reused across the scans below: PackedCellId /
  // CellVolume take a row's QI vector, so the columns are gathered into
  // one scratch vector per probe instead of materializing QiRow views.
  std::vector<const Value*> cols(d);
  for (std::size_t a = 0; a < d; ++a) cols[a] = table.column(static_cast<AttrId>(a)).data();
  std::vector<Value> qi(d);
  auto gather = [&cols, &qi, d](RowId r) {
    for (std::size_t a = 0; a < d; ++a) qi[a] = cols[a][r];
  };

  // Per (cell, SA) counts; cells tile the space so each point probes one.
  FlatMap<std::uint32_t> cell_sa_counts(table.size());
  const std::uint64_t m = table.schema().sa_domain_size();
  for (RowId r = 0; r < table.size(); ++r) {
    gather(r);
    std::uint64_t cell = gen.PackedCellId(qi);
    LDIV_CHECK_LT(cell, std::numeric_limits<std::uint64_t>::max() / m);
    ++cell_sa_counts[cell * m + table.sa(r)];
  }

  Workspace ws;
  PointPacker packer(table.schema());
  double kl = 0.0;
  for (const PointCount& pc : DistinctPoints(table, packer, ws)) {
    gather(pc.representative);
    SaValue sa = table.sa(pc.representative);
    std::uint64_t cell = gen.PackedCellId(qi);
    double volume = gen.CellVolume(qi);
    const std::uint32_t* count = cell_sa_counts.Find(cell * m + sa);
    LDIV_CHECK(count != nullptr);
    double cell_count = static_cast<double>(*count);
    double fstar_n = cell_count / volume;
    double f = static_cast<double>(pc.count) / n;
    kl += f * std::log(static_cast<double>(pc.count) / fstar_n);
  }
  return kl;
}

}  // namespace ldv
