#include "metrics/kl_divergence.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/flat_map.h"
#include "common/parallel.h"

namespace ldv {

namespace {

// Mixed-radix packing of a full data point (all QI values plus SA).
// The products involved fit in 64 bits for every schema in this repository
// (checked at runtime).
class PointPacker {
 public:
  explicit PointPacker(const Schema& schema) {
    std::uint64_t stride = 1;
    for (std::size_t a = 0; a < schema.qi_count(); ++a) {
      strides_.push_back(stride);
      Grow(&stride, schema.qi(static_cast<AttrId>(a)).domain_size);
    }
    sa_stride_ = stride;
    Grow(&stride, schema.sa_domain_size());
  }

  std::uint64_t Pack(std::span<const Value> qi, SaValue sa) const {
    std::uint64_t key = static_cast<std::uint64_t>(sa) * sa_stride_;
    for (std::size_t a = 0; a < qi.size(); ++a) key += strides_[a] * qi[a];
    return key;
  }

  /// Packed ids of every row, accumulated column by column (one pass per
  /// QI attribute over its contiguous column, then the SA column when
  /// `include_sa`) -- the columnar replacement for packing row views. A
  /// pure per-row map: fixed row chunks fan out across threads and the
  /// integer accumulation is identical at any thread count.
  std::vector<std::uint64_t> PackAllRows(const Table& table, bool include_sa,
                                         Workspace& ws) const {
    const std::size_t n = table.size();
    std::vector<std::uint64_t> keys(n, 0);
    std::uint64_t* out = keys.data();
    ParallelFor(n, 16384, ws, [&](std::size_t begin, std::size_t end, Workspace&) {
      for (std::size_t a = 0; a < strides_.size(); ++a) {
        const Value* col = table.column(static_cast<AttrId>(a)).data();
        const std::uint64_t stride = strides_[a];
        for (std::size_t r = begin; r < end; ++r) out[r] += stride * col[r];
      }
      if (include_sa) {
        const SaValue* sa = table.sa_column().data();
        for (std::size_t r = begin; r < end; ++r) out[r] += sa_stride_ * sa[r];
      }
    });
    return keys;
  }

 private:
  static void Grow(std::uint64_t* stride, std::uint64_t radix) {
    LDIV_CHECK_LT(*stride, std::numeric_limits<std::uint64_t>::max() / (radix + 1))
        << "point id space exceeds 64 bits";
    *stride *= radix;
  }

  std::vector<std::uint64_t> strides_;
  std::uint64_t sa_stride_ = 0;
};

// One distinct data point: its packed id, a representative row and its
// multiplicity.
struct PointCount {
  std::uint64_t key = 0;
  RowId representative = 0;
  std::uint32_t count = 0;
};

// The distinct data points of `table` in first-occurrence row order
// (deterministic, unlike the seed's unordered_map bucket order). The
// FlatMap only resolves duplicates; the sums below iterate the flat
// vector.
std::vector<PointCount> DistinctPoints(const Table& table, const PointPacker& packer,
                                       Workspace& ws) {
  std::vector<std::uint64_t> keys = packer.PackAllRows(table, /*include_sa=*/true, ws);
  std::vector<PointCount> points;
  points.reserve(table.size());
  FlatMap<std::uint32_t> index(table.size());
  for (RowId r = 0; r < table.size(); ++r) {
    auto [slot, inserted] = index.TryEmplace(keys[r], static_cast<std::uint32_t>(points.size()));
    if (inserted) {
      points.push_back(PointCount{keys[r], r, 1});
    } else {
      ++points[*slot].count;
    }
  }
  return points;
}

// Chunk size of the parallel per-point accumulation in the estimators
// below. The partial sums are combined in ascending chunk order
// (ParallelReduce), so the floating-point result is a function of this
// constant alone, never of the thread count; tables with fewer points
// than one chunk sum in exactly the historical sequential order.
constexpr std::size_t kPointGrain = 4096;

}  // namespace

double KlDivergenceSuppression(const Table& table, const GeneralizedTable& generalized) {
  if (table.empty()) return 0.0;
  const Schema& schema = table.schema();
  const std::size_t d = table.qi_count();
  LDIV_CHECK_LE(d, 20u);
  const double n = static_cast<double>(table.size());
  const std::size_t m = schema.sa_domain_size();

  // Per star-mask aggregation: for each mask, map (projected unstarred
  // values, SA) -> accumulated count / volume over groups with that mask.
  // Masks live in a small flat vector (first-occurrence order); each
  // bucket's mass lives in a FlatMap keyed by the packed projection.
  struct MaskBucket {
    std::uint32_t mask = 0;
    std::vector<AttrId> unstarred;
    std::vector<std::uint64_t> strides;  // one per unstarred attr, then SA
    std::uint64_t sa_stride = 0;
    FlatMap<double> mass;
  };
  std::vector<MaskBucket> buckets;
  FlatMap<std::uint32_t> bucket_index;

  auto bucket_for_mask = [&](std::uint32_t mask) -> MaskBucket& {
    auto [slot, inserted] =
        bucket_index.TryEmplace(mask, static_cast<std::uint32_t>(buckets.size()));
    if (inserted) {
      MaskBucket& b = buckets.emplace_back();
      b.mask = mask;
      std::uint64_t stride = 1;
      for (AttrId a = 0; a < d; ++a) {
        if ((mask >> a) & 1u) continue;  // starred
        b.unstarred.push_back(a);
        b.strides.push_back(stride);
        stride *= schema.qi(a).domain_size;
      }
      b.sa_stride = stride;
    }
    return buckets[*slot];
  };

  // Dense per-group SA counter, reset through the touched list.
  std::vector<std::uint32_t> sa_counts(m, 0);
  std::vector<SaValue> sa_touched;
  for (GroupId g = 0; g < generalized.group_count(); ++g) {
    const std::vector<Value>& sig = generalized.signature(g);
    std::uint32_t mask = 0;
    double volume = 1.0;
    for (AttrId a = 0; a < d; ++a) {
      if (IsStar(sig[a])) {
        mask |= 1u << a;
        volume *= static_cast<double>(schema.qi(a).domain_size);
      }
    }
    MaskBucket& bucket = bucket_for_mask(mask);
    // SA counts of the group.
    sa_touched.clear();
    for (RowId r : generalized.rows(g)) {
      SaValue v = table.sa(r);
      if (sa_counts[v]++ == 0) sa_touched.push_back(v);
    }
    std::uint64_t base = 0;
    for (std::size_t i = 0; i < bucket.unstarred.size(); ++i) {
      base += bucket.strides[i] * sig[bucket.unstarred[i]];
    }
    for (SaValue v : sa_touched) {
      bucket.mass[base + bucket.sa_stride * v] +=
          static_cast<double>(sa_counts[v]) / volume;
      sa_counts[v] = 0;
    }
  }

  // Per-point probes only read the bucket maps, so the distinct points
  // fan out in fixed chunks with one partial sum each, folded in chunk
  // order.
  Workspace ws;
  PointPacker packer(schema);
  const std::vector<PointCount> points = DistinctPoints(table, packer, ws);
  return ParallelReduce(
      points.size(), kPointGrain, ws, 0.0,
      [&](std::size_t begin, std::size_t end, Workspace&) {
        double partial = 0.0;
        for (std::size_t p = begin; p < end; ++p) {
          const PointCount& pc = points[p];
          const RowId rep = pc.representative;
          SaValue sa = table.sa(rep);
          double fstar_n = 0.0;  // n * f*(p)
          for (const MaskBucket& bucket : buckets) {
            std::uint64_t probe;
            if (bucket.mask == 0) {
              // No stars: the bucket's packing coincides with the point
              // packing (same strides in the same order), so the point id
              // is the probe.
              probe = pc.key;
            } else {
              probe = static_cast<std::uint64_t>(sa) * bucket.sa_stride;
              for (std::size_t i = 0; i < bucket.unstarred.size(); ++i) {
                probe += bucket.strides[i] * table.qi(rep, bucket.unstarred[i]);
              }
            }
            const double* mass = bucket.mass.Find(probe);
            if (mass != nullptr) fstar_n += *mass;
          }
          LDIV_CHECK_GT(fstar_n, 0.0) << "f* must cover every data point";
          double f = static_cast<double>(pc.count) / n;
          partial += f * std::log(static_cast<double>(pc.count) / fstar_n);
        }
        return partial;
      },
      std::plus<double>());
}

double KlDivergenceMultiDim(const Table& table, const BoxGeneralization& gen) {
  if (table.empty()) return 0.0;
  const double n = static_cast<double>(table.size());
  const std::size_t m = table.schema().sa_domain_size();
  const std::size_t d = table.qi_count();

  Workspace ws;
  const std::size_t group_count = gen.group_count();
  const std::size_t group_grain = std::max<std::size_t>(64, (group_count + 63) / 64);

  // Per-group SA histograms, flattened to one dense (group, SA) array so
  // the stabbing loop below does one indexed load per hit. Each group
  // writes only its own slice, so groups accumulate in parallel chunks
  // with identical per-group arithmetic.
  std::vector<double> mass(group_count * m, 0.0);  // n*f* weight per (group, SA)
  ParallelFor(group_count, group_grain, ws,
              [&](std::size_t gb, std::size_t ge, Workspace&) {
                for (std::size_t g = gb; g < ge; ++g) {
                  double volume = gen.box(g).Volume();
                  for (RowId r : gen.rows(g)) mass[g * m + table.sa(r)] += 1.0 / volume;
                }
              });

  // Flattened box bounds (lo/hi interleaved per group) so the containment
  // loop below streams one contiguous array instead of dereferencing two
  // heap vectors per QiBox.
  std::vector<Value> bounds(2 * d * group_count);
  ParallelFor(group_count, group_grain, ws,
              [&](std::size_t gb, std::size_t ge, Workspace&) {
                for (std::size_t g = gb; g < ge; ++g) {
                  const QiBox& box = gen.box(g);
                  for (std::size_t a = 0; a < d; ++a) {
                    bounds[(2 * g) * d + a] = box.lo[a];
                    bounds[(2 * g + 1) * d + a] = box.hi[a];
                  }
                }
              });

  // Tiling generalizations (Mondrian: boxes are global cuts, pairwise
  // disjoint by construction) let the stabbing loop below stop at each
  // point's first hit; overlapping box sets (relaxed suppression) sum
  // every containing box, exactly as before.
  const bool disjoint = gen.tiling();

  // Inverted index on attribute 0 in CSR form: candidate groups per
  // attribute-0 value (count pass, then fill pass -- no per-value vectors).
  const std::size_t attr0_domain = table.schema().qi(0).domain_size;
  std::vector<std::uint32_t> offsets(attr0_domain + 1, 0);
  for (std::size_t g = 0; g < gen.group_count(); ++g) {
    for (Value v = gen.box(g).lo[0]; v < gen.box(g).hi[0]; ++v) ++offsets[v + 1];
  }
  for (std::size_t v = 0; v < attr0_domain; ++v) offsets[v + 1] += offsets[v];
  std::vector<std::uint32_t> candidates(offsets[attr0_domain]);
  {
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t g = 0; g < gen.group_count(); ++g) {
      for (Value v = gen.box(g).lo[0]; v < gen.box(g).hi[0]; ++v) {
        candidates[cursor[v]++] = static_cast<std::uint32_t>(g);
      }
    }
  }

  // Per-attribute column base pointers for the representative-row probes.
  std::vector<const Value*> cols(d);
  for (std::size_t a = 0; a < d; ++a) cols[a] = table.column(static_cast<AttrId>(a)).data();

  // The stabbing loop reads only the index structures built above, so the
  // distinct points fan out in fixed chunks, one partial sum per chunk,
  // folded in chunk order.
  PointPacker packer(table.schema());
  const std::vector<PointCount> points = DistinctPoints(table, packer, ws);
  return ParallelReduce(
      points.size(), kPointGrain, ws, 0.0,
      [&](std::size_t begin, std::size_t end, Workspace&) {
        double partial = 0.0;
        for (std::size_t p = begin; p < end; ++p) {
          const PointCount& pc = points[p];
          const RowId rep = pc.representative;
          const Value qi0 = cols[0][rep];
          SaValue sa = table.sa(rep);
          double fstar_n = 0.0;
          for (std::uint32_t i = offsets[qi0]; i < offsets[qi0 + 1]; ++i) {
            std::uint32_t g = candidates[i];
            const Value* lo = bounds.data() + (2 * g) * d;
            const Value* hi = lo + d;
            // Attribute 0 is already filtered by the candidate index.
            bool inside = true;
            for (std::size_t a = 1; a < d; ++a) {
              const Value v = cols[a][rep];
              if (v < lo[a] || v >= hi[a]) {
                inside = false;
                break;
              }
            }
            if (inside) {
              fstar_n += mass[g * m + sa];
              if (disjoint) break;  // tiling boxes: exactly one can contain p
            }
          }
          LDIV_CHECK_GT(fstar_n, 0.0) << "every point lies in its own group's box";
          double f = static_cast<double>(pc.count) / n;
          partial += f * std::log(static_cast<double>(pc.count) / fstar_n);
        }
        return partial;
      },
      std::plus<double>());
}

double KlDivergenceAnatomy(const Table& table, const Partition& buckets) {
  if (table.empty()) return 0.0;
  const double n = static_cast<double>(table.size());
  const std::size_t m = table.schema().sa_domain_size();

  // Per-bucket SA frequency vectors (count / bucket size).
  std::vector<std::vector<double>> frequency(buckets.group_count());
  std::vector<std::uint32_t> bucket_of(table.size());
  for (GroupId g = 0; g < buckets.group_count(); ++g) {
    frequency[g].assign(m, 0.0);
    for (RowId r : buckets.group(g)) {
      frequency[g][table.sa(r)] += 1.0 / static_cast<double>(buckets.group(g).size());
      bucket_of[r] = g;
    }
  }

  // Rows grouped by exact QI signature (SA excluded), in CSR form: a
  // FlatMap assigns every signature a class id, then a count/fill pass
  // lays the rows out contiguously (ascending row id within a class,
  // matching the seed's push_back order).
  Workspace ws;
  PointPacker packer(table.schema());
  std::vector<std::uint32_t> class_of(table.size());
  std::uint32_t class_count = 0;
  {
    // QI-only keys (no SA term), packed in one column-major sweep.
    std::vector<std::uint64_t> qi_keys = packer.PackAllRows(table, /*include_sa=*/false, ws);
    FlatMap<std::uint32_t> classes(table.size());
    for (RowId r = 0; r < table.size(); ++r) {
      auto [slot, inserted] = classes.TryEmplace(qi_keys[r], class_count);
      class_of[r] = *slot;
      if (inserted) ++class_count;
    }
  }
  std::vector<std::uint32_t> class_offsets(class_count + 1, 0);
  for (RowId r = 0; r < table.size(); ++r) ++class_offsets[class_of[r] + 1];
  for (std::uint32_t c = 0; c < class_count; ++c) class_offsets[c + 1] += class_offsets[c];
  std::vector<RowId> class_rows(table.size());
  {
    std::vector<std::uint32_t> cursor(class_offsets.begin(), class_offsets.end() - 1);
    for (RowId r = 0; r < table.size(); ++r) class_rows[cursor[class_of[r]]++] = r;
  }

  double kl = 0.0;
  for (const PointCount& pc : DistinctPoints(table, packer, ws)) {
    SaValue sa = table.sa(pc.representative);
    std::uint32_t c = class_of[pc.representative];
    double fstar_n = 0.0;
    for (std::uint32_t i = class_offsets[c]; i < class_offsets[c + 1]; ++i) {
      fstar_n += frequency[bucket_of[class_rows[i]]][sa];
    }
    LDIV_CHECK_GT(fstar_n, 0.0);
    double f = static_cast<double>(pc.count) / n;
    kl += f * std::log(static_cast<double>(pc.count) / fstar_n);
  }
  return kl;
}

double KlDivergenceSingleDim(const Table& table, const SingleDimGeneralization& gen) {
  if (table.empty()) return 0.0;
  const double n = static_cast<double>(table.size());
  const std::size_t d = table.qi_count();

  // Row gather buffer reused across the scans below: PackedCellId /
  // CellVolume take a row's QI vector, so the columns are gathered into
  // one scratch vector per probe instead of materializing QiRow views.
  std::vector<const Value*> cols(d);
  for (std::size_t a = 0; a < d; ++a) cols[a] = table.column(static_cast<AttrId>(a)).data();
  std::vector<Value> qi(d);
  auto gather = [&cols, &qi, d](RowId r) {
    for (std::size_t a = 0; a < d; ++a) qi[a] = cols[a][r];
  };

  // Per (cell, SA) counts; cells tile the space so each point probes one.
  FlatMap<std::uint32_t> cell_sa_counts(table.size());
  const std::uint64_t m = table.schema().sa_domain_size();
  for (RowId r = 0; r < table.size(); ++r) {
    gather(r);
    std::uint64_t cell = gen.PackedCellId(qi);
    LDIV_CHECK_LT(cell, std::numeric_limits<std::uint64_t>::max() / m);
    ++cell_sa_counts[cell * m + table.sa(r)];
  }

  Workspace ws;
  PointPacker packer(table.schema());
  double kl = 0.0;
  for (const PointCount& pc : DistinctPoints(table, packer, ws)) {
    gather(pc.representative);
    SaValue sa = table.sa(pc.representative);
    std::uint64_t cell = gen.PackedCellId(qi);
    double volume = gen.CellVolume(qi);
    const std::uint32_t* count = cell_sa_counts.Find(cell * m + sa);
    LDIV_CHECK(count != nullptr);
    double cell_count = static_cast<double>(*count);
    double fstar_n = cell_count / volume;
    double f = static_cast<double>(pc.count) / n;
    kl += f * std::log(static_cast<double>(pc.count) / fstar_n);
  }
  return kl;
}

}  // namespace ldv
