#include "metrics/kl_divergence.h"

#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace ldv {

namespace {

// Mixed-radix packing of a full data point (all QI values plus SA).
// The products involved fit in 64 bits for every schema in this repository
// (checked at runtime).
class PointPacker {
 public:
  explicit PointPacker(const Schema& schema) {
    std::uint64_t stride = 1;
    for (std::size_t a = 0; a < schema.qi_count(); ++a) {
      strides_.push_back(stride);
      Grow(&stride, schema.qi(static_cast<AttrId>(a)).domain_size);
    }
    sa_stride_ = stride;
    Grow(&stride, schema.sa_domain_size());
  }

  std::uint64_t Pack(std::span<const Value> qi, SaValue sa) const {
    std::uint64_t key = static_cast<std::uint64_t>(sa) * sa_stride_;
    for (std::size_t a = 0; a < qi.size(); ++a) key += strides_[a] * qi[a];
    return key;
  }

 private:
  static void Grow(std::uint64_t* stride, std::uint64_t radix) {
    LDIV_CHECK_LT(*stride, std::numeric_limits<std::uint64_t>::max() / (radix + 1))
        << "point id space exceeds 64 bits";
    *stride *= radix;
  }

  std::vector<std::uint64_t> strides_;
  std::uint64_t sa_stride_ = 0;
};

// Counts of distinct data points, each with one representative row.
struct PointCount {
  RowId representative = 0;
  std::uint32_t count = 0;
};

std::unordered_map<std::uint64_t, PointCount> DistinctPoints(const Table& table,
                                                             const PointPacker& packer) {
  std::unordered_map<std::uint64_t, PointCount> points;
  points.reserve(table.size());
  for (RowId r = 0; r < table.size(); ++r) {
    std::uint64_t key = packer.Pack(table.qi_row(r), table.sa(r));
    auto [it, inserted] = points.try_emplace(key, PointCount{r, 0});
    ++it->second.count;
  }
  return points;
}

}  // namespace

double KlDivergenceSuppression(const Table& table, const GeneralizedTable& generalized) {
  if (table.empty()) return 0.0;
  const Schema& schema = table.schema();
  const std::size_t d = table.qi_count();
  LDIV_CHECK_LE(d, 20u);
  const double n = static_cast<double>(table.size());

  // Per star-mask aggregation: for each mask, map (projected unstarred
  // values, SA) -> accumulated count / volume over groups with that mask.
  struct MaskBucket {
    std::vector<AttrId> unstarred;
    std::vector<std::uint64_t> strides;  // one per unstarred attr, then SA
    std::uint64_t sa_stride = 0;
    std::unordered_map<std::uint64_t, double> mass;
  };
  std::unordered_map<std::uint32_t, MaskBucket> buckets;

  auto bucket_for_mask = [&](std::uint32_t mask) -> MaskBucket& {
    auto [it, inserted] = buckets.try_emplace(mask);
    if (inserted) {
      MaskBucket& b = it->second;
      std::uint64_t stride = 1;
      for (AttrId a = 0; a < d; ++a) {
        if ((mask >> a) & 1u) continue;  // starred
        b.unstarred.push_back(a);
        b.strides.push_back(stride);
        stride *= schema.qi(a).domain_size;
      }
      b.sa_stride = stride;
    }
    return it->second;
  };

  for (GroupId g = 0; g < generalized.group_count(); ++g) {
    const std::vector<Value>& sig = generalized.signature(g);
    std::uint32_t mask = 0;
    double volume = 1.0;
    for (AttrId a = 0; a < d; ++a) {
      if (IsStar(sig[a])) {
        mask |= 1u << a;
        volume *= static_cast<double>(schema.qi(a).domain_size);
      }
    }
    MaskBucket& bucket = bucket_for_mask(mask);
    // SA counts of the group.
    std::unordered_map<SaValue, std::uint32_t> sa_counts;
    for (RowId r : generalized.rows(g)) ++sa_counts[table.sa(r)];
    std::uint64_t base = 0;
    for (std::size_t i = 0; i < bucket.unstarred.size(); ++i) {
      base += bucket.strides[i] * sig[bucket.unstarred[i]];
    }
    for (const auto& [sa, count] : sa_counts) {
      bucket.mass[base + bucket.sa_stride * sa] += static_cast<double>(count) / volume;
    }
  }

  PointPacker packer(schema);
  double kl = 0.0;
  for (const auto& [key, pc] : DistinctPoints(table, packer)) {
    (void)key;
    auto qi = table.qi_row(pc.representative);
    SaValue sa = table.sa(pc.representative);
    double fstar_n = 0.0;  // n * f*(p)
    for (auto& [mask, bucket] : buckets) {
      (void)mask;
      std::uint64_t probe = static_cast<std::uint64_t>(sa) * bucket.sa_stride;
      for (std::size_t i = 0; i < bucket.unstarred.size(); ++i) {
        probe += bucket.strides[i] * qi[bucket.unstarred[i]];
      }
      auto it = bucket.mass.find(probe);
      if (it != bucket.mass.end()) fstar_n += it->second;
    }
    LDIV_CHECK_GT(fstar_n, 0.0) << "f* must cover every data point";
    double f = static_cast<double>(pc.count) / n;
    kl += f * std::log(static_cast<double>(pc.count) / fstar_n);
  }
  return kl;
}

double KlDivergenceMultiDim(const Table& table, const BoxGeneralization& gen) {
  if (table.empty()) return 0.0;
  const double n = static_cast<double>(table.size());
  const std::size_t m = table.schema().sa_domain_size();

  // Per-group SA histograms (sparse) and volumes.
  std::vector<std::vector<double>> mass(gen.group_count());  // per group: n*f* weight per SA
  for (std::size_t g = 0; g < gen.group_count(); ++g) {
    mass[g].assign(m, 0.0);
    double volume = gen.box(g).Volume();
    for (RowId r : gen.rows(g)) mass[g][table.sa(r)] += 1.0 / volume;
  }

  // Inverted index on attribute 0: candidate groups per attribute-0 value.
  const std::size_t attr0_domain = table.schema().qi(0).domain_size;
  std::vector<std::vector<std::uint32_t>> candidates(attr0_domain);
  for (std::size_t g = 0; g < gen.group_count(); ++g) {
    for (Value v = gen.box(g).lo[0]; v < gen.box(g).hi[0]; ++v) {
      candidates[v].push_back(static_cast<std::uint32_t>(g));
    }
  }

  PointPacker packer(table.schema());
  double kl = 0.0;
  for (const auto& [key, pc] : DistinctPoints(table, packer)) {
    (void)key;
    auto qi = table.qi_row(pc.representative);
    SaValue sa = table.sa(pc.representative);
    double fstar_n = 0.0;
    for (std::uint32_t g : candidates[qi[0]]) {
      if (gen.box(g).Contains(qi)) fstar_n += mass[g][sa];
    }
    LDIV_CHECK_GT(fstar_n, 0.0) << "every point lies in its own group's box";
    double f = static_cast<double>(pc.count) / n;
    kl += f * std::log(static_cast<double>(pc.count) / fstar_n);
  }
  return kl;
}

double KlDivergenceAnatomy(const Table& table, const Partition& buckets) {
  if (table.empty()) return 0.0;
  const double n = static_cast<double>(table.size());
  const std::size_t m = table.schema().sa_domain_size();

  // Per-bucket SA frequency vectors (count / bucket size).
  std::vector<std::vector<double>> frequency(buckets.group_count());
  std::vector<std::uint32_t> bucket_of(table.size());
  for (GroupId g = 0; g < buckets.group_count(); ++g) {
    frequency[g].assign(m, 0.0);
    for (RowId r : buckets.group(g)) {
      frequency[g][table.sa(r)] += 1.0 / static_cast<double>(buckets.group(g).size());
      bucket_of[r] = g;
    }
  }

  // Rows grouped by exact QI signature (SA excluded): hash of the packed
  // QI vector -> row list.
  std::unordered_map<std::uint64_t, std::vector<RowId>> rows_by_qi;
  {
    // Reuse the point packer with a fake SA of 0 to pack only QI values.
    PointPacker packer(table.schema());
    rows_by_qi.reserve(table.size());
    for (RowId r = 0; r < table.size(); ++r) {
      rows_by_qi[packer.Pack(table.qi_row(r), 0)].push_back(r);
    }
  }

  PointPacker packer(table.schema());
  double kl = 0.0;
  for (const auto& [key, pc] : DistinctPoints(table, packer)) {
    (void)key;
    auto qi = table.qi_row(pc.representative);
    SaValue sa = table.sa(pc.representative);
    double fstar_n = 0.0;
    for (RowId t : rows_by_qi.at(packer.Pack(qi, 0))) {
      fstar_n += frequency[bucket_of[t]][sa];
    }
    LDIV_CHECK_GT(fstar_n, 0.0);
    double f = static_cast<double>(pc.count) / n;
    kl += f * std::log(static_cast<double>(pc.count) / fstar_n);
  }
  return kl;
}

double KlDivergenceSingleDim(const Table& table, const SingleDimGeneralization& gen) {
  if (table.empty()) return 0.0;
  const double n = static_cast<double>(table.size());

  // Per (cell, SA) counts; cells tile the space so each point probes one.
  std::unordered_map<std::uint64_t, std::uint32_t> cell_sa_counts;
  cell_sa_counts.reserve(table.size());
  const std::uint64_t m = table.schema().sa_domain_size();
  for (RowId r = 0; r < table.size(); ++r) {
    std::uint64_t cell = gen.PackedCellId(table.qi_row(r));
    LDIV_CHECK_LT(cell, std::numeric_limits<std::uint64_t>::max() / m);
    ++cell_sa_counts[cell * m + table.sa(r)];
  }

  PointPacker packer(table.schema());
  double kl = 0.0;
  for (const auto& [key, pc] : DistinctPoints(table, packer)) {
    (void)key;
    auto qi = table.qi_row(pc.representative);
    SaValue sa = table.sa(pc.representative);
    std::uint64_t cell = gen.PackedCellId(qi);
    double volume = gen.CellVolume(qi);
    double cell_count = static_cast<double>(cell_sa_counts.at(cell * m + sa));
    double fstar_n = cell_count / volume;
    double f = static_cast<double>(pc.count) / n;
    kl += f * std::log(static_cast<double>(pc.count) / fstar_n);
  }
  return kl;
}

}  // namespace ldv
