// AVX2 kernel tier: 256-bit lanes (four 64-bit rows or eight 32-bit
// candidates per step) plus hardware gathers for the index-chasing
// kernels. This translation unit alone is compiled with -mavx2 (see
// CMakeLists); its code only runs after the CPUID dispatch in simd.cc has
// confirmed AVX2, so no other object file ever contains AVX2 encodings.
//
// Compiled with -ffp-contract=off: KlAccumulate's bit-equality across
// tiers requires single-rounded multiplies and adds.

#include "common/simd.h"

#ifdef __AVX2__

#include <immintrin.h>

#include <cmath>

namespace ldv {
namespace simd {
namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;  // 2^40 + 435

// (h ^ v) * kFnvPrime on four 64-bit lanes; same shift-and-add product
// decomposition as the SSE2 tier, twice as wide.
void FnvFoldColumnAvx2(std::uint64_t* hashes, const std::uint32_t* col, std::size_t n) {
  const __m256i c435 = _mm256_set1_epi64x(435);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vh = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hashes + i));
    const __m256i vc = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + i)));
    const __m256i t = _mm256_xor_si256(vh, vc);
    const __m256i lo = _mm256_mul_epu32(t, c435);
    const __m256i hi = _mm256_mul_epu32(_mm256_srli_epi64(t, 32), c435);
    const __m256i r = _mm256_add_epi64(_mm256_slli_epi64(t, 40),
                                       _mm256_add_epi64(lo, _mm256_slli_epi64(hi, 32)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hashes + i), r);
  }
  for (; i < n; ++i) hashes[i] = (hashes[i] ^ col[i]) * kFnvPrime;
}

void StrideAccumulateAvx2(std::uint64_t* acc, const std::uint32_t* col, std::uint64_t stride,
                          std::size_t n) {
  const __m256i vsl = _mm256_set1_epi64x(static_cast<long long>(stride & 0xffffffffULL));
  const __m256i vsh = _mm256_set1_epi64x(static_cast<long long>(stride >> 32));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i vc = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + i)));
    const __m256i prod = _mm256_add_epi64(_mm256_mul_epu32(vc, vsl),
                                          _mm256_slli_epi64(_mm256_mul_epu32(vc, vsh), 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), _mm256_add_epi64(va, prod));
  }
  for (; i < n; ++i) acc[i] += stride * col[i];
}

void MinMaxGatherU32Avx2(const std::uint32_t* values, const std::uint32_t* idx, std::size_t n,
                         std::uint32_t* mn, std::uint32_t* mx) {
  std::uint32_t lo = values[idx[0]], hi = lo;
  std::size_t i = 0;
  if (n >= 8) {
    __m256i vlo = _mm256_set1_epi32(static_cast<int>(lo));
    __m256i vhi = vlo;
    for (; i + 8 <= n; i += 8) {
      const __m256i vidx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
      const __m256i v = _mm256_i32gather_epi32(reinterpret_cast<const int*>(values), vidx, 4);
      vlo = _mm256_min_epu32(vlo, v);
      vhi = _mm256_max_epu32(vhi, v);
    }
    alignas(32) std::uint32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vlo);
    for (int j = 0; j < 8; ++j) lo = lanes[j] < lo ? lanes[j] : lo;
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vhi);
    for (int j = 0; j < 8; ++j) hi = lanes[j] > hi ? lanes[j] : hi;
  }
  for (; i < n; ++i) {
    const std::uint32_t v = values[idx[i]];
    lo = v < lo ? v : lo;
    hi = v > hi ? v : hi;
  }
  *mn = lo;
  *mx = hi;
}

void GatherU32Avx2(const std::uint32_t* values, const std::uint32_t* idx, std::size_t n,
                   std::uint32_t* out) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vidx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    const __m256i v = _mm256_i32gather_epi32(reinterpret_cast<const int*>(values), vidx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
  for (; i < n; ++i) out[i] = values[idx[i]];
}

// Eight candidates per step: the per-attribute lo/hi bounds come in
// through hardware gathers over the SoA bound arrays, the containment
// test is two signed compares (coordinates < 2^31 by contract), and hits
// leave through the movemask in ascending candidate order.
std::size_t StabCandidatesAvx2(const std::uint32_t* candidates, std::size_t n,
                               const std::uint32_t* point, const std::uint32_t* const* lo,
                               const std::uint32_t* const* hi, std::size_t d, bool first_only,
                               std::uint32_t* hits) {
  const __m256i ones = _mm256_set1_epi32(-1);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vg = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(candidates + i));
    __m256i inside = ones;
    for (std::size_t a = 1; a < d; ++a) {
      const __m256i vpt = _mm256_set1_epi32(static_cast<int>(point[a]));
      const __m256i vlo =
          _mm256_i32gather_epi32(reinterpret_cast<const int*>(lo[a]), vg, 4);
      const __m256i vhi =
          _mm256_i32gather_epi32(reinterpret_cast<const int*>(hi[a]), vg, 4);
      const __m256i ge = _mm256_andnot_si256(_mm256_cmpgt_epi32(vlo, vpt), ones);
      const __m256i lt = _mm256_cmpgt_epi32(vhi, vpt);
      inside = _mm256_and_si256(inside, _mm256_and_si256(ge, lt));
      if (_mm256_movemask_ps(_mm256_castsi256_ps(inside)) == 0) break;
    }
    int m = _mm256_movemask_ps(_mm256_castsi256_ps(inside));
    while (m != 0) {
      const int j = __builtin_ctz(static_cast<unsigned>(m));
      hits[count++] = candidates[i + static_cast<std::size_t>(j)];
      if (first_only) return count;
      m &= m - 1;
    }
  }
  for (; i < n; ++i) {
    const std::uint32_t g = candidates[i];
    bool inside = true;
    for (std::size_t a = 1; a < d; ++a) {
      const std::uint32_t v = point[a];
      if (v < lo[a][g] || v >= hi[a][g]) {
        inside = false;
        break;
      }
    }
    if (inside) {
      hits[count++] = g;
      if (first_only) break;
    }
  }
  return count;
}

// One 4-double register is exactly the four virtual lanes of the KL
// accumulation geometry; logs still go through scalar std::log on the
// single-rounded quotients, so every tier adds the identical term
// sequence into the identical lane.
void KlAccumulateAvx2(const double* count, const double* fstar_n, double n, std::size_t len,
                      double acc[4]) {
  __m256d vacc = _mm256_loadu_pd(acc);
  const __m256d vn = _mm256_set1_pd(n);
  alignas(32) double ratio[4], lg[4];
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256d c = _mm256_loadu_pd(count + i);
    _mm256_store_pd(ratio, _mm256_div_pd(c, _mm256_loadu_pd(fstar_n + i)));
    lg[0] = std::log(ratio[0]);
    lg[1] = std::log(ratio[1]);
    lg[2] = std::log(ratio[2]);
    lg[3] = std::log(ratio[3]);
    vacc = _mm256_add_pd(vacc, _mm256_mul_pd(_mm256_div_pd(c, vn), _mm256_load_pd(lg)));
  }
  _mm256_storeu_pd(acc, vacc);
  for (; i < len; ++i) {
    const double r = count[i] / fstar_n[i];
    const double l = std::log(r);
    acc[i & 3] += (count[i] / n) * l;
  }
}

// Four rows per step on 64-bit lanes; same branchless mask form as the
// SSE2 tier (see simd_sse2.cc for the derivation).
void HilbertEncodeBlockAvx2(const std::uint32_t* const* cols, std::size_t d, std::uint32_t bits,
                            std::uint32_t shift, std::size_t row_begin, std::size_t count,
                            std::uint64_t* out) {
  const std::uint32_t m = 1u << (bits - 1);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi64x(1);
  const __m128i vshift = _mm_cvtsi32_si128(static_cast<int>(shift));
  __m256i x[64];
  std::size_t r = 0;
  for (; r + 4 <= count; r += 4) {
    for (std::size_t i = 0; i < d; ++i) {
      const __m128i v = _mm_srl_epi32(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols[i] + row_begin + r)), vshift);
      x[i] = _mm256_cvtepu32_epi64(v);
    }
    for (std::uint32_t q = m; q > 1; q >>= 1) {
      const __m256i vp = _mm256_set1_epi64x(q - 1);
      const __m128i vq = _mm_cvtsi32_si128(__builtin_ctz(q));
      for (std::size_t i = 0; i < d; ++i) {
        const __m256i bit = _mm256_and_si256(_mm256_srl_epi64(x[i], vq), one);
        const __m256i sel = _mm256_sub_epi64(zero, bit);
        const __m256i t = _mm256_and_si256(_mm256_xor_si256(x[0], x[i]), vp);
        const __m256i tn = _mm256_andnot_si256(sel, t);
        x[0] = _mm256_xor_si256(x[0], _mm256_or_si256(tn, _mm256_and_si256(sel, vp)));
        x[i] = _mm256_xor_si256(x[i], tn);
      }
    }
    for (std::size_t i = 1; i < d; ++i) x[i] = _mm256_xor_si256(x[i], x[i - 1]);
    __m256i vt = zero;
    for (std::uint32_t q = m; q > 1; q >>= 1) {
      const __m256i bit =
          _mm256_and_si256(_mm256_srl_epi64(x[d - 1], _mm_cvtsi32_si128(__builtin_ctz(q))), one);
      vt = _mm256_xor_si256(
          vt, _mm256_and_si256(_mm256_sub_epi64(zero, bit), _mm256_set1_epi64x(q - 1)));
    }
    for (std::size_t i = 0; i < d; ++i) x[i] = _mm256_xor_si256(x[i], vt);
    __m256i index = zero;
    for (std::uint32_t bit = bits; bit-- > 0;) {
      const __m128i vb = _mm_cvtsi32_si128(static_cast<int>(bit));
      for (std::size_t i = 0; i < d; ++i) {
        index = _mm256_or_si256(_mm256_slli_epi64(index, 1),
                                _mm256_and_si256(_mm256_srl_epi64(x[i], vb), one));
      }
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + r), index);
  }
  if (r < count) {
    detail::kScalarKernels.hilbert_encode_block(cols, d, bits, shift, row_begin + r, count - r,
                                                out + r);
  }
}

}  // namespace

namespace detail {

const Kernels* Avx2Kernels() {
  static const Kernels table = {
      FnvFoldColumnAvx2,  StrideAccumulateAvx2, MinMaxGatherU32Avx2, GatherU32Avx2,
      StabCandidatesAvx2, KlAccumulateAvx2,     HilbertEncodeBlockAvx2,
  };
  return &table;
}

}  // namespace detail
}  // namespace simd
}  // namespace ldv

#else  // !__AVX2__

namespace ldv {
namespace simd {
namespace detail {

const Kernels* Avx2Kernels() { return nullptr; }

}  // namespace detail
}  // namespace simd
}  // namespace ldv

#endif  // __AVX2__
