#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

namespace ldv {

namespace {

// True on threads owned by the pool and on a caller currently inside a
// parallel region, so a ParallelFor issued from inside a chunk body runs
// inline instead of deadlocking on the run mutex.
thread_local bool t_in_parallel_region = false;

std::atomic<unsigned> g_thread_budget{0};  // 0 = auto
std::atomic<unsigned> g_inner_threads{0};  // 0 = follow the budget

// The work-stealing-lite pool: persistent workers claim chunk indices
// from one shared atomic counter (dynamic load balancing without
// per-chunk queues). One parallel region runs at a time (run_mutex_);
// the calling thread participates, so `threads == 1` never touches the
// pool at all.
class ThreadPool {
 public:
  static ThreadPool& Global() {
    static ThreadPool pool;
    return pool;
  }

  void Run(unsigned threads, std::size_t n, std::size_t grain, Workspace& caller_ws,
           const ParallelChunkFn& fn) {
    const std::size_t chunk_count = (n + grain - 1) / grain;
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    const unsigned helpers =
        static_cast<unsigned>(std::min<std::size_t>(threads - 1, chunk_count - 1));
    EnsureWorkers(helpers);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      task_fn_ = &fn;
      task_n_ = n;
      task_grain_ = grain;
      task_chunks_ = chunk_count;
      next_chunk_.store(0, std::memory_order_relaxed);
      pending_ = helpers;
      ++epoch_;
      helpers_wanted_ = helpers;
    }
    work_cv_.notify_all();
    t_in_parallel_region = true;
    RunChunks(caller_ws);
    t_in_parallel_region = false;
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [this] { return pending_ == 0; });
      task_fn_ = nullptr;
      error = task_error_;
      task_error_ = nullptr;
    }
    // A chunk that threw (on any thread) rethrows HERE, on the calling
    // thread, after every worker has left the region -- a deep I/O
    // failure inside a parallel kernel surfaces to the engine boundary
    // instead of terminating the process from a pool thread.
    if (error) std::rethrow_exception(error);
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& worker : workers_) worker->thread.join();
  }

 private:
  struct Worker {
    explicit Worker(ThreadPool* pool, unsigned index) {
      thread = std::thread([pool, index] { pool->WorkerLoop(index); });
    }
    std::thread thread;
    Workspace workspace;
  };

  void EnsureWorkers(unsigned count) {
    while (workers_.size() < count) {
      workers_.push_back(
          std::make_unique<Worker>(this, static_cast<unsigned>(workers_.size())));
    }
  }

  void RunChunks(Workspace& ws) {
    for (;;) {
      std::size_t chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= task_chunks_) return;
      std::size_t begin = chunk * task_grain_;
      std::size_t end = std::min(task_n_, begin + task_grain_);
      try {
        (*task_fn_)(begin, end, ws);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (!task_error_) task_error_ = std::current_exception();
        }
        // Skip the remaining chunks so every thread leaves the region
        // promptly; Run() rethrows on the calling thread.
        next_chunk_.store(task_chunks_, std::memory_order_relaxed);
      }
    }
  }

  void WorkerLoop(unsigned index) {
    t_in_parallel_region = true;
    std::uint64_t seen_epoch = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] {
          return shutdown_ || (epoch_ != seen_epoch && index < helpers_wanted_);
        });
        if (shutdown_) return;
        seen_epoch = epoch_;
      }
      RunChunks(workers_[index]->workspace);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::mutex run_mutex_;  // serializes whole parallel regions
  std::mutex mutex_;      // protects the task state below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::unique_ptr<Worker>> workers_;
  const ParallelChunkFn* task_fn_ = nullptr;
  std::exception_ptr task_error_;  // first chunk exception of the region
  std::size_t task_n_ = 0;
  std::size_t task_grain_ = 1;
  std::size_t task_chunks_ = 0;
  std::atomic<std::size_t> next_chunk_{0};
  unsigned pending_ = 0;
  unsigned helpers_wanted_ = 0;
  std::uint64_t epoch_ = 0;
  bool shutdown_ = false;
};

}  // namespace

unsigned HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void SetThreadBudget(unsigned threads) {
  g_thread_budget.store(threads, std::memory_order_relaxed);
}

unsigned ThreadBudget() {
  unsigned budget = g_thread_budget.load(std::memory_order_relaxed);
  return budget == 0 ? HardwareThreads() : budget;
}

unsigned InnerThreads() {
  unsigned inner = g_inner_threads.load(std::memory_order_relaxed);
  return inner == 0 ? ThreadBudget() : inner;
}

InnerThreadsScope::InnerThreadsScope(unsigned threads)
    : previous_(g_inner_threads.exchange(threads == 0 ? 1 : threads,
                                         std::memory_order_relaxed)) {}

InnerThreadsScope::~InnerThreadsScope() {
  g_inner_threads.store(previous_, std::memory_order_relaxed);
}

void ParallelForThreads(unsigned threads, std::size_t n, std::size_t grain, Workspace& ws,
                        const ParallelChunkFn& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunk_count = (n + grain - 1) / grain;
  if (threads <= 1 || chunk_count <= 1 || t_in_parallel_region) {
    // Inline execution, chunk by chunk: same geometry, same results, no
    // pool -- this IS the sequential path.
    for (std::size_t begin = 0; begin < n; begin += grain) {
      fn(begin, std::min(n, begin + grain), ws);
    }
    return;
  }
  ThreadPool::Global().Run(threads, n, grain, ws, fn);
}

void ParallelFor(std::size_t n, std::size_t grain, Workspace& ws, const ParallelChunkFn& fn) {
  ParallelForThreads(InnerThreads(), n, grain, ws, fn);
}

std::uint32_t ParallelExclusivePrefixSum(std::uint32_t* data, std::size_t n, std::size_t grain,
                                         Workspace& ws) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (n + grain - 1) / grain;
  auto sums_s = ws.U32();
  std::vector<std::uint32_t>& sums = *sums_s;
  sums.assign(chunks, 0);
  ParallelFor(n, grain, ws, [&](std::size_t begin, std::size_t end, Workspace&) {
    std::uint32_t total = 0;
    for (std::size_t i = begin; i < end; ++i) total += data[i];
    sums[begin / grain] = total;
  });
  std::uint32_t total = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::uint32_t t = sums[c];
    sums[c] = total;
    total += t;
  }
  ParallelFor(n, grain, ws, [&](std::size_t begin, std::size_t end, Workspace&) {
    std::uint32_t running = sums[begin / grain];
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t v = data[i];
      data[i] = running;
      running += v;
    }
  });
  return total;
}

}  // namespace ldv
