#ifndef LDIV_COMMON_GROUPED_TABLE_H_
#define LDIV_COMMON_GROUPED_TABLE_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/memory_budget.h"
#include "common/table.h"
#include "common/types.h"
#include "common/workspace.h"

namespace ldv {

/// One maximal set of rows sharing the same value on every QI attribute
/// (the initial QI-groups Q_1..Q_s of Section 5.1). Rows are stored sorted
/// by SA value, with one "run" per distinct SA value, so that h(Q, v) lookups
/// and histogram-level tuple removals map back to concrete rows in O(1)
/// without per-group O(m) storage (s can be close to n, so dense per-group
/// arrays over the SA domain would cost O(s * m) memory).
///
/// A QiGroup does not own its storage: the three members are views into
/// arenas owned by the GroupedTable (s can approach n, and three vector
/// allocations per group used to dominate the build). The views stay valid
/// for the lifetime of the owning GroupedTable, including across moves.
struct QiGroup {
  /// The shared QI signature of all member rows.
  std::span<const Value> qi_values;
  /// Member rows, sorted by SA value (stable within a value).
  std::span<const RowId> rows;
  /// One entry per distinct SA value present: (value, begin offset into
  /// `rows`), sorted by value. The run for sa_runs[i] ends where run i+1
  /// begins (or at rows.size() for the last run).
  std::span<const std::pair<SaValue, std::uint32_t>> sa_runs;

  /// Total number of member rows |Q|.
  std::size_t size() const { return rows.size(); }

  /// Length of run `i`.
  std::uint32_t RunLength(std::size_t i) const {
    std::uint32_t end = (i + 1 < sa_runs.size()) ? sa_runs[i + 1].second
                                                 : static_cast<std::uint32_t>(rows.size());
    return end - sa_runs[i].second;
  }

  /// h(Q, v): number of member rows with SA value `v`. O(log k) in the
  /// number of distinct values.
  std::uint32_t SaCount(SaValue v) const;

  /// Dense histogram over an SA domain of size `m`.
  SaHistogram ToHistogram(std::size_t m) const;
};

/// A table grouped by exact QI signature: the starting point of the
/// tuple-minimization formulation (Section 5.1). The number of groups is the
/// paper's s.
class GroupedTable {
 public:
  /// Groups `table` by QI signature. O(n) expected time via hashing: rows
  /// are hashed with the SIMD column fold, scattered into 16 hash shards,
  /// and each shard resolves its signatures in a private open-addressing
  /// index; the shards then merge with a deterministic first-occurrence
  /// tie-break, so group ids, row order and SA runs are byte-identical to
  /// the sequential build at every thread count. When a Workspace is
  /// supplied, all scratch comes from its pools, so repeated grouping
  /// (sweeps, batch workers) does not touch the allocator.
  ///
  /// When a process memory budget is set (SetMemoryBudget) and the sharded
  /// build's O(n) scratch would not fit the remaining budget, the ctor
  /// takes the chunk-at-a-time streaming build instead (see BuildChunked);
  /// both paths produce byte-identical groups, so the choice is purely a
  /// residency/speed trade.
  explicit GroupedTable(const Table& table, Workspace* workspace = nullptr);

  // Copying is deleted: groups_ holds views into the arenas, and a copied
  // GroupedTable would silently alias the original's storage. Moves keep
  // the views valid (vector moves transfer the heap buffers).
  GroupedTable(const GroupedTable&) = delete;
  GroupedTable& operator=(const GroupedTable&) = delete;
  GroupedTable(GroupedTable&&) = default;
  GroupedTable& operator=(GroupedTable&&) = default;

  /// Number of groups s.
  std::size_t group_count() const { return groups_.size(); }

  const QiGroup& group(GroupId g) const { return groups_[g]; }
  const std::vector<QiGroup>& groups() const { return groups_; }

  /// Total number of rows n across all groups.
  std::size_t row_count() const { return row_count_; }

  /// SA domain size m.
  std::size_t sa_domain_size() const { return sa_domain_size_; }

  /// Largest group size.
  std::uint64_t MaxGroupSize() const;

  /// Approximate resident footprint of the arenas and group table, the
  /// same sum ChargeArenas charges against the process budget. Used by
  /// caches to account for a retained GroupedTable.
  std::uint64_t ApproxBytes() const;

  /// Drops the arena charge against the process MemoryBudget without
  /// freeing the arenas. SetMemoryBudget starts a fresh budget epoch
  /// between runs, so a GroupedTable that outlives its run (e.g. one
  /// retained by the engine's artifact cache) releases the charge here
  /// rather than staying accounted to a finished epoch; the cache charges
  /// the bytes to each run itself.
  void ReleaseBudgetCharge() { arena_reservation_.Reset(); }

  /// Chunk-at-a-time low-memory build: one sequential pass streams the
  /// columns in fixed row chunks through the SIMD hash fold, assigns
  /// first-occurrence group ranks in a growing (hash, gid) probe table of
  /// size O(s), and emits (gid << 32 | sa, row) records into a
  /// budget-bounded ExternalSorter whose merged order IS the arena layout
  /// (groups by first occurrence, rows by (sa, row) within a group) -- so
  /// peak scratch is O(s) + the sort buffer instead of the sharded
  /// build's ~32 bytes/row. Byte-identical to the ctor's sharded build.
  /// `sort_buffer_records` == 0 derives the buffer from the process
  /// budget; tests pass a small value to force multi-run spills.
  static GroupedTable BuildChunked(const Table& table, Workspace* workspace = nullptr,
                                   std::size_t sort_buffer_records = 0);

 private:
  GroupedTable() = default;

  void BuildSharded(const Table& table, Workspace* workspace);
  void BuildChunkedImpl(const Table& table, Workspace* workspace,
                        std::size_t sort_buffer_records);
  void ChargeArenas();

  // Backing storage for every group's views: signatures (group-major, d
  // values each), member rows (group-major, exactly n entries) and SA runs
  // (group-major with per-group capacity min(|Q|, m); the spans carry the
  // actual run counts).
  std::vector<Value> qi_arena_;
  std::vector<RowId> rows_arena_;
  std::vector<std::pair<SaValue, std::uint32_t>> runs_arena_;
  std::vector<QiGroup> groups_;
  std::size_t row_count_ = 0;
  std::size_t sa_domain_size_ = 0;
  MemoryReservation arena_reservation_;  // arenas charged to the process budget
};

}  // namespace ldv

#endif  // LDIV_COMMON_GROUPED_TABLE_H_
