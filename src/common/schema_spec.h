#ifndef LDIV_COMMON_SCHEMA_SPEC_H_
#define LDIV_COMMON_SCHEMA_SPEC_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/schema.h"

namespace ldv {

/// Parses a one-line schema specification into a Schema. The grammar is
///
///   spec      := qi-list '|' attribute        (explicit SA)
///              | attribute ',' attribute ...  (>= 2 entries; last is SA)
///   qi-list   := attribute (',' attribute)*
///   attribute := [name ':'] domain-size
///
/// so `Age:79,Gender:2|Income:50`, `79,2|50` and `79,2,50` all describe a
/// two-QI table with a 50-value sensitive attribute. Unnamed attributes
/// get the generated names Q1..Qd and S. Returns std::nullopt (with
/// `*error` set to a usage-grade message) on an empty spec, a malformed or
/// zero domain size, or a spec without a sensitive attribute -- this is
/// user input, so failures must never reach an LDIV_CHECK.
std::optional<Schema> ParseSchemaSpec(std::string_view spec, std::string* error);

/// Renders `schema` as a spec string that ParseSchemaSpec parses back to
/// an equal schema, e.g. "Age:79,Gender:2|Income:50".
std::string FormatSchemaSpec(const Schema& schema);

}  // namespace ldv

#endif  // LDIV_COMMON_SCHEMA_SPEC_H_
