#include "common/failpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ldv {
namespace failpoint {

namespace internal {
std::atomic<int> g_armed_sites{0};
}  // namespace internal

namespace {

constexpr const char* kSiteNames[kSiteCount] = {
    "spill.create",    // kSpillCreate
    "spill.write",     // kSpillWrite
    "spill.read",      // kSpillRead
    "paged.append",    // kPagedAppend
    "paged.seal",      // kPagedSeal
    "paged.map",       // kPagedMap
    "page_cache.read", // kPageCacheRead
    "extsort.spill",   // kExtSortSpill
    "extsort.merge",   // kExtSortMerge
    "csv.read",        // kCsvRead
    "report.write",    // kReportWrite
    "release.write",   // kReleaseWrite
    "daemon.accept",   // kDaemonAccept
    "daemon.read",     // kDaemonRead
    "daemon.write",    // kDaemonWrite
};

struct SiteState {
  bool armed = false;
  Injection injection;
  std::uint64_t nth = 1;
  std::uint64_t count = 0;  // 0 = unlimited
  std::uint64_t evaluations = 0;
  std::uint64_t triggers = 0;
};

struct Registry {
  std::mutex mutex;
  SiteState sites[kSiteCount];
};

Registry& GetRegistry() {
  // Leaked on purpose: failpoints may be evaluated from detached
  // daemon handler threads during process teardown.
  static Registry* registry = new Registry();
  return *registry;
}

// Symbolic errno names accepted by ArmFromSpec. `short` is the
// short-write pseudo-errno (partial write, then ENOSPC).
bool ParseErrnoToken(std::string_view token, Injection* injection) {
  struct Named {
    std::string_view name;
    int value;
  };
  static constexpr Named kNames[] = {
      {"ENOSPC", ENOSPC}, {"EIO", EIO},     {"EPIPE", EPIPE},
      {"ECONNRESET", ECONNRESET}, {"EBADF", EBADF}, {"EAGAIN", EAGAIN},
  };
  if (token == "short") {
    injection->error_code = ENOSPC;
    injection->short_write = true;
    return true;
  }
  for (const Named& named : kNames) {
    if (token == named.name) {
      injection->error_code = named.value;
      return true;
    }
  }
  errno = 0;
  char* end = nullptr;
  std::string text(token);
  const long value = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' || value <= 0) return false;
  injection->error_code = static_cast<int>(value);
  return true;
}

bool ParseCounter(std::string_view token, std::uint64_t* out) {
  errno = 0;
  char* end = nullptr;
  std::string text(token);
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

// LDIV_FAILPOINT is parsed exactly once, as early as the dynamic
// initializers of this translation unit run, so env-armed sites fire
// from the process's very first I/O.
const bool g_env_parsed = [] {
  const char* spec = std::getenv("LDIV_FAILPOINT");
  if (spec == nullptr || spec[0] == '\0') return false;
  std::string error;
  if (!ArmFromSpec(spec, &error)) {
    std::fprintf(stderr, "ldiv: bad LDIV_FAILPOINT entry ignored: %s\n", error.c_str());
  }
  return true;
}();

}  // namespace

const char* SiteName(Site site) {
  const int index = static_cast<int>(site);
  return index >= 0 && index < kSiteCount ? kSiteNames[index] : "unknown";
}

bool SiteFromName(std::string_view name, Site* site) {
  for (int i = 0; i < kSiteCount; ++i) {
    if (name == kSiteNames[i]) {
      *site = static_cast<Site>(i);
      return true;
    }
  }
  return false;
}

namespace internal {

bool Evaluate(Site site, Injection* injection) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  SiteState& state = registry.sites[static_cast<int>(site)];
  ++state.evaluations;
  if (!state.armed) return false;
  if (state.evaluations < state.nth) return false;
  if (state.count != 0 && state.evaluations >= state.nth + state.count) return false;
  ++state.triggers;
  *injection = state.injection;
  return true;
}

}  // namespace internal

void Arm(Site site, Injection injection, std::uint64_t nth, std::uint64_t count) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  SiteState& state = registry.sites[static_cast<int>(site)];
  if (!state.armed) internal::g_armed_sites.fetch_add(1, std::memory_order_relaxed);
  state.armed = true;
  state.injection = injection;
  state.nth = nth == 0 ? 1 : nth;
  state.count = count;
  state.evaluations = 0;
  state.triggers = 0;
}

bool ArmFromSpec(std::string_view spec, std::string* error) {
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view entry = spec.substr(0, comma);
    spec.remove_prefix(comma == std::string_view::npos ? spec.size() : comma + 1);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      if (error != nullptr) {
        *error = "'" + std::string(entry) + "': expected site=errno[:nth[:count]]";
      }
      return false;
    }
    Site site = Site::kCount;
    if (!SiteFromName(entry.substr(0, eq), &site)) {
      if (error != nullptr) {
        *error = "unknown failpoint site '" + std::string(entry.substr(0, eq)) + "'";
      }
      return false;
    }
    std::string_view rest = entry.substr(eq + 1);
    const std::size_t colon1 = rest.find(':');
    std::string_view errno_token = rest.substr(0, colon1);
    Injection injection;
    if (!ParseErrnoToken(errno_token, &injection)) {
      if (error != nullptr) {
        *error = "'" + std::string(entry) + "': bad errno token '" +
                 std::string(errno_token) + "'";
      }
      return false;
    }
    std::uint64_t nth = 1;
    std::uint64_t count = 0;
    if (colon1 != std::string_view::npos) {
      rest.remove_prefix(colon1 + 1);
      const std::size_t colon2 = rest.find(':');
      if (!ParseCounter(rest.substr(0, colon2), &nth) ||
          (colon2 != std::string_view::npos && !ParseCounter(rest.substr(colon2 + 1), &count))) {
        if (error != nullptr) {
          *error = "'" + std::string(entry) + "': nth/count must be unsigned integers";
        }
        return false;
      }
    }
    Arm(site, injection, nth, count);
  }
  return true;
}

void Disarm(Site site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  SiteState& state = registry.sites[static_cast<int>(site)];
  if (state.armed) internal::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
  state.armed = false;
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (SiteState& state : registry.sites) {
    if (state.armed) internal::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
    state = SiteState{};
  }
}

std::vector<SiteStats> Stats() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<SiteStats> stats;
  stats.reserve(kSiteCount);
  for (int i = 0; i < kSiteCount; ++i) {
    const SiteState& state = registry.sites[i];
    stats.push_back(SiteStats{static_cast<Site>(i), kSiteNames[i], state.armed,
                              state.evaluations, state.triggers});
  }
  return stats;
}

std::uint64_t Triggers(Site site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.sites[static_cast<int>(site)].triggers;
}

std::string Describe(Site site, const Injection& injection, std::string_view action) {
  return std::string(action) + ": " + std::strerror(injection.error_code) + " [failpoint " +
         SiteName(site) + "]";
}

}  // namespace failpoint
}  // namespace ldv
