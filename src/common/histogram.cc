#include "common/histogram.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/check.h"

namespace ldv {

SaHistogram::SaHistogram(std::vector<std::uint32_t> counts) : counts_(std::move(counts)) {
  total_ = std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

void SaHistogram::Add(SaValue v, std::uint32_t delta) {
  LDIV_CHECK_LT(v, counts_.size());
  counts_[v] += delta;
  total_ += delta;
}

void SaHistogram::Remove(SaValue v, std::uint32_t delta) {
  LDIV_CHECK_LT(v, counts_.size());
  LDIV_CHECK_GE(counts_[v], delta);
  counts_[v] -= delta;
  total_ -= delta;
}

std::uint32_t SaHistogram::PillarHeight() const {
  if (counts_.empty()) return 0;
  return *std::max_element(counts_.begin(), counts_.end());
}

std::vector<SaValue> SaHistogram::Pillars() const {
  std::vector<SaValue> pillars;
  std::uint32_t h = PillarHeight();
  if (h == 0) return pillars;
  for (SaValue v = 0; v < counts_.size(); ++v) {
    if (counts_[v] == h) pillars.push_back(v);
  }
  return pillars;
}

std::size_t SaHistogram::DistinctCount() const {
  return static_cast<std::size_t>(
      std::count_if(counts_.begin(), counts_.end(), [](std::uint32_t c) { return c > 0; }));
}

void SaHistogram::MergeFrom(const SaHistogram& other) {
  LDIV_CHECK_EQ(counts_.size(), other.counts_.size());
  for (SaValue v = 0; v < counts_.size(); ++v) counts_[v] += other.counts_[v];
  total_ += other.total_;
}

std::string SaHistogram::ToString() const {
  std::ostringstream out;
  out << "(";
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    if (v > 0) out << ",";
    out << counts_[v];
  }
  out << ")";
  return out.str();
}

}  // namespace ldv
