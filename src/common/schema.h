#ifndef LDIV_COMMON_SCHEMA_H_
#define LDIV_COMMON_SCHEMA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace ldv {

/// Description of one categorical attribute: its name and domain size.
/// Values of the attribute are integer codes in [0, domain_size).
struct Attribute {
  std::string name;
  std::size_t domain_size = 0;
};

/// Schema of a microdata table (Section 3): d quasi-identifier attributes
/// A_1..A_d plus one sensitive attribute B. All attributes are categorical.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema from QI attribute descriptions and the SA description.
  Schema(std::vector<Attribute> qi_attributes, Attribute sensitive_attribute);

  /// Number of QI attributes (the paper's dimensionality d).
  std::size_t qi_count() const { return qi_attributes_.size(); }

  /// The i-th QI attribute (0-based).
  const Attribute& qi(AttrId i) const;

  /// The sensitive attribute B.
  const Attribute& sensitive() const { return sensitive_; }

  /// Domain size m of the sensitive attribute.
  std::size_t sa_domain_size() const { return sensitive_.domain_size; }

  /// Returns a new schema keeping only the QI attributes listed in
  /// `qi_subset` (in the given order). The SA attribute is always kept.
  /// This models the paper's SAL-d / OCC-d projection workloads.
  Schema Project(const std::vector<AttrId>& qi_subset) const;

  /// True if every QI domain size and the SA domain size are positive.
  bool Valid() const;

  /// Human-readable one-line description, e.g. "Age(79),Gender(2)|Income(50)".
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<Attribute> qi_attributes_;
  Attribute sensitive_;
};

bool operator==(const Schema& a, const Schema& b);

}  // namespace ldv

#endif  // LDIV_COMMON_SCHEMA_H_
