#ifndef LDIV_COMMON_SCHEMA_H_
#define LDIV_COMMON_SCHEMA_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace ldv {

/// Insertion-ordered label <-> code mapping for one categorical attribute.
/// Raw (string-valued) CSV ingestion builds one per column: the first
/// distinct label becomes code 0, the next code 1, and so on, so the
/// dictionary doubles as the attribute domain. An empty dictionary means
/// the attribute is natively integer-coded (the seed's only mode) and
/// values print as their codes.
class ValueDictionary {
 public:
  ValueDictionary() = default;

  bool empty() const { return labels_.empty(); }
  std::size_t size() const { return labels_.size(); }

  /// The label of `code`. `code` must be a valid dictionary code.
  const std::string& label(Value code) const;

  /// The code of `label`, or nullptr if the label has never been added.
  const Value* Find(std::string_view label) const;

  /// Returns the code of `label`, adding it (insertion-ordered) on first
  /// sight. Ingestion builds dictionaries through this single entry point.
  Value GetOrAdd(std::string_view label);

  /// Dictionaries are equal when they map the same codes to the same
  /// labels in the same order.
  friend bool operator==(const ValueDictionary& a, const ValueDictionary& b) {
    return a.labels_ == b.labels_;
  }

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view text) const {
      return std::hash<std::string_view>{}(text);
    }
  };

  std::vector<std::string> labels_;  // code -> label, insertion-ordered
  std::unordered_map<std::string, Value, StringHash, std::equal_to<>> index_;  // label -> code
};

/// Description of one categorical attribute: its name and domain size.
/// Values of the attribute are integer codes in [0, domain_size). When the
/// attribute was ingested from a raw (string-valued) CSV, `dictionary`
/// carries the label of every code so releases can be decoded back to
/// human-readable form; for natively coded data it stays empty.
struct Attribute {
  std::string name;
  std::size_t domain_size = 0;
  ValueDictionary dictionary;

  Attribute() = default;
  Attribute(std::string name, std::size_t domain_size)
      : name(std::move(name)), domain_size(domain_size) {}
  Attribute(std::string name, std::size_t domain_size, ValueDictionary dictionary)
      : name(std::move(name)), domain_size(domain_size), dictionary(std::move(dictionary)) {}

  bool has_dictionary() const { return !dictionary.empty(); }
};

/// Schema of a microdata table (Section 3): d quasi-identifier attributes
/// A_1..A_d plus one sensitive attribute B. All attributes are categorical.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema from QI attribute descriptions and the SA description.
  Schema(std::vector<Attribute> qi_attributes, Attribute sensitive_attribute);

  /// Number of QI attributes (the paper's dimensionality d).
  std::size_t qi_count() const { return qi_attributes_.size(); }

  /// The i-th QI attribute (0-based).
  const Attribute& qi(AttrId i) const;

  /// The sensitive attribute B.
  const Attribute& sensitive() const { return sensitive_; }

  /// Domain size m of the sensitive attribute.
  std::size_t sa_domain_size() const { return sensitive_.domain_size; }

  /// True if any attribute (QI or SA) carries a value dictionary, i.e. the
  /// table was ingested from a raw string-valued CSV.
  bool has_dictionaries() const;

  /// Returns a new schema keeping only the QI attributes listed in
  /// `qi_subset` (in the given order). The SA attribute is always kept.
  /// This models the paper's SAL-d / OCC-d projection workloads.
  /// Dictionaries travel with their attributes.
  Schema Project(const std::vector<AttrId>& qi_subset) const;

  /// True if every QI domain size and the SA domain size are positive.
  bool Valid() const;

  /// Human-readable one-line description, e.g. "Age(79),Gender(2)|Income(50)".
  std::string ToString() const;

  /// Equality compares attribute names and domain sizes; dictionaries are
  /// data payload, not schema identity (two loads of the same raw CSV
  /// compare equal even though each rebuilt its dictionaries).
  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<Attribute> qi_attributes_;
  Attribute sensitive_;
};

bool operator==(const Schema& a, const Schema& b);

}  // namespace ldv

#endif  // LDIV_COMMON_SCHEMA_H_
