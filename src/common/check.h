#ifndef LDIV_COMMON_CHECK_H_
#define LDIV_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

// CHECK-style invariant macros in the spirit of production database code
// (Status objects are used for recoverable errors; CHECKs guard programmer
// invariants that must never be violated at runtime).
//
// LDIV_CHECK(cond) << "message";  aborts with file:line and the message when
// `cond` is false. LDIV_DCHECK compiles away in NDEBUG builds.

namespace ldv {
namespace internal {

/// Accumulates a failure message and aborts the process on destruction.
/// Instances are created only by the LDIV_CHECK family of macros.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* file, int line, const char* expr) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << expr;
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed values when a check passes; enables the
/// `cond ? (void)0 : Voidify() & stream` idiom.
struct Voidify {
  void operator&(const CheckFailureStream&) {}
};

}  // namespace internal
}  // namespace ldv

#define LDIV_CHECK(cond)                            \
  (cond) ? (void)0                                  \
         : ::ldv::internal::Voidify() &            \
               ::ldv::internal::CheckFailureStream(__FILE__, __LINE__, #cond)

#define LDIV_CHECK_EQ(a, b) LDIV_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ")"
#define LDIV_CHECK_NE(a, b) LDIV_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ")"
#define LDIV_CHECK_LT(a, b) LDIV_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ")"
#define LDIV_CHECK_LE(a, b) LDIV_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ")"
#define LDIV_CHECK_GT(a, b) LDIV_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ")"
#define LDIV_CHECK_GE(a, b) LDIV_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ")"

#ifdef NDEBUG
#define LDIV_DCHECK(cond) LDIV_CHECK(true)
#else
#define LDIV_DCHECK(cond) LDIV_CHECK(cond)
#endif

#endif  // LDIV_COMMON_CHECK_H_
