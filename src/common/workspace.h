#ifndef LDIV_COMMON_WORKSPACE_H_
#define LDIV_COMMON_WORKSPACE_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace ldv {

/// A recycling pool of std::vector<T> buffers. Acquire() hands out a
/// cleared buffer that keeps whatever capacity it accumulated in earlier
/// uses; Release() returns it. The first few solves grow the buffers to
/// their steady-state sizes, after which the pool serves every request
/// without touching the allocator.
template <typename T>
class BufferPool {
 public:
  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A cleared buffer, most recently released first (LIFO keeps the
  /// still-cache-warm buffer in circulation).
  std::vector<T> Acquire() {
    if (free_.empty()) return {};
    std::vector<T> v = std::move(free_.back());
    free_.pop_back();
    v.clear();
    return v;
  }

  /// Returns a buffer to the pool.
  void Release(std::vector<T>&& v) { free_.push_back(std::move(v)); }

  /// Number of idle buffers currently pooled.
  std::size_t idle() const { return free_.size(); }

 private:
  std::vector<std::vector<T>> free_;
};

/// RAII handle for a pooled buffer: acquires on construction, releases on
/// destruction. Use like a smart pointer to std::vector<T>.
template <typename T>
class ScratchVec {
 public:
  explicit ScratchVec(BufferPool<T>* pool) : pool_(pool), v_(pool->Acquire()) {}
  ScratchVec(ScratchVec&& other) noexcept
      : pool_(other.pool_), v_(std::move(other.v_)) {
    other.pool_ = nullptr;
  }
  ScratchVec(const ScratchVec&) = delete;
  ScratchVec& operator=(const ScratchVec&) = delete;
  ScratchVec& operator=(ScratchVec&&) = delete;
  ~ScratchVec() {
    if (pool_ != nullptr) pool_->Release(std::move(v_));
  }

  std::vector<T>& operator*() { return v_; }
  const std::vector<T>& operator*() const { return v_; }
  std::vector<T>* operator->() { return &v_; }
  const std::vector<T>* operator->() const { return &v_; }

 private:
  BufferPool<T>* pool_;
  std::vector<T> v_;
};

/// Per-solve scratch memory, shared across the solver hot paths so that
/// repeated solves (sweeps, AnonymizeBatch workers) stop re-allocating:
/// GroupedTable's signature index, Mondrian's row/median/histogram buffers
/// and the Hilbert code/order arrays all draw from here. A Workspace is
/// cheap to construct (no allocation until first use) and is NOT
/// thread-safe -- use one per thread; AnonymizeBatch keeps one per worker.
///
/// All of the repository's index types (RowId, Value, SaValue, GroupId,
/// counts) are 32-bit, so a single 32-bit pool serves them all; the 64-bit
/// pool serves Hilbert codes, hashes and packed point ids.
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// A recycled 32-bit buffer (row ids, values, counts, offsets...).
  ScratchVec<std::uint32_t> U32() { return ScratchVec<std::uint32_t>(&u32_); }

  /// A recycled 64-bit buffer (Hilbert codes, hashes, packed ids...).
  ScratchVec<std::uint64_t> U64() { return ScratchVec<std::uint64_t>(&u64_); }

  /// A recycled double buffer (KL term staging, per-group weights...).
  ScratchVec<double> F64() { return ScratchVec<double>(&f64_); }

  BufferPool<std::uint32_t>& u32_pool() { return u32_; }
  BufferPool<std::uint64_t>& u64_pool() { return u64_; }
  BufferPool<double>& f64_pool() { return f64_; }

 private:
  BufferPool<std::uint32_t> u32_;
  BufferPool<std::uint64_t> u64_;
  BufferPool<double> f64_;
};

}  // namespace ldv

#endif  // LDIV_COMMON_WORKSPACE_H_
