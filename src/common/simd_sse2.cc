// SSE2 kernel tier: 128-bit integer lanes (two 64-bit rows per step) and
// two 2-double accumulators for the KL geometry. SSE2 is the x86-64
// baseline, so this translation unit needs no extra target flags; it
// compiles to an empty stub elsewhere. The gather-dependent kernels
// (MinMaxGatherU32, GatherU32) keep the scalar bodies -- 128-bit SSE has
// no gather, so there is nothing to vectorize but the compares.
//
// Compiled with -ffp-contract=off (see CMakeLists): KlAccumulate's
// bit-equality across tiers requires single-rounded multiplies and adds.

#include "common/simd.h"

#ifdef __SSE2__

#include <emmintrin.h>

#include <cmath>

namespace ldv {
namespace simd {
namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;  // 2^40 + 435

// (h ^ v) * kFnvPrime on two 64-bit lanes: the prime is 2^40 + 435, so the
// product splits into (t << 40) + lo32(t) * 435 + (hi32(t) * 435 << 32),
// each partial product computable with _mm_mul_epu32.
void FnvFoldColumnSse2(std::uint64_t* hashes, const std::uint32_t* col, std::size_t n) {
  const __m128i c435 = _mm_set1_epi64x(435);
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i vh = _mm_loadu_si128(reinterpret_cast<const __m128i*>(hashes + i));
    const __m128i vc = _mm_unpacklo_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(col + i)), zero);
    const __m128i t = _mm_xor_si128(vh, vc);
    const __m128i lo = _mm_mul_epu32(t, c435);
    const __m128i hi = _mm_mul_epu32(_mm_srli_epi64(t, 32), c435);
    const __m128i r = _mm_add_epi64(_mm_slli_epi64(t, 40),
                                    _mm_add_epi64(lo, _mm_slli_epi64(hi, 32)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(hashes + i), r);
  }
  for (; i < n; ++i) hashes[i] = (hashes[i] ^ col[i]) * kFnvPrime;
}

// acc[i] += stride * col[i]: the 64-bit stride splits into 32-bit halves,
// stride * v = lo(stride) * v + (hi(stride) * v << 32) mod 2^64.
void StrideAccumulateSse2(std::uint64_t* acc, const std::uint32_t* col, std::uint64_t stride,
                          std::size_t n) {
  const __m128i vsl = _mm_set1_epi64x(static_cast<long long>(stride & 0xffffffffULL));
  const __m128i vsh = _mm_set1_epi64x(static_cast<long long>(stride >> 32));
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
    const __m128i vc = _mm_unpacklo_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(col + i)), zero);
    const __m128i prod = _mm_add_epi64(_mm_mul_epu32(vc, vsl),
                                       _mm_slli_epi64(_mm_mul_epu32(vc, vsh), 32));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i), _mm_add_epi64(va, prod));
  }
  for (; i < n; ++i) acc[i] += stride * col[i];
}

// Four candidates per step: scalar gathers of the bounds (SSE2 has no
// gather) feeding branchless signed compares; hits are extracted from the
// movemask in ascending candidate order.
std::size_t StabCandidatesSse2(const std::uint32_t* candidates, std::size_t n,
                               const std::uint32_t* point, const std::uint32_t* const* lo,
                               const std::uint32_t* const* hi, std::size_t d, bool first_only,
                               std::uint32_t* hits) {
  const __m128i ones = _mm_set1_epi32(-1);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i inside = ones;
    alignas(16) std::uint32_t lob[4], hib[4];
    for (std::size_t a = 1; a < d; ++a) {
      for (int j = 0; j < 4; ++j) {
        const std::uint32_t g = candidates[i + static_cast<std::size_t>(j)];
        lob[j] = lo[a][g];
        hib[j] = hi[a][g];
      }
      const __m128i vpt = _mm_set1_epi32(static_cast<int>(point[a]));
      const __m128i vlo = _mm_load_si128(reinterpret_cast<const __m128i*>(lob));
      const __m128i vhi = _mm_load_si128(reinterpret_cast<const __m128i*>(hib));
      const __m128i ge = _mm_andnot_si128(_mm_cmpgt_epi32(vlo, vpt), ones);
      const __m128i lt = _mm_cmpgt_epi32(vhi, vpt);
      inside = _mm_and_si128(inside, _mm_and_si128(ge, lt));
      if (_mm_movemask_ps(_mm_castsi128_ps(inside)) == 0) break;
    }
    int m = _mm_movemask_ps(_mm_castsi128_ps(inside));
    while (m != 0) {
      const int j = __builtin_ctz(static_cast<unsigned>(m));
      hits[count++] = candidates[i + static_cast<std::size_t>(j)];
      if (first_only) return count;
      m &= m - 1;
    }
  }
  for (; i < n; ++i) {
    const std::uint32_t g = candidates[i];
    bool inside = true;
    for (std::size_t a = 1; a < d; ++a) {
      const std::uint32_t v = point[a];
      if (v < lo[a][g] || v >= hi[a][g]) {
        inside = false;
        break;
      }
    }
    if (inside) {
      hits[count++] = g;
      if (first_only) break;
    }
  }
  return count;
}

// Two 2-double registers hold virtual lanes {0,1} and {2,3}; logs go
// through scalar std::log on the single-rounded quotients, exactly like
// the scalar tier, so lane j accumulates the identical term sequence.
void KlAccumulateSse2(const double* count, const double* fstar_n, double n, std::size_t len,
                      double acc[4]) {
  __m128d acc01 = _mm_loadu_pd(acc);
  __m128d acc23 = _mm_loadu_pd(acc + 2);
  const __m128d vn = _mm_set1_pd(n);
  alignas(16) double ratio[4], lg[4];
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m128d c01 = _mm_loadu_pd(count + i);
    const __m128d c23 = _mm_loadu_pd(count + i + 2);
    _mm_store_pd(ratio, _mm_div_pd(c01, _mm_loadu_pd(fstar_n + i)));
    _mm_store_pd(ratio + 2, _mm_div_pd(c23, _mm_loadu_pd(fstar_n + i + 2)));
    lg[0] = std::log(ratio[0]);
    lg[1] = std::log(ratio[1]);
    lg[2] = std::log(ratio[2]);
    lg[3] = std::log(ratio[3]);
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(_mm_div_pd(c01, vn), _mm_load_pd(lg)));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(_mm_div_pd(c23, vn), _mm_load_pd(lg + 2)));
  }
  _mm_storeu_pd(acc, acc01);
  _mm_storeu_pd(acc + 2, acc23);
  for (; i < len; ++i) {
    const double r = count[i] / fstar_n[i];
    const double l = std::log(r);
    acc[i & 3] += (count[i] / n) * l;
  }
}

// Two rows per step on 64-bit lanes. The data-dependent branch of
// Skilling's walk ("if the q bit of x[i] is set") becomes a full-lane mask
// built from that bit: sel = 0 - ((x[i] >> log2 q) & 1), then
//   x[0] ^= (sel & p) | (~sel & t),   x[i] ^= ~sel & t
// which reproduces both branch arms at once (for i == 0, t is zero and
// only the sel & p term fires, exactly like the scalar code).
void HilbertEncodeBlockSse2(const std::uint32_t* const* cols, std::size_t d, std::uint32_t bits,
                            std::uint32_t shift, std::size_t row_begin, std::size_t count,
                            std::uint64_t* out) {
  const std::uint32_t m = 1u << (bits - 1);
  const __m128i zero = _mm_setzero_si128();
  const __m128i one = _mm_set1_epi64x(1);
  const __m128i vshift = _mm_cvtsi32_si128(static_cast<int>(shift));
  __m128i x[64];
  std::size_t r = 0;
  for (; r + 2 <= count; r += 2) {
    for (std::size_t i = 0; i < d; ++i) {
      const __m128i v = _mm_srl_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(cols[i] + row_begin + r)), vshift);
      x[i] = _mm_unpacklo_epi32(v, zero);
    }
    for (std::uint32_t q = m; q > 1; q >>= 1) {
      const __m128i vp = _mm_set1_epi64x(q - 1);
      const __m128i vq = _mm_cvtsi32_si128(__builtin_ctz(q));
      for (std::size_t i = 0; i < d; ++i) {
        const __m128i bit = _mm_and_si128(_mm_srl_epi64(x[i], vq), one);
        const __m128i sel = _mm_sub_epi64(zero, bit);
        const __m128i t = _mm_and_si128(_mm_xor_si128(x[0], x[i]), vp);
        const __m128i tn = _mm_andnot_si128(sel, t);
        x[0] = _mm_xor_si128(x[0], _mm_or_si128(tn, _mm_and_si128(sel, vp)));
        x[i] = _mm_xor_si128(x[i], tn);
      }
    }
    for (std::size_t i = 1; i < d; ++i) x[i] = _mm_xor_si128(x[i], x[i - 1]);
    __m128i vt = zero;
    for (std::uint32_t q = m; q > 1; q >>= 1) {
      const __m128i bit =
          _mm_and_si128(_mm_srl_epi64(x[d - 1], _mm_cvtsi32_si128(__builtin_ctz(q))), one);
      vt = _mm_xor_si128(vt, _mm_and_si128(_mm_sub_epi64(zero, bit), _mm_set1_epi64x(q - 1)));
    }
    for (std::size_t i = 0; i < d; ++i) x[i] = _mm_xor_si128(x[i], vt);
    __m128i index = zero;
    for (std::uint32_t bit = bits; bit-- > 0;) {
      const __m128i vb = _mm_cvtsi32_si128(static_cast<int>(bit));
      for (std::size_t i = 0; i < d; ++i) {
        index = _mm_or_si128(_mm_slli_epi64(index, 1),
                             _mm_and_si128(_mm_srl_epi64(x[i], vb), one));
      }
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + r), index);
  }
  if (r < count) {
    detail::kScalarKernels.hilbert_encode_block(cols, d, bits, shift, row_begin + r, count - r,
                                                out + r);
  }
}

}  // namespace

namespace detail {

const Kernels* Sse2Kernels() {
  static const Kernels table = [] {
    Kernels k = kScalarKernels;  // gather-dependent kernels keep scalar bodies
    k.fnv_fold_column = FnvFoldColumnSse2;
    k.stride_accumulate = StrideAccumulateSse2;
    k.stab_candidates = StabCandidatesSse2;
    k.kl_accumulate = KlAccumulateSse2;
    k.hilbert_encode_block = HilbertEncodeBlockSse2;
    return k;
  }();
  return &table;
}

}  // namespace detail
}  // namespace simd
}  // namespace ldv

#else  // !__SSE2__

namespace ldv {
namespace simd {
namespace detail {

const Kernels* Sse2Kernels() { return nullptr; }

}  // namespace detail
}  // namespace simd
}  // namespace ldv

#endif  // __SSE2__
