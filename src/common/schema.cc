#include "common/schema.h"

#include <sstream>

#include "common/check.h"

namespace ldv {

Schema::Schema(std::vector<Attribute> qi_attributes, Attribute sensitive_attribute)
    : qi_attributes_(std::move(qi_attributes)), sensitive_(std::move(sensitive_attribute)) {}

const Attribute& Schema::qi(AttrId i) const {
  LDIV_CHECK_LT(i, qi_attributes_.size());
  return qi_attributes_[i];
}

Schema Schema::Project(const std::vector<AttrId>& qi_subset) const {
  std::vector<Attribute> kept;
  kept.reserve(qi_subset.size());
  for (AttrId i : qi_subset) {
    LDIV_CHECK_LT(i, qi_attributes_.size());
    kept.push_back(qi_attributes_[i]);
  }
  return Schema(std::move(kept), sensitive_);
}

bool Schema::Valid() const {
  if (sensitive_.domain_size == 0) return false;
  for (const Attribute& a : qi_attributes_) {
    if (a.domain_size == 0) return false;
  }
  return true;
}

std::string Schema::ToString() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < qi_attributes_.size(); ++i) {
    if (i > 0) out << ",";
    out << qi_attributes_[i].name << "(" << qi_attributes_[i].domain_size << ")";
  }
  out << "|" << sensitive_.name << "(" << sensitive_.domain_size << ")";
  return out.str();
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.qi_attributes_.size() != b.qi_attributes_.size()) return false;
  for (std::size_t i = 0; i < a.qi_attributes_.size(); ++i) {
    if (a.qi_attributes_[i].name != b.qi_attributes_[i].name ||
        a.qi_attributes_[i].domain_size != b.qi_attributes_[i].domain_size) {
      return false;
    }
  }
  return a.sensitive_.name == b.sensitive_.name &&
         a.sensitive_.domain_size == b.sensitive_.domain_size;
}

}  // namespace ldv
