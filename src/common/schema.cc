#include "common/schema.h"

#include <sstream>

#include "common/check.h"

namespace ldv {

const std::string& ValueDictionary::label(Value code) const {
  LDIV_CHECK_LT(code, labels_.size());
  return labels_[code];
}

const Value* ValueDictionary::Find(std::string_view label) const {
  auto it = index_.find(label);
  return it == index_.end() ? nullptr : &it->second;
}

Value ValueDictionary::GetOrAdd(std::string_view label) {
  auto it = index_.find(label);
  if (it != index_.end()) return it->second;
  Value code = static_cast<Value>(labels_.size());
  labels_.emplace_back(label);
  index_.emplace(labels_.back(), code);
  return code;
}

Schema::Schema(std::vector<Attribute> qi_attributes, Attribute sensitive_attribute)
    : qi_attributes_(std::move(qi_attributes)), sensitive_(std::move(sensitive_attribute)) {}

const Attribute& Schema::qi(AttrId i) const {
  LDIV_CHECK_LT(i, qi_attributes_.size());
  return qi_attributes_[i];
}

bool Schema::has_dictionaries() const {
  if (sensitive_.has_dictionary()) return true;
  for (const Attribute& a : qi_attributes_) {
    if (a.has_dictionary()) return true;
  }
  return false;
}

Schema Schema::Project(const std::vector<AttrId>& qi_subset) const {
  std::vector<Attribute> kept;
  kept.reserve(qi_subset.size());
  for (AttrId i : qi_subset) {
    LDIV_CHECK_LT(i, qi_attributes_.size());
    kept.push_back(qi_attributes_[i]);
  }
  return Schema(std::move(kept), sensitive_);
}

bool Schema::Valid() const {
  if (sensitive_.domain_size == 0) return false;
  for (const Attribute& a : qi_attributes_) {
    if (a.domain_size == 0) return false;
  }
  return true;
}

std::string Schema::ToString() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < qi_attributes_.size(); ++i) {
    if (i > 0) out << ",";
    out << qi_attributes_[i].name << "(" << qi_attributes_[i].domain_size << ")";
  }
  out << "|" << sensitive_.name << "(" << sensitive_.domain_size << ")";
  return out.str();
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.qi_attributes_.size() != b.qi_attributes_.size()) return false;
  for (std::size_t i = 0; i < a.qi_attributes_.size(); ++i) {
    if (a.qi_attributes_[i].name != b.qi_attributes_[i].name ||
        a.qi_attributes_[i].domain_size != b.qi_attributes_[i].domain_size) {
      return false;
    }
  }
  return a.sensitive_.name == b.sensitive_.name &&
         a.sensitive_.domain_size == b.sensitive_.domain_size;
}

}  // namespace ldv
