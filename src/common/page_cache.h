#ifndef LDIV_COMMON_PAGE_CACHE_H_
#define LDIV_COMMON_PAGE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/memory_budget.h"

namespace ldv {

/// Default page size for spilled columns: 1 MiB = 256K u32 values.
inline constexpr std::size_t kDefaultPageBytes = 1u << 20;

/// Resolves the spill directory ONCE per process: the first of
/// LDIV_SPILL_DIR, TMPDIR, /tmp that exists and is writable (probed with
/// an mkstemp that is removed immediately). Every SpillFile shares the
/// result, so a run spilling hundreds of columns stats the environment
/// exactly once instead of once per column. On failure, returns false
/// with an error naming the directory and the environment variable it
/// came from; the cached outcome (success or failure) is sticky for the
/// process lifetime.
bool ResolveSpillDirectory(std::string* directory, std::string* error);

/// One anonymous temp file holding spilled column bytes. The file is
/// created in the resolved spill directory (see ResolveSpillDirectory:
/// LDIV_SPILL_DIR, else TMPDIR, else /tmp) and unlinked
/// immediately, so spill space is reclaimed by the OS even on a crash;
/// the fd (and with it the storage) lives exactly as long as this
/// object. Space is handed out by a bump allocator; reads and writes
/// are positioned (pread/pwrite), so one file serves concurrent readers.
///
/// Creation returns an error (no temp space is a user-environment
/// problem surfaced at ingestion start); I/O failures after that --
/// disk full mid-spill, revoked fd -- throw IoFailure, which the engine
/// boundary converts to a typed PipelineError{kIo} (and the daemon to an
/// `error` reply). The unlink-at-create design is what makes the unwind
/// safe: a half-written spill file needs no cleanup beyond its dtor.
class SpillFile {
 public:
  /// Creates an unlinked temp file; null + `error` on failure.
  static std::unique_ptr<SpillFile> Create(std::string* error);

  /// Number of SpillFile objects currently alive in the process -- the
  /// leak probe fault-injection tests assert returns to its baseline
  /// after every injected failure.
  static std::uint64_t LiveCount();

  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Process-unique id; the page cache keys frames by (id, page).
  std::uint32_t id() const { return id_; }

  /// The directory the file was created in (the file itself is unlinked).
  const std::string& directory() const { return directory_; }

  /// Bytes allocated so far.
  std::uint64_t size() const { return size_; }

  /// Reserves `bytes` at the end of the file; returns their offset.
  std::uint64_t Allocate(std::uint64_t bytes);

  /// Positioned write/read of exactly `bytes`; both throw IoFailure on a
  /// syscall failure (ENOSPC, EIO, short read) or an armed failpoint.
  void Write(std::uint64_t offset, const void* data, std::size_t bytes) const;
  void Read(std::uint64_t offset, void* data, std::size_t bytes) const;

  int fd() const { return fd_; }

 private:
  SpillFile(int fd, std::uint32_t id, std::string directory)
      : fd_(fd), id_(id), directory_(std::move(directory)) {}

  int fd_ = -1;
  std::uint32_t id_ = 0;
  std::string directory_;
  std::uint64_t size_ = 0;
};

struct PageCacheOptions {
  std::size_t page_bytes = kDefaultPageBytes;
  std::size_t frames = 64;  // bounded resident frames
  // Frames are charged here (may be null). Shared so the cache can outlive
  // the budget epoch it was created under (e.g. a paged table held by a
  // caller across later runs).
  std::shared_ptr<MemoryBudget> budget;
};

/// Bounded cache of fixed-size spill-file pages with pin/unpin and CLOCK
/// (second-chance) eviction. All frames are allocated up front as one
/// block of frames * page_bytes bytes and charged to the budget for the
/// cache's lifetime, so the resident set is a hard bound, not a high-water
/// guess. Pages are read-only once spilled (writers stage pages privately
/// and write through), so eviction never writes back.
///
/// Not thread-safe: each reader owns its cache (cursors over a sealed,
/// memory-mapped column bypass the cache entirely, which is how parallel
/// kernels run).
class PageCache {
 public:
  explicit PageCache(PageCacheOptions options);
  ~PageCache();
  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t refaults = 0;  // misses on pages that were evicted earlier
  };

  std::size_t page_bytes() const { return options_.page_bytes; }
  std::size_t frames() const { return options_.frames; }
  const Stats& stats() const { return stats_; }

  /// Number of currently pinned frames (for tests).
  std::size_t pinned_frames() const;

  /// Pins page `page` of `file` (bytes [page * page_bytes, ... + valid_bytes))
  /// into a frame, reading from the spill file on a miss, and returns the
  /// frame's data. The frame cannot be evicted until the matching Unpin.
  /// Pins nest (a page may be pinned more than once). A failed miss read
  /// throws IoFailure with the frame left invalid (the cache stays
  /// usable). It is a fatal error to pin when every frame is pinned
  /// (callers hold O(1) pins).
  const std::byte* Pin(const SpillFile& file, std::uint64_t page, std::size_t valid_bytes);

  /// Releases one pin of `page`; sets the frame's reference bit so CLOCK
  /// gives recently used pages a second chance.
  void Unpin(const SpillFile& file, std::uint64_t page);

 private:
  struct Frame {
    std::uint64_t key = 0;
    std::uint32_t pins = 0;
    bool referenced = false;
    bool valid = false;
  };

  static std::uint64_t Key(const SpillFile& file, std::uint64_t page);
  std::size_t EvictFrame();  // returns a free frame index, evicting if needed

  PageCacheOptions options_;
  MemoryReservation reservation_;
  std::vector<std::byte> storage_;               // frames * page_bytes
  std::vector<Frame> frames_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  // key -> frame
  std::unordered_set<std::uint64_t> evicted_;    // keys seen then evicted
  std::size_t clock_hand_ = 0;
  Stats stats_;
};

}  // namespace ldv

#endif  // LDIV_COMMON_PAGE_CACHE_H_
