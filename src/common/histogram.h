#ifndef LDIV_COMMON_HISTOGRAM_H_
#define LDIV_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace ldv {

/// Multiset of SA values represented as a count vector, the h(Q, v) notation
/// of Section 5.2. The three-phase algorithm treats QI-groups and the residue
/// set R as SA-multisets; tuples with identical QI and SA values are
/// interchangeable (Section 5.1).
class SaHistogram {
 public:
  SaHistogram() = default;

  /// Creates an empty histogram over an SA domain of size `m`.
  explicit SaHistogram(std::size_t m) : counts_(m, 0) {}

  /// Creates a histogram with the given counts (the paper's vector notation,
  /// e.g. Q1 = (3, 1, 1, 2, 3) in Section 5.3).
  explicit SaHistogram(std::vector<std::uint32_t> counts);

  /// SA domain size m.
  std::size_t domain_size() const { return counts_.size(); }

  /// Count of SA value `v`: the paper's h(Q, v).
  std::uint32_t count(SaValue v) const { return counts_[v]; }

  /// Total number of tuples |Q|.
  std::uint64_t total() const { return total_; }

  bool empty() const { return total_ == 0; }

  /// Adds `delta` tuples with SA value `v`.
  void Add(SaValue v, std::uint32_t delta = 1);

  /// Removes `delta` tuples with SA value `v`; the count must not underflow.
  void Remove(SaValue v, std::uint32_t delta = 1);

  /// The pillar height h(Q) = max_v h(Q, v) (Section 5.2). O(m) scan; the
  /// performance-critical callers use PillarIndex instead.
  std::uint32_t PillarHeight() const;

  /// All pillar SA values, i.e. values whose count equals PillarHeight().
  /// Empty when the histogram is empty.
  std::vector<SaValue> Pillars() const;

  /// Number of distinct SA values with positive count.
  std::size_t DistinctCount() const;

  /// The l-eligibility test of Definition 2: |Q| >= l * h(Q). The empty
  /// multiset is l-eligible for every l.
  bool IsEligible(std::uint32_t l) const {
    return total_ >= static_cast<std::uint64_t>(l) * PillarHeight();
  }

  /// Merges another histogram into this one (Lemma 1 operates on unions).
  void MergeFrom(const SaHistogram& other);

  const std::vector<std::uint32_t>& counts() const { return counts_; }

  /// Vector-style rendering, e.g. "(3,1,1,2,3)".
  std::string ToString() const;

  friend bool operator==(const SaHistogram& a, const SaHistogram& b) {
    return a.counts_ == b.counts_;
  }

 private:
  std::vector<std::uint32_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ldv

#endif  // LDIV_COMMON_HISTOGRAM_H_
