#ifndef LDIV_COMMON_TABLE_H_
#define LDIV_COMMON_TABLE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/schema.h"
#include "common/types.h"

namespace ldv {

class Rng;

/// A raw microdata table T (Section 3): n rows over d categorical QI
/// attributes and one categorical sensitive attribute. Storage is row-major
/// for the QI part (`qi_data_[row * d + attr]`) with the SA column kept
/// separately, because the anonymization algorithms touch SA values far more
/// often than QI values.
class Table {
 public:
  /// Creates an empty table with the given schema.
  explicit Table(Schema schema);

  Table(const Table&) = default;
  Table& operator=(const Table&) = default;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const Schema& schema() const { return schema_; }

  /// Number of rows (the paper's n).
  std::size_t size() const { return sa_data_.size(); }
  bool empty() const { return sa_data_.empty(); }

  /// Number of QI attributes (the paper's d).
  std::size_t qi_count() const { return schema_.qi_count(); }

  /// Appends a row. `qi_values.size()` must equal `qi_count()`, each value
  /// must lie in its attribute domain, and `sa` must lie in the SA domain.
  void AppendRow(std::span<const Value> qi_values, SaValue sa);

  /// Reserves storage for `rows` rows.
  void Reserve(std::size_t rows);

  /// QI value of row `row` on attribute `attr`.
  Value qi(RowId row, AttrId attr) const {
    return qi_data_[static_cast<std::size_t>(row) * qi_count() + attr];
  }

  /// The full QI vector of row `row`.
  std::span<const Value> qi_row(RowId row) const {
    return {qi_data_.data() + static_cast<std::size_t>(row) * qi_count(), qi_count()};
  }

  /// SA value of row `row`.
  SaValue sa(RowId row) const { return sa_data_[row]; }

  /// Histogram of SA values over the whole table: result[v] = #rows with SA v.
  std::vector<std::uint32_t> SaHistogramCounts() const;

  /// Number of distinct SA values that actually occur (the paper's m).
  std::size_t DistinctSaCount() const;

  /// Returns the projection of this table onto the QI attributes in
  /// `qi_subset` (order preserved); SA is always kept. Models SAL-d / OCC-d.
  Table ProjectQi(const std::vector<AttrId>& qi_subset) const;

  /// Returns a table containing only the rows in `rows` (in order).
  Table SelectRows(const std::vector<RowId>& rows) const;

  /// Returns a uniform random sample (without replacement) of `count` rows.
  /// If `count >= size()`, returns a copy of the whole table.
  Table SampleRows(std::size_t count, Rng& rng) const;

 private:
  Schema schema_;
  std::vector<Value> qi_data_;   // row-major, size = n * d
  std::vector<SaValue> sa_data_;  // size = n
};

}  // namespace ldv

#endif  // LDIV_COMMON_TABLE_H_
