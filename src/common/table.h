#ifndef LDIV_COMMON_TABLE_H_
#define LDIV_COMMON_TABLE_H_

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "common/schema.h"
#include "common/types.h"

namespace ldv {

class Rng;
class Table;

/// A materialized QI row over the columnar storage: qi_row() gathers the
/// row's d values out of the attribute columns into this small owning
/// buffer (inline up to kInlineAttrs attributes, heap beyond that), so
/// row-oriented call sites keep compiling against the columnar Table. The
/// view converts to std::span<const Value>, indexes, and iterates like the
/// contiguous row slice it replaces. Because the buffer is OWNED, a span
/// taken from a temporary (`std::span<const Value> s = t.qi_row(r);`)
/// dangles past the end of the statement -- passing `t.qi_row(r)` directly
/// into a call is fine, storing the conversion is not; keep the QiRow
/// itself (`auto qi = t.qi_row(r);`) to hold the values. Column-major code
/// should scan Table::column() instead of materializing rows.
class QiRow {
 public:
  QiRow(const Table& table, RowId row);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Value* data() const { return size_ <= kInlineAttrs ? inline_.data() : heap_.data(); }
  Value operator[](std::size_t attr) const { return data()[attr]; }
  const Value* begin() const { return data(); }
  const Value* end() const { return data() + size_; }

  operator std::span<const Value>() const { return {data(), size_}; }

  std::vector<Value> ToVector() const { return {begin(), end()}; }

 private:
  static constexpr std::size_t kInlineAttrs = 8;

  std::size_t size_ = 0;
  std::array<Value, kInlineAttrs> inline_;
  std::vector<Value> heap_;  // engaged only when size_ > kInlineAttrs
};

/// A raw microdata table T (Section 3): n rows over d categorical QI
/// attributes and one categorical sensitive attribute. Storage is columnar:
/// one contiguous column per QI attribute plus the SA column, so the hot
/// loops (signature hashing, Mondrian's histogram scans, KL point packing)
/// stream one attribute at a time instead of striding across row-major
/// memory. Row-oriented call sites go through qi() / qi_row(); column-major
/// code takes column() spans.
///
/// Columns are either OWNED (std::vector storage, the default -- every
/// mutator requires it) or BORROWED (spans over memory the caller keeps
/// alive, e.g. the read-only mapping of a sealed PagedTable). Both kinds
/// serve the identical read API, so the out-of-core path runs every
/// algorithm unchanged. A borrowed table is immutable; copying one yields
/// another borrowed table aliasing the same external memory.
class Table {
 public:
  /// Creates an empty table with the given schema.
  explicit Table(Schema schema);

  /// Builds a table directly from columnar data: one column per QI
  /// attribute (all of equal length, values inside their domains) plus the
  /// SA column. This is the bulk-ingestion path of the raw CSV reader.
  static Table FromColumns(Schema schema, std::vector<std::vector<Value>> qi_columns,
                           std::vector<SaValue> sa_column);

  /// Builds a borrowed (non-owning) table over caller-kept column memory:
  /// one span per QI attribute plus the SA span, all of equal length. The
  /// backing memory must outlive the table and every copy of it. Unlike
  /// FromColumns, values are NOT validated against the schema domains --
  /// the paged builder validates at seal time with a MinMax pass, and
  /// re-scanning a multi-gigabyte mapping here would defeat the point.
  static Table FromBorrowedColumns(Schema schema, std::vector<std::span<const Value>> qi_columns,
                                   std::span<const SaValue> sa_column);

  Table(const Table& other);
  Table& operator=(const Table& other);
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const Schema& schema() const { return schema_; }

  /// Number of rows (the paper's n).
  std::size_t size() const { return sa_view_.size(); }
  bool empty() const { return sa_view_.empty(); }

  /// Number of QI attributes (the paper's d).
  std::size_t qi_count() const { return schema_.qi_count(); }

  /// True if the columns are borrowed spans (see class comment).
  bool borrowed() const { return borrowed_; }

  /// Appends a row. `qi_values.size()` must equal `qi_count()`, each value
  /// must lie in its attribute domain, and `sa` must lie in the SA domain.
  /// The table must own its storage.
  void AppendRow(std::span<const Value> qi_values, SaValue sa);

  /// Reserves storage for `rows` rows in every column (owned tables only).
  void Reserve(std::size_t rows);

  /// QI value of row `row` on attribute `attr`.
  Value qi(RowId row, AttrId attr) const { return qi_views_[attr][row]; }

  /// The full QI vector of row `row`, materialized out of the columns.
  QiRow qi_row(RowId row) const { return QiRow(*this, row); }

  /// The contiguous column of attribute `attr` (size n).
  std::span<const Value> column(AttrId attr) const { return qi_views_[attr]; }

  /// SA value of row `row`.
  SaValue sa(RowId row) const { return sa_view_[row]; }

  /// The contiguous SA column (size n).
  std::span<const SaValue> sa_column() const { return sa_view_; }

  /// Histogram of SA values over the whole table: result[v] = #rows with SA v.
  std::vector<std::uint32_t> SaHistogramCounts() const;

  /// Number of distinct SA values that actually occur (the paper's m).
  std::size_t DistinctSaCount() const;

  /// Returns the projection of this table onto the QI attributes in
  /// `qi_subset` (order preserved); SA is always kept. Models SAL-d / OCC-d.
  /// On the columnar layout this is a plain copy of the kept columns.
  /// The result always owns its storage.
  Table ProjectQi(const std::vector<AttrId>& qi_subset) const;

  /// Returns a table containing only the rows in `rows` (in order).
  Table SelectRows(const std::vector<RowId>& rows) const;

  /// Returns a uniform random sample (without replacement) of `count` rows.
  /// If `count >= size()`, returns a copy of the whole table.
  Table SampleRows(std::size_t count, Rng& rng) const;

 private:
  /// Points the view spans at the owned vectors (owned tables only).
  /// Must run after any mutation that may reallocate a column.
  void RefreshViews();

  Schema schema_;
  std::vector<std::vector<Value>> qi_columns_;  // owned storage (empty when borrowed)
  std::vector<SaValue> sa_data_;                // owned storage (empty when borrowed)
  std::vector<std::span<const Value>> qi_views_;  // d columns, each of size n
  std::span<const SaValue> sa_view_;              // size = n
  bool borrowed_ = false;
};

inline QiRow::QiRow(const Table& table, RowId row) : size_(table.qi_count()) {
  Value* out = inline_.data();
  if (size_ > kInlineAttrs) {
    heap_.resize(size_);
    out = heap_.data();
  }
  for (std::size_t a = 0; a < size_; ++a) out[a] = table.qi(row, static_cast<AttrId>(a));
}

}  // namespace ldv

#endif  // LDIV_COMMON_TABLE_H_
