#ifndef LDIV_COMMON_TEXT_TABLE_H_
#define LDIV_COMMON_TEXT_TABLE_H_

#include <string>
#include <vector>

namespace ldv {

/// Column-aligned plain-text table used by the benchmark harness to print
/// paper-style result rows (one TextTable per reproduced figure/table).
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; the cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each cell with the right printf-like conversion.
  void AddRow(std::initializer_list<double> cells, int precision = 3);

  /// Renders the table with padded columns and a header separator.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with fixed `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision = 3);

}  // namespace ldv

#endif  // LDIV_COMMON_TEXT_TABLE_H_
