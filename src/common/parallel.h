#ifndef LDIV_COMMON_PARALLEL_H_
#define LDIV_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/workspace.h"

namespace ldv {

/// std::thread::hardware_concurrency(), with the zero-means-unknown case
/// resolved to 1 so every layer shares the same fallback.
unsigned HardwareThreads();

/// Process-wide thread budget: the total number of threads one run of the
/// engine may use across the batch layer and the in-kernel parallelism.
/// 0 means auto (HardwareThreads()). An explicit budget above the
/// hardware count is honored -- oversubscription is the caller's call,
/// and it is what lets the parallel code paths be exercised on small
/// machines.
void SetThreadBudget(unsigned threads);

/// The resolved budget (>= 1).
unsigned ThreadBudget();

/// The kernel-level parallelism currently granted: ThreadBudget() by
/// default, 1 while a multi-worker AnonymizeBatch holds the budget (its
/// jobs already saturate it, so inner fan-out would only oversubscribe).
unsigned InnerThreads();

/// RAII cap on InnerThreads() for the current scope (process-wide, not
/// per-thread: the batch driver brackets its whole worker fan-out with
/// one scope, so the kernels running on those workers all see the cap).
class InnerThreadsScope {
 public:
  explicit InnerThreadsScope(unsigned threads);
  ~InnerThreadsScope();
  InnerThreadsScope(const InnerThreadsScope&) = delete;
  InnerThreadsScope& operator=(const InnerThreadsScope&) = delete;

 private:
  unsigned previous_;
};

/// One chunk of a parallel loop: the half-open index range [begin, end)
/// plus the Workspace the executing thread owns for its scratch memory.
/// For the calling thread this is the workspace passed to ParallelFor;
/// for pool workers it is the worker's resident workspace.
using ParallelChunkFn =
    std::function<void(std::size_t begin, std::size_t end, Workspace& ws)>;

/// Deterministic parallel loop over [0, n): the range is cut into
/// ceil(n / grain) chunks, chunk k covering [k*grain, min(n, (k+1)*grain)),
/// and the chunks are executed by up to InnerThreads() threads (the caller
/// participates; a lazily started pool supplies the rest). The chunk
/// geometry depends only on (n, grain) -- never on the thread count -- so
/// any output indexed by row or by chunk is byte-identical at every
/// thread count; only the assignment of chunks to threads varies.
///
/// `fn` must therefore write only to locations owned by its chunk (or to
/// per-chunk slots) and may read any shared state that no chunk writes.
/// Chunks claimed by the pool run concurrently; a chunk is never split.
/// Calls from inside a pool worker run inline (no nested fan-out).
///
/// A chunk that throws -- on any thread -- skips the region's remaining
/// chunks and rethrows the first exception on the calling thread once
/// every worker has left the region, so I/O failures inside parallel
/// kernels reach the engine boundary instead of std::terminate.
void ParallelFor(std::size_t n, std::size_t grain, Workspace& ws, const ParallelChunkFn& fn);

/// ParallelFor with an explicit thread count instead of InnerThreads().
void ParallelForThreads(unsigned threads, std::size_t n, std::size_t grain, Workspace& ws,
                        const ParallelChunkFn& fn);

/// In-place exclusive prefix sum over data[0, n): data[i] becomes the sum
/// of the original data[0, i), and the grand total is returned. Runs as
/// two ParallelFor passes (per-chunk sums, then per-chunk rewrites seeded
/// by the sequentially scanned chunk totals), so the result is
/// byte-identical at every thread count. The total must fit in 32 bits --
/// callers sum row or group counts, which are bounded by the row count.
std::uint32_t ParallelExclusivePrefixSum(std::uint32_t* data, std::size_t n, std::size_t grain,
                                         Workspace& ws);

/// Ordered parallel reduction over [0, n): `map` produces one partial
/// result per chunk (same geometry as ParallelFor), and the partials are
/// folded sequentially in ascending chunk order. Because both the chunk
/// geometry and the combine order are pure functions of (n, grain), the
/// result -- including floating-point rounding -- is identical at every
/// thread count.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(std::size_t n, std::size_t grain, Workspace& ws, T identity, const MapFn& map,
                 const CombineFn& combine) {
  if (n == 0) return identity;
  if (grain == 0) grain = 1;  // same normalization as ParallelFor
  const std::size_t chunks = (n + grain - 1) / grain;
  std::vector<T> partial(chunks, identity);
  ParallelFor(n, grain, ws, [&](std::size_t begin, std::size_t end, Workspace& chunk_ws) {
    partial[begin / grain] = map(begin, end, chunk_ws);
  });
  T total = identity;
  for (const T& p : partial) total = combine(total, p);
  return total;
}

}  // namespace ldv

#endif  // LDIV_COMMON_PARALLEL_H_
