#include "common/table.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace ldv {

Table::Table(Schema schema) : schema_(std::move(schema)), qi_columns_(schema_.qi_count()) {
  LDIV_CHECK(schema_.Valid()) << "invalid schema:" << schema_.ToString();
  RefreshViews();
}

void Table::RefreshViews() {
  qi_views_.resize(qi_columns_.size());
  for (std::size_t a = 0; a < qi_columns_.size(); ++a) qi_views_[a] = qi_columns_[a];
  sa_view_ = sa_data_;
}

Table Table::FromColumns(Schema schema, std::vector<std::vector<Value>> qi_columns,
                         std::vector<SaValue> sa_column) {
  Table table(std::move(schema));
  LDIV_CHECK_EQ(qi_columns.size(), table.qi_count());
  for (std::size_t a = 0; a < qi_columns.size(); ++a) {
    LDIV_CHECK_EQ(qi_columns[a].size(), sa_column.size());
    const std::size_t domain = table.schema_.qi(static_cast<AttrId>(a)).domain_size;
    for (Value v : qi_columns[a]) LDIV_CHECK_LT(v, domain);
  }
  for (SaValue v : sa_column) LDIV_CHECK_LT(v, table.schema_.sa_domain_size());
  table.qi_columns_ = std::move(qi_columns);
  table.sa_data_ = std::move(sa_column);
  table.RefreshViews();
  return table;
}

Table Table::FromBorrowedColumns(Schema schema, std::vector<std::span<const Value>> qi_columns,
                                 std::span<const SaValue> sa_column) {
  Table table(std::move(schema));
  LDIV_CHECK_EQ(qi_columns.size(), table.qi_count());
  for (const std::span<const Value>& column : qi_columns) {
    LDIV_CHECK_EQ(column.size(), sa_column.size());
  }
  table.qi_columns_.clear();
  table.sa_data_.clear();
  table.qi_views_ = std::move(qi_columns);
  table.sa_view_ = sa_column;
  table.borrowed_ = true;
  return table;
}

Table::Table(const Table& other)
    : schema_(other.schema_),
      qi_columns_(other.qi_columns_),
      sa_data_(other.sa_data_),
      borrowed_(other.borrowed_) {
  if (borrowed_) {
    // A borrowed copy aliases the same external memory.
    qi_views_ = other.qi_views_;
    sa_view_ = other.sa_view_;
  } else {
    RefreshViews();
  }
}

Table& Table::operator=(const Table& other) {
  if (this != &other) {
    schema_ = other.schema_;
    qi_columns_ = other.qi_columns_;
    sa_data_ = other.sa_data_;
    borrowed_ = other.borrowed_;
    if (borrowed_) {
      qi_views_ = other.qi_views_;
      sa_view_ = other.sa_view_;
    } else {
      RefreshViews();
    }
  }
  return *this;
}

void Table::AppendRow(std::span<const Value> qi_values, SaValue sa) {
  LDIV_CHECK(!borrowed_) << "cannot append to a borrowed table";
  LDIV_CHECK_EQ(qi_values.size(), qi_count());
  for (std::size_t i = 0; i < qi_values.size(); ++i) {
    LDIV_CHECK_LT(qi_values[i], schema_.qi(static_cast<AttrId>(i)).domain_size);
  }
  LDIV_CHECK_LT(sa, schema_.sa_domain_size());
  for (std::size_t i = 0; i < qi_values.size(); ++i) qi_columns_[i].push_back(qi_values[i]);
  sa_data_.push_back(sa);
  RefreshViews();
}

void Table::Reserve(std::size_t rows) {
  LDIV_CHECK(!borrowed_) << "cannot reserve in a borrowed table";
  for (std::vector<Value>& column : qi_columns_) column.reserve(rows);
  sa_data_.reserve(rows);
  RefreshViews();
}

std::vector<std::uint32_t> Table::SaHistogramCounts() const {
  std::vector<std::uint32_t> counts(schema_.sa_domain_size(), 0);
  for (SaValue v : sa_view_) counts[v]++;
  return counts;
}

std::size_t Table::DistinctSaCount() const {
  std::vector<std::uint32_t> counts = SaHistogramCounts();
  return static_cast<std::size_t>(
      std::count_if(counts.begin(), counts.end(), [](std::uint32_t c) { return c > 0; }));
}

Table Table::ProjectQi(const std::vector<AttrId>& qi_subset) const {
  std::vector<std::vector<Value>> columns;
  columns.reserve(qi_subset.size());
  for (AttrId a : qi_subset) {
    LDIV_CHECK_LT(a, qi_count());
    columns.emplace_back(qi_views_[a].begin(), qi_views_[a].end());
  }
  return FromColumns(schema_.Project(qi_subset), std::move(columns),
                     std::vector<SaValue>(sa_view_.begin(), sa_view_.end()));
}

Table Table::SelectRows(const std::vector<RowId>& rows) const {
  for (RowId r : rows) LDIV_CHECK_LT(r, size());
  std::vector<std::vector<Value>> columns(qi_count());
  for (std::size_t a = 0; a < qi_count(); ++a) {
    const std::span<const Value> source = qi_views_[a];
    columns[a].reserve(rows.size());
    for (RowId r : rows) columns[a].push_back(source[r]);
  }
  std::vector<SaValue> sa;
  sa.reserve(rows.size());
  for (RowId r : rows) sa.push_back(sa_view_[r]);
  return FromColumns(schema_, std::move(columns), std::move(sa));
}

Table Table::SampleRows(std::size_t count, Rng& rng) const {
  if (count >= size()) return *this;
  std::vector<RowId> all(size());
  std::iota(all.begin(), all.end(), 0u);
  // Partial Fisher-Yates: the first `count` entries become the sample.
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t j = i + rng.Below(static_cast<std::uint32_t>(size() - i));
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  std::sort(all.begin(), all.end());
  return SelectRows(all);
}

}  // namespace ldv
