#include "common/table.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace ldv {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  LDIV_CHECK(schema_.Valid()) << "invalid schema:" << schema_.ToString();
}

void Table::AppendRow(std::span<const Value> qi_values, SaValue sa) {
  LDIV_CHECK_EQ(qi_values.size(), qi_count());
  for (std::size_t i = 0; i < qi_values.size(); ++i) {
    LDIV_CHECK_LT(qi_values[i], schema_.qi(static_cast<AttrId>(i)).domain_size);
  }
  LDIV_CHECK_LT(sa, schema_.sa_domain_size());
  qi_data_.insert(qi_data_.end(), qi_values.begin(), qi_values.end());
  sa_data_.push_back(sa);
}

void Table::Reserve(std::size_t rows) {
  qi_data_.reserve(rows * qi_count());
  sa_data_.reserve(rows);
}

std::vector<std::uint32_t> Table::SaHistogramCounts() const {
  std::vector<std::uint32_t> counts(schema_.sa_domain_size(), 0);
  for (SaValue v : sa_data_) counts[v]++;
  return counts;
}

std::size_t Table::DistinctSaCount() const {
  std::vector<std::uint32_t> counts = SaHistogramCounts();
  return static_cast<std::size_t>(
      std::count_if(counts.begin(), counts.end(), [](std::uint32_t c) { return c > 0; }));
}

Table Table::ProjectQi(const std::vector<AttrId>& qi_subset) const {
  Table out(schema_.Project(qi_subset));
  out.Reserve(size());
  std::vector<Value> row(qi_subset.size());
  for (RowId r = 0; r < size(); ++r) {
    for (std::size_t j = 0; j < qi_subset.size(); ++j) row[j] = qi(r, qi_subset[j]);
    out.AppendRow(row, sa(r));
  }
  return out;
}

Table Table::SelectRows(const std::vector<RowId>& rows) const {
  Table out(schema_);
  out.Reserve(rows.size());
  for (RowId r : rows) {
    LDIV_CHECK_LT(r, size());
    out.AppendRow(qi_row(r), sa(r));
  }
  return out;
}

Table Table::SampleRows(std::size_t count, Rng& rng) const {
  if (count >= size()) return *this;
  std::vector<RowId> all(size());
  std::iota(all.begin(), all.end(), 0u);
  // Partial Fisher-Yates: the first `count` entries become the sample.
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t j = i + rng.Below(static_cast<std::uint32_t>(size() - i));
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  std::sort(all.begin(), all.end());
  return SelectRows(all);
}

}  // namespace ldv
