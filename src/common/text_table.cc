#include "common/text_table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace ldv {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  LDIV_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::AddRow(std::initializer_list<double> cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double c : cells) row.push_back(FormatDouble(c, precision));
  AddRow(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::setw(static_cast<int>(widths[c])) << row[c];
      out << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c], '-') << (c + 1 == headers_.size() ? "\n" : "  ");
  }
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

}  // namespace ldv
