// Scalar reference kernels and the runtime dispatch of the SIMD layer.
// This translation unit compiles with -ffp-contract=off (see CMakeLists)
// so the scalar KlAccumulate cannot fuse its multiply-add into an FMA --
// the SSE2/AVX2 tiers use separate single-rounded multiplies and adds, and
// bit-equality across tiers depends on the scalar tier doing the same.

#include "common/simd.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ldv {
namespace simd {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;  // 2^40 + 435

void FnvFoldColumnScalar(std::uint64_t* hashes, const std::uint32_t* col, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) hashes[i] = (hashes[i] ^ col[i]) * kFnvPrime;
}

void StrideAccumulateScalar(std::uint64_t* acc, const std::uint32_t* col, std::uint64_t stride,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += stride * col[i];
}

void MinMaxGatherU32Scalar(const std::uint32_t* values, const std::uint32_t* idx, std::size_t n,
                           std::uint32_t* mn, std::uint32_t* mx) {
  std::uint32_t lo = values[idx[0]], hi = lo;
  for (std::size_t i = 1; i < n; ++i) {
    std::uint32_t v = values[idx[i]];
    lo = v < lo ? v : lo;
    hi = v > hi ? v : hi;
  }
  *mn = lo;
  *mx = hi;
}

void GatherU32Scalar(const std::uint32_t* values, const std::uint32_t* idx, std::size_t n,
                     std::uint32_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = values[idx[i]];
}

std::size_t StabCandidatesScalar(const std::uint32_t* candidates, std::size_t n,
                                 const std::uint32_t* point, const std::uint32_t* const* lo,
                                 const std::uint32_t* const* hi, std::size_t d, bool first_only,
                                 std::uint32_t* hits) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t g = candidates[i];
    bool inside = true;
    for (std::size_t a = 1; a < d; ++a) {
      const std::uint32_t v = point[a];
      if (v < lo[a][g] || v >= hi[a][g]) {
        inside = false;
        break;
      }
    }
    if (inside) {
      hits[count++] = g;
      if (first_only) break;
    }
  }
  return count;
}

void KlAccumulateScalar(const double* count, const double* fstar_n, double n, std::size_t len,
                        double acc[4]) {
  for (std::size_t i = 0; i < len; ++i) {
    const double ratio = count[i] / fstar_n[i];
    const double lg = std::log(ratio);
    acc[i & 3] += (count[i] / n) * lg;
  }
}

// Skilling's axes-to-transpose walk followed by the MSB-first bit
// interleave, one row at a time -- the arithmetic matches
// HilbertCurve::Encode exactly (integers, so bit-exactness is free).
void HilbertEncodeBlockScalar(const std::uint32_t* const* cols, std::size_t d,
                              std::uint32_t bits, std::uint32_t shift, std::size_t row_begin,
                              std::size_t count, std::uint64_t* out) {
  std::uint32_t x[64];
  const std::uint32_t m = 1u << (bits - 1);
  for (std::size_t r = 0; r < count; ++r) {
    for (std::size_t i = 0; i < d; ++i) x[i] = cols[i][row_begin + r] >> shift;
    for (std::uint32_t q = m; q > 1; q >>= 1) {
      const std::uint32_t p = q - 1;
      for (std::size_t i = 0; i < d; ++i) {
        if (x[i] & q) {
          x[0] ^= p;
        } else {
          const std::uint32_t t = (x[0] ^ x[i]) & p;
          x[0] ^= t;
          x[i] ^= t;
        }
      }
    }
    for (std::size_t i = 1; i < d; ++i) x[i] ^= x[i - 1];
    std::uint32_t t = 0;
    for (std::uint32_t q = m; q > 1; q >>= 1) {
      if (x[d - 1] & q) t ^= q - 1;
    }
    for (std::size_t i = 0; i < d; ++i) x[i] ^= t;
    std::uint64_t index = 0;
    for (std::uint32_t bit = bits; bit-- > 0;) {
      for (std::size_t i = 0; i < d; ++i) {
        index = (index << 1) | ((x[i] >> bit) & 1u);
      }
    }
    out[r] = index;
  }
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

const detail::Kernels* TableFor(Level level) {
  switch (level) {
    case Level::kAvx2:
      return detail::Avx2Kernels();
    case Level::kSse2:
      return detail::Sse2Kernels();
    case Level::kScalar:
      break;
  }
  return &detail::kScalarKernels;
}

Level Detect() {
#if defined(__x86_64__) || defined(__i386__)
  if (detail::Avx2Kernels() != nullptr && __builtin_cpu_supports("avx2")) return Level::kAvx2;
  if (detail::Sse2Kernels() != nullptr && __builtin_cpu_supports("sse2")) return Level::kSse2;
#endif
  return Level::kScalar;
}

Level Clamp(Level level) {
  const Level best = DetectedLevel();
  return static_cast<int>(level) > static_cast<int>(best) ? best : level;
}

// Initial level: DetectedLevel() clamped by LDIV_SIMD, read once.
Level InitialLevel() {
  const char* env = std::getenv("LDIV_SIMD");
  if (env == nullptr || env[0] == '\0') return DetectedLevel();
  if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(env, "sse2") == 0) return Clamp(Level::kSse2);
  if (std::strcmp(env, "avx2") == 0) return Clamp(Level::kAvx2);
  std::fprintf(stderr, "ldiv: ignoring unknown LDIV_SIMD value '%s' (want scalar|sse2|avx2)\n",
               env);
  return DetectedLevel();
}

std::atomic<const detail::Kernels*>& ActiveTable() {
  static std::atomic<const detail::Kernels*> table{TableFor(InitialLevel())};
  return table;
}

std::atomic<Level>& ActiveLevelSlot() {
  static std::atomic<Level> level{InitialLevel()};
  return level;
}

const detail::Kernels& Active() { return *ActiveTable().load(std::memory_order_relaxed); }

}  // namespace

namespace detail {

const Kernels kScalarKernels = {
    FnvFoldColumnScalar,   StrideAccumulateScalar,  MinMaxGatherU32Scalar, GatherU32Scalar,
    StabCandidatesScalar,  KlAccumulateScalar,      HilbertEncodeBlockScalar,
};

}  // namespace detail

const char* LevelName(Level level) {
  switch (level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kSse2:
      return "sse2";
    case Level::kScalar:
      break;
  }
  return "scalar";
}

Level DetectedLevel() {
  static const Level detected = Detect();
  return detected;
}

Level ActiveLevel() { return ActiveLevelSlot().load(std::memory_order_relaxed); }

void ForceLevel(Level level) {
  const Level clamped = Clamp(level);
  ActiveLevelSlot().store(clamped, std::memory_order_relaxed);
  ActiveTable().store(TableFor(clamped), std::memory_order_relaxed);
}

void FnvFoldColumn(std::uint64_t* hashes, const std::uint32_t* col, std::size_t n) {
  Active().fnv_fold_column(hashes, col, n);
}

void StrideAccumulate(std::uint64_t* acc, const std::uint32_t* col, std::uint64_t stride,
                      std::size_t n) {
  Active().stride_accumulate(acc, col, stride, n);
}

void MinMaxGatherU32(const std::uint32_t* values, const std::uint32_t* idx, std::size_t n,
                     std::uint32_t* mn, std::uint32_t* mx) {
  Active().min_max_gather_u32(values, idx, n, mn, mx);
}

void GatherU32(const std::uint32_t* values, const std::uint32_t* idx, std::size_t n,
               std::uint32_t* out) {
  Active().gather_u32(values, idx, n, out);
}

std::size_t StabCandidates(const std::uint32_t* candidates, std::size_t n,
                           const std::uint32_t* point, const std::uint32_t* const* lo,
                           const std::uint32_t* const* hi, std::size_t d, bool first_only,
                           std::uint32_t* hits) {
  return Active().stab_candidates(candidates, n, point, lo, hi, d, first_only, hits);
}

void KlAccumulate(const double* count, const double* fstar_n, double n, std::size_t len,
                  double acc[4]) {
  Active().kl_accumulate(count, fstar_n, n, len, acc);
}

void HilbertEncodeBlock(const std::uint32_t* const* cols, std::size_t d, std::uint32_t bits,
                        std::uint32_t shift, std::size_t row_begin, std::size_t count,
                        std::uint64_t* out) {
  Active().hilbert_encode_block(cols, d, bits, shift, row_begin, count, out);
}

}  // namespace simd
}  // namespace ldv
