#ifndef LDIV_COMMON_EXTERNAL_SORT_H_
#define LDIV_COMMON_EXTERNAL_SORT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/memory_budget.h"
#include "common/page_cache.h"

namespace ldv {

/// One record of an external sort: ordered by (key, payload). Callers
/// pack their sort key into `key` (e.g. the Hilbert curve index, or
/// group_rank << 32 | sa_value) and the row id into `payload`; the
/// payload tie-break is what makes the order total, so the merged output
/// is byte-deterministic however records were distributed across runs.
struct SortRecord {
  std::uint64_t key = 0;
  std::uint64_t payload = 0;

  friend bool operator<(const SortRecord& a, const SortRecord& b) {
    return a.key != b.key ? a.key < b.key : a.payload < b.payload;
  }
  friend bool operator==(const SortRecord& a, const SortRecord& b) {
    return a.key == b.key && a.payload == b.payload;
  }
};

/// Budget-bounded external merge sort of SortRecords: Add() buffers up to
/// buffer_records in RAM; full buffers are sorted (chunk-parallel via the
/// parallel runtime, then merged) and spilled as one sorted run to an
/// unlinked temp file. Finish() freezes input, and Next() streams the
/// k-way merge of all runs in ascending (key, payload) order through one
/// small read buffer per run. When everything fit in one buffer, no spill
/// I/O happens at all -- the in-RAM fast path sorts and serves directly.
class ExternalSorter {
 public:
  struct Options {
    std::size_t buffer_records = 1u << 20;        // in-RAM run size (16 B each)
    std::size_t merge_buffer_records = 1u << 14;  // per-run merge read buffer
    std::shared_ptr<MemoryBudget> budget;
  };

  /// Creates the sorter (and its spill file); null + `error` when temp
  /// space is missing.
  static std::unique_ptr<ExternalSorter> Create(const Options& options, std::string* error);

  ~ExternalSorter();
  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  void Add(const SortRecord& record);
  void Add(std::uint64_t key, std::uint64_t payload) { Add(SortRecord{key, payload}); }

  /// Sorts and (if runs were spilled) flushes the final run; after this,
  /// Next() streams the merged order.
  void Finish();

  /// Produces the next record in ascending order; false when drained.
  bool Next(SortRecord* out);

  std::uint64_t record_count() const { return record_count_; }

  /// Number of sorted runs the merge reads (1 = in-RAM fast path).
  std::size_t run_count() const;

 private:
  struct Run {
    std::uint64_t offset = 0;  // byte offset in the spill file
    std::uint64_t records = 0;
  };

  struct MergeSource {
    std::vector<SortRecord> buffer;
    std::uint64_t next_record = 0;  // records consumed from the run
    std::size_t buffer_pos = 0;
    std::size_t run = 0;
  };

  explicit ExternalSorter(const Options& options);

  void SortBuffer();
  void SpillRun();
  bool RefillSource(MergeSource& source);

  Options options_;
  std::unique_ptr<SpillFile> file_;
  std::vector<SortRecord> buffer_;
  MemoryReservation buffer_reservation_;
  std::vector<Run> runs_;
  std::uint64_t record_count_ = 0;
  bool finished_ = false;

  // Merge state (built by Finish).
  std::vector<MergeSource> sources_;
  MemoryReservation merge_reservation_;
  std::vector<std::uint32_t> heap_;  // indexes into sources_, min-heap
  std::size_t ram_pos_ = 0;          // cursor for the single-run fast path
};

}  // namespace ldv

#endif  // LDIV_COMMON_EXTERNAL_SORT_H_
