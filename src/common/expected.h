#ifndef LDIV_COMMON_EXPECTED_H_
#define LDIV_COMMON_EXPECTED_H_

#include <utility>
#include <variant>

#include "common/check.h"

namespace ldv {

/// Minimal value-or-error carrier, the return convention of the engine
/// and daemon layers: every fallible call returns `Expected<T, E>` instead
/// of the bool + out-param + error-string triple the CLI pipeline used to
/// thread around. `E` is a typed error (see engine/error.h) so callers
/// branch on a code instead of string-matching messages.
///
/// Accessors abort on misuse (value() on an error) -- checking ok() first
/// is part of the contract, exactly like dereferencing an optional.
template <typename T, typename E>
class Expected {
 public:
  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Expected(E error) : state_(std::in_place_index<1>, std::move(error)) {}

  bool ok() const { return state_.index() == 0; }
  explicit operator bool() const { return ok(); }

  T& value() {
    LDIV_CHECK(ok()) << "Expected::value() on an error";
    return std::get<0>(state_);
  }
  const T& value() const {
    LDIV_CHECK(ok()) << "Expected::value() on an error";
    return std::get<0>(state_);
  }

  E& error() {
    LDIV_CHECK(!ok()) << "Expected::error() on a value";
    return std::get<1>(state_);
  }
  const E& error() const {
    LDIV_CHECK(!ok()) << "Expected::error() on a value";
    return std::get<1>(state_);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  std::variant<T, E> state_;
};

}  // namespace ldv

#endif  // LDIV_COMMON_EXPECTED_H_
