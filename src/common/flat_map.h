#ifndef LDIV_COMMON_FLAT_MAP_H_
#define LDIV_COMMON_FLAT_MAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace ldv {

/// splitmix64 finalizer: full-avalanche mixing of a 64-bit key. Hot-path
/// keys (packed point ids, signature hashes) are highly structured, so
/// they must be scrambled before masking into a power-of-two table.
inline std::uint64_t MixU64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Open-addressing hash map from 64-bit keys to small trivially-copyable
/// values, built for the packed-point and packed-cell accumulation loops of
/// the KL estimators and for QI-signature indexing. Compared with
/// std::unordered_map it stores everything in three flat arrays (keys,
/// values, one occupancy byte per slot), probes linearly, and never
/// allocates per node -- a lookup touches one or two cache lines instead of
/// chasing a bucket list. Clear() keeps the capacity so a map owned by a
/// Workspace is allocation-free across solves.
///
/// Keys are arbitrary 64-bit values (0 and ~0 included); occupancy is
/// tracked in a separate byte array rather than via a reserved sentinel key.
/// There is no erase: the hot paths only ever build and probe.
template <typename V>
class FlatMap {
 public:
  FlatMap() = default;

  /// A map pre-sized for `expected` insertions.
  explicit FlatMap(std::size_t expected) { Reserve(expected); }

  /// Number of keys present.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of slots currently allocated.
  std::size_t capacity() const { return keys_.size(); }

  /// Grows the backing arrays so `expected` insertions fit without rehash.
  void Reserve(std::size_t expected) {
    std::size_t needed = SlotsFor(expected);
    if (needed > keys_.size()) Rehash(needed);
  }

  /// Forgets every key but keeps the allocated capacity.
  void Clear() {
    if (size_ == 0) return;
    std::fill(used_.begin(), used_.end(), std::uint8_t{0});
    size_ = 0;
  }

  /// Pointer to the value of `key`, or nullptr when absent.
  V* Find(std::uint64_t key) {
    if (keys_.empty()) return nullptr;
    std::size_t i = Mix(key) & mask_;
    while (used_[i]) {
      if (keys_[i] == key) return &vals_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const V* Find(std::uint64_t key) const {
    return const_cast<FlatMap*>(this)->Find(key);
  }

  /// Inserts (key, value) if the key is absent. Returns the slot's value
  /// pointer and whether an insertion happened (mirroring try_emplace).
  std::pair<V*, bool> TryEmplace(std::uint64_t key, V value) {
    if (ShouldGrow()) Rehash(keys_.empty() ? kMinSlots : keys_.size() * 2);
    std::size_t i = Mix(key) & mask_;
    while (used_[i]) {
      if (keys_[i] == key) return {&vals_[i], false};
      i = (i + 1) & mask_;
    }
    used_[i] = 1;
    keys_[i] = key;
    vals_[i] = value;
    ++size_;
    return {&vals_[i], true};
  }

  /// The value of `key`, default-inserted when absent.
  V& operator[](std::uint64_t key) { return *TryEmplace(key, V{}).first; }

  /// Calls `fn(key, value)` for every entry, in slot order (deterministic
  /// for a given insertion sequence and capacity).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (used_[i]) fn(keys_[i], vals_[i]);
    }
  }

 private:
  static constexpr std::size_t kMinSlots = 16;

  // Slots are kept at most 7/8 full; capacity is always a power of two.
  static std::size_t SlotsFor(std::size_t entries) {
    std::size_t slots = kMinSlots;
    while (slots - slots / 8 < entries) slots <<= 1;
    return slots;
  }

  bool ShouldGrow() const {
    return keys_.empty() || size_ + 1 > keys_.size() - keys_.size() / 8;
  }

  static std::uint64_t Mix(std::uint64_t x) { return MixU64(x); }

  void Rehash(std::size_t new_slots) {
    LDIV_CHECK((new_slots & (new_slots - 1)) == 0);
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_vals = std::move(vals_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    keys_.assign(new_slots, 0);
    vals_.assign(new_slots, V{});
    used_.assign(new_slots, 0);
    mask_ = new_slots - 1;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (!old_used[i]) continue;
      std::size_t j = Mix(old_keys[i]) & mask_;
      while (used_[j]) j = (j + 1) & mask_;
      used_[j] = 1;
      keys_[j] = old_keys[i];
      vals_[j] = old_vals[i];
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<V> vals_;
  std::vector<std::uint8_t> used_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Companion set of 64-bit keys with the same layout and probing scheme.
class FlatSet {
 public:
  FlatSet() = default;
  explicit FlatSet(std::size_t expected) : map_(expected) {}

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void Reserve(std::size_t expected) { map_.Reserve(expected); }
  void Clear() { map_.Clear(); }

  /// Inserts `key`; returns true iff it was absent.
  bool Insert(std::uint64_t key) { return map_.TryEmplace(key, 0).second; }

  bool Contains(std::uint64_t key) const { return map_.Find(key) != nullptr; }

 private:
  FlatMap<std::uint8_t> map_;
};

}  // namespace ldv

#endif  // LDIV_COMMON_FLAT_MAP_H_
