#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace ldv {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  LDIV_CHECK_GT(n, 0u);
  LDIV_CHECK_GE(s, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (std::size_t k = 0; k < n; ++k) cdf_[k] /= total;
  cdf_.back() = 1.0;  // guard against floating point shortfall
}

std::uint32_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::uint32_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(std::uint32_t k) const {
  LDIV_CHECK_LT(k, cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace ldv
