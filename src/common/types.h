#ifndef LDIV_COMMON_TYPES_H_
#define LDIV_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace ldv {

/// A categorical attribute value. The microdata model of the paper (Section 3)
/// is fully categorical: every attribute value is an integer code into the
/// attribute's domain `[0, domain_size)`.
using Value = std::uint32_t;

/// The suppression marker '*' used by generalization (Definition 1).
/// It is deliberately outside every valid domain.
inline constexpr Value kStar = std::numeric_limits<Value>::max();

/// Index of an attribute within a schema (0-based; the paper writes A_1..A_d).
using AttrId = std::uint32_t;

/// Index of a row (tuple) within a table. The paper's cardinality n.
using RowId = std::uint32_t;

/// Index of a QI-group within a partition or grouped table.
using GroupId = std::uint32_t;

/// A sensitive-attribute value. The paper assumes SA values come from the
/// integer domain [m] = {1, ..., m}; we use 0-based codes [0, m).
using SaValue = std::uint32_t;

/// Returns true if `v` is the suppression marker.
inline constexpr bool IsStar(Value v) { return v == kStar; }

}  // namespace ldv

#endif  // LDIV_COMMON_TYPES_H_
