#ifndef LDIV_COMMON_PAGED_COLUMN_H_
#define LDIV_COMMON_PAGED_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/memory_budget.h"
#include "common/page_cache.h"
#include "common/schema.h"
#include "common/table.h"
#include "common/types.h"

namespace ldv {

/// One out-of-core u32 column: an append-only sequence of fixed-size pages
/// spilled to its own unlinked temp file, so the on-disk byte layout is
/// column-contiguous (the file IS the column, a little-endian u32 array).
/// While open, appends stage into one private page-sized buffer and write
/// full pages through to the file -- resident cost is exactly one page.
/// Seal() flushes the tail and optionally memory-maps the file read-only;
/// a mapped column serves its whole range as one contiguous span, which is
/// how sealed paged tables feed the unmodified solver kernels. Unmapped
/// sealed columns are read page-at-a-time through the shared PageCache.
class PagedColumn {
 public:
  /// `file` is the column's private spill file; `cache` serves unmapped
  /// reads and must outlive the column. `page_bytes` must match the
  /// cache's page size and be a multiple of sizeof(u32).
  PagedColumn(std::unique_ptr<SpillFile> file, PageCache* cache,
              std::shared_ptr<MemoryBudget> budget);

  ~PagedColumn();
  PagedColumn(const PagedColumn&) = delete;
  PagedColumn& operator=(const PagedColumn&) = delete;

  std::uint64_t size() const { return size_; }
  bool sealed() const { return sealed_; }
  bool mapped() const { return map_addr_ != nullptr; }

  std::size_t page_bytes() const { return cache_->page_bytes(); }
  std::size_t values_per_page() const { return page_bytes() / sizeof(std::uint32_t); }
  std::uint64_t page_count() const {
    return (size_ + values_per_page() - 1) / values_per_page();
  }
  const SpillFile& file() const { return *file_; }

  /// Appends `count` values (column must not be sealed).
  void Append(const std::uint32_t* values, std::size_t count);
  void Append(std::uint32_t value) { Append(&value, 1); }

  /// Flushes the tail page and freezes the column. With `map` set, the
  /// spill file is additionally memory-mapped read-only (false + `error`
  /// if the mapping fails); without it, reads go through the page cache.
  bool Seal(bool map, std::string* error);

  /// Maps a sealed-but-unmapped column read-only (idempotent); false +
  /// `error` if mmap fails.
  bool Map(std::string* error);

  /// The whole column as one contiguous span (sealed + mapped only).
  std::span<const std::uint32_t> mapping() const;

  /// Random access to one value of a sealed column; unmapped columns pay
  /// a pin/unpin round trip, so bulk readers should use ColumnCursor.
  std::uint32_t Get(std::uint64_t row) const;

 private:
  friend class ColumnCursor;

  std::size_t PageValidBytes(std::uint64_t page) const;

  std::unique_ptr<SpillFile> file_;
  PageCache* cache_;
  std::vector<std::uint32_t> staging_;  // one open page of pending appends
  MemoryReservation staging_reservation_;
  std::uint64_t size_ = 0;
  bool sealed_ = false;
  void* map_addr_ = nullptr;
  std::size_t map_bytes_ = 0;
};

/// Forward scan over rows [begin, end) of a sealed PagedColumn, handing
/// out contiguous in-page spans: the existing columnar kernels
/// (simd::FnvFoldColumn, simd::HilbertEncodeBlock, min/max and histogram
/// sweeps) run unchanged on each span. On a mapped column the very first
/// Next() yields the whole range as a single span; on an unmapped column
/// each span is one page, pinned while the caller holds it and unpinned
/// by the following Next() (or the destructor), so a scan holds exactly
/// one cache frame at a time.
class ColumnCursor {
 public:
  ColumnCursor(const PagedColumn& column, std::uint64_t begin, std::uint64_t end);
  explicit ColumnCursor(const PagedColumn& column) : ColumnCursor(column, 0, column.size()) {}
  ~ColumnCursor();
  ColumnCursor(const ColumnCursor&) = delete;
  ColumnCursor& operator=(const ColumnCursor&) = delete;

  /// Advances to the next span; false at the end of the range.
  bool Next(std::span<const std::uint32_t>* span);

 private:
  void ReleasePin();

  const PagedColumn* column_;
  std::uint64_t pos_;
  std::uint64_t end_;
  bool pinned_ = false;
  std::uint64_t pinned_page_ = 0;
};

/// A sealed out-of-core table: one PagedColumn per QI attribute plus the
/// SA column, sharing one bounded PageCache. When built with map_on_seal
/// (the production path), resident() exposes the mappings as a borrowed
/// Table, so every solver and the shared post-processing run on it
/// unchanged -- the OS pages column bytes in and out beneath the fixed
/// virtual mapping, while the explicitly budgeted structures (cache
/// frames, staging pages, external-sort runs) stay within MemoryBudget.
class PagedTable {
 public:
  const Schema& schema() const { return schema_; }
  std::uint64_t size() const { return rows_; }
  std::size_t qi_count() const { return schema_.qi_count(); }

  const PagedColumn& qi(AttrId attr) const { return *qi_columns_[attr]; }
  const PagedColumn& sa() const { return *sa_column_; }

  PageCache& cache() const { return *cache_; }

  /// The borrowed in-RAM view over the sealed mappings (map_on_seal only).
  const Table& resident() const;
  bool has_resident() const { return resident_.has_value(); }

  /// Streaming SA histogram via ColumnCursor spans (works unmapped).
  std::vector<std::uint32_t> SaHistogramCounts() const;

 private:
  friend class PagedTableBuilder;
  PagedTable() = default;

  Schema schema_;
  std::uint64_t rows_ = 0;
  std::unique_ptr<PageCache> cache_;
  std::vector<std::unique_ptr<PagedColumn>> qi_columns_;
  std::unique_ptr<PagedColumn> sa_column_;
  std::optional<Table> resident_;
};

/// Streaming writer for a PagedTable: rows (or column chunks) go straight
/// into per-column staging pages and spill files, so ingestion never
/// materializes the row set. Finish() validates every column against the
/// schema domains with a cursor sweep (this is the page cache's first
/// production read), seals, maps, and returns the table.
class PagedTableBuilder {
 public:
  struct Options {
    std::size_t page_bytes = kDefaultPageBytes;
    std::size_t cache_frames = 64;
    // e.g. GlobalMemoryBudgetShared(); may be null. Shared so the built
    // table can outlive the budget epoch it was ingested under.
    std::shared_ptr<MemoryBudget> budget;
    bool map_on_seal = true;  // tests disable to force cache reads
  };

  /// Creates the spill files; null + `error` when temp space is missing.
  static std::unique_ptr<PagedTableBuilder> Create(std::size_t qi_count, const Options& options,
                                                   std::string* error);

  std::uint64_t size() const { return rows_; }
  std::size_t qi_count() const { return qi_columns_.size(); }

  /// Appends one row: qi_values.size() must equal qi_count().
  void AppendRow(std::span<const Value> qi_values, SaValue sa);

  /// Bulk append of one column's next `count` values (columns may be fed
  /// independently but must all reach the same length by Finish).
  void AppendQiChunk(AttrId attr, const Value* values, std::size_t count);
  void AppendSaChunk(const SaValue* values, std::size_t count);

  /// Validates against `schema`, seals (and maps, per options) every
  /// column, and returns the finished table; null + `error` on
  /// out-of-domain values, ragged columns, or mapping failure.
  std::unique_ptr<PagedTable> Finish(Schema schema, std::string* error);

 private:
  explicit PagedTableBuilder(Options options) : options_(options) {}

  Options options_;
  std::uint64_t rows_ = 0;
  std::unique_ptr<PageCache> cache_;
  std::vector<std::unique_ptr<PagedColumn>> qi_columns_;
  std::unique_ptr<PagedColumn> sa_column_;
};

}  // namespace ldv

#endif  // LDIV_COMMON_PAGED_COLUMN_H_
