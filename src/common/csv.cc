#include "common/csv.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>

#include "common/failpoint.h"

namespace ldv {

namespace {

// Parses one cell as a non-negative integer code. Returns false on any
// malformed character, an empty cell, or a value that cannot be a Value
// code (more than 10 digits would wrap the accumulator).
bool ParseUintCell(const std::string& cell, std::uint64_t* out) {
  if (cell.empty() || cell.size() > 10) return false;
  std::uint64_t value = 0;
  for (char c : cell) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (value > std::numeric_limits<Value>::max()) return false;
  *out = value;
  return true;
}

void SetError(CsvError* error, const std::string& path, std::size_t line, std::size_t column,
              std::string reason) {
  if (error == nullptr) return;
  error->path = path;
  error->line = line;
  error->column = column;
  error->reason = std::move(reason);
}

// True when `name` is the generated placeholder ParseSchemaSpec assigns to
// an unnamed attribute ("Q1".."Qd" for QI position `index`, "S" for the
// SA); placeholder names accept any header spelling.
bool IsPlaceholderName(const std::string& name, std::size_t index, bool is_sa) {
  if (is_sa) return name == "S";
  return name == "Q" + std::to_string(index + 1);
}

// Validates the header row of a coded CSV against the schema: d+1 columns,
// each named column matching its schema attribute (placeholders excepted).
bool ValidateHeader(const Schema& schema, const std::vector<std::string>& header,
                    const std::string& path, CsvError* error) {
  const std::size_t want = schema.qi_count() + 1;
  if (header.size() != want) {
    SetError(error, path, 1, 0,
             "header has " + std::to_string(header.size()) + " columns; schema " +
                 schema.ToString() + " expects " + std::to_string(want) + " (QI attributes + SA)");
    return false;
  }
  for (std::size_t i = 0; i < header.size(); ++i) {
    const bool is_sa = i + 1 == header.size();
    const std::string& want_name =
        is_sa ? schema.sensitive().name : schema.qi(static_cast<AttrId>(i)).name;
    if (header[i] == want_name || IsPlaceholderName(want_name, i, is_sa)) continue;
    SetError(error, path, 1, i + 1,
             "header column '" + header[i] + "' does not match schema attribute '" + want_name +
                 "'");
    return false;
  }
  return true;
}

}  // namespace

std::string CsvError::ToString() const {
  std::string out = path;
  if (line > 0) out += ":" + std::to_string(line);
  out += ": ";
  if (column > 0) out += "column " + std::to_string(column) + ": ";
  out += reason;
  return out;
}

bool SplitCsvRecord(const std::string& line, std::vector<std::string>* cells,
                    std::size_t* open_cell) {
  cells->clear();
  std::size_t length = line.size();
  if (length > 0 && line[length - 1] == '\r') --length;  // CRLF input
  std::string cell;
  bool in_quotes = false;
  for (std::size_t i = 0; i < length; ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < length && line[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"' && cell.empty()) {
      in_quotes = true;
    } else if (c == ',') {
      cells->push_back(std::move(cell));
      cell.clear();
    } else {
      cell.push_back(c);
    }
  }
  cells->push_back(std::move(cell));
  if (in_quotes && open_cell != nullptr) *open_cell = cells->size();
  return !in_quotes;
}

void SplitCsvLine(const std::string& line, std::vector<std::string>* cells) {
  SplitCsvRecord(line, cells, nullptr);
}

bool IsBlankCsvLine(const std::string& line) { return line.empty() || line == "\r"; }

std::string CsvEscapeCell(const std::string& cell) {
  bool needs_quotes = false;
  for (char c : cell) {
    if (c == ',' || c == '"') {
      needs_quotes = true;
      break;
    }
  }
  if (!cell.empty() && (cell.front() == ' ' || cell.back() == ' ')) needs_quotes = true;
  if (!needs_quotes) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') {
      quoted += "\"\"";
    } else {
      quoted.push_back(c);
    }
  }
  quoted += "\"";
  return quoted;
}

std::string DecodeCsvValue(const Attribute& attr, Value v) {
  if (attr.has_dictionary()) return CsvEscapeCell(attr.dictionary.label(v));
  return std::to_string(v);
}

bool WriteTableCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  const Schema& schema = table.schema();
  for (std::size_t i = 0; i < schema.qi_count(); ++i) {
    out << CsvEscapeCell(schema.qi(static_cast<AttrId>(i)).name) << ",";
  }
  out << CsvEscapeCell(schema.sensitive().name) << "\n";
  for (RowId r = 0; r < table.size(); ++r) {
    for (AttrId a = 0; a < table.qi_count(); ++a) out << table.qi(r, a) << ",";
    out << table.sa(r) << "\n";
  }
  return static_cast<bool>(out);
}

namespace {

// Splits the next line into cells with quote-state checking; false (with
// `error` positioned at the open cell) when the line -- including a final
// line truncated mid-quoted-field -- ends inside an open quote.
bool SplitRecordChecked(const std::string& line, std::size_t line_number,
                        const std::string& path, std::vector<std::string>* cells,
                        CsvError* error) {
  std::size_t open_cell = 0;
  if (SplitCsvRecord(line, cells, &open_cell)) return true;
  SetError(error, path, line_number, open_cell,
           "unterminated quoted cell (quote opened but never closed before the end of the "
           "line or file)");
  return false;
}

// Streaming core of the coded readers: opens `path`, validates the header
// against `schema`, then parses and domain-checks each data row and hands
// it to row_fn(qi_values, sa). Both the in-RAM and the paged reader are
// this loop plus a different sink, which is what keeps their outputs
// byte-identical.
template <typename RowFn>
bool StreamCodedCsv(const Schema& schema, const std::string& path, CsvError* error,
                    const RowFn& row_fn) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, path, 0, 0, "cannot open file");
    return false;
  }
  std::string line;
  if (!std::getline(in, line)) {
    SetError(error, path, 1, 0, "empty file (missing header row)");
    return false;
  }
  std::vector<std::string> cells;
  if (!SplitRecordChecked(line, 1, path, &cells, error)) return false;
  if (!ValidateHeader(schema, cells, path, error)) return false;

  const std::size_t d = schema.qi_count();
  std::vector<Value> qi(d);
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    failpoint::Injection injection;
    if (failpoint::Check(failpoint::Site::kCsvRead, &injection)) {
      SetError(error, path, line_number, 0,
               failpoint::Describe(failpoint::Site::kCsvRead, injection, "read failed"));
      return false;
    }
    if (IsBlankCsvLine(line)) continue;
    if (!SplitRecordChecked(line, line_number, path, &cells, error)) return false;
    if (cells.size() != d + 1) {
      SetError(error, path, line_number, 0,
               "row has " + std::to_string(cells.size()) + " cells; expected " +
                   std::to_string(d + 1));
      return false;
    }
    SaValue sa = 0;
    for (std::size_t i = 0; i <= d; ++i) {
      const bool is_sa = i == d;
      const Attribute& attr = is_sa ? schema.sensitive() : schema.qi(static_cast<AttrId>(i));
      std::uint64_t value = 0;
      if (!ParseUintCell(cells[i], &value)) {
        SetError(error, path, line_number, i + 1,
                 "cell '" + cells[i] + "' is not a non-negative integer code (is this a raw " +
                     "string-valued CSV? load it with format 'raw')");
        return false;
      }
      if (value >= attr.domain_size) {
        SetError(error, path, line_number, i + 1,
                 "value " + std::to_string(value) + " is outside the domain [0, " +
                     std::to_string(attr.domain_size) + ") of attribute '" + attr.name + "'");
        return false;
      }
      if (is_sa) {
        sa = static_cast<SaValue>(value);
      } else {
        qi[i] = static_cast<Value>(value);
      }
    }
    row_fn(std::span<const Value>(qi), sa);
  }
  if (in.bad()) {
    // getline's eof and a mid-file read error look identical without this
    // check: a truncated table would silently pass as a complete one.
    SetError(error, path, line_number, 0,
             std::string("read failed: ") + std::strerror(errno));
    return false;
  }
  return true;
}

// Streaming core of the raw readers: parses + validates the header, calls
// on_header(d) once (false aborts; the callback has set `error`), then
// dictionary-encodes each row and hands it to row_fn(qi_values, sa).
// Fills `out_schema` (with the dictionaries attached) on success.
// Dictionary codes are insertion-ordered by first appearance in file
// order, so every sink sees the identical encoding.
template <typename HeaderFn, typename RowFn>
bool StreamRawCsv(const std::string& path, CsvError* error, const HeaderFn& on_header,
                  const RowFn& row_fn, Schema* out_schema) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, path, 0, 0, "cannot open file");
    return false;
  }
  std::string line;
  if (!std::getline(in, line)) {
    SetError(error, path, 1, 0, "empty file (missing header row)");
    return false;
  }
  std::vector<std::string> header;
  if (!SplitRecordChecked(line, 1, path, &header, error)) return false;
  if (header.size() < 2) {
    SetError(error, path, 1, 0,
             "header names " + std::to_string(header.size()) +
                 " columns; raw ingestion needs at least one QI column plus the sensitive " +
                 "attribute (last column)");
    return false;
  }
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i].empty()) {
      SetError(error, path, 1, i + 1, "empty attribute name in header");
      return false;
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (header[i] == header[j]) {
        SetError(error, path, 1, i + 1,
                 "duplicate attribute name '" + header[i] +
                     "' in header (the dictionary sidecar keys labels by attribute name)");
        return false;
      }
    }
  }

  const std::size_t d = header.size() - 1;
  if (!on_header(d)) return false;
  std::vector<ValueDictionary> dictionaries(d + 1);
  std::vector<Value> qi(d);
  std::vector<std::string> cells;
  std::size_t line_number = 1;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    ++line_number;
    failpoint::Injection injection;
    if (failpoint::Check(failpoint::Site::kCsvRead, &injection)) {
      SetError(error, path, line_number, 0,
               failpoint::Describe(failpoint::Site::kCsvRead, injection, "read failed"));
      return false;
    }
    if (IsBlankCsvLine(line)) continue;
    if (!SplitRecordChecked(line, line_number, path, &cells, error)) return false;
    if (cells.size() != d + 1) {
      SetError(error, path, line_number, 0,
               "row has " + std::to_string(cells.size()) + " cells; the header names " +
                   std::to_string(d + 1));
      return false;
    }
    SaValue sa = 0;
    for (std::size_t i = 0; i <= d; ++i) {
      if (cells[i].empty()) {
        SetError(error, path, line_number, i + 1,
                 "empty cell (labels must be non-empty under attribute '" + header[i] + "')");
        return false;
      }
      if (cells[i] == "*") {
        SetError(error, path, line_number, i + 1,
                 "the label '*' is reserved for the suppression marker releases use");
        return false;
      }
      Value code = dictionaries[i].GetOrAdd(cells[i]);
      if (i < d) {
        qi[i] = code;
      } else {
        sa = static_cast<SaValue>(code);
      }
    }
    row_fn(std::span<const Value>(qi), sa);
    ++rows;
  }
  if (in.bad()) {
    SetError(error, path, line_number, 0,
             std::string("read failed: ") + std::strerror(errno));
    return false;
  }
  if (rows == 0) {
    SetError(error, path, line_number, 0, "no data rows after the header");
    return false;
  }

  std::vector<Attribute> qi_attributes(d);
  for (std::size_t i = 0; i < d; ++i) {
    qi_attributes[i].name = header[i];
    qi_attributes[i].domain_size = dictionaries[i].size();
    qi_attributes[i].dictionary = std::move(dictionaries[i]);
  }
  Attribute sensitive;
  sensitive.name = header[d];
  sensitive.domain_size = dictionaries[d].size();
  sensitive.dictionary = std::move(dictionaries[d]);
  *out_schema = Schema(std::move(qi_attributes), std::move(sensitive));
  return true;
}

}  // namespace

std::optional<Table> ReadTableCsv(const Schema& schema, const std::string& path, CsvError* error) {
  Table table(schema);
  if (!StreamCodedCsv(schema, path, error, [&table](std::span<const Value> qi, SaValue sa) {
        table.AppendRow(qi, sa);
      })) {
    return std::nullopt;
  }
  return table;
}

std::optional<Table> ReadRawTableCsv(const std::string& path, CsvError* error) {
  // In-RAM sink: accumulate plain column vectors and bulk-construct, the
  // same shape (and cost) as the pre-streaming reader.
  std::vector<std::vector<Value>> columns;
  std::vector<SaValue> sa_column;
  Schema schema;
  const bool ok = StreamRawCsv(
      path, error,
      [&columns](std::size_t d) {
        columns.resize(d);
        return true;
      },
      [&columns, &sa_column](std::span<const Value> qi, SaValue sa) {
        for (std::size_t i = 0; i < qi.size(); ++i) columns[i].push_back(qi[i]);
        sa_column.push_back(sa);
      },
      &schema);
  if (!ok) return std::nullopt;
  return Table::FromColumns(std::move(schema), std::move(columns), std::move(sa_column));
}

std::unique_ptr<PagedTable> ReadTableCsvPaged(const Schema& schema, const std::string& path,
                                              const PagedTableBuilder::Options& options,
                                              CsvError* error) {
  std::string build_error;
  std::unique_ptr<PagedTableBuilder> builder =
      PagedTableBuilder::Create(schema.qi_count(), options, &build_error);
  if (builder == nullptr) {
    SetError(error, path, 0, 0, build_error);
    return nullptr;
  }
  if (!StreamCodedCsv(schema, path, error, [&builder](std::span<const Value> qi, SaValue sa) {
        builder->AppendRow(qi, sa);
      })) {
    return nullptr;
  }
  std::unique_ptr<PagedTable> table = builder->Finish(schema, &build_error);
  if (table == nullptr) SetError(error, path, 0, 0, build_error);
  return table;
}

std::unique_ptr<PagedTable> ReadRawTableCsvPaged(const std::string& path,
                                                 const PagedTableBuilder::Options& options,
                                                 CsvError* error) {
  std::string build_error;
  std::unique_ptr<PagedTableBuilder> builder;
  Schema schema;
  const bool ok = StreamRawCsv(
      path, error,
      [&builder, &options, &build_error, &error, &path](std::size_t d) {
        builder = PagedTableBuilder::Create(d, options, &build_error);
        if (builder == nullptr) {
          SetError(error, path, 0, 0, build_error);
          return false;
        }
        return true;
      },
      [&builder](std::span<const Value> qi, SaValue sa) { builder->AppendRow(qi, sa); },
      &schema);
  if (!ok) return nullptr;
  std::unique_ptr<PagedTable> table = builder->Finish(std::move(schema), &build_error);
  if (table == nullptr) SetError(error, path, 0, 0, build_error);
  return table;
}

bool WriteDictionaryCsv(const Schema& schema, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "attribute,code,label\n";
  auto write_attribute = [&out](const Attribute& attr) {
    for (Value code = 0; code < attr.dictionary.size(); ++code) {
      out << CsvEscapeCell(attr.name) << "," << code << ","
          << CsvEscapeCell(attr.dictionary.label(code)) << "\n";
    }
  };
  for (std::size_t a = 0; a < schema.qi_count(); ++a) {
    write_attribute(schema.qi(static_cast<AttrId>(a)));
  }
  write_attribute(schema.sensitive());
  return static_cast<bool>(out);
}

}  // namespace ldv
