#include "common/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace ldv {

namespace {

// Parses one CSV line of non-negative integers. Returns false on any
// malformed cell.
bool ParseIntLine(const std::string& line, std::vector<std::uint64_t>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos <= line.size()) {
    std::size_t comma = line.find(',', pos);
    std::string cell = line.substr(pos, comma == std::string::npos ? std::string::npos
                                                                   : comma - pos);
    if (cell.empty()) return false;
    std::uint64_t value = 0;
    for (char c : cell) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out.push_back(value);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

}  // namespace

bool WriteTableCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  const Schema& schema = table.schema();
  for (std::size_t i = 0; i < schema.qi_count(); ++i) {
    out << schema.qi(static_cast<AttrId>(i)).name << ",";
  }
  out << schema.sensitive().name << "\n";
  for (RowId r = 0; r < table.size(); ++r) {
    for (Value v : table.qi_row(r)) out << v << ",";
    out << table.sa(r) << "\n";
  }
  return static_cast<bool>(out);
}

std::optional<Table> ReadTableCsv(const Schema& schema, const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;  // header

  Table table(schema);
  std::vector<std::uint64_t> cells;
  std::vector<Value> qi(schema.qi_count());
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!ParseIntLine(line, cells)) return std::nullopt;
    if (cells.size() != schema.qi_count() + 1) return std::nullopt;
    for (std::size_t i = 0; i < schema.qi_count(); ++i) {
      if (cells[i] >= schema.qi(static_cast<AttrId>(i)).domain_size) return std::nullopt;
      qi[i] = static_cast<Value>(cells[i]);
    }
    if (cells.back() >= schema.sa_domain_size()) return std::nullopt;
    table.AppendRow(qi, static_cast<SaValue>(cells.back()));
  }
  return table;
}

}  // namespace ldv
