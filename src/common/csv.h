#ifndef LDIV_COMMON_CSV_H_
#define LDIV_COMMON_CSV_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/paged_column.h"
#include "common/table.h"

namespace ldv {

/// Structured description of one CSV load failure: which line (1-based,
/// counting the header; 0 = file-level), which column (1-based; 0 = the
/// whole line), and why. Everything here is user input, so load failures
/// report through this struct instead of aborting -- the CLI renders
/// ToString() as its one-line usage error.
struct CsvError {
  std::string path;
  std::size_t line = 0;
  std::size_t column = 0;
  std::string reason;

  /// One-line rendering, e.g. "micro.csv:5: column 3: value 12 is outside
  /// the domain [0, 9) of attribute 'Race'".
  std::string ToString() const;
};

/// Splits one CSV line into cells on commas, honoring RFC-4180 double
/// quotes ("a,b" is one cell; "" inside quotes is a literal quote). A
/// trailing carriage return (CRLF files saved on Windows) is stripped
/// before splitting so it can never leak into the last cell's label.
/// Embedded newlines are not supported -- ingestion is line-oriented.
/// A quote left open at the end of the line is silently treated as
/// closed; readers use SplitCsvRecord to reject that case instead.
void SplitCsvLine(const std::string& line, std::vector<std::string>* cells);

/// SplitCsvLine with quote-state checking: returns false when the line
/// (or the file's final unterminated chunk) ends inside an open quoted
/// cell, filling `open_cell` (when non-null) with the 1-based index of
/// the offending cell. The cells parsed so far are still delivered. All
/// ingestion goes through this so a truncated quoted field surfaces a
/// positioned CsvError instead of EOF-succeeding with a mangled label.
bool SplitCsvRecord(const std::string& line, std::vector<std::string>* cells,
                    std::size_t* open_cell);

/// True when the line holds no cells at all: empty, or a bare carriage
/// return left behind by CRLF line endings. Readers skip such lines.
bool IsBlankCsvLine(const std::string& line);

/// Quotes `cell` for CSV output when it contains a comma, a quote, or
/// leading/trailing whitespace; returns it verbatim otherwise.
std::string CsvEscapeCell(const std::string& cell);

/// Renders one attribute value for human-readable output: its dictionary
/// label (CSV-escaped) when the attribute carries one, its integer code
/// otherwise. Shared by the release writers so the suppression view and
/// the Anatomy pair decode identically.
std::string DecodeCsvValue(const Attribute& attr, Value v);

/// Writes `table` as CSV with a header row (QI attribute names then the SA
/// name). Values are written as their integer codes; suppression markers
/// never appear in raw microdata. Returns false on I/O failure.
bool WriteTableCsv(const Table& table, const std::string& path);

/// Reads a coded CSV produced by WriteTableCsv back into a table with the
/// given schema. The header row is validated against the schema: the
/// column count must be d+1 and every named column must match the schema's
/// attribute name (generated placeholder names Q1..Qd / S accept any
/// header). Returns std::nullopt on I/O or parse failure (header mismatch,
/// wrong column count, non-numeric cell, value outside its domain) and
/// fills `*error` with the line/column/reason when provided.
std::optional<Table> ReadTableCsv(const Schema& schema, const std::string& path,
                                  CsvError* error = nullptr);

/// Reads a raw (string-valued) CSV into a table, building one value
/// dictionary per column on the fly: the header names the attributes (the
/// last column is the sensitive attribute), every distinct cell label gets
/// the next insertion-ordered code, and the resulting schema's domain
/// sizes are the distinct-label counts. The label '*' is rejected (it is
/// reserved for the suppression marker in releases), as are duplicate
/// attribute names in the header (the dictionary sidecar keys labels by
/// attribute name). Returns std::nullopt (with `*error` filled when
/// provided) on I/O failure, a ragged row, an empty cell, or a file
/// without data rows.
std::optional<Table> ReadRawTableCsv(const std::string& path, CsvError* error = nullptr);

/// Streaming (out-of-core) twin of ReadTableCsv: rows are validated and
/// appended straight into a PagedTableBuilder's page staging, so the row
/// set is never materialized in RAM. Same header validation, cell
/// diagnostics, and resulting data as the in-RAM reader -- the sealed
/// table's resident() view is byte-identical to ReadTableCsv's output.
std::unique_ptr<PagedTable> ReadTableCsvPaged(const Schema& schema, const std::string& path,
                                              const PagedTableBuilder::Options& options,
                                              CsvError* error = nullptr);

/// Streaming twin of ReadRawTableCsv: builds the per-column dictionaries
/// on the fly (insertion order matches the in-RAM reader exactly, so the
/// codes agree) while writing pages. Dictionaries are O(distinct labels)
/// resident; rows are not.
std::unique_ptr<PagedTable> ReadRawTableCsvPaged(const std::string& path,
                                                 const PagedTableBuilder::Options& options,
                                                 CsvError* error = nullptr);

/// Serializes the schema's value dictionaries as CSV rows of
/// (attribute, code, label), QI attributes first, then the sensitive
/// attribute -- the sidecar the CLI writes next to a decoded release so
/// codes remain machine-recoverable. Attributes without a dictionary are
/// skipped. Returns false on I/O failure.
bool WriteDictionaryCsv(const Schema& schema, const std::string& path);

}  // namespace ldv

#endif  // LDIV_COMMON_CSV_H_
