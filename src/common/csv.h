#ifndef LDIV_COMMON_CSV_H_
#define LDIV_COMMON_CSV_H_

#include <optional>
#include <string>

#include "common/table.h"

namespace ldv {

/// Writes `table` as CSV with a header row (QI attribute names then the SA
/// name). Values are written as their integer codes; suppression markers
/// never appear in raw microdata. Returns false on I/O failure.
bool WriteTableCsv(const Table& table, const std::string& path);

/// Reads a CSV file produced by WriteTableCsv back into a table with the
/// given schema. Returns std::nullopt on I/O or parse failure (wrong column
/// count, non-numeric cell, value outside its domain).
std::optional<Table> ReadTableCsv(const Schema& schema, const std::string& path);

}  // namespace ldv

#endif  // LDIV_COMMON_CSV_H_
