#ifndef LDIV_COMMON_FAILPOINT_H_
#define LDIV_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ldv {

/// Thrown by the deep I/O layers (spill files, page refaults, external
/// sort runs) on a syscall failure that cannot be handled in place, and
/// by armed failpoints simulating one. Caught at exactly two boundaries:
/// Engine::Run/Execute converts it to PipelineError{kIo} (CLI exit 3),
/// and the daemon's per-job isolation boundary converts it to an `error`
/// reply while the daemon keeps serving. Everything between the throw
/// and the catch cleans up by RAII: spill files are unlinked at creation
/// (their storage dies with the fd) and budget reservations release on
/// unwind, so an ENOSPC mid-spill leaks nothing.
class IoFailure : public std::runtime_error {
 public:
  explicit IoFailure(const std::string& what) : std::runtime_error(what) {}
};

namespace failpoint {

/// Every injection site, declared centrally so the registry can
/// enumerate sites that have not executed yet (the matrix test arms all
/// of them). Names follow "layer.operation".
enum class Site : int {
  kSpillCreate = 0,  ///< SpillFile::Create (mkstemp)
  kSpillWrite,       ///< SpillFile::Write (pwrite loop)
  kSpillRead,        ///< SpillFile::Read (pread loop)
  kPagedAppend,      ///< PagedColumn::Append full-page flush
  kPagedSeal,        ///< PagedColumn::Seal tail flush
  kPagedMap,         ///< PagedColumn::Map (mmap)
  kPageCacheRead,    ///< PageCache::Pin miss / refault read
  kExtSortSpill,     ///< ExternalSorter sorted-run spill
  kExtSortMerge,     ///< ExternalSorter merge refill read
  kCsvRead,          ///< streaming CSV ingestion row loop
  kReportWrite,      ///< report/metrics/sidecar/anatomy writers
  kReleaseWrite,     ///< generalized release CSV writer
  kDaemonAccept,     ///< daemon accept loop
  kDaemonRead,       ///< frame read (daemon or client side)
  kDaemonWrite,      ///< frame write (daemon or client side)
  kCount,
};

inline constexpr int kSiteCount = static_cast<int>(Site::kCount);

/// The stable name of `site` ("spill.write", ...).
const char* SiteName(Site site);

/// Reverse lookup; false when `name` matches no site.
bool SiteFromName(std::string_view name, Site* site);

/// What an armed site injects when it fires.
struct Injection {
  int error_code = 0;        ///< the errno the site simulates
  bool short_write = false;  ///< write sites: land a partial write, then fail
};

namespace internal {

/// Fast gate: the number of currently armed sites. The disabled-path
/// cost of a failpoint is exactly one relaxed load of this counter.
extern std::atomic<int> g_armed_sites;

/// Slow path, entered only while something is armed.
bool Evaluate(Site site, Injection* injection);

}  // namespace internal

/// True when `site` fires this evaluation, filling `*injection`.
/// Compiles to a single relaxed atomic load when nothing is armed.
inline bool Check(Site site, Injection* injection) {
  if (internal::g_armed_sites.load(std::memory_order_relaxed) == 0) return false;
  return internal::Evaluate(site, injection);
}

/// Arms `site`: evaluations nth, nth+1, ..., nth+count-1 (1-based,
/// counted from this Arm) fire with `injection`; count 0 = every
/// evaluation from `nth` on. Re-arming resets the site's counters.
void Arm(Site site, Injection injection, std::uint64_t nth = 1, std::uint64_t count = 0);

/// Arms sites from a spec string of comma-separated entries
///   site=errno[:nth[:count]]
/// e.g. "spill.write=ENOSPC:3:1,daemon.read=EIO". errno is symbolic
/// (ENOSPC, EIO, EPIPE, ECONNRESET, EBADF, EAGAIN) or numeric; the
/// pseudo-errno `short` injects a short write backed by ENOSPC. The
/// LDIV_FAILPOINT environment variable is parsed through this once per
/// process. Returns false with a reason on a malformed entry (entries
/// before it stay armed).
bool ArmFromSpec(std::string_view spec, std::string* error);

void Disarm(Site site);

/// Disarms every site and resets all counters.
void DisarmAll();

/// Per-site counters. Evaluations are counted only while any site is
/// armed (the disabled fast path must stay a single load).
struct SiteStats {
  Site site = Site::kCount;
  const char* name = "";
  bool armed = false;
  std::uint64_t evaluations = 0;
  std::uint64_t triggers = 0;
};
std::vector<SiteStats> Stats();

/// Triggers of one site since it was last armed (or DisarmAll).
std::uint64_t Triggers(Site site);

/// One-line message for a fired site:
/// "<action>: <strerror> [failpoint <site>]".
std::string Describe(Site site, const Injection& injection, std::string_view action);

}  // namespace failpoint
}  // namespace ldv

#endif  // LDIV_COMMON_FAILPOINT_H_
