#ifndef LDIV_COMMON_FLAGS_H_
#define LDIV_COMMON_FLAGS_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ldv {

/// A parsed set of `--key=value` flags, the front-end substrate of the
/// `ldiv` CLI. Unlike the LDIV_CHECK family, nothing here ever aborts:
/// every malformed input is reported through an error string so command
/// line mistakes surface as usage messages, not crashes.
///
/// Accepted argv forms: `--key=value`, `--key value`, and a bare `--key`
/// (stored as "true", for boolean switches). A later occurrence of a key
/// overrides an earlier one. Config files (`ParseConfigFile`) hold one
/// `key = value` pair per line with `#` comments; keys already present
/// keep their value, so command-line flags override the config file.
class FlagSet {
 public:
  /// Parses `argv[1..argc)`. Returns false (with `*error` set) on a token
  /// that is not a flag.
  bool ParseArgs(int argc, const char* const* argv, std::string* error);

  /// Parses a config file of `key = value` lines. Returns false on I/O
  /// failure or a malformed line. Existing keys are not overridden.
  bool ParseConfigFile(const std::string& path, std::string* error);

  /// Parses config-file syntax from an in-memory string (the JobSpec wire
  /// format of the engine/daemon layers). `label` names the source in
  /// error positions the way the path does for ParseConfigFile. Existing
  /// keys are not overridden.
  bool ParseConfigText(std::string_view text, std::string_view label, std::string* error);

  bool Has(std::string_view name) const;

  /// Typed getters: `*out` receives the parsed value when the flag is
  /// present, `def` when absent. Returns false (with `*error` set) only
  /// when the flag is present but does not parse.
  bool GetString(std::string_view name, std::string_view def, std::string* out,
                 std::string* error) const;
  bool GetUint32(std::string_view name, std::uint32_t def, std::uint32_t* out,
                 std::string* error) const;
  bool GetUint64(std::string_view name, std::uint64_t def, std::uint64_t* out,
                 std::string* error) const;
  bool GetBool(std::string_view name, bool def, bool* out, std::string* error) const;

  /// Comma-separated list of unsigned integers, e.g. `--l=2,4,6`.
  bool GetUint32List(std::string_view name, std::span<const std::uint32_t> def,
                     std::vector<std::uint32_t>* out, std::string* error) const;
  bool GetUint64List(std::string_view name, std::span<const std::uint64_t> def,
                     std::vector<std::uint64_t>* out, std::string* error) const;

  /// Keys present in the set but not in `known` (insertion order, no
  /// duplicates) -- lets front-ends reject typos like `--algos`.
  std::vector<std::string> UnknownKeys(std::span<const std::string_view> known) const;

 private:
  const std::string* Find(std::string_view name) const;
  void Insert(std::string key, std::string value, bool override_existing);

  // Insertion-ordered; Find returns the latest occurrence of a key.
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Parses a non-negative decimal integer. Returns false on empty input,
/// a non-digit character, or overflow past 2^64 - 1.
bool ParseUint64(std::string_view text, std::uint64_t* out);

}  // namespace ldv

#endif  // LDIV_COMMON_FLAGS_H_
