#include "common/memory_budget.h"

#include <limits>
#include <memory>
#include <mutex>

#include "common/check.h"

namespace ldv {

std::uint64_t MemoryBudget::remaining() const {
  if (unlimited()) return std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t u = used();
  return u >= total_ ? 0 : total_ - u;
}

bool MemoryBudget::WouldFit(std::uint64_t bytes) const {
  if (unlimited()) return true;
  const std::uint64_t u = used();
  return u <= total_ && bytes <= total_ - u;
}

void MemoryBudget::Charge(std::uint64_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t seen = peak_.load(std::memory_order_relaxed);
  while (now > seen && !peak_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
  }
}

void MemoryBudget::Release(std::uint64_t bytes) {
  if (bytes == 0) return;
  LDIV_CHECK_LE(bytes, used()) << "memory budget release exceeds charges";
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

MemoryReservation::MemoryReservation(std::shared_ptr<MemoryBudget> budget, std::uint64_t bytes)
    : budget_(std::move(budget)), bytes_(bytes) {
  if (budget_ != nullptr) budget_->Charge(bytes_);
}

MemoryReservation::~MemoryReservation() { Reset(); }

MemoryReservation::MemoryReservation(MemoryReservation&& other) noexcept
    : budget_(std::move(other.budget_)), bytes_(other.bytes_) {
  other.budget_ = nullptr;
  other.bytes_ = 0;
}

MemoryReservation& MemoryReservation::operator=(MemoryReservation&& other) noexcept {
  if (this != &other) {
    Reset();
    budget_ = std::move(other.budget_);
    bytes_ = other.bytes_;
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

void MemoryReservation::Resize(std::uint64_t bytes) {
  if (budget_ != nullptr) {
    if (bytes > bytes_) budget_->Charge(bytes - bytes_);
    if (bytes < bytes_) budget_->Release(bytes_ - bytes);
  }
  bytes_ = bytes;
}

void MemoryReservation::Reset() {
  if (budget_ != nullptr && bytes_ > 0) budget_->Release(bytes_);
  bytes_ = 0;
}

namespace {

std::mutex g_budget_mutex;
std::shared_ptr<MemoryBudget> g_budget;  // null until first use (= unlimited)

}  // namespace

void SetMemoryBudget(std::uint64_t total_bytes) {
  std::lock_guard<std::mutex> lock(g_budget_mutex);
  // Starts a new epoch; holders of the old shared_ptr keep it alive and
  // release their charges into it, so its accounting stays balanced.
  g_budget = std::make_shared<MemoryBudget>(total_bytes);
}

std::uint64_t MemoryBudgetBytes() {
  std::lock_guard<std::mutex> lock(g_budget_mutex);
  return g_budget == nullptr ? 0 : g_budget->total();
}

MemoryBudget& GlobalMemoryBudget() { return *GlobalMemoryBudgetShared(); }

std::shared_ptr<MemoryBudget> GlobalMemoryBudgetShared() {
  std::lock_guard<std::mutex> lock(g_budget_mutex);
  if (g_budget == nullptr) g_budget = std::make_shared<MemoryBudget>(0);
  return g_budget;
}

bool ParseByteSize(std::string_view text, std::uint64_t* bytes, std::string* error) {
  const auto fail = [&](std::string_view reason) {
    if (error != nullptr) *error = std::string(reason) + ": '" + std::string(text) + "'";
    return false;
  };
  std::string_view rest = text;
  if (rest.empty()) return fail("empty byte size");
  std::uint64_t value = 0;
  std::size_t digits = 0;
  while (!rest.empty() && rest.front() >= '0' && rest.front() <= '9') {
    const std::uint64_t digit = static_cast<std::uint64_t>(rest.front() - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return fail("byte size overflows");
    }
    value = value * 10 + digit;
    rest.remove_prefix(1);
    ++digits;
  }
  if (digits == 0) return fail("byte size must start with a digit");
  std::uint64_t multiplier = 1;
  // A leading 'b'/'B' is the plain-bytes spelling ("100B"), handled by the
  // shared strip below; anything else here must be a binary multiplier.
  if (!rest.empty() && rest.front() != 'b' && rest.front() != 'B') {
    switch (rest.front()) {
      case 'k':
      case 'K':
        multiplier = 1ull << 10;
        break;
      case 'm':
      case 'M':
        multiplier = 1ull << 20;
        break;
      case 'g':
      case 'G':
        multiplier = 1ull << 30;
        break;
      case 't':
      case 'T':
        multiplier = 1ull << 40;
        break;
      default:
        return fail("unknown byte-size suffix");
    }
    rest.remove_prefix(1);
    if (!rest.empty() && (rest.front() == 'i' || rest.front() == 'I')) rest.remove_prefix(1);
  }
  if (!rest.empty() && (rest.front() == 'b' || rest.front() == 'B')) rest.remove_prefix(1);
  if (!rest.empty()) return fail("trailing characters in byte size");
  if (multiplier > 1 && value > std::numeric_limits<std::uint64_t>::max() / multiplier) {
    return fail("byte size overflows");
  }
  *bytes = value * multiplier;
  return true;
}

std::string FormatByteSize(std::uint64_t bytes) {
  static constexpr struct {
    std::uint64_t unit;
    char suffix;
  } kUnits[] = {{1ull << 40, 'T'}, {1ull << 30, 'G'}, {1ull << 20, 'M'}, {1ull << 10, 'K'}};
  for (const auto& u : kUnits) {
    if (bytes >= u.unit && bytes % u.unit == 0) {
      return std::to_string(bytes / u.unit) + u.suffix;
    }
  }
  return std::to_string(bytes);
}

}  // namespace ldv
