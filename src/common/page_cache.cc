#include "common/page_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "common/failpoint.h"

namespace ldv {

namespace {

std::uint32_t NextSpillId() {
  static std::atomic<std::uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Leak probe: every live SpillFile counts itself here, so tests can
// assert that an unwound failure released all spill storage.
std::atomic<std::uint64_t> g_live_spill_files{0};

struct SpillDirectoryResolution {
  bool ok = false;
  std::string directory;
  std::string error;
};

SpillDirectoryResolution ResolveSpillDirectoryOnce() {
  SpillDirectoryResolution resolution;
  std::string source = "the built-in default";
  resolution.directory = "/tmp";
  for (const char* var : {"LDIV_SPILL_DIR", "TMPDIR"}) {
    const char* dir = std::getenv(var);
    if (dir != nullptr && dir[0] != '\0') {
      resolution.directory = dir;
      source = std::string("$") + var;
      break;
    }
  }
  // Probe writability up front so a bad environment fails with one clear
  // message at resolution time instead of a surprise deep in ingestion.
  std::string pattern = resolution.directory + "/ldiv-spill-probe-XXXXXX";
  const int fd = ::mkstemp(pattern.data());
  if (fd < 0) {
    resolution.error = "spill directory '" + resolution.directory + "' (from " + source +
                       ") is not writable: " + std::strerror(errno);
    return resolution;
  }
  ::close(fd);
  ::unlink(pattern.c_str());
  resolution.ok = true;
  return resolution;
}

}  // namespace

bool ResolveSpillDirectory(std::string* directory, std::string* error) {
  // Magic-static: the environment is consulted and probed exactly once
  // per process, no matter how many columns spill.
  static const SpillDirectoryResolution resolution = ResolveSpillDirectoryOnce();
  if (!resolution.ok) {
    if (error != nullptr) *error = resolution.error;
    return false;
  }
  if (directory != nullptr) *directory = resolution.directory;
  return true;
}

std::unique_ptr<SpillFile> SpillFile::Create(std::string* error) {
  std::string directory;
  if (!ResolveSpillDirectory(&directory, error)) return nullptr;
  failpoint::Injection injection;
  if (failpoint::Check(failpoint::Site::kSpillCreate, &injection)) {
    if (error != nullptr) {
      *error = failpoint::Describe(failpoint::Site::kSpillCreate, injection,
                                   "cannot create spill file in '" + directory + "'");
    }
    return nullptr;
  }
  std::string pattern = directory + "/ldiv-spill-XXXXXX";
  const int fd = ::mkstemp(pattern.data());
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot create spill file in '" + directory + "': " + std::strerror(errno);
    }
    return nullptr;
  }
  // Unlink immediately: the fd keeps the storage alive, and the OS
  // reclaims it when the fd closes -- even if the process crashes.
  ::unlink(pattern.c_str());
  g_live_spill_files.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<SpillFile>(new SpillFile(fd, NextSpillId(), directory));
}

std::uint64_t SpillFile::LiveCount() {
  return g_live_spill_files.load(std::memory_order_relaxed);
}

SpillFile::~SpillFile() {
  if (fd_ >= 0) ::close(fd_);
  g_live_spill_files.fetch_sub(1, std::memory_order_relaxed);
}

std::uint64_t SpillFile::Allocate(std::uint64_t bytes) {
  const std::uint64_t offset = size_;
  size_ += bytes;
  return offset;
}

void SpillFile::Write(std::uint64_t offset, const void* data, std::size_t bytes) const {
  const char* src = static_cast<const char*>(data);
  failpoint::Injection injection;
  if (failpoint::Check(failpoint::Site::kSpillWrite, &injection)) {
    if (injection.short_write && bytes > 1) {
      // Land half the bytes for real before failing, so the unwind path
      // is exercised against a genuinely torn page.
      (void)::pwrite(fd_, src, bytes / 2, static_cast<off_t>(offset));
    }
    throw IoFailure(
        failpoint::Describe(failpoint::Site::kSpillWrite, injection, "spill write failed"));
  }
  while (bytes > 0) {
    const ssize_t n = ::pwrite(fd_, src, bytes, static_cast<off_t>(offset));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw IoFailure(std::string("spill write failed: ") +
                      std::strerror(n < 0 ? errno : EIO));
    }
    src += n;
    offset += static_cast<std::uint64_t>(n);
    bytes -= static_cast<std::size_t>(n);
  }
}

void SpillFile::Read(std::uint64_t offset, void* data, std::size_t bytes) const {
  char* dst = static_cast<char*>(data);
  failpoint::Injection injection;
  if (failpoint::Check(failpoint::Site::kSpillRead, &injection)) {
    throw IoFailure(
        failpoint::Describe(failpoint::Site::kSpillRead, injection, "spill read failed"));
  }
  while (bytes > 0) {
    const ssize_t n = ::pread(fd_, dst, bytes, static_cast<off_t>(offset));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      // n == 0 is a short file -- truncated behind our back; surface it
      // as an I/O failure, not an abort.
      throw IoFailure(std::string("spill read failed: ") + std::strerror(n < 0 ? errno : EIO));
    }
    dst += n;
    offset += static_cast<std::uint64_t>(n);
    bytes -= static_cast<std::size_t>(n);
  }
}

PageCache::PageCache(PageCacheOptions options) : options_(options) {
  LDIV_CHECK_GT(options_.page_bytes, 0u);
  LDIV_CHECK_GT(options_.frames, 0u);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(options_.frames) * options_.page_bytes;
  reservation_ = MemoryReservation(options_.budget, bytes);
  storage_.resize(bytes);
  frames_.resize(options_.frames);
}

PageCache::~PageCache() = default;

std::size_t PageCache::pinned_frames() const {
  std::size_t pinned = 0;
  for (const Frame& frame : frames_) {
    if (frame.valid && frame.pins > 0) ++pinned;
  }
  return pinned;
}

std::uint64_t PageCache::Key(const SpillFile& file, std::uint64_t page) {
  LDIV_CHECK_LT(page, 1ull << 40) << "spill page index out of range";
  return (static_cast<std::uint64_t>(file.id()) << 40) | page;
}

std::size_t PageCache::EvictFrame() {
  // First fill frames that have never been used.
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    if (!frames_[i].valid) return i;
  }
  // CLOCK: sweep for an unpinned frame whose reference bit is clear,
  // clearing bits as the hand passes. Two full sweeps guarantee progress
  // unless every frame is pinned, which is a caller bug.
  for (std::size_t step = 0; step < 2 * frames_.size(); ++step) {
    Frame& frame = frames_[clock_hand_];
    const std::size_t index = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    if (frame.pins > 0) continue;
    if (frame.referenced) {
      frame.referenced = false;
      continue;
    }
    index_.erase(frame.key);
    evicted_.insert(frame.key);
    frame.valid = false;
    ++stats_.evictions;
    return index;
  }
  LDIV_CHECK(false) << "page cache exhausted: all " << frames_.size() << " frames pinned";
  return 0;
}

const std::byte* PageCache::Pin(const SpillFile& file, std::uint64_t page,
                                std::size_t valid_bytes) {
  LDIV_CHECK_LE(valid_bytes, options_.page_bytes);
  const std::uint64_t key = Key(file, page);
  auto it = index_.find(key);
  if (it != index_.end()) {
    Frame& frame = frames_[it->second];
    ++frame.pins;
    ++stats_.hits;
    return storage_.data() + it->second * options_.page_bytes;
  }
  ++stats_.misses;
  if (evicted_.count(key) > 0) ++stats_.refaults;
  const std::size_t index = EvictFrame();
  Frame& frame = frames_[index];
  std::byte* data = storage_.data() + index * options_.page_bytes;
  failpoint::Injection injection;
  if (failpoint::Check(failpoint::Site::kPageCacheRead, &injection)) {
    // The frame stays invalid (and unindexed), so the cache is intact
    // after the unwind.
    throw IoFailure(failpoint::Describe(failpoint::Site::kPageCacheRead, injection,
                                        "page cache read failed"));
  }
  file.Read(page * options_.page_bytes, data, valid_bytes);
  frame.key = key;
  frame.pins = 1;
  frame.referenced = false;
  frame.valid = true;
  index_[key] = index;
  return data;
}

void PageCache::Unpin(const SpillFile& file, std::uint64_t page) {
  const auto it = index_.find(Key(file, page));
  LDIV_CHECK(it != index_.end()) << "unpin of a page that is not cached";
  Frame& frame = frames_[it->second];
  LDIV_CHECK_GT(frame.pins, 0u) << "unpin of an unpinned page";
  --frame.pins;
  frame.referenced = true;
}

}  // namespace ldv
