#ifndef LDIV_COMMON_RNG_H_
#define LDIV_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace ldv {

/// Deterministic, platform-independent pseudo-random number generator
/// (PCG32, O'Neill 2014). We avoid <random> distributions because their
/// output is not specified bit-for-bit across standard library
/// implementations; every experiment in this repository must be exactly
/// reproducible from a seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { Reseed(seed); }

  /// Re-initializes the generator state from `seed`.
  void Reseed(std::uint64_t seed) {
    state_ = 0;
    inc_ = (seed << 1u) | 1u;
    Next32();
    state_ += 0x853c49e6748fea9bULL + seed;
    Next32();
  }

  /// Uniform 32-bit output.
  std::uint32_t Next32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    std::uint32_t xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform 64-bit output.
  std::uint64_t Next64() {
    return (static_cast<std::uint64_t>(Next32()) << 32) | Next32();
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  /// Uses Lemire-style rejection to avoid modulo bias.
  std::uint32_t Below(std::uint32_t bound) {
    LDIV_CHECK_GT(bound, 0u);
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
      std::uint32_t r = Next32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = Below(static_cast<std::uint32_t>(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
};

/// Samples from a Zipf(s) distribution over {0, ..., n-1}: P(k) proportional
/// to 1/(k+1)^s. Census-style categorical attributes (occupation codes,
/// income bands, birth places) are heavily skewed; Zipf marginals are the
/// standard synthetic stand-in. Sampling is done by inverse CDF over a
/// precomputed table (domains here are small, at most a few hundred values).
class ZipfSampler {
 public:
  /// Builds the sampler for domain size `n` and skew `s >= 0`
  /// (s = 0 is the uniform distribution).
  ZipfSampler(std::size_t n, double s);

  /// Draws one sample in [0, n).
  std::uint32_t Sample(Rng& rng) const;

  /// Probability mass of value `k`.
  double Pmf(std::uint32_t k) const;

  std::size_t domain_size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(value <= k)
};

}  // namespace ldv

#endif  // LDIV_COMMON_RNG_H_
