#include "common/grouped_table.h"

#include <algorithm>

#include "common/check.h"
#include "common/external_sort.h"
#include "common/failpoint.h"
#include "common/flat_map.h"
#include "common/memory_budget.h"
#include "common/parallel.h"
#include "common/simd.h"

namespace ldv {

std::uint32_t QiGroup::SaCount(SaValue v) const {
  auto it = std::lower_bound(
      sa_runs.begin(), sa_runs.end(), v,
      [](const std::pair<SaValue, std::uint32_t>& run, SaValue value) {
        return run.first < value;
      });
  if (it == sa_runs.end() || it->first != v) return 0;
  return RunLength(static_cast<std::size_t>(it - sa_runs.begin()));
}

SaHistogram QiGroup::ToHistogram(std::size_t m) const {
  SaHistogram h(m);
  for (std::size_t i = 0; i < sa_runs.size(); ++i) h.Add(sa_runs[i].first, RunLength(i));
  return h;
}

namespace {

// The build always runs sharded, at every thread count: one code path, one
// output. 16 shards keyed on the TOP four bits of the mixed hash -- the
// per-shard probe slot uses the low bits, so shard choice and slot choice
// stay independent. Equal signatures hash equal and therefore land in the
// same shard, which is what makes the per-shard indexes private.
constexpr std::size_t kShards = 16;
constexpr unsigned kShardShift = 60;
constexpr std::size_t kRowGrain = 16384;

std::size_t ShardOf(std::uint64_t mixed) { return mixed >> kShardShift; }

/// Rough resident scratch of the sharded build: the u64 hash array plus
/// six u32 row-length arrays (~32 bytes per row).
std::uint64_t ShardedScratchBytes(std::size_t n) { return 32ull * n; }

}  // namespace

GroupedTable::GroupedTable(const Table& table, Workspace* workspace) {
  const bool stream = MemoryBudgetBytes() != 0 && !table.empty() &&
                      !GlobalMemoryBudget().WouldFit(ShardedScratchBytes(table.size()));
  if (stream) {
    BuildChunkedImpl(table, workspace, 0);
  } else {
    BuildSharded(table, workspace);
  }
}

GroupedTable GroupedTable::BuildChunked(const Table& table, Workspace* workspace,
                                        std::size_t sort_buffer_records) {
  GroupedTable grouped;
  grouped.BuildChunkedImpl(table, workspace, sort_buffer_records);
  return grouped;
}

void GroupedTable::BuildSharded(const Table& table, Workspace* workspace) {
  row_count_ = table.size();
  sa_domain_size_ = table.schema().sa_domain_size();
  if (table.empty()) return;

  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;
  const std::size_t n = table.size();
  const std::size_t d = table.qi_count();
  const std::size_t m = sa_domain_size_;

  // Per-attribute column base pointers, hoisted once so the scans below
  // stream contiguous columns instead of striding rows.
  std::vector<const Value*> cols(d);
  for (AttrId a = 0; a < d; ++a) cols[a] = table.column(a).data();

  // Row signature hashes, computed once. FNV-1a folded column by column:
  // every row's hash absorbs its values in attribute order (identical to a
  // per-row FNV over the signature), but each pass streams one contiguous
  // column through the SIMD fold kernel. Equal signatures hash equal, and
  // the shard indexes below compare full signatures on every hash hit, so
  // collisions only cost an extra comparison. The fold is a pure per-row
  // map, so the hash array is byte-identical at any thread count.
  auto hashes_s = ws.U64();
  std::vector<std::uint64_t>& hashes = *hashes_s;
  hashes.assign(n, 1469598103934665603ULL);
  std::uint64_t* hash_data = hashes.data();
  ParallelFor(n, kRowGrain, ws, [&](std::size_t begin, std::size_t end, Workspace&) {
    for (AttrId a = 0; a < d; ++a) {
      simd::FnvFoldColumn(hash_data + begin, cols[a] + begin, end - begin);
    }
  });

  // Scatter rows into shard-major order: a chunked histogram pass counts
  // rows per (chunk, shard), a sequential scan turns the counts into write
  // cursors, and a second pass scatters. Chunks are visited in row order
  // and each chunk owns its cursors, so within every shard the rows come
  // out in ascending global row order -- the property the first-occurrence
  // tie-break below relies on.
  const std::size_t chunk_count = (n + kRowGrain - 1) / kRowGrain;
  auto shard_counts_s = ws.U32();
  std::vector<std::uint32_t>& shard_counts = *shard_counts_s;
  shard_counts.assign(chunk_count * kShards, 0);
  ParallelFor(n, kRowGrain, ws, [&](std::size_t begin, std::size_t end, Workspace&) {
    std::uint32_t* counts = shard_counts.data() + (begin / kRowGrain) * kShards;
    for (std::size_t r = begin; r < end; ++r) ++counts[ShardOf(MixU64(hash_data[r]))];
  });
  std::uint32_t shard_begin[kShards + 1] = {0};
  for (std::size_t sh = 0; sh < kShards; ++sh) {
    std::uint32_t total = 0;
    for (std::size_t c = 0; c < chunk_count; ++c) total += shard_counts[c * kShards + sh];
    shard_begin[sh + 1] = shard_begin[sh] + total;
  }
  {
    std::uint32_t cursor[kShards];
    std::copy(shard_begin, shard_begin + kShards, cursor);
    for (std::size_t c = 0; c < chunk_count; ++c) {
      for (std::size_t sh = 0; sh < kShards; ++sh) {
        const std::uint32_t count = shard_counts[c * kShards + sh];
        shard_counts[c * kShards + sh] = cursor[sh];
        cursor[sh] += count;
      }
    }
  }
  auto shard_rows_s = ws.U32();
  std::vector<std::uint32_t>& shard_rows = *shard_rows_s;
  shard_rows.resize(n);
  ParallelFor(n, kRowGrain, ws, [&](std::size_t begin, std::size_t end, Workspace&) {
    std::uint32_t* cursor = shard_counts.data() + (begin / kRowGrain) * kShards;
    for (std::size_t r = begin; r < end; ++r) {
      shard_rows[cursor[ShardOf(MixU64(hash_data[r]))]++] = static_cast<std::uint32_t>(r);
    }
  });

  // Per-shard signature resolution: each shard probes a private
  // open-addressing index (slot -> shard-local group id + 1, sized to stay
  // at most half full) over its own rows, in ascending row order, so a
  // shard-local representative is the globally first row of its signature.
  // local_of / reps / local_sizes are written at row- or shard-disjoint
  // positions, so the shards run concurrently.
  auto local_of_s = ws.U32();
  std::vector<std::uint32_t>& local_of = *local_of_s;  // row -> shard-local gid
  local_of.resize(n);
  auto reps_s = ws.U32();
  std::vector<std::uint32_t>& reps = *reps_s;  // shard_begin[sh] + lg -> rep row
  reps.resize(n);
  auto local_sizes_s = ws.U32();
  std::vector<std::uint32_t>& local_sizes = *local_sizes_s;
  local_sizes.resize(n);
  std::uint32_t shard_groups[kShards] = {0};

  auto same_signature = [&cols, d](RowId x, RowId y) {
    for (AttrId a = 0; a < d; ++a) {
      if (cols[a][x] != cols[a][y]) return false;
    }
    return true;
  };

  ParallelFor(kShards, 1, ws, [&](std::size_t sb, std::size_t se, Workspace& cws) {
    for (std::size_t sh = sb; sh < se; ++sh) {
      const std::uint32_t row_begin = shard_begin[sh];
      const std::uint32_t row_end = shard_begin[sh + 1];
      if (row_begin == row_end) continue;
      const std::size_t n_sh = row_end - row_begin;
      std::size_t cap = 16;
      while (cap < 2 * n_sh) cap <<= 1;
      const std::size_t mask = cap - 1;
      auto slots_s = cws.U32();
      std::vector<std::uint32_t>& slots = *slots_s;
      slots.assign(cap, 0);
      std::uint32_t* shard_reps = reps.data() + row_begin;
      std::uint32_t* shard_sizes = local_sizes.data() + row_begin;
      std::uint32_t ng = 0;
      for (std::uint32_t k = row_begin; k < row_end; ++k) {
        const RowId r = shard_rows[k];
        std::size_t i = MixU64(hash_data[r]) & mask;
        for (;;) {
          if (slots[i] == 0) {
            slots[i] = ng + 1;
            local_of[r] = ng;
            shard_reps[ng] = r;
            shard_sizes[ng] = 1;
            ++ng;
            break;
          }
          const std::uint32_t g = slots[i] - 1;
          if (hash_data[shard_reps[g]] == hash_data[r] && same_signature(r, shard_reps[g])) {
            local_of[r] = g;
            ++shard_sizes[g];
            break;
          }
          i = (i + 1) & mask;
        }
      }
      shard_groups[sh] = ng;
    }
  });

  // Deterministic merge: the global group id of a signature is the rank of
  // its representative row among all representatives -- exactly the
  // first-occurrence order a sequential scan would assign, independent of
  // sharding and thread count. Marking reps and ranking them is one flag
  // array and one parallel exclusive prefix sum.
  auto rank_s = ws.U32();
  std::vector<std::uint32_t>& rank = *rank_s;
  rank.assign(n, 0);
  ParallelFor(kShards, 1, ws, [&](std::size_t sb, std::size_t se, Workspace&) {
    for (std::size_t sh = sb; sh < se; ++sh) {
      for (std::uint32_t lg = 0; lg < shard_groups[sh]; ++lg) {
        rank[reps[shard_begin[sh] + lg]] = 1;
      }
    }
  });
  const std::uint32_t s = ParallelExclusivePrefixSum(rank.data(), n, kRowGrain, ws);

  // Global per-group arrays, gid-indexed, plus the local->global id map.
  auto glob_s = ws.U32();
  std::vector<std::uint32_t>& glob = *glob_s;  // shard_begin[sh] + lg -> gid
  glob.resize(n);
  auto rep_row_s = ws.U32();
  std::vector<std::uint32_t>& rep_row = *rep_row_s;
  rep_row.resize(s);
  auto sizes_s = ws.U32();
  std::vector<std::uint32_t>& sizes = *sizes_s;
  sizes.resize(s);
  ParallelFor(kShards, 1, ws, [&](std::size_t sb, std::size_t se, Workspace&) {
    for (std::size_t sh = sb; sh < se; ++sh) {
      for (std::uint32_t lg = 0; lg < shard_groups[sh]; ++lg) {
        const RowId rep = reps[shard_begin[sh] + lg];
        const std::uint32_t gid = rank[rep];
        glob[shard_begin[sh] + lg] = gid;
        rep_row[gid] = rep;
        sizes[gid] = local_sizes[shard_begin[sh] + lg];
      }
    }
  });

  // Arena offsets: rows_arena_ packs the groups back to back; runs_arena_
  // reserves min(|Q|, m) entries per group (an upper bound on its distinct
  // SA values -- the spans carry the exact counts, the slack is never
  // read).
  auto row_off_s = ws.U32();
  std::vector<std::uint32_t>& row_off = *row_off_s;
  row_off.assign(sizes.begin(), sizes.end());
  ParallelExclusivePrefixSum(row_off.data(), s, kRowGrain, ws);
  auto run_off_s = ws.U32();
  std::vector<std::uint32_t>& run_off = *run_off_s;
  run_off.resize(s);
  const std::uint32_t m32 = static_cast<std::uint32_t>(m);
  ParallelFor(s, kRowGrain, ws, [&](std::size_t begin, std::size_t end, Workspace&) {
    for (std::size_t g = begin; g < end; ++g) run_off[g] = std::min(sizes[g], m32);
  });
  const std::uint32_t run_total = ParallelExclusivePrefixSum(run_off.data(), s, kRowGrain, ws);

  qi_arena_.resize(static_cast<std::size_t>(s) * d);
  rows_arena_.resize(n);
  runs_arena_.resize(run_total);
  groups_.resize(s);

  // Signatures and the fixed-size views. sa_runs is bound later, once the
  // counting sort knows each group's distinct-value count.
  const std::size_t group_grain = std::max<std::size_t>(64, (s + 63) / 64);
  ParallelFor(s, group_grain, ws, [&](std::size_t gb, std::size_t ge, Workspace&) {
    for (std::size_t g = gb; g < ge; ++g) {
      Value* qi = qi_arena_.data() + g * d;
      for (AttrId a = 0; a < d; ++a) qi[a] = cols[a][rep_row[g]];
      groups_[g].qi_values = {qi, d};
      groups_[g].rows = {rows_arena_.data() + row_off[g], sizes[g]};
    }
  });

  // Row fill, parallel across shards: a shard's groups are disjoint from
  // every other shard's, and its rows arrive in ascending global row
  // order, so each group's arena segment fills in row order -- the same
  // order the sequential build produced.
  ParallelFor(kShards, 1, ws, [&](std::size_t sb, std::size_t se, Workspace& cws) {
    for (std::size_t sh = sb; sh < se; ++sh) {
      if (shard_groups[sh] == 0) continue;
      auto cursor_s = cws.U32();
      std::vector<std::uint32_t>& cursor = *cursor_s;
      cursor.assign(shard_groups[sh], 0);
      const std::uint32_t* shard_glob = glob.data() + shard_begin[sh];
      for (std::uint32_t k = shard_begin[sh]; k < shard_begin[sh + 1]; ++k) {
        const RowId r = shard_rows[k];
        const std::uint32_t lg = local_of[r];
        rows_arena_[row_off[shard_glob[lg]] + cursor[lg]++] = r;
      }
    }
  });

  // Sort each group's rows by SA value and build the runs. A stable
  // counting sort keeps the seed's stable_sort order (row order preserved
  // within a value) at O(|Q| + distinct) per group with zero allocation:
  // `counts` is a dense per-value counter reset through `distinct`, then
  // reused as the per-run write cursor. Groups are independent -- each
  // chunk sorts its own groups with its own dense counter -- and the chunk
  // geometry depends only on the group count, so the built runs are
  // byte-identical at any thread count.
  ParallelFor(s, group_grain, ws, [&](std::size_t gb, std::size_t ge, Workspace& cws) {
    auto counts_s = cws.U32();
    std::vector<std::uint32_t>& counts = *counts_s;
    counts.assign(m, 0);
    auto distinct_s = cws.U32();
    std::vector<std::uint32_t>& distinct = *distinct_s;
    auto sorted_s = cws.U32();
    std::vector<std::uint32_t>& sorted = *sorted_s;
    for (std::size_t g = gb; g < ge; ++g) {
      RowId* rows = rows_arena_.data() + row_off[g];
      const std::uint32_t size = sizes[g];
      std::pair<SaValue, std::uint32_t>* runs = runs_arena_.data() + run_off[g];
      if (size == 1) {
        runs[0] = {table.sa(rows[0]), 0};
        groups_[g].sa_runs = {runs, 1};
        continue;
      }
      distinct.clear();
      for (std::uint32_t i = 0; i < size; ++i) {
        SaValue v = table.sa(rows[i]);
        if (counts[v]++ == 0) distinct.push_back(v);
      }
      std::sort(distinct.begin(), distinct.end());
      std::uint32_t offset = 0;
      std::size_t k = 0;
      for (SaValue v : distinct) {
        runs[k++] = {v, offset};
        offset += counts[v];
        counts[v] = runs[k - 1].second;  // becomes the write cursor
      }
      sorted.resize(size);
      for (std::uint32_t i = 0; i < size; ++i) sorted[counts[table.sa(rows[i])]++] = rows[i];
      std::copy(sorted.begin(), sorted.end(), rows);
      for (SaValue v : distinct) counts[v] = 0;
      groups_[g].sa_runs = {runs, distinct.size()};
    }
  });
  ChargeArenas();
}

void GroupedTable::BuildChunkedImpl(const Table& table, Workspace* workspace,
                                    std::size_t sort_buffer_records) {
  row_count_ = table.size();
  sa_domain_size_ = table.schema().sa_domain_size();
  if (table.empty()) return;

  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;
  const std::size_t n = table.size();
  const std::size_t d = table.qi_count();
  const std::size_t m = sa_domain_size_;

  std::vector<const Value*> cols(d);
  for (AttrId a = 0; a < d; ++a) cols[a] = table.column(a).data();
  const SaValue* sa_col = table.sa_column().data();

  std::shared_ptr<MemoryBudget> budget =
      MemoryBudgetBytes() != 0 ? GlobalMemoryBudgetShared() : nullptr;
  if (sort_buffer_records == 0) {
    // Give the sort buffer a quarter of what's left, within sane bounds.
    const std::uint64_t spend =
        budget != nullptr ? budget->remaining() / 4 : 64ull << 20;
    sort_buffer_records = static_cast<std::size_t>(std::clamp<std::uint64_t>(
        spend / sizeof(SortRecord), 1u << 16, 4u << 20));
  }
  std::string sort_error;
  std::unique_ptr<ExternalSorter> sorter = ExternalSorter::Create(
      ExternalSorter::Options{.buffer_records = sort_buffer_records, .budget = budget},
      &sort_error);
  // No temp space mid-build is recoverable: the engine boundary turns
  // this into a typed I/O error, never an abort.
  if (sorter == nullptr) throw IoFailure("external sort unavailable: " + sort_error);

  // Single sequential pass in fixed row chunks: hash the chunk with the
  // SIMD column fold, then resolve each row's signature in a growing
  // (hash, gid) probe table. Scanning rows in order makes group ids
  // first-occurrence ranks -- the exact ids the sharded build assigns.
  auto chunk_hashes_s = ws.U64();
  std::vector<std::uint64_t>& chunk_hashes = *chunk_hashes_s;
  chunk_hashes.resize(std::min(n, kRowGrain));
  std::vector<std::uint32_t> rep_row;      // gid -> globally first row
  std::vector<std::uint32_t> sizes;        // gid -> |Q|
  std::vector<std::uint64_t> slot_hash;    // probe table: signature hash
  std::vector<std::uint32_t> slot_gid;     // probe table: gid + 1 (0 = empty)
  std::size_t cap = 1024;
  slot_hash.assign(cap, 0);
  slot_gid.assign(cap, 0);

  const auto same_signature = [&cols, d](RowId x, RowId y) {
    for (AttrId a = 0; a < d; ++a) {
      if (cols[a][x] != cols[a][y]) return false;
    }
    return true;
  };

  for (std::size_t begin = 0; begin < n; begin += kRowGrain) {
    const std::size_t end = std::min(n, begin + kRowGrain);
    const std::size_t len = end - begin;
    std::fill_n(chunk_hashes.data(), len, 1469598103934665603ULL);
    for (AttrId a = 0; a < d; ++a) {
      simd::FnvFoldColumn(chunk_hashes.data(), cols[a] + begin, len);
    }
    for (std::size_t i = 0; i < len; ++i) {
      const RowId r = static_cast<RowId>(begin + i);
      const std::uint64_t h = chunk_hashes[i];
      std::size_t mask = cap - 1;
      std::size_t slot = MixU64(h) & mask;
      std::uint32_t gid;
      for (;;) {
        if (slot_gid[slot] == 0) {
          gid = static_cast<std::uint32_t>(rep_row.size());
          slot_hash[slot] = h;
          slot_gid[slot] = gid + 1;
          rep_row.push_back(r);
          sizes.push_back(0);
          for (AttrId a = 0; a < d; ++a) qi_arena_.push_back(cols[a][r]);
          break;
        }
        if (slot_hash[slot] == h && same_signature(r, rep_row[slot_gid[slot] - 1])) {
          gid = slot_gid[slot] - 1;
          break;
        }
        slot = (slot + 1) & mask;
      }
      ++sizes[gid];
      sorter->Add((static_cast<std::uint64_t>(gid) << 32) | sa_col[r], r);
      if (2 * rep_row.size() >= cap) {
        // Grow the probe table; stored hashes make the rehash table-free.
        const std::size_t new_cap = cap * 2;
        std::vector<std::uint64_t> new_hash(new_cap, 0);
        std::vector<std::uint32_t> new_gid(new_cap, 0);
        const std::size_t new_mask = new_cap - 1;
        for (std::size_t j = 0; j < cap; ++j) {
          if (slot_gid[j] == 0) continue;
          std::size_t k = MixU64(slot_hash[j]) & new_mask;
          while (new_gid[k] != 0) k = (k + 1) & new_mask;
          new_hash[k] = slot_hash[j];
          new_gid[k] = slot_gid[j];
        }
        slot_hash.swap(new_hash);
        slot_gid.swap(new_gid);
        cap = new_cap;
      }
    }
  }

  const std::size_t s = rep_row.size();
  std::vector<std::uint32_t> row_off(s + 1, 0);
  for (std::size_t g = 0; g < s; ++g) row_off[g + 1] = row_off[g] + sizes[g];
  std::vector<std::uint32_t> run_off(s + 1, 0);
  const std::uint32_t m32 = static_cast<std::uint32_t>(m);
  for (std::size_t g = 0; g < s; ++g) run_off[g + 1] = run_off[g] + std::min(sizes[g], m32);

  rows_arena_.resize(n);
  runs_arena_.resize(run_off[s]);
  groups_.resize(s);
  for (std::size_t g = 0; g < s; ++g) {
    groups_[g].qi_values = {qi_arena_.data() + g * d, d};
    groups_[g].rows = {rows_arena_.data() + row_off[g], sizes[g]};
  }

  // The merged (gid, sa, row) order IS the arena layout: groups back to
  // back in first-occurrence order, rows sorted by (sa, row) within each
  // group -- exactly what the sharded build's stable counting sort emits.
  sorter->Finish();
  SortRecord record;
  std::uint32_t current_gid = 0;
  SaValue current_sa = 0;
  std::size_t run_cursor = 0;
  bool first = true;
  for (std::size_t i = 0; i < n; ++i) {
    LDIV_CHECK(sorter->Next(&record)) << "external sort lost records";
    const std::uint32_t gid = static_cast<std::uint32_t>(record.key >> 32);
    const SaValue sa = static_cast<SaValue>(record.key & 0xffffffffu);
    rows_arena_[i] = static_cast<RowId>(record.payload);
    if (first || gid != current_gid || sa != current_sa) {
      if (first || gid != current_gid) {
        if (!first) {
          groups_[current_gid].sa_runs = {runs_arena_.data() + run_off[current_gid],
                                          run_cursor - run_off[current_gid]};
        }
        run_cursor = run_off[gid];
      }
      runs_arena_[run_cursor++] = {sa, static_cast<std::uint32_t>(i - row_off[gid])};
      current_gid = gid;
      current_sa = sa;
      first = false;
    }
  }
  LDIV_CHECK(!sorter->Next(&record)) << "external sort produced extra records";
  if (!first) {
    groups_[current_gid].sa_runs = {runs_arena_.data() + run_off[current_gid],
                                    run_cursor - run_off[current_gid]};
  }
  ChargeArenas();
}

void GroupedTable::ChargeArenas() {
  if (MemoryBudgetBytes() == 0) return;
  arena_reservation_ = MemoryReservation(GlobalMemoryBudgetShared(), ApproxBytes());
}

std::uint64_t GroupedTable::ApproxBytes() const {
  return qi_arena_.capacity() * sizeof(Value) + rows_arena_.capacity() * sizeof(RowId) +
         runs_arena_.capacity() * sizeof(runs_arena_[0]) + groups_.capacity() * sizeof(QiGroup);
}

std::uint64_t GroupedTable::MaxGroupSize() const {
  std::uint64_t best = 0;
  for (const QiGroup& g : groups_) best = std::max<std::uint64_t>(best, g.size());
  return best;
}

}  // namespace ldv
