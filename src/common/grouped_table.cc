#include "common/grouped_table.h"

#include <algorithm>

#include "common/check.h"
#include "common/flat_map.h"
#include "common/parallel.h"

namespace ldv {

std::uint32_t QiGroup::SaCount(SaValue v) const {
  auto it = std::lower_bound(
      sa_runs.begin(), sa_runs.end(), v,
      [](const std::pair<SaValue, std::uint32_t>& run, SaValue value) {
        return run.first < value;
      });
  if (it == sa_runs.end() || it->first != v) return 0;
  return RunLength(static_cast<std::size_t>(it - sa_runs.begin()));
}

SaHistogram QiGroup::ToHistogram(std::size_t m) const {
  SaHistogram h(m);
  for (std::size_t i = 0; i < sa_runs.size(); ++i) h.Add(sa_runs[i].first, RunLength(i));
  return h;
}

GroupedTable::GroupedTable(const Table& table, Workspace* workspace) {
  row_count_ = table.size();
  sa_domain_size_ = table.schema().sa_domain_size();
  if (table.empty()) return;

  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;
  const std::size_t n = table.size();
  const std::size_t d = table.qi_count();

  // Per-attribute column base pointers, hoisted once so the scans below
  // stream contiguous columns instead of striding rows.
  std::vector<const Value*> cols(d);
  for (AttrId a = 0; a < d; ++a) cols[a] = table.column(a).data();

  // Row signature hashes, computed once. FNV-1a folded column by column:
  // every row's hash absorbs its values in attribute order (identical to a
  // per-row FNV over the signature), but each pass streams one contiguous
  // column. Equal signatures hash equal, and the open-addressing index
  // below compares full signatures on every hash hit, so collisions only
  // cost an extra comparison. The fold is a pure per-row map, so the row
  // range fans out in fixed chunks (each chunk folding every column over
  // its rows) and the hash array is byte-identical at any thread count;
  // the first-occurrence group-id assignment below stays sequential, which
  // is what keeps the merge into the signature index deterministic.
  auto hashes_s = ws.U64();
  std::vector<std::uint64_t>& hashes = *hashes_s;
  hashes.assign(n, 1469598103934665603ULL);
  std::uint64_t* hash_data = hashes.data();
  ParallelFor(n, 16384, ws, [&](std::size_t begin, std::size_t end, Workspace&) {
    for (AttrId a = 0; a < d; ++a) {
      const Value* col = cols[a];
      for (std::size_t r = begin; r < end; ++r) {
        hash_data[r] = (hash_data[r] ^ col[r]) * 1099511628211ULL;
      }
    }
  });

  // Open-addressing signature index: slot -> group id + 1 (0 = empty),
  // sized to stay at most half full. Group ids are assigned in first-
  // occurrence row order, exactly like the seed's unordered_map pass.
  std::size_t cap = 16;
  while (cap < 2 * n) cap <<= 1;
  const std::size_t mask = cap - 1;
  auto slots_s = ws.U32();
  std::vector<std::uint32_t>& slots = *slots_s;
  slots.assign(cap, 0);

  auto group_of_s = ws.U32();
  std::vector<std::uint32_t>& group_of = *group_of_s;
  group_of.resize(n);
  auto sizes_s = ws.U32();
  std::vector<std::uint32_t>& sizes = *sizes_s;  // rows per group
  auto reps_s = ws.U32();
  std::vector<std::uint32_t>& reps = *reps_s;  // representative row per group

  // Signature equality between two rows, checked column by column.
  auto same_signature = [&cols, d](RowId x, RowId y) {
    for (AttrId a = 0; a < d; ++a) {
      if (cols[a][x] != cols[a][y]) return false;
    }
    return true;
  };

  for (RowId r = 0; r < n; ++r) {
    std::size_t i = MixU64(hashes[r]) & mask;
    for (;;) {
      if (slots[i] == 0) {
        slots[i] = static_cast<std::uint32_t>(reps.size()) + 1;
        group_of[r] = static_cast<std::uint32_t>(reps.size());
        reps.push_back(r);
        sizes.push_back(1);
        break;
      }
      std::uint32_t g = slots[i] - 1;
      if (hashes[reps[g]] == hashes[r] && same_signature(r, reps[g])) {
        group_of[r] = g;
        ++sizes[g];
        break;
      }
      i = (i + 1) & mask;
    }
  }

  // Materialize the groups with exact-size reservations.
  const std::size_t s = reps.size();
  groups_.resize(s);
  for (GroupId g = 0; g < s; ++g) {
    groups_[g].qi_values.resize(d);
    for (AttrId a = 0; a < d; ++a) groups_[g].qi_values[a] = cols[a][reps[g]];
    groups_[g].rows.reserve(sizes[g]);
  }
  for (RowId r = 0; r < n; ++r) groups_[group_of[r]].rows.push_back(r);

  // Sort each group's rows by SA value and build the runs. A stable
  // counting sort keeps the seed's stable_sort order (row order preserved
  // within a value) at O(|Q| + distinct) per group with zero allocation:
  // `counts` is a dense per-value counter reset through `distinct`, then
  // reused as the per-run write cursor. Groups are independent -- each
  // chunk sorts its own groups with its own dense counter -- and the chunk
  // geometry depends only on the group count, so the built runs are
  // byte-identical at any thread count.
  const std::size_t group_grain = std::max<std::size_t>(64, (s + 63) / 64);
  ParallelFor(s, group_grain, ws, [&](std::size_t gb, std::size_t ge, Workspace& cws) {
    auto counts_s = cws.U32();
    std::vector<std::uint32_t>& counts = *counts_s;
    counts.assign(sa_domain_size_, 0);
    auto distinct_s = cws.U32();
    std::vector<std::uint32_t>& distinct = *distinct_s;
    auto sorted_s = cws.U32();
    std::vector<std::uint32_t>& sorted = *sorted_s;
    for (std::size_t g = gb; g < ge; ++g) {
      QiGroup& group = groups_[g];
      if (group.rows.size() == 1) {
        group.sa_runs.emplace_back(table.sa(group.rows[0]), 0);
        continue;
      }
      distinct.clear();
      for (RowId r : group.rows) {
        SaValue v = table.sa(r);
        if (counts[v]++ == 0) distinct.push_back(v);
      }
      std::sort(distinct.begin(), distinct.end());
      group.sa_runs.reserve(distinct.size());
      std::uint32_t offset = 0;
      for (SaValue v : distinct) {
        group.sa_runs.emplace_back(v, offset);
        offset += counts[v];
        counts[v] = group.sa_runs.back().second;  // becomes the write cursor
      }
      sorted.resize(group.rows.size());
      for (RowId r : group.rows) sorted[counts[table.sa(r)]++] = r;
      std::copy(sorted.begin(), sorted.end(), group.rows.begin());
      for (SaValue v : distinct) counts[v] = 0;
    }
  });
}

std::uint64_t GroupedTable::MaxGroupSize() const {
  std::uint64_t best = 0;
  for (const QiGroup& g : groups_) best = std::max<std::uint64_t>(best, g.size());
  return best;
}

}  // namespace ldv
