#include "common/grouped_table.h"

#include <algorithm>

#include "common/check.h"
#include "common/flat_map.h"

namespace ldv {

std::uint32_t QiGroup::SaCount(SaValue v) const {
  auto it = std::lower_bound(
      sa_runs.begin(), sa_runs.end(), v,
      [](const std::pair<SaValue, std::uint32_t>& run, SaValue value) {
        return run.first < value;
      });
  if (it == sa_runs.end() || it->first != v) return 0;
  return RunLength(static_cast<std::size_t>(it - sa_runs.begin()));
}

SaHistogram QiGroup::ToHistogram(std::size_t m) const {
  SaHistogram h(m);
  for (std::size_t i = 0; i < sa_runs.size(); ++i) h.Add(sa_runs[i].first, RunLength(i));
  return h;
}

namespace {

// FNV-1a over the QI signature of a row; equal signatures hash equal, and
// the open-addressing index below compares full signatures on every hash
// hit, so collisions only cost an extra comparison.
std::uint64_t QiSignatureHash(const Table& table, RowId row) {
  std::uint64_t h = 1469598103934665603ULL;
  for (Value v : table.qi_row(row)) {
    h ^= v;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

GroupedTable::GroupedTable(const Table& table, Workspace* workspace) {
  row_count_ = table.size();
  sa_domain_size_ = table.schema().sa_domain_size();
  if (table.empty()) return;

  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;
  const std::size_t n = table.size();

  // Row signature hashes, computed once.
  auto hashes_s = ws.U64();
  std::vector<std::uint64_t>& hashes = *hashes_s;
  hashes.resize(n);
  for (RowId r = 0; r < n; ++r) hashes[r] = QiSignatureHash(table, r);

  // Open-addressing signature index: slot -> group id + 1 (0 = empty),
  // sized to stay at most half full. Group ids are assigned in first-
  // occurrence row order, exactly like the seed's unordered_map pass.
  std::size_t cap = 16;
  while (cap < 2 * n) cap <<= 1;
  const std::size_t mask = cap - 1;
  auto slots_s = ws.U32();
  std::vector<std::uint32_t>& slots = *slots_s;
  slots.assign(cap, 0);

  auto group_of_s = ws.U32();
  std::vector<std::uint32_t>& group_of = *group_of_s;
  group_of.resize(n);
  auto sizes_s = ws.U32();
  std::vector<std::uint32_t>& sizes = *sizes_s;  // rows per group
  auto reps_s = ws.U32();
  std::vector<std::uint32_t>& reps = *reps_s;  // representative row per group

  for (RowId r = 0; r < n; ++r) {
    auto qi = table.qi_row(r);
    std::size_t i = MixU64(hashes[r]) & mask;
    for (;;) {
      if (slots[i] == 0) {
        slots[i] = static_cast<std::uint32_t>(reps.size()) + 1;
        group_of[r] = static_cast<std::uint32_t>(reps.size());
        reps.push_back(r);
        sizes.push_back(1);
        break;
      }
      std::uint32_t g = slots[i] - 1;
      if (hashes[reps[g]] == hashes[r]) {
        auto rep_qi = table.qi_row(reps[g]);
        if (std::equal(qi.begin(), qi.end(), rep_qi.begin(), rep_qi.end())) {
          group_of[r] = g;
          ++sizes[g];
          break;
        }
      }
      i = (i + 1) & mask;
    }
  }

  // Materialize the groups with exact-size reservations.
  const std::size_t s = reps.size();
  groups_.resize(s);
  for (GroupId g = 0; g < s; ++g) {
    auto qi = table.qi_row(reps[g]);
    groups_[g].qi_values.assign(qi.begin(), qi.end());
    groups_[g].rows.reserve(sizes[g]);
  }
  for (RowId r = 0; r < n; ++r) groups_[group_of[r]].rows.push_back(r);

  // Sort each group's rows by SA value and build the runs. A stable
  // counting sort keeps the seed's stable_sort order (row order preserved
  // within a value) at O(|Q| + distinct) per group with zero allocation:
  // `counts` is a dense per-value counter reset through `distinct`, then
  // reused as the per-run write cursor.
  auto counts_s = ws.U32();
  std::vector<std::uint32_t>& counts = *counts_s;
  counts.assign(sa_domain_size_, 0);
  auto distinct_s = ws.U32();
  std::vector<std::uint32_t>& distinct = *distinct_s;
  auto sorted_s = ws.U32();
  std::vector<std::uint32_t>& sorted = *sorted_s;
  for (QiGroup& group : groups_) {
    if (group.rows.size() == 1) {
      group.sa_runs.emplace_back(table.sa(group.rows[0]), 0);
      continue;
    }
    distinct.clear();
    for (RowId r : group.rows) {
      SaValue v = table.sa(r);
      if (counts[v]++ == 0) distinct.push_back(v);
    }
    std::sort(distinct.begin(), distinct.end());
    group.sa_runs.reserve(distinct.size());
    std::uint32_t offset = 0;
    for (SaValue v : distinct) {
      group.sa_runs.emplace_back(v, offset);
      offset += counts[v];
      counts[v] = group.sa_runs.back().second;  // becomes the write cursor
    }
    sorted.resize(group.rows.size());
    for (RowId r : group.rows) sorted[counts[table.sa(r)]++] = r;
    std::copy(sorted.begin(), sorted.end(), group.rows.begin());
    for (SaValue v : distinct) counts[v] = 0;
  }
}

std::uint64_t GroupedTable::MaxGroupSize() const {
  std::uint64_t best = 0;
  for (const QiGroup& g : groups_) best = std::max<std::uint64_t>(best, g.size());
  return best;
}

}  // namespace ldv
