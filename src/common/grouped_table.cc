#include "common/grouped_table.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace ldv {

std::uint32_t QiGroup::SaCount(SaValue v) const {
  auto it = std::lower_bound(
      sa_runs.begin(), sa_runs.end(), v,
      [](const std::pair<SaValue, std::uint32_t>& run, SaValue value) {
        return run.first < value;
      });
  if (it == sa_runs.end() || it->first != v) return 0;
  return RunLength(static_cast<std::size_t>(it - sa_runs.begin()));
}

SaHistogram QiGroup::ToHistogram(std::size_t m) const {
  SaHistogram h(m);
  for (std::size_t i = 0; i < sa_runs.size(); ++i) h.Add(sa_runs[i].first, RunLength(i));
  return h;
}

namespace {

// Hash of the QI signature of a row (FNV-1a); full signatures are compared
// on collision.
struct QiKey {
  const Table* table;
  RowId row;
};

struct QiKeyHash {
  std::size_t operator()(const QiKey& k) const {
    std::uint64_t h = 1469598103934665603ULL;
    for (Value v : k.table->qi_row(k.row)) {
      h ^= v;
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

struct QiKeyEq {
  bool operator()(const QiKey& a, const QiKey& b) const {
    auto ra = a.table->qi_row(a.row);
    auto rb = b.table->qi_row(b.row);
    return std::equal(ra.begin(), ra.end(), rb.begin(), rb.end());
  }
};

}  // namespace

GroupedTable::GroupedTable(const Table& table) {
  row_count_ = table.size();
  sa_domain_size_ = table.schema().sa_domain_size();

  std::unordered_map<QiKey, GroupId, QiKeyHash, QiKeyEq> index;
  index.reserve(table.size() * 2);
  for (RowId r = 0; r < table.size(); ++r) {
    QiKey key{&table, r};
    auto [it, inserted] = index.try_emplace(key, static_cast<GroupId>(groups_.size()));
    if (inserted) {
      QiGroup group;
      auto qi = table.qi_row(r);
      group.qi_values.assign(qi.begin(), qi.end());
      groups_.push_back(std::move(group));
    }
    groups_[it->second].rows.push_back(r);
  }

  // Sort each group's rows by SA value (stable so row order within a value
  // is deterministic), then build the runs.
  for (QiGroup& group : groups_) {
    std::stable_sort(group.rows.begin(), group.rows.end(),
                     [&](RowId a, RowId b) { return table.sa(a) < table.sa(b); });
    for (std::uint32_t i = 0; i < group.rows.size(); ++i) {
      SaValue v = table.sa(group.rows[i]);
      if (group.sa_runs.empty() || group.sa_runs.back().first != v) {
        group.sa_runs.emplace_back(v, i);
      }
    }
  }
}

std::uint64_t GroupedTable::MaxGroupSize() const {
  std::uint64_t best = 0;
  for (const QiGroup& g : groups_) best = std::max<std::uint64_t>(best, g.size());
  return best;
}

}  // namespace ldv
