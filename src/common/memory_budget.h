#ifndef LDIV_COMMON_MEMORY_BUDGET_H_
#define LDIV_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace ldv {

/// Byte-accounting object shared by the paged data plane: the page cache,
/// the external sorter, and the budget-aware kernel paths all charge their
/// resident buffers here so one number bounds the engine's working set.
/// A total of 0 means "unlimited" (the in-RAM fast path); accounting is
/// advisory -- Charge never fails -- and callers size their structures via
/// remaining() BEFORE allocating, so the budget steers allocation sizes
/// rather than aborting mid-run.
class MemoryBudget {
 public:
  /// `total_bytes` == 0 builds an unlimited budget.
  explicit MemoryBudget(std::uint64_t total_bytes = 0) : total_(total_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  bool unlimited() const { return total_ == 0; }
  std::uint64_t total() const { return total_; }
  std::uint64_t used() const { return used_.load(std::memory_order_relaxed); }

  /// High-water mark of used() over the budget's lifetime.
  std::uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// total() - used(), saturating at 0. Unlimited budgets report a huge
  /// remainder so size derivations (`remaining() / page_bytes`) stay sane.
  std::uint64_t remaining() const;

  /// True if charging `bytes` would keep used() within total(). Always
  /// true for unlimited budgets.
  bool WouldFit(std::uint64_t bytes) const;

  /// Records `bytes` of resident memory. Never fails: the budget is a
  /// sizing signal, not a hard allocator, and transient overshoot (e.g.
  /// a merge heap plus the last run buffer) is visible through peak().
  void Charge(std::uint64_t bytes);

  /// Returns `bytes` previously charged.
  void Release(std::uint64_t bytes);

 private:
  std::uint64_t total_ = 0;
  std::atomic<std::uint64_t> used_{0};
  std::atomic<std::uint64_t> peak_{0};
};

/// RAII charge against a budget; `budget` may be null (no-op) so call
/// sites stay unconditional. Movable so owners can store reservations.
/// The reservation shares ownership of its budget, so a charge taken
/// against one budget epoch (see SetMemoryBudget) releases against that
/// same object even if the process has since moved to a new epoch --
/// long-lived owners like a caller-held paged table never dangle.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  MemoryReservation(std::shared_ptr<MemoryBudget> budget, std::uint64_t bytes);
  ~MemoryReservation();

  MemoryReservation(MemoryReservation&& other) noexcept;
  MemoryReservation& operator=(MemoryReservation&& other) noexcept;
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  std::uint64_t bytes() const { return bytes_; }

  /// Grows or shrinks the reservation to `bytes` in place.
  void Resize(std::uint64_t bytes);

  /// Returns the charge now instead of at destruction.
  void Reset();

 private:
  std::shared_ptr<MemoryBudget> budget_;
  std::uint64_t bytes_ = 0;
};

/// Process-wide memory budget, the memory twin of SetThreadBudget: one
/// run of the engine (CLI invocation, test, bench iteration) sets it once
/// and every budget-aware layer reads it. 0 means unlimited -- all paths
/// take the exact in-RAM code they take today. Setting a new total starts
/// a fresh budget epoch (used and peak drop to 0); the previous epoch's
/// object stays alive as long as any reservation or paged structure still
/// shares ownership of it, so charges always release where they were
/// taken.
void SetMemoryBudget(std::uint64_t total_bytes);

/// The configured total in bytes; 0 when unlimited.
std::uint64_t MemoryBudgetBytes();

/// The process-wide accounting object for transient reads (WouldFit,
/// remaining) within a run. Its total() matches MemoryBudgetBytes().
MemoryBudget& GlobalMemoryBudget();

/// Shared ownership of the current budget epoch. Anything that holds a
/// charge past the current engine run (reservations, page caches, spilled
/// columns handed to a caller) must hold the budget through this so a
/// later SetMemoryBudget cannot destroy the object it will release into.
std::shared_ptr<MemoryBudget> GlobalMemoryBudgetShared();

/// Parses a human byte size: a non-negative integer with an optional
/// K/M/G/T suffix (binary multiples, case-insensitive, optional trailing
/// "B" or "iB" as in "512MiB"). Returns false and fills `error` on bad
/// syntax or overflow. "0" parses to 0 (= unlimited).
bool ParseByteSize(std::string_view text, std::uint64_t* bytes, std::string* error);

/// Formats bytes compactly for messages: exact binary multiples print
/// with their suffix ("512M", "4G"), everything else as plain bytes.
std::string FormatByteSize(std::uint64_t bytes);

}  // namespace ldv

#endif  // LDIV_COMMON_MEMORY_BUDGET_H_
