#ifndef LDIV_COMMON_SIMD_H_
#define LDIV_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace ldv {
namespace simd {

/// Instruction-set tiers of the kernel library. Every kernel has one
/// implementation per tier (the SSE2 tier reuses the scalar body for the
/// gather-heavy kernels, where 128-bit SIMD has no gather to offer); the
/// scalar tier is the portable reference the others are tested against.
enum class Level : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Lower-case tier name ("scalar" / "sse2" / "avx2"), as accepted by the
/// LDIV_SIMD environment variable and recorded in BENCH_micro.json.
const char* LevelName(Level level);

/// The best tier this process can run: the highest level that is both
/// compiled in (x86 translation units compile to empty stubs elsewhere)
/// and reported by the CPU at startup.
Level DetectedLevel();

/// The tier the kernels currently dispatch to: DetectedLevel() clamped by
/// the LDIV_SIMD environment variable (scalar | sse2 | avx2; read once, at
/// first use; values above DetectedLevel() are clamped, unknown values are
/// ignored with a warning) and by any later ForceLevel() call.
Level ActiveLevel();

/// Forces dispatch to `level` (clamped to DetectedLevel()) until the next
/// call. For tests and benchmarks; call only between kernel invocations --
/// the switch is not synchronized against kernels already running.
void ForceLevel(Level level);

// ---------------------------------------------------------------------------
// Kernels. Every kernel produces byte-identical output at every tier: the
// integer kernels are exact by nature, and KlAccumulate fixes both its
// floating-point operation set (IEEE single-rounded div/mul/add, scalar
// std::log, no FMA contraction -- the kernel translation units compile with
// -ffp-contract=off) and its accumulation geometry (see below) so the bits
// cannot depend on the lane width.
// ---------------------------------------------------------------------------

/// FNV-1a column fold: hashes[i] = (hashes[i] ^ col[i]) * 0x100000001b3.
/// One call per attribute column folds per-row signature hashes without
/// materializing rows (the multiply splits into shift-and-add form,
/// h * prime = (h << 40) + h * 435, which 64-bit SIMD lanes can do).
void FnvFoldColumn(std::uint64_t* hashes, const std::uint32_t* col, std::size_t n);

/// Mixed-radix accumulate: acc[i] += stride * col[i]. The per-column pass
/// of packed point-id construction (strides up to 2^64 split into 32-bit
/// halves for the lane multiplies).
void StrideAccumulate(std::uint64_t* acc, const std::uint32_t* col, std::uint64_t stride,
                      std::size_t n);

/// Min and max of values[idx[0..n)], n >= 1. The Mondrian min-max fallback
/// scan (column values gathered through the node's row-id slice).
void MinMaxGatherU32(const std::uint32_t* values, const std::uint32_t* idx, std::size_t n,
                     std::uint32_t* mn, std::uint32_t* mx);

/// out[i] = values[idx[i]]. The Mondrian SA re-gather after a partition
/// commit and the nth_element staging copy.
void GatherU32(const std::uint32_t* values, const std::uint32_t* idx, std::size_t n,
               std::uint32_t* out);

/// Box-containment scan of the KL stabbing loop: for each candidate group
/// g = candidates[i] (in ascending i order), tests
///   point[a] >= lo[a][g] && point[a] < hi[a][g]   for a in [1, d)
/// (attribute 0 is pre-filtered by the caller's inverted index) and
/// appends g to `hits`. Returns the number of hits; stops after the first
/// hit when `first_only` (disjoint tilings contain each point at most
/// once). `hits` must have room for n entries. All coordinates and bounds
/// must be below 2^31 (attribute domains are categorical codes, far below;
/// the AVX2 path compares as signed 32-bit).
std::size_t StabCandidates(const std::uint32_t* candidates, std::size_t n,
                           const std::uint32_t* point, const std::uint32_t* const* lo,
                           const std::uint32_t* const* hi, std::size_t d, bool first_only,
                           std::uint32_t* hits);

/// The KL term accumulation: for i in [0, len),
///   term_i = (count[i] / n) * log(count[i] / fstar_n[i])
/// added into acc[i % 4]. The four virtual lanes are the fixed accumulation
/// geometry: scalar keeps four running sums, SSE2 two 2-double registers,
/// AVX2 one 4-double register -- the same terms land in the same lane at
/// every tier, and the caller folds acc[0..3] in index order. Logs are
/// taken by scalar std::log at every tier (on identical, single-rounded
/// quotients), so the result is byte-identical across tiers.
///
/// Call with consecutive blocks whose lengths are multiples of 4 (except
/// the last) so that i % 4 stays aligned with the global element index.
void KlAccumulate(const double* count, const double* fstar_n, double n, std::size_t len,
                  double acc[4]);

/// Batch Hilbert encode (Skilling's transform + bit interleave) of rows
/// [row_begin, row_begin + count) over d coordinate columns, each
/// coordinate right-shifted by `shift`: out[i] is the curve index of row
/// row_begin + i. Requires d >= 2 (d == 1 is the identity -- callers
/// shortcut it), d * bits <= 64 and (cols[a][r] >> shift) < 2^bits. The
/// SIMD tiers run the transform branchlessly on 64-bit row lanes;
/// bit-exact with HilbertCurve::Encode.
void HilbertEncodeBlock(const std::uint32_t* const* cols, std::size_t d, std::uint32_t bits,
                        std::uint32_t shift, std::size_t row_begin, std::size_t count,
                        std::uint64_t* out);

namespace detail {

/// Dispatch table of one tier's kernel implementations. simd.cc owns the
/// scalar table; simd_sse2.cc / simd_avx2.cc export theirs when compiled
/// on x86 (and a null pointer elsewhere), so dispatch degrades to scalar
/// on other architectures without any build-system branching.
struct Kernels {
  void (*fnv_fold_column)(std::uint64_t*, const std::uint32_t*, std::size_t);
  void (*stride_accumulate)(std::uint64_t*, const std::uint32_t*, std::uint64_t, std::size_t);
  void (*min_max_gather_u32)(const std::uint32_t*, const std::uint32_t*, std::size_t,
                             std::uint32_t*, std::uint32_t*);
  void (*gather_u32)(const std::uint32_t*, const std::uint32_t*, std::size_t, std::uint32_t*);
  std::size_t (*stab_candidates)(const std::uint32_t*, std::size_t, const std::uint32_t*,
                                 const std::uint32_t* const*, const std::uint32_t* const*,
                                 std::size_t, bool, std::uint32_t*);
  void (*kl_accumulate)(const double*, const double*, double, std::size_t, double[4]);
  void (*hilbert_encode_block)(const std::uint32_t* const*, std::size_t, std::uint32_t,
                               std::uint32_t, std::size_t, std::size_t, std::uint64_t*);
};

extern const Kernels kScalarKernels;

/// The SSE2 tier's table, or nullptr when not compiled in (non-x86).
const Kernels* Sse2Kernels();

/// The AVX2 tier's table, or nullptr when not compiled in.
const Kernels* Avx2Kernels();

}  // namespace detail

}  // namespace simd
}  // namespace ldv

#endif  // LDIV_COMMON_SIMD_H_
