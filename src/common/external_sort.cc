#include "common/external_sort.h"

#include <algorithm>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/parallel.h"
#include "common/workspace.h"

namespace ldv {

namespace {

/// Chunk size for parallel run sorting: chunks are sorted via the
/// parallel runtime, then combined with a sequential inplace_merge tree,
/// so the run's byte content equals a plain std::sort at any thread count.
constexpr std::size_t kRunSortGrain = 1u << 16;

constexpr std::size_t kRecordBytes = sizeof(SortRecord);

}  // namespace

std::unique_ptr<ExternalSorter> ExternalSorter::Create(const Options& options,
                                                       std::string* error) {
  std::unique_ptr<SpillFile> file = SpillFile::Create(error);
  if (file == nullptr) return nullptr;
  std::unique_ptr<ExternalSorter> sorter(new ExternalSorter(options));
  sorter->file_ = std::move(file);
  return sorter;
}

ExternalSorter::ExternalSorter(const Options& options) : options_(options) {
  LDIV_CHECK_GT(options_.buffer_records, 0u);
  LDIV_CHECK_GT(options_.merge_buffer_records, 0u);
  buffer_.reserve(options_.buffer_records);
  buffer_reservation_ =
      MemoryReservation(options_.budget, options_.buffer_records * kRecordBytes);
}

ExternalSorter::~ExternalSorter() = default;

void ExternalSorter::Add(const SortRecord& record) {
  LDIV_CHECK(!finished_) << "Add after Finish";
  buffer_.push_back(record);
  ++record_count_;
  if (buffer_.size() == options_.buffer_records) SpillRun();
}

void ExternalSorter::SortBuffer() {
  const std::size_t n = buffer_.size();
  if (n <= kRunSortGrain) {
    std::sort(buffer_.begin(), buffer_.end());
    return;
  }
  Workspace ws;
  ParallelFor(n, kRunSortGrain, ws, [&](std::size_t begin, std::size_t end, Workspace&) {
    std::sort(buffer_.begin() + begin, buffer_.begin() + end);
  });
  // Sequential pairwise merge tree over the fixed chunk geometry.
  for (std::size_t width = kRunSortGrain; width < n; width *= 2) {
    for (std::size_t left = 0; left + width < n; left += 2 * width) {
      const std::size_t mid = left + width;
      const std::size_t right = std::min(n, mid + width);
      std::inplace_merge(buffer_.begin() + left, buffer_.begin() + mid, buffer_.begin() + right);
    }
  }
}

void ExternalSorter::SpillRun() {
  if (buffer_.empty()) return;
  SortBuffer();
  failpoint::Injection injection;
  if (failpoint::Check(failpoint::Site::kExtSortSpill, &injection)) {
    throw IoFailure(failpoint::Describe(failpoint::Site::kExtSortSpill, injection,
                                        "external sort run spill failed"));
  }
  const std::uint64_t bytes = buffer_.size() * kRecordBytes;
  const std::uint64_t offset = file_->Allocate(bytes);
  file_->Write(offset, buffer_.data(), static_cast<std::size_t>(bytes));
  runs_.push_back(Run{offset, buffer_.size()});
  buffer_.clear();
}

void ExternalSorter::Finish() {
  LDIV_CHECK(!finished_) << "double Finish";
  finished_ = true;
  if (runs_.empty()) {
    // In-RAM fast path: everything fit in one buffer; no spill I/O.
    SortBuffer();
    return;
  }
  SpillRun();
  buffer_.clear();
  buffer_.shrink_to_fit();
  buffer_reservation_.Reset();
  sources_.resize(runs_.size());
  merge_reservation_ = MemoryReservation(
      options_.budget, runs_.size() * options_.merge_buffer_records * kRecordBytes);
  const auto greater = [this](std::uint32_t a, std::uint32_t b) {
    const MergeSource& sa = sources_[a];
    const MergeSource& sb = sources_[b];
    const SortRecord& ra = sa.buffer[sa.buffer_pos];
    const SortRecord& rb = sb.buffer[sb.buffer_pos];
    if (!(ra == rb)) return rb < ra;
    return sa.run > sb.run;  // deterministic tie-break on identical records
  };
  for (std::size_t r = 0; r < runs_.size(); ++r) {
    sources_[r].run = r;
    sources_[r].buffer.reserve(options_.merge_buffer_records);
    if (RefillSource(sources_[r])) heap_.push_back(static_cast<std::uint32_t>(r));
  }
  std::make_heap(heap_.begin(), heap_.end(), greater);
}

bool ExternalSorter::RefillSource(MergeSource& source) {
  const Run& run = runs_[source.run];
  const std::uint64_t remaining = run.records - source.next_record;
  if (remaining == 0) return false;
  const std::size_t take =
      static_cast<std::size_t>(std::min<std::uint64_t>(remaining, options_.merge_buffer_records));
  source.buffer.resize(take);
  failpoint::Injection injection;
  if (failpoint::Check(failpoint::Site::kExtSortMerge, &injection)) {
    throw IoFailure(failpoint::Describe(failpoint::Site::kExtSortMerge, injection,
                                        "external sort merge read failed"));
  }
  file_->Read(run.offset + source.next_record * kRecordBytes, source.buffer.data(),
              take * kRecordBytes);
  source.next_record += take;
  source.buffer_pos = 0;
  return true;
}

bool ExternalSorter::Next(SortRecord* out) {
  LDIV_CHECK(finished_) << "Next before Finish";
  if (runs_.empty()) {
    if (ram_pos_ >= buffer_.size()) return false;
    *out = buffer_[ram_pos_++];
    return true;
  }
  if (heap_.empty()) return false;
  const auto greater = [this](std::uint32_t a, std::uint32_t b) {
    const MergeSource& sa = sources_[a];
    const MergeSource& sb = sources_[b];
    const SortRecord& ra = sa.buffer[sa.buffer_pos];
    const SortRecord& rb = sb.buffer[sb.buffer_pos];
    if (!(ra == rb)) return rb < ra;
    return sa.run > sb.run;
  };
  std::pop_heap(heap_.begin(), heap_.end(), greater);
  const std::uint32_t top = heap_.back();
  heap_.pop_back();
  MergeSource& source = sources_[top];
  *out = source.buffer[source.buffer_pos];
  ++source.buffer_pos;
  if (source.buffer_pos == source.buffer.size() && !RefillSource(source)) {
    return true;  // run drained; source leaves the heap
  }
  heap_.push_back(top);
  std::push_heap(heap_.begin(), heap_.end(), greater);
  return true;
}

std::size_t ExternalSorter::run_count() const {
  return runs_.empty() ? 1 : runs_.size();
}

}  // namespace ldv
