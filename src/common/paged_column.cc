#include "common/paged_column.h"

#include <sys/mman.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/check.h"
#include "common/failpoint.h"

namespace ldv {

PagedColumn::PagedColumn(std::unique_ptr<SpillFile> file, PageCache* cache,
                         std::shared_ptr<MemoryBudget> budget)
    : file_(std::move(file)), cache_(cache) {
  LDIV_CHECK(file_ != nullptr);
  LDIV_CHECK(cache_ != nullptr);
  LDIV_CHECK_EQ(page_bytes() % sizeof(std::uint32_t), 0u);
  staging_.reserve(values_per_page());
  staging_reservation_ = MemoryReservation(std::move(budget), page_bytes());
}

PagedColumn::~PagedColumn() {
  if (map_addr_ != nullptr) ::munmap(map_addr_, map_bytes_);
}

void PagedColumn::Append(const std::uint32_t* values, std::size_t count) {
  LDIV_CHECK(!sealed_) << "append to a sealed paged column";
  const std::size_t per_page = values_per_page();
  while (count > 0) {
    const std::size_t take = std::min(count, per_page - staging_.size());
    staging_.insert(staging_.end(), values, values + take);
    values += take;
    count -= take;
    size_ += take;
    if (staging_.size() == per_page) {
      failpoint::Injection injection;
      if (failpoint::Check(failpoint::Site::kPagedAppend, &injection)) {
        throw IoFailure(failpoint::Describe(failpoint::Site::kPagedAppend, injection,
                                            "paged column append failed"));
      }
      file_->Write(file_->Allocate(page_bytes()), staging_.data(), page_bytes());
      staging_.clear();
    }
  }
}

bool PagedColumn::Seal(bool map, std::string* error) {
  LDIV_CHECK(!sealed_) << "double seal of a paged column";
  if (!staging_.empty()) {
    failpoint::Injection injection;
    if (failpoint::Check(failpoint::Site::kPagedSeal, &injection)) {
      throw IoFailure(failpoint::Describe(failpoint::Site::kPagedSeal, injection,
                                          "paged column seal failed"));
    }
    const std::size_t tail_bytes = staging_.size() * sizeof(std::uint32_t);
    file_->Write(file_->Allocate(tail_bytes), staging_.data(), tail_bytes);
    staging_.clear();
    staging_.shrink_to_fit();
  }
  staging_reservation_.Reset();
  sealed_ = true;
  LDIV_CHECK_EQ(file_->size(), size_ * sizeof(std::uint32_t));
  if (map) return Map(error);
  return true;
}

bool PagedColumn::Map(std::string* error) {
  LDIV_CHECK(sealed_) << "map of an unsealed column";
  if (mapped() || size_ == 0) return true;
  failpoint::Injection injection;
  if (failpoint::Check(failpoint::Site::kPagedMap, &injection)) {
    if (error != nullptr) {
      *error = failpoint::Describe(failpoint::Site::kPagedMap, injection,
                                   "cannot map spill file");
    }
    return false;
  }
  map_bytes_ = static_cast<std::size_t>(file_->size());
  void* addr = ::mmap(nullptr, map_bytes_, PROT_READ, MAP_SHARED, file_->fd(), 0);
  if (addr == MAP_FAILED) {
    map_bytes_ = 0;
    if (error != nullptr) {
      *error = std::string("cannot map spill file: ") + std::strerror(errno);
    }
    return false;
  }
  map_addr_ = addr;
  return true;
}

std::span<const std::uint32_t> PagedColumn::mapping() const {
  LDIV_CHECK(sealed_) << "mapping of an unsealed column";
  if (size_ == 0) return {};
  LDIV_CHECK(mapped()) << "mapping of an unmapped column";
  return {static_cast<const std::uint32_t*>(map_addr_), static_cast<std::size_t>(size_)};
}

std::size_t PagedColumn::PageValidBytes(std::uint64_t page) const {
  const std::uint64_t total = size_ * sizeof(std::uint32_t);
  const std::uint64_t start = page * page_bytes();
  LDIV_CHECK_LT(start, total);
  return static_cast<std::size_t>(std::min<std::uint64_t>(page_bytes(), total - start));
}

std::uint32_t PagedColumn::Get(std::uint64_t row) const {
  LDIV_CHECK(sealed_) << "read of an unsealed column";
  LDIV_CHECK_LT(row, size_);
  if (mapped()) return static_cast<const std::uint32_t*>(map_addr_)[row];
  const std::uint64_t page = row / values_per_page();
  const std::byte* data = cache_->Pin(*file_, page, PageValidBytes(page));
  const std::uint32_t value = reinterpret_cast<const std::uint32_t*>(
      data)[row % values_per_page()];
  cache_->Unpin(*file_, page);
  return value;
}

ColumnCursor::ColumnCursor(const PagedColumn& column, std::uint64_t begin, std::uint64_t end)
    : column_(&column), pos_(begin), end_(end) {
  LDIV_CHECK(column.sealed()) << "cursor over an unsealed column";
  LDIV_CHECK_LE(begin, end);
  LDIV_CHECK_LE(end, column.size());
}

ColumnCursor::~ColumnCursor() { ReleasePin(); }

void ColumnCursor::ReleasePin() {
  if (pinned_) {
    column_->cache_->Unpin(*column_->file_, pinned_page_);
    pinned_ = false;
  }
}

bool ColumnCursor::Next(std::span<const std::uint32_t>* span) {
  ReleasePin();
  if (pos_ >= end_) return false;
  if (column_->mapped()) {
    *span = column_->mapping().subspan(static_cast<std::size_t>(pos_),
                                       static_cast<std::size_t>(end_ - pos_));
    pos_ = end_;
    return true;
  }
  const std::size_t per_page = column_->values_per_page();
  const std::uint64_t page = pos_ / per_page;
  const std::uint64_t page_end = std::min<std::uint64_t>(end_, (page + 1) * per_page);
  const std::byte* data = column_->cache_->Pin(*column_->file_, page,
                                               column_->PageValidBytes(page));
  pinned_ = true;
  pinned_page_ = page;
  *span = {reinterpret_cast<const std::uint32_t*>(data) + (pos_ - page * per_page),
           static_cast<std::size_t>(page_end - pos_)};
  pos_ = page_end;
  return true;
}

const Table& PagedTable::resident() const {
  LDIV_CHECK(resident_.has_value())
      << "paged table was built without map_on_seal; no resident view";
  return *resident_;
}

std::vector<std::uint32_t> PagedTable::SaHistogramCounts() const {
  std::vector<std::uint32_t> counts(schema_.sa_domain_size(), 0);
  ColumnCursor cursor(*sa_column_);
  std::span<const std::uint32_t> span;
  while (cursor.Next(&span)) {
    for (std::uint32_t v : span) counts[v]++;
  }
  return counts;
}

std::unique_ptr<PagedTableBuilder> PagedTableBuilder::Create(std::size_t qi_count,
                                                             const Options& options,
                                                             std::string* error) {
  LDIV_CHECK_GT(options.page_bytes, 0u);
  LDIV_CHECK_EQ(options.page_bytes % sizeof(std::uint32_t), 0u);
  std::unique_ptr<PagedTableBuilder> builder(new PagedTableBuilder(options));
  builder->cache_ = std::make_unique<PageCache>(PageCacheOptions{
      .page_bytes = options.page_bytes,
      .frames = std::max<std::size_t>(options.cache_frames, 1),
      .budget = options.budget,
  });
  for (std::size_t a = 0; a <= qi_count; ++a) {
    std::unique_ptr<SpillFile> file = SpillFile::Create(error);
    if (file == nullptr) return nullptr;
    auto column = std::make_unique<PagedColumn>(std::move(file), builder->cache_.get(),
                                                options.budget);
    if (a < qi_count) {
      builder->qi_columns_.push_back(std::move(column));
    } else {
      builder->sa_column_ = std::move(column);
    }
  }
  return builder;
}

void PagedTableBuilder::AppendRow(std::span<const Value> qi_values, SaValue sa) {
  LDIV_CHECK_EQ(qi_values.size(), qi_columns_.size());
  for (std::size_t a = 0; a < qi_values.size(); ++a) qi_columns_[a]->Append(qi_values[a]);
  sa_column_->Append(sa);
  ++rows_;
}

void PagedTableBuilder::AppendQiChunk(AttrId attr, const Value* values, std::size_t count) {
  LDIV_CHECK_LT(attr, qi_columns_.size());
  qi_columns_[attr]->Append(values, count);
}

void PagedTableBuilder::AppendSaChunk(const SaValue* values, std::size_t count) {
  sa_column_->Append(values, count);
  rows_ += count;
}

namespace {

/// Max over a sealed column, streamed through the page cache -- the
/// validation sweep never needs more than one resident page per column.
std::uint32_t ColumnMax(const PagedColumn& column) {
  std::uint32_t max_value = 0;
  ColumnCursor cursor(column);
  std::span<const std::uint32_t> span;
  while (cursor.Next(&span)) {
    for (std::uint32_t v : span) max_value = std::max(max_value, v);
  }
  return max_value;
}

}  // namespace

std::unique_ptr<PagedTable> PagedTableBuilder::Finish(Schema schema, std::string* error) {
  const auto fail = [&](const std::string& reason) -> std::unique_ptr<PagedTable> {
    if (error != nullptr) *error = reason;
    return nullptr;
  };
  if (schema.qi_count() != qi_columns_.size()) {
    return fail("schema QI count does not match builder");
  }
  if (sa_column_->size() != rows_) return fail("SA column length mismatch");
  for (std::size_t a = 0; a < qi_columns_.size(); ++a) {
    if (qi_columns_[a]->size() != rows_) {
      return fail("ragged paged column '" + schema.qi(static_cast<AttrId>(a)).name + "'");
    }
  }
  // Seal unmapped first so the validation sweep streams through the page
  // cache (bounded frames), then map on a second pass for the resident
  // view once the data is known good.
  for (std::size_t a = 0; a <= qi_columns_.size(); ++a) {
    PagedColumn& column = a < qi_columns_.size() ? *qi_columns_[a] : *sa_column_;
    if (!column.Seal(/*map=*/false, error)) return nullptr;
  }
  if (rows_ > 0) {
    for (std::size_t a = 0; a < qi_columns_.size(); ++a) {
      const Attribute& attr = schema.qi(static_cast<AttrId>(a));
      const std::uint32_t max_value = ColumnMax(*qi_columns_[a]);
      if (max_value >= attr.domain_size) {
        return fail("column '" + attr.name + "': value " + std::to_string(max_value) +
                    " outside domain of size " + std::to_string(attr.domain_size));
      }
    }
    const std::uint32_t sa_max = ColumnMax(*sa_column_);
    if (sa_max >= schema.sa_domain_size()) {
      return fail("column '" + schema.sensitive().name + "': value " + std::to_string(sa_max) +
                  " outside domain of size " + std::to_string(schema.sa_domain_size()));
    }
  }
  std::unique_ptr<PagedTable> table(new PagedTable());
  table->schema_ = std::move(schema);
  table->rows_ = rows_;
  table->cache_ = std::move(cache_);
  table->qi_columns_ = std::move(qi_columns_);
  table->sa_column_ = std::move(sa_column_);
  if (options_.map_on_seal) {
    std::vector<std::span<const Value>> qi_spans;
    qi_spans.reserve(table->qi_columns_.size());
    for (auto& column : table->qi_columns_) {
      if (!column->Map(error)) return nullptr;
      qi_spans.push_back(column->mapping());
    }
    if (!table->sa_column_->Map(error)) return nullptr;
    table->resident_ =
        Table::FromBorrowedColumns(table->schema_, std::move(qi_spans),
                                   table->sa_column_->mapping());
  }
  return table;
}

}  // namespace ldv
