#include "common/schema_spec.h"

#include <vector>

#include "common/flags.h"

namespace ldv {

namespace {

// Parses one `[name ':'] domain-size` item. `ordinal` numbers the
// generated fallback name.
bool ParseAttribute(std::string_view item, std::string_view fallback_name, Attribute* out,
                    std::string* error) {
  std::string_view name = fallback_name;
  std::string_view size_text = item;
  std::size_t colon = item.find(':');
  if (colon != std::string_view::npos) {
    name = item.substr(0, colon);
    size_text = item.substr(colon + 1);
    if (name.empty()) {
      *error = "schema spec: empty attribute name in '" + std::string(item) + "'";
      return false;
    }
  }
  std::uint64_t size = 0;
  if (!ParseUint64(size_text, &size) || size == 0) {
    *error = "schema spec: attribute '" + std::string(name) +
             "' needs a positive domain size, got '" + std::string(size_text) + "'";
    return false;
  }
  out->name = std::string(name);
  out->domain_size = static_cast<std::size_t>(size);
  return true;
}

bool SplitList(std::string_view text, std::vector<std::string_view>* out, std::string* error) {
  out->clear();
  while (true) {
    std::size_t comma = text.find(',');
    std::string_view item = text.substr(0, comma);
    if (item.empty()) {
      *error = "schema spec: empty attribute entry";
      return false;
    }
    out->push_back(item);
    if (comma == std::string_view::npos) return true;
    text.remove_prefix(comma + 1);
  }
}

}  // namespace

std::optional<Schema> ParseSchemaSpec(std::string_view spec, std::string* error) {
  if (spec.empty()) {
    *error = "schema spec is empty (expected e.g. 'Age:79,Gender:2|Income:50')";
    return std::nullopt;
  }

  std::string_view qi_part = spec;
  std::string_view sa_part;
  std::size_t bar = spec.find('|');
  if (bar != std::string_view::npos) {
    qi_part = spec.substr(0, bar);
    sa_part = spec.substr(bar + 1);
    if (sa_part.find('|') != std::string_view::npos) {
      *error = "schema spec: more than one '|' separator";
      return std::nullopt;
    }
    if (sa_part.empty()) {
      *error = "schema spec: missing sensitive attribute after '|'";
      return std::nullopt;
    }
    if (sa_part.find(',') != std::string_view::npos) {
      *error = "schema spec: exactly one sensitive attribute allowed after '|'";
      return std::nullopt;
    }
  }

  std::vector<std::string_view> items;
  if (!SplitList(qi_part, &items, error)) return std::nullopt;
  if (sa_part.empty()) {
    // `d1,...,dk` form: the last entry is the sensitive attribute.
    if (items.size() < 2) {
      *error =
          "schema spec: missing sensitive attribute (use 'qi,...|sa' or list at "
          "least two domains; the last one is the SA)";
      return std::nullopt;
    }
    sa_part = items.back();
    items.pop_back();
  }

  std::vector<Attribute> qi(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    std::string fallback = "Q";
    fallback += std::to_string(i + 1);
    if (!ParseAttribute(items[i], fallback, &qi[i], error)) return std::nullopt;
  }
  Attribute sensitive;
  if (!ParseAttribute(sa_part, "S", &sensitive, error)) return std::nullopt;
  return Schema(std::move(qi), std::move(sensitive));
}

std::string FormatSchemaSpec(const Schema& schema) {
  std::string spec;
  for (std::size_t i = 0; i < schema.qi_count(); ++i) {
    const Attribute& a = schema.qi(static_cast<AttrId>(i));
    if (i > 0) spec += ",";
    spec += a.name + ":" + std::to_string(a.domain_size);
  }
  spec += "|" + schema.sensitive().name + ":" + std::to_string(schema.sensitive().domain_size);
  return spec;
}

}  // namespace ldv
