#include "common/flags.h"

#include <fstream>
#include <iterator>
#include <limits>

namespace ldv {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool IsFlagToken(std::string_view token) {
  return token.size() > 2 && token[0] == '-' && token[1] == '-';
}

template <typename T>
bool ParseListValue(std::string_view name, const std::string& raw, std::vector<T>* out,
                    std::string* error) {
  out->clear();
  std::string_view rest = raw;
  while (true) {
    std::size_t comma = rest.find(',');
    std::string_view cell = Trim(rest.substr(0, comma));
    std::uint64_t value = 0;
    if (!ParseUint64(cell, &value) || value > std::numeric_limits<T>::max()) {
      *error = "--" + std::string(name) + ": bad list element '" + std::string(cell) + "' in '" +
               raw + "'";
      return false;
    }
    out->push_back(static_cast<T>(value));
    if (comma == std::string_view::npos) return true;
    rest.remove_prefix(comma + 1);
  }
}

}  // namespace

bool ParseUint64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool FlagSet::ParseArgs(int argc, const char* const* argv, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    std::string_view token = argv[i];
    if (!IsFlagToken(token)) {
      *error = "unexpected argument '" + std::string(token) + "' (flags are --key=value)";
      return false;
    }
    token.remove_prefix(2);
    std::size_t eq = token.find('=');
    if (eq != std::string_view::npos) {
      Insert(std::string(token.substr(0, eq)), std::string(token.substr(eq + 1)),
             /*override_existing=*/true);
      continue;
    }
    // `--key value` when the next token is not itself a flag; a bare
    // `--key` is a boolean switch.
    if (i + 1 < argc && !IsFlagToken(argv[i + 1])) {
      Insert(std::string(token), argv[++i], /*override_existing=*/true);
    } else {
      Insert(std::string(token), "true", /*override_existing=*/true);
    }
  }
  return true;
}

bool FlagSet::ParseConfigFile(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open config file '" + path + "'";
    return false;
  }
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return ParseConfigText(text, path, error);
}

bool FlagSet::ParseConfigText(std::string_view text, std::string_view label, std::string* error) {
  int lineno = 0;
  while (!text.empty()) {
    ++lineno;
    std::size_t newline = text.find('\n');
    std::string_view line = text.substr(0, newline);
    text.remove_prefix(newline == std::string_view::npos ? text.size() : newline + 1);
    std::string_view body = Trim(line);
    std::size_t hash = body.find('#');
    if (hash != std::string_view::npos) body = Trim(body.substr(0, hash));
    if (body.empty()) continue;
    std::size_t eq = body.find('=');
    if (eq == std::string_view::npos) {
      *error = std::string(label) + ":" + std::to_string(lineno) + ": expected 'key = value', got '" +
               std::string(body) + "'";
      return false;
    }
    std::string_view key = Trim(body.substr(0, eq));
    std::string_view value = Trim(body.substr(eq + 1));
    if (key.empty()) {
      *error = std::string(label) + ":" + std::to_string(lineno) + ": empty key";
      return false;
    }
    // Earlier sources (command-line flags, an earlier config) win.
    Insert(std::string(key), std::string(value), /*override_existing=*/false);
  }
  return true;
}

bool FlagSet::Has(std::string_view name) const { return Find(name) != nullptr; }

bool FlagSet::GetString(std::string_view name, std::string_view def, std::string* out,
                        std::string* error) const {
  (void)error;
  const std::string* raw = Find(name);
  *out = raw != nullptr ? *raw : std::string(def);
  return true;
}

bool FlagSet::GetUint32(std::string_view name, std::uint32_t def, std::uint32_t* out,
                        std::string* error) const {
  std::uint64_t wide = 0;
  if (!GetUint64(name, def, &wide, error)) return false;
  if (wide > std::numeric_limits<std::uint32_t>::max()) {
    *error = "--" + std::string(name) + ": value out of range";
    return false;
  }
  *out = static_cast<std::uint32_t>(wide);
  return true;
}

bool FlagSet::GetUint64(std::string_view name, std::uint64_t def, std::uint64_t* out,
                        std::string* error) const {
  const std::string* raw = Find(name);
  if (raw == nullptr) {
    *out = def;
    return true;
  }
  if (!ParseUint64(*raw, out)) {
    *error = "--" + std::string(name) + ": expected a non-negative integer, got '" + *raw + "'";
    return false;
  }
  return true;
}

bool FlagSet::GetBool(std::string_view name, bool def, bool* out, std::string* error) const {
  const std::string* raw = Find(name);
  if (raw == nullptr) {
    *out = def;
    return true;
  }
  if (*raw == "true" || *raw == "1" || *raw == "yes" || *raw == "on") {
    *out = true;
    return true;
  }
  if (*raw == "false" || *raw == "0" || *raw == "no" || *raw == "off") {
    *out = false;
    return true;
  }
  *error = "--" + std::string(name) + ": expected a boolean, got '" + *raw + "'";
  return false;
}

bool FlagSet::GetUint32List(std::string_view name, std::span<const std::uint32_t> def,
                            std::vector<std::uint32_t>* out, std::string* error) const {
  const std::string* raw = Find(name);
  if (raw == nullptr) {
    out->assign(def.begin(), def.end());
    return true;
  }
  return ParseListValue(name, *raw, out, error);
}

bool FlagSet::GetUint64List(std::string_view name, std::span<const std::uint64_t> def,
                            std::vector<std::uint64_t>* out, std::string* error) const {
  const std::string* raw = Find(name);
  if (raw == nullptr) {
    out->assign(def.begin(), def.end());
    return true;
  }
  return ParseListValue(name, *raw, out, error);
}

std::vector<std::string> FlagSet::UnknownKeys(std::span<const std::string_view> known) const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : entries_) {
    bool is_known = false;
    for (std::string_view k : known) {
      if (key == k) {
        is_known = true;
        break;
      }
    }
    bool seen = false;
    for (const std::string& u : unknown) {
      if (u == key) {
        seen = true;
        break;
      }
    }
    if (!is_known && !seen) unknown.push_back(key);
  }
  return unknown;
}

const std::string* FlagSet::Find(std::string_view name) const {
  const std::string* found = nullptr;
  for (const auto& [key, value] : entries_) {
    if (key == name) found = &value;
  }
  return found;
}

void FlagSet::Insert(std::string key, std::string value, bool override_existing) {
  if (!override_existing && Has(key)) return;
  entries_.emplace_back(std::move(key), std::move(value));
}

}  // namespace ldv
