#include "core/tp_plus.h"

#include <utility>

#include "common/check.h"

namespace ldv {

TpPlusResult RunTpPlus(const Table& table, std::uint32_t l,
                       const HilbertOptions& hilbert_options, Workspace* workspace,
                       const GroupedTable* grouped) {
  TpPlusResult result;
  TpResult tp = grouped != nullptr ? RunTp(*grouped, l) : RunTp(table, l, workspace);
  if (!tp.feasible) return result;
  result.feasible = true;
  result.tp_stats = tp.stats;
  result.tp_seconds = tp.seconds;

  result.partition.Reserve(tp.kept_groups.size() + 1);
  for (auto& group : tp.kept_groups) result.partition.AddGroup(std::move(group));

  if (!tp.residue_rows.empty()) {
    // Refine R with the Hilbert baseline; R is l-eligible by construction,
    // so the sub-problem is always feasible.
    Table residue_table = table.SelectRows(tp.residue_rows);
    HilbertResult refined = HilbertAnonymize(residue_table, l, hilbert_options, workspace);
    LDIV_CHECK(refined.feasible) << "residue set must be l-eligible";
    result.hilbert_seconds = refined.seconds;
    result.partition.Reserve(result.partition.group_count() +
                             refined.partition.group_count());
    for (const auto& sub_group : refined.partition.groups()) {
      std::vector<RowId> rows;
      rows.reserve(sub_group.size());
      for (RowId local : sub_group) rows.push_back(tp.residue_rows[local]);
      result.partition.AddGroup(std::move(rows));
    }
  }
  return result;
}

}  // namespace ldv
