#ifndef LDIV_CORE_TP_H_
#define LDIV_CORE_TP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "anonymity/partition.h"
#include "common/grouped_table.h"
#include "common/histogram.h"
#include "common/table.h"
#include "core/pillar_index.h"

namespace ldv {

/// Counters describing one run of the three-phase algorithm.
struct TpStats {
  /// Phase in which the algorithm terminated (1, 2 or 3). Termination in
  /// phase one yields an optimal tuple-minimization solution (Corollary 1);
  /// phase two adds at most l-1 tuples over OPT (Corollary 3); phase three
  /// guarantees the factor-l approximation (Theorem 3).
  int terminated_phase = 0;
  /// Tuples moved to the residue set R in each phase.
  std::uint64_t removed_phase1 = 0;
  std::uint64_t removed_phase2 = 0;
  std::uint64_t removed_phase3 = 0;
  /// h(R) right after phase one -- the paper's h(R-dot). Corollary 2 lower
  /// bounds OPT by l * h(R-dot).
  std::uint32_t residue_pillar_after_phase1 = 0;
  /// h(R) right after phase two (equals the phase-one value by Lemma 5).
  std::uint32_t residue_pillar_after_phase2 = 0;
  std::uint32_t phase2_iterations = 0;
  std::uint32_t phase3_rounds = 0;
  /// |R| at termination.
  std::uint64_t residue_size = 0;
};

/// The three-phase tuple-minimization engine of Section 5.
///
/// The engine operates on SA-multisets: one PillarIndex per QI-group plus
/// one for the residue set R, mirroring the inverted-list implementation of
/// Section 5.5. Construction from a GroupedTable additionally tracks which
/// concrete rows are removed; the histogram-only constructors exist so tests
/// can drive the algorithm through the paper's worked examples (Sections
/// 5.2-5.4) and inspect intermediate states.
class TpEngine {
 public:
  /// Engine over a grouped table; removed rows are tracked.
  TpEngine(const GroupedTable& grouped, std::uint32_t l);

  /// Engine over bare group histograms (no row tracking).
  TpEngine(const std::vector<SaHistogram>& group_histograms, std::uint32_t l);

  /// Engine over bare group histograms with a pre-seeded residue set; used
  /// to enter phase three directly from the paper's Section 5.4 example.
  TpEngine(const std::vector<SaHistogram>& group_histograms, const SaHistogram& residue,
           std::uint32_t l);

  TpEngine(const TpEngine&) = delete;
  TpEngine& operator=(const TpEngine&) = delete;

  /// Runs phases one..three until the residue set is l-eligible.
  /// The input table must be l-eligible (checked).
  const TpStats& Run();

  /// Phase one (Section 5.2): per QI-group, remove pillar tuples until the
  /// group is l-eligible.
  void RunPhase1();

  /// Phase two (Section 5.3): grow |R| without changing h(R), taking the
  /// least-frequent alive SA value each iteration via the candidate list C
  /// of Section 5.5. Returns true iff R became l-eligible.
  bool RunPhase2();

  /// Phase three (Section 5.4): rounds of greedy SET-COVER donations that
  /// raise h(R) by at most l-2 while growing |R| by at least l per round.
  void RunPhase3();

  std::uint32_t l() const { return l_; }
  std::size_t group_count() const { return groups_.size(); }
  std::size_t sa_domain_size() const { return m_; }

  /// True iff |R| >= l * h(R).
  bool ResidueEligible() const { return residue_.IsEligible(l_); }

  std::uint64_t ResidueSize() const { return residue_.total(); }
  std::uint32_t ResiduePillarHeight() const { return residue_.PillarHeight(); }
  SaHistogram ResidueHistogram() const { return residue_.ToHistogram(m_); }
  SaHistogram GroupHistogram(GroupId g) const;

  /// Group status predicates of Section 5.3 (meaningful once all groups are
  /// l-eligible, i.e. after phase one).
  bool GroupIsFat(GroupId g) const;
  bool GroupIsThin(GroupId g) const;
  bool GroupIsConflicting(GroupId g) const;
  bool GroupIsDead(GroupId g) const {
    return GroupIsThin(g) && GroupIsConflicting(g);
  }

  const TpStats& stats() const { return stats_; }

  /// Rows moved to R, in removal order (row-tracking constructor only).
  const std::vector<RowId>& removed_rows() const { return removed_rows_; }

  /// Rows still in group `g` (row-tracking constructor only).
  std::vector<RowId> RemainingRows(GroupId g) const;

 private:
  struct GroupState {
    PillarIndex index;
    const QiGroup* source = nullptr;  // null in histogram-only mode
  };

  class CandidateList;

  void InitFromHistograms(const std::vector<SaHistogram>& group_histograms);

  /// Moves one tuple of `slot` from group `g` into R. Returns the SA value.
  SaValue RemoveTuple(GroupId g, std::uint32_t slot, CandidateList* candidates);

  /// Chooses the fat-group donation of phase three's step two: a non-pillar
  /// (w.r.t. R) SA value present in `g`, minimizing h(R, v).
  std::uint32_t PickFatDonationSlot(GroupId g) const;

  std::uint32_t l_ = 0;
  std::size_t m_ = 0;
  std::vector<GroupState> groups_;
  PillarIndex residue_;
  std::uint64_t initial_residue_ = 0;  // seeded |R| (Section 5.4 test hook)
  bool has_rows_ = false;
  std::vector<RowId> removed_rows_;
  TpStats stats_;
  bool ran_ = false;
};

/// Result of the full TP pipeline over a concrete table.
struct TpResult {
  /// False iff the input table is not l-eligible (Problem 1 infeasible).
  bool feasible = false;
  /// Surviving QI-groups; every row in a group shares the exact QI
  /// signature, so these groups carry zero stars.
  std::vector<std::vector<RowId>> kept_groups;
  /// The residue set R (suppressed tuples).
  std::vector<RowId> residue_rows;
  TpStats stats;
  /// Wall-clock seconds of the solve (excludes grouping when the caller
  /// supplied a GroupedTable).
  double seconds = 0.0;

  /// The final partition: kept groups plus R as a single QI-group.
  Partition ToPartition() const;
};

/// Runs the three-phase algorithm (paper's "TP") on `table` with privacy
/// parameter `l`. Builds the QI-grouping internally (drawing its scratch
/// from `workspace` when one is supplied).
TpResult RunTp(const Table& table, std::uint32_t l, Workspace* workspace = nullptr);

/// Same, over a pre-grouped table.
TpResult RunTp(const GroupedTable& grouped, std::uint32_t l);

}  // namespace ldv

#endif  // LDIV_CORE_TP_H_
