#include "core/algorithm.h"

#include <cctype>
#include <utility>

#include "anonymity/anatomy.h"
#include "anonymity/eligibility.h"
#include "common/check.h"
#include "core/tp_plus.h"
#include "metrics/kl_divergence.h"
#include "mondrian/mondrian.h"

namespace ldv {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kTp:
      return "TP";
    case Algorithm::kTpPlus:
      return "TP+";
    case Algorithm::kHilbert:
      return "Hilbert";
    case Algorithm::kMondrian:
      return "Mondrian";
    case Algorithm::kAnatomy:
      return "Anatomy";
    case Algorithm::kTds:
      return "TDS";
  }
  LDIV_CHECK(false) << "unknown Algorithm value " << static_cast<int>(algorithm);
  return "";
}

const char* MethodologyName(Methodology methodology) {
  switch (methodology) {
    case Methodology::kSuppression:
      return "suppression";
    case Methodology::kMultiDimensional:
      return "multi-dimensional";
    case Methodology::kSingleDimensional:
      return "single-dimensional";
    case Methodology::kBucketization:
      return "bucketization";
  }
  LDIV_CHECK(false) << "unknown Methodology value " << static_cast<int>(methodology);
  return "";
}

bool AlgorithmUsesGroupedArtifact(Algorithm algorithm) {
  return algorithm == Algorithm::kTp || algorithm == Algorithm::kTpPlus;
}

bool AlgorithmUsesHilbertOrderArtifact(Algorithm algorithm) {
  return algorithm == Algorithm::kHilbert;
}

AnonymizationOutcome Anonymizer::Run(const Table& table, std::uint32_t l) const {
  Workspace workspace;
  return Run(table, l, &workspace);
}

AnonymizationOutcome Anonymizer::Run(const Table& table, std::uint32_t l,
                                     Workspace* workspace) const {
  return Run(table, l, workspace, nullptr);
}

AnonymizationOutcome Anonymizer::Run(const Table& table, std::uint32_t l, Workspace* workspace,
                                     const TableArtifacts* artifacts) const {
  LDIV_CHECK(workspace != nullptr);
  AnonymizationOutcome outcome;
  outcome.algorithm = id_;
  outcome.methodology = methodology_;
  if (!RunRaw(table, l, workspace, artifacts, &outcome)) return outcome;
  outcome.feasible = true;
  LDIV_DCHECK(outcome.partition.CoversExactly(table));
  LDIV_DCHECK(IsLDiverse(table, outcome.partition, l));

  // Shared post-processing: every algorithm reports the same utility
  // metrics, computed once here rather than by each bench.
  outcome.group_stats = ComputeGroupSizeStats(outcome.partition);
  if (methodology_ != Methodology::kBucketization) {
    auto generalized = std::make_shared<GeneralizedTable>(table, outcome.partition);
    outcome.stars = generalized->StarCount();
    outcome.suppressed_tuples = generalized->SuppressedTupleCount();
    outcome.generalized = std::move(generalized);
  }
  if (options_.compute_kl) {
    switch (methodology_) {
      case Methodology::kSuppression:
        outcome.kl_divergence = KlDivergenceSuppression(table, *outcome.generalized);
        break;
      case Methodology::kMultiDimensional:
        outcome.kl_divergence = KlDivergenceMultiDim(table, *outcome.boxes);
        break;
      case Methodology::kSingleDimensional:
        outcome.kl_divergence = KlDivergenceSingleDim(table, *outcome.single_dim);
        break;
      case Methodology::kBucketization:
        outcome.kl_divergence = KlDivergenceAnatomy(table, outcome.partition);
        break;
    }
  }
  return outcome;
}

namespace {

class TpAnonymizer final : public Anonymizer {
 public:
  explicit TpAnonymizer(AnonymizerOptions options)
      : Anonymizer(Algorithm::kTp, Methodology::kSuppression, options) {}

  bool RunRaw(const Table& table, std::uint32_t l, Workspace* workspace,
              const TableArtifacts* artifacts, AnonymizationOutcome* out) const override {
    TpResult r = (artifacts != nullptr && artifacts->grouped != nullptr)
                     ? RunTp(*artifacts->grouped, l)
                     : RunTp(table, l, workspace);
    if (!r.feasible) return false;
    out->partition = r.ToPartition();
    out->seconds = r.seconds;
    out->tp_stats = r.stats;
    return true;
  }
};

class TpPlusAnonymizer final : public Anonymizer {
 public:
  explicit TpPlusAnonymizer(AnonymizerOptions options)
      : Anonymizer(Algorithm::kTpPlus, Methodology::kSuppression, options) {}

  bool RunRaw(const Table& table, std::uint32_t l, Workspace* workspace,
              const TableArtifacts* artifacts, AnonymizationOutcome* out) const override {
    const GroupedTable* grouped =
        artifacts != nullptr ? artifacts->grouped.get() : nullptr;
    TpPlusResult r = RunTpPlus(table, l, options().hilbert, workspace, grouped);
    if (!r.feasible) return false;
    out->partition = std::move(r.partition);
    out->seconds = r.seconds();
    out->tp_stats = r.tp_stats;
    return true;
  }
};

class HilbertAnonymizer final : public Anonymizer {
 public:
  explicit HilbertAnonymizer(AnonymizerOptions options)
      : Anonymizer(Algorithm::kHilbert, Methodology::kSuppression, options) {}

  bool RunRaw(const Table& table, std::uint32_t l, Workspace* workspace,
              const TableArtifacts* artifacts, AnonymizationOutcome* out) const override {
    const std::vector<RowId>* order =
        artifacts != nullptr ? artifacts->hilbert_order.get() : nullptr;
    HilbertResult r = HilbertAnonymize(table, l, options().hilbert, workspace, order);
    if (!r.feasible) return false;
    out->partition = std::move(r.partition);
    out->seconds = r.seconds;
    return true;
  }
};

class MondrianAnonymizer final : public Anonymizer {
 public:
  explicit MondrianAnonymizer(AnonymizerOptions options)
      : Anonymizer(Algorithm::kMondrian, Methodology::kMultiDimensional, options) {}

  bool RunRaw(const Table& table, std::uint32_t l, Workspace* workspace,
              const TableArtifacts* /*artifacts*/, AnonymizationOutcome* out) const override {
    MondrianResult r = MondrianAnonymize(table, l, workspace);
    if (!r.feasible) return false;
    out->partition = std::move(r.partition);
    out->boxes = std::make_shared<BoxGeneralization>(std::move(r.generalization));
    out->seconds = r.seconds;
    return true;
  }
};

class AnatomyAnonymizer final : public Anonymizer {
 public:
  explicit AnatomyAnonymizer(AnonymizerOptions options)
      : Anonymizer(Algorithm::kAnatomy, Methodology::kBucketization, options) {}

  bool RunRaw(const Table& table, std::uint32_t l, Workspace* workspace,
              const TableArtifacts* /*artifacts*/, AnonymizationOutcome* out) const override {
    (void)workspace;  // Anatomy's random-shuffle bucketization has no hot scratch.
    AnatomyResult r = AnatomyAnonymize(table, l);
    if (!r.feasible) return false;
    out->partition = std::move(r.partition);
    out->seconds = r.seconds;
    return true;
  }
};

class TdsAnonymizer final : public Anonymizer {
 public:
  explicit TdsAnonymizer(AnonymizerOptions options)
      : Anonymizer(Algorithm::kTds, Methodology::kSingleDimensional, options) {}

  bool RunRaw(const Table& table, std::uint32_t l, Workspace* workspace,
              const TableArtifacts* /*artifacts*/, AnonymizationOutcome* out) const override {
    (void)workspace;  // TDS is dominated by its taxonomy walks, not scratch churn.
    TdsResult r = RunTds(table, l);
    if (!r.feasible) return false;
    out->partition = std::move(r.partition);
    out->single_dim = std::move(r.generalization);
    out->specializations = r.specializations;
    out->seconds = r.seconds;
    return true;
  }
};

template <typename T>
std::unique_ptr<Anonymizer> MakeAnonymizer(const AnonymizerOptions& options) {
  return std::make_unique<T>(options);
}

bool NameEqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

AlgorithmRegistry& AlgorithmRegistry::Global() {
  static AlgorithmRegistry* registry = [] {
    auto* r = new AlgorithmRegistry();
    r->Register(Algorithm::kTp, &MakeAnonymizer<TpAnonymizer>);
    r->Register(Algorithm::kTpPlus, &MakeAnonymizer<TpPlusAnonymizer>);
    r->Register(Algorithm::kHilbert, &MakeAnonymizer<HilbertAnonymizer>);
    r->Register(Algorithm::kMondrian, &MakeAnonymizer<MondrianAnonymizer>);
    r->Register(Algorithm::kAnatomy, &MakeAnonymizer<AnatomyAnonymizer>);
    r->Register(Algorithm::kTds, &MakeAnonymizer<TdsAnonymizer>);
    return r;
  }();
  return *registry;
}

void AlgorithmRegistry::Register(Algorithm id, Factory factory) {
  LDIV_CHECK(factory != nullptr);
  Entry& entry = entries_[static_cast<std::size_t>(id)];
  LDIV_CHECK(entry.factory == nullptr)
      << "duplicate registration for algorithm " << AlgorithmName(id);
  entry.factory = factory;
  entry.default_instance = factory(AnonymizerOptions{});
  LDIV_CHECK(entry.default_instance->id() == id)
      << "factory for " << AlgorithmName(id) << " built "
      << entry.default_instance->name();
}

const Anonymizer& AlgorithmRegistry::Get(Algorithm id) const {
  const Entry& entry = entries_[static_cast<std::size_t>(id)];
  LDIV_CHECK(entry.default_instance != nullptr)
      << "algorithm " << AlgorithmName(id) << " is not registered";
  return *entry.default_instance;
}

const Anonymizer* AlgorithmRegistry::Find(std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.default_instance != nullptr &&
        NameEqualsIgnoreCase(entry.default_instance->name(), name)) {
      return entry.default_instance.get();
    }
  }
  return nullptr;
}

std::unique_ptr<Anonymizer> AlgorithmRegistry::Create(Algorithm id,
                                                      const AnonymizerOptions& options) const {
  const Entry& entry = entries_[static_cast<std::size_t>(id)];
  LDIV_CHECK(entry.factory != nullptr)
      << "algorithm " << AlgorithmName(id) << " is not registered";
  return entry.factory(options);
}

std::vector<const Anonymizer*> AlgorithmRegistry::All() const {
  std::vector<const Anonymizer*> result;
  for (const Entry& entry : entries_) {
    if (entry.default_instance != nullptr) result.push_back(entry.default_instance.get());
  }
  return result;
}

}  // namespace ldv
