#include "core/anonymizer.h"

namespace ldv {

AnonymizationOutcome Anonymize(const Table& table, std::uint32_t l, Algorithm algorithm,
                               const AnonymizerOptions& options, Workspace* workspace) {
  std::unique_ptr<Anonymizer> anonymizer =
      AlgorithmRegistry::Global().Create(algorithm, options);
  return workspace != nullptr ? anonymizer->Run(table, l, workspace)
                              : anonymizer->Run(table, l);
}

AnonymizationOutcome Anonymize(const Table& table, std::uint32_t l, Algorithm algorithm,
                               const HilbertOptions& hilbert_options) {
  AnonymizerOptions options;
  options.hilbert = hilbert_options;
  return Anonymize(table, l, algorithm, options);
}

}  // namespace ldv
