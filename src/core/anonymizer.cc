#include "core/anonymizer.h"

#include "anonymity/eligibility.h"
#include "anonymity/generalization.h"
#include "common/check.h"

namespace ldv {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kTp:
      return "TP";
    case Algorithm::kTpPlus:
      return "TP+";
    case Algorithm::kHilbert:
      return "Hilbert";
  }
  return "?";
}

AnonymizationOutcome Anonymize(const Table& table, std::uint32_t l, Algorithm algorithm,
                               const HilbertOptions& hilbert_options) {
  AnonymizationOutcome outcome;
  outcome.algorithm = algorithm;
  switch (algorithm) {
    case Algorithm::kTp: {
      TpResult r = RunTp(table, l);
      if (!r.feasible) return outcome;
      outcome.feasible = true;
      outcome.partition = r.ToPartition();
      outcome.seconds = r.seconds;
      outcome.tp_stats = r.stats;
      break;
    }
    case Algorithm::kTpPlus: {
      TpPlusResult r = RunTpPlus(table, l, hilbert_options);
      if (!r.feasible) return outcome;
      outcome.feasible = true;
      outcome.partition = std::move(r.partition);
      outcome.seconds = r.seconds();
      outcome.tp_stats = r.tp_stats;
      break;
    }
    case Algorithm::kHilbert: {
      HilbertResult r = HilbertAnonymize(table, l, hilbert_options);
      if (!r.feasible) return outcome;
      outcome.feasible = true;
      outcome.partition = std::move(r.partition);
      outcome.seconds = r.seconds;
      break;
    }
  }
  LDIV_DCHECK(outcome.partition.CoversExactly(table));
  LDIV_DCHECK(IsLDiverse(table, outcome.partition, l));
  GeneralizedTable generalized(table, outcome.partition);
  outcome.stars = generalized.StarCount();
  outcome.suppressed_tuples = generalized.SuppressedTupleCount();
  return outcome;
}

}  // namespace ldv
