#ifndef LDIV_CORE_PILLAR_INDEX_H_
#define LDIV_CORE_PILLAR_INDEX_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/histogram.h"
#include "common/types.h"

namespace ldv {

/// The inverted-list structure of Section 5.5.
///
/// A PillarIndex represents one SA-multiset (a QI-group Q_i or the residue
/// set R). It maintains, for every tracked SA value, its multiplicity, and a
/// doubly-linked list of values per multiplicity level ("the j-th entry A[j]
/// contains a pointer to a list of SA values v such that h(Q_i, v) = j"),
/// together with the pillar pointer p_i = the maximum nonempty level.
///
/// Tracked values are addressed by dense local *slots* [0, slot_count);
/// each slot is bound to one SA value. QI-groups track only the values they
/// actually contain (sum over groups is O(n) memory even when s is close to
/// n), whereas the residue set tracks the whole SA domain so that counts can
/// grow from zero.
///
/// Increment and Decrement are O(1); the pillar pointer moves monotonically
/// per direction, so its maintenance is amortized O(1) exactly as argued in
/// Section 5.5.
class PillarIndex {
 public:
  /// Builds an index over the given (value, count) pairs. Values must be
  /// strictly increasing; counts may be zero. Taking a span lets callers
  /// that build one index per group reuse a single staging buffer
  /// (TpEngine constructs tens of thousands of these per solve).
  explicit PillarIndex(std::span<const std::pair<SaValue, std::uint32_t>> entries);

  /// Builds a dense index tracking every value of an SA domain of size `m`,
  /// all counts zero. Used for the residue set R.
  static PillarIndex DenseEmpty(std::size_t m);

  /// Builds an index from a dense histogram, tracking every domain value.
  static PillarIndex FromHistogram(const SaHistogram& h);

  /// Number of tracked slots.
  std::size_t slot_count() const { return values_.size(); }

  /// SA value bound to `slot`.
  SaValue value(std::uint32_t slot) const { return values_[slot]; }

  /// Current multiplicity of `slot`.
  std::uint32_t count(std::uint32_t slot) const { return counts_[slot]; }

  /// Slot bound to SA value `v`, or -1 if `v` is not tracked. O(log k).
  std::int64_t FindSlot(SaValue v) const;

  /// Multiplicity of SA value `v` (0 if untracked).
  std::uint32_t CountOf(SaValue v) const;

  /// Total multiset size |Q|.
  std::uint64_t total() const { return total_; }
  bool empty() const { return total_ == 0; }

  /// The pillar height h(Q) (0 for an empty multiset).
  std::uint32_t PillarHeight() const { return max_level_; }

  /// True if `slot` currently holds a pillar (count > 0 and maximal).
  bool IsPillarSlot(std::uint32_t slot) const {
    return counts_[slot] > 0 && counts_[slot] == max_level_;
  }

  /// True if SA value `v` is a pillar.
  bool IsPillarValue(SaValue v) const;

  /// First pillar slot in the top level list (deterministic; ascending by
  /// slot id on a freshly built index, insertion order afterwards). The
  /// multiset must be nonempty.
  std::uint32_t FirstPillarSlot() const;

  /// All pillar slots in top-level list order. O(#pillars).
  std::vector<std::uint32_t> PillarSlots() const;

  /// Calls `fn(slot)` for every pillar slot. `fn` must not mutate the index.
  template <typename Fn>
  void ForEachPillarSlot(Fn&& fn) const {
    if (max_level_ == 0) return;
    for (std::int32_t s = level_head_[max_level_]; s != kNil; s = next_[s]) {
      fn(static_cast<std::uint32_t>(s));
    }
  }

  /// Returns true iff `pred(slot)` holds for some pillar slot.
  template <typename Pred>
  bool AnyPillarSlot(Pred&& pred) const {
    if (max_level_ == 0) return false;
    for (std::int32_t s = level_head_[max_level_]; s != kNil; s = next_[s]) {
      if (pred(static_cast<std::uint32_t>(s))) return true;
    }
    return false;
  }

  /// Number of distinct values with positive count.
  std::size_t DistinctCount() const { return distinct_; }

  /// The l-eligibility test |Q| >= l * h(Q) (Definition 2).
  bool IsEligible(std::uint32_t l) const {
    return total_ >= static_cast<std::uint64_t>(l) * max_level_;
  }

  /// Removes one tuple from `slot` (count must be positive).
  void Decrement(std::uint32_t slot);

  /// Adds one tuple to `slot`.
  void Increment(std::uint32_t slot);

  /// Dense histogram over SA domain size `m` (must cover all tracked values).
  SaHistogram ToHistogram(std::size_t m) const;

 private:
  static constexpr std::int32_t kNil = -1;

  void Unlink(std::uint32_t slot, std::uint32_t level);
  void LinkAtLevel(std::uint32_t slot, std::uint32_t level);

  std::vector<SaValue> values_;          // slot -> SA value (ascending)
  std::vector<std::uint32_t> counts_;    // slot -> multiplicity
  std::vector<std::int32_t> prev_;       // intra-level doubly linked list
  std::vector<std::int32_t> next_;
  std::vector<std::int32_t> level_head_; // level -> first slot (grows on demand)
  std::uint32_t max_level_ = 0;          // the pillar pointer p_i
  std::uint64_t total_ = 0;
  std::size_t distinct_ = 0;
};

}  // namespace ldv

#endif  // LDIV_CORE_PILLAR_INDEX_H_
