#include "core/pillar_index.h"

#include <algorithm>

namespace ldv {

PillarIndex::PillarIndex(std::span<const std::pair<SaValue, std::uint32_t>> entries) {
  values_.reserve(entries.size());
  counts_.reserve(entries.size());
  std::uint32_t max_count = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) LDIV_CHECK_LT(entries[i - 1].first, entries[i].first);
    values_.push_back(entries[i].first);
    counts_.push_back(entries[i].second);
    max_count = std::max(max_count, entries[i].second);
  }
  prev_.assign(values_.size(), kNil);
  next_.assign(values_.size(), kNil);
  level_head_.assign(max_count + 1, kNil);
  // Link in reverse slot order so each level list is ascending by slot id.
  for (std::uint32_t slot = static_cast<std::uint32_t>(values_.size()); slot-- > 0;) {
    std::uint32_t c = counts_[slot];
    total_ += c;
    if (c > 0) {
      ++distinct_;
      LinkAtLevel(slot, c);
      max_level_ = std::max(max_level_, c);
    }
  }
}

PillarIndex PillarIndex::DenseEmpty(std::size_t m) {
  std::vector<std::pair<SaValue, std::uint32_t>> entries;
  entries.reserve(m);
  for (SaValue v = 0; v < m; ++v) entries.emplace_back(v, 0u);
  return PillarIndex(entries);
}

PillarIndex PillarIndex::FromHistogram(const SaHistogram& h) {
  std::vector<std::pair<SaValue, std::uint32_t>> entries;
  entries.reserve(h.domain_size());
  for (SaValue v = 0; v < h.domain_size(); ++v) entries.emplace_back(v, h.count(v));
  return PillarIndex(entries);
}

std::int64_t PillarIndex::FindSlot(SaValue v) const {
  auto it = std::lower_bound(values_.begin(), values_.end(), v);
  if (it == values_.end() || *it != v) return -1;
  return it - values_.begin();
}

std::uint32_t PillarIndex::CountOf(SaValue v) const {
  std::int64_t slot = FindSlot(v);
  return slot < 0 ? 0 : counts_[static_cast<std::uint32_t>(slot)];
}

bool PillarIndex::IsPillarValue(SaValue v) const {
  std::int64_t slot = FindSlot(v);
  return slot >= 0 && IsPillarSlot(static_cast<std::uint32_t>(slot));
}

std::uint32_t PillarIndex::FirstPillarSlot() const {
  LDIV_CHECK_GT(max_level_, 0u) << "empty multiset has no pillar";
  return static_cast<std::uint32_t>(level_head_[max_level_]);
}

std::vector<std::uint32_t> PillarIndex::PillarSlots() const {
  std::vector<std::uint32_t> slots;
  if (max_level_ == 0) return slots;
  for (std::int32_t s = level_head_[max_level_]; s != kNil; s = next_[s]) {
    slots.push_back(static_cast<std::uint32_t>(s));
  }
  return slots;
}

void PillarIndex::Unlink(std::uint32_t slot, std::uint32_t level) {
  std::int32_t p = prev_[slot];
  std::int32_t n = next_[slot];
  if (p != kNil) {
    next_[p] = n;
  } else {
    level_head_[level] = n;
  }
  if (n != kNil) prev_[n] = p;
  prev_[slot] = kNil;
  next_[slot] = kNil;
}

void PillarIndex::LinkAtLevel(std::uint32_t slot, std::uint32_t level) {
  if (level >= level_head_.size()) level_head_.resize(level + 1, kNil);
  std::int32_t head = level_head_[level];
  prev_[slot] = kNil;
  next_[slot] = head;
  if (head != kNil) prev_[head] = static_cast<std::int32_t>(slot);
  level_head_[level] = static_cast<std::int32_t>(slot);
}

void PillarIndex::Decrement(std::uint32_t slot) {
  std::uint32_t c = counts_[slot];
  LDIV_CHECK_GT(c, 0u);
  Unlink(slot, c);
  counts_[slot] = c - 1;
  --total_;
  if (c - 1 > 0) {
    LinkAtLevel(slot, c - 1);
  } else {
    --distinct_;
  }
  // The pillar pointer only moves down on removals; across the lifetime of a
  // QI-group this costs O(initial height) in total, i.e. amortized O(1) per
  // operation (Section 5.5).
  while (max_level_ > 0 && level_head_[max_level_] == kNil) --max_level_;
}

void PillarIndex::Increment(std::uint32_t slot) {
  std::uint32_t c = counts_[slot];
  if (c > 0) {
    Unlink(slot, c);
  } else {
    ++distinct_;
  }
  counts_[slot] = c + 1;
  ++total_;
  LinkAtLevel(slot, c + 1);
  max_level_ = std::max(max_level_, c + 1);
}

SaHistogram PillarIndex::ToHistogram(std::size_t m) const {
  SaHistogram h(m);
  for (std::uint32_t slot = 0; slot < values_.size(); ++slot) {
    if (counts_[slot] > 0) {
      LDIV_CHECK_LT(values_[slot], m);
      h.Add(values_[slot], counts_[slot]);
    }
  }
  return h;
}

}  // namespace ldv
