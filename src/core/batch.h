#ifndef LDIV_CORE_BATCH_H_
#define LDIV_CORE_BATCH_H_

#include <cstdint>
#include <vector>

#include "core/algorithm.h"

namespace ldv {

/// One unit of work for the batched driver: run `algorithm` on `*table`
/// with privacy parameter `l`. The table is borrowed and must outlive the
/// AnonymizeBatch call.
struct BatchJob {
  const Table* table = nullptr;
  std::uint32_t l = 2;
  Algorithm algorithm = Algorithm::kTp;
  AnonymizerOptions options;
  /// Optional pre-resolved dataset artifacts for `*table` (borrowed, must
  /// outlive the batch). The engine resolves these once per distinct table
  /// of a sweep; null jobs derive their own inputs. Outcomes are identical
  /// either way.
  const TableArtifacts* artifacts = nullptr;
};

struct BatchOptions {
  /// Worker threads; 0 means the process-wide ThreadBudget() (the CLI's
  /// --threads, defaulting to the hardware concurrency with the
  /// zero-means-unknown case resolved to 1). The batch and kernel layers
  /// share that budget: with more than one worker the inner kernels run
  /// sequential, with a single worker they fan out to the full budget.
  unsigned threads = 0;
};

/// Runs every job through the AlgorithmRegistry on a pool of worker
/// threads. Results are returned in job order (results[i] corresponds to
/// jobs[i]) and are identical to a sequential run regardless of the thread
/// count: every algorithm is deterministic in (table, l, options), jobs
/// never share mutable state, and workers only claim job indices, so the
/// schedule cannot leak into the outcomes.
std::vector<AnonymizationOutcome> AnonymizeBatch(const std::vector<BatchJob>& jobs,
                                                 const BatchOptions& options = {});

}  // namespace ldv

#endif  // LDIV_CORE_BATCH_H_
