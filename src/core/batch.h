#ifndef LDIV_CORE_BATCH_H_
#define LDIV_CORE_BATCH_H_

#include <cstdint>
#include <vector>

#include "core/algorithm.h"

namespace ldv {

/// One unit of work for the batched driver: run `algorithm` on `*table`
/// with privacy parameter `l`. The table is borrowed and must outlive the
/// AnonymizeBatch call.
struct BatchJob {
  const Table* table = nullptr;
  std::uint32_t l = 2;
  Algorithm algorithm = Algorithm::kTp;
  AnonymizerOptions options;
};

struct BatchOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned threads = 0;
};

/// Runs every job through the AlgorithmRegistry on a pool of worker
/// threads. Results are returned in job order (results[i] corresponds to
/// jobs[i]) and are identical to a sequential run regardless of the thread
/// count: every algorithm is deterministic in (table, l, options), jobs
/// never share mutable state, and workers only claim job indices, so the
/// schedule cannot leak into the outcomes.
std::vector<AnonymizationOutcome> AnonymizeBatch(const std::vector<BatchJob>& jobs,
                                                 const BatchOptions& options = {});

}  // namespace ldv

#endif  // LDIV_CORE_BATCH_H_
