#include "core/batch.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>

#include "common/check.h"
#include "common/parallel.h"

namespace ldv {

namespace {

AnonymizationOutcome RunJob(const BatchJob& job, Workspace* workspace) {
  LDIV_CHECK(job.table != nullptr) << "BatchJob with null table";
  return AlgorithmRegistry::Global()
      .Create(job.algorithm, job.options)
      ->Run(*job.table, job.l, workspace, job.artifacts);
}

}  // namespace

std::vector<AnonymizationOutcome> AnonymizeBatch(const std::vector<BatchJob>& jobs,
                                                 const BatchOptions& options) {
  std::vector<AnonymizationOutcome> results(jobs.size());
  if (jobs.empty()) return results;

  // One budget governs both layers: an explicit BatchOptions::threads
  // overrides, otherwise the process-wide ThreadBudget() (the CLI's
  // --threads) applies. Job-level workers claim the budget first; only a
  // single-worker batch leaves it to the kernels.
  const std::size_t budget = options.threads != 0 ? options.threads : ThreadBudget();
  const std::size_t workers = std::min(budget, jobs.size());
  if (workers <= 1) {
    // One worker: jobs run inline, and the kernels inherit the whole
    // budget for their intra-run fan-out.
    InnerThreadsScope inner(static_cast<unsigned>(budget));
    Workspace workspace;
    for (std::size_t i = 0; i < jobs.size(); ++i) results[i] = RunJob(jobs[i], &workspace);
    return results;
  }

  // Touch the registry before spawning workers so no worker races the
  // one-time built-in registration.
  AlgorithmRegistry::Global();

  // Multiple workers already saturate the budget, so the kernels they run
  // stay sequential -- inner fan-out would only oversubscribe. Outcomes
  // are unaffected either way: every kernel is byte-identical at any
  // thread count.
  InnerThreadsScope inner(1);

  // Each worker owns one Workspace for its whole job stream: after the
  // first few solves the scratch buffers reach steady state and later jobs
  // run allocation-free. Workspaces never cross threads, and outcomes do
  // not depend on workspace state, so determinism is preserved.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    Workspace workspace;
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      results[i] = RunJob(jobs[i], &workspace);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

}  // namespace ldv
