#include "core/batch.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>

#include "common/check.h"

namespace ldv {

namespace {

AnonymizationOutcome RunJob(const BatchJob& job, Workspace* workspace) {
  LDIV_CHECK(job.table != nullptr) << "BatchJob with null table";
  return AlgorithmRegistry::Global()
      .Create(job.algorithm, job.options)
      ->Run(*job.table, job.l, workspace);
}

}  // namespace

std::vector<AnonymizationOutcome> AnonymizeBatch(const std::vector<BatchJob>& jobs,
                                                 const BatchOptions& options) {
  std::vector<AnonymizationOutcome> results(jobs.size());
  if (jobs.empty()) return results;

  std::size_t threads = options.threads != 0 ? options.threads
                                             : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, jobs.size());
  if (threads <= 1) {
    Workspace workspace;
    for (std::size_t i = 0; i < jobs.size(); ++i) results[i] = RunJob(jobs[i], &workspace);
    return results;
  }

  // Touch the registry before spawning workers so no worker races the
  // one-time built-in registration.
  AlgorithmRegistry::Global();

  // Each worker owns one Workspace for its whole job stream: after the
  // first few solves the scratch buffers reach steady state and later jobs
  // run allocation-free. Workspaces never cross threads, and outcomes do
  // not depend on workspace state, so determinism is preserved.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    Workspace workspace;
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      results[i] = RunJob(jobs[i], &workspace);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

}  // namespace ldv
