#ifndef LDIV_CORE_ARTIFACTS_H_
#define LDIV_CORE_ARTIFACTS_H_

#include <memory>
#include <vector>

#include "common/grouped_table.h"
#include "common/types.h"

namespace ldv {

/// Dataset-derived solver inputs that depend only on the table (and its QI
/// schema), never on `l` or the algorithm: the exact-signature QI grouping
/// and the sorted Hilbert row order. Resolving them once lets every job of
/// an algorithms x l sweep -- and, through the engine's ArtifactCache,
/// every repeat daemon submission of the same dataset -- share one build.
/// Shared ownership keeps an artifact alive for concurrent consumers even
/// while a cache eviction is in flight.
struct TableArtifacts {
  /// Exact-signature QI grouping, consumed by TP and TP+. Immutable once
  /// built; safe to read from any number of threads.
  std::shared_ptr<const GroupedTable> grouped;
  /// Full-table Hilbert row order, consumed by the Hilbert baseline only.
  /// TP+'s residue refinement Hilbert-sorts a SelectRows sub-table whose
  /// row ids are local, so it must never consume this full-table order.
  std::shared_ptr<const std::vector<RowId>> hilbert_order;

  bool empty() const { return grouped == nullptr && hilbert_order == nullptr; }
};

}  // namespace ldv

#endif  // LDIV_CORE_ARTIFACTS_H_
