#include "core/run_spec.h"

#include "common/check.h"

namespace ldv {

std::string RunSpecLabel(const RunSpec& spec) {
  return std::string(AlgorithmName(spec.algorithm)) + "/l=" + std::to_string(spec.l) +
         "/table=" + std::to_string(spec.table_index);
}

std::vector<RunSpec> ExpandRunGrid(std::span<const Algorithm> algorithms,
                                   std::span<const std::uint32_t> ls, std::size_t table_count,
                                   const AnonymizerOptions& options) {
  std::vector<RunSpec> specs;
  specs.reserve(table_count * algorithms.size() * ls.size());
  for (std::size_t t = 0; t < table_count; ++t) {
    for (Algorithm algorithm : algorithms) {
      for (std::uint32_t l : ls) {
        RunSpec spec;
        spec.algorithm = algorithm;
        spec.l = l;
        spec.table_index = t;
        spec.options = options;
        specs.push_back(spec);
      }
    }
  }
  return specs;
}

std::vector<BatchJob> ToBatchJobs(std::span<const RunSpec> specs,
                                  std::span<const Table* const> tables,
                                  std::span<const TableArtifacts> artifacts) {
  LDIV_CHECK(artifacts.empty() || artifacts.size() == tables.size())
      << "artifacts must parallel tables";
  std::vector<BatchJob> jobs;
  jobs.reserve(specs.size());
  for (const RunSpec& spec : specs) {
    LDIV_CHECK_LT(spec.table_index, tables.size()) << "RunSpec table_index out of range";
    BatchJob job;
    job.table = tables[spec.table_index];
    job.l = spec.l;
    job.algorithm = spec.algorithm;
    job.options = spec.options;
    if (!artifacts.empty() && !artifacts[spec.table_index].empty()) {
      job.artifacts = &artifacts[spec.table_index];
    }
    jobs.push_back(job);
  }
  return jobs;
}

bool ParseAlgorithmList(std::string_view list, std::vector<Algorithm>* out, std::string* error) {
  out->clear();
  if (list.empty()) {
    *error = "empty algorithm list (registered: " + RegisteredAlgorithmNames(", ") + ")";
    return false;
  }
  std::string_view rest = list;
  while (true) {
    std::size_t comma = rest.find(',');
    std::string_view name = rest.substr(0, comma);
    if (name == "all" || name == "ALL" || name == "All") {
      for (const Anonymizer* algo : AlgorithmRegistry::Global().All()) {
        out->push_back(algo->id());
      }
    } else {
      const Anonymizer* algo = AlgorithmRegistry::Global().Find(name);
      if (algo == nullptr) {
        *error = "unknown algorithm '" + std::string(name) +
                 "' (registered: " + RegisteredAlgorithmNames(", ") + ", or 'all')";
        return false;
      }
      out->push_back(algo->id());
    }
    if (comma == std::string_view::npos) return true;
    rest.remove_prefix(comma + 1);
  }
}

std::string RegisteredAlgorithmNames(std::string_view separator) {
  std::string names;
  for (const Anonymizer* algo : AlgorithmRegistry::Global().All()) {
    if (!names.empty()) names += separator;
    names += algo->name();
  }
  return names;
}

}  // namespace ldv
