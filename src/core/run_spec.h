#ifndef LDIV_CORE_RUN_SPEC_H_
#define LDIV_CORE_RUN_SPEC_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/algorithm.h"
#include "core/batch.h"

namespace ldv {

/// One pipeline invocation: run `algorithm` with privacy parameter `l` on
/// the `table_index`-th input table. RunSpecs are the unit the CLI sweeps
/// over; a vector of them converts 1:1 into AnonymizeBatch jobs.
struct RunSpec {
  Algorithm algorithm = Algorithm::kTp;
  std::uint32_t l = 2;
  std::size_t table_index = 0;
  AnonymizerOptions options;
};

/// Human-readable job label, e.g. "TP+/l=4/table=0".
std::string RunSpecLabel(const RunSpec& spec);

/// Expands the full `tables x algorithms x ls` grid in deterministic job
/// order: table-major, then algorithm, then l -- the order results are
/// reported in, independent of how many batch workers run the jobs.
std::vector<RunSpec> ExpandRunGrid(std::span<const Algorithm> algorithms,
                                   std::span<const std::uint32_t> ls, std::size_t table_count,
                                   const AnonymizerOptions& options);

/// Converts specs to AnonymizeBatch jobs against `tables`. Each spec's
/// table_index must be < tables.size(); the tables are borrowed and must
/// outlive the batch run. When `artifacts` is non-empty it must parallel
/// `tables` (artifacts[i] pre-resolved from *tables[i]); each job then
/// borrows its table's artifacts so TP / TP+ / Hilbert skip rebuilding the
/// grouping or order per job.
std::vector<BatchJob> ToBatchJobs(std::span<const RunSpec> specs,
                                  std::span<const Table* const> tables,
                                  std::span<const TableArtifacts> artifacts = {});

/// Parses a comma-separated list of registry names ("tp,mondrian"), or
/// "all" for every registered algorithm in enum order. Returns false with
/// a message naming the registered algorithms on an unknown name --
/// front-end input, so never an LDIV_CHECK.
bool ParseAlgorithmList(std::string_view list, std::vector<Algorithm>* out, std::string* error);

/// The registered algorithm names in enum order, joined by `separator`
/// (usage strings, error messages).
std::string RegisteredAlgorithmNames(std::string_view separator);

}  // namespace ldv

#endif  // LDIV_CORE_RUN_SPEC_H_
