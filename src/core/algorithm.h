#ifndef LDIV_CORE_ALGORITHM_H_
#define LDIV_CORE_ALGORITHM_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "anonymity/generalization.h"
#include "anonymity/multidim.h"
#include "anonymity/partition.h"
#include "common/table.h"
#include "common/workspace.h"
#include "core/artifacts.h"
#include "core/tp.h"
#include "hilbert/hilbert_partitioner.h"
#include "metrics/group_stats.h"
#include "tds/tds.h"

namespace ldv {

/// Every anonymization algorithm in the repository, unified behind one
/// enum: the paper's suppression algorithms (Section 6.1) plus the
/// comparison methodologies of Sections 2 / 6.2.
enum class Algorithm {
  kTp,        ///< three-phase (l*d)-approximation (Section 5)
  kTpPlus,    ///< hybrid: TP + Hilbert refinement of R (Section 6.1)
  kHilbert,   ///< the Hilbert baseline of Ghinita et al. [16]
  kMondrian,  ///< multi-dimensional generalization (LeFevre et al. [27])
  kAnatomy,   ///< bucketization (Xiao and Tao [47])
  kTds,       ///< single-dimensional top-down specialization [15]
};

inline constexpr std::size_t kAlgorithmCount = 6;
inline constexpr std::array<Algorithm, kAlgorithmCount> kAllAlgorithms = {
    Algorithm::kTp,       Algorithm::kTpPlus,  Algorithm::kHilbert,
    Algorithm::kMondrian, Algorithm::kAnatomy, Algorithm::kTds,
};

/// Canonical display name. Exhaustive over the enum; aborts on a value
/// outside it (a corrupted enum is a programmer error, never user input).
const char* AlgorithmName(Algorithm algorithm);

/// True iff `algorithm` consumes the shared GroupedTable artifact (TP and
/// TP+ start from the exact-signature grouping).
bool AlgorithmUsesGroupedArtifact(Algorithm algorithm);

/// True iff `algorithm` consumes the shared full-table Hilbert row order
/// (the Hilbert baseline only; TP+'s refinement sorts a sub-table).
bool AlgorithmUsesHilbertOrderArtifact(Algorithm algorithm);

/// The anonymization methodology taxonomy of Section 2, which determines
/// what a release publishes and therefore which KL-divergence estimator
/// (Equation 2) applies.
enum class Methodology {
  kSuppression,       ///< stars in place of generalized values
  kMultiDimensional,  ///< one QI box per group; boxes may overlap
  kSingleDimensional, ///< global per-attribute taxonomy cuts
  kBucketization,     ///< exact QI, SA linked through l-diverse buckets
};

const char* MethodologyName(Methodology methodology);

/// Per-instance knobs of an Anonymizer. Registry default instances use the
/// defaults below; callers needing different knobs create their own
/// instance through AlgorithmRegistry::Create.
struct AnonymizerOptions {
  /// Splitting strategy for the Hilbert-based algorithms (kHilbert and the
  /// refinement stage of kTpPlus); ignored by the others.
  HilbertOptions hilbert;
  /// When false, the shared post-processing skips the KL-divergence
  /// estimate (Equation 2). Timing sweeps disable it so post-processing
  /// stays negligible next to the measured solve.
  bool compute_kl = true;
};

/// Uniform outcome of every algorithm, carrying the utility measures the
/// paper reports. The privacy fields (partition, stars, suppressed_tuples)
/// and the shared metrics (group_stats, kl_divergence) are populated by the
/// common post-processing path in Anonymizer::Run; the artifact pointers
/// expose the methodology-specific published form.
struct AnonymizationOutcome {
  bool feasible = false;
  Algorithm algorithm = Algorithm::kTp;
  Methodology methodology = Methodology::kSuppression;
  Partition partition;
  /// Number of stars of the induced generalization (Problem 1 objective).
  /// Always 0 for kBucketization, which publishes QI values exactly.
  std::uint64_t stars = 0;
  /// Number of tuples with at least one star (Problem 2 objective).
  std::uint64_t suppressed_tuples = 0;
  /// Wall-clock seconds of the solve (excludes post-processing).
  double seconds = 0.0;
  /// TP phase statistics (meaningful for kTp / kTpPlus).
  TpStats tp_stats;
  /// QI-group size summary of the partition.
  GroupSizeStats group_stats;
  /// KL(f, f*) of Equation 2, estimated with the methodology's estimator.
  /// 0 when the anonymizer was created with compute_kl = false.
  double kl_divergence = 0.0;

  /// The Definition-1 suppression view of the partition (set for every
  /// methodology except kBucketization; the star counts above come from it).
  std::shared_ptr<const GeneralizedTable> generalized;
  /// The published boxes of a kMultiDimensional release.
  std::shared_ptr<const BoxGeneralization> boxes;
  /// The published taxonomy cuts of a kSingleDimensional release.
  std::shared_ptr<const SingleDimGeneralization> single_dim;
  /// Specializations applied (meaningful for kTds).
  std::uint32_t specializations = 0;
};

/// Abstract algorithm interface: every anonymizer maps (table, l) to an
/// AnonymizationOutcome. Concrete classes implement RunRaw (the solve);
/// the base class owns the shared post-processing -- validation, star
/// counting, group statistics and KL-divergence -- so the utility metrics
/// are computed once here instead of per-bench.
class Anonymizer {
 public:
  virtual ~Anonymizer() = default;

  Anonymizer(const Anonymizer&) = delete;
  Anonymizer& operator=(const Anonymizer&) = delete;

  Algorithm id() const { return id_; }
  const char* name() const { return AlgorithmName(id_); }
  Methodology methodology() const { return methodology_; }
  const AnonymizerOptions& options() const { return options_; }

  /// Runs the algorithm on `table` with privacy parameter `l` and fills in
  /// the shared utility metrics. Returns feasible = false iff the table is
  /// not l-eligible. Thread-safe: anonymizers are stateless.
  AnonymizationOutcome Run(const Table& table, std::uint32_t l) const;

  /// Same, drawing every solver's scratch memory from `workspace` so
  /// repeated solves stop re-allocating. The workspace is NOT thread-safe:
  /// callers running solves concurrently use one workspace per thread
  /// (AnonymizeBatch keeps one per worker). Outcomes are identical with or
  /// without a workspace, and across reuses of one.
  AnonymizationOutcome Run(const Table& table, std::uint32_t l, Workspace* workspace) const;

  /// Same, additionally consuming pre-resolved dataset artifacts. When
  /// `artifacts` supplies the GroupedTable or Hilbert order for `table`,
  /// the solve skips rebuilding it; any field may be null, in which case
  /// the algorithm derives the input itself. Artifacts MUST have been
  /// built from exactly this table -- outcomes are byte-identical with and
  /// without them.
  AnonymizationOutcome Run(const Table& table, std::uint32_t l, Workspace* workspace,
                           const TableArtifacts* artifacts) const;

 protected:
  Anonymizer(Algorithm id, Methodology methodology, AnonymizerOptions options)
      : id_(id), methodology_(methodology), options_(options) {}

  /// The algorithm-specific solve. Fills partition, seconds and the
  /// methodology artifacts; returns false iff infeasible. `workspace` is
  /// never null; `artifacts` may be (no pre-resolved inputs).
  virtual bool RunRaw(const Table& table, std::uint32_t l, Workspace* workspace,
                      const TableArtifacts* artifacts, AnonymizationOutcome* out) const = 0;

 private:
  Algorithm id_;
  Methodology methodology_;
  AnonymizerOptions options_;
};

/// Static registry of the available algorithms: lookup by enum for typed
/// callers and by (case-insensitive) name for CLI / bench front-ends. The
/// six built-in algorithms are registered on first access; additional
/// engines can be registered at startup (registration is not thread-safe,
/// lookup is).
class AlgorithmRegistry {
 public:
  using Factory = std::unique_ptr<Anonymizer> (*)(const AnonymizerOptions& options);

  /// The process-wide registry, with the built-ins pre-registered.
  static AlgorithmRegistry& Global();

  /// Registers a factory for `id`. Aborts on a duplicate registration.
  void Register(Algorithm id, Factory factory);

  /// The shared default-options instance for `id` (aborts if unregistered).
  const Anonymizer& Get(Algorithm id) const;

  /// Case-insensitive lookup by canonical name ("tp", "TP+", "mondrian",
  /// ...). Returns nullptr for an unknown name.
  const Anonymizer* Find(std::string_view name) const;

  /// A fresh instance of `id` with the given options.
  std::unique_ptr<Anonymizer> Create(Algorithm id, const AnonymizerOptions& options) const;

  /// All registered algorithms, in enum order.
  std::vector<const Anonymizer*> All() const;

 private:
  struct Entry {
    Factory factory = nullptr;
    std::unique_ptr<Anonymizer> default_instance;
  };
  std::array<Entry, kAlgorithmCount> entries_;
};

}  // namespace ldv

#endif  // LDIV_CORE_ALGORITHM_H_
