#ifndef LDIV_CORE_TP_PLUS_H_
#define LDIV_CORE_TP_PLUS_H_

#include <cstdint>

#include "anonymity/partition.h"
#include "common/table.h"
#include "core/tp.h"
#include "hilbert/hilbert_partitioner.h"

namespace ldv {

/// Result of the hybrid TP+ algorithm of Section 6.1.
struct TpPlusResult {
  /// False iff the table is not l-eligible.
  bool feasible = false;
  /// Kept exact-signature groups plus the Hilbert re-partitioning of the
  /// residue set R.
  Partition partition;
  /// Statistics of the underlying TP run.
  TpStats tp_stats;
  /// Seconds spent in TP and in the Hilbert refinement of R.
  double tp_seconds = 0.0;
  double hilbert_seconds = 0.0;

  double seconds() const { return tp_seconds + hilbert_seconds; }
};

/// The hybrid algorithm TP+ (Section 6.1): run the three-phase algorithm,
/// then apply the Hilbert baseline to the residue set R to split it into
/// smaller l-eligible QI-groups, reducing the number of suppressed values.
/// Because R is l-eligible whenever TP succeeds, the refinement always
/// applies, and by the discussion in Section 5.6 TP+ inherits the O(l * d)
/// approximation guarantee of TP. Both stages draw their scratch from
/// `workspace` when one is supplied. When `grouped` is non-null it must be
/// the exact-signature grouping of `table`; the TP stage consumes it
/// instead of rebuilding (the Hilbert refinement always re-sorts the
/// residue sub-table, which no full-table artifact can stand in for).
TpPlusResult RunTpPlus(const Table& table, std::uint32_t l,
                       const HilbertOptions& hilbert_options = {},
                       Workspace* workspace = nullptr,
                       const GroupedTable* grouped = nullptr);

}  // namespace ldv

#endif  // LDIV_CORE_TP_PLUS_H_
